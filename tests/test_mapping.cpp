// Warp-map generation, fixed-point packing, bbox analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "core/brown_conrady.hpp"
#include "core/mapping.hpp"
#include "util/mathx.hpp"

namespace fisheye::core {
namespace {

using util::deg_to_rad;

FisheyeCamera test_camera(int w = 320, int h = 240,
                          double fov_deg = 180.0) {
  return FisheyeCamera::centered(LensKind::Equidistant, deg_to_rad(fov_deg),
                                 w, h);
}

TEST(BuildMap, CentreMapsToCentre) {
  const FisheyeCamera cam = test_camera(321, 241);
  const PerspectiveView view(321, 241, cam.lens().focal());
  const WarpMap map = build_map(cam, view);
  ASSERT_EQ(map.width, 321);
  ASSERT_EQ(map.height, 241);
  const std::size_t c = map.index(160, 120);
  EXPECT_NEAR(map.src_x[c], 160.0, 1e-4);
  EXPECT_NEAR(map.src_y[c], 120.0, 1e-4);
}

TEST(BuildMap, NearCentreIsNearIdentity) {
  // With matched focal the undistortion is locally the identity at the
  // centre: 10 px out maps within a fraction of a pixel of itself.
  const FisheyeCamera cam = test_camera(321, 241);
  const PerspectiveView view(321, 241, cam.lens().focal());
  const WarpMap map = build_map(cam, view);
  const std::size_t i = map.index(170, 120);
  EXPECT_NEAR(map.src_x[i], 170.0, 0.12);
  EXPECT_NEAR(map.src_y[i], 120.0, 0.01);
}

TEST(BuildMap, PullsFromInsideImageCircleTowardEdges) {
  // Barrel correction: the output edge samples source pixels closer to the
  // centre than itself (the source is compressed).
  const FisheyeCamera cam = test_camera(320, 240);
  const PerspectiveView view(320, 240, cam.lens().focal());
  const WarpMap map = build_map(cam, view);
  const std::size_t i = map.index(310, 120);
  const double out_r = std::abs(310 - 159.5);
  const double src_r = std::abs(map.src_x[i] - 159.5);
  EXPECT_LT(src_r, out_r);
  EXPECT_GT(src_r, 0.0);
}

TEST(BuildMap, RadiallySymmetric) {
  const FisheyeCamera cam = test_camera(201, 201);
  const PerspectiveView view(201, 201, cam.lens().focal());
  const WarpMap map = build_map(cam, view);
  // Mirror pixels map to mirror sources.
  const std::size_t right = map.index(150, 100);
  const std::size_t left = map.index(50, 100);
  EXPECT_NEAR(map.src_x[right] - 100.0, 100.0 - map.src_x[left], 1e-3);
  EXPECT_NEAR(map.src_y[right], map.src_y[left], 1e-3);
}

TEST(SynthesisMap, InvertsCorrection) {
  // Correcting then re-distorting a point must return it: the synthesis map
  // at a fisheye pixel p looks up the scene pixel whose corrected position
  // is p again (both built from the same camera).
  const FisheyeCamera cam = test_camera(320, 240);
  const WarpMap synth = build_synthesis_map(cam, 640, 480, 160.0, 320, 240);
  ASSERT_EQ(synth.width, 320);
  // Fisheye centre sees scene centre.
  const std::size_t c = synth.index(160, 120);
  EXPECT_NEAR(synth.src_x[c], 319.5, 1.2);
  EXPECT_NEAR(synth.src_y[c], 239.5, 1.2);
}

TEST(SynthesisMap, BehindPlaneIsBlanked) {
  // 180-degree fisheye corners see theta > 85 degrees: far outside any
  // finite scene plane, marked far out of bounds.
  const FisheyeCamera cam = test_camera(320, 240);
  const WarpMap synth = build_synthesis_map(cam, 640, 480, 160.0, 320, 240);
  const std::size_t corner = synth.index(0, 0);
  EXPECT_LT(synth.src_x[corner], -1000.0f);
}

TEST(BrownConradyMap, MatchesExactMapNearCentre) {
  const FisheyeCamera cam = test_camera(320, 240);
  const PerspectiveView view(320, 240, cam.lens().focal());
  const WarpMap exact = build_map(cam, view);
  const BrownConrady bc =
      fit_brown_conrady(cam.lens(), deg_to_rad(60.0));
  const WarpMap poly = build_brown_conrady_map(bc, cam.cx(), cam.cy(), view);
  // Near the centre the polynomial agrees to sub-pixel...
  const std::size_t c = poly.index(180, 130);
  EXPECT_NEAR(poly.src_x[c], exact.src_x[c], 0.1);
  EXPECT_NEAR(poly.src_y[c], exact.src_y[c], 0.1);
  // ...but the far edge diverges visibly (the T3 story).
  const std::size_t e = poly.index(318, 120);
  EXPECT_GT(std::abs(poly.src_x[e] - exact.src_x[e]), 1.0);
}

TEST(PackMap, QuantizationWithinHalfLsb) {
  const FisheyeCamera cam = test_camera(160, 120);
  const PerspectiveView view(160, 120, cam.lens().focal());
  const WarpMap map = build_map(cam, view);
  const PackedMap packed = pack_map(map, 160, 120, 14);
  const double lsb = 1.0 / 16384.0;
  for (std::size_t i = 0; i < map.pixel_count(); ++i) {
    if (packed.fx[i] == PackedMap::kInvalid) continue;
    const double qx = static_cast<double>(packed.fx[i]) * lsb;
    const double qy = static_cast<double>(packed.fy[i]) * lsb;
    // Packed values are clamped into [0, dim-1]; compare to the clamped
    // original.
    const double cx = util::clamp<double>(map.src_x[i], 0.0, 159.0);
    const double cy = util::clamp<double>(map.src_y[i], 0.0, 119.0);
    EXPECT_NEAR(qx, cx, 0.5 * lsb + 1e-9);
    EXPECT_NEAR(qy, cy, 0.5 * lsb + 1e-9);
  }
}

TEST(PackMap, OutsidePixelsBecomeSentinel) {
  // A 180-degree map on a wide output has corners outside the circle whose
  // source coords fall outside the image; those pack to kInvalid.
  const FisheyeCamera cam = test_camera(320, 240);
  const WarpMap synth = build_synthesis_map(cam, 640, 480, 160.0, 320, 240);
  const PackedMap packed = pack_map(synth, 640, 480, 14);
  EXPECT_EQ(packed.fx[packed.index(0, 0)], PackedMap::kInvalid);
  EXPECT_NE(packed.fx[packed.index(160, 120)], PackedMap::kInvalid);
}

TEST(PackMap, FracBitsValidated) {
  WarpMap map;
  map.width = map.height = 2;
  map.src_x.assign(4, 0.5f);
  map.src_y.assign(4, 0.5f);
  EXPECT_THROW(pack_map(map, 4, 4, 0), fisheye::InvalidArgument);
  EXPECT_THROW(pack_map(map, 4, 4, 23), fisheye::InvalidArgument);
  const PackedMap p = pack_map(map, 4, 4, 8);
  EXPECT_EQ(p.frac_bits, 8);
  EXPECT_EQ(p.fx[0], 128);  // 0.5 in Q.8
}

TEST(SourceBbox, MatchesBruteForce) {
  const FisheyeCamera cam = test_camera(160, 120);
  const PerspectiveView view(160, 120, cam.lens().focal());
  const WarpMap map = build_map(cam, view);
  const par::Rect rect{40, 30, 90, 70};
  const par::Rect box = source_bbox(map, rect, 160, 120);
  ASSERT_FALSE(box.empty());
  // Every valid map entry's bilinear footprint must lie inside the box.
  for (int y = rect.y0; y < rect.y1; ++y)
    for (int x = rect.x0; x < rect.x1; ++x) {
      const std::size_t i = map.index(x, y);
      const float sx = map.src_x[i], sy = map.src_y[i];
      if (sx <= -1.0f || sy <= -1.0f || sx >= 160.0f || sy >= 120.0f)
        continue;
      const int x0 = static_cast<int>(std::floor(sx));
      const int y0 = static_cast<int>(std::floor(sy));
      EXPECT_GE(x0, box.x0 - 1);  // floor may sit one below when clamped at 0
      EXPECT_LE(x0 + 1, box.x1);
      EXPECT_GE(y0, box.y0 - 1);
      EXPECT_LE(y0 + 1, box.y1);
    }
}

TEST(SourceBbox, EmptyForFullyOutsideRect) {
  WarpMap map;
  map.width = map.height = 8;
  map.src_x.assign(64, -1e9f);
  map.src_y.assign(64, -1e9f);
  const par::Rect box = source_bbox(map, {0, 0, 8, 8}, 100, 100);
  EXPECT_TRUE(box.empty());
}

TEST(ValidFraction, CountsCorrectly) {
  WarpMap map;
  map.width = 4;
  map.height = 1;
  map.src_x = {1.0f, -5.0f, 2.0f, 200.0f};
  map.src_y = {1.0f, 1.0f, 1.0f, 1.0f};
  EXPECT_DOUBLE_EQ(valid_fraction(map, 100, 100), 0.5);
}

TEST(ValidFraction, FisheyeMapMostlyValid) {
  const FisheyeCamera cam = test_camera(320, 240);
  const PerspectiveView view(320, 240, cam.lens().focal());
  const WarpMap map = build_map(cam, view);
  const double frac = valid_fraction(map, 320, 240);
  EXPECT_GT(frac, 0.9);
  EXPECT_LE(frac, 1.0);
}

}  // namespace
}  // namespace fisheye::core
