// Unit tests for src/util: contracts, aligned buffers, fixed point, fast
// math approximations, RNG, table formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>

#include "util/aligned.hpp"
#include "util/args.hpp"
#include "util/cpu.hpp"
#include "util/error.hpp"
#include "util/fixed_point.hpp"
#include "util/log.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace fisheye {
namespace {

using util::Q18_14;

TEST(Error, ContractMacroThrowsInvalidArgument) {
  EXPECT_THROW([] { FE_EXPECTS(1 == 2); }(), InvalidArgument);
  EXPECT_THROW([] { FE_ENSURES(false); }(), InvalidArgument);
  EXPECT_NO_THROW([] { FE_EXPECTS(true); }());
}

TEST(Error, MessageNamesExpressionAndLocation) {
  try {
    FE_EXPECTS(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(msg.find("test_util.cpp"), std::string::npos);
  }
}

TEST(Aligned, AlignUpBasics) {
  EXPECT_EQ(util::align_up(0, 64), 0u);
  EXPECT_EQ(util::align_up(1, 64), 64u);
  EXPECT_EQ(util::align_up(64, 64), 64u);
  EXPECT_EQ(util::align_up(65, 64), 128u);
}

TEST(Aligned, IsPow2) {
  EXPECT_TRUE(util::is_pow2(1));
  EXPECT_TRUE(util::is_pow2(64));
  EXPECT_FALSE(util::is_pow2(0));
  EXPECT_FALSE(util::is_pow2(48));
}

TEST(Aligned, BufferIsCacheLineAlignedAndZeroed) {
  util::AlignedBuffer<float> buf(1001);
  ASSERT_EQ(buf.size(), 1001u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
  for (float v : buf) EXPECT_EQ(v, 0.0f);
}

TEST(Aligned, BufferMoveTransfersOwnership) {
  util::AlignedBuffer<int> a(16);
  a[3] = 42;
  util::AlignedBuffer<int> b = std::move(a);
  EXPECT_EQ(b[3], 42);
  EXPECT_EQ(b.size(), 16u);
}

TEST(Aligned, EmptyBuffer) {
  util::AlignedBuffer<int> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.data(), nullptr);
}

TEST(FixedPoint, FromIntExact) {
  const auto v = Q18_14::from_int(37);
  EXPECT_EQ(v.floor(), 37);
  EXPECT_EQ(v.frac_raw(), 0);
  EXPECT_DOUBLE_EQ(v.to_double(), 37.0);
}

TEST(FixedPoint, RoundTripPrecision) {
  // Q18.14 resolves 1/16384; round-trip error must be <= half an LSB.
  for (double x : {0.0, 0.125, 3.999939, -2.5, 100.0625, -0.0001}) {
    const auto f = Q18_14::from_double(x);
    EXPECT_NEAR(f.to_double(), x, 0.5 / 16384.0) << "x=" << x;
  }
}

TEST(FixedPoint, FloorIsArithmeticForNegatives) {
  const auto v = Q18_14::from_double(-1.25);
  EXPECT_EQ(v.floor(), -2);
  EXPECT_NEAR(v.frac(), 0.75, 1e-9);
}

TEST(FixedPoint, ArithmeticMatchesDouble) {
  const auto a = Q18_14::from_double(3.5);
  const auto b = Q18_14::from_double(-1.25);
  EXPECT_DOUBLE_EQ((a + b).to_double(), 2.25);
  EXPECT_DOUBLE_EQ((a - b).to_double(), 4.75);
  EXPECT_DOUBLE_EQ((-b).to_double(), 1.25);
  EXPECT_NEAR((a * b).to_double(), -4.375, 1.0 / 16384.0);
}

TEST(FixedPoint, CompileTimeUsable) {
  constexpr auto one = Q18_14::from_int(1);
  static_assert(one.raw() == Q18_14::one);
  static_assert(Q18_14::from_raw(3) + Q18_14::from_raw(4) ==
                Q18_14::from_raw(7));
  SUCCEED();
}

class QuantizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantizeSweep, ErrorBoundedByHalfLsb) {
  const int bits = GetParam();
  const double lsb = 1.0 / static_cast<double>(1LL << bits);
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(-1000.0, 1000.0);
    EXPECT_NEAR(util::quantize(x, bits), x, 0.5 * lsb + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantizeSweep,
                         ::testing::Values(4, 6, 8, 10, 12, 14, 16, 18));

TEST(Mathx, Constants) {
  EXPECT_NEAR(util::deg_to_rad(180.0), util::kPi, 1e-15);
  EXPECT_NEAR(util::rad_to_deg(util::kHalfPi), 90.0, 1e-12);
}

TEST(Mathx, FastAtanErrorBound) {
  double worst = 0.0;
  for (int i = -2000; i <= 2000; ++i) {
    const double x = i * 0.01;  // [-20, 20] crosses the range reduction
    worst = std::max(worst, std::abs(util::fast_atan(x) - std::atan(x)));
  }
  EXPECT_LT(worst, 2e-5);
}

TEST(Mathx, FastAtan2Quadrants) {
  for (double a = -3.0; a <= 3.0; a += 0.173) {
    const double y = std::sin(a), x = std::cos(a);
    EXPECT_NEAR(util::fast_atan2(y, x), std::atan2(y, x), 2e-5)
        << "angle " << a;
  }
  EXPECT_DOUBLE_EQ(util::fast_atan2(0.0, 0.0), 0.0);
  EXPECT_NEAR(util::fast_atan2(1.0, 0.0), util::kHalfPi, 1e-12);
  EXPECT_NEAR(util::fast_atan2(-1.0, 0.0), -util::kHalfPi, 1e-12);
}

TEST(Mathx, FastSinErrorBound) {
  double worst = 0.0;
  for (int i = -314; i <= 314; ++i) {
    const double x = i * 0.01;
    worst = std::max(worst, std::abs(util::fast_sin(x) - std::sin(x)));
  }
  EXPECT_LT(worst, 1e-4);
}

TEST(Mathx, LerpAndClamp) {
  EXPECT_DOUBLE_EQ(util::lerp(2.0, 4.0, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(util::lerp(2.0, 4.0, 0.0), 2.0);
  EXPECT_EQ(util::clamp(5, 0, 3), 3);
  EXPECT_EQ(util::clamp(-5, 0, 3), 0);
  EXPECT_EQ(util::clamp(2, 0, 3), 2);
}

TEST(Rng, DeterministicForSameSeed) {
  util::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  util::Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInRange) {
  util::Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  util::Rng rng(4);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NextBelowBounds) {
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(7), 7u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Table, MarkdownShape) {
  util::Table t({"name", "value"});
  t.row().add("alpha").add(1.5, 1);
  t.row().add("beta").add(12);
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| name  | value |"), std::string::npos);
  EXPECT_NE(md.find("| alpha | 1.5   |"), std::string::npos);
  EXPECT_NE(md.find("| beta  | 12    |"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  util::Table t({"a", "b"});
  t.row().add("x,y").add("quote\"inside");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, OverfilledRowViolatesContract) {
  util::Table t({"only"});
  t.row().add("ok");
  EXPECT_THROW(t.add("too many"), InvalidArgument);
}

TEST(Table, FormatDoublePrecision) {
  EXPECT_EQ(util::format_double(3.14159, 2), "3.14");
  EXPECT_EQ(util::format_double(2.0, 0), "2");
}

TEST(Cpu, ReportsAtLeastOneThread) {
  EXPECT_GE(util::cpu_info().hardware_threads, 1u);
  EXPECT_FALSE(util::cpu_info().summary().empty());
}

TEST(Log, LevelsAreSettable) {
  const auto prev = util::log_level();
  util::set_log_level(util::LogLevel::Error);
  EXPECT_EQ(util::log_level(), util::LogLevel::Error);
  util::set_log_level(prev);
}


TEST(Args, ParsesNamedPositionalAndFlags) {
  // Note the grammar: `--flag value` binds greedily, so positionals must
  // precede boolean flags (documented in util/args.hpp).
  const char* argv[] = {"prog", "input.ppm", "extra", "--fov", "170.5",
                        "--interp=bicubic", "--stats"};
  const util::Args args(7, argv);
  EXPECT_EQ(args.program(), "prog");
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.ppm");
  EXPECT_EQ(args.positional()[1], "extra");
  EXPECT_DOUBLE_EQ(args.get_double("fov", 0.0), 170.5);
  EXPECT_EQ(args.get("interp", ""), "bicubic");
  EXPECT_TRUE(args.get_bool("stats"));
  EXPECT_FALSE(args.get_bool("absent"));
  EXPECT_EQ(args.get("absent", "dflt"), "dflt");
}

TEST(Args, NumericValidation) {
  const char* argv[] = {"prog", "--n", "abc", "--f", "2.5"};
  const util::Args args(5, argv);
  EXPECT_THROW((void)args.get_double("n", 0.0), InvalidArgument);
  EXPECT_THROW((void)args.get_int("f", 0), InvalidArgument);  // non-integral
  EXPECT_DOUBLE_EQ(args.get_double("f", 0.0), 2.5);
  EXPECT_EQ(args.get_int("missing", 7), 7);
}

TEST(Args, BooleanFollowedByFlagStaysBoolean) {
  const char* argv[] = {"prog", "--verbose", "--out", "x.ppm"};
  const util::Args args(4, argv);
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_EQ(args.get("out", ""), "x.ppm");
}

}  // namespace
}  // namespace fisheye
