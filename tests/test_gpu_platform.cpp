// GPU-like SIMT platform: functional equivalence with the serial reference
// and roofline-model sanity (ALU vs bandwidth bound, texture locality).
#include <gtest/gtest.h>

#include "accel/accel_backend.hpp"
#include "core/corrector.hpp"
#include "core/remap.hpp"
#include "image/metrics.hpp"
#include "image/synth.hpp"
#include "util/mathx.hpp"

namespace fisheye::accel {
namespace {

using util::deg_to_rad;

struct Env {
  core::FisheyeCamera cam;
  core::PerspectiveView view;
  core::WarpMap map;
  img::Image8 src;

  explicit Env(int w, int h)
      : cam(core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                          deg_to_rad(180.0), w, h)),
        view(w, h, cam.lens().focal()),
        map(core::build_map(cam, view)),
        src(img::make_rings(w, h, 9)) {}
};

TEST(GpuPlatform, OutputMatchesSerialReferenceBitExact) {
  const Env s(160, 120);
  GpuPlatform platform(s.map, GpuConfig{});
  img::Image8 out(160, 120, 1), ref(160, 120, 1);
  const AccelFrameStats stats = platform.run_frame(s.src.view(), out.view(), 0);
  core::remap_rect(s.src.view(), ref.view(), s.map, {0, 0, 160, 120},
                   {core::Interp::Bilinear, img::BorderMode::Constant, 0});
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()));
  EXPECT_GT(stats.fps, 0.0);
}

TEST(GpuPlatform, FpsScalesWithSmCountUntilBandwidthBound) {
  const Env s(640, 480);
  auto stats_for = [&](int sms) {
    GpuConfig config;
    config.cost.num_sms = sms;
    GpuPlatform platform(s.map, config);
    img::Image8 out(640, 480, 1);
    return platform.run_frame(s.src.view(), out.view(), 0);
  };
  const double f1 = stats_for(1).fps;
  const double f8 = stats_for(8).fps;
  const double f30 = stats_for(30).fps;
  const double f120 = stats_for(120).fps;
  EXPECT_GT(f8, f1 * 6.0);       // ALU-bound region: near-linear
  EXPECT_GT(f30, f8);
  // Far past the roofline knee extra SMs buy (almost) nothing.
  EXPECT_LT(f120 / f30, 2.0);
}

TEST(GpuPlatform, BandwidthBoundWhenDramIsSlow) {
  const Env s(320, 240);
  GpuConfig fast, slow;
  slow.cost.dram_bytes_per_cycle = 1.0;
  img::Image8 out(320, 240, 1);
  const AccelFrameStats sf =
      GpuPlatform(s.map, fast).run_frame(s.src.view(), out.view(), 0);
  const AccelFrameStats ss =
      GpuPlatform(s.map, slow).run_frame(s.src.view(), out.view(), 0);
  EXPECT_GT(sf.fps, ss.fps * 5.0);
  EXPECT_LT(ss.utilization, 0.5);  // ALU mostly idle when bandwidth-bound
}

TEST(GpuPlatform, TextureCacheKeepsMissTrafficLow) {
  const Env s(640, 480);
  GpuPlatform platform(s.map, GpuConfig{});
  img::Image8 out(640, 480, 1);
  const AccelFrameStats stats = platform.run_frame(s.src.view(), out.view(), 0);
  EXPECT_GT(stats.cache_hit_rate(), 0.9);
  // DRAM traffic stays within a few x of the compulsory LUT+out stream.
  const double px = 640.0 * 480.0;
  EXPECT_LT(static_cast<double>(stats.bytes_in + stats.bytes_out),
            3.0 * px * 9.0);
}

TEST(GpuPlatform, LaunchOverheadDominatesTinyFrames) {
  const Env s(32, 32);
  GpuConfig config;
  GpuPlatform platform(s.map, config);
  img::Image8 out(32, 32, 1);
  const AccelFrameStats stats = platform.run_frame(s.src.view(), out.view(), 0);
  EXPECT_GT(stats.cycles, config.cost.launch_overhead_cycles);
  EXPECT_LT(stats.cycles, config.cost.launch_overhead_cycles * 2.0);
}

TEST(GpuPlatform, BackendAdapterWorksAndCaches) {
  const int w = 200, h = 150;
  const core::Corrector corr = core::Corrector::builder(w, h).build();
  const Env s(w, h);
  GpuBackend backend(GpuConfig{});
  img::Image8 out(w, h, 1), ref(w, h, 1);
  core::SerialBackend serial;
  corr.correct(s.src.view(), ref.view(), serial);
  corr.correct(s.src.view(), out.view(), backend);
  // Note: Env's map and corr's map are built identically.
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()));
  EXPECT_GT(backend.last_stats().fps, 0.0);
  EXPECT_EQ(backend.name(), "gpu");
}

TEST(GpuPlatform, InvalidConfigViolatesContract) {
  const Env s(64, 64);
  GpuConfig config;
  config.cost.num_sms = 0;
  EXPECT_THROW(GpuPlatform(s.map, config), fisheye::InvalidArgument);
  config = GpuConfig{};
  config.block_dim = 2;
  EXPECT_THROW(GpuPlatform(s.map, config), fisheye::InvalidArgument);
}

}  // namespace
}  // namespace fisheye::accel
