// ThreadPool behaviour: completion, idle waiting, indexed dispatch,
// shutdown, and a stress run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "parallel/sync.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace fisheye::par {
namespace {

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExplicitSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, InvalidSizeViolatesContract) {
  EXPECT_THROW(ThreadPool(2000), fisheye::InvalidArgument);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<bool> done{false};
  pool.submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    done.store(true);
  });
  pool.wait_idle();
  EXPECT_TRUE(done.load());
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1);
      });
  }  // destructor joins
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, RunIndexedCoversEachIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.run_indexed(n, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, RunIndexedZeroIsNoop) {
  ThreadPool pool(2);
  pool.run_indexed(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, RunIndexedUsesMultipleWorkers) {
  // With 4 workers and tasks that block until all lanes arrive, completion
  // proves parallel execution (would deadlock on fewer lanes than the
  // barrier requires if work were serialized... so use a generous timeout
  // pattern instead: count distinct thread ids).
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  pool.run_indexed(64, [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const std::scoped_lock lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 4u);
}

TEST(ThreadPool, DefaultPoolIsSingleton) {
  ThreadPool& a = default_pool();
  ThreadPool& b = default_pool();
  EXPECT_EQ(&a, &b);
}

TEST(SpinBarrier, SynchronizesParticipants) {
  constexpr int kThreads = 4;
  SpinBarrier barrier(kThreads);
  std::atomic<int> before{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      before.fetch_add(1);
      barrier.arrive_and_wait();
      // After the barrier every participant must have incremented.
      if (before.load() != kThreads) failures.fetch_add(1);
      barrier.arrive_and_wait();  // reusable (sense-reversing)
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(CacheAligned, OccupiesFullCacheLine) {
  static_assert(alignof(CacheAligned<int>) == 64);
  static_assert(sizeof(CacheAligned<int>) == 64);
  CacheAligned<int> arr[2];
  const auto delta = reinterpret_cast<char*>(&arr[1]) -
                     reinterpret_cast<char*>(&arr[0]);
  EXPECT_EQ(delta, 64);
}

TEST(ThreadPoolStress, ManySmallBatches) {
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  for (int batch = 0; batch < 20; ++batch) {
    pool.run_indexed(257, [&sum](std::size_t i) {
      sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
    });
  }
  // 20 * sum(0..256) = 20 * 257*256/2
  EXPECT_EQ(sum.load(), 20LL * 257 * 256 / 2);
}

}  // namespace
}  // namespace fisheye::par
