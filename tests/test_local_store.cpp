// Local-store arena semantics.
#include <gtest/gtest.h>

#include "accel/local_store.hpp"

namespace fisheye::accel {
namespace {

TEST(LocalStore, AllocatesAlignedWithinCapacity) {
  LocalStore store(64 * 1024);
  EXPECT_EQ(store.capacity(), 64u * 1024u);
  EXPECT_EQ(store.used(), 0u);
  std::uint8_t* a = store.allocate(1000);
  std::uint8_t* b = store.allocate(1000);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 16, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 16, 0u);
  EXPECT_GE(b - a, 1000);
  // 1000 rounds to 1008 per allocation.
  EXPECT_EQ(store.used(), 2016u);
}

TEST(LocalStore, ResetFreesButKeepsPeak) {
  LocalStore store(16 * 1024);
  store.allocate(10000);
  EXPECT_EQ(store.peak(), 10000u);  // already 16-aligned
  store.reset();
  EXPECT_EQ(store.used(), 0u);
  EXPECT_EQ(store.peak(), 10000u);
  store.allocate(2000);
  EXPECT_EQ(store.peak(), 10000u);  // smaller second use does not move peak
}

TEST(LocalStore, ExhaustionThrowsResourceError) {
  LocalStore store(8 * 1024);
  store.allocate(6 * 1024);
  EXPECT_THROW(store.allocate(4 * 1024), fisheye::ResourceError);
  // The failed allocation must not corrupt state.
  EXPECT_NO_THROW(store.allocate(1024));
}

TEST(LocalStore, ExactFit) {
  LocalStore store(4096);
  EXPECT_NO_THROW(store.allocate(4096));
  EXPECT_EQ(store.free_bytes(), 0u);
  EXPECT_THROW(store.allocate(1), fisheye::ResourceError);
}

TEST(LocalStore, TinyCapacityViolatesContract) {
  EXPECT_THROW(LocalStore(100), fisheye::InvalidArgument);
}

TEST(LocalStore, BuffersAreWritable) {
  LocalStore store(4096);
  std::uint8_t* p = store.allocate(256);
  for (int i = 0; i < 256; ++i) p[i] = static_cast<std::uint8_t>(i);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(p[i], i);
}

}  // namespace
}  // namespace fisheye::accel
