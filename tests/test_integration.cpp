// Cross-module integration: full synthesize -> correct -> measure loops,
// file round trips of corrected output, panoramas, PTZ views, and the
// accuracy comparison between the exact and Brown-Conrady pipelines.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "accel/accel_backend.hpp"
#include "calib/calibrate.hpp"
#include "core/brown_conrady.hpp"
#include "core/corrector.hpp"
#include "image/io_pnm.hpp"
#include "image/metrics.hpp"
#include "image/synth.hpp"
#include "video/pipeline.hpp"

namespace fisheye {
namespace {

using core::Corrector;
using util::deg_to_rad;

TEST(Integration, CheckerboardEdgesStraightenAcrossTheFrame) {
  // Render a checkerboard scene, fisheye it, correct it, and verify that
  // the corrected image matches a direct (scaled) view of the scene far
  // better than the distorted one does.
  const int w = 320, h = 240;
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 deg_to_rad(180.0), w, h);
  const img::Image8 scene = img::make_checkerboard(2 * w, 2 * h, 40);
  const core::WarpMap synth =
      core::build_synthesis_map(cam, 2 * w, 2 * h, 0.5 * w, w, h);
  img::Image8 fish(w, h, 1);
  core::remap_rect(scene.view(), fish.view(), synth, {0, 0, w, h},
                   {core::Interp::Bilinear, img::BorderMode::Constant, 0});

  const Corrector corr = Corrector::builder(w, h).fov_degrees(180.0).build();
  core::SerialBackend backend;
  img::Image8 corrected(w, h, 1);
  corr.correct(fish.view(), corrected.view(), backend);

  // Expected view: the scene resampled at f_out/f_scene about the centre.
  const double scale = (0.5 * w) / corr.config().out_focal;
  img::Image8 expected(w, h, 1);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      const double sx = (2 * w - 1) * 0.5 + (x - (w - 1) * 0.5) * scale;
      const double sy = (2 * h - 1) * 0.5 + (y - (h - 1) * 0.5) * scale;
      std::uint8_t v = 0;
      core::sample_bilinear(scene.view(), static_cast<float>(sx),
                            static_cast<float>(sy),
                            img::BorderMode::Constant, 0, &v);
      expected.at(x, y) = v;
    }

  // Compare over the central region where the fisheye saw the scene.
  const par::Rect roi{w / 6, h / 6, 5 * w / 6, 5 * h / 6};
  auto crop = [&](const img::Image8& im) {
    img::Image8 out(roi.width(), roi.height(), 1);
    for (int y = 0; y < roi.height(); ++y)
      for (int x = 0; x < roi.width(); ++x)
        out.at(x, y) = im.at(roi.x0 + x, roi.y0 + y);
    return out;
  };
  const double psnr_corrected =
      img::psnr(crop(expected).view(), crop(corrected).view());
  const double psnr_distorted =
      img::psnr(crop(expected).view(), crop(fish).view());
  EXPECT_GT(psnr_corrected, psnr_distorted + 6.0);  // > 4x less error power
  EXPECT_GT(psnr_corrected, 18.0);
}

TEST(Integration, ExactPipelineBeatsBrownConradyAtWideFov) {
  // T3's core claim, end to end on images: correct the same frame with the
  // exact inverse and with a fitted Brown-Conrady map; compare both to the
  // exact result of a supersampled reference... the exact map IS the
  // reference geometry, so measure geometric error of the polynomial map
  // and verify it translates into pixel differences concentrated at the
  // edge.
  const int w = 320, h = 240;
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 deg_to_rad(175.0), w, h);
  const core::PerspectiveView view(w, h, cam.lens().focal());
  const core::WarpMap exact = core::build_map(cam, view);
  // Fit the polynomial over 50 degrees half-angle (a typical narrow
  // calibration sweep); output pixels near the frame corners look beyond
  // that, where the polynomial extrapolates badly.
  const core::BrownConrady bc =
      core::fit_brown_conrady(cam.lens(), deg_to_rad(50.0));
  const core::WarpMap poly =
      core::build_brown_conrady_map(bc, cam.cx(), cam.cy(), view);

  // Geometric error by output-radius band.
  auto band_error = [&](double r_lo, double r_hi) {
    double worst = 0.0;
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < w; ++x) {
        const double r = std::hypot(x - cam.cx(), y - cam.cy());
        if (r < r_lo || r >= r_hi) continue;
        const std::size_t i = exact.index(x, y);
        worst = std::max(worst, static_cast<double>(std::hypot(
                                    exact.src_x[i] - poly.src_x[i],
                                    exact.src_y[i] - poly.src_y[i])));
      }
    return worst;
  };
  const double centre_err = band_error(0, 40);
  const double edge_err = band_error(150, 190);
  EXPECT_LT(centre_err, 1.0);
  EXPECT_GT(edge_err, 1.5);
  EXPECT_GT(edge_err, 3.0 * centre_err);
}

TEST(Integration, CorrectedFrameSurvivesFileRoundTrip) {
  const int w = 160, h = 120;
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 deg_to_rad(180.0), w, h);
  video::SyntheticVideoSource source(cam, w, h, 3);
  const Corrector corr = Corrector::builder(w, h).build();
  core::SerialBackend backend;
  img::Image8 out(w, h, 3);
  corr.correct(source.frame(0).view(), out.view(), backend);
  const std::string path = ::testing::TempDir() + "/fe_integration.ppm";
  img::write_pnm(path, out.view());
  const img::Image8 back = img::read_pnm(path);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(out.view(), back.view()));
  std::remove(path.c_str());
}

TEST(Integration, PanoramaCoversWideField) {
  const int w = 240, h = 180;
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 deg_to_rad(180.0), w, h);
  video::SyntheticVideoSource source(cam, w, h, 1);
  const img::Image8 fish = source.frame(0);

  const core::EquirectangularView pano(360, 120, deg_to_rad(170.0),
                                       deg_to_rad(60.0));
  const core::WarpMap map = core::build_map(cam, pano);
  img::Image8 out(360, 120, 1);
  core::remap_rect(fish.view(), out.view(), map, {0, 0, 360, 120},
                   {core::Interp::Bilinear, img::BorderMode::Constant, 0});
  // A 170x60-degree panorama of a 180-degree lens is fully inside the image
  // circle: (almost) every output pixel valid.
  EXPECT_GT(core::valid_fraction(map, w, h), 0.99);
  // And carries actual content.
  int nonzero = 0;
  for (int y = 0; y < 120; ++y)
    for (int x = 0; x < 360; ++x) nonzero += out.at(x, y) != 0;
  EXPECT_GT(nonzero, 360 * 120 / 2);
}

TEST(Integration, PtzViewsLookAtDifferentScenery) {
  const int w = 240, h = 180;
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 deg_to_rad(180.0), w, h);
  video::SyntheticVideoSource source(cam, w, h, 1);
  const img::Image8 fish = source.frame(0);

  auto render = [&](double pan) {
    const core::PerspectiveView view = core::PerspectiveView::ptz(
        120, 90, deg_to_rad(pan), deg_to_rad(10.0), deg_to_rad(60.0));
    const core::WarpMap map = core::build_map(cam, view);
    img::Image8 out(120, 90, 1);
    core::remap_rect(fish.view(), out.view(), map, {0, 0, 120, 90},
                     {core::Interp::Bilinear, img::BorderMode::Constant, 0});
    return out;
  };
  const img::Image8 left = render(-40.0);
  const img::Image8 right = render(40.0);
  EXPECT_FALSE(img::equal_pixels<std::uint8_t>(left.view(), right.view()));
  EXPECT_LT(img::ssim(left.view(), right.view()), 0.9);
}

TEST(Integration, AllPlatformsAgreeOnOneFrame) {
  // The T2 sanity core: serial CPU, pooled CPU, SIMD, Cell-sim and FPGA-sim
  // all produce (near-)identical output for the same configuration.
  const int w = 200, h = 150;
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 deg_to_rad(180.0), w, h);
  video::SyntheticVideoSource source(cam, w, h, 1);
  const img::Image8 fish = source.frame(0);

  const Corrector float_corr = Corrector::builder(w, h).build();
  const Corrector packed_corr =
      Corrector::builder(w, h).map_mode(core::MapMode::PackedLut).build();

  img::Image8 ref(w, h, 1);
  core::SerialBackend serial;
  float_corr.correct(fish.view(), ref.view(), serial);

  par::ThreadPool pool(4);
  core::PoolBackend pooled(pool);
  img::Image8 out_pool(w, h, 1);
  float_corr.correct(fish.view(), out_pool.view(), pooled);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out_pool.view()));

  core::SimdBackend simd;
  img::Image8 out_simd(w, h, 1);
  float_corr.correct(fish.view(), out_simd.view(), simd);
  EXPECT_LT(img::fraction_differing(ref.view(), out_simd.view(), 1), 0.01);

  accel::CellBackend cell(accel::SpeConfig{});
  img::Image8 out_cell(w, h, 1);
  float_corr.correct(fish.view(), out_cell.view(), cell);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out_cell.view()));

  accel::FpgaBackend fpga(accel::FpgaConfig{});
  img::Image8 out_fpga(w, h, 1);
  packed_corr.correct(fish.view(), out_fpga.view(), fpga);
  // Fixed-point LUT vs float LUT: within 2 levels everywhere.
  EXPECT_LE(img::max_abs_diff(ref.view(), out_fpga.view()), 2);
}

TEST(Integration, CalibrateThenCorrectRecoversGeometry) {
  // Full loop: calibrate intrinsics from noisy synthetic detections, build
  // a corrector from the *estimated* parameters, and verify the corrected
  // output is nearly identical to one built from ground truth.
  const int w = 320, h = 240;
  const double fov = deg_to_rad(180.0);
  const auto truth =
      core::FisheyeCamera::centered(core::LensKind::Equidistant, fov, w, h);
  util::Rng rng(9);
  const auto obs = calib::make_grid_correspondences(
      truth, 11, deg_to_rad(80.0), 0.3, rng);
  const calib::CalibrationResult est = calib::calibrate_radial(
      core::LensKind::Equidistant, obs, truth.lens().focal() * 1.2,
      truth.cx() + 8, truth.cy() - 6);
  EXPECT_NEAR(est.focal, truth.lens().focal(), 0.5);

  // FOV implied by the estimated focal for the same image circle.
  const double est_fov = 2.0 * (0.5 * std::min(w, h)) / est.focal;
  const Corrector corr_est = Corrector::builder(w, h)
                                 .fov_degrees(util::rad_to_deg(est_fov))
                                 .build();
  const Corrector corr_truth = Corrector::builder(w, h).build();
  video::SyntheticVideoSource source(truth, w, h, 1);
  const img::Image8 fish = source.frame(0);
  core::SerialBackend backend;
  img::Image8 a(w, h, 1), b(w, h, 1);
  corr_est.correct(fish.view(), a.view(), backend);
  corr_truth.correct(fish.view(), b.view(), backend);
  EXPECT_GT(img::psnr(a.view(), b.view()), 28.0);
}

}  // namespace
}  // namespace fisheye
