// Multi-stream executor invariants: bit-exactness of every stream against
// a solo Corrector, frame/tile accounting (local + stolen == tiles per
// frame), ordering and closed-loop semantics of the retire callback,
// fairness under adversarial mixed loads (no stream starves), starvation
// counter wiring, and concurrent stream add/remove while serving — the
// last one is what the CI ThreadSanitizer job exercises.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/corrector.hpp"
#include "image/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "stream/stream_executor.hpp"
#include "video/pipeline.hpp"

namespace fisheye::stream {
namespace {

core::Corrector make_corrector(int w, int h, double fov_deg = 170.0) {
  return core::Corrector::builder(w, h).fov_degrees(fov_deg).build();
}

img::Image8 make_fisheye(int w, int h, int index = 0, int channels = 1) {
  const auto cam = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, util::deg_to_rad(180.0), w, h);
  const video::SyntheticVideoSource source(cam, w, h, channels);
  return source.frame(index);
}

img::Image8 solo_reference(const core::Corrector& corr,
                           const img::Image8& src) {
  img::Image8 out(corr.config().out_width, corr.config().out_height,
                  src.channels());
  core::SerialBackend serial;
  corr.correct(src.view(), out.view(), serial);
  return out;
}

TEST(StreamExecutor, SingleStreamMatchesSoloCorrector) {
  const int w = 160, h = 120;
  const core::Corrector corr = make_corrector(w, h);
  par::ThreadPool pool(3);
  StreamExecutor exec(pool);
  const StreamId id = exec.add_stream(corr);

  for (int f = 0; f < 4; ++f) {
    const img::Image8 src = make_fisheye(w, h, f);
    img::Image8 out(w, h, 1);
    const std::uint64_t seq = exec.submit(id, src.view(), out.view());
    exec.wait(id, seq);
    EXPECT_TRUE(img::equal_pixels<std::uint8_t>(
        solo_reference(corr, src).view(), out.view()))
        << "frame " << f;
  }
  const rt::StreamStats st = exec.stats(id);
  EXPECT_EQ(st.frames, 4u);
  EXPECT_EQ(st.tiles_local + st.tiles_stolen,
            4u * exec.plan(id).tiles().size());
}

TEST(StreamExecutor, MixedGeometryStreamsStayBitExact) {
  // Streams of different resolutions, fields of view, and channel counts
  // in flight together: stealing must never cross-contaminate outputs.
  struct Spec {
    int w, h, channels;
    double fov;
  };
  const std::vector<Spec> specs = {
      {160, 120, 1, 170.0}, {96, 64, 1, 120.0}, {64, 48, 3, 150.0},
      {128, 96, 1, 180.0},  {80, 60, 1, 140.0},
  };
  par::ThreadPool pool(4);
  StreamExecutor exec(pool);

  std::vector<core::Corrector> corrs;
  corrs.reserve(specs.size());
  for (const Spec& sp : specs) corrs.push_back(make_corrector(sp.w, sp.h, sp.fov));

  constexpr int kFrames = 3;
  std::vector<StreamId> ids;
  std::vector<std::vector<img::Image8>> srcs(specs.size()), outs(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ids.push_back(exec.add_stream(corrs[i], specs[i].channels));
    for (int f = 0; f < kFrames; ++f) {
      srcs[i].push_back(make_fisheye(specs[i].w, specs[i].h, f,
                                     specs[i].channels));
      outs[i].emplace_back(specs[i].w, specs[i].h, specs[i].channels);
    }
  }
  // Round-robin across streams so frames genuinely overlap in flight.
  for (int f = 0; f < kFrames; ++f)
    for (std::size_t i = 0; i < specs.size(); ++i)
      exec.submit(ids[i], srcs[i][static_cast<std::size_t>(f)].view(),
                  outs[i][static_cast<std::size_t>(f)].view());
  exec.drain();

  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (int f = 0; f < kFrames; ++f) {
      EXPECT_TRUE(img::equal_pixels<std::uint8_t>(
          solo_reference(corrs[i], srcs[i][static_cast<std::size_t>(f)]).view(),
          outs[i][static_cast<std::size_t>(f)].view()))
          << "stream " << i << " frame " << f;
    }
    const rt::StreamStats st = exec.stats(ids[i]);
    EXPECT_EQ(st.frames, static_cast<std::size_t>(kFrames));
    // Tile conservation per stream: every tile of every frame ran exactly
    // once, as owner-local or stolen.
    EXPECT_EQ(st.tiles_local + st.tiles_stolen,
              static_cast<std::size_t>(kFrames) * exec.plan(ids[i]).tiles().size());
  }
}

TEST(StreamExecutor, AdversarialMixNeverStarvesSmallStreams) {
  // One heavy stream next to four tiny ones on a two-worker pool; every
  // stream must keep retiring frames (FIFO frame claim = no starvation)
  // and the wait accounting must stay sane.
  par::ThreadPool pool(2);
  StreamExecutorOptions opts;
  opts.starvation_wait_seconds = 60.0;  // only true stalls would trip this
  StreamExecutor exec(pool, opts);

  const core::Corrector heavy = make_corrector(320, 240);
  std::vector<core::Corrector> light;
  for (int i = 0; i < 4; ++i) light.push_back(make_corrector(64, 48));

  const StreamId heavy_id = exec.add_stream(heavy);
  std::vector<StreamId> light_ids;
  for (const core::Corrector& c : light)
    light_ids.push_back(exec.add_stream(c));

  const img::Image8 heavy_src = make_fisheye(320, 240);
  const img::Image8 light_src = make_fisheye(64, 48);
  img::Image8 heavy_out(320, 240, 1);
  std::vector<img::Image8> light_outs;
  for (int i = 0; i < 4; ++i) light_outs.emplace_back(64, 48, 1);

  constexpr int kFrames = 12;
  for (int f = 0; f < kFrames; ++f) {
    exec.submit(heavy_id, heavy_src.view(), heavy_out.view());
    for (std::size_t i = 0; i < light_ids.size(); ++i)
      exec.submit(light_ids[i], light_src.view(), light_outs[i].view());
  }
  exec.drain();

  for (const StreamId id : light_ids) {
    const rt::StreamStats st = exec.stats(id);
    EXPECT_EQ(st.frames, static_cast<std::size_t>(kFrames));
    EXPECT_EQ(st.starvation_events, 0u);
    EXPECT_GE(st.max_wait_seconds, 0.0);
    EXPECT_GE(st.total_wait_seconds, 0.0);
  }
  EXPECT_EQ(exec.stats(heavy_id).frames, static_cast<std::size_t>(kFrames));
  EXPECT_EQ(exec.stats(heavy_id).starvation_events, 0u);
}

TEST(StreamExecutor, StarvationCounterTripsWithZeroThreshold) {
  // Wiring check: with a zero threshold every frame's (positive) wait is a
  // starvation event, so the counter must equal the frame count.
  par::ThreadPool pool(2);
  StreamExecutorOptions opts;
  opts.starvation_wait_seconds = 0.0;
  StreamExecutor exec(pool, opts);
  const core::Corrector corr = make_corrector(96, 64);
  const StreamId id = exec.add_stream(corr);
  const img::Image8 src = make_fisheye(96, 64);
  img::Image8 out(96, 64, 1);
  for (int f = 0; f < 5; ++f) exec.submit(id, src.view(), out.view());
  exec.drain();
  EXPECT_EQ(exec.stats(id).starvation_events, 5u);
}

TEST(StreamExecutor, RetireCallbackSeesFramesInOrderAndCanResubmit) {
  // Closed-loop driving: the callback submits the stream's next frame.
  par::ThreadPool pool(2);
  const core::Corrector corr = make_corrector(96, 64);
  const img::Image8 src = make_fisheye(96, 64);
  img::Image8 out(96, 64, 1);

  constexpr std::uint64_t kTarget = 9;
  std::vector<std::uint64_t> retired;  // callback-serialized per stream
  StreamExecutor exec(pool);
  StreamExecutor* exec_ptr = &exec;
  const StreamId id = exec.add_stream(
      corr, 1,
      [&retired, exec_ptr, &src, &out](StreamId sid, std::uint64_t seq,
                                       double latency) {
        retired.push_back(seq);
        EXPECT_GT(latency, 0.0);
        if (seq < kTarget) exec_ptr->submit(sid, src.view(), out.view());
      });
  exec.submit(id, src.view(), out.view());
  exec.wait(id, kTarget);
  exec.drain();

  ASSERT_EQ(retired.size(), kTarget);
  for (std::uint64_t i = 0; i < kTarget; ++i) EXPECT_EQ(retired[i], i + 1);
}

TEST(StreamExecutor, SubmitBackpressureBlocksAtQueueDepth) {
  par::ThreadPool pool(1);
  StreamExecutorOptions opts;
  opts.queue_depth = 2;
  StreamExecutor exec(pool, opts);
  const core::Corrector corr = make_corrector(96, 64);
  const StreamId id = exec.add_stream(corr);
  const img::Image8 src = make_fisheye(96, 64);
  img::Image8 out(96, 64, 1);
  // Many more frames than depth: submission simply blocks and the run
  // completes — the invariant is no deadlock and full accounting.
  for (int f = 0; f < 10; ++f) exec.submit(id, src.view(), out.view());
  exec.drain();
  EXPECT_EQ(exec.stats(id).frames, 10u);
}

TEST(StreamExecutor, StreamCapacityIsEnforced) {
  par::ThreadPool pool(1);
  StreamExecutorOptions opts;
  opts.max_streams = 2;
  StreamExecutor exec(pool, opts);
  const core::Corrector corr = make_corrector(64, 48);
  (void)exec.add_stream(corr);
  (void)exec.add_stream(corr);
  EXPECT_THROW((void)exec.add_stream(corr), InvalidArgument);
}

TEST(StreamExecutor, RemoveStreamDrainsAndFreesTheSlot) {
  par::ThreadPool pool(2);
  StreamExecutorOptions opts;
  opts.max_streams = 2;
  StreamExecutor exec(pool, opts);
  const core::Corrector corr = make_corrector(96, 64);
  const img::Image8 src = make_fisheye(96, 64);
  img::Image8 out(96, 64, 1);

  std::atomic<int> retired{0};
  const StreamId a = exec.add_stream(
      corr, 1, [&retired](StreamId, std::uint64_t, double) { ++retired; });
  for (int f = 0; f < 4; ++f) exec.submit(a, src.view(), out.view());
  exec.remove_stream(a);  // waits for the 4 queued frames
  EXPECT_EQ(retired.load(), 4);

  // The capacity freed by remove is reusable (ids are recycled). The two
  // streams run concurrently, so each needs its own output frame.
  const StreamId b = exec.add_stream(corr);
  const StreamId c = exec.add_stream(corr);
  img::Image8 out_c(96, 64, 1);
  exec.submit(b, src.view(), out.view());
  exec.submit(c, src.view(), out_c.view());
  exec.drain();
  EXPECT_EQ(exec.stats(b).frames, 1u);
  EXPECT_EQ(exec.stats(c).frames, 1u);
}

TEST(StreamExecutor, ConcurrentAddRemoveWhileServing) {
  // The TSan target: two churn threads add/serve/remove short-lived
  // streams while a long-lived stream keeps flowing. Exercises the slot
  // state machine (create/post/retire/destroy) under real concurrency.
  par::ThreadPool pool(3);
  StreamExecutorOptions opts;
  opts.max_streams = 8;
  StreamExecutor exec(pool, opts);

  const core::Corrector main_corr = make_corrector(128, 96);
  const img::Image8 main_src = make_fisheye(128, 96);
  img::Image8 main_out(128, 96, 1);
  const StreamId main_id = exec.add_stream(main_corr);

  std::atomic<int> churn_frames{0};
  const auto churn = [&exec, &churn_frames](int rounds) {
    const core::Corrector corr = make_corrector(64, 48);
    const img::Image8 src = make_fisheye(64, 48);
    img::Image8 out(64, 48, 1);
    for (int r = 0; r < rounds; ++r) {
      const StreamId id = exec.add_stream(corr);
      std::uint64_t last = 0;
      for (int f = 0; f < 3; ++f)
        last = exec.submit(id, src.view(), out.view());
      exec.wait(id, last);
      exec.remove_stream(id);
      churn_frames.fetch_add(3);
    }
  };

  std::thread t1(churn, 6);
  std::thread t2(churn, 6);
  for (int f = 0; f < 24; ++f) {
    exec.submit(main_id, main_src.view(), main_out.view());
  }
  t1.join();
  t2.join();
  exec.drain();

  EXPECT_EQ(exec.stats(main_id).frames, 24u);
  EXPECT_EQ(churn_frames.load(), 36);
  EXPECT_EQ(exec.streams(), 1u);  // churn streams all removed
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(
      solo_reference(main_corr, main_src).view(), main_out.view()));
}

TEST(StreamExecutor, TwoExecutorsSplitOnePool) {
  // Lane-scoped service: two executors take 2 lanes each of a 4-lane
  // pool and serve concurrently — the multi-source serving topology.
  const int w = 96, h = 64;
  const core::Corrector corr = make_corrector(w, h);
  par::ThreadPool pool(4);
  StreamExecutorOptions opts;
  opts.lanes = 2;
  StreamExecutor exec_a(pool, opts);
  StreamExecutor exec_b(pool, opts);
  EXPECT_EQ(exec_a.workers(), 2u);
  EXPECT_EQ(exec_b.workers(), 2u);
  const StreamId id_a = exec_a.add_stream(corr);
  const StreamId id_b = exec_b.add_stream(corr);

  for (int f = 0; f < 4; ++f) {
    const img::Image8 src = make_fisheye(w, h, f);
    img::Image8 out_a(w, h, 1), out_b(w, h, 1);
    const std::uint64_t seq_a = exec_a.submit(id_a, src.view(), out_a.view());
    const std::uint64_t seq_b = exec_b.submit(id_b, src.view(), out_b.view());
    exec_a.wait(id_a, seq_a);
    exec_b.wait(id_b, seq_b);
    const img::Image8 ref = solo_reference(corr, src);
    EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out_a.view()))
        << "executor A frame " << f;
    EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out_b.view()))
        << "executor B frame " << f;
  }
  EXPECT_EQ(exec_a.stats(id_a).frames, 4u);
  EXPECT_EQ(exec_b.stats(id_b).frames, 4u);
}

TEST(StreamExecutor, PlanCarriesPerFrameInstrumentation) {
  par::ThreadPool pool(2);
  StreamExecutor exec(pool);
  const core::Corrector corr = make_corrector(160, 120);
  const StreamId id = exec.add_stream(corr);
  const img::Image8 src = make_fisheye(160, 120);
  img::Image8 out(160, 120, 1);
  const std::uint64_t seq = exec.submit(id, src.view(), out.view());
  exec.wait(id, seq);
  exec.drain();

  const core::ExecutionPlan& plan = exec.plan(id);
  const rt::TileStats ts = plan.tile_stats();
  EXPECT_EQ(ts.tiles, static_cast<int>(plan.tiles().size()));
  EXPECT_GT(ts.total_seconds, 0.0);
  EXPECT_EQ(ts.local_tiles + ts.stolen_tiles, plan.tiles().size());
}

TEST(StreamExecutor, MismatchedFrameGeometryViolatesContract) {
  par::ThreadPool pool(1);
  StreamExecutor exec(pool);
  const core::Corrector corr = make_corrector(96, 64);
  const StreamId id = exec.add_stream(corr);
  const img::Image8 wrong = make_fisheye(64, 48);
  img::Image8 out(64, 48, 1);
  EXPECT_THROW(exec.submit(id, wrong.view(), out.view()), fisheye::Error);
}

}  // namespace
}  // namespace fisheye::stream
