// Output-view projections: ray conventions, PTZ factory, panoramas.
#include <gtest/gtest.h>

#include <cmath>

#include "core/projection.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"

namespace fisheye::core {
namespace {

using util::deg_to_rad;
using util::Vec2;
using util::Vec3;

TEST(Perspective, CentrePixelLooksForward) {
  const PerspectiveView view(641, 481, 300.0);
  const Vec3 ray = view.ray_for_pixel({320.0, 240.0});
  EXPECT_NEAR(ray.x, 0.0, 1e-12);
  EXPECT_NEAR(ray.y, 0.0, 1e-12);
  EXPECT_NEAR(ray.z, 1.0, 1e-12);
}

TEST(Perspective, FocalControlsAngle) {
  const PerspectiveView view(201, 201, 100.0);
  // 100 px right of centre at focal 100 -> 45 degrees.
  const Vec3 ray = view.ray_for_pixel({200.0, 100.0});
  EXPECT_NEAR(std::atan2(ray.x, ray.z), deg_to_rad(45.0), 1e-12);
}

TEST(Perspective, YIsDown) {
  const PerspectiveView view(201, 201, 100.0);
  const Vec3 ray = view.ray_for_pixel({100.0, 200.0});  // bottom of image
  EXPECT_GT(ray.y, 0.0);
}

TEST(Perspective, PtzPanRotatesOpticalAxis) {
  const PerspectiveView view =
      PerspectiveView::ptz(200, 200, deg_to_rad(90.0), 0.0, deg_to_rad(60.0));
  const Vec3 ray = view.ray_for_pixel({99.5, 99.5});
  // Panned 90 degrees right: centre ray points along +X.
  EXPECT_NEAR(ray.x, 1.0, 1e-9);
  EXPECT_NEAR(ray.z, 0.0, 1e-9);
}

TEST(Perspective, PtzTiltLooksDown) {
  const PerspectiveView view =
      PerspectiveView::ptz(200, 200, 0.0, deg_to_rad(30.0), deg_to_rad(60.0));
  const Vec3 ray = view.ray_for_pixel({99.5, 99.5});
  EXPECT_GT(ray.y, 0.0);  // +Y is down
  EXPECT_NEAR(std::atan2(ray.y, ray.z), deg_to_rad(30.0), 1e-9);
}

TEST(Perspective, PtzFovSetsFocal) {
  const PerspectiveView view =
      PerspectiveView::ptz(400, 300, 0.0, 0.0, deg_to_rad(90.0));
  EXPECT_NEAR(view.focal(), 200.0, 1e-9);  // w/2 / tan(45)
}

TEST(Perspective, InvalidParamsViolateContracts) {
  EXPECT_THROW(PerspectiveView(0, 10, 100.0), fisheye::InvalidArgument);
  EXPECT_THROW(PerspectiveView(10, 10, 0.0), fisheye::InvalidArgument);
  EXPECT_THROW(
      PerspectiveView::ptz(10, 10, 0.0, 0.0, deg_to_rad(180.0)),
      fisheye::InvalidArgument);
}

TEST(Equirect, CornersMapToFovEdges) {
  const EquirectangularView view(361, 181, deg_to_rad(360.0),
                                 deg_to_rad(180.0));
  // Left edge, middle row: lon = -180, lat = 0 -> ray (0, 0, -1) via
  // sin(-pi)=~0, cos(-pi)=-1.
  const Vec3 left = view.ray_for_pixel({0.0, 90.0});
  EXPECT_NEAR(left.z, -1.0, 1e-9);
  EXPECT_NEAR(left.y, 0.0, 1e-9);
  // Centre: forward.
  const Vec3 centre = view.ray_for_pixel({180.0, 90.0});
  EXPECT_NEAR(centre.z, 1.0, 1e-12);
  // Bottom centre: straight down (+Y).
  const Vec3 down = view.ray_for_pixel({180.0, 180.0});
  EXPECT_NEAR(down.y, 1.0, 1e-9);
}

TEST(Equirect, RaysAreUnit) {
  const EquirectangularView view(100, 50, deg_to_rad(180.0),
                                 deg_to_rad(90.0));
  for (int y = 0; y < 50; y += 7)
    for (int x = 0; x < 100; x += 13) {
      const Vec3 r = view.ray_for_pixel(
          {static_cast<double>(x), static_cast<double>(y)});
      EXPECT_NEAR(r.norm(), 1.0, 1e-12);
    }
}

TEST(Equirect, InvalidFovViolatesContract) {
  EXPECT_THROW(
      EquirectangularView(10, 10, deg_to_rad(400.0), deg_to_rad(90.0)),
      fisheye::InvalidArgument);
  EXPECT_THROW(
      EquirectangularView(10, 10, deg_to_rad(90.0), deg_to_rad(200.0)),
      fisheye::InvalidArgument);
}

TEST(Cylindrical, VerticalLinesShareLongitude) {
  const CylindricalView view(360, 200, deg_to_rad(180.0), 120.0);
  // All pixels of one column have the same x/z ratio (same longitude).
  const Vec3 top = view.ray_for_pixel({250.0, 0.0});
  const Vec3 bottom = view.ray_for_pixel({250.0, 199.0});
  EXPECT_NEAR(std::atan2(top.x, top.z), std::atan2(bottom.x, bottom.z), 1e-12);
}

TEST(Cylindrical, CentreForwardAndFocalScalesHeight) {
  const CylindricalView view(361, 201, deg_to_rad(180.0), 100.0);
  const Vec3 centre = view.ray_for_pixel({180.0, 100.0});
  EXPECT_NEAR(centre.x, 0.0, 1e-12);
  EXPECT_NEAR(centre.y, 0.0, 1e-12);
  const Vec3 below = view.ray_for_pixel({180.0, 200.0});
  EXPECT_NEAR(below.y, 1.0, 1e-12);  // 100 px / focal 100
}

TEST(Names, AreStable) {
  EXPECT_EQ(PerspectiveView(10, 10, 5.0).name(), "perspective");
  EXPECT_EQ(EquirectangularView(10, 10, 1.0, 1.0).name(), "equirectangular");
  EXPECT_EQ(CylindricalView(10, 10, 1.0, 5.0).name(), "cylindrical");
}

}  // namespace
}  // namespace fisheye::core
