// Warp-map serialization: round trips, corruption detection, fuzz.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/map_io.hpp"
#include "core/remap.hpp"
#include "image/image.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"

namespace fisheye::core {
namespace {

using util::deg_to_rad;

WarpMap test_map(int w = 96, int h = 64) {
  const auto cam = FisheyeCamera::centered(LensKind::Equidistant,
                                           deg_to_rad(180.0), w, h);
  const PerspectiveView view(w, h, cam.lens().focal());
  return build_map(cam, view);
}

TEST(MapIo, FloatRoundTripIsBitExact) {
  const WarpMap map = test_map();
  const WarpMap back = decode_map(encode_map(map));
  ASSERT_EQ(back.width, map.width);
  ASSERT_EQ(back.height, map.height);
  for (std::size_t i = 0; i < map.pixel_count(); ++i) {
    ASSERT_EQ(back.src_x[i], map.src_x[i]) << i;
    ASSERT_EQ(back.src_y[i], map.src_y[i]) << i;
  }
}

TEST(MapIo, PackedRoundTripIsBitExact) {
  const WarpMap map = test_map();
  const PackedMap packed = pack_map(map, 96, 64, 12);
  const PackedMap back = decode_packed_map(encode_map(packed));
  ASSERT_EQ(back.frac_bits, 12);
  for (std::size_t i = 0; i < packed.fx.size(); ++i) {
    ASSERT_EQ(back.fx[i], packed.fx[i]);
    ASSERT_EQ(back.fy[i], packed.fy[i]);
  }
}

TEST(MapIo, CompactRoundTripIsBitExact) {
  const WarpMap map = test_map();
  const CompactMap cm = compact_map(map, 96, 64, 8, 12);
  const CompactMap back = decode_compact_map(encode_map(cm));
  ASSERT_EQ(back.width, cm.width);
  ASSERT_EQ(back.height, cm.height);
  ASSERT_EQ(back.stride, 8);
  ASSERT_EQ(back.frac_bits, 12);
  ASSERT_EQ(back.src_width, 96);
  ASSERT_EQ(back.src_height, 64);
  ASSERT_EQ(back.grid_w, cm.grid_w);
  ASSERT_EQ(back.grid_h, cm.grid_h);
  EXPECT_EQ(back.gx, cm.gx);
  EXPECT_EQ(back.gy, cm.gy);
  EXPECT_FLOAT_EQ(back.max_error, cm.max_error);
  EXPECT_FLOAT_EQ(back.mean_error, cm.mean_error);
}

TEST(MapIo, CompactFileRoundTripDrivesRemapIdentically) {
  const WarpMap map = test_map();
  const CompactMap cm = compact_map(map, 96, 64, 8);
  const std::string path = ::testing::TempDir() + "/fe_map_io_compact.femap";
  save_map(path, cm);
  const CompactMap loaded = load_compact_map(path);
  std::remove(path.c_str());

  fisheye::img::Image8 src(96, 64, 1);
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 96; ++x)
      src.at(x, y) = static_cast<std::uint8_t>((x * 7 + y * 13) & 0xFF);
  fisheye::img::Image8 a(96, 64, 1), b(96, 64, 1);
  remap_compact_rect(src.view(), a.view(), cm, {0, 0, 96, 64}, 0);
  remap_compact_rect(src.view(), b.view(), loaded, {0, 0, 96, 64}, 0);
  EXPECT_TRUE(fisheye::img::equal_pixels<std::uint8_t>(a.view(), b.view()));
}

TEST(MapIo, FileRoundTrip) {
  const WarpMap map = test_map(40, 30);
  const std::string path = ::testing::TempDir() + "/fe_map_io.femap";
  save_map(path, map);
  const WarpMap back = load_map(path);
  EXPECT_EQ(back.width, 40);
  EXPECT_EQ(back.src_x, map.src_x);
  std::remove(path.c_str());
  EXPECT_THROW(load_map(path), fisheye::IoError);  // now missing
}

TEST(MapIo, KindMismatchRejected) {
  const WarpMap map = test_map(16, 16);
  const std::string float_bytes = encode_map(map);
  EXPECT_THROW(decode_packed_map(float_bytes), fisheye::IoError);
  EXPECT_THROW(decode_compact_map(float_bytes), fisheye::IoError);
  const std::string packed_bytes = encode_map(pack_map(map, 16, 16, 14));
  EXPECT_THROW(decode_map(packed_bytes), fisheye::IoError);
  const std::string compact_bytes =
      encode_map(compact_map(map, 16, 16, 4));
  EXPECT_THROW(decode_map(compact_bytes), fisheye::IoError);
  EXPECT_THROW(decode_packed_map(compact_bytes), fisheye::IoError);
}

TEST(MapIo, CompactCorruptionAndTruncationDetected) {
  const CompactMap cm = compact_map(test_map(16, 16), 16, 16, 4);
  std::string bytes = encode_map(cm);
  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x40;
  EXPECT_THROW(decode_compact_map(flipped), fisheye::IoError);
  for (std::size_t cut : {std::size_t{0}, std::size_t{5}, bytes.size() / 2,
                          bytes.size() - 1})
    EXPECT_THROW(decode_compact_map(bytes.substr(0, cut)), fisheye::IoError)
        << "cut=" << cut;
}

TEST(MapIo, CorruptionDetected) {
  const WarpMap map = test_map(16, 16);
  std::string bytes = encode_map(map);
  // Flip one payload byte: checksum must catch it.
  bytes[bytes.size() / 2] ^= 0x40;
  EXPECT_THROW(decode_map(bytes), fisheye::IoError);
}

TEST(MapIo, TruncationDetected) {
  const WarpMap map = test_map(16, 16);
  const std::string bytes = encode_map(map);
  for (std::size_t cut : {std::size_t{0}, std::size_t{5}, bytes.size() / 2,
                          bytes.size() - 1})
    EXPECT_THROW(decode_map(bytes.substr(0, cut)), fisheye::IoError)
        << "cut=" << cut;
}

TEST(MapIo, FuzzRandomBytes) {
  util::Rng rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    std::string bytes(rng.next_below(200), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.next_below(256));
    EXPECT_THROW(decode_map(bytes), fisheye::IoError);
    EXPECT_THROW(decode_packed_map(bytes), fisheye::IoError);
    EXPECT_THROW(decode_compact_map(bytes), fisheye::IoError);
  }
}

TEST(MapIo, FuzzMutationsOfValidCompactFile) {
  const std::string valid = encode_map(compact_map(test_map(12, 10), 12, 10,
                                                   4));
  util::Rng rng(79);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = valid;
    mutated[rng.next_below(mutated.size())] =
        static_cast<char>(rng.next_below(256));
    try {
      const CompactMap m = decode_compact_map(mutated);
      EXPECT_EQ(m.width, 12);
      EXPECT_EQ(m.height, 10);
    } catch (const fisheye::IoError&) {
      // expected for nearly all mutations
    }
  }
}

TEST(MapIo, FuzzMutationsOfValidFile) {
  const std::string valid = encode_map(test_map(12, 10));
  util::Rng rng(78);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = valid;
    mutated[rng.next_below(mutated.size())] =
        static_cast<char>(rng.next_below(256));
    try {
      const WarpMap m = decode_map(mutated);
      // A mutation that survives the checksum untouched must decode to the
      // original geometry sizes.
      EXPECT_EQ(m.width, 12);
      EXPECT_EQ(m.height, 10);
    } catch (const fisheye::IoError&) {
      // expected for nearly all mutations
    }
  }
}

// --- provenance (kinds 3/4/5) -----------------------------------------------

TEST(MapIoProvenance, RoundTripsThroughAllRepresentations) {
  const WarpMap map = test_map(24, 18);
  const MapProvenance prov{"kannala_brandt:k1=-0.02,k2=0.002,k3=0,k4=0",
                           "perspective"};
  const std::string fbytes = encode_map(map, prov);
  const std::string pbytes = encode_map(pack_map(map, 24, 18, 12), prov);
  const std::string cbytes = encode_map(compact_map(map, 24, 18, 4), prov);
  EXPECT_EQ(decode_provenance(fbytes), prov);
  EXPECT_EQ(decode_provenance(pbytes), prov);
  EXPECT_EQ(decode_provenance(cbytes), prov);

  // Matching expectation decodes bit-exactly; the stamped kind also
  // decodes through the expectation-free legacy API.
  const WarpMap back = decode_map(fbytes, prov);
  EXPECT_EQ(back.src_x, map.src_x);
  EXPECT_EQ(back.src_y, map.src_y);
  EXPECT_EQ(decode_map(fbytes).src_x, map.src_x);
  EXPECT_EQ(decode_packed_map(pbytes, prov).fx,
            decode_packed_map(pbytes).fx);
  EXPECT_EQ(decode_compact_map(cbytes, prov).gx,
            decode_compact_map(cbytes).gx);

  // A partial expectation checks only its non-empty fields.
  EXPECT_NO_THROW((decode_map(fbytes, MapProvenance{prov.lens, ""})));
  EXPECT_NO_THROW(decode_map(fbytes, MapProvenance{}));
}

TEST(MapIoProvenance, MismatchRefusedNamingBothModels) {
  const WarpMap map = test_map(24, 18);
  const MapProvenance prov{"division:lambda=-0.5", "perspective"};
  const std::string bytes = encode_map(map, prov);
  const MapProvenance other{"equidistant", "perspective"};
  try {
    (void)decode_map(bytes, other);
    FAIL() << "mismatched provenance accepted";
  } catch (const fisheye::IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("division:lambda=-0.5"), std::string::npos) << what;
    EXPECT_NE(what.find("equidistant"), std::string::npos) << what;
  }
  EXPECT_THROW((decode_map(bytes, MapProvenance{prov.lens, "quadview"})),
               fisheye::IoError);
}

TEST(MapIoProvenance, LegacyFilesLoadUnconditionally) {
  const WarpMap map = test_map(24, 18);
  const std::string bytes = encode_map(map);  // unstamped, kind 0
  EXPECT_EQ(decode_provenance(bytes), MapProvenance{});
  // An unstamped file can't contradict any expectation.
  EXPECT_NO_THROW((decode_map(bytes, MapProvenance{"equidistant", ""})));
  EXPECT_NO_THROW(
      (decode_map(bytes, MapProvenance{"division:lambda=-1", "quadview"})));
}

TEST(MapIoProvenance, FileRoundTripEnforcesExpectation) {
  const WarpMap map = test_map(24, 18);
  const MapProvenance prov{"equisolid:fov=160", "cylindrical:hfov=200"};
  const std::string path = ::testing::TempDir() + "/fe_map_io_prov.femap";
  save_map(path, map, prov);
  EXPECT_EQ(load_map(path, prov).src_x, map.src_x);
  EXPECT_EQ(load_map(path).src_x, map.src_x);  // expectation-free load
  EXPECT_THROW((load_map(path, MapProvenance{"equidistant", ""})),
               fisheye::IoError);
  std::remove(path.c_str());
}

TEST(MapIoProvenance, KindByteFlipsNeverCrash) {
  // The checksum covers everything *after* the kind byte, so promoting a
  // legacy file to a stamped kind (or vice versa) passes the checksum and
  // must be caught by the provenance/size validation instead.
  const std::string legacy = encode_map(test_map(12, 10));
  for (const char kind : {3, 4, 5, 1, 2, 6, 127}) {
    std::string mutated = legacy;
    mutated[7] = kind;  // kind byte sits right after "FEMAP1\n"
    EXPECT_THROW((void)decode_map(mutated), fisheye::IoError) << int(kind);
    try {
      (void)decode_provenance(mutated);
    } catch (const fisheye::IoError&) {
      // expected for most flips
    }
  }
  const std::string stamped =
      encode_map(test_map(12, 10), {"equidistant", "perspective"});
  for (const char kind : {0, 1, 2, 4, 5, 6}) {
    std::string mutated = stamped;
    mutated[7] = kind;
    EXPECT_THROW((void)decode_map(mutated), fisheye::IoError) << int(kind);
  }
}

TEST(MapIoProvenance, FuzzMutationsOfStampedFile) {
  const std::string valid =
      encode_map(test_map(12, 10), {"division:lambda=-0.25", "quadview"});
  util::Rng rng(80);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = valid;
    mutated[rng.next_below(mutated.size())] =
        static_cast<char>(rng.next_below(256));
    try {
      const WarpMap m =
          decode_map(mutated, MapProvenance{"division:lambda=-0.25", ""});
      EXPECT_EQ(m.width, 12);
      EXPECT_EQ(m.height, 10);
    } catch (const fisheye::IoError&) {
      // expected for nearly all mutations
    }
    try {
      (void)decode_provenance(mutated);
    } catch (const fisheye::IoError&) {
      // expected
    }
  }
}

TEST(MapIoProvenance, TruncatedProvenanceBlockDetected) {
  const std::string stamped = encode_map(
      test_map(12, 10), {"kannala_brandt:k1=0.1,k2=0,k3=0,k4=0", "equirect"});
  for (std::size_t cut :
       {std::size_t{8}, std::size_t{9}, std::size_t{12}, std::size_t{20}})
    EXPECT_THROW((void)decode_provenance(stamped.substr(0, cut)),
                 fisheye::IoError)
        << "cut=" << cut;
}

TEST(MapIo, LoadedMapDrivesRemapIdentically) {
  const WarpMap map = test_map();
  const std::string path = ::testing::TempDir() + "/fe_map_io2.femap";
  save_map(path, map);
  const WarpMap loaded = load_map(path);
  std::remove(path.c_str());

  fisheye::img::Image8 src(96, 64, 1);
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 96; ++x)
      src.at(x, y) = static_cast<std::uint8_t>((x * 7 + y * 13) & 0xFF);
  fisheye::img::Image8 a(96, 64, 1), b(96, 64, 1);
  const RemapOptions opts;
  remap_rect(src.view(), a.view(), map, {0, 0, 96, 64}, opts);
  remap_rect(src.view(), b.view(), loaded, {0, 0, 96, 64}, opts);
  EXPECT_TRUE(fisheye::img::equal_pixels<std::uint8_t>(a.view(), b.view()));
}

}  // namespace
}  // namespace fisheye::core
