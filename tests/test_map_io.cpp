// Warp-map serialization: round trips, corruption detection, fuzz.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/map_io.hpp"
#include "core/remap.hpp"
#include "image/image.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"

namespace fisheye::core {
namespace {

using util::deg_to_rad;

WarpMap test_map(int w = 96, int h = 64) {
  const auto cam = FisheyeCamera::centered(LensKind::Equidistant,
                                           deg_to_rad(180.0), w, h);
  const PerspectiveView view(w, h, cam.lens().focal());
  return build_map(cam, view);
}

TEST(MapIo, FloatRoundTripIsBitExact) {
  const WarpMap map = test_map();
  const WarpMap back = decode_map(encode_map(map));
  ASSERT_EQ(back.width, map.width);
  ASSERT_EQ(back.height, map.height);
  for (std::size_t i = 0; i < map.pixel_count(); ++i) {
    ASSERT_EQ(back.src_x[i], map.src_x[i]) << i;
    ASSERT_EQ(back.src_y[i], map.src_y[i]) << i;
  }
}

TEST(MapIo, PackedRoundTripIsBitExact) {
  const WarpMap map = test_map();
  const PackedMap packed = pack_map(map, 96, 64, 12);
  const PackedMap back = decode_packed_map(encode_map(packed));
  ASSERT_EQ(back.frac_bits, 12);
  for (std::size_t i = 0; i < packed.fx.size(); ++i) {
    ASSERT_EQ(back.fx[i], packed.fx[i]);
    ASSERT_EQ(back.fy[i], packed.fy[i]);
  }
}

TEST(MapIo, CompactRoundTripIsBitExact) {
  const WarpMap map = test_map();
  const CompactMap cm = compact_map(map, 96, 64, 8, 12);
  const CompactMap back = decode_compact_map(encode_map(cm));
  ASSERT_EQ(back.width, cm.width);
  ASSERT_EQ(back.height, cm.height);
  ASSERT_EQ(back.stride, 8);
  ASSERT_EQ(back.frac_bits, 12);
  ASSERT_EQ(back.src_width, 96);
  ASSERT_EQ(back.src_height, 64);
  ASSERT_EQ(back.grid_w, cm.grid_w);
  ASSERT_EQ(back.grid_h, cm.grid_h);
  EXPECT_EQ(back.gx, cm.gx);
  EXPECT_EQ(back.gy, cm.gy);
  EXPECT_FLOAT_EQ(back.max_error, cm.max_error);
  EXPECT_FLOAT_EQ(back.mean_error, cm.mean_error);
}

TEST(MapIo, CompactFileRoundTripDrivesRemapIdentically) {
  const WarpMap map = test_map();
  const CompactMap cm = compact_map(map, 96, 64, 8);
  const std::string path = ::testing::TempDir() + "/fe_map_io_compact.femap";
  save_map(path, cm);
  const CompactMap loaded = load_compact_map(path);
  std::remove(path.c_str());

  fisheye::img::Image8 src(96, 64, 1);
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 96; ++x)
      src.at(x, y) = static_cast<std::uint8_t>((x * 7 + y * 13) & 0xFF);
  fisheye::img::Image8 a(96, 64, 1), b(96, 64, 1);
  remap_compact_rect(src.view(), a.view(), cm, {0, 0, 96, 64}, 0);
  remap_compact_rect(src.view(), b.view(), loaded, {0, 0, 96, 64}, 0);
  EXPECT_TRUE(fisheye::img::equal_pixels<std::uint8_t>(a.view(), b.view()));
}

TEST(MapIo, FileRoundTrip) {
  const WarpMap map = test_map(40, 30);
  const std::string path = ::testing::TempDir() + "/fe_map_io.femap";
  save_map(path, map);
  const WarpMap back = load_map(path);
  EXPECT_EQ(back.width, 40);
  EXPECT_EQ(back.src_x, map.src_x);
  std::remove(path.c_str());
  EXPECT_THROW(load_map(path), fisheye::IoError);  // now missing
}

TEST(MapIo, KindMismatchRejected) {
  const WarpMap map = test_map(16, 16);
  const std::string float_bytes = encode_map(map);
  EXPECT_THROW(decode_packed_map(float_bytes), fisheye::IoError);
  EXPECT_THROW(decode_compact_map(float_bytes), fisheye::IoError);
  const std::string packed_bytes = encode_map(pack_map(map, 16, 16, 14));
  EXPECT_THROW(decode_map(packed_bytes), fisheye::IoError);
  const std::string compact_bytes =
      encode_map(compact_map(map, 16, 16, 4));
  EXPECT_THROW(decode_map(compact_bytes), fisheye::IoError);
  EXPECT_THROW(decode_packed_map(compact_bytes), fisheye::IoError);
}

TEST(MapIo, CompactCorruptionAndTruncationDetected) {
  const CompactMap cm = compact_map(test_map(16, 16), 16, 16, 4);
  std::string bytes = encode_map(cm);
  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x40;
  EXPECT_THROW(decode_compact_map(flipped), fisheye::IoError);
  for (std::size_t cut : {std::size_t{0}, std::size_t{5}, bytes.size() / 2,
                          bytes.size() - 1})
    EXPECT_THROW(decode_compact_map(bytes.substr(0, cut)), fisheye::IoError)
        << "cut=" << cut;
}

TEST(MapIo, CorruptionDetected) {
  const WarpMap map = test_map(16, 16);
  std::string bytes = encode_map(map);
  // Flip one payload byte: checksum must catch it.
  bytes[bytes.size() / 2] ^= 0x40;
  EXPECT_THROW(decode_map(bytes), fisheye::IoError);
}

TEST(MapIo, TruncationDetected) {
  const WarpMap map = test_map(16, 16);
  const std::string bytes = encode_map(map);
  for (std::size_t cut : {std::size_t{0}, std::size_t{5}, bytes.size() / 2,
                          bytes.size() - 1})
    EXPECT_THROW(decode_map(bytes.substr(0, cut)), fisheye::IoError)
        << "cut=" << cut;
}

TEST(MapIo, FuzzRandomBytes) {
  util::Rng rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    std::string bytes(rng.next_below(200), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.next_below(256));
    EXPECT_THROW(decode_map(bytes), fisheye::IoError);
    EXPECT_THROW(decode_packed_map(bytes), fisheye::IoError);
    EXPECT_THROW(decode_compact_map(bytes), fisheye::IoError);
  }
}

TEST(MapIo, FuzzMutationsOfValidCompactFile) {
  const std::string valid = encode_map(compact_map(test_map(12, 10), 12, 10,
                                                   4));
  util::Rng rng(79);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = valid;
    mutated[rng.next_below(mutated.size())] =
        static_cast<char>(rng.next_below(256));
    try {
      const CompactMap m = decode_compact_map(mutated);
      EXPECT_EQ(m.width, 12);
      EXPECT_EQ(m.height, 10);
    } catch (const fisheye::IoError&) {
      // expected for nearly all mutations
    }
  }
}

TEST(MapIo, FuzzMutationsOfValidFile) {
  const std::string valid = encode_map(test_map(12, 10));
  util::Rng rng(78);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = valid;
    mutated[rng.next_below(mutated.size())] =
        static_cast<char>(rng.next_below(256));
    try {
      const WarpMap m = decode_map(mutated);
      // A mutation that survives the checksum untouched must decode to the
      // original geometry sizes.
      EXPECT_EQ(m.width, 12);
      EXPECT_EQ(m.height, 10);
    } catch (const fisheye::IoError&) {
      // expected for nearly all mutations
    }
  }
}

TEST(MapIo, LoadedMapDrivesRemapIdentically) {
  const WarpMap map = test_map();
  const std::string path = ::testing::TempDir() + "/fe_map_io2.femap";
  save_map(path, map);
  const WarpMap loaded = load_map(path);
  std::remove(path.c_str());

  fisheye::img::Image8 src(96, 64, 1);
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 96; ++x)
      src.at(x, y) = static_cast<std::uint8_t>((x * 7 + y * 13) & 0xFF);
  fisheye::img::Image8 a(96, 64, 1), b(96, 64, 1);
  const RemapOptions opts;
  remap_rect(src.view(), a.view(), map, {0, 0, 96, 64}, opts);
  remap_rect(src.view(), b.view(), loaded, {0, 0, 96, 64}, opts);
  EXPECT_TRUE(fisheye::img::equal_pixels<std::uint8_t>(a.view(), b.view()));
}

}  // namespace
}  // namespace fisheye::core
