// Pixel-format conversion tests.
#include <gtest/gtest.h>

#include "image/convert.hpp"
#include "image/metrics.hpp"
#include "image/synth.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fisheye::img {
namespace {

Image8 random_rgb(int w, int h, std::uint64_t seed) {
  util::Rng rng(seed);
  Image8 im(w, h, 3);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w * 3; ++x)
      im.row(y)[x] = static_cast<std::uint8_t>(rng.next_below(256));
  return im;
}

TEST(Convert, GrayOfGrayRgbIsIdentity) {
  // Gray pixels replicated into RGB must convert back to the same gray
  // (the BT.601 coefficients sum to exactly 2^16).
  Image8 gray(16, 16, 1);
  util::Rng rng(3);
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x)
      gray.at(x, y) = static_cast<std::uint8_t>(rng.next_below(256));
  const Image8 rgb = gray_to_rgb(gray.view());
  const Image8 back = rgb_to_gray(rgb.view());
  EXPECT_TRUE(equal_pixels<std::uint8_t>(gray.view(), back.view()));
}

TEST(Convert, GrayWeightsFavourGreen) {
  Image8 r(1, 1, 3), g(1, 1, 3), b(1, 1, 3);
  r.at(0, 0, 0) = 255;
  g.at(0, 0, 1) = 255;
  b.at(0, 0, 2) = 255;
  const int yr = rgb_to_gray(r.view()).at(0, 0);
  const int yg = rgb_to_gray(g.view()).at(0, 0);
  const int yb = rgb_to_gray(b.view()).at(0, 0);
  EXPECT_GT(yg, yr);
  EXPECT_GT(yr, yb);
  EXPECT_NEAR(yr, 76, 1);   // 0.299 * 255
  EXPECT_NEAR(yg, 150, 1);  // 0.587 * 255
  EXPECT_NEAR(yb, 29, 1);   // 0.114 * 255
}

class Yuv420RoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Yuv420RoundTrip, LumaIsPreservedExactlyOnGrayContent) {
  const auto [w, h] = GetParam();
  Image8 gray(w, h, 1);
  util::Rng rng(9);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      gray.at(x, y) = static_cast<std::uint8_t>(rng.next_below(256));
  const Image8 rgb = gray_to_rgb(gray.view());
  const Yuv420 yuv = rgb_to_yuv420(rgb.view());
  // Gray content has neutral chroma and exact luma.
  EXPECT_TRUE(equal_pixels<std::uint8_t>(gray.view(), yuv.y.view()));
  const Image8 back = yuv420_to_rgb(yuv);
  EXPECT_LE(max_abs_diff(rgb.view(), back.view()), 2);
}

INSTANTIATE_TEST_SUITE_P(Shapes, Yuv420RoundTrip,
                         ::testing::Values(std::tuple{2, 2}, std::tuple{16, 8},
                                           std::tuple{64, 64},
                                           std::tuple{34, 18}));

TEST(Convert, Yuv420PlaneShapes) {
  const Image8 rgb = random_rgb(32, 24, 1);
  const Yuv420 yuv = rgb_to_yuv420(rgb.view());
  EXPECT_EQ(yuv.y.width(), 32);
  EXPECT_EQ(yuv.u.width(), 16);
  EXPECT_EQ(yuv.v.height(), 12);
}

TEST(Convert, Yuv420RoundTripCloseOnColor) {
  // 4:2:0 chroma subsampling loses information; on smooth color content the
  // round trip stays visually lossless (PSNR > 30 dB).
  const Image8 rgb = make_scene_rgb(128, 96, 0.5);
  const Image8 back = yuv420_to_rgb(rgb_to_yuv420(rgb.view()));
  EXPECT_GT(psnr(rgb.view(), back.view()), 30.0);
}

TEST(Convert, Yuv420OddSizeViolatesContract) {
  Image8 odd(15, 16, 3);
  EXPECT_THROW(rgb_to_yuv420(odd.view()), InvalidArgument);
}

TEST(Convert, YuyvRoundTripShapeAndQuality) {
  const Image8 rgb = make_scene_rgb(64, 32, 0.0);
  const auto stream = rgb_to_yuyv(rgb.view());
  EXPECT_EQ(stream.size(), 64u * 32u * 2u);
  const Image8 back = yuyv_to_rgb(stream, 64, 32);
  EXPECT_GT(psnr(rgb.view(), back.view()), 28.0);
}

TEST(Convert, YuyvExactOnGray) {
  Image8 gray(8, 4, 1);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 8; ++x)
      gray.at(x, y) = static_cast<std::uint8_t>(x * 30 + y);
  const Image8 rgb = gray_to_rgb(gray.view());
  const Image8 back = yuyv_to_rgb(rgb_to_yuyv(rgb.view()), 8, 4);
  EXPECT_TRUE(equal_pixels<std::uint8_t>(rgb.view(), back.view()));
}

TEST(Convert, YuyvContracts) {
  Image8 rgb(8, 4, 3);
  std::vector<std::uint8_t> stream = rgb_to_yuyv(rgb.view());
  stream.pop_back();
  EXPECT_THROW(yuyv_to_rgb(stream, 8, 4), InvalidArgument);
  Image8 odd(7, 4, 3);
  EXPECT_THROW(rgb_to_yuyv(odd.view()), InvalidArgument);
}

TEST(Convert, WrongChannelCountsViolateContracts) {
  Image8 gray(8, 8, 1);
  Image8 rgb(8, 8, 3);
  EXPECT_THROW(rgb_to_gray(gray.view()), InvalidArgument);
  EXPECT_THROW(gray_to_rgb(rgb.view()), InvalidArgument);
}

}  // namespace
}  // namespace fisheye::img
