// serve::Server contract tests.
//
// The load-bearing property is crop exactness: whatever the server does
// internally — rect quantization, duplicate collapsing, overlap merging,
// plan caching, lane fan-out — every client crop must be bit-exact equal
// to the corresponding region of an independently corrected full view of
// the same level, in the same map representation. The suite checks that
// across all three representations with randomized overlapping PTZ rects,
// plus the cache (LRU, byte budget, counters), the coalescing benefit
// counters, spec parsing, recalibration, and pipeline bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "core/corrector.hpp"
#include "image/image.hpp"
#include "serve/coalesce.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"

namespace fisheye {
namespace {

using serve::ServeOptions;
using serve::Server;
using serve::ServerConfig;

constexpr int kSrcW = 320;
constexpr int kSrcH = 240;

img::Image8 make_src(int w = kSrcW, int h = kSrcH, int ch = 1) {
  img::Image8 src(w, h, ch);
  for (int y = 0; y < h; ++y) {
    std::uint8_t* row = src.row(y);
    for (int x = 0; x < w * ch; ++x)
      row[x] = static_cast<std::uint8_t>((x * 7 + y * 13 + x * y / 9) & 0xFF);
  }
  return src;
}

ServerConfig base_config() {
  ServerConfig cfg;
  cfg.src_width = kSrcW;
  cfg.src_height = kSrcH;
  cfg.lens = core::LensKind::Equidistant;
  cfg.fov_rad = util::deg_to_rad(180.0);
  cfg.levels = {{256, 192, 0.0}, {256, 192, 140.0}};
  return cfg;
}

/// Independently corrected full view of one level, through the same
/// representation the server runs — the ground truth server crops must
/// match bit-exactly.
img::Image8 reference_level(const ServerConfig& cfg, const ServeOptions& opt,
                            int level, img::ConstImageView<std::uint8_t> src) {
  core::LensSpec lens = cfg.lens;
  if (cfg.fov_rad != 0.0) lens.fov_deg = util::rad_to_deg(cfg.fov_rad);
  const auto cam =
      core::FisheyeCamera::centered(lens, cfg.src_width, cfg.src_height);
  const serve::LevelSpec& spec = cfg.levels[static_cast<std::size_t>(level)];
  const double focal =
      spec.focal == 0.0 ? cam.lens().dradius_dtheta(0.0) : spec.focal;
  const core::PerspectiveView view(spec.width, spec.height, focal);
  const core::WarpMap map = core::build_map(cam, view);
  std::optional<core::PackedMap> packed;
  std::optional<core::CompactMap> compact;
  if (opt.map_mode == core::MapMode::PackedLut)
    packed = core::pack_map(map, cfg.src_width, cfg.src_height, opt.frac_bits);
  if (opt.map_mode == core::MapMode::CompactLut)
    compact = core::compact_map(map, cfg.src_width, cfg.src_height,
                                opt.compact_stride, opt.frac_bits);

  img::Image8 out(spec.width, spec.height, cfg.channels);
  core::ExecContext ctx;
  ctx.src = src;
  ctx.dst = out.view();
  ctx.map = &map;
  ctx.packed = packed ? &*packed : nullptr;
  ctx.compact = compact ? &*compact : nullptr;
  ctx.opts = cfg.remap;
  ctx.mode = opt.map_mode;
  const core::ExecutionPlan plan =
      core::build_service_plan(ctx, opt.tile_w, opt.tile_h, "ref");
  for (const par::Rect& tile : plan.tiles()) plan.kernel()(ctx.src, ctx.dst, tile);
  return out;
}

int mismatches(img::ConstImageView<std::uint8_t> full, par::Rect rect,
               img::ConstImageView<std::uint8_t> crop, int ch) {
  int bad = 0;
  for (int y = 0; y < rect.height(); ++y) {
    const std::uint8_t* a =
        full.row(rect.y0 + y) + static_cast<std::size_t>(rect.x0) * ch;
    const std::uint8_t* b = crop.row(y);
    for (int x = 0; x < rect.width() * ch; ++x)
      if (a[x] != b[x]) ++bad;
  }
  return bad;
}

/// Random PTZ rects kept clear of the level's right/bottom edges: the full
/// level's compact grid extrapolates its trailing line there while a
/// windowed grid samples it, so only the interior is representation-exact.
par::Rect random_rect(std::mt19937& rng, const serve::LevelSpec& level,
                      int margin) {
  std::uniform_int_distribution<int> wd(24, 100);
  std::uniform_int_distribution<int> hd(20, 80);
  const int w = wd(rng), h = hd(rng);
  std::uniform_int_distribution<int> xd(0, level.width - w - margin);
  std::uniform_int_distribution<int> yd(0, level.height - h - margin);
  const int x = xd(rng), y = yd(rng);
  return {x, y, x + w, y + h};
}

void check_random_views_exact(const std::string& spec_text) {
  const img::Image8 src = make_src();
  const ServerConfig cfg = base_config();
  const ServeOptions opt = ServeOptions::parse(spec_text);
  par::ThreadPool pool(4);
  Server server(cfg, opt, pool);

  std::vector<img::Image8> refs;
  for (int l = 0; l < static_cast<int>(cfg.levels.size()); ++l)
    refs.push_back(reference_level(cfg, opt, l, src.cview()));

  std::mt19937 rng(1234);
  const int margin = 2 * opt.quantum;
  struct Pending {
    int level;
    par::Rect rect;
    img::Image8 crop;
  };
  for (int frame = 0; frame < 3; ++frame) {
    std::vector<Pending> pending;
    pending.reserve(24);
    for (int i = 0; i < 24; ++i) {
      const int level = i % static_cast<int>(cfg.levels.size());
      const par::Rect r =
          random_rect(rng, cfg.levels[static_cast<std::size_t>(level)], margin);
      pending.push_back({level, r, img::Image8(r.width(), r.height(), 1)});
    }
    // A couple of exact duplicates and contained rects per frame.
    pending.push_back({pending[0].level, pending[0].rect,
                       img::Image8(pending[0].rect.width(),
                                   pending[0].rect.height(), 1)});
    for (Pending& p : pending) server.request(p.level, p.rect, p.crop.view());
    server.submit_frame(src.cview());
    server.drain();
    for (const Pending& p : pending)
      EXPECT_EQ(0, mismatches(refs[static_cast<std::size_t>(p.level)].cview(),
                              p.rect, p.crop.cview(), 1))
          << spec_text << " level " << p.level << " frame " << frame;
  }
  const rt::ServeStats stats = server.stats();
  EXPECT_EQ(stats.requests, 3u * 25u);
  EXPECT_EQ(stats.retired, 3u * 25u);
  EXPECT_EQ(stats.frames, 3u);
}

TEST(ServeExactness, FloatMapRandomOverlappingViews) {
  check_random_views_exact("serve:lanes=2,quantum=16,map=float");
}

TEST(ServeExactness, PackedMapRandomOverlappingViews) {
  check_random_views_exact("serve:lanes=2,quantum=16,map=packed");
}

TEST(ServeExactness, CompactMapRandomOverlappingViews) {
  check_random_views_exact("serve:lanes=2,quantum=16,map=compact:8");
}

TEST(ServeExactness, CoalescedAndUncoalescedServeIdenticalCrops) {
  const img::Image8 src = make_src();
  const ServerConfig cfg = base_config();
  // One pool per server: a serving pool is fully dedicated to its
  // executor's scheduler (see WorkStealingPool::start_service).
  par::ThreadPool pool_on(2), pool_off(2);
  Server on(cfg, ServeOptions::parse("serve:coalesce=on"), pool_on);
  Server off(cfg, ServeOptions::parse("serve:coalesce=off"), pool_off);

  std::mt19937 rng(77);
  std::vector<par::Rect> rects;
  for (int i = 0; i < 16; ++i)
    rects.push_back(random_rect(rng, cfg.levels[0], 32));
  rects.push_back(rects[2]);  // duplicate
  rects.push_back(rects[5]);

  std::vector<img::Image8> crops_on, crops_off;
  for (const par::Rect& r : rects) {
    crops_on.emplace_back(r.width(), r.height(), 1);
    crops_off.emplace_back(r.width(), r.height(), 1);
  }
  for (std::size_t i = 0; i < rects.size(); ++i) {
    on.request(0, rects[i], crops_on[i].view());
    off.request(0, rects[i], crops_off[i].view());
  }
  on.submit_frame(src.cview());
  off.submit_frame(src.cview());
  on.drain();
  off.drain();

  for (std::size_t i = 0; i < rects.size(); ++i) {
    const par::Rect local{0, 0, rects[i].width(), rects[i].height()};
    EXPECT_EQ(0, mismatches(crops_on[i].cview(), local, crops_off[i].cview(),
                            1))
        << "rect " << i;
  }
  // The coalesced server did strictly less kernel work for the same crops.
  const rt::ServeStats a = on.stats(), b = off.stats();
  EXPECT_LT(a.clusters, b.clusters);
  EXPECT_LT(a.tiles_executed, b.tiles_executed);
  EXPECT_EQ(a.tiles_requested, b.tiles_requested);
}

// --- coalescing bookkeeping -------------------------------------------------

TEST(ServeCoalescing, DuplicatesCollapseToOneClusterAndOnePlan) {
  const img::Image8 src = make_src();
  par::ThreadPool pool(2);
  Server server(base_config(), ServeOptions::parse("serve:lanes=2"), pool);

  const par::Rect r{32, 32, 128, 112};
  std::vector<img::Image8> crops;
  for (int i = 0; i < 8; ++i) crops.emplace_back(r.width(), r.height(), 1);
  for (img::Image8& c : crops) server.request(0, r, c.view());
  server.submit_frame(src.cview());
  server.drain();

  const rt::ServeStats stats = server.stats();
  EXPECT_EQ(stats.requests, 8u);
  EXPECT_EQ(stats.retired, 8u);
  EXPECT_EQ(stats.clusters, 1u);
  EXPECT_EQ(stats.plan_misses, 1u);
  EXPECT_EQ(stats.plan_hits, 0u);
  // The saved-work counter: 8 requests' worth of tiles asked, one ran.
  EXPECT_EQ(stats.tiles_requested, 8u * stats.tiles_executed);
  for (std::size_t i = 1; i < crops.size(); ++i) {
    const par::Rect local{0, 0, r.width(), r.height()};
    EXPECT_EQ(0,
              mismatches(crops[0].cview(), local, crops[i].cview(), 1));
  }
}

TEST(ServeCoalescing, OverlapMergeNeverInflatesWork) {
  // Two heavily overlapping rects merge (union area <= sum); two disjoint
  // far-apart rects do not.
  serve::Coalescer co;
  const std::vector<serve::QuantizedView> overlapping = {
      {0, {0, 0, 64, 64}}, {0, {16, 16, 80, 80}}};
  co.coalesce(overlapping, true);
  ASSERT_EQ(co.clusters().size(), 1u);
  EXPECT_EQ(co.clusters()[0].bounds, (par::Rect{0, 0, 80, 80}));
  EXPECT_EQ(co.clusters()[0].count, 2u);

  const std::vector<serve::QuantizedView> disjoint = {
      {0, {0, 0, 32, 32}}, {0, {128, 128, 160, 160}}};
  co.coalesce(disjoint, true);
  EXPECT_EQ(co.clusters().size(), 2u);

  // Barely-touching rects whose union bbox would inflate the pixel count
  // stay separate (the no-extra-work guard).
  const std::vector<serve::QuantizedView> corner = {
      {0, {0, 0, 32, 32}}, {0, {31, 31, 96, 96}}};
  co.coalesce(corner, true);
  EXPECT_EQ(co.clusters().size(), 2u);
}

TEST(ServeCoalescing, MembersPartitionTheRequests) {
  serve::Coalescer co;
  std::vector<serve::QuantizedView> views;
  std::mt19937 rng(9);
  std::uniform_int_distribution<int> pos(0, 12);
  for (int i = 0; i < 40; ++i) {
    const int x = pos(rng) * 16, y = pos(rng) * 16;
    views.push_back({i % 2, {x, y, x + 48, y + 48}});
  }
  co.coalesce(views, true);
  std::vector<int> seen(views.size(), 0);
  std::uint32_t total = 0;
  for (const serve::ViewCluster& cl : co.clusters()) {
    total += cl.count;
    for (std::uint32_t m = cl.first; m < cl.first + cl.count; ++m) {
      const std::uint32_t req = co.members()[m];
      ++seen[req];
      // Every member's rect lies inside its cluster bounds, same level.
      EXPECT_EQ(views[req].level, cl.level);
      EXPECT_GE(views[req].rect.x0, cl.bounds.x0);
      EXPECT_GE(views[req].rect.y0, cl.bounds.y0);
      EXPECT_LE(views[req].rect.x1, cl.bounds.x1);
      EXPECT_LE(views[req].rect.y1, cl.bounds.y1);
    }
  }
  EXPECT_EQ(total, views.size());
  for (const int s : seen) EXPECT_EQ(s, 1);
}

// --- plan cache -------------------------------------------------------------

TEST(ServePlanCache, WarmFramesHitAndStayWithinBudget) {
  const img::Image8 src = make_src();
  par::ThreadPool pool(2);
  Server server(base_config(),
                ServeOptions::parse("serve:cache_budget=128M"), pool);

  const par::Rect r{16, 16, 144, 128};
  img::Image8 crop(r.width(), r.height(), 1);
  for (int frame = 0; frame < 5; ++frame) {
    server.request(0, r, crop.view());
    server.submit_frame(src.cview());
  }
  server.drain();
  const rt::ServeStats stats = server.stats();
  EXPECT_EQ(stats.plan_misses, 1u);  // cold on frame 0 only
  EXPECT_EQ(stats.plan_hits, 4u);
  EXPECT_EQ(stats.plan_evictions, 0u);
  EXPECT_EQ(stats.cache_entries, 1u);
  EXPECT_GT(stats.cache_bytes, 0u);
}

TEST(ServePlanCache, ByteBudgetEvictsLeastRecentlyUsed) {
  const img::Image8 src = make_src();
  par::ThreadPool pool(2);
  // 256 KB budget: a 128x96 float-map view costs ~115 KB (map + output +
  // plan), so only two entries ever fit and older ones must evict.
  Server server(base_config(),
                ServeOptions::parse("serve:cache_budget=256K"), pool);

  img::Image8 crop(128, 96, 1);
  for (int i = 0; i < 4; ++i) {
    const int x = 16 * i;
    server.request(0, {x, 0, x + 128, 96}, crop.view());
    server.submit_frame(src.cview());
  }
  server.drain();
  const rt::ServeStats stats = server.stats();
  EXPECT_EQ(stats.plan_misses, 4u);
  EXPECT_EQ(stats.plan_hits, 0u);
  EXPECT_GE(stats.plan_evictions, 2u);
  EXPECT_LE(stats.cache_bytes, std::size_t{256} << 10);
}

TEST(ServePlanCache, ZeroBudgetServesColdButCorrect) {
  const img::Image8 src = make_src();
  const ServerConfig cfg = base_config();
  const ServeOptions opt = ServeOptions::parse("serve:cache_budget=0");
  par::ThreadPool pool(2);
  Server server(cfg, opt, pool);
  const img::Image8 ref = reference_level(cfg, opt, 0, src.cview());

  const par::Rect r{32, 16, 160, 112};
  img::Image8 crop(r.width(), r.height(), 1);
  for (int frame = 0; frame < 3; ++frame) {
    server.request(0, r, crop.view());
    server.submit_frame(src.cview());
    server.drain();
    EXPECT_EQ(0, mismatches(ref.cview(), r, crop.cview(), 1));
  }
  const rt::ServeStats stats = server.stats();
  EXPECT_EQ(stats.plan_misses, 3u);  // nothing survives a zero budget
  EXPECT_EQ(stats.plan_hits, 0u);
  EXPECT_EQ(stats.cache_entries, 0u);
}

TEST(ServePlanCache, RecalibrateBumpsGenerationAndFlushes) {
  const img::Image8 src = make_src();
  const ServerConfig cfg = base_config();
  par::ThreadPool pool(2);
  Server server(cfg, ServeOptions::parse("serve"), pool);
  EXPECT_EQ(server.generation(), 1u);

  const par::Rect r{32, 32, 160, 128};
  img::Image8 before(r.width(), r.height(), 1);
  img::Image8 after(r.width(), r.height(), 1);
  server.request(0, r, before.view());
  server.submit_frame(src.cview());
  server.drain();

  server.recalibrate(core::LensKind::Equisolid, cfg.fov_rad);
  EXPECT_EQ(server.generation(), 2u);
  EXPECT_EQ(server.stats().cache_entries, 0u);

  server.request(0, r, after.view());
  server.submit_frame(src.cview());
  server.drain();
  EXPECT_EQ(server.stats().plan_misses, 2u);  // old entry unusable by key

  // The level's focal was resolved against the original lens at
  // construction and stays fixed across recalibration; server.config()
  // carries both the resolved focal and the new lens.
  const img::Image8 ref =
      reference_level(server.config(), server.options(), 0, src.cview());
  EXPECT_EQ(0, mismatches(ref.cview(), r, after.cview(), 1));
  const par::Rect local{0, 0, r.width(), r.height()};
  EXPECT_NE(0, mismatches(before.cview(), local, after.cview(), 1));
}

// --- pipeline ---------------------------------------------------------------

TEST(ServePipeline, EmptyFrameCompletes) {
  const img::Image8 src = make_src();
  par::ThreadPool pool(2);
  Server server(base_config(), ServeOptions::parse("serve"), pool);
  server.submit_frame(src.cview());
  server.submit_frame(src.cview());
  server.drain();
  const rt::ServeStats stats = server.stats();
  EXPECT_EQ(stats.frames, 2u);
  EXPECT_EQ(stats.requests, 0u);
}

TEST(ServePipeline, RetireCallbackSeesEveryRequestWithLatency) {
  const img::Image8 src = make_src();
  par::ThreadPool pool(4);
  Server server(base_config(), ServeOptions::parse("serve:lanes=4"), pool);

  std::mutex mu;
  std::vector<std::uint64_t> tags;
  server.set_retire([&](std::uint64_t seq, std::uint64_t tag, double lat) {
    const std::scoped_lock lock(mu);
    EXPECT_GT(seq, 0u);
    EXPECT_GE(lat, 0.0);
    tags.push_back(tag);
  });

  std::vector<img::Image8> crops;
  for (int i = 0; i < 12; ++i) crops.emplace_back(64, 48, 1);
  for (int frame = 0; frame < 2; ++frame) {
    for (int i = 0; i < 6; ++i) {
      const int x = 16 * i, tag = frame * 6 + i;
      server.request(0, {x, 0, x + 64, 48},
                     crops[static_cast<std::size_t>(tag)].view(),
                     static_cast<std::uint64_t>(tag) + 100);
    }
    server.submit_frame(src.cview());
  }
  server.drain();
  std::sort(tags.begin(), tags.end());
  ASSERT_EQ(tags.size(), 12u);
  for (std::size_t i = 0; i < tags.size(); ++i) EXPECT_EQ(tags[i], i + 100);
  const rt::ServeStats stats = server.stats();
  EXPECT_EQ(stats.retired, 12u);
  EXPECT_GT(stats.total_latency_seconds, 0.0);
  EXPECT_GE(stats.max_latency_seconds,
            stats.total_latency_seconds / static_cast<double>(stats.retired));
}

TEST(ServePipeline, ManyQueuedFramesRetireInOrderUnderBackpressure) {
  const img::Image8 src = make_src();
  par::ThreadPool pool(4);
  Server server(base_config(),
                ServeOptions::parse("serve:queue_depth=2,lanes=2"), pool);

  img::Image8 crop(96, 80, 1);
  for (int frame = 0; frame < 12; ++frame) {
    const int x = 16 * (frame % 5);
    server.request(0, {x, 16, x + 96, 96}, crop.view(),
                   static_cast<std::uint64_t>(frame));
    server.submit_frame(src.cview());
  }
  server.drain();
  const rt::ServeStats stats = server.stats();
  EXPECT_EQ(stats.frames, 12u);
  EXPECT_EQ(stats.retired, 12u);
  EXPECT_EQ(stats.plan_misses, 5u);
  EXPECT_EQ(stats.plan_hits, 7u);
}

// --- request validation -----------------------------------------------------

TEST(ServeValidation, RejectsBadRequests) {
  const img::Image8 src = make_src();
  par::ThreadPool pool(2);
  Server server(base_config(), ServeOptions::parse("serve"), pool);
  img::Image8 crop(64, 48, 1);
  EXPECT_THROW(server.request(7, {0, 0, 64, 48}, crop.view()),
               InvalidArgument);
  EXPECT_THROW(server.request(0, {-16, 0, 48, 48}, crop.view()),
               InvalidArgument);
  EXPECT_THROW(server.request(0, {200, 160, 280, 208}, crop.view()),
               InvalidArgument);  // past the 256x192 level
  EXPECT_THROW(server.request(0, {0, 0, 32, 32}, crop.view()),
               InvalidArgument);  // dst dims != rect dims
}

TEST(ServeValidation, RejectsBadConfigs) {
  par::ThreadPool pool(2);
  ServerConfig no_levels = base_config();
  no_levels.levels.clear();
  EXPECT_THROW(Server(no_levels, ServeOptions::parse("serve"), pool),
               InvalidArgument);

  ServerConfig nearest = base_config();
  nearest.remap.interp = core::Interp::Nearest;
  EXPECT_THROW(Server(nearest, ServeOptions::parse("serve:map=packed"), pool),
               InvalidArgument);
}

// --- spec parsing -----------------------------------------------------------

TEST(ServeSpec, ParsesAndRoundTrips) {
  const ServeOptions o = ServeOptions::parse(
      "serve:lanes=4,queue_depth=8,pending=512,cache_budget=64M,quantum=32,"
      "coalesce=off,map=compact:16,frac=12,tile=48x24");
  EXPECT_EQ(o.lanes, 4);
  EXPECT_EQ(o.queue_depth, 8u);
  EXPECT_EQ(o.max_pending, 512u);
  EXPECT_EQ(o.cache_budget, std::size_t{64} << 20);
  EXPECT_EQ(o.quantum, 32);
  EXPECT_FALSE(o.coalesce);
  EXPECT_EQ(o.map_mode, core::MapMode::CompactLut);
  EXPECT_EQ(o.compact_stride, 16);
  EXPECT_EQ(o.frac_bits, 12);
  EXPECT_EQ(o.tile_w, 48);
  EXPECT_EQ(o.tile_h, 24);

  const ServeOptions again = ServeOptions::parse(o.spec());
  EXPECT_EQ(again.spec(), o.spec());
  const ServeOptions defaults = ServeOptions::parse("serve");
  EXPECT_EQ(ServeOptions::parse(defaults.spec()).spec(), defaults.spec());
}

TEST(ServeSpec, ParsesByteSuffixes) {
  EXPECT_EQ(ServeOptions::parse("serve:cache_budget=0").cache_budget, 0u);
  EXPECT_EQ(ServeOptions::parse("serve:cache_budget=4096").cache_budget,
            4096u);
  EXPECT_EQ(ServeOptions::parse("serve:cache_budget=16K").cache_budget,
            std::size_t{16} << 10);
  EXPECT_EQ(ServeOptions::parse("serve:cache_budget=2G").cache_budget,
            std::size_t{2} << 30);
}

void expect_parse_error_naming(const std::string& spec,
                               const std::string& token) {
  try {
    (void)ServeOptions::parse(spec);
    FAIL() << "expected InvalidArgument for '" << spec << "'";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(token), std::string::npos)
        << "'" << e.what() << "' does not name '" << token << "'";
  }
}

TEST(ServeSpec, RejectsUnknownAndOutOfRangeOptionsByName) {
  expect_parse_error_naming("pool:threads=4", "serve");
  expect_parse_error_naming("serve:bogus=1", "bogus");
  expect_parse_error_naming("serve:lanes=0", "lanes");
  expect_parse_error_naming("serve:lanes=65", "lanes");
  expect_parse_error_naming("serve:queue_depth=0", "queue_depth");
  expect_parse_error_naming("serve:pending=0", "pending");
  expect_parse_error_naming("serve:quantum=12", "quantum");
  expect_parse_error_naming("serve:quantum=512", "quantum");
  expect_parse_error_naming("serve:coalesce=maybe", "coalesce");
  expect_parse_error_naming("serve:map=warp9", "warp9");
  expect_parse_error_naming("serve:frac=0", "frac");
  expect_parse_error_naming("serve:frac=30", "frac");
  expect_parse_error_naming("serve:tile=4x4", "tile");
  expect_parse_error_naming("serve:cache_budget=12Q", "cache_budget");
  expect_parse_error_naming("serve:cache_budget=lots", "cache_budget");
  // quantum must stay a multiple of the compact stride.
  expect_parse_error_naming("serve:map=compact:16,quantum=8", "quantum");
}

}  // namespace
}  // namespace fisheye
