// Video source determinism and pipeline throughput accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/corrector.hpp"
#include "image/metrics.hpp"
#include "util/mathx.hpp"
#include "video/pipeline.hpp"

namespace fisheye::video {
namespace {

using util::deg_to_rad;

core::FisheyeCamera camera(int w, int h) {
  return core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                       deg_to_rad(180.0), w, h);
}

TEST(Source, FramesAreDeterministic) {
  const auto cam = camera(160, 120);
  const SyntheticVideoSource a(cam, 160, 120, 1);
  const SyntheticVideoSource b(cam, 160, 120, 1);
  EXPECT_TRUE(
      img::equal_pixels<std::uint8_t>(a.frame(5).view(), b.frame(5).view()));
}

TEST(Source, FramesEvolveOverTime) {
  const auto cam = camera(160, 120);
  const SyntheticVideoSource source(cam, 160, 120, 1);
  EXPECT_FALSE(img::equal_pixels<std::uint8_t>(source.frame(0).view(),
                                               source.frame(30).view()));
}

TEST(Source, RgbAndGraySupported) {
  const auto cam = camera(64, 64);
  const SyntheticVideoSource gray(cam, 64, 64, 1);
  const SyntheticVideoSource rgb(cam, 64, 64, 3);
  EXPECT_EQ(gray.frame(0).channels(), 1);
  EXPECT_EQ(rgb.frame(0).channels(), 3);
}

TEST(Source, FisheyeFrameHasBlackCorners) {
  // 180-degree circular fisheye: corners lie outside the image circle.
  const auto cam = camera(160, 120);
  const SyntheticVideoSource source(cam, 160, 120, 1);
  const img::Image8 f = source.frame(0);
  EXPECT_EQ(f.at(0, 0), 0);
  EXPECT_EQ(f.at(159, 119), 0);
  // Centre sees the scene (not fill).
  EXPECT_NE(f.at(80, 60), 0);
}

TEST(Source, SceneFrameIsLargerGroundTruth) {
  const auto cam = camera(64, 48);
  const SyntheticVideoSource source(cam, 64, 48, 3);
  const img::Image8 scene = source.scene_frame(0);
  EXPECT_EQ(scene.width(), 128);
  EXPECT_EQ(scene.height(), 96);
}

TEST(Pipeline, RunsAndReportsThroughput) {
  const auto cam = camera(160, 120);
  const SyntheticVideoSource source(cam, 160, 120, 1);
  const core::Corrector corr =
      core::Corrector::builder(160, 120).fov_degrees(180.0).build();
  core::SerialBackend backend;
  int sink_calls = 0;
  const PipelineStats stats = run_pipeline(
      source, corr, backend, 5,
      [&sink_calls](int, const img::Image8&) { ++sink_calls; });
  EXPECT_EQ(stats.frames, 5);
  EXPECT_EQ(sink_calls, 5);
  EXPECT_GT(stats.fps, 0.0);
  EXPECT_EQ(stats.per_frame.samples, 5);
  EXPECT_GT(stats.wall_seconds, 0.0);
}

TEST(Pipeline, CorrectedFrameRecoversSceneCentre) {
  // End-to-end quality: forward-distort the scene, correct it back, and
  // compare the central region against the original scene (resampled
  // identity up to interpolation loss).
  const int w = 240, h = 180;
  const auto cam = camera(w, h);
  const SyntheticVideoSource source(cam, w, h, 1);
  const core::Corrector corr =
      core::Corrector::builder(w, h).fov_degrees(180.0).build();
  core::SerialBackend backend;
  const img::Image8 fish = source.frame(0);
  img::Image8 corrected(w, h, 1);
  corr.correct(fish.view(), corrected.view(), backend);

  const img::Image8 scene = source.scene_frame(0);
  // The corrected image at matched focal shows the scene scaled by
  // f_out/f_scene about the centre. Compare a central patch via sampling.
  const double f_out = corr.config().out_focal;
  const double f_scene = 0.25 * scene.width();
  double err = 0.0;
  int n = 0;
  for (int dy = -40; dy <= 40; dy += 4)
    for (int dx = -40; dx <= 40; dx += 4) {
      const int ox = w / 2 + dx, oy = h / 2 + dy;
      const double sx =
          (scene.width() - 1) * 0.5 + dx * (f_scene / f_out);
      const double sy =
          (scene.height() - 1) * 0.5 + dy * (f_scene / f_out);
      const int sxi = static_cast<int>(std::lround(sx));
      const int syi = static_cast<int>(std::lround(sy));
      err += std::abs(static_cast<int>(corrected.at(ox, oy)) -
                      static_cast<int>(scene.at(sxi, syi)));
      ++n;
    }
  EXPECT_LT(err / n, 25.0);  // mean abs error over the centre patch
}

TEST(Pipeline, InvalidFrameCountViolatesContract) {
  const auto cam = camera(64, 64);
  const SyntheticVideoSource source(cam, 64, 64, 1);
  const core::Corrector corr = core::Corrector::builder(64, 64).build();
  core::SerialBackend backend;
  EXPECT_THROW(run_pipeline(source, corr, backend, 0),
               fisheye::InvalidArgument);
}


TEST(Pipeline, FrameParallelMatchesSerialOutputs) {
  const auto cam = camera(160, 120);
  const SyntheticVideoSource source(cam, 160, 120, 1);
  const core::Corrector corr =
      core::Corrector::builder(160, 120).fov_degrees(180.0).build();
  // Collect outputs from both paths via sinks.
  std::vector<img::Image8> serial_outs, parallel_outs;
  core::SerialBackend backend;
  run_pipeline(source, corr, backend, 6,
               [&](int, const img::Image8& f) {
                 serial_outs.push_back(f.clone());
               });
  par::ThreadPool pool(4);
  run_pipeline_frame_parallel(source, corr, pool, 6,
                              [&](int, const img::Image8& f) {
                                parallel_outs.push_back(f.clone());
                              });
  ASSERT_EQ(serial_outs.size(), 6u);
  ASSERT_EQ(parallel_outs.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_TRUE(img::equal_pixels<std::uint8_t>(serial_outs[i].view(),
                                                parallel_outs[i].view()))
        << "frame " << i;
}

TEST(Pipeline, FrameParallelSinkSeesFramesInOrder) {
  const auto cam = camera(64, 64);
  const SyntheticVideoSource source(cam, 64, 64, 1);
  const core::Corrector corr = core::Corrector::builder(64, 64).build();
  par::ThreadPool pool(4);
  std::vector<int> order;
  run_pipeline_frame_parallel(source, corr, pool, 8,
                              [&](int i, const img::Image8&) {
                                order.push_back(i);
                              });
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace fisheye::video
