// Synthetic generators and quality metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "image/metrics.hpp"
#include "image/synth.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fisheye::img {
namespace {

TEST(Synth, CheckerboardPattern) {
  const Image8 im = make_checkerboard(64, 64, 8, 10, 200);
  EXPECT_EQ(im.at(0, 0), 200);    // (0,0): cell parity light
  EXPECT_EQ(im.at(8, 0), 10);     // one cell right flips
  EXPECT_EQ(im.at(0, 8), 10);     // one cell down flips
  EXPECT_EQ(im.at(8, 8), 200);    // diagonal keeps parity
  EXPECT_EQ(im.at(7, 7), 200);    // still inside first cell
}

TEST(Synth, CheckerboardDeterministic) {
  const Image8 a = make_checkerboard(32, 32, 4);
  const Image8 b = make_checkerboard(32, 32, 4);
  EXPECT_TRUE(equal_pixels<std::uint8_t>(a.view(), b.view()));
}

TEST(Synth, CircleGridHasForegroundAtCentres) {
  const Image8 im = make_circle_grid(60, 60, 20, 5);
  EXPECT_EQ(im.at(10, 10), 20);   // first circle centre
  EXPECT_EQ(im.at(30, 10), 20);   // next centre
  EXPECT_EQ(im.at(20, 20), 230);  // between circles: background
}

TEST(Synth, SiemensStarAlternatesAroundCentre) {
  const Image8 im = make_siemens_star(101, 101, 8);
  int transitions = 0;
  int prev = im.at(95, 50);
  // Walk a ring and count sector transitions; 8 spokes -> 16 sectors.
  for (int a = 1; a < 360; ++a) {
    const double rad = a * 3.14159265358979 / 180.0;
    const int x = 50 + static_cast<int>(45 * std::cos(rad));
    const int y = 50 + static_cast<int>(45 * std::sin(rad));
    const int cur = im.at(x, y);
    if (cur != prev) ++transitions;
    prev = cur;
  }
  EXPECT_GE(transitions, 14);
  EXPECT_LE(transitions, 18);
}

TEST(Synth, GradientIsMonotoneAlongRowFromCentre) {
  const Image8 im = make_gradient(101, 101);
  for (int x = 51; x < 100; ++x)
    EXPECT_GE(im.at(x, 50), im.at(x - 1, 50)) << "x=" << x;
}

TEST(Synth, RingsAlternate) {
  const Image8 im = make_rings(101, 101, 10);
  EXPECT_NE(im.at(50, 50), im.at(50 + 12, 50));
  EXPECT_EQ(im.at(50 + 3, 50), im.at(50, 50 + 3));  // radially symmetric
}

TEST(Synth, NoiseUsesFullRangeAndIsSeeded) {
  util::Rng rng(5);
  const Image8 a = make_noise(64, 64, rng);
  util::Rng rng2(5);
  const Image8 b = make_noise(64, 64, rng2);
  EXPECT_TRUE(equal_pixels<std::uint8_t>(a.view(), b.view()));
  int lo = 255, hi = 0;
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x) {
      lo = std::min<int>(lo, a.at(x, y));
      hi = std::max<int>(hi, a.at(x, y));
    }
  EXPECT_LT(lo, 10);
  EXPECT_GT(hi, 245);
}

TEST(Synth, SceneIsRgbAndAnimated) {
  const Image8 f0 = make_scene_rgb(320, 240, 0.0);
  const Image8 f1 = make_scene_rgb(320, 240, 1.0);
  ASSERT_EQ(f0.channels(), 3);
  EXPECT_FALSE(equal_pixels<std::uint8_t>(f0.view(), f1.view()));
  // Same time -> identical frame (pure function of parameters).
  const Image8 f0b = make_scene_rgb(320, 240, 0.0);
  EXPECT_TRUE(equal_pixels<std::uint8_t>(f0.view(), f0b.view()));
}

TEST(Metrics, MseZeroForIdentical) {
  const Image8 a = make_gradient(32, 32);
  EXPECT_DOUBLE_EQ(mse(a.view(), a.view()), 0.0);
  EXPECT_TRUE(std::isinf(psnr(a.view(), a.view())));
}

TEST(Metrics, MseKnownValue) {
  Image8 a(4, 4, 1), b(4, 4, 1);
  a.fill(10);
  b.fill(14);  // diff 4 everywhere -> mse 16
  EXPECT_DOUBLE_EQ(mse(a.view(), b.view()), 16.0);
  EXPECT_NEAR(psnr(a.view(), b.view()), 10.0 * std::log10(255.0 * 255.0 / 16.0),
              1e-12);
}

TEST(Metrics, MaxAbsDiff) {
  Image8 a(3, 3, 1), b(3, 3, 1);
  b.at(2, 2) = 200;
  b.at(0, 0) = 3;
  EXPECT_EQ(max_abs_diff(a.view(), b.view()), 200);
}

TEST(Metrics, FractionDiffering) {
  Image8 a(10, 10, 1), b(10, 10, 1);
  for (int i = 0; i < 5; ++i) b.at(i, 0) = 10;  // 5 of 100 pixels differ by 10
  EXPECT_DOUBLE_EQ(fraction_differing(a.view(), b.view(), 1), 0.05);
  EXPECT_DOUBLE_EQ(fraction_differing(a.view(), b.view(), 10), 0.0);
}

TEST(Metrics, SsimIdentityIsOne) {
  const Image8 a = make_checkerboard(64, 64, 8);
  EXPECT_NEAR(ssim(a.view(), a.view()), 1.0, 1e-9);
}

TEST(Metrics, SsimOrdersDegradations) {
  const Image8 ref = make_gradient(64, 64);
  Image8 slightly = ref.clone();
  Image8 heavily = ref.clone();
  util::Rng rng(17);
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x) {
      slightly.at(x, y) = static_cast<std::uint8_t>(
          std::clamp<int>(slightly.at(x, y) + static_cast<int>(rng.normal(0, 2)), 0, 255));
      heavily.at(x, y) = static_cast<std::uint8_t>(
          std::clamp<int>(heavily.at(x, y) + static_cast<int>(rng.normal(0, 25)), 0, 255));
    }
  const double s_slight = ssim(ref.view(), slightly.view());
  const double s_heavy = ssim(ref.view(), heavily.view());
  EXPECT_GT(s_slight, s_heavy);
  EXPECT_GT(s_slight, 0.8);
  EXPECT_LT(s_heavy, s_slight);
}

TEST(Metrics, ShapeMismatchViolatesContract) {
  Image8 a(4, 4, 1), b(4, 5, 1), c(4, 4, 3);
  EXPECT_THROW(mse(a.view(), b.view()), InvalidArgument);
  EXPECT_THROW(mse(a.view(), c.view()), InvalidArgument);
  EXPECT_THROW(ssim(c.view(), c.view()), InvalidArgument);  // channels != 1
}

}  // namespace
}  // namespace fisheye::img
