// Mip pyramid and anti-aliased remap tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/aa_remap.hpp"
#include "core/remap.hpp"
#include "image/metrics.hpp"
#include "image/pyramid.hpp"
#include "image/synth.hpp"
#include "util/rng.hpp"

namespace fisheye {
namespace {

TEST(Downsample, HalvesDimensionsRoundingUp) {
  img::Image8 src(33, 17, 1);
  const img::Image8 half = img::downsample_2x2(src.view());
  EXPECT_EQ(half.width(), 17);
  EXPECT_EQ(half.height(), 9);
}

TEST(Downsample, AveragesBlocks) {
  img::Image8 src(2, 2, 1);
  src.at(0, 0) = 10;
  src.at(1, 0) = 20;
  src.at(0, 1) = 30;
  src.at(1, 1) = 40;
  const img::Image8 half = img::downsample_2x2(src.view());
  EXPECT_EQ(half.at(0, 0), 25);
}

TEST(Downsample, ConstantImageStaysConstant) {
  img::Image8 src(31, 19, 3);
  src.fill(123);
  const img::Image8 half = img::downsample_2x2(src.view());
  for (int y = 0; y < half.height(); ++y)
    for (int x = 0; x < half.width(); ++x)
      for (int c = 0; c < 3; ++c) EXPECT_EQ(half.at(x, y, c), 123);
}

TEST(Pyramid, LevelCountAndDims) {
  const img::Image8 src = img::make_gradient(64, 48);
  const img::Pyramid pyr(src.view());
  // min(64,48)=48 -> floor(log2 48)=5 -> 6 levels: 64,32,16,8,4,2 wide.
  EXPECT_EQ(pyr.levels(), 6);
  EXPECT_EQ(pyr.level(0).width(), 64);
  EXPECT_EQ(pyr.level(1).width(), 32);
  EXPECT_EQ(pyr.level(5).width(), 2);
  EXPECT_EQ(pyr.level(5).height(), 2);
}

TEST(Pyramid, ExplicitLevelCap) {
  const img::Image8 src = img::make_gradient(64, 64);
  const img::Pyramid pyr(src.view(), 3);
  EXPECT_EQ(pyr.levels(), 3);
}

TEST(Pyramid, MeanIsPreservedApproximately) {
  util::Rng rng(3);
  const img::Image8 src = img::make_noise(64, 64, rng);
  const img::Pyramid pyr(src.view());
  auto mean = [](const img::Image8& im) {
    double s = 0.0;
    for (int y = 0; y < im.height(); ++y)
      for (int x = 0; x < im.width(); ++x) s += im.at(x, y);
    return s / (im.width() * im.height());
  };
  EXPECT_NEAR(mean(pyr.level(0)), mean(pyr.level(3)), 2.0);
}

core::WarpMap scale_map(int out_w, int out_h, float scale) {
  core::WarpMap map;
  map.width = out_w;
  map.height = out_h;
  map.src_x.resize(map.pixel_count());
  map.src_y.resize(map.pixel_count());
  for (int y = 0; y < out_h; ++y)
    for (int x = 0; x < out_w; ++x) {
      map.src_x[map.index(x, y)] = (static_cast<float>(x) + 0.5f) * scale - 0.5f;
      map.src_y[map.index(x, y)] = (static_cast<float>(y) + 0.5f) * scale - 0.5f;
    }
  return map;
}

TEST(MapLod, IdentityIsZeroAndScaleIsLog2) {
  const core::WarpMap identity = scale_map(32, 32, 1.0f);
  EXPECT_FLOAT_EQ(core::map_lod(identity, 16, 16, 8.0f), 0.0f);
  const core::WarpMap quarter = scale_map(32, 32, 4.0f);
  EXPECT_NEAR(core::map_lod(quarter, 16, 16, 8.0f), 2.0f, 1e-4f);
  const core::WarpMap magnify = scale_map(32, 32, 0.5f);
  EXPECT_FLOAT_EQ(core::map_lod(magnify, 16, 16, 8.0f), 0.0f);
  EXPECT_FLOAT_EQ(core::map_lod(quarter, 16, 16, 1.5f), 1.5f);  // clamped
}

TEST(AaRemap, MatchesBilinearOnIdentityMap) {
  util::Rng rng(7);
  const img::Image8 src = img::make_noise(48, 40, rng);
  const core::WarpMap map = scale_map(48, 40, 1.0f);
  const img::Pyramid pyr(src.view());
  img::Image8 aa(48, 40, 1), bil(48, 40, 1);
  core::remap_aa_rect(pyr, aa.view(), map, {0, 0, 48, 40}, 0);
  core::remap_rect(src.view(), bil.view(), map, {0, 0, 48, 40},
                   {core::Interp::Bilinear, img::BorderMode::Constant, 0});
  EXPECT_LE(img::max_abs_diff(aa.view(), bil.view()), 1);
}

TEST(AaRemap, ReducesAliasingUnderMinification) {
  // Downscale a fine checkerboard by a non-integer 3.7x (integer scales
  // can coincidentally phase-align with the checker period and hide the
  // aliasing). Ground truth is the area average (uniform gray at 50% duty).
  // Bilinear point-sampling keeps near-full-contrast samples; AA must land
  // near the average.
  const img::Image8 src = img::make_checkerboard(256, 256, 2, 0, 200);
  const core::WarpMap map = scale_map(64, 64, 3.7f);
  const img::Pyramid pyr(src.view());
  img::Image8 aa(64, 64, 1), bil(64, 64, 1);
  core::remap_aa_rect(pyr, aa.view(), map, {0, 0, 64, 64}, 0);
  core::remap_rect(src.view(), bil.view(), map, {0, 0, 64, 64},
                   {core::Interp::Bilinear, img::BorderMode::Constant, 0});
  auto rms_vs_mean = [](const img::Image8& im) {
    double acc = 0.0;
    int n = 0;
    for (int y = 8; y < 56; ++y)
      for (int x = 8; x < 56; ++x) {
        const double d = im.at(x, y) - 100.0;
        acc += d * d;
        ++n;
      }
    return std::sqrt(acc / n);
  };
  const double err_aa = rms_vs_mean(aa);
  const double err_bil = rms_vs_mean(bil);
  EXPECT_LT(err_aa, 12.0);
  EXPECT_GT(err_bil, 3.0 * err_aa);
}

TEST(AaRemap, HandlesMultiChannelAndFill) {
  img::Image8 src(32, 32, 3);
  src.fill(80);
  core::WarpMap map = scale_map(16, 16, 2.0f);
  // Push one output pixel outside.
  map.src_x[map.index(0, 0)] = -100.0f;
  map.src_y[map.index(0, 0)] = -100.0f;
  const img::Pyramid pyr(src.view());
  img::Image8 out(16, 16, 3);
  core::remap_aa_rect(pyr, out.view(), map, {0, 0, 16, 16}, 7);
  EXPECT_EQ(out.at(0, 0, 0), 7);
  EXPECT_EQ(out.at(0, 0, 2), 7);
  EXPECT_EQ(out.at(8, 8, 1), 80);
}

TEST(AaRemap, FisheyeSynthesisMapUsesCoarseLevelsAtRim) {
  // The scene->fisheye synthesis map minifies hard near the image circle:
  // LOD there must exceed LOD at the centre.
  const auto cam = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, 3.14159265, 160, 120);
  const core::WarpMap synth =
      core::build_synthesis_map(cam, 640, 480, 160.0, 160, 120);
  const float centre = core::map_lod(synth, 80, 60, 8.0f);
  // A point near the rim but still valid: radius ~0.9 * 60.
  const float rim = core::map_lod(synth, 80 + 52, 60, 8.0f);
  EXPECT_GT(rim, centre + 0.5f);
}

TEST(AaRemap, ContractViolations) {
  img::Image8 src(16, 16, 1), dst(8, 8, 3);
  const core::WarpMap map = scale_map(8, 8, 2.0f);
  const img::Pyramid pyr(src.view());
  EXPECT_THROW(core::remap_aa_rect(pyr, dst.view(), map, {0, 0, 8, 8}, 0),
               fisheye::InvalidArgument);
}

}  // namespace
}  // namespace fisheye
