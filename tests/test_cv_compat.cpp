// OpenCV-compat shim: semantics of initUndistortRectifyMap + remap.
#include <gtest/gtest.h>

#include <cmath>

#include "core/corrector.hpp"
#include "core/cv_compat.hpp"
#include "image/metrics.hpp"
#include "image/synth.hpp"
#include "util/mathx.hpp"

namespace fisheye::cv_compat {
namespace {

using util::deg_to_rad;

TEST(KannalaBrandt, ZeroCoefficientsIsIdentity) {
  for (double t = 0.0; t < 1.5; t += 0.1)
    EXPECT_DOUBLE_EQ(kannala_brandt_theta(t, {0, 0, 0, 0}), t);
}

TEST(KannalaBrandt, PolynomialTerms) {
  EXPECT_NEAR(kannala_brandt_theta(0.5, {0.1, 0, 0, 0}),
              0.5 * (1.0 + 0.1 * 0.25), 1e-15);
  EXPECT_NEAR(kannala_brandt_theta(0.5, {0, 0.2, 0, 0}),
              0.5 * (1.0 + 0.2 * 0.0625), 1e-15);
}

TEST(InitUndistortRectifyMap, ZeroDistortionMatchesEquidistantBuildMap) {
  // With D = 0 OpenCV's model is the pure equidistant lens; the shim's map
  // must match build_map for the same geometry.
  const int w = 320, h = 240;
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 deg_to_rad(180.0), w, h);
  const double f = cam.lens().focal();
  const core::PerspectiveView view(w, h, f);
  const core::WarpMap reference = core::build_map(cam, view);

  const CameraMatrix k{f, f, cam.cx(), cam.cy()};
  const CameraMatrix p{f, f, (w - 1) * 0.5, (h - 1) * 0.5};
  const core::WarpMap shim = init_undistort_rectify_map(k, {0, 0, 0, 0}, p,
                                                        w, h);
  double worst = 0.0;
  for (std::size_t i = 0; i < reference.pixel_count(); ++i) {
    // Compare only where the reference is a normal in-image coordinate.
    if (reference.src_x[i] < -1.0f || reference.src_x[i] > w + 1.0f) continue;
    worst = std::max<double>(
        worst, std::abs(reference.src_x[i] - shim.src_x[i]));
    worst = std::max<double>(
        worst, std::abs(reference.src_y[i] - shim.src_y[i]));
  }
  EXPECT_LT(worst, 1e-3);
}

TEST(InitUndistortRectifyMap, DistortionCoefficientsBendTheMap) {
  const CameraMatrix k{200, 200, 160, 120};
  const CameraMatrix p{200, 200, 160, 120};
  const core::WarpMap plain = init_undistort_rectify_map(k, {0, 0, 0, 0}, p,
                                                         320, 240);
  const core::WarpMap bent = init_undistort_rectify_map(
      k, {-0.05, 0.01, 0, 0}, p, 320, 240);
  // Negative k1 shrinks theta_d: the bent map samples closer to centre.
  const std::size_t edge = plain.index(300, 120);
  EXPECT_LT(std::abs(bent.src_x[edge] - 160.0f),
            std::abs(plain.src_x[edge] - 160.0f));
  // Centre pixel unaffected.
  const std::size_t centre = plain.index(160, 120);
  EXPECT_NEAR(bent.src_x[centre], plain.src_x[centre], 1e-4);
}

TEST(InitUndistortRectifyMap, AnisotropicFocalsRespected) {
  const CameraMatrix k{200, 100, 160, 120};
  const CameraMatrix p{200, 100, 160, 120};
  const core::WarpMap map = init_undistort_rectify_map(k, {0, 0, 0, 0}, p,
                                                       320, 240);
  // A point on the x axis and one on the y axis at the same normalized
  // radius must land at the same normalized source radius.
  const std::size_t px = map.index(260, 120);  // ax = 0.5
  const std::size_t py = map.index(160, 170);  // ay = 0.5
  const double nx = (map.src_x[px] - 160.0) / 200.0;
  const double ny = (map.src_y[py] - 120.0) / 100.0;
  EXPECT_NEAR(nx, ny, 1e-6);
}

TEST(Remap, MatchesCoreRemap) {
  const img::Image8 src = img::make_gradient(64, 64);
  const CameraMatrix k{40, 40, 31.5, 31.5};
  const core::WarpMap map = init_undistort_rectify_map(
      k, {-0.02, 0, 0, 0}, k, 64, 64);
  img::Image8 a(64, 64, 1), b(64, 64, 1);
  remap(src.view(), a.view(), map);
  core::remap_rect(src.view(), b.view(), map, {0, 0, 64, 64},
                   {core::Interp::Bilinear, img::BorderMode::Constant, 0});
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(a.view(), b.view()));
}

TEST(Remap, EndToEndUndistortsLikeCorrector) {
  // Full OpenCV-style usage produces the same image as the native API.
  const int w = 240, h = 180;
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 deg_to_rad(180.0), w, h);
  const double f = cam.lens().focal();
  const img::Image8 fish = img::make_rings(w, h, 11);

  const core::WarpMap map = init_undistort_rectify_map(
      {f, f, cam.cx(), cam.cy()}, {0, 0, 0, 0},
      {f, f, (w - 1) * 0.5, (h - 1) * 0.5}, w, h);
  img::Image8 shim_out(w, h, 1);
  remap(fish.view(), shim_out.view(), map);

  const core::Corrector corr = core::Corrector::builder(w, h).build();
  core::SerialBackend backend;
  img::Image8 native_out(w, h, 1);
  corr.correct(fish.view(), native_out.view(), backend);

  EXPECT_LE(img::max_abs_diff(shim_out.view(), native_out.view()), 1);
}

TEST(InitUndistortRectifyMap, Contracts) {
  EXPECT_THROW(
      init_undistort_rectify_map({0, 1, 0, 0}, {0, 0, 0, 0}, {1, 1, 0, 0},
                                 10, 10),
      fisheye::InvalidArgument);
  EXPECT_THROW(
      init_undistort_rectify_map({1, 1, 0, 0}, {0, 0, 0, 0}, {1, 1, 0, 0},
                                 0, 10),
      fisheye::InvalidArgument);
}

}  // namespace
}  // namespace fisheye::cv_compat
