// Exhaustive backend-configuration property sweep: PoolBackend must match
// SerialBackend bit-exactly for EVERY interpolation kernel, border mode,
// map mode, schedule and channel count — the parallel decomposition can
// never change the image.
#include <gtest/gtest.h>

#include <string>

#include "core/corrector.hpp"
#include "image/metrics.hpp"
#include "video/pipeline.hpp"

namespace fisheye {
namespace {

using util::deg_to_rad;

struct SweepCase {
  core::Interp interp;
  img::BorderMode border;
  core::MapMode mode;
  par::Schedule schedule;
  int channels;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  std::string s = core::interp_name(c.interp);
  s += '_';
  s += img::border_name(c.border);
  s += '_';
  s += core::map_mode_name(c.mode);
  s += '_';
  s += par::schedule_name(c.schedule);
  s += "_c" + std::to_string(c.channels);
  for (char& ch : s)
    if (ch == '-') ch = '_';
  return s;
}

class BackendSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(BackendSweep, PoolMatchesSerialBitExact) {
  const SweepCase c = GetParam();
  const int w = 144, h = 108;
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 deg_to_rad(175.0), w, h);
  const video::SyntheticVideoSource source(cam, w, h, c.channels);
  const img::Image8 src = source.frame(1);

  const core::Corrector corr = core::Corrector::builder(w, h)
                                   .fov_degrees(175.0)
                                   .interp(c.interp)
                                   .border(c.border, 13)
                                   .map_mode(c.mode)
                                   .build();
  core::SerialBackend serial;
  img::Image8 ref(w, h, c.channels), out(w, h, c.channels);
  corr.correct(src.view(), ref.view(), serial);

  par::ThreadPool pool(4);
  core::PoolBackend backend(
      pool, {c.schedule, par::PartitionKind::Tiles, 0, 40, 24});
  corr.correct(src.view(), out.view(), backend);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()));
}

std::vector<SweepCase> make_cases() {
  std::vector<SweepCase> cases;
  for (const core::Interp interp :
       {core::Interp::Nearest, core::Interp::Bilinear, core::Interp::Bicubic,
        core::Interp::Lanczos3})
    for (const img::BorderMode border :
         {img::BorderMode::Constant, img::BorderMode::Replicate,
          img::BorderMode::Reflect})
      cases.push_back({interp, border, core::MapMode::FloatLut,
                       par::Schedule::Dynamic, 1});
  // Map modes (bilinear only for packed) across schedules and channels.
  // Steal exercises the source-locality plan path for every map mode here:
  // PackedLut falls back to output-space keys, OnTheFly likewise.
  for (const par::Schedule sched :
       {par::Schedule::Static, par::Schedule::Dynamic, par::Schedule::Guided,
        par::Schedule::Steal})
    for (const int channels : {1, 3}) {
      cases.push_back({core::Interp::Bilinear, img::BorderMode::Constant,
                       core::MapMode::PackedLut, sched, channels});
      cases.push_back({core::Interp::Bilinear, img::BorderMode::Constant,
                       core::MapMode::OnTheFly, sched, channels});
    }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, BackendSweep,
                         ::testing::ValuesIn(make_cases()), case_name);

}  // namespace
}  // namespace fisheye
