// Block-cache simulator: hit/miss semantics, LRU, footprint accounting.
#include <gtest/gtest.h>

#include "accel/cache_sim.hpp"

namespace fisheye::accel {
namespace {

BlockCacheConfig small_cache() {
  BlockCacheConfig c;
  c.block_w = 8;
  c.block_h = 4;
  c.sets = 4;
  c.ways = 2;
  return c;
}

TEST(Cache, FirstAccessMissesThenHits) {
  BlockCache cache(small_cache());
  EXPECT_FALSE(cache.access(3, 2));
  EXPECT_TRUE(cache.access(3, 2));
  EXPECT_TRUE(cache.access(7, 3));  // same 8x4 block
  EXPECT_FALSE(cache.access(8, 0));  // next block over
  EXPECT_EQ(cache.accesses(), 4u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(Cache, SequentialScanHitRateMatchesBlockGeometry) {
  // Raster scan of a 64x16 region with 8x4 blocks: one miss per block,
  // 32 blocks, 1024 accesses -> hit rate 1 - 32/1024.
  BlockCacheConfig cfg;
  cfg.block_w = 8;
  cfg.block_h = 4;
  cfg.sets = 64;  // large enough to avoid conflict misses across a band
  cfg.ways = 4;
  BlockCache cache(cfg);
  for (int y = 0; y < 4; ++y)  // one block row at a time stays resident
    for (int x = 0; x < 64; ++x) cache.access(x, y);
  for (int y = 4; y < 8; ++y)
    for (int x = 0; x < 64; ++x) cache.access(x, y);
  EXPECT_EQ(cache.misses(), 16u);
  EXPECT_EQ(cache.accesses(), 512u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  // 1 set x 2 ways: third distinct block evicts the older one.
  BlockCacheConfig cfg;
  cfg.block_w = 8;
  cfg.block_h = 8;
  cfg.sets = 1;
  cfg.ways = 2;
  BlockCache cache(cfg);
  cache.access(0, 0);    // block A miss
  cache.access(8, 0);    // block B miss
  cache.access(0, 0);    // A hit (B becomes LRU)
  cache.access(16, 0);   // block C miss, evicts B
  EXPECT_TRUE(cache.access(0, 0));    // A still resident
  EXPECT_FALSE(cache.access(8, 0));   // B was evicted
}

TEST(Cache, FlushEmptiesTags) {
  BlockCache cache(small_cache());
  cache.access(0, 0);
  EXPECT_TRUE(cache.access(0, 0));
  cache.flush();
  EXPECT_FALSE(cache.access(0, 0));
}

TEST(Cache, FootprintCountsSplitAccesses) {
  BlockCache cache(small_cache());
  // Interior of a block: footprint = 1 access.
  EXPECT_EQ(cache.access_footprint(2, 1), 1);  // cold: 1 miss
  EXPECT_EQ(cache.access_footprint(2, 1), 0);  // warm
  // Corner spanning 4 blocks: (7,3) footprint touches (8,3),(7,4),(8,4).
  BlockCache cold(small_cache());
  EXPECT_EQ(cold.access_footprint(7, 3), 4);
  EXPECT_EQ(cold.accesses(), 4u);
}

TEST(Cache, CapacityPixels) {
  EXPECT_EQ(small_cache().capacity_pixels(), 8u * 4u * 4u * 2u);
}

TEST(Cache, NonPow2GeometryViolatesContract) {
  BlockCacheConfig cfg = small_cache();
  cfg.block_w = 6;
  EXPECT_THROW(BlockCache{cfg}, fisheye::InvalidArgument);
  cfg = small_cache();
  cfg.sets = 5;
  EXPECT_THROW(BlockCache{cfg}, fisheye::InvalidArgument);
}

TEST(Cache, ThrashingPatternMissesEveryTime) {
  // Direct-mapped single set, alternating between two conflicting blocks.
  BlockCacheConfig cfg;
  cfg.block_w = 8;
  cfg.block_h = 8;
  cfg.sets = 1;
  cfg.ways = 1;
  BlockCache cache(cfg);
  for (int i = 0; i < 10; ++i) {
    cache.access(0, 0);
    cache.access(8, 0);
  }
  EXPECT_EQ(cache.misses(), 20u);
}

}  // namespace
}  // namespace fisheye::accel
