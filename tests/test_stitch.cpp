// Multi-camera stitching: environment round trips, coverage, blending
// correctness and seam behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "image/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "stitch/environment.hpp"
#include "stitch/ground_view.hpp"
#include "stitch/stitcher.hpp"
#include "util/mathx.hpp"

namespace fisheye::stitch {
namespace {

using util::deg_to_rad;
using util::Mat3;
using util::Vec3;

TEST(Environment, CoordsRoundTrip) {
  const int w = 512, h = 256;
  for (double x : {0.0, 100.0, 256.0, 400.0, 511.0})
    for (double y : {1.0, 64.0, 128.0, 254.0}) {
      const Vec3 ray = environment_ray(x, y, w, h);
      EXPECT_NEAR(ray.norm(), 1.0, 1e-12);
      const util::Vec2 uv = environment_coords(ray, w, h);
      EXPECT_NEAR(uv.x, x, 1e-6) << x << ',' << y;
      EXPECT_NEAR(uv.y, y, 1e-6);
    }
}

TEST(Environment, ForwardIsCentred) {
  const util::Vec2 uv = environment_coords({0.0, 0.0, 1.0}, 512, 256);
  EXPECT_NEAR(uv.x, 256.0, 1e-9);
  EXPECT_NEAR(uv.y, 127.5, 1e-9);
}

TEST(Environment, StreetTextureIsDeterministicRgb) {
  const img::Image8 a = make_street_environment(256, 128);
  const img::Image8 b = make_street_environment(256, 128);
  EXPECT_EQ(a.channels(), 3);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(a.view(), b.view()));
}

TEST(Environment, RenderCentreSeesForwardTexel) {
  const img::Image8 env = make_street_environment(1024, 512);
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 deg_to_rad(180.0), 128, 128);
  const img::Image8 frame =
      render_from_environment(env.view(), cam, Mat3::identity(), 128, 128);
  // The optical axis (forward) hits env at (512, 255.5).
  const util::Vec2 c = environment_coords({0, 0, 1}, 1024, 512);
  for (int ch = 0; ch < 3; ++ch)
    EXPECT_NEAR(frame.at(64, 64, ch),
                env.at(static_cast<int>(c.x), static_cast<int>(c.y), ch), 2.0);
}

TEST(Environment, RotatedCameraSeesRotatedContent) {
  const img::Image8 env = make_street_environment(1024, 512);
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 deg_to_rad(180.0), 96, 96);
  const img::Image8 fwd =
      render_from_environment(env.view(), cam, Mat3::identity(), 96, 96);
  const img::Image8 right = render_from_environment(
      env.view(), cam, Mat3::rot_y(deg_to_rad(90.0)), 96, 96);
  EXPECT_FALSE(img::equal_pixels<std::uint8_t>(fwd.view(), right.view()));
  // Centre of the rotated camera sees the +X direction of the environment.
  const util::Vec2 cx = environment_coords({1, 0, 0}, 1024, 512);
  for (int ch = 0; ch < 3; ++ch)
    EXPECT_NEAR(right.at(48, 48, ch),
                env.at(static_cast<int>(cx.x), static_cast<int>(cx.y), ch),
                2.0);
}

/// Standard 2-camera test rig: +-40 degrees pan, 180-degree lenses.
std::vector<RigCamera> two_camera_rig(int fw, int fh) {
  std::vector<RigCamera> rig;
  for (const double pan : {-40.0, 40.0}) {
    RigCamera rc{core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                               deg_to_rad(180.0), fw, fh),
                 Mat3::rot_y(deg_to_rad(pan)), fw, fh};
    rig.push_back(rc);
  }
  return rig;
}

std::vector<img::Image8> render_rig(const std::vector<RigCamera>& rig,
                                    const img::Image8& env) {
  std::vector<img::Image8> frames;
  for (const RigCamera& rc : rig)
    frames.push_back(render_from_environment(env.view(), rc.camera,
                                             rc.world_from_cam,
                                             rc.frame_width,
                                             rc.frame_height));
  return frames;
}

std::vector<img::ConstImageView<std::uint8_t>> views_of(
    const std::vector<img::Image8>& frames) {
  std::vector<img::ConstImageView<std::uint8_t>> views;
  for (const img::Image8& f : frames) views.push_back(f.view());
  return views;
}

TEST(Stitcher, FullCoverageInsideRigField) {
  const auto rig = two_camera_rig(160, 160);
  const PanoramaStitcher stitcher(rig, 360, 100, deg_to_rad(150.0),
                                  deg_to_rad(50.0));
  EXPECT_EQ(stitcher.uncovered_pixels(), 0u);
  EXPECT_EQ(stitcher.cameras(), 2u);
}

TEST(Stitcher, ReproducesEnvironmentGroundTruth) {
  const img::Image8 env = make_street_environment(1024, 512);
  const auto rig = two_camera_rig(320, 320);
  const auto frames = render_rig(rig, env);

  const int pw = 400, ph = 120;
  const double hfov = deg_to_rad(150.0), vfov = deg_to_rad(45.0);
  const PanoramaStitcher stitcher(rig, pw, ph, hfov, vfov);
  const img::Image8 pano = stitcher.stitch(views_of(frames));

  // Ground truth: sample the environment along the same rays.
  img::Image8 truth(pw, ph, 3);
  for (int y = 0; y < ph; ++y)
    for (int x = 0; x < pw; ++x) {
      const double lon = (static_cast<double>(x) / (pw - 1) - 0.5) * hfov;
      const double lat = (static_cast<double>(y) / (ph - 1) - 0.5) * vfov;
      const Vec3 ray{std::sin(lon) * std::cos(lat), std::sin(lat),
                     std::cos(lon) * std::cos(lat)};
      const util::Vec2 uv = environment_coords(ray, 1024, 512);
      core::sample_bilinear(env.view(), static_cast<float>(uv.x),
                            static_cast<float>(uv.y),
                            img::BorderMode::Replicate, 0,
                            &truth.at(x, y, 0));
    }
  EXPECT_GT(img::psnr(truth.view(), pano.view()), 24.0);
}

TEST(Stitcher, FeatherSeamIsSmootherThanNearest) {
  // Brightness-bias one camera: feather blending must spread the mismatch
  // over the overlap, nearest-camera must show a hard step at the seam.
  // A featureless environment isolates the seam signal (scene edges would
  // otherwise dominate the step metric in both modes).
  img::Image8 env(1024, 512, 3);
  env.fill(100);
  const auto rig = two_camera_rig(240, 240);
  auto frames = render_rig(rig, env);
  for (int y = 0; y < frames[1].height(); ++y)
    for (int x = 0; x < frames[1].width() * 3; ++x)
      frames[1].row(y)[x] = static_cast<std::uint8_t>(
          std::min(255, frames[1].row(y)[x] + 40));

  const int pw = 360, ph = 80;
  auto max_horizontal_step = [&](BlendMode mode) {
    const PanoramaStitcher stitcher(rig, pw, ph, deg_to_rad(140.0),
                                    deg_to_rad(30.0), mode);
    const img::Image8 pano = stitcher.stitch(views_of(frames));
    // Largest row-median jump between adjacent columns (robust to scene
    // texture; the seam is a full-column step).
    double worst = 0.0;
    for (int x = 1; x < pw; ++x) {
      double acc = 0.0;
      for (int y = 0; y < ph; ++y)
        acc += static_cast<double>(pano.at(x, y, 1)) - pano.at(x - 1, y, 1);
      worst = std::max(worst, std::abs(acc / ph));
    }
    return worst;
  };
  const double step_feather = max_horizontal_step(BlendMode::Feather);
  const double step_nearest = max_horizontal_step(BlendMode::NearestCamera);
  EXPECT_GT(step_nearest, 2.0 * step_feather);
  EXPECT_GT(step_nearest, 10.0);
}

TEST(Stitcher, PoolMatchesSerial) {
  const img::Image8 env = make_street_environment(512, 256);
  const auto rig = two_camera_rig(160, 160);
  const auto frames = render_rig(rig, env);
  const PanoramaStitcher stitcher(rig, 300, 80, deg_to_rad(150.0),
                                  deg_to_rad(40.0));
  const img::Image8 serial = stitcher.stitch(views_of(frames));
  par::ThreadPool pool(4);
  const img::Image8 pooled = stitcher.stitch(views_of(frames), &pool);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(serial.view(), pooled.view()));
}

TEST(Stitcher, WeightsPeakOnAxis) {
  const auto rig = two_camera_rig(160, 160);
  const int pw = 360, ph = 90;
  const PanoramaStitcher stitcher(rig, pw, ph, deg_to_rad(160.0),
                                  deg_to_rad(40.0));
  // Camera 0 points at -40 degrees: its weight at the -40-degree column
  // must exceed its weight at the +40-degree column, and vice versa.
  auto col_for = [&](double lon_deg) {
    return static_cast<int>((lon_deg / 160.0 + 0.5) * (pw - 1));
  };
  const std::size_t left =
      static_cast<std::size_t>(ph / 2) * pw + col_for(-40.0);
  const std::size_t right =
      static_cast<std::size_t>(ph / 2) * pw + col_for(40.0);
  EXPECT_GT(stitcher.weights(0)[left], stitcher.weights(0)[right]);
  EXPECT_GT(stitcher.weights(1)[right], stitcher.weights(1)[left]);
}


TEST(GroundView, CentreLooksStraightDown) {
  const GroundPlaneView view(101, 101, 0.05, 2.0);
  const Vec3 ray = view.ray_for_pixel({50.0, 50.0});
  EXPECT_NEAR(ray.x, 0.0, 1e-12);
  EXPECT_NEAR(ray.z, 0.0, 1e-12);
  EXPECT_GT(ray.y, 0.0);  // +Y is down
}

TEST(GroundView, AxesOrientation) {
  const GroundPlaneView view(101, 101, 0.1, 2.0);
  const Vec3 right = view.ray_for_pixel({100.0, 50.0});
  EXPECT_NEAR(right.x, 5.0, 1e-9);  // 50 px * 0.1 m/px
  const Vec3 ahead = view.ray_for_pixel({50.0, 0.0});
  EXPECT_NEAR(ahead.z, 5.0, 1e-9);  // image-up = forward
  EXPECT_NEAR(ahead.x, 0.0, 1e-9);
}

TEST(GroundView, StitcherAcceptsGeneralProjection) {
  // Build a 4-camera rig tilted 45 degrees down so the ground is well
  // inside each field; stitch a top-down view and verify full coverage of
  // the near field plus serial/pool equality through the general ctor.
  std::vector<RigCamera> rig;
  for (int c = 0; c < 4; ++c) {
    rig.push_back({core::FisheyeCamera::centered(
                       core::LensKind::Equidistant, deg_to_rad(185.0), 160,
                       160),
                   Mat3::rot_y(deg_to_rad(90.0 * c)) *
                       Mat3::rot_x(-deg_to_rad(45.0)),  // look down
                   160, 160});
  }
  const GroundPlaneView top(120, 120, 0.08, 2.0);
  const PanoramaStitcher stitcher(rig, top, BlendMode::Feather);
  EXPECT_EQ(stitcher.width(), 120);
  // The rig covers the whole near field.
  EXPECT_EQ(stitcher.uncovered_pixels(), 0u);

  img::Image8 env(512, 256, 3);
  env.fill(90);
  const auto frames = render_rig(rig, env);
  const img::Image8 serial = stitcher.stitch(views_of(frames));
  par::ThreadPool pool(3);
  const img::Image8 pooled = stitcher.stitch(views_of(frames), &pool);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(serial.view(), pooled.view()));
}

TEST(GroundView, EquirectCtorEquivalentToGeneralCtor) {
  const auto rig = two_camera_rig(96, 96);
  const PanoramaStitcher a(rig, 200, 60, deg_to_rad(120.0),
                           deg_to_rad(40.0));
  const core::EquirectangularView view(200, 60, deg_to_rad(120.0),
                                       deg_to_rad(40.0));
  const PanoramaStitcher b(rig, view);
  for (std::size_t c = 0; c < rig.size(); ++c) {
    ASSERT_EQ(a.weights(c).size(), b.weights(c).size());
    for (std::size_t i = 0; i < a.weights(c).size(); ++i)
      ASSERT_EQ(a.weights(c)[i], b.weights(c)[i]);
  }
}


TEST(GainCompensation, RecoversInjectedExposureMismatch) {
  // Scale camera 1's frame by 1.3x; the estimator must find ~sqrt ratios
  // (anchored product = 1) and the compensated panorama must match the
  // unbiased one closely.
  const img::Image8 env = make_street_environment(1024, 512);
  const auto rig = two_camera_rig(240, 240);
  auto frames = render_rig(rig, env);
  const PanoramaStitcher stitcher(rig, 360, 100, deg_to_rad(140.0),
                                  deg_to_rad(40.0));
  const img::Image8 unbiased = stitcher.stitch(views_of(frames));

  std::vector<img::Image8> biased;
  biased.push_back(frames[0].clone());
  img::Image8 bright(240, 240, 3);
  for (int y = 0; y < 240; ++y)
    for (int x = 0; x < 240 * 3; ++x)
      bright.row(y)[x] = static_cast<std::uint8_t>(
          std::min(255.0, frames[1].row(y)[x] * 1.3));
  biased.push_back(std::move(bright));

  const std::vector<double> gains = stitcher.estimate_gains(views_of(biased));
  ASSERT_EQ(gains.size(), 2u);
  // Gains counteract the bias: g0/g1 ~ 1.3 (anchored so g0*g1 ~ 1).
  EXPECT_NEAR(gains[0] / gains[1], 1.3, 0.1);
  EXPECT_NEAR(gains[0] * gains[1], 1.0, 0.05);

  const img::Image8 compensated =
      stitcher.stitch_with_gains(views_of(biased), gains);
  const img::Image8 uncompensated = stitcher.stitch(views_of(biased));
  // Compensation recovers most of the bias-induced error vs the unbiased
  // panorama (global scale remains, so compare improvements).
  const double err_comp = img::mse(unbiased.view(), compensated.view());
  const double err_raw = img::mse(unbiased.view(), uncompensated.view());
  EXPECT_LT(err_comp, err_raw);
}

TEST(GainCompensation, UnbiasedFramesYieldUnitGains) {
  const img::Image8 env = make_street_environment(512, 256);
  const auto rig = two_camera_rig(160, 160);
  const auto frames = render_rig(rig, env);
  const PanoramaStitcher stitcher(rig, 240, 60, deg_to_rad(140.0),
                                  deg_to_rad(30.0));
  for (double g : stitcher.estimate_gains(views_of(frames)))
    EXPECT_NEAR(g, 1.0, 0.02);
}

TEST(GainCompensation, Contracts) {
  const auto rig = two_camera_rig(64, 64);
  const PanoramaStitcher stitcher(rig, 100, 40, 1.5, 0.5);
  img::Image8 f(64, 64, 1);
  EXPECT_THROW(
      stitcher.stitch_with_gains({f.view(), f.view()}, {1.0}),
      fisheye::InvalidArgument);
  EXPECT_THROW(
      stitcher.stitch_with_gains({f.view(), f.view()}, {1.0, -1.0}),
      fisheye::InvalidArgument);
}

TEST(Stitcher, ContractViolations) {
  const auto rig = two_camera_rig(64, 64);
  EXPECT_THROW(PanoramaStitcher({}, 100, 50, 1.0, 0.5),
               fisheye::InvalidArgument);
  const PanoramaStitcher stitcher(rig, 100, 50, 1.0, 0.5);
  img::Image8 wrong(32, 32, 1);
  EXPECT_THROW(stitcher.stitch({wrong.view(), wrong.view()}),
               fisheye::InvalidArgument);
  EXPECT_THROW(stitcher.stitch({wrong.view()}), fisheye::InvalidArgument);
}

}  // namespace
}  // namespace fisheye::stitch
