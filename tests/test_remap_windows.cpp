// Windowed-execution equivalence: the remap_*_rect_offset variants feed
// every accelerator local-store / DMA path, so for any output rect whose
// source window covers the taps, the windowed result must be bit-exact
// with the full-frame kernel — for all three map representations and every
// interpolation kernel the float path supports. Rects are randomized
// interior rectangles, not hand-picked corners.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/mapping.hpp"
#include "core/projection.hpp"
#include "core/remap.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"

namespace fisheye::core {
namespace {

using util::deg_to_rad;

constexpr int kW = 72;
constexpr int kH = 56;
constexpr std::uint8_t kFill = 9;

img::Image8 random_image(int w, int h, int ch, std::uint64_t seed) {
  util::Rng rng(seed);
  img::Image8 im(w, h, ch);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w * ch; ++x)
      im.row(y)[x] = static_cast<std::uint8_t>(rng.next_below(256));
  return im;
}

const WarpMap& test_map() {
  static const WarpMap map = [] {
    const FisheyeCamera cam = FisheyeCamera::centered(
        LensKind::Equidistant, deg_to_rad(170.0), kW, kH);
    const PerspectiveView view(kW, kH, cam.lens().focal());
    return build_map(cam, view);
  }();
  return map;
}

par::Rect random_rect(util::Rng& rng) {
  const int x0 = static_cast<int>(rng.next_below(kW - 2));
  const int y0 = static_cast<int>(rng.next_below(kH - 2));
  const int x1 = x0 + 1 + static_cast<int>(rng.next_below(kW - x0 - 1));
  const int y1 = y0 + 1 + static_cast<int>(rng.next_below(kH - y0 - 1));
  return {x0, y0, x1, y1};
}

/// Copy `box` out of `src` — the stand-in for an accelerator DMA get.
img::Image8 copy_window(const img::Image8& src, par::Rect box) {
  img::Image8 window(box.width(), box.height(), src.channels());
  for (int y = 0; y < box.height(); ++y)
    for (int x = 0; x < box.width() * src.channels(); ++x)
      window.row(y)[x] = src.row(box.y0 + y)[box.x0 * src.channels() + x];
  return window;
}

void expect_rect_equal(const img::Image8& a, const img::Image8& b,
                       par::Rect rect, const std::string& label) {
  for (int y = rect.y0; y < rect.y1; ++y)
    for (int x = rect.x0; x < rect.x1; ++x)
      for (int c = 0; c < a.channels(); ++c)
        ASSERT_EQ(a.at(x, y, c), b.at(x, y, c))
            << label << " at " << x << ',' << y << " ch " << c;
}

// --- Float LUT, all four interpolation kernels -----------------------------

class WindowedFloatSweep : public ::testing::TestWithParam<Interp> {};

TEST_P(WindowedFloatSweep, OffsetMatchesFullFrameOnRandomRects) {
  const Interp interp = GetParam();
  const WarpMap& map = test_map();
  const img::Image8 src = random_image(kW, kH, 3, 17);
  const RemapOptions opts{interp, img::BorderMode::Constant, kFill};
  // source_bbox covers the bilinear 2x2 footprint; wider kernels reach
  // support/2 - 1 further taps on each side. Taps beyond the inflated box
  // are outside the frame, so constant fill makes window == full frame.
  const int inflate = std::max(0, interp_support(interp) / 2 - 1);
  util::Rng rng(29);
  for (int trial = 0; trial < 25; ++trial) {
    const par::Rect rect = random_rect(rng);
    par::Rect box = source_bbox(map, rect, kW, kH);
    if (box.empty()) continue;
    box.x0 = std::max(0, box.x0 - inflate);
    box.y0 = std::max(0, box.y0 - inflate);
    box.x1 = std::min(kW, box.x1 + inflate);
    box.y1 = std::min(kH, box.y1 + inflate);

    img::Image8 full(kW, kH, 3);
    full.fill(0);
    remap_rect(src.view(), full.view(), map, rect, opts);

    const img::Image8 window = copy_window(src, box);
    img::Image8 tiled(kW, kH, 3);
    tiled.fill(0);
    remap_rect_offset(window.view(), tiled.view(), map, rect, box.x0, box.y0,
                      opts);
    expect_rect_equal(full, tiled, rect,
                      std::string(interp_name(interp)) + " trial " +
                          std::to_string(trial));
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, WindowedFloatSweep,
                         ::testing::Values(Interp::Nearest, Interp::Bilinear,
                                           Interp::Bicubic, Interp::Lanczos3),
                         [](const auto& pinfo) {
                           return std::string(interp_name(pinfo.param));
                         });

// --- Packed LUT ------------------------------------------------------------

TEST(WindowedPackedSweep, OffsetMatchesFullFrameOnRandomRects) {
  const WarpMap& map = test_map();
  const PackedMap packed = pack_map(map, kW, kH);
  const img::Image8 src = random_image(kW, kH, 1, 23);
  util::Rng rng(31);
  for (int trial = 0; trial < 40; ++trial) {
    const par::Rect rect = random_rect(rng);
    const par::Rect box = source_bbox(map, rect, kW, kH);
    if (box.empty()) continue;

    img::Image8 full(kW, kH, 1);
    full.fill(0);
    remap_packed_rect(src.view(), full.view(), packed, rect, kFill);

    const img::Image8 window = copy_window(src, box);
    img::Image8 tiled(kW, kH, 1);
    tiled.fill(0);
    remap_packed_rect_offset(window.view(), tiled.view(), packed, rect,
                             box.x0, box.y0, kW, kH, kFill);
    expect_rect_equal(full, tiled, rect, "packed trial " +
                                             std::to_string(trial));
  }
}

// --- Compact LUT, every legal stride ---------------------------------------

class WindowedCompactSweep : public ::testing::TestWithParam<int> {};

TEST_P(WindowedCompactSweep, OffsetMatchesFullFrameOnRandomRects) {
  const int stride = GetParam();
  const WarpMap& map = test_map();
  const CompactMap cmap = compact_map(map, kW, kH, stride);
  const img::Image8 src = random_image(kW, kH, 3, 41);
  util::Rng rng(37 + static_cast<std::uint64_t>(stride));
  for (int trial = 0; trial < 25; ++trial) {
    const par::Rect rect = random_rect(rng);
    // The compact overload computes the bbox of *reconstructed*
    // coordinates — the exact pixels remap_compact_rect will touch.
    const par::Rect box = source_bbox(cmap, rect);
    if (box.empty()) continue;

    img::Image8 full(kW, kH, 3);
    full.fill(0);
    remap_compact_rect(src.view(), full.view(), cmap, rect, kFill);

    const img::Image8 window = copy_window(src, box);
    img::Image8 tiled(kW, kH, 3);
    tiled.fill(0);
    remap_compact_rect_offset(window.view(), tiled.view(), cmap, rect,
                              box.x0, box.y0, kFill);
    expect_rect_equal(full, tiled, rect,
                      "compact stride " + std::to_string(stride) +
                          " trial " + std::to_string(trial));
  }
}

INSTANTIATE_TEST_SUITE_P(Strides, WindowedCompactSweep,
                         ::testing::Values(1, 2, 4, 8),
                         [](const auto& pinfo) {
                           return "stride" + std::to_string(pinfo.param);
                         });

}  // namespace
}  // namespace fisheye::core
