// Unit tests for the small linear-algebra layer.
#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/mathx.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace fisheye::util {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ((a + b), (Vec2{4.0, 1.0}));
  EXPECT_EQ((a - b), (Vec2{-2.0, 3.0}));
  EXPECT_EQ((a * 2.0), (Vec2{2.0, 4.0}));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm(), 5.0);
}

TEST(Vec3, CrossIsOrthogonal) {
  const Vec3 a{1.0, 2.0, 3.0}, b{-2.0, 0.5, 1.0};
  const Vec3 c = a.cross(b);
  EXPECT_NEAR(c.dot(a), 0.0, 1e-12);
  EXPECT_NEAR(c.dot(b), 0.0, 1e-12);
}

TEST(Vec3, NormalizedHasUnitNorm) {
  const Vec3 v = Vec3{3.0, -4.0, 12.0}.normalized();
  EXPECT_NEAR(v.norm(), 1.0, 1e-14);
}

TEST(Vec3, NormalizeZeroViolatesContract) {
  EXPECT_THROW((void)Vec3{}.normalized(), fisheye::InvalidArgument);
}

TEST(Mat3, IdentityActsTrivially) {
  const Vec3 v{1.0, -2.0, 0.5};
  EXPECT_EQ(Mat3::identity() * v, v);
}

class RotationSweep : public ::testing::TestWithParam<double> {};

TEST_P(RotationSweep, RotationsAreOrthonormalWithUnitDet) {
  const double a = GetParam();
  for (const Mat3& r : {Mat3::rot_x(a), Mat3::rot_y(a), Mat3::rot_z(a)}) {
    EXPECT_NEAR(r.det(), 1.0, 1e-12);
    const Mat3 rtr = r.transposed() * r;
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j)
        EXPECT_NEAR(rtr(i, j), i == j ? 1.0 : 0.0, 1e-12);
  }
}

TEST_P(RotationSweep, RotationPreservesNorm) {
  const Mat3 r = Mat3::rot_y(GetParam()) * Mat3::rot_x(0.3);
  const Vec3 v{0.2, -1.4, 2.2};
  EXPECT_NEAR((r * v).norm(), v.norm(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Angles, RotationSweep,
                         ::testing::Values(-2.5, -0.7, 0.0, 0.3, 1.57, 3.0));

TEST(Mat3, RotYMapsZTowardX) {
  const Vec3 v = Mat3::rot_y(kHalfPi) * Vec3{0.0, 0.0, 1.0};
  EXPECT_NEAR(v.x, 1.0, 1e-12);
  EXPECT_NEAR(v.y, 0.0, 1e-12);
  EXPECT_NEAR(v.z, 0.0, 1e-12);
}

TEST(Mat3, RotXMapsZTowardNegY) {
  // +tilt rotates the optical axis; with +Y down, rot_x(pi/2)*Z = -Y... the
  // convention check the PTZ factory relies on.
  const Vec3 v = Mat3::rot_x(kHalfPi) * Vec3{0.0, 0.0, 1.0};
  EXPECT_NEAR(v.y, -1.0, 1e-12);
  EXPECT_NEAR(v.z, 0.0, 1e-12);
}

TEST(MatX, GramIsSymmetricPsd) {
  Rng rng(11);
  MatX a(10, 4);
  for (std::size_t r = 0; r < 10; ++r)
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
  const MatX g = a.gram();
  ASSERT_EQ(g.rows(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GE(g(i, i), 0.0);
    for (std::size_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
  }
}

TEST(Solve, SpdExactSolution) {
  // A = L L^T with known L; b = A x for known x.
  MatX a(3, 3);
  const double vals[9] = {4, 2, 1, 2, 5, 3, 1, 3, 6};
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = vals[i * 3 + j];
  const std::vector<double> x_true = {1.0, -2.0, 0.5};
  std::vector<double> b(3, 0.0);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) b[i] += vals[i * 3 + j] * x_true[j];
  const std::vector<double> x = solve_spd(a, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-12);
}

TEST(Solve, NonSpdThrows) {
  MatX a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;  // indefinite
  EXPECT_THROW(solve_spd(a, {1.0, 1.0}), fisheye::InvalidArgument);
}

TEST(Solve, LeastSquaresRecoversExactModel) {
  // y = 2 x0 - 3 x1 + 0.5 x2 sampled without noise.
  Rng rng(3);
  MatX a(40, 3);
  std::vector<double> b(40);
  for (std::size_t r = 0; r < 40; ++r) {
    const double x0 = rng.uniform(-2.0, 2.0);
    const double x1 = rng.uniform(-2.0, 2.0);
    const double x2 = rng.uniform(-2.0, 2.0);
    a(r, 0) = x0;
    a(r, 1) = x1;
    a(r, 2) = x2;
    b[r] = 2.0 * x0 - 3.0 * x1 + 0.5 * x2;
  }
  const std::vector<double> x = solve_least_squares(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-8);
  EXPECT_NEAR(x[1], -3.0, 1e-8);
  EXPECT_NEAR(x[2], 0.5, 1e-8);
}

TEST(Solve, DampingShrinksSolution) {
  MatX a(4, 2);
  std::vector<double> b(4);
  Rng rng(8);
  for (std::size_t r = 0; r < 4; ++r) {
    a(r, 0) = rng.uniform(0.1, 1.0);
    a(r, 1) = rng.uniform(0.1, 1.0);
    b[r] = rng.uniform(0.5, 1.5);
  }
  const auto x0 = solve_least_squares(a, b, 0.0);
  const auto x1 = solve_least_squares(a, b, 100.0);
  const double n0 = std::hypot(x0[0], x0[1]);
  const double n1 = std::hypot(x1[0], x1[1]);
  EXPECT_LT(n1, n0);
}

TEST(Solve, DimensionMismatchViolatesContract) {
  MatX a(3, 3);
  EXPECT_THROW(solve_spd(a, {1.0, 2.0}), fisheye::InvalidArgument);
}

}  // namespace
}  // namespace fisheye::util
