// YUV-native correction path.
#include <gtest/gtest.h>

#include "image/metrics.hpp"
#include "video/pipeline.hpp"
#include "video/yuv_corrector.hpp"

namespace fisheye::video {
namespace {

using util::deg_to_rad;

core::CorrectorConfig config_for(int w, int h) {
  return core::Corrector::builder(w, h).fov_degrees(180.0).config();
}

TEST(DecimateMap, HalvesGeometryConsistently) {
  // Identity full map (with the half-pixel lattice) decimates to the
  // identity map of the small plane.
  core::WarpMap full;
  full.width = 8;
  full.height = 8;
  full.src_x.resize(64);
  full.src_y.resize(64);
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x) {
      full.src_x[full.index(x, y)] = static_cast<float>(x);
      full.src_y[full.index(x, y)] = static_cast<float>(y);
    }
  const core::WarpMap half = decimate_map(full, 2);
  ASSERT_EQ(half.width, 4);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x) {
      EXPECT_NEAR(half.src_x[half.index(x, y)], static_cast<float>(x), 1e-5f);
      EXPECT_NEAR(half.src_y[half.index(x, y)], static_cast<float>(y), 1e-5f);
    }
}

TEST(DecimateMap, RejectsOddDimensions) {
  core::WarpMap full;
  full.width = 7;
  full.height = 8;
  full.src_x.resize(56);
  full.src_y.resize(56);
  EXPECT_THROW(decimate_map(full, 2), fisheye::InvalidArgument);
}

TEST(YuvCorrector, LumaMatchesGrayPath) {
  const int w = 160, h = 120;
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 deg_to_rad(180.0), w, h);
  const SyntheticVideoSource source(cam, w, h, 3);
  const img::Image8 rgb = source.frame(0);
  const img::Yuv420 yuv = img::rgb_to_yuv420(rgb.view());

  const YuvCorrector ycorr(config_for(w, h));
  core::SerialBackend backend;
  const img::Yuv420 out = ycorr.correct_frame(yuv, backend);

  // Luma plane must equal correcting the Y plane as a gray image.
  const core::Corrector gray_corr(config_for(w, h));
  img::Image8 ref(w, h, 1);
  gray_corr.correct(yuv.y.view(), ref.view(), backend);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.y.view()));
}

TEST(YuvCorrector, ChromaPlanesAreHalfResAndNeutralOutside) {
  const int w = 160, h = 120;
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 deg_to_rad(180.0), w, h);
  const SyntheticVideoSource source(cam, w, h, 3);
  const img::Yuv420 yuv = img::rgb_to_yuv420(source.frame(0).view());
  // Double-size output at the same focal: its corners look beyond the
  // lens' field, so the fill path is exercised.
  core::CorrectorConfig cfg = config_for(w, h);
  cfg.out_width = 2 * w;
  cfg.out_height = 2 * h;
  const YuvCorrector ycorr(cfg);
  core::SerialBackend backend;
  const img::Yuv420 out = ycorr.correct_frame(yuv, backend);
  EXPECT_EQ(out.u.width(), w);
  EXPECT_EQ(out.v.height(), h);
  // Outside the image circle chroma is neutral grey (128), luma black.
  EXPECT_EQ(out.y.at(0, 0), 0);
  EXPECT_EQ(out.u.at(0, 0), 128);
  EXPECT_EQ(out.v.at(0, 0), 128);
}

TEST(YuvCorrector, EndToEndCloseToRgbPath) {
  // yuv-native corrected frame, converted to RGB, must be visually
  // indistinguishable from the RGB-path correction (chroma is interpolated
  // at half resolution, so allow a modest PSNR floor).
  const int w = 320, h = 240;
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 deg_to_rad(180.0), w, h);
  const SyntheticVideoSource source(cam, w, h, 3);
  const img::Image8 rgb = source.frame(0);
  core::SerialBackend backend;

  const YuvCorrector ycorr(config_for(w, h));
  const img::Yuv420 out_yuv =
      ycorr.correct_frame(img::rgb_to_yuv420(rgb.view()), backend);
  const img::Image8 native = img::yuv420_to_rgb(out_yuv);

  const core::Corrector rgb_corr(config_for(w, h));
  img::Image8 reference(w, h, 3);
  rgb_corr.correct(rgb.view(), reference.view(), backend);

  EXPECT_GT(img::psnr(reference.view(), native.view()), 28.0);
}

TEST(YuvCorrector, WorksWithPoolBackend) {
  const int w = 160, h = 120;
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 deg_to_rad(180.0), w, h);
  const SyntheticVideoSource source(cam, w, h, 3);
  const img::Yuv420 yuv = img::rgb_to_yuv420(source.frame(0).view());
  const YuvCorrector ycorr(config_for(w, h));

  core::SerialBackend serial;
  const img::Yuv420 ref = ycorr.correct_frame(yuv, serial);
  par::ThreadPool pool(4);
  core::PoolBackend pooled(pool);
  const img::Yuv420 out = ycorr.correct_frame(yuv, pooled);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.y.view(), out.y.view()));
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.u.view(), out.u.view()));
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.v.view(), out.v.view()));
}

TEST(YuvCorrector, OddDimensionsViolateContract) {
  EXPECT_THROW(YuvCorrector(config_for(161, 120)), fisheye::InvalidArgument);
}

}  // namespace
}  // namespace fisheye::video
