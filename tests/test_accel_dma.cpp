// DMA engine: functional copies, accounting, alignment and capacity rules.
#include <gtest/gtest.h>

#include "accel/dma.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"

namespace fisheye::accel {
namespace {

img::Image8 random_image(int w, int h, int ch, std::uint64_t seed) {
  util::Rng rng(seed);
  img::Image8 im(w, h, ch);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w * ch; ++x)
      im.row(y)[x] = static_cast<std::uint8_t>(rng.next_below(256));
  return im;
}

TEST(Dma, GetRectCopiesExactWindow) {
  const SpeCostModel cost;
  DmaEngine dma(cost);
  const img::Image8 src = random_image(32, 16, 3, 1);
  const par::Rect box{5, 3, 21, 11};
  util::AlignedBuffer<std::uint8_t> local(
      static_cast<std::size_t>(box.area()) * 3);
  const std::size_t moved =
      dma.get_rect(src.view(), box, local.data(), local.size());
  EXPECT_EQ(moved, static_cast<std::size_t>(box.area()) * 3);
  for (int y = 0; y < box.height(); ++y)
    for (int x = 0; x < box.width(); ++x)
      for (int c = 0; c < 3; ++c)
        EXPECT_EQ(local[(static_cast<std::size_t>(y) * box.width() + x) * 3 + c],
                  src.at(box.x0 + x, box.y0 + y, c));
}

TEST(Dma, PutRectRoundTrip) {
  const SpeCostModel cost;
  DmaEngine dma(cost);
  const img::Image8 src = random_image(24, 24, 1, 2);
  img::Image8 dst(24, 24, 1);
  const par::Rect box{4, 8, 20, 16};
  util::AlignedBuffer<std::uint8_t> local(
      static_cast<std::size_t>(box.area()));
  dma.get_rect(src.view(), box, local.data(), local.size());
  dma.put_rect(local.data(), dst.view(), box);
  for (int y = box.y0; y < box.y1; ++y)
    for (int x = box.x0; x < box.x1; ++x)
      EXPECT_EQ(dst.at(x, y), src.at(x, y));
  // Outside the box untouched (zero).
  EXPECT_EQ(dst.at(0, 0), 0);
  EXPECT_EQ(dst.at(23, 23), 0);
}

TEST(Dma, StatsAccumulate) {
  const SpeCostModel cost;
  DmaEngine dma(cost);
  const img::Image8 src = random_image(64, 64, 1, 3);
  util::AlignedBuffer<std::uint8_t> local(64 * 64);
  dma.get_rect(src.view(), {0, 0, 64, 64}, local.data(), local.size());
  EXPECT_EQ(dma.stats().transfers, 1u);
  EXPECT_EQ(dma.stats().bytes_in, 4096u);
  EXPECT_EQ(dma.stats().bytes_out, 0u);
  EXPECT_GT(dma.stats().cycles, cost.dma_latency_cycles);

  img::Image8 dst(64, 64, 1);
  dma.put_rect(local.data(), dst.view(), {0, 0, 64, 64});
  EXPECT_EQ(dma.stats().transfers, 2u);
  EXPECT_EQ(dma.stats().bytes_out, 4096u);
}

TEST(Dma, LargeTransfersSplitIntoListElements) {
  const SpeCostModel cost;
  DmaEngine dma(cost);
  // 40 KB > 16 KB element size -> 3 elements.
  std::vector<std::uint8_t> host(40 * 1024, 7);
  util::AlignedBuffer<std::uint8_t> local(40 * 1024);
  dma.get_linear(host.data(), host.size(), local.data(), local.size());
  EXPECT_EQ(dma.stats().transfers, 1u);
  EXPECT_EQ(dma.stats().list_elements, 3u);
}

TEST(Dma, CycleCostMatchesModel) {
  SpeCostModel cost;
  cost.dma_latency_cycles = 100.0;
  cost.dma_bytes_per_cycle = 4.0;
  DmaEngine dma(cost);
  std::vector<std::uint8_t> host(1024);
  util::AlignedBuffer<std::uint8_t> local(1024);
  dma.get_linear(host.data(), 1024, local.data(), local.size());
  EXPECT_DOUBLE_EQ(dma.stats().cycles, 100.0 + 1024.0 / 4.0);
}

TEST(Dma, CapacityViolationThrows) {
  const SpeCostModel cost;
  DmaEngine dma(cost);
  const img::Image8 src = random_image(32, 32, 1, 5);
  util::AlignedBuffer<std::uint8_t> local(100);
  EXPECT_THROW(
      dma.get_rect(src.view(), {0, 0, 32, 32}, local.data(), local.size()),
      fisheye::InvalidArgument);
}

TEST(Dma, MisalignedLocalViolatesContract) {
  const SpeCostModel cost;
  DmaEngine dma(cost);
  const img::Image8 src = random_image(8, 8, 1, 5);
  util::AlignedBuffer<std::uint8_t> local(256);
  EXPECT_THROW(
      dma.get_rect(src.view(), {0, 0, 8, 8}, local.data() + 1, 128),
      fisheye::InvalidArgument);
}

TEST(Dma, OutOfImageRectViolatesContract) {
  const SpeCostModel cost;
  DmaEngine dma(cost);
  const img::Image8 src = random_image(8, 8, 1, 5);
  util::AlignedBuffer<std::uint8_t> local(256);
  EXPECT_THROW(
      dma.get_rect(src.view(), {0, 0, 9, 8}, local.data(), local.size()),
      fisheye::InvalidArgument);
  img::Image8 dst(8, 8, 1);
  EXPECT_THROW(dma.put_rect(local.data(), dst.view(), {-1, 0, 4, 4}),
               fisheye::InvalidArgument);
}

}  // namespace
}  // namespace fisheye::accel
