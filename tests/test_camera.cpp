// FisheyeCamera projection/back-projection tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/camera.hpp"
#include "util/mathx.hpp"

namespace fisheye::core {
namespace {

using util::kPi;
using util::Vec2;
using util::Vec3;

class CameraSweep : public ::testing::TestWithParam<LensKind> {};

TEST_P(CameraSweep, ProjectUnprojectRoundTrip) {
  const FisheyeCamera cam =
      FisheyeCamera::centered(GetParam(), util::deg_to_rad(170.0), 640, 480);
  // Rays across the field (stay inside each model's domain).
  const double max_theta =
      std::min(cam.lens().max_theta() * 0.9, util::deg_to_rad(84.0));
  for (int i = 0; i <= 20; ++i) {
    const double theta = max_theta * i / 20.0;
    for (int j = 0; j < 8; ++j) {
      const double phi = 2.0 * kPi * j / 8.0;
      const Vec3 ray{std::sin(theta) * std::cos(phi),
                     std::sin(theta) * std::sin(phi), std::cos(theta)};
      const Vec2 px = cam.project(ray);
      const Vec3 back = cam.unproject(px);
      EXPECT_NEAR(back.x, ray.x, 1e-9);
      EXPECT_NEAR(back.y, ray.y, 1e-9);
      EXPECT_NEAR(back.z, ray.z, 1e-9);
    }
  }
}

TEST_P(CameraSweep, UnprojectProjectRoundTripInsideCircle) {
  const FisheyeCamera cam =
      FisheyeCamera::centered(GetParam(), util::deg_to_rad(150.0), 512, 512);
  const double circle = cam.lens().image_circle_radius(util::deg_to_rad(150.0));
  for (int i = 0; i < 50; ++i) {
    const double r = circle * 0.95 * i / 50.0;
    const double a = 0.37 * i;
    const Vec2 px{cam.cx() + r * std::cos(a), cam.cy() + r * std::sin(a)};
    const Vec2 back = cam.project(cam.unproject(px));
    EXPECT_NEAR(back.x, px.x, 1e-8);
    EXPECT_NEAR(back.y, px.y, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CameraSweep,
                         ::testing::Values(LensKind::Equidistant,
                                           LensKind::Equisolid,
                                           LensKind::Orthographic,
                                           LensKind::Stereographic),
                         [](const auto& pinfo) {
                           return std::string(lens_kind_name(pinfo.param));
                         });

TEST(Camera, OpticalAxisHitsPrincipalPoint) {
  const FisheyeCamera cam =
      FisheyeCamera::centered(LensKind::Equidistant, kPi, 640, 480);
  const Vec2 px = cam.project({0.0, 0.0, 1.0});
  EXPECT_DOUBLE_EQ(px.x, cam.cx());
  EXPECT_DOUBLE_EQ(px.y, cam.cy());
  EXPECT_NEAR(cam.cx(), 319.5, 1e-12);
  EXPECT_NEAR(cam.cy(), 239.5, 1e-12);
}

TEST(Camera, CentredCircleInscribedInShortDimension) {
  const FisheyeCamera cam =
      FisheyeCamera::centered(LensKind::Equidistant, kPi, 640, 480);
  // A ray at 90 degrees (the fov edge) lands exactly 240 px from centre.
  const Vec2 px = cam.project({1.0, 0.0, 0.0});
  EXPECT_NEAR(px.x - cam.cx(), 240.0, 1e-9);
}

TEST(Camera, ProjectionIsRadiallySymmetric) {
  const FisheyeCamera cam =
      FisheyeCamera::centered(LensKind::Equisolid, kPi, 512, 512);
  const double theta = util::deg_to_rad(55.0);
  const Vec3 a{std::sin(theta), 0.0, std::cos(theta)};
  const Vec3 b{0.0, std::sin(theta), std::cos(theta)};
  const Vec2 pa = cam.project(a);
  const Vec2 pb = cam.project(b);
  EXPECT_NEAR(pa.x - cam.cx(), pb.y - cam.cy(), 1e-9);
  EXPECT_NEAR(pa.y - cam.cy(), 0.0, 1e-9);
  EXPECT_NEAR(pb.x - cam.cx(), 0.0, 1e-9);
}

TEST(Camera, ScaleInvariantInRayLength) {
  const FisheyeCamera cam =
      FisheyeCamera::centered(LensKind::Equidistant, kPi, 640, 480);
  const Vec3 ray{0.3, -0.2, 0.8};
  const Vec2 a = cam.project(ray);
  const Vec2 b = cam.project(ray * 7.5);
  EXPECT_NEAR(a.x, b.x, 1e-9);
  EXPECT_NEAR(a.y, b.y, 1e-9);
}

TEST(Camera, BehindLensSaturatesMonotonically) {
  // Orthographic max_theta = pi/2; rays beyond must land strictly farther
  // out than the image circle, monotonically in angle.
  const FisheyeCamera cam =
      FisheyeCamera::centered(LensKind::Orthographic, kPi * 0.999, 512, 512);
  const double circle = (cam.project({1.0, 0.0, 1e-9}).x - cam.cx());
  double prev = circle;
  for (double extra = 0.1; extra < 1.0; extra += 0.1) {
    const double theta = util::kHalfPi + extra;
    const Vec2 px = cam.project({std::sin(theta), 0.0, std::cos(theta)});
    const double r = px.x - cam.cx();
    EXPECT_GT(r, prev - 1e-12);
    prev = r;
  }
}

TEST(Camera, UnprojectCentreIsForward) {
  const FisheyeCamera cam =
      FisheyeCamera::centered(LensKind::Equidistant, kPi, 100, 100);
  const Vec3 ray = cam.unproject({cam.cx(), cam.cy()});
  EXPECT_DOUBLE_EQ(ray.x, 0.0);
  EXPECT_DOUBLE_EQ(ray.y, 0.0);
  EXPECT_DOUBLE_EQ(ray.z, 1.0);
}

TEST(Camera, UnprojectReturnsUnitRays) {
  const FisheyeCamera cam =
      FisheyeCamera::centered(LensKind::Equisolid, kPi, 256, 256);
  for (int i = 0; i < 20; ++i) {
    const Vec2 px{13.0 * i, 7.0 * i};
    EXPECT_NEAR(cam.unproject(px).norm(), 1.0, 1e-12) << i;
  }
}

}  // namespace
}  // namespace fisheye::core
