// Work-stealing executor invariants: StealQueue ordering and steal-half
// under concurrent thieves, StealScheduler exactly-once execution with
// counters that account for every tile, balanced_runs splits, Morton
// ordering as a permutation, and the end-to-end property the plan layer
// depends on — a Morton-ordered tile schedule covers every output pixel
// exactly once.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "core/corrector.hpp"
#include "core/tile_order.hpp"
#include "parallel/partition.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/work_stealing.hpp"

namespace fisheye {
namespace {

// --- StealQueue -------------------------------------------------------------

TEST(StealQueue, OwnerPopsTraverseTheRunInScheduleOrder) {
  par::StealQueue q;
  const std::uint32_t order[] = {7, 3, 9, 1, 4};
  q.assign(order, 1, 4);  // run = {3, 9, 1}
  std::uint32_t item = 0;
  ASSERT_TRUE(q.pop(item));
  EXPECT_EQ(item, 3u);
  ASSERT_TRUE(q.pop(item));
  EXPECT_EQ(item, 9u);
  ASSERT_TRUE(q.pop(item));
  EXPECT_EQ(item, 1u);
  EXPECT_FALSE(q.pop(item));
}

TEST(StealQueue, StealHalfTakesTheFarEndOfTheRun) {
  par::StealQueue q;
  const std::uint32_t order[] = {0, 1, 2, 3, 4};
  q.assign(order, 0, 5);
  std::vector<std::uint32_t> loot;
  // ceil(5/2) = 3 items from the head = the END of the owner's traversal.
  EXPECT_EQ(q.steal_half(loot), 3u);
  EXPECT_EQ(loot, (std::vector<std::uint32_t>{4, 3, 2}));
  // The owner keeps the front of its run, still in schedule order.
  std::uint32_t item = 0;
  ASSERT_TRUE(q.pop(item));
  EXPECT_EQ(item, 0u);
  ASSERT_TRUE(q.pop(item));
  EXPECT_EQ(item, 1u);
  EXPECT_FALSE(q.pop(item));
  EXPECT_EQ(q.steal_half(loot), 0u);
}

TEST(StealQueue, ConcurrentThievesAndOwnerClaimEachItemExactlyOnce) {
  // Hammer one queue from an owner popping and three thieves stealing
  // halves; every item must be claimed exactly once across all parties.
  constexpr std::uint32_t kItems = 5000;
  par::StealQueue q;
  std::vector<std::uint32_t> order(kItems);
  std::iota(order.begin(), order.end(), 0u);
  q.assign(order.data(), 0, kItems);

  std::vector<std::atomic<int>> claimed(kItems);
  std::atomic<std::size_t> total{0};
  const auto claim = [&](std::uint32_t item) {
    claimed[item].fetch_add(1);
    total.fetch_add(1);
  };

  std::vector<std::thread> threads;
  threads.emplace_back([&] {  // owner
    std::uint32_t item = 0;
    while (total.load() < kItems)
      if (q.pop(item)) claim(item);
  });
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {  // thief: steal, consume the loot, repeat
      std::vector<std::uint32_t> loot;
      while (total.load() < kItems) {
        const std::size_t got = q.steal_half(loot);
        for (std::size_t i = 0; i < got; ++i) claim(loot[i]);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (std::uint32_t i = 0; i < kItems; ++i)
    ASSERT_EQ(claimed[i].load(), 1) << "item " << i;
}

// --- balanced_runs ----------------------------------------------------------

TEST(BalancedRuns, UniformWeightsSplitNearEvenly) {
  const std::vector<std::size_t> runs =
      par::balanced_runs(100, 4, [](std::size_t) { return 1.0; });
  ASSERT_EQ(runs.size(), 5u);
  EXPECT_EQ(runs.front(), 0u);
  EXPECT_EQ(runs.back(), 100u);
  for (std::size_t w = 0; w < 4; ++w) {
    EXPECT_LE(runs[w], runs[w + 1]);
    EXPECT_NEAR(static_cast<double>(runs[w + 1] - runs[w]), 25.0, 1.0);
  }
}

TEST(BalancedRuns, SkewedWeightsEqualizeWeightNotCount) {
  // First 10 items carry 10x the weight of the rest: the first run must be
  // short in item count.
  const std::vector<std::size_t> runs = par::balanced_runs(
      100, 2, [](std::size_t i) { return i < 10 ? 10.0 : 1.0; });
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs.front(), 0u);
  EXPECT_EQ(runs.back(), 100u);
  // Total weight 190, fair share 95: the cut lands inside the heavy head.
  EXPECT_LT(runs[1], 20u);
}

TEST(BalancedRuns, MoreWorkersThanItemsLeavesTailRunsEmpty) {
  const std::vector<std::size_t> runs =
      par::balanced_runs(2, 5, [](std::size_t) { return 1.0; });
  ASSERT_EQ(runs.size(), 6u);
  EXPECT_EQ(runs.front(), 0u);
  EXPECT_EQ(runs.back(), 2u);
  for (std::size_t w = 0; w < 5; ++w) EXPECT_LE(runs[w], runs[w + 1]);
}

// --- StealScheduler / WorkStealingPool --------------------------------------

TEST(StealScheduler, RunsEveryIndexExactlyOnceUnderSkewedRuns) {
  // All work initially on worker 0: the other workers must steal all of
  // their share. Counters must account for every execution exactly once.
  constexpr std::size_t kN = 2000;
  par::ThreadPool pool(4);
  par::WorkStealingPool ws(pool);
  std::vector<std::uint32_t> order(kN);
  std::iota(order.begin(), order.end(), 0u);
  std::vector<std::size_t> runs(ws.size() + 1, kN);
  runs[0] = 0;  // worker 0 owns everything

  std::vector<std::atomic<int>> hits(kN);
  const par::StealStats stats =
      ws.run_ordered(order.data(), kN, runs,
                     [&](std::size_t i) { hits[i].fetch_add(1); });

  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  EXPECT_EQ(stats.local + stats.stolen, kN);
  EXPECT_LE(stats.steals, stats.stolen);
}

TEST(StealScheduler, BalancedRunsExecuteRepeatedFrames) {
  // The backends' steady-state shape: one scheduler reused frame after
  // frame with the same order and runs.
  constexpr std::size_t kN = 500;
  par::ThreadPool pool(3);
  par::WorkStealingPool ws(pool);
  std::vector<std::uint32_t> order(kN);
  std::iota(order.begin(), order.end(), 0u);
  const std::vector<std::size_t> runs =
      par::balanced_runs(kN, ws.size(), [](std::size_t) { return 1.0; });

  for (int frame = 0; frame < 5; ++frame) {
    std::vector<std::atomic<int>> hits(kN);
    const par::StealStats stats =
        ws.run_ordered(order.data(), kN, runs,
                       [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "frame " << frame << " index " << i;
    EXPECT_EQ(stats.local + stats.stolen, kN) << "frame " << frame;
  }
}

TEST(StealScheduler, SingleWorkerRunsEverythingLocally) {
  par::ThreadPool pool(1);
  par::WorkStealingPool ws(pool);
  std::vector<std::uint32_t> order = {0, 1, 2, 3};
  std::vector<std::size_t> visit_order;
  const par::StealStats stats = ws.run_ordered(
      order.data(), order.size(), {0, 4},
      [&](std::size_t i) { visit_order.push_back(i); });
  // One worker, no one to steal from: schedule order is preserved exactly.
  EXPECT_EQ(visit_order, (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(stats.local, 4u);
  EXPECT_EQ(stats.stolen, 0u);
  EXPECT_EQ(stats.steals, 0u);
}

// --- Morton ordering --------------------------------------------------------

TEST(MortonOrder, Morton2dInterleavesBits) {
  EXPECT_EQ(par::morton2d(0, 0), 0u);
  EXPECT_EQ(par::morton2d(1, 0), 1u);
  EXPECT_EQ(par::morton2d(0, 1), 2u);
  EXPECT_EQ(par::morton2d(1, 1), 3u);
  EXPECT_EQ(par::morton2d(2, 0), 4u);
  EXPECT_EQ(par::morton2d(0xFFFF, 0xFFFF), 0xFFFFFFFFu);
}

TEST(MortonOrder, IsAPermutationWithEmptyRectsLast) {
  std::vector<par::Rect> keys = {
      {64, 64, 96, 96}, {0, 0, 32, 32}, {10, 10, 10, 20} /* empty */,
      {32, 0, 64, 32},  {0, 32, 32, 64}, {5, 5, 5, 5} /* empty */,
  };
  const std::vector<std::uint32_t> order = par::morton_order(keys);
  ASSERT_EQ(order.size(), keys.size());
  std::vector<std::uint32_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint32_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  // The two empty rects land at the tail, in index order.
  EXPECT_EQ(order[order.size() - 2], 2u);
  EXPECT_EQ(order[order.size() - 1], 5u);
  // The origin tile sorts before the (64, 64) tile.
  EXPECT_LT(std::find(order.begin(), order.end(), 1u),
            std::find(order.begin(), order.end(), 0u));
}

TEST(MortonOrder, OrderedTileScheduleCoversEveryPixelExactlyOnce) {
  // The property the steal plan depends on: reordering a partition by
  // source locality is a permutation — painting the ordered tiles touches
  // every output pixel exactly once.
  const int w = 160, h = 120;
  const core::Corrector corr = core::Corrector::builder(w, h).build();
  const std::vector<par::Rect> tiles =
      par::partition(w, h, par::PartitionKind::Tiles, 0, 48, 24);

  core::ExecContext ctx;
  ctx.src = {nullptr, w, h, 1, static_cast<std::size_t>(w)};
  ctx.dst = {nullptr, w, h, 1, static_cast<std::size_t>(w)};
  ctx.map = corr.map();
  ctx.mode = core::MapMode::FloatLut;
  const std::vector<par::Rect> ordered =
      core::order_tiles_by_source_locality(ctx, tiles);

  ASSERT_EQ(ordered.size(), tiles.size());
  std::vector<int> paint(static_cast<std::size_t>(w) * h, 0);
  for (const par::Rect& t : ordered)
    for (int y = t.y0; y < t.y1; ++y)
      for (int x = t.x0; x < t.x1; ++x)
        ++paint[static_cast<std::size_t>(y) * w + x];
  EXPECT_TRUE(std::all_of(paint.begin(), paint.end(),
                          [](int c) { return c == 1; }));
  // And the order genuinely changed from raster order somewhere (the warp
  // is non-trivial), so the test would catch an identity short-circuit.
  EXPECT_NE(ordered, tiles);
}

// --- Multi-service WorkStealingPool -----------------------------------------

TEST(WorkStealingPool, TwoServicesShareOneThreadPool) {
  // Two independent services split one pool's lanes (2 + 2 on a pool of
  // 4). Each must make progress concurrently, and stopping one must only
  // join its own lanes — the other keeps serving.
  par::ThreadPool pool(4);
  par::WorkStealingPool a(pool);
  par::WorkStealingPool b(pool);
  par::StreamScheduler sched_a(2, 2);
  par::StreamScheduler sched_b(2, 2);
  a.start_service(sched_a);
  b.start_service(sched_b);

  struct Env {
    std::atomic<std::size_t> ran{0};
    std::atomic<int> retired{0};
  };
  Env env_a, env_b;
  std::vector<std::uint32_t> order(64);
  std::iota(order.begin(), order.end(), 0u);
  par::StreamJob job;
  job.order = order.data();
  job.count = order.size();
  job.run = [](void* env, std::uint32_t, unsigned) {
    static_cast<Env*>(env)->ran.fetch_add(1, std::memory_order_relaxed);
  };
  job.retire = [](void* env, const par::StealStats&) {
    static_cast<Env*>(env)->retired.fetch_add(1, std::memory_order_release);
  };

  const std::size_t slot_a = sched_a.create_slot();
  const std::size_t slot_b = sched_b.create_slot();
  ASSERT_NE(slot_a, par::StreamScheduler::kNoSlot);
  ASSERT_NE(slot_b, par::StreamScheduler::kNoSlot);
  const auto wait_retired = [](const Env& e, int n) {
    while (e.retired.load(std::memory_order_acquire) < n)
      std::this_thread::yield();
  };
  for (int f = 0; f < 5; ++f) {
    job.env = &env_a;
    sched_a.post(slot_a, job);
    job.env = &env_b;
    sched_b.post(slot_b, job);
    wait_retired(env_a, f + 1);
    wait_retired(env_b, f + 1);
  }

  a.stop_service();  // must not wait on b's still-running lanes
  job.env = &env_b;
  sched_b.post(slot_b, job);
  wait_retired(env_b, 6);
  b.stop_service();

  EXPECT_EQ(env_a.ran.load(), 5u * order.size());
  EXPECT_EQ(env_b.ran.load(), 6u * order.size());
}

}  // namespace
}  // namespace fisheye
