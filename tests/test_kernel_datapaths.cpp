// The AVX2 gather datapath vs the scalar reference, and the plan-time
// machinery around it: datapath=/tuned= spec options, effective-variant
// degrade (FISHEYE_FORCE_SCALAR, non-AVX2 hosts), the autotuner's
// resolve-once contract, and plan describability.
//
// Numerical contracts (simd/remap_gather.hpp): the packed and compact
// gather kernels run the SAME integer arithmetic as their scalar
// counterparts — bit-exact required; the float gather kernel quantizes
// bilinear weights to 8.8 fixed point — within one 8-bit level of scalar.
// All hold with or without AVX2 (the strip structure, not the ISA, defines
// the arithmetic), so this suite runs unconditionally.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "core/autotune.hpp"
#include "core/backend.hpp"
#include "core/backend_registry.hpp"
#include "core/mapping.hpp"
#include "core/projection.hpp"
#include "core/remap.hpp"
#include "image/image.hpp"
#include "simd/remap_gather.hpp"
#include "simd/remap_simd.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"

namespace fisheye::core {
namespace {

using util::deg_to_rad;

img::Image8 random_image(int w, int h, int ch, std::uint64_t seed) {
  util::Rng rng(seed);
  img::Image8 im(w, h, ch);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w * ch; ++x)
      im.row(y)[x] = static_cast<std::uint8_t>(rng.next_below(256));
  return im;
}

WarpMap random_interior_map(int w, int h, int src_w, int src_h,
                            std::uint64_t seed) {
  util::Rng rng(seed);
  WarpMap map;
  map.width = w;
  map.height = h;
  map.src_x.resize(map.pixel_count());
  map.src_y.resize(map.pixel_count());
  for (std::size_t i = 0; i < map.pixel_count(); ++i) {
    map.src_x[i] = static_cast<float>(rng.uniform(1.0, src_w - 2.0));
    map.src_y[i] = static_cast<float>(rng.uniform(1.0, src_h - 2.0));
  }
  return map;
}

par::Rect random_rect(int w, int h, util::Rng& rng) {
  const int x0 = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(w - 8)));
  const int y0 = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(h - 4)));
  const int x1 = x0 + 8 +
                 static_cast<int>(rng.next_below(
                     static_cast<std::uint64_t>(w - x0 - 7)));
  const int y1 = y0 + 4 +
                 static_cast<int>(rng.next_below(
                     static_cast<std::uint64_t>(h - y0 - 3)));
  return {x0, y0, std::min(x1, w), std::min(y1, h)};
}

int max_abs_diff(const img::Image8& a, const img::Image8& b) {
  int worst = 0;
  for (int y = 0; y < a.height(); ++y)
    for (int x = 0; x < a.width() * a.channels(); ++x) {
      const int d = std::abs(int(a.row(y)[x]) - int(b.row(y)[x]));
      worst = std::max(worst, d);
    }
  return worst;
}

TEST(GatherKernel, FloatWithinOneLevelOfScalarOnRandomRects) {
  for (const int ch : {1, 3}) {
    const int w = 181, h = 67;
    const img::Image8 src = random_image(w, h, ch, 21);
    const WarpMap map = random_interior_map(w, h, w, h, 22);
    util::Rng rng(23);
    simd::SoaScratch scratch;
    for (int trial = 0; trial < 8; ++trial) {
      const par::Rect rect = random_rect(w, h, rng);
      img::Image8 a(w, h, ch), b(w, h, ch);
      a.fill(9);
      b.fill(9);
      core::remap_rect(src.view(), a.view(), map, rect,
                       {Interp::Bilinear, img::BorderMode::Constant, 0});
      simd::remap_bilinear_gather(src.view(), b.view(), map, rect, 0,
                                  scratch);
      EXPECT_LE(max_abs_diff(a, b), 1)
          << "ch=" << ch << " rect=(" << rect.x0 << ',' << rect.y0 << ','
          << rect.x1 << ',' << rect.y1 << ')';
    }
  }
}

TEST(GatherKernel, PackedBitExactAgainstScalarOnRandomRects) {
  for (const int ch : {1, 3}) {
    const int w = 143, h = 59;
    const img::Image8 src = random_image(w, h, ch, 31);
    const WarpMap map = random_interior_map(w, h, w, h, 32);
    const PackedMap packed = pack_map(map, w, h);
    util::Rng rng(33);
    simd::SoaScratch scratch;
    for (int trial = 0; trial < 8; ++trial) {
      const par::Rect rect = random_rect(w, h, rng);
      img::Image8 a(w, h, ch), b(w, h, ch);
      a.fill(5);
      b.fill(5);
      remap_packed_rect(src.view(), a.view(), packed, rect, 0);
      simd::remap_packed_gather(src.view(), b.view(), packed, rect, 0,
                                scratch);
      EXPECT_TRUE(img::equal_pixels<std::uint8_t>(a.view(), b.view()))
          << "ch=" << ch << " rect=(" << rect.x0 << ',' << rect.y0 << ','
          << rect.x1 << ',' << rect.y1 << ')';
    }
  }
}

TEST(GatherKernel, CompactBitExactAgainstScalarOnRandomRects) {
  for (const int ch : {1, 3}) {
    const int w = 128, h = 96;
    const img::Image8 src = random_image(w, h, ch, 41);
    const WarpMap map = random_interior_map(w, h, w, h, 42);
    const CompactMap cm = compact_map(map, w, h, 8);
    util::Rng rng(43);
    simd::SoaScratch scratch;
    for (int trial = 0; trial < 8; ++trial) {
      const par::Rect rect = random_rect(w, h, rng);
      img::Image8 a(w, h, ch), b(w, h, ch);
      a.fill(3);
      b.fill(3);
      remap_compact_rect(src.view(), a.view(), cm, rect, 0);
      simd::remap_compact_gather(src.view(), b.view(), cm, rect, 0, scratch);
      EXPECT_TRUE(img::equal_pixels<std::uint8_t>(a.view(), b.view()))
          << "ch=" << ch << " rect=(" << rect.x0 << ',' << rect.y0 << ','
          << rect.x1 << ',' << rect.y1 << ')';
    }
  }
}

TEST(GatherKernel, TightPitchLastRowIsSafeAndExact) {
  // pitch == width (single channel, 64-px-multiple row): the vector loop's
  // 4-byte gathers near the bottom-right corner must not read past the
  // buffer (the bot < total-3 lane check routes those through the scalar
  // fixup). ASan/valgrind guards the "safe" half; exactness is checked
  // here.
  const int w = 128, h = 32;
  const img::Image8 src = random_image(w, h, 1, 51);
  ASSERT_EQ(src.pitch(), static_cast<std::size_t>(w));
  WarpMap map;
  map.width = w;
  map.height = h;
  map.src_x.resize(map.pixel_count());
  map.src_y.resize(map.pixel_count());
  // Everything points at the last interior pixel rows/columns.
  util::Rng rng(52);
  for (std::size_t i = 0; i < map.pixel_count(); ++i) {
    map.src_x[i] = static_cast<float>(rng.uniform(w - 6.0, w - 1.01));
    map.src_y[i] = static_cast<float>(rng.uniform(h - 4.0, h - 1.01));
  }
  img::Image8 a(w, h, 1), b(w, h, 1);
  core::remap_rect(src.view(), a.view(), map, {0, 0, w, h},
                   {Interp::Bilinear, img::BorderMode::Constant, 0});
  simd::SoaScratch scratch;
  simd::remap_bilinear_gather(src.view(), b.view(), map, {0, 0, w, h}, 0,
                              scratch);
  EXPECT_LE(max_abs_diff(a, b), 1);
}

TEST(GatherKernel, StripLengthDoesNotChangeResults) {
  const int w = 200, h = 48;
  const img::Image8 src = random_image(w, h, 1, 61);
  const WarpMap map = random_interior_map(w, h, w, h, 62);
  simd::SoaScratch scratch;
  img::Image8 ref(w, h, 1);
  simd::remap_bilinear_gather(src.view(), ref.view(), map, {0, 0, w, h}, 0,
                              scratch);
  for (const int strip : {8, 32, 100, 256, 100000}) {
    img::Image8 out(w, h, 1);
    simd::remap_bilinear_gather(src.view(), out.view(), map, {0, 0, w, h}, 0,
                                scratch, strip);
    EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()))
        << "strip=" << strip;
  }
}

// ---------------------------------------------------------------------------

constexpr int kW = 96;
constexpr int kH = 64;

struct Frame {
  img::Image8 src{kW, kH, 1};
  img::Image8 dst{kW, kH, 1};
  WarpMap map;

  Frame() {
    const FisheyeCamera cam = FisheyeCamera::centered(
        LensKind::Equidistant, deg_to_rad(170.0), kW, kH);
    const PerspectiveView view(kW, kH, cam.lens().focal());
    map = build_map(cam, view);
    src.fill(100);
  }

  [[nodiscard]] ExecContext ctx() {
    ExecContext c;
    c.src = src.view();
    c.dst = dst.view();
    c.map = &map;
    c.mode = MapMode::FloatLut;
    return c;
  }
};

TEST(Datapath, PlanRecordsTheVariantThatActuallyRuns) {
  Frame f;
  const auto backend =
      BackendRegistry::create("simd:threads=1,datapath=gather");
  const ExecutionPlan plan = backend->plan(f.ctx());
  const KernelVariant expect = simd::gather_available()
                                   ? KernelVariant::SimdGather
                                   : KernelVariant::SimdSoa;
  EXPECT_EQ(plan.kernel().key().variant, expect);
  backend->execute(plan, f.ctx());  // and it runs
}

TEST(Datapath, ForceScalarEnvGroundsEveryVariant) {
  ASSERT_EQ(setenv("FISHEYE_FORCE_SCALAR", "1", 1), 0);
  Frame f;
  for (const char* spec :
       {"simd:threads=1,datapath=gather", "simd:threads=1"}) {
    const auto backend = BackendRegistry::create(spec);
    const ExecutionPlan plan = backend->plan(f.ctx());
    EXPECT_EQ(plan.kernel().key().variant, KernelVariant::Scalar) << spec;
  }
  ASSERT_EQ(unsetenv("FISHEYE_FORCE_SCALAR"), 0);
  // And fresh plans pick the SIMD paths back up (read per call, not
  // latched at startup).
  const auto backend = BackendRegistry::create("simd:threads=1");
  EXPECT_EQ(backend->plan(f.ctx()).kernel().key().variant,
            KernelVariant::SimdSoa);
}

TEST(Datapath, UnknownValuesAreRejectedNamingTheToken) {
  try {
    (void)BackendRegistry::create("simd:threads=1,datapath=avx9");
    FAIL() << "accepted datapath=avx9";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("datapath="), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("avx9"), std::string::npos)
        << e.what();
  }
  for (const char* spec :
       {"simd:tuned=bogus", "simd:tuned=auto/9", "pool:tuned=gather/x/-/-",
        "simd:tuned=gather/128/64/-", "simd:tuned=-/-/-/martian"}) {
    try {
      (void)BackendRegistry::create(spec);
      FAIL() << spec << " was accepted";
    } catch (const InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find("tuned="), std::string::npos)
          << spec << ": " << e.what();
    }
  }
}

TEST(Datapath, ExplicitTunedTokenRoundTrips) {
  const auto backend =
      BackendRegistry::create("simd:threads=1,tuned=gather/128/-/-");
  EXPECT_NE(backend->name().find("tuned=gather/128/-/-"), std::string::npos)
      << backend->name();
  const auto again = BackendRegistry::create(backend->name());
  EXPECT_EQ(again->name(), backend->name());
}

TEST(Datapath, TunedAutoResolvesOncePlansAndRoundTrips) {
  AutotuneCache::instance().clear();
  Frame f;
  const auto backend = BackendRegistry::create("simd:threads=1,tuned=auto");
  EXPECT_NE(backend->name().find("tuned=auto"), std::string::npos);
  const ExecutionPlan plan = backend->plan(f.ctx());
  // Resolved: the name now carries the measured winner, not "auto".
  const std::string resolved = backend->name();
  EXPECT_EQ(resolved.find("tuned=auto"), std::string::npos) << resolved;
  EXPECT_NE(resolved.find("tuned="), std::string::npos) << resolved;
  EXPECT_EQ(AutotuneCache::instance().stats().stores, 1u);
  backend->execute(plan, f.ctx());

  // The resolved token reconstructs the same backend without measuring.
  const auto again = BackendRegistry::create(resolved);
  EXPECT_EQ(again->name(), resolved);
  (void)again->plan(f.ctx());
  EXPECT_EQ(AutotuneCache::instance().stats().stores, 1u);

  // A second tuned=auto instance of the same shape hits the cache.
  const auto third = BackendRegistry::create("simd:threads=1,tuned=auto");
  (void)third->plan(f.ctx());
  const auto stats = AutotuneCache::instance().stats();
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_GE(stats.hits, 1u);
  EXPECT_EQ(third->name(), resolved);
}

TEST(Datapath, PoolTunedAutoResolves) {
  AutotuneCache::instance().clear();
  Frame f;
  const auto backend =
      BackendRegistry::create("pool:tiles,threads=2,tuned=auto");
  (void)backend->plan(f.ctx());
  const std::string resolved = backend->name();
  EXPECT_EQ(resolved.find("tuned=auto"), std::string::npos) << resolved;
  const auto again = BackendRegistry::create(resolved);
  EXPECT_EQ(again->name(), resolved);
}

TEST(Datapath, DescribeNamesKernelAndIsa) {
  Frame f;
  const auto backend = BackendRegistry::create("simd:threads=1");
  const ExecutionPlan plan = backend->plan(f.ctx());
  const std::string d = plan.describe();
  EXPECT_NE(d.find("simd:threads=1"), std::string::npos) << d;
  EXPECT_NE(d.find("float-lut"), std::string::npos) << d;
  EXPECT_NE(d.find(variant_name(plan.kernel().key().variant)),
            std::string::npos)
      << d;
  EXPECT_NE(d.find("isa="), std::string::npos) << d;
}

TEST(Datapath, GatherAvailabilityIsConsistent) {
  // gather_available() implies gather_compiled(); FISHEYE_FORCE_SCALAR
  // kills availability without touching compiledness.
  if (simd::gather_available()) {
    EXPECT_TRUE(simd::gather_compiled());
  }
  ASSERT_EQ(setenv("FISHEYE_FORCE_SCALAR", "1", 1), 0);
  EXPECT_FALSE(simd::gather_available());
  ASSERT_EQ(unsetenv("FISHEYE_FORCE_SCALAR"), 0);
}

}  // namespace
}  // namespace fisheye::core
