// Cluster (message-passing) simulator: functional equality, traffic
// accounting, network-model shapes.
#include <gtest/gtest.h>

#include "cluster/cluster_sim.hpp"
#include "core/corrector.hpp"
#include "image/metrics.hpp"
#include "video/pipeline.hpp"

namespace fisheye::cluster {
namespace {

using util::deg_to_rad;

struct Env {
  core::Corrector corr;
  img::Image8 src;

  explicit Env(int w, int h, int ch = 1)
      : corr(core::Corrector::builder(w, h).fov_degrees(180.0).build()),
        src([&] {
          const auto cam = core::FisheyeCamera::centered(
              core::LensKind::Equidistant, deg_to_rad(180.0), w, h);
          return video::SyntheticVideoSource(cam, w, h, ch).frame(0);
        }()) {}
};

img::Image8 reference(const Env& e) {
  img::Image8 ref(e.corr.config().out_width, e.corr.config().out_height,
                  e.src.channels());
  core::SerialBackend serial;
  e.corr.correct(e.src.view(), ref.view(), serial);
  return ref;
}

class RankSweep : public ::testing::TestWithParam<int> {};

TEST_P(RankSweep, OutputMatchesSerialBitExact) {
  const Env e(160, 120);
  const img::Image8 ref = reference(e);
  ClusterConfig config;
  config.ranks = GetParam();
  ClusterSimBackend backend(config);
  img::Image8 out(160, 120, 1);
  e.corr.correct(e.src.view(), out.view(), backend);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()));
  EXPECT_EQ(backend.last_stats().ranks, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankSweep, ::testing::Values(1, 2, 3, 7, 16));

TEST(Cluster, BroadcastMatchesSerialToo) {
  const Env e(128, 96, 3);
  const img::Image8 ref = reference(e);
  ClusterConfig config;
  config.ranks = 4;
  config.distribution = Distribution::FullBroadcast;
  ClusterSimBackend backend(config);
  img::Image8 out(128, 96, 3);
  e.corr.correct(e.src.view(), out.view(), backend);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()));
}

TEST(Cluster, StripScatterMovesFewerBytesThanBroadcast) {
  const Env e(320, 240);
  img::Image8 out(320, 240, 1);
  ClusterConfig scatter;
  scatter.ranks = 8;
  ClusterConfig broadcast = scatter;
  broadcast.distribution = Distribution::FullBroadcast;
  ClusterSimBackend sb(scatter), bb(broadcast);
  e.corr.correct(e.src.view(), out.view(), sb);
  e.corr.correct(e.src.view(), out.view(), bb);
  // Both move the full map (8 B/px, the fixed cost); broadcast additionally
  // re-sends the whole source to every rank, scatter sends each rank only
  // its bounding box (the boxes tile the source with small overlaps).
  const std::size_t src_bytes =
      static_cast<std::size_t>(320) * 240;  // gray frame
  EXPECT_LT(sb.last_stats().bytes_scattered,
            bb.last_stats().bytes_scattered);
  EXPECT_GE(bb.last_stats().bytes_scattered - sb.last_stats().bytes_scattered,
            (8 - 2) * src_bytes);  // broadcast excess ~ (ranks-1) frames
  // Gathered bytes identical (same output).
  EXPECT_EQ(sb.last_stats().bytes_gathered, bb.last_stats().bytes_gathered);
}

TEST(Cluster, FasterNetworkNeverSlower) {
  const Env e(320, 240);
  img::Image8 out(320, 240, 1);
  ClusterConfig slow, fast;
  slow.ranks = fast.ranks = 8;
  slow.network = InterconnectModel::gigabit_ethernet();
  fast.network = InterconnectModel::infiniband_qdr();
  ClusterSimBackend sb(slow), fb(fast);
  e.corr.correct(e.src.view(), out.view(), sb);
  e.corr.correct(e.src.view(), out.view(), fb);
  EXPECT_GE(fb.last_stats().fps, sb.last_stats().fps);
  EXPECT_GT(fb.last_stats().efficiency, sb.last_stats().efficiency);
}

TEST(Cluster, SlowNodesScaleComputeTime) {
  const Env e(160, 120);
  img::Image8 out(160, 120, 1);
  ClusterConfig normal, half;
  normal.ranks = half.ranks = 2;
  half.node_speed = 0.5;
  ClusterSimBackend nb(normal), hb(half);
  e.corr.correct(e.src.view(), out.view(), nb);
  e.corr.correct(e.src.view(), out.view(), hb);
  // Half-speed nodes roughly double the compute share (timing noise on a
  // busy host allows generous bounds).
  EXPECT_GT(hb.last_stats().compute_seconds,
            1.4 * nb.last_stats().compute_seconds);
}

TEST(Cluster, StatsAreConsistent) {
  const Env e(160, 120);
  img::Image8 out(160, 120, 1);
  ClusterConfig config;
  config.ranks = 4;
  ClusterSimBackend backend(config);
  e.corr.correct(e.src.view(), out.view(), backend);
  const ClusterFrameStats& s = backend.last_stats();
  EXPECT_GT(s.seconds, 0.0);
  EXPECT_GT(s.bytes_scattered, 0u);
  EXPECT_EQ(s.bytes_gathered, 160u * 120u);
  EXPECT_GT(s.speedup, 0.0);
  EXPECT_LE(s.efficiency, 1.05);  // tiny timing noise tolerance
  EXPECT_EQ(backend.name(), "cluster");
}

TEST(Cluster, MoreRanksThanRowsClamped) {
  const Env e(64, 8);
  const img::Image8 ref = reference(e);
  ClusterConfig config;
  config.ranks = 64;  // > 8 rows
  ClusterSimBackend backend(config);
  img::Image8 out(64, 8, 1);
  e.corr.correct(e.src.view(), out.view(), backend);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()));
  EXPECT_LE(backend.last_stats().ranks, 8);
}

TEST(Cluster, RejectsUnsupportedModes) {
  const Env e(64, 64);
  core::ExecContext ctx;
  img::Image8 out(64, 64, 1);
  ctx = e.corr.make_context(e.src.view(), out.view());
  ctx.opts.interp = core::Interp::Bicubic;
  ClusterSimBackend backend(ClusterConfig{});
  EXPECT_THROW(backend.execute(ctx), fisheye::InvalidArgument);
}

}  // namespace
}  // namespace fisheye::cluster
