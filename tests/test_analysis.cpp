// Quality-analysis instruments.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/quality.hpp"
#include "core/brown_conrady.hpp"
#include "core/corrector.hpp"
#include "image/synth.hpp"
#include "util/mathx.hpp"

namespace fisheye::analysis {
namespace {

using util::deg_to_rad;

img::Image8 stripe_image(int w, int h, double x_of_y_amp) {
  // Vertical stripe whose centre follows x = w/2 + amp*sin(y/20).
  img::Image8 im(w, h, 1);
  for (int y = 0; y < h; ++y) {
    const int cx = static_cast<int>(
        w / 2.0 + x_of_y_amp * std::sin(y / 20.0));
    for (int x = std::max(0, cx - 2); x <= std::min(w - 1, cx + 2); ++x)
      im.at(x, y) = 250;
  }
  return im;
}

TEST(Straightness, PerfectStripeIsStraight) {
  const img::Image8 im = stripe_image(100, 80, 0.0);
  const StraightnessReport r = stripe_straightness(im.view(), 0, 80);
  EXPECT_EQ(r.rows_used, 80);
  EXPECT_LT(r.max_deviation_px, 1e-9);
  EXPECT_NEAR(r.slope, 0.0, 1e-12);
}

TEST(Straightness, SlantedStraightLineHasZeroResidual) {
  // A slanted but straight stripe: slope is reported, residual stays ~0.
  img::Image8 im(100, 80, 1);
  for (int y = 0; y < 80; ++y) {
    const int cx = 20 + y / 2;
    for (int x = cx - 1; x <= cx + 1; ++x) im.at(x, y) = 250;
  }
  const StraightnessReport r = stripe_straightness(im.view(), 0, 80);
  EXPECT_NEAR(r.slope, 0.5, 0.02);
  EXPECT_LT(r.max_deviation_px, 0.5);
}

TEST(Straightness, BowedStripeMeasured) {
  const img::Image8 im = stripe_image(100, 80, 6.0);
  const StraightnessReport r = stripe_straightness(im.view(), 0, 80);
  EXPECT_GT(r.max_deviation_px, 3.0);
  EXPECT_GT(r.rms_deviation_px, 1.0);
}

TEST(Straightness, EmptyRowsSkipped) {
  img::Image8 im(50, 40, 1);  // all dark
  const StraightnessReport r = stripe_straightness(im.view(), 0, 40);
  EXPECT_EQ(r.rows_used, 0);
  EXPECT_EQ(r.max_deviation_px, 0.0);
}

TEST(RadialContrast, SiemensStarIsHighContrastEverywhere) {
  const img::Image8 star = img::make_siemens_star(201, 201, 16);
  const auto profile = radial_contrast(star.view(), 8, 95.0);
  ASSERT_EQ(profile.size(), 8u);
  // Skip the innermost band (spokes merge below pixel pitch).
  for (std::size_t b = 1; b < profile.size(); ++b)
    EXPECT_GT(profile[b], 0.85) << "band " << b;
}

TEST(RadialContrast, FlatImageHasZeroContrast) {
  img::Image8 im(100, 100, 1);
  im.fill(77);
  for (double c : radial_contrast(im.view(), 5, 45.0)) EXPECT_EQ(c, 0.0);
}

TEST(MapErrorStats, IdenticalMapsAreZero) {
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 deg_to_rad(170.0), 80, 60);
  const core::PerspectiveView view(80, 60, cam.lens().focal());
  const core::WarpMap map = core::build_map(cam, view);
  const MapErrorStats s = map_error_stats(map, map, 80, 60);
  EXPECT_GT(s.samples, 0u);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(s.p99, 0.0);
}

TEST(MapErrorStats, PercentilesAreOrderedAndMatchKnownShift) {
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 deg_to_rad(170.0), 80, 60);
  const core::PerspectiveView view(80, 60, cam.lens().focal());
  const core::WarpMap a = core::build_map(cam, view);
  core::WarpMap b = a;
  for (auto& v : b.src_x) v += 1.5f;  // uniform shift
  const MapErrorStats s = map_error_stats(a, b, 80, 60);
  EXPECT_NEAR(s.mean, 1.5, 0.05);
  EXPECT_NEAR(s.p50, 1.5, 0.05);
  EXPECT_NEAR(s.max, 1.5, 0.05);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
}

TEST(Integration, CorrectionRestoresStripeStraightness) {
  // The analysis instrument applied to the real pipeline: a bowed stripe
  // in the fisheye image straightens after correction.
  const int w = 240, h = 180;
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 deg_to_rad(180.0), w, h);
  // Scene with a vertical stripe right of centre.
  img::Image8 scene(2 * w, 2 * h, 1);
  for (int y = 0; y < scene.height(); ++y)
    for (int x = 300; x <= 304; ++x) scene.at(x, y) = 250;
  const core::WarpMap synth =
      core::build_synthesis_map(cam, 2 * w, 2 * h, 0.25 * 2 * w, w, h);
  img::Image8 fish(w, h, 1);
  core::remap_rect(scene.view(), fish.view(), synth, {0, 0, w, h},
                   {core::Interp::Bilinear, img::BorderMode::Constant, 0});

  const core::Corrector corr = core::Corrector::builder(w, h).build();
  core::SerialBackend backend;
  img::Image8 corrected(w, h, 1);
  corr.correct(fish.view(), corrected.view(), backend);

  const StraightnessReport before =
      stripe_straightness(fish.view(), h / 4, 3 * h / 4, 100);
  const StraightnessReport after =
      stripe_straightness(corrected.view(), h / 4, 3 * h / 4, 100);
  EXPECT_GT(before.max_deviation_px, 1.5);
  EXPECT_LT(after.max_deviation_px, before.max_deviation_px / 3.0);
}

TEST(Straightness, ContractsOnInputs) {
  img::Image8 rgb(10, 10, 3);
  EXPECT_THROW(stripe_straightness(rgb.view(), 0, 10),
               fisheye::InvalidArgument);
  img::Image8 gray(10, 10, 1);
  EXPECT_THROW(stripe_straightness(gray.view(), 5, 3),
               fisheye::InvalidArgument);
  EXPECT_THROW(radial_contrast(gray.view(), 0, 5.0),
               fisheye::InvalidArgument);
}

}  // namespace
}  // namespace fisheye::analysis
