// Brown-Conrady polynomial model: forward/inverse consistency, fitting
// against exact lens models, and the edge-error growth that motivates the
// exact pipeline (T3's property, asserted qualitatively here).
#include <gtest/gtest.h>

#include <cmath>

#include "core/brown_conrady.hpp"
#include "core/lens_model.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"

namespace fisheye::core {
namespace {

TEST(BrownConrady, ZeroCoefficientsIsIdentity) {
  const BrownConrady bc({}, 100.0);
  const util::Vec2 p{0.3, -0.7};
  const util::Vec2 d = bc.distort_normalized(p);
  EXPECT_DOUBLE_EQ(d.x, p.x);
  EXPECT_DOUBLE_EQ(d.y, p.y);
  EXPECT_DOUBLE_EQ(bc.distort_radius(0.5), 0.5);
}

TEST(BrownConrady, RadialInverseRoundTrip) {
  const BrownConrady bc({-0.2, 0.05, -0.01, 0.0, 0.0}, 100.0);
  for (double r = 0.0; r <= 1.2; r += 0.05) {
    const double rd = bc.distort_radius(r);
    EXPECT_NEAR(bc.undistort_radius(rd), r, 1e-9) << "r=" << r;
  }
}

TEST(BrownConrady, NormalizedInverseRoundTripWithTangential) {
  const BrownConrady bc({-0.15, 0.02, 0.0, 1e-3, -5e-4}, 100.0);
  for (double a = 0.0; a < 6.28; a += 0.37) {
    const util::Vec2 u{0.6 * std::cos(a), 0.6 * std::sin(a)};
    const util::Vec2 d = bc.distort_normalized(u);
    const util::Vec2 back = bc.undistort_normalized(d);
    EXPECT_NEAR(back.x, u.x, 1e-8);
    EXPECT_NEAR(back.y, u.y, 1e-8);
  }
}

TEST(BrownConrady, PixelFormsAreConsistentWithNormalized) {
  const BrownConrady bc({-0.1, 0.0, 0.0, 0.0, 0.0}, 200.0);
  const util::Vec2 centre{320.0, 240.0};
  const util::Vec2 px{420.0, 180.0};
  const util::Vec2 d = bc.distort_pixel(px, centre);
  const util::Vec2 back = bc.undistort_pixel(d, centre);
  EXPECT_NEAR(back.x, px.x, 1e-6);
  EXPECT_NEAR(back.y, px.y, 1e-6);
  // Barrel distortion pulls points toward the centre.
  EXPECT_LT(std::hypot(d.x - centre.x, d.y - centre.y),
            std::hypot(px.x - centre.x, px.y - centre.y));
}

TEST(BrownConrady, UndistortZeroRadius) {
  const BrownConrady bc({-0.2, 0.0, 0.0, 0.0, 0.0}, 100.0);
  EXPECT_DOUBLE_EQ(bc.undistort_radius(0.0), 0.0);
}

TEST(BrownConrady, InvalidFocalViolatesContract) {
  EXPECT_THROW(BrownConrady({}, 0.0), fisheye::InvalidArgument);
}

TEST(Fit, ReproducesEquidistantAtModerateAngles) {
  const auto lens = make_lens(LensKind::Equidistant, 300.0);
  const double max_theta = util::deg_to_rad(50.0);
  const BrownConrady bc = fit_brown_conrady(*lens, max_theta);
  // Compare distorted radii over the fitted range: sub-half-pixel.
  double worst = 0.0;
  for (int i = 1; i <= 40; ++i) {
    const double theta = max_theta * i / 40.0;
    const double exact = lens->radius_from_theta(theta);
    const double approx =
        bc.distort_radius(std::tan(theta)) * lens->focal();
    worst = std::max(worst, std::abs(exact - approx));
  }
  EXPECT_LT(worst, 0.5);
}

TEST(Fit, CoefficientsAreNegativeForBarrel) {
  // Equidistant compresses relative to pinhole -> leading k1 < 0.
  const auto lens = make_lens(LensKind::Equidistant, 300.0);
  const BrownConrady bc =
      fit_brown_conrady(*lens, util::deg_to_rad(60.0));
  EXPECT_LT(bc.coeffs().k1, 0.0);
  EXPECT_DOUBLE_EQ(bc.coeffs().p1, 0.0);
  EXPECT_DOUBLE_EQ(bc.coeffs().p2, 0.0);
}

TEST(Fit, EdgeErrorGrowsWithFieldOfView) {
  // The motivating T3 shape: the polynomial fit's worst-case radial error
  // (in pixels, over its own fitted range) grows steeply as the fitted
  // field of view widens.
  const auto lens = make_lens(LensKind::Equidistant, 300.0);
  auto worst_error = [&](double max_theta_deg) {
    const double max_theta = util::deg_to_rad(max_theta_deg);
    const BrownConrady bc = fit_brown_conrady(*lens, max_theta);
    double worst = 0.0;
    for (int i = 1; i <= 100; ++i) {
      const double theta = max_theta * i / 100.0;
      const double exact = lens->radius_from_theta(theta);
      const double approx =
          bc.distort_radius(std::tan(theta)) * lens->focal();
      worst = std::max(worst, std::abs(exact - approx));
    }
    return worst;
  };
  const double e40 = worst_error(40.0);
  const double e60 = worst_error(60.0);
  const double e80 = worst_error(80.0);
  EXPECT_LT(e40, e60);
  EXPECT_LT(e60, e80);
  EXPECT_GT(e80, 10.0 * e40);  // steep growth, not linear drift
}

TEST(Fit, WorksForOtherModels) {
  for (const LensKind kind :
       {LensKind::Equisolid, LensKind::Orthographic, LensKind::Stereographic}) {
    const auto lens = make_lens(kind, 250.0);
    const BrownConrady bc =
        fit_brown_conrady(*lens, util::deg_to_rad(45.0));
    const double theta = util::deg_to_rad(30.0);
    const double exact = lens->radius_from_theta(theta);
    const double approx = bc.distort_radius(std::tan(theta)) * lens->focal();
    EXPECT_NEAR(approx, exact, 0.5) << lens_kind_name(kind);
  }
}

TEST(Fit, RejectsInvalidRange) {
  const auto lens = make_lens(LensKind::Equidistant, 300.0);
  EXPECT_THROW(fit_brown_conrady(*lens, util::kHalfPi),
               fisheye::InvalidArgument);  // tan singularity
  EXPECT_THROW(fit_brown_conrady(*lens, 0.5, 4),
               fisheye::InvalidArgument);  // too few samples
}

}  // namespace
}  // namespace fisheye::core
