// Virtual PTZ controller: lazy rebuilds, path interpolation, render
// equivalence with the direct map path.
#include <gtest/gtest.h>

#include "core/projection.hpp"
#include "image/metrics.hpp"
#include "video/pipeline.hpp"
#include "video/ptz_controller.hpp"

namespace fisheye::video {
namespace {

using util::deg_to_rad;

core::FisheyeCamera camera() {
  return core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                       deg_to_rad(180.0), 320, 240);
}

TEST(PtzPath, InterpolatesLinearlyAndClamps) {
  PtzPath path;
  path.keys = {{0.0, {0.0, 0.0, 1.0}}, {2.0, {0.4, -0.2, 0.8}}};
  EXPECT_EQ(path.at(-1.0), path.keys.front().pose);
  EXPECT_EQ(path.at(5.0), path.keys.back().pose);
  const PtzPose mid = path.at(1.0);
  EXPECT_DOUBLE_EQ(mid.pan, 0.2);
  EXPECT_DOUBLE_EQ(mid.tilt, -0.1);
  EXPECT_DOUBLE_EQ(mid.hfov, 0.9);
}

TEST(PtzPath, MultiSegment) {
  PtzPath path;
  path.keys = {{0.0, {0.0, 0.0, 1.0}},
               {1.0, {1.0, 0.0, 1.0}},
               {3.0, {1.0, 0.5, 1.0}}};
  EXPECT_DOUBLE_EQ(path.at(0.5).pan, 0.5);
  EXPECT_DOUBLE_EQ(path.at(2.0).tilt, 0.25);
}

TEST(PtzPath, RejectsUnorderedKeys) {
  PtzPath path;
  path.keys = {{1.0, {}}, {0.5, {}}};
  EXPECT_THROW((void)path.at(0.7), fisheye::InvalidArgument);
  PtzPath empty;
  EXPECT_THROW((void)empty.at(0.0), fisheye::InvalidArgument);
}

TEST(VirtualPtz, RebuildsOnlyWhenPoseChanges) {
  const auto cam = camera();
  VirtualPtz ptz(cam, 160, 120);
  (void)ptz.map();
  EXPECT_EQ(ptz.rebuilds(), 1);
  EXPECT_GT(ptz.last_rebuild_ms(), 0.0);
  (void)ptz.map();  // cached
  EXPECT_EQ(ptz.rebuilds(), 1);
  EXPECT_EQ(ptz.last_rebuild_ms(), 0.0);
  ptz.set_view(ptz.pose());  // no-op
  (void)ptz.map();
  EXPECT_EQ(ptz.rebuilds(), 1);
  ptz.set_view({0.3, 0.1, deg_to_rad(50.0)});
  (void)ptz.map();
  EXPECT_EQ(ptz.rebuilds(), 2);
}

TEST(VirtualPtz, RenderMatchesDirectMapPath) {
  const auto cam = camera();
  const SyntheticVideoSource source(cam, 320, 240, 1);
  const img::Image8 fish = source.frame(0);

  VirtualPtz ptz(cam, 160, 120);
  const PtzPose pose{deg_to_rad(30.0), deg_to_rad(10.0), deg_to_rad(70.0)};
  ptz.set_view(pose);
  img::Image8 via_ctrl(160, 120, 1);
  ptz.render(fish.view(), via_ctrl.view());

  const core::PerspectiveView view = core::PerspectiveView::ptz(
      160, 120, pose.pan, pose.tilt, pose.hfov);
  const core::WarpMap map = core::build_map(cam, view);
  img::Image8 direct(160, 120, 1);
  core::remap_rect(fish.view(), direct.view(), map, {0, 0, 160, 120}, {});
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(direct.view(), via_ctrl.view()));
}

TEST(VirtualPtz, TourOverPathRendersDistinctViews) {
  const auto cam = camera();
  const SyntheticVideoSource source(cam, 320, 240, 1);
  const img::Image8 fish = source.frame(0);
  PtzPath path;
  path.keys = {{0.0, {deg_to_rad(-40.0), 0.0, deg_to_rad(60.0)}},
               {1.0, {deg_to_rad(40.0), 0.0, deg_to_rad(60.0)}}};
  VirtualPtz ptz(cam, 120, 90);
  img::Image8 first(120, 90, 1), last(120, 90, 1);
  ptz.set_view(path.at(0.0));
  ptz.render(fish.view(), first.view());
  ptz.set_view(path.at(1.0));
  ptz.render(fish.view(), last.view());
  EXPECT_FALSE(img::equal_pixels<std::uint8_t>(first.view(), last.view()));
  EXPECT_EQ(ptz.rebuilds(), 2);
}

TEST(VirtualPtz, Contracts) {
  const auto cam = camera();
  EXPECT_THROW(VirtualPtz(cam, 0, 10), fisheye::InvalidArgument);
  VirtualPtz ptz(cam, 64, 48);
  EXPECT_THROW(ptz.set_view({0.0, 0.0, 0.0}), fisheye::InvalidArgument);
  EXPECT_THROW(ptz.set_view({0.0, 0.0, util::kPi}),
               fisheye::InvalidArgument);
  img::Image8 src(320, 240, 1), wrong(32, 32, 1);
  EXPECT_THROW(ptz.render(src.view(), wrong.view()),
               fisheye::InvalidArgument);
}

}  // namespace
}  // namespace fisheye::video
