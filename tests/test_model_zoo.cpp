// Camera-model zoo: lens/view spec grammar (round-trips and
// rejection-by-name), QuadView geometry, cv_compat's Kannala-Brandt
// delegation, cross-backend equivalence for the parameterized lenses,
// plan identity carrying the model names, and serve recalibration from a
// lens spec.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <string>

#include "core/autotune.hpp"
#include "core/backend_registry.hpp"
#include "core/corrector.hpp"
#include "core/cv_compat.hpp"
#include "core/mapping.hpp"
#include "core/model_spec.hpp"
#include "image/image.hpp"
#include "image/metrics.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"
#include "util/matrix.hpp"
#include "video/pipeline.hpp"

namespace fisheye {
namespace {

using core::Corrector;
using core::LensKind;
using core::LensSpec;
using core::ViewKind;
using core::ViewSpec;
using util::deg_to_rad;

/// EXPECT that `fn` throws InvalidArgument and the message names every
/// expected fragment (the offending token, per the spec-error contract).
template <typename Fn>
void expect_rejects(Fn&& fn, std::initializer_list<const char*> fragments) {
  try {
    fn();
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    for (const char* fragment : fragments)
      EXPECT_NE(what.find(fragment), std::string::npos)
          << "message '" << what << "' lacks '" << fragment << "'";
  }
}

// --- spec grammar -----------------------------------------------------------

TEST(LensSpecGrammar, ParseNameIsCanonicalFixpoint) {
  const char* specs[] = {
      "equidistant",
      "equisolid:fov=160",
      "orthographic",
      "stereographic:fov=150",
      "rectilinear:fov=120",
      "kannala_brandt",
      "kannala_brandt:k1=-0.02,k2=0.002,k3=0,k4=0",
      "kannala_brandt:k1=0.1,k2=-0.01,k3=0.001,k4=-0.0001,fov=170",
      "division",
      "division:lambda=-1,fov=160",
  };
  for (const std::string text : specs) {
    const LensSpec parsed = LensSpec::parse(text);
    const std::string canonical = parsed.name();
    // name() is a fixpoint of parse: parsing the canonical form
    // reproduces both the value and the text.
    EXPECT_EQ(LensSpec::parse(canonical), parsed) << text;
    EXPECT_EQ(LensSpec::parse(canonical).name(), canonical) << text;
    // The registry-token form parses identically.
    EXPECT_EQ(LensSpec::parse("lens=" + text), parsed) << text;
  }
}

TEST(LensSpecGrammar, CanonicalNameOmitsDefaults) {
  EXPECT_EQ(LensSpec().name(), "equidistant");
  EXPECT_EQ(LensSpec::parse("equidistant:fov=180").name(), "equidistant");
  EXPECT_EQ(LensSpec(LensKind::Stereographic).name(), "stereographic");
  // Parameterized kinds always carry their coefficients.
  EXPECT_EQ(LensSpec::parse("kannala_brandt").name().rfind(
                "kannala_brandt:k1=", 0),
            0u);
  EXPECT_EQ(LensSpec::parse("division").name().rfind("division:lambda=", 0),
            0u);
}

TEST(LensSpecGrammar, RejectionsNameTheOffendingToken) {
  expect_rejects([] { LensSpec::parse("fisheye"); },
                 {"unknown kind", "fisheye"});
  // Inapplicable calibration parameter on an analytic lens.
  expect_rejects([] { LensSpec::parse("equidistant:k1=0.1"); }, {"k1"});
  expect_rejects([] { LensSpec::parse("kannala_brandt:lambda=-0.5"); },
                 {"lambda"});
  // Out-of-range coefficients and fov.
  expect_rejects([] { LensSpec::parse("kannala_brandt:k1=9"); },
                 {"k1", "out of range"});
  expect_rejects([] { LensSpec::parse("division:lambda=0.5"); },
                 {"lambda", "out of range"});
  expect_rejects([] { LensSpec::parse("division:lambda=-11"); },
                 {"lambda", "out of range"});
  expect_rejects([] { LensSpec::parse("equidistant:fov=0"); },
                 {"fov", "out of range"});
  expect_rejects([] { LensSpec::parse("equidistant:fov=361"); },
                 {"fov", "out of range"});
  // In-range fov that the model's geometry cannot image.
  expect_rejects([] { LensSpec::parse("rectilinear:fov=180"); },
                 {"fov", "usable field of view"});
}

TEST(ViewSpecGrammar, ParseNameIsCanonicalFixpoint) {
  const char* specs[] = {
      "perspective",
      "perspective:fov=90",
      "cylindrical",
      "cylindrical:hfov=200",
      "equirect",
      "equirect:hfov=200,vfov=120",
      "quadview",
      "quadview:fov=75,tilt=50",
  };
  for (const std::string text : specs) {
    const ViewSpec parsed = ViewSpec::parse(text);
    const std::string canonical = parsed.name();
    EXPECT_EQ(ViewSpec::parse(canonical), parsed) << text;
    EXPECT_EQ(ViewSpec::parse(canonical).name(), canonical) << text;
    EXPECT_EQ(ViewSpec::parse("view=" + text), parsed) << text;
  }
}

TEST(ViewSpecGrammar, CanonicalNameOmitsDefaults) {
  EXPECT_EQ(ViewSpec().name(), "perspective");
  EXPECT_EQ(ViewSpec::parse("cylindrical:hfov=180").name(), "cylindrical");
  EXPECT_EQ(ViewSpec::parse("equirect:hfov=180,vfov=90").name(), "equirect");
  EXPECT_EQ(ViewSpec::parse("quadview:fov=90,tilt=40").name(), "quadview");
}

TEST(ViewSpecGrammar, RejectionsNameTheOffendingToken) {
  expect_rejects([] { ViewSpec::parse("fishbowl"); },
                 {"unknown kind", "fishbowl"});
  // Inapplicable option for the kind.
  expect_rejects([] { ViewSpec::parse("cylindrical:tilt=10"); }, {"tilt"});
  expect_rejects([] { ViewSpec::parse("perspective:hfov=90"); }, {"hfov"});
  // Out-of-range values.
  expect_rejects([] { ViewSpec::parse("perspective:fov=180"); },
                 {"fov", "out of range"});
  expect_rejects([] { ViewSpec::parse("quadview:tilt=91"); },
                 {"tilt", "out of range"});
  expect_rejects([] { ViewSpec::parse("equirect:vfov=181"); },
                 {"vfov", "out of range"});
}

TEST(LensSpecGrammar, FocalForCircleInvertsImageCircle) {
  for (const char* text :
       {"equidistant", "kannala_brandt:k1=-0.02,k2=0.002,fov=170",
        "division:lambda=-0.6,fov=160"}) {
    const LensSpec spec = LensSpec::parse(text);
    const double f = spec.focal_for_circle(120.0);
    const auto lens = spec.make(f);
    EXPECT_NEAR(lens->radius_from_theta(spec.fov_rad() / 2.0), 120.0, 1e-9)
        << text;
  }
}

// --- cv_compat delegation ---------------------------------------------------

TEST(CvCompatZoo, KannalaBrandtThetaKeepsItsHistoricValues) {
  // Values the shim produced before it delegated to core::KannalaBrandt —
  // the delegation must not change the polynomial.
  //   theta=0.5, d={-0.02, 0.002, 0, 0}:
  //   0.5 * (1 + 0.25*(-0.02) + 0.0625*0.002) = 0.4975625
  const std::array<double, 4> d{-0.02, 0.002, 0.0, 0.0};
  EXPECT_NEAR(cv_compat::kannala_brandt_theta(0.5, d), 0.4975625, 1e-15);

  const std::array<double, 4> d2{0.05, -0.01, 0.002, -0.0005};
  const double t = 1.2;
  const double t2 = t * t;
  const double expected =
      t * (1.0 + d2[0] * t2 + d2[1] * t2 * t2 + d2[2] * t2 * t2 * t2 +
           d2[3] * t2 * t2 * t2 * t2);
  EXPECT_NEAR(cv_compat::kannala_brandt_theta(t, d2), expected, 1e-12);
}

TEST(CvCompatZoo, ShimAndLensModelShareOneImplementation) {
  const std::array<double, 4> d{0.03, -0.004, 0.0007, -0.0001};
  const core::KannalaBrandt lens(250.0, d);
  for (int i = 0; i <= 40; ++i) {
    const double theta = lens.max_theta() * i / 40.0;
    const double shim = cv_compat::kannala_brandt_theta(theta, d);
    EXPECT_DOUBLE_EQ(shim, core::KannalaBrandt::distort_theta(theta, d));
    EXPECT_DOUBLE_EQ(lens.radius_from_theta(theta), 250.0 * shim);
  }
}

// --- QuadView geometry ------------------------------------------------------

TEST(QuadViewGeometry, QuadrantsArePannedPtzViews) {
  const double fov = deg_to_rad(90.0), tilt = deg_to_rad(40.0);
  const core::QuadView view(128, 96, fov, tilt);
  // Every global pixel resolves through its quadrant's local PTZ view.
  const double qw = 64.0, qh = 48.0;
  for (int qy = 0; qy < 2; ++qy)
    for (int qx = 0; qx < 2; ++qx) {
      const core::PerspectiveView& quad = view.quadrant(qy * 2 + qx);
      for (const auto& [lx, ly] : {std::pair{0.0, 0.0}, {31.5, 23.5},
                                   {63.0, 47.0}}) {
        const util::Vec3 got =
            view.ray_for_pixel({qx * qw + lx, qy * qh + ly});
        const util::Vec3 want = quad.ray_for_pixel({lx, ly});
        EXPECT_DOUBLE_EQ(got.x, want.x);
        EXPECT_DOUBLE_EQ(got.y, want.y);
        EXPECT_DOUBLE_EQ(got.z, want.z);
      }
    }
  // The four quadrants are one PTZ view panned 0/90/180/270 degrees: each
  // quadrant's centre ray is the previous one's rotated a quarter turn
  // about the optical axis' vertical.
  const util::Vec2 centre{0.5 * (qw - 1.0), 0.5 * (qh - 1.0)};
  for (int i = 1; i < 4; ++i) {
    const util::Vec3 base = view.quadrant(0).ray_for_pixel(centre);
    const util::Vec3 want = util::Mat3::rot_y(i * util::kHalfPi) * base;
    const util::Vec3 got = view.quadrant(i).ray_for_pixel(centre);
    EXPECT_NEAR(got.x, want.x, 1e-12);
    EXPECT_NEAR(got.y, want.y, 1e-12);
    EXPECT_NEAR(got.z, want.z, 1e-12);
  }
}

TEST(QuadViewGeometry, OddDimensionsAreRejected) {
  EXPECT_THROW(core::QuadView(127, 96, deg_to_rad(90.0), deg_to_rad(40.0)),
               fisheye::InvalidArgument);
  EXPECT_THROW(core::QuadView(128, 95, deg_to_rad(90.0), deg_to_rad(40.0)),
               fisheye::InvalidArgument);
  EXPECT_THROW(ViewSpec::parse("quadview").make(127, 96, 100.0),
               fisheye::InvalidArgument);
}

TEST(QuadViewGeometry, MapEqualsPerQuadrantPtzMaps) {
  // One QuadView warp map must be exactly the four per-quadrant PTZ maps
  // laid out in the 2x2 grid — the hot path stays a single remap.
  const auto cam = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, util::kPi, 160, 120);
  const core::QuadView view(128, 96, deg_to_rad(90.0), deg_to_rad(40.0));
  const core::WarpMap whole = core::build_map(cam, view);
  for (int i = 0; i < 4; ++i) {
    const core::WarpMap quad = core::build_map(cam, view.quadrant(i));
    const int ox = (i % 2) * 64, oy = (i / 2) * 48;
    for (int y = 0; y < 48; ++y)
      for (int x = 0; x < 64; ++x) {
        const std::size_t w = whole.index(ox + x, oy + y);
        const std::size_t q = quad.index(x, y);
        EXPECT_EQ(whole.src_x[w], quad.src_x[q]) << i << " " << x << "," << y;
        EXPECT_EQ(whole.src_y[w], quad.src_y[q]) << i << " " << x << "," << y;
      }
  }
}

// --- corrector integration --------------------------------------------------

img::Image8 fisheye_input(int w, int h, const LensSpec& lens) {
  const auto cam = core::FisheyeCamera::centered(lens, w, h);
  video::SyntheticVideoSource source(cam, w, h, 1);
  return source.frame(0);
}

TEST(ModelZoo, ParameterizedLensesMatchAcrossBackends) {
  // The zoo only changes what the map builder evaluates: scalar backends
  // stay bit-exact with serial, the SIMD kernel keeps its one-level
  // contract — same guarantees the analytic lenses have.
  for (const char* text : {"kannala_brandt:k1=-0.02,k2=0.002,fov=170",
                           "division:lambda=-0.6,fov=160"}) {
    const LensSpec spec = LensSpec::parse(text);
    const int w = 160, h = 120;
    const Corrector corr = Corrector::builder(w, h).lens(spec).build();
    const img::Image8 src = fisheye_input(w, h, spec);
    img::Image8 ref(w, h, 1);
    const auto serial = core::BackendRegistry::create("serial");
    corr.correct(src.view(), ref.view(), *serial);

    img::Image8 pooled(w, h, 1);
    const auto pool = core::BackendRegistry::create("pool:threads=2");
    corr.correct(src.view(), pooled.view(), *pool);
    EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), pooled.view()))
        << text;

    img::Image8 vectored(w, h, 1);
    const auto simd = core::BackendRegistry::create("simd");
    corr.correct(src.view(), vectored.view(), *simd);
    EXPECT_LT(img::fraction_differing(ref.view(), vectored.view(), 1), 0.01)
        << text;
  }
}

TEST(ModelZoo, PlanDescribeCarriesModelIdentity) {
  const Corrector corr =
      Corrector::builder(96, 72)
          .lens(LensSpec::parse("division:lambda=-0.5,fov=160"))
          .view(ViewSpec::parse("cylindrical:hfov=200"))
          .build();
  const auto backend = core::BackendRegistry::create("serial");
  const Corrector::Prepared prepared = corr.prepare(*backend, 1);
  const std::string desc = prepared.plan.describe();
  EXPECT_NE(desc.find("lens=division:lambda=-0.5"), std::string::npos)
      << desc;
  EXPECT_NE(desc.find("view=cylindrical"), std::string::npos) << desc;
}

TEST(ModelZoo, ViewSpecsProduceDistinctOutputs) {
  const int w = 128, h = 96;
  const LensSpec lens = LensSpec::parse("equidistant");
  const img::Image8 src = fisheye_input(w, h, lens);
  const auto backend = core::BackendRegistry::create("serial");

  auto correct_with = [&](const char* view_text) {
    const Corrector corr = Corrector::builder(w, h)
                               .lens(lens)
                               .view(ViewSpec::parse(view_text))
                               .build();
    img::Image8 out(w, h, 1);
    corr.correct(src.view(), out.view(), *backend);
    return out;
  };
  const img::Image8 persp = correct_with("perspective");
  for (const char* text : {"cylindrical:hfov=200", "equirect", "quadview"}) {
    const img::Image8 other = correct_with(text);
    EXPECT_GT(img::max_abs_diff(persp.cview(), other.cview()), 0) << text;
  }

  // QuadView needs four equal quadrants; odd output dims are a user error.
  EXPECT_THROW(Corrector::builder(w, h)
                   .output_size(127, 95)
                   .view(ViewSpec::parse("quadview"))
                   .build(),
               fisheye::InvalidArgument);
}

TEST(ModelZoo, AutotuneCacheKeySeparatesModels) {
  // Tuned decisions must not replay across lens/view identity: the cache
  // key carries both names.
  const int w = 96, h = 72;
  img::Image8 src(w, h, 1), dst(w, h, 1);
  const auto cam_a = core::FisheyeCamera::centered(
      LensSpec::parse("equidistant"), w, h);
  const auto cam_b = core::FisheyeCamera::centered(
      LensSpec::parse("kannala_brandt:fov=170"), w, h);
  const core::PerspectiveView persp(w, h, 80.0);
  const core::CylindricalView cyl(w, h, deg_to_rad(200.0), 80.0);

  core::ExecContext ctx;
  ctx.src = src.cview();
  ctx.dst = dst.view();
  ctx.mode = core::MapMode::OnTheFly;
  ctx.camera = &cam_a;
  ctx.view = &persp;
  const std::string key_a = core::autotune_cache_key(ctx, "pool");
  ctx.camera = &cam_b;
  const std::string key_b = core::autotune_cache_key(ctx, "pool");
  EXPECT_NE(key_a, key_b);
  ctx.camera = &cam_a;
  ctx.view = &cyl;
  EXPECT_NE(core::autotune_cache_key(ctx, "pool"), key_a);
  ctx.camera = nullptr;
  ctx.view = nullptr;
  EXPECT_NE(core::autotune_cache_key(ctx, "pool"), key_a);
}

// --- serving ----------------------------------------------------------------

TEST(ServeZoo, RecalibrateFromSpecMatchesFreshServer) {
  const int w = 320, h = 240;
  img::Image8 src(w, h, 1);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      src.at(x, y) = static_cast<std::uint8_t>((x * 7 + y * 13) & 0xFF);

  serve::ServerConfig cfg;
  cfg.src_width = w;
  cfg.src_height = h;
  cfg.lens = core::LensKind::Equidistant;
  // Fixed level focal: recalibration keeps the pyramid geometry, so a
  // fresh server with the new lens is an exact reference.
  cfg.levels = {{256, 192, 140.0}};

  const LensSpec newlens = LensSpec::parse("division:lambda=-0.5,fov=160");
  const par::Rect r{32, 32, 160, 128};
  img::Image8 before(r.width(), r.height(), 1);
  img::Image8 after(r.width(), r.height(), 1);
  img::Image8 fresh(r.width(), r.height(), 1);

  {
    par::ThreadPool pool(2);
    serve::Server server(cfg, serve::ServeOptions::parse("serve"), pool);
    server.request(0, r, before.view());
    server.submit_frame(src.cview());
    server.drain();

    server.recalibrate(newlens);
    EXPECT_EQ(server.generation(), 2u);
    EXPECT_EQ(server.config().lens, newlens);
    EXPECT_NEAR(server.config().fov_rad, deg_to_rad(160.0), 1e-12);
    EXPECT_EQ(server.stats().cache_entries, 0u);

    server.request(0, r, after.view());
    server.submit_frame(src.cview());
    server.drain();
  }
  {
    serve::ServerConfig cfg2 = cfg;
    cfg2.lens = newlens;
    par::ThreadPool pool(2);
    serve::Server server(cfg2, serve::ServeOptions::parse("serve"), pool);
    server.request(0, r, fresh.view());
    server.submit_frame(src.cview());
    server.drain();
  }
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(after.cview(), fresh.cview()));
  EXPECT_GT(img::max_abs_diff(before.cview(), after.cview()), 0);
}

}  // namespace
}  // namespace fisheye
