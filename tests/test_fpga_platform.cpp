// FPGA streaming platform: functional equivalence with the packed CPU
// kernel, cycle model sanity, cache-geometry sensitivity.
#include <gtest/gtest.h>

#include "accel/fpga_platform.hpp"
#include "core/corrector.hpp"
#include "core/remap.hpp"
#include "image/metrics.hpp"
#include "image/synth.hpp"
#include "util/mathx.hpp"

namespace fisheye::accel {
namespace {

using util::deg_to_rad;

struct Env {
  core::FisheyeCamera cam;
  core::PerspectiveView view;
  core::WarpMap map;
  core::PackedMap packed;
  img::Image8 src;

  explicit Env(int w, int h)
      : cam(core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                          deg_to_rad(180.0), w, h)),
        view(w, h, cam.lens().focal()),
        map(core::build_map(cam, view)),
        packed(core::pack_map(map, w, h, 14)),
        src(img::make_rings(w, h, 7)) {}
};

TEST(FpgaPlatform, OutputMatchesPackedKernelBitExact) {
  const Env s(160, 120);
  FpgaPlatform platform(s.packed, FpgaConfig{});
  img::Image8 out(160, 120, 1), ref(160, 120, 1);
  platform.run_frame(s.src.view(), out.view(), 0);
  core::remap_packed_rect(s.src.view(), ref.view(), s.packed,
                          {0, 0, 160, 120}, 0);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()));
}

TEST(FpgaPlatform, CyclesAtLeastOnePerPixel) {
  const Env s(160, 120);
  FpgaPlatform platform(s.packed, FpgaConfig{});
  img::Image8 out(160, 120, 1);
  const AccelFrameStats stats = platform.run_frame(s.src.view(), out.view(), 0);
  EXPECT_GE(stats.cycles, 160.0 * 120.0);
  EXPECT_GT(stats.fps, 0.0);
  EXPECT_LE(stats.utilization, 1.0);
}

TEST(FpgaPlatform, GenerousCacheYieldsHighHitRate) {
  const Env s(320, 240);
  FpgaConfig config;  // default 64-set 4-way 32x8 blocks = 64K pixels
  FpgaPlatform platform(s.packed, config);
  img::Image8 out(320, 240, 1);
  const AccelFrameStats stats = platform.run_frame(s.src.view(), out.view(), 0);
  EXPECT_GT(stats.cache_hit_rate(), 0.95);
}

TEST(FpgaPlatform, TinyCacheDegradesThroughput) {
  const Env s(320, 240);
  FpgaConfig big;
  FpgaConfig tiny;
  tiny.cache.block_w = 8;
  tiny.cache.block_h = 2;
  tiny.cache.sets = 2;
  tiny.cache.ways = 1;
  img::Image8 out(320, 240, 1);
  FpgaPlatform pb(s.packed, big);
  FpgaPlatform pt(s.packed, tiny);
  const AccelFrameStats sb = pb.run_frame(s.src.view(), out.view(), 0);
  const AccelFrameStats st = pt.run_frame(s.src.view(), out.view(), 0);
  EXPECT_GT(st.cache_misses, sb.cache_misses * 10);
  EXPECT_LT(st.fps, sb.fps);
}

TEST(FpgaPlatform, FpsScalesWithClock) {
  const Env s(160, 120);
  FpgaConfig slow, fast;
  slow.cost.clock_hz = 100e6;
  fast.cost.clock_hz = 200e6;
  img::Image8 out(160, 120, 1);
  const double fps_slow =
      FpgaPlatform(s.packed, slow).run_frame(s.src.view(), out.view(), 0).fps;
  const double fps_fast =
      FpgaPlatform(s.packed, fast).run_frame(s.src.view(), out.view(), 0).fps;
  EXPECT_NEAR(fps_fast / fps_slow, 2.0, 1e-9);
}

TEST(FpgaPlatform, MissPenaltyRaisesCycles) {
  const Env s(160, 120);
  FpgaConfig cheap, dear;
  cheap.cost.miss_penalty_cycles = 0.0;
  dear.cost.miss_penalty_cycles = 100.0;
  img::Image8 out(160, 120, 1);
  const double c0 =
      FpgaPlatform(s.packed, cheap).run_frame(s.src.view(), out.view(), 0).cycles;
  const double c1 =
      FpgaPlatform(s.packed, dear).run_frame(s.src.view(), out.view(), 0).cycles;
  EXPECT_GT(c1, c0);
}

TEST(FpgaPlatform, DdrBoundCapsThroughputAndCompactMapRecoversIt) {
  const Env s(320, 240);
  FpgaConfig bounded;
  bounded.cost.ddr_bytes_per_cycle = 6.0;
  img::Image8 out(320, 240, 1);
  // The bound only ever slows a config down relative to idealized prefetch.
  const AccelFrameStats ideal =
      FpgaPlatform(s.packed, FpgaConfig{}).run_frame(s.src.view(),
                                                     out.view(), 0);
  const AccelFrameStats capped =
      FpgaPlatform(s.packed, bounded).run_frame(s.src.view(), out.view(), 0);
  EXPECT_GE(capped.cycles, ideal.cycles);
  EXPECT_GE(capped.cycles,
            static_cast<double>(capped.bytes_in + capped.bytes_out) / 6.0);
  // Streaming the 8 B/px packed LUT dominates the port, so the BRAM-resident
  // compact grid is faster behind the same bound.
  const core::CompactMap cm = core::compact_map(s.map, 320, 240, 8);
  FpgaPlatform compact_platform(cm, bounded);
  ASSERT_TRUE(compact_platform.lut_on_chip());
  const AccelFrameStats compact =
      compact_platform.run_frame(s.src.view(), out.view(), 0);
  EXPECT_GT(compact.fps, capped.fps);
}

TEST(FpgaPlatform, InvalidPixelsSkipCacheAccesses) {
  // The synthesis map of a 180-degree lens has invalid corners; those emit
  // fill without touching the cache.
  const auto cam = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, deg_to_rad(180.0), 160, 120);
  const core::WarpMap synth =
      core::build_synthesis_map(cam, 320, 240, 80.0, 160, 120);
  const core::PackedMap packed = core::pack_map(synth, 320, 240, 14);
  std::size_t invalid = 0;
  for (std::int32_t v : packed.fx) invalid += v == core::PackedMap::kInvalid;
  ASSERT_GT(invalid, 0u);
  img::Image8 src(320, 240, 1), out(160, 120, 1);
  FpgaPlatform platform(packed, FpgaConfig{});
  const AccelFrameStats stats = platform.run_frame(src.view(), out.view(), 0);
  EXPECT_LT(stats.cache_accesses, 4u * 160u * 120u);
}

TEST(FpgaPlatform, DimensionMismatchViolatesContract) {
  const Env s(64, 64);
  FpgaPlatform platform(s.packed, FpgaConfig{});
  img::Image8 src(64, 64, 1);
  img::Image8 wrong(32, 32, 1);
  EXPECT_THROW(platform.run_frame(src.view(), wrong.view(), 0),
               fisheye::InvalidArgument);
}

}  // namespace
}  // namespace fisheye::accel
