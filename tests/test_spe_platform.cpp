// Cell-like platform simulator: functional equivalence, tiling/splitting
// behaviour, local-store budget enforcement, and cost-model scaling shapes.
#include <gtest/gtest.h>

#include <vector>

#include "accel/spe_platform.hpp"
#include "core/corrector.hpp"
#include "core/remap.hpp"
#include "image/metrics.hpp"
#include "image/synth.hpp"
#include "util/mathx.hpp"

namespace fisheye::accel {
namespace {

using util::deg_to_rad;

struct Env {
  core::FisheyeCamera cam;
  core::PerspectiveView view;
  core::WarpMap map;
  img::Image8 src;

  explicit Env(int w, int h, int ch = 1)
      : cam(core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                          deg_to_rad(180.0), w, h)),
        view(w, h, cam.lens().focal()),
        map(core::build_map(cam, view)),
        src(w, h, ch) {
    const img::Image8 pattern = img::make_rings(w, h, 9);
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < w; ++x)
        for (int c = 0; c < ch; ++c)
          src.at(x, y, c) = static_cast<std::uint8_t>(pattern.at(x, y) + 13 * c);
  }
};

img::Image8 reference(const Env& s) {
  img::Image8 ref(s.map.width, s.map.height, s.src.channels());
  core::remap_rect(s.src.view(), ref.view(), s.map,
                   {0, 0, s.map.width, s.map.height},
                   {core::Interp::Bilinear, img::BorderMode::Constant, 0});
  return ref;
}

TEST(SpePlatform, OutputMatchesScalarReferenceBitExact) {
  const Env s(160, 120);
  SpeConfig config;
  config.num_spes = 4;
  CellLikePlatform platform(s.map, 160, 120, 1, config);
  img::Image8 out(160, 120, 1);
  const AccelFrameStats stats = platform.run_frame(s.src.view(), out.view(), 0);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(reference(s).view(), out.view()));
  EXPECT_GT(stats.fps, 0.0);
  EXPECT_GT(stats.tiles, 1u);
}

TEST(SpePlatform, MultiChannelMatches) {
  const Env s(128, 96, 3);
  SpeConfig config;
  CellLikePlatform platform(s.map, 128, 96, 3, config);
  img::Image8 out(128, 96, 3);
  platform.run_frame(s.src.view(), out.view(), 0);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(reference(s).view(), out.view()));
}

TEST(SpePlatform, TilesCoverOutputExactlyOnce) {
  const Env s(200, 150);
  SpeConfig config;
  config.tile_w = 64;
  config.tile_h = 48;
  CellLikePlatform platform(s.map, 200, 150, 1, config);
  std::vector<int> cover(200 * 150, 0);
  for (const SpeTile& t : platform.tiles())
    for (int y = t.out.y0; y < t.out.y1; ++y)
      for (int x = t.out.x0; x < t.out.x1; ++x) ++cover[y * 200 + x];
  for (int v : cover) ASSERT_EQ(v, 1);
}

TEST(SpePlatform, WorkingSetsRespectLocalStoreBudget) {
  const Env s(320, 240);
  SpeConfig config;
  config.local_store_bytes = 64 * 1024;  // small store forces splits
  config.tile_w = 320;                   // absurdly wide initial tiles
  config.tile_h = 64;
  CellLikePlatform platform(s.map, 320, 240, 1, config);
  std::size_t splits = 0;
  for (const SpeTile& t : platform.tiles()) {
    EXPECT_LE(t.working_set_bytes, config.local_store_bytes - 2048);
    splits += t.split ? 1 : 0;
  }
  EXPECT_GT(splits, 0u);
  EXPECT_LE(platform.peak_working_set(), config.local_store_bytes);
  // Functional result unaffected by splitting.
  img::Image8 out(320, 240, 1);
  platform.run_frame(s.src.view(), out.view(), 0);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(reference(s).view(), out.view()));
}

TEST(SpePlatform, FpsScalesWithSpeCount) {
  const Env s(320, 240);
  double prev_fps = 0.0;
  for (int spes : {1, 2, 4, 8}) {
    SpeConfig config;
    config.num_spes = spes;
    CellLikePlatform platform(s.map, 320, 240, 1, config);
    img::Image8 out(320, 240, 1);
    const AccelFrameStats stats =
        platform.run_frame(s.src.view(), out.view(), 0);
    EXPECT_GT(stats.fps, prev_fps) << spes << " SPEs";
    prev_fps = stats.fps;
  }
}

TEST(SpePlatform, NearLinearScalingToFourSpes) {
  const Env s(320, 240);
  auto fps_for = [&](int spes) {
    SpeConfig config;
    config.num_spes = spes;
    CellLikePlatform platform(s.map, 320, 240, 1, config);
    img::Image8 out(320, 240, 1);
    return platform.run_frame(s.src.view(), out.view(), 0).fps;
  };
  const double s4 = fps_for(4) / fps_for(1);
  EXPECT_GT(s4, 3.0);  // compute-bound region scales nearly linearly
  EXPECT_LE(s4, 4.2);
}

TEST(SpePlatform, DoubleBufferingBeatsSingle) {
  const Env s(320, 240);
  auto fps_for = [&](bool dbuf, double dma_bpc) {
    SpeConfig config;
    config.num_spes = 4;
    config.double_buffering = dbuf;
    config.cost.dma_bytes_per_cycle = dma_bpc;
    CellLikePlatform platform(s.map, 320, 240, 1, config);
    img::Image8 out(320, 240, 1);
    return platform.run_frame(s.src.view(), out.view(), 0).fps;
  };
  // Default model: compute-bound, overlap still helps (strictly faster).
  EXPECT_GT(fps_for(true, 8.0), fps_for(false, 8.0));
  // DMA-starved configuration (1 B/cycle): overlap must buy a big margin
  // because transfers rival compute.
  EXPECT_GT(fps_for(true, 1.0), fps_for(false, 1.0) * 1.15);
}

TEST(SpePlatform, UtilizationIsAFraction) {
  const Env s(160, 120);
  SpeConfig config;
  config.num_spes = 8;
  CellLikePlatform platform(s.map, 160, 120, 1, config);
  img::Image8 out(160, 120, 1);
  const AccelFrameStats stats = platform.run_frame(s.src.view(), out.view(), 0);
  EXPECT_GT(stats.utilization, 0.0);
  EXPECT_LE(stats.utilization, 1.0);
  EXPECT_GT(stats.bytes_in, 0u);
  EXPECT_EQ(stats.bytes_out, 160u * 120u);
}

TEST(SpePlatform, IrreducibleTileThrowsResourceError) {
  // With the minimum 4 KB store (2 KB budget) a 4-channel frame cannot fit
  // even the smallest (64-pixel) tile working set under double buffering:
  // the decomposition must fail loudly rather than mis-tile.
  const Env s(64, 64, 4);
  SpeConfig config;
  config.local_store_bytes = 4096;
  EXPECT_THROW(CellLikePlatform(s.map, 64, 64, 4, config),
               fisheye::ResourceError);
}

TEST(SpePlatform, DimensionMismatchViolatesContract) {
  const Env s(64, 64);
  SpeConfig config;
  CellLikePlatform platform(s.map, 64, 64, 1, config);
  img::Image8 wrong(32, 32, 1);
  img::Image8 out(64, 64, 1);
  EXPECT_THROW(platform.run_frame(wrong.view(), out.view(), 0),
               fisheye::InvalidArgument);
}

}  // namespace
}  // namespace fisheye::accel
