// SoA SIMD kernel vs the scalar reference.
#include <gtest/gtest.h>

#include "core/remap.hpp"
#include "image/metrics.hpp"
#include "image/synth.hpp"
#include "simd/remap_simd.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"

namespace fisheye::simd {
namespace {

using core::WarpMap;
using util::deg_to_rad;

img::Image8 random_image(int w, int h, int ch, std::uint64_t seed) {
  util::Rng rng(seed);
  img::Image8 im(w, h, ch);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w * ch; ++x)
      im.row(y)[x] = static_cast<std::uint8_t>(rng.next_below(256));
  return im;
}

WarpMap random_interior_map(int w, int h, int src_w, int src_h,
                            std::uint64_t seed) {
  util::Rng rng(seed);
  WarpMap map;
  map.width = w;
  map.height = h;
  map.src_x.resize(map.pixel_count());
  map.src_y.resize(map.pixel_count());
  for (std::size_t i = 0; i < map.pixel_count(); ++i) {
    map.src_x[i] = static_cast<float>(rng.uniform(1.0, src_w - 2.0));
    map.src_y[i] = static_cast<float>(rng.uniform(1.0, src_h - 2.0));
  }
  return map;
}

class SimdShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SimdShapes, MatchesScalarOnInteriorMaps) {
  const auto [w, h, ch] = GetParam();
  const img::Image8 src = random_image(w, h, ch, 7);
  const WarpMap map = random_interior_map(w, h, w, h, 11);
  img::Image8 scalar(w, h, ch), vec(w, h, ch);
  core::remap_rect(src.view(), scalar.view(), map, {0, 0, w, h},
                   {core::Interp::Bilinear, img::BorderMode::Constant, 0});
  SoaScratch scratch;
  remap_bilinear_soa(src.view(), vec.view(), map, {0, 0, w, h}, 0, scratch);
  // Same arithmetic, possibly different rounding order: within 1 level.
  EXPECT_LE(img::max_abs_diff(scalar.view(), vec.view()), 1);
  EXPECT_LT(img::fraction_differing(scalar.view(), vec.view(), 0), 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SimdShapes,
    ::testing::Values(std::tuple{64, 48, 1}, std::tuple{257, 31, 1},
                      std::tuple{256, 32, 1},  // exact strip multiple
                      std::tuple{100, 40, 3}, std::tuple{17, 5, 3}));

TEST(Simd, RealCorrectionMapCloseToScalar) {
  const auto cam = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, deg_to_rad(180.0), 320, 240);
  const core::PerspectiveView view(320, 240, cam.lens().focal());
  const WarpMap map = core::build_map(cam, view);
  const img::Image8 src = img::make_scene_rgb(320, 240, 0.0);
  img::Image8 scalar(320, 240, 3), vec(320, 240, 3);
  core::remap_rect(src.view(), scalar.view(), map, {0, 0, 320, 240},
                   {core::Interp::Bilinear, img::BorderMode::Constant, 0});
  SoaScratch scratch;
  remap_bilinear_soa(src.view(), vec.view(), map, {0, 0, 320, 240}, 0,
                     scratch);
  // The SoA kernel fills the 1-px source frame instead of blending; real
  // maps touch it only along the circle edge. Overall agreement is tight.
  EXPECT_LT(img::fraction_differing(scalar.view(), vec.view(), 1), 0.01);
}

TEST(Simd, OutsideMapPixelsGetFill) {
  WarpMap map;
  map.width = 8;
  map.height = 1;
  map.src_x.assign(8, -1e9f);
  map.src_y.assign(8, -1e9f);
  const img::Image8 src = random_image(16, 16, 1, 3);
  img::Image8 dst(8, 1, 1);
  SoaScratch scratch;
  remap_bilinear_soa(src.view(), dst.view(), map, {0, 0, 8, 1}, 42, scratch);
  for (int x = 0; x < 8; ++x) EXPECT_EQ(dst.at(x, 0), 42);
}

TEST(Simd, RespectsRectBounds) {
  const img::Image8 src = random_image(32, 32, 1, 5);
  const WarpMap map = random_interior_map(32, 32, 32, 32, 9);
  img::Image8 dst(32, 32, 1);
  dst.fill(111);
  SoaScratch scratch;
  remap_bilinear_soa(src.view(), dst.view(), map, {8, 8, 24, 24}, 0, scratch);
  EXPECT_EQ(dst.at(0, 0), 111);
  EXPECT_EQ(dst.at(31, 31), 111);
  EXPECT_EQ(dst.at(7, 8), 111);
  // Inside the rect something was written (vanishingly unlikely to be 111
  // everywhere).
  int changed = 0;
  for (int y = 8; y < 24; ++y)
    for (int x = 8; x < 24; ++x) changed += dst.at(x, y) != 111;
  EXPECT_GT(changed, 200);
}

TEST(Simd, ContractViolations) {
  img::Image8 src(8, 8, 1), dst(8, 8, 3);
  WarpMap map = random_interior_map(8, 8, 8, 8, 1);
  SoaScratch scratch;
  EXPECT_THROW(remap_bilinear_soa(src.view(), dst.view(), map, {0, 0, 8, 8},
                                  0, scratch),
               fisheye::InvalidArgument);
}

}  // namespace
}  // namespace fisheye::simd
