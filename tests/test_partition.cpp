// Partitioner properties: exact cover, bounds, balance.
#include <gtest/gtest.h>

#include <vector>

#include "parallel/partition.hpp"
#include "util/error.hpp"

namespace fisheye::par {
namespace {

struct Case {
  PartitionKind kind;
  int width;
  int height;
  int chunks;
  int tile_w;
  int tile_h;
};

class PartitionSweep : public ::testing::TestWithParam<Case> {};

TEST_P(PartitionSweep, CoversEveryPixelExactlyOnce) {
  const Case c = GetParam();
  const auto rects =
      partition(c.width, c.height, c.kind, c.chunks, c.tile_w, c.tile_h);
  std::vector<int> cover(static_cast<std::size_t>(c.width) * c.height, 0);
  for (const Rect& r : rects) {
    ASSERT_FALSE(r.empty());
    ASSERT_GE(r.x0, 0);
    ASSERT_GE(r.y0, 0);
    ASSERT_LE(r.x1, c.width);
    ASSERT_LE(r.y1, c.height);
    for (int y = r.y0; y < r.y1; ++y)
      for (int x = r.x0; x < r.x1; ++x)
        ++cover[static_cast<std::size_t>(y) * c.width + x];
  }
  for (std::size_t i = 0; i < cover.size(); ++i)
    ASSERT_EQ(cover[i], 1) << "pixel " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionSweep,
    ::testing::Values(
        Case{PartitionKind::RowBlocks, 64, 48, 4, 0, 0},
        Case{PartitionKind::RowBlocks, 64, 48, 100, 0, 0},  // chunks > rows
        Case{PartitionKind::RowBlocks, 7, 3, 3, 0, 0},
        Case{PartitionKind::ColumnBlocks, 64, 48, 5, 0, 0},
        Case{PartitionKind::ColumnBlocks, 3, 9, 8, 0, 0},
        Case{PartitionKind::RowCyclic, 32, 17, 1, 0, 0},
        Case{PartitionKind::Tiles, 100, 70, 0, 32, 16},
        Case{PartitionKind::Tiles, 64, 64, 0, 64, 64},  // single tile
        Case{PartitionKind::Tiles, 65, 33, 0, 64, 32},  // ragged edges
        Case{PartitionKind::Tiles, 5, 5, 0, 64, 64}));  // tile > image

TEST(Partition, RowBlocksAreBalanced) {
  const auto rects = partition(100, 103, PartitionKind::RowBlocks, 4);
  ASSERT_EQ(rects.size(), 4u);
  for (const Rect& r : rects) {
    EXPECT_GE(r.height(), 25);
    EXPECT_LE(r.height(), 26);
    EXPECT_EQ(r.width(), 100);
  }
}

TEST(Partition, RowCyclicYieldsSingleRows) {
  const auto rects = partition(10, 7, PartitionKind::RowCyclic, 99);
  ASSERT_EQ(rects.size(), 7u);
  for (std::size_t i = 0; i < rects.size(); ++i) {
    EXPECT_EQ(rects[i].y0, static_cast<int>(i));
    EXPECT_EQ(rects[i].height(), 1);
  }
}

TEST(Partition, TileGridCountsMatch) {
  const auto rects = partition(100, 70, PartitionKind::Tiles, 0, 32, 16);
  // ceil(100/32) * ceil(70/16) = 4 * 5
  EXPECT_EQ(rects.size(), 20u);
}

TEST(Partition, InvalidArgumentsViolateContracts) {
  EXPECT_THROW(partition(0, 10, PartitionKind::RowBlocks, 2),
               fisheye::InvalidArgument);
  EXPECT_THROW(partition(10, 10, PartitionKind::RowBlocks, 0),
               fisheye::InvalidArgument);
  EXPECT_THROW(partition(10, 10, PartitionKind::Tiles, 0, 0, 8),
               fisheye::InvalidArgument);
}

TEST(Rect, Helpers) {
  constexpr Rect r{2, 3, 10, 7};
  static_assert(r.width() == 8);
  static_assert(r.height() == 4);
  static_assert(r.area() == 32);
  static_assert(!r.empty());
  static_assert(Rect{}.empty());
  SUCCEED();
}

TEST(Partition, Names) {
  EXPECT_STREQ(partition_name(PartitionKind::RowBlocks), "row-blocks");
  EXPECT_STREQ(partition_name(PartitionKind::Tiles), "tiles");
}

}  // namespace
}  // namespace fisheye::par
