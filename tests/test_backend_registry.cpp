// BackendRegistry contract tests: spec strings round-trip through name(),
// unknown specs fail with precise error.hpp diagnostics, every registered
// kind reproduces the serial reference output, per-tile plan stats are
// reported uniformly, and a map rebuilt at a recycled address invalidates
// the cached plan (the aliasing bug the plan key's generation field fixes).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "accel/accel_backend.hpp"
#include "core/backend_registry.hpp"
#include "core/corrector.hpp"
#include "image/metrics.hpp"
#include "util/error.hpp"
#include "video/pipeline.hpp"

namespace fisheye {
namespace {

using core::BackendRegistry;
using core::Corrector;

img::Image8 fisheye_input(int w, int h, int ch = 1) {
  const auto cam = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, util::deg_to_rad(180.0), w, h);
  return video::SyntheticVideoSource(cam, w, h, ch).frame(0);
}

// --- registry surface -------------------------------------------------------

TEST(BackendRegistry, CoreAndAcceleratorKindsAreRegistered) {
  BackendRegistry& reg = BackendRegistry::instance();
  for (const char* kind :
       {"serial", "pool", "simd", "cell", "gpu", "fpga", "cluster"})
    EXPECT_TRUE(reg.has(kind)) << kind;
  const auto kinds = reg.kinds();
  EXPECT_TRUE(std::is_sorted(kinds.begin(), kinds.end()));
  for (const auto& [kind, summary] : reg.help())
    EXPECT_FALSE(summary.empty()) << kind;
}

TEST(BackendRegistry, SpecStringsRoundTripThroughName) {
  // name() must be a fixed point: create(create(spec)->name())->name()
  // reproduces the canonical spec exactly.
  const char* specs[] = {
      "serial",
      "pool:static,rows,threads=2",
      "pool:dynamic,rows=8,threads=2",
      "pool:guided,tiles,tile=96x32,threads=3",
      "pool:dynamic,cyclic,threads=2",
      "pool:steal,tiles,tile=96x32,threads=3",
      "simd:threads=1",
      "simd:threads=2",
      "cell",
      "cell:spes=4,sbuf,tile=64x32,schedule=lpt",
      "cell:schedule=steal",
      "gpu",
      "gpu:sms=16,tex=8x8x16x2,block=32",
      "fpga",
      "fpga:clock=100,cache=16x8x32x2",
      "cluster",
      "cluster:ranks=8,net=ib,bcast",
      // Map-format requests ride in the spec and so survive the round trip.
      "serial:map=packed",
      "pool:threads=2,map=compact:8",
      "simd:map=compact:4",
      "cell:spes=4,map=compact:16",
      "fpga:map=compact:16",
      "fpga:ddr=6,map=compact:8",
  };
  for (const char* spec : specs) {
    const auto backend = BackendRegistry::create(spec);
    const std::string canonical = backend->name();
    EXPECT_EQ(BackendRegistry::create(canonical)->name(), canonical) << spec;
  }
}

TEST(BackendRegistry, UnknownKindListsRegisteredKinds) {
  try {
    BackendRegistry::create("warp9");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown backend kind 'warp9'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("serial"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cell"), std::string::npos) << msg;
  }
}

TEST(BackendRegistry, UnknownOptionNamesTheOptionAndValidOnes) {
  try {
    BackendRegistry::create("pool:bogus=3");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown option 'bogus'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("threads=N"), std::string::npos) << msg;
  }
}

TEST(BackendRegistry, MalformedSpecsAreRejected) {
  EXPECT_THROW(BackendRegistry::create(""), InvalidArgument);
  EXPECT_THROW(BackendRegistry::create(":threads=2"), InvalidArgument);
  EXPECT_THROW(BackendRegistry::create("pool:,"), InvalidArgument);
  EXPECT_THROW(BackendRegistry::create("pool:threads=abc"), InvalidArgument);
  EXPECT_THROW(BackendRegistry::create("pool:tile=64"), InvalidArgument);
  EXPECT_THROW(BackendRegistry::create("cell:schedule=fastest"),
               InvalidArgument);
  EXPECT_THROW(BackendRegistry::create("cluster:net=token-ring"),
               InvalidArgument);
}

TEST(BackendRegistry, UnknownScheduleTokenIsNamedInTheError) {
  for (const char* spec : {"pool:schedule=fair", "cell:schedule=fair"}) {
    try {
      BackendRegistry::create(spec);
      FAIL() << "expected InvalidArgument for " << spec;
    } catch (const InvalidArgument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("fair"), std::string::npos) << spec << ": " << msg;
      EXPECT_NE(msg.find("steal"), std::string::npos)
          << spec << " must list the valid tokens: " << msg;
    }
  }
}

TEST(BackendRegistry, MapSpecErrorsNameTheOffendingToken) {
  // Unknown map formats must say which token was wrong, not just "bad spec".
  try {
    BackendRegistry::create("pool:map=banana");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("banana"), std::string::npos)
        << e.what();
  }
  // Bad strides: zero, non-power-of-two, out of range, not a number.
  EXPECT_THROW(BackendRegistry::create("pool:map=compact:0"),
               InvalidArgument);
  EXPECT_THROW(BackendRegistry::create("pool:map=compact:3"),
               InvalidArgument);
  EXPECT_THROW(BackendRegistry::create("pool:map=compact:128"),
               InvalidArgument);
  EXPECT_THROW(BackendRegistry::create("pool:map=compact:x"),
               InvalidArgument);
  // The GPU backend models a texture-fetch datapath with no reconstruction
  // stage: map= is not among its options and must be rejected as unknown.
  EXPECT_THROW(BackendRegistry::create("gpu:map=compact:8"),
               InvalidArgument);
}

TEST(BackendRegistry, CompactMapSpecsReproduceTheReference) {
  const int w = 160, h = 120;
  const img::Image8 src = fisheye_input(w, h);
  const Corrector fcorr = Corrector::builder(w, h).build();

  // stride 1 reconstructs exactly: every backend consuming map=compact:1
  // must match the packed datapath bit for bit.
  img::Image8 ref(w, h, 1);
  const auto pref = BackendRegistry::create("serial:map=packed");
  fcorr.correct(src.view(), ref.view(), *pref);
  for (const char* spec :
       {"serial:map=compact:1", "pool:threads=2,map=compact:1",
        "simd:threads=1,map=compact:1", "cell:map=compact:1",
        "fpga:map=compact:1"}) {
    const auto backend = BackendRegistry::create(spec);
    img::Image8 out(w, h, 1);
    fcorr.correct(src.view(), out.view(), *backend);
    EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()))
        << spec;
  }
  // At stride 8 all consumers run the same integer reconstruction, so they
  // agree with each other exactly even though they differ from the packed
  // reference by the (bounded) reconstruction error.
  img::Image8 c8(w, h, 1);
  const auto s8 = BackendRegistry::create("serial:map=compact:8");
  fcorr.correct(src.view(), c8.view(), *s8);
  EXPECT_GT(img::psnr(ref.view(), c8.view()), 30.0);
  for (const char* spec : {"pool:threads=2,map=compact:8",
                           "simd:threads=2,map=compact:8",
                           "cell:map=compact:8", "fpga:map=compact:8"}) {
    const auto backend = BackendRegistry::create(spec);
    img::Image8 out(w, h, 1);
    fcorr.correct(src.view(), out.view(), *backend);
    EXPECT_TRUE(img::equal_pixels<std::uint8_t>(c8.view(), out.view()))
        << spec;
  }
}

// --- output equivalence -----------------------------------------------------

TEST(BackendRegistry, AllKindsReproduceTheSerialReference) {
  const int w = 160, h = 120;
  const img::Image8 src = fisheye_input(w, h);
  const Corrector fcorr = Corrector::builder(w, h).build();
  const Corrector pcorr =
      Corrector::builder(w, h).map_mode(core::MapMode::PackedLut).build();

  img::Image8 ref(w, h, 1);
  const auto serial = BackendRegistry::create("serial");
  fcorr.correct(src.view(), ref.view(), *serial);

  // Scalar float-LUT kinds: bit-exact against serial.
  for (const char* spec : {"pool:dynamic,tiles,tile=48x24,threads=3",
                           "pool:steal,tiles,tile=48x24,threads=3", "cell",
                           "cell:schedule=steal", "cluster:ranks=3"}) {
    const auto backend = BackendRegistry::create(spec);
    img::Image8 out(w, h, 1);
    fcorr.correct(src.view(), out.view(), *backend);
    EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()))
        << spec;
  }
  // SIMD and GPU kernels round differently: within one gray level.
  for (const char* spec : {"simd:threads=2", "gpu"}) {
    const auto backend = BackendRegistry::create(spec);
    img::Image8 out(w, h, 1);
    fcorr.correct(src.view(), out.view(), *backend);
    EXPECT_LE(img::max_abs_diff(ref.view(), out.view()), 1) << spec;
  }
  // FPGA consumes the packed LUT: bit-exact against serial on the same
  // packed corrector.
  img::Image8 pref(w, h, 1), pout(w, h, 1);
  pcorr.correct(src.view(), pref.view(), *serial);
  const auto fpga = BackendRegistry::create("fpga");
  pcorr.correct(src.view(), pout.view(), *fpga);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(pref.view(), pout.view()));
}

// --- uniform per-tile instrumentation ---------------------------------------

TEST(BackendRegistry, AllKindsReportPerTilePlanStats) {
  const int w = 160, h = 120;
  const img::Image8 src = fisheye_input(w, h);
  const Corrector fcorr = Corrector::builder(w, h).build();
  const Corrector pcorr =
      Corrector::builder(w, h).map_mode(core::MapMode::PackedLut).build();

  const std::vector<std::pair<std::string, const Corrector*>> cases = {
      {"serial", &fcorr},       {"pool:dynamic,rows,threads=2", &fcorr},
      {"simd:threads=2", &fcorr}, {"cell", &fcorr},
      {"gpu", &fcorr},          {"fpga", &pcorr},
      {"cluster:ranks=2", &fcorr},
  };
  for (const auto& [spec, corr] : cases) {
    const auto backend = BackendRegistry::create(spec);
    const Corrector::Prepared prepared = corr->prepare(*backend);
    img::Image8 out(w, h, 1);
    corr->correct(prepared, src.view(), out.view());
    const rt::TileStats stats = prepared.plan.tile_stats();
    EXPECT_GE(stats.tiles, 1) << spec;
    EXPECT_EQ(stats.tiles,
              static_cast<int>(prepared.plan.tiles().size())) << spec;
    EXPECT_GT(stats.mean_seconds, 0.0) << spec;
    // Relative slack of a few ulps: backends that split the frame time
    // evenly over tiles give min == mean == max up to rounding.
    EXPECT_LE(stats.min_seconds, stats.mean_seconds * (1.0 + 1e-9)) << spec;
    EXPECT_LE(stats.mean_seconds, stats.max_seconds * (1.0 + 1e-9)) << spec;
    EXPECT_GE(stats.imbalance, 1.0 - 1e-9) << spec;
    EXPECT_GT(stats.bytes_in, 0u) << spec;
    EXPECT_GT(stats.bytes_out, 0u) << spec;
  }
}

// --- plan reuse and invalidation --------------------------------------------

TEST(BackendRegistry, PreparedPlanIsReusedAcrossFrames) {
  const int w = 160, h = 120;
  const img::Image8 src = fisheye_input(w, h);
  const Corrector corr = Corrector::builder(w, h).build();
  const auto backend = BackendRegistry::create("pool:threads=2");
  const Corrector::Prepared prepared = corr.prepare(*backend);
  const std::vector<par::Rect>* tiles_before = &prepared.plan.tiles();
  img::Image8 out(w, h, 1);
  for (int i = 0; i < 3; ++i)
    corr.correct(prepared, src.view(), out.view());
  // Same plan object, same tiles: no per-frame re-partitioning happened.
  EXPECT_EQ(tiles_before, &prepared.plan.tiles());
  img::Image8 ref(w, h, 1);
  const auto serial = BackendRegistry::create("serial");
  corr.correct(src.view(), ref.view(), *serial);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()));
}

TEST(BackendRegistry, StealPlanIsRecycledAcrossFramesAndStaysCorrect) {
  // schedule=steal regression: the plan carries the Morton order and the
  // initial deque runs as plan state, and execute() mutates the persistent
  // per-worker deques — so a recycled plan must refill them every frame
  // and keep producing the reference output with consistent counters.
  const int w = 160, h = 120;
  const img::Image8 src = fisheye_input(w, h);
  const Corrector corr = Corrector::builder(w, h).build();
  const auto backend =
      BackendRegistry::create("pool:steal,tiles,tile=32x32,threads=3");
  const Corrector::Prepared prepared = corr.prepare(*backend);
  const std::vector<par::Rect>* tiles_before = &prepared.plan.tiles();

  img::Image8 ref(w, h, 1);
  const auto serial = BackendRegistry::create("serial");
  corr.correct(src.view(), ref.view(), *serial);

  img::Image8 out(w, h, 1);
  for (int frame = 0; frame < 4; ++frame) {
    corr.correct(prepared, src.view(), out.view());
    EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()))
        << "frame " << frame;
    const rt::TileStats stats = prepared.plan.tile_stats();
    // Every tile ran exactly once, from a run or after a steal.
    EXPECT_EQ(stats.local_tiles + stats.stolen_tiles,
              static_cast<std::size_t>(stats.tiles)) << "frame " << frame;
    EXPECT_LE(stats.steals, stats.stolen_tiles) << "frame " << frame;
  }
  // Same plan object, same (Morton-ordered) tiles: no re-planning.
  EXPECT_EQ(tiles_before, &prepared.plan.tiles());

  // Plan identity: the schedule is part of the canonical name, so a steal
  // plan never aliases a static one for the same geometry.
  EXPECT_NE(backend->name().find("steal"), std::string::npos);
  EXPECT_EQ(BackendRegistry::create(backend->name())->name(),
            backend->name());
}

TEST(BackendRegistry, MapRebuiltAtRecycledAddressReplans) {
  // The aliasing regression the plan key's generation field guards against:
  // a map rebuilt at the SAME address (here: assigned into the same WarpMap
  // object) with the same dimensions must invalidate the cached plan. With
  // address-only identity the accelerator would keep serving the stale
  // platform reorganization built from the old map.
  const int w = 160, h = 120;
  const img::Image8 src = fisheye_input(w, h);

  const auto cam_a = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, util::deg_to_rad(180.0), w, h);
  const auto cam_b = core::FisheyeCamera::centered(
      core::LensKind::Equisolid, util::deg_to_rad(150.0), w, h);
  const core::PerspectiveView view(w, h, cam_a.lens().focal());

  core::WarpMap map = core::build_map(cam_a, view);  // address stays fixed
  const std::uint64_t gen_a = map.generation;

  core::ExecContext ctx;
  ctx.src = src.view();
  ctx.map = &map;
  ctx.mode = core::MapMode::FloatLut;

  const auto backend = BackendRegistry::create("cell");
  img::Image8 out_a(w, h, 1);
  ctx.dst = out_a.view();
  backend->execute(ctx);  // caches a plan keyed on (&map, generation)

  map = core::build_map(cam_b, view);  // same object => same address
  EXPECT_NE(map.generation, gen_a);

  img::Image8 out_b(w, h, 1);
  ctx.dst = out_b.view();
  backend->execute(ctx);  // must replan, not reuse the stale platform

  // Ground truth: a fresh backend that can only have seen the new map.
  img::Image8 fresh(w, h, 1);
  ctx.dst = fresh.view();
  BackendRegistry::create("cell")->execute(ctx);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(fresh.view(), out_b.view()));
  // And the two maps genuinely disagree, so a stale plan would be visible.
  EXPECT_GT(img::max_abs_diff(out_a.view(), out_b.view()), 0);
}

TEST(BackendRegistry, CameraRebuiltAtRecycledAddressReplans) {
  // The on-the-fly twin of the recycled-map regression above: in OnTheFly
  // mode the plan key carries the camera/view construction generations, so
  // a recalibrated camera assigned into the SAME FisheyeCamera object (same
  // address, same geometry) must invalidate the cached plan.
  const int w = 96, h = 72;
  const img::Image8 src = fisheye_input(w, h);

  auto cam = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, util::deg_to_rad(180.0), w, h);
  const core::PerspectiveView view(w, h, cam.lens().focal());
  const std::uint64_t gen_a = cam.generation();

  core::ExecContext ctx;
  ctx.src = src.view();
  ctx.camera = &cam;
  ctx.view = &view;
  ctx.mode = core::MapMode::OnTheFly;

  const auto backend = BackendRegistry::create("serial");
  img::Image8 out_a(w, h, 1);
  ctx.dst = out_a.view();
  backend->execute(ctx);  // caches a plan keyed on the camera generation

  cam = core::FisheyeCamera::centered(
      core::LensKind::KannalaBrandt, util::deg_to_rad(170.0), w, h);
  EXPECT_NE(cam.generation(), gen_a);

  img::Image8 out_b(w, h, 1);
  ctx.dst = out_b.view();
  backend->execute(ctx);  // must replan against the new calibration

  img::Image8 fresh(w, h, 1);
  ctx.dst = fresh.view();
  BackendRegistry::create("serial")->execute(ctx);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(fresh.view(), out_b.view()));
  EXPECT_GT(img::max_abs_diff(out_a.view(), out_b.view()), 0);

  // Copies keep the stamp: a copied camera is the same calibration, so
  // plans built against the original stay valid for the copy.
  const core::FisheyeCamera copy = cam;
  EXPECT_EQ(copy.generation(), cam.generation());
}

TEST(BackendRegistry, CopiedMapKeepsItsGeneration) {
  const auto cam = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, util::deg_to_rad(180.0), 64, 48);
  const core::PerspectiveView view(64, 48, cam.lens().focal());
  const core::WarpMap map = core::build_map(cam, view);
  const core::WarpMap copy = map;  // same logical map: plans stay valid
  EXPECT_EQ(copy.generation, map.generation);
  core::WarpMap rebuilt = map;
  rebuilt = core::build_map(cam, view);  // rebuilt content: new identity
  EXPECT_NE(rebuilt.generation, map.generation);
}

}  // namespace
}  // namespace fisheye
