// parallel_for scheduling-policy semantics: exactly-once coverage for every
// schedule, contiguity of chunks, exception propagation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "util/error.hpp"

namespace fisheye::par {
namespace {

struct Case {
  Schedule schedule;
  std::size_t n;
  std::size_t chunk;
};

class ParallelForSweep : public ::testing::TestWithParam<Case> {};

TEST_P(ParallelForSweep, CoversEveryIndexExactlyOnce) {
  const Case c = GetParam();
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(c.n);
  parallel_for(
      pool, c.n,
      [&hits](std::size_t b, std::size_t e) {
        ASSERT_LE(b, e);
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      },
      {c.schedule, c.chunk});
  for (std::size_t i = 0; i < c.n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ParallelForSweep,
    ::testing::Values(Case{Schedule::Static, 1, 1},
                      Case{Schedule::Static, 100, 1},
                      Case{Schedule::Static, 1001, 1},
                      Case{Schedule::Dynamic, 1, 1},
                      Case{Schedule::Dynamic, 100, 7},
                      Case{Schedule::Dynamic, 1001, 64},
                      Case{Schedule::Guided, 1, 1},
                      Case{Schedule::Guided, 100, 4},
                      Case{Schedule::Guided, 1001, 8},
                      Case{Schedule::Guided, 4096, 1},
                      Case{Schedule::Steal, 1, 1},
                      Case{Schedule::Steal, 100, 7},
                      Case{Schedule::Steal, 1001, 64},
                      Case{Schedule::Steal, 4096, 1}));

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t, std::size_t) {
    FAIL() << "body must not run for n == 0";
  });
}

TEST(ParallelFor, StaticChunksAreContiguousAndOrderedPerLane) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  parallel_for(pool, 103, [&](std::size_t b, std::size_t e) {
    const std::scoped_lock lock(mu);
    ranges.emplace_back(b, e);
  });
  // Static: at most one range per lane, ranges tile [0, 103).
  EXPECT_LE(ranges.size(), 4u);
  std::sort(ranges.begin(), ranges.end());
  std::size_t expect = 0;
  for (const auto& [b, e] : ranges) {
    EXPECT_EQ(b, expect);
    expect = e;
  }
  EXPECT_EQ(expect, 103u);
}

TEST(ParallelFor, DynamicRespectsChunkSize) {
  ThreadPool pool(2);
  std::mutex mu;
  std::vector<std::size_t> sizes;
  parallel_for(
      pool, 100,
      [&](std::size_t b, std::size_t e) {
        const std::scoped_lock lock(mu);
        sizes.push_back(e - b);
      },
      {Schedule::Dynamic, 16});
  for (std::size_t s : sizes) EXPECT_LE(s, 16u);
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}), 100u);
}

TEST(ParallelFor, GuidedChunksShrink) {
  ThreadPool pool(2);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  parallel_for(
      pool, 10000,
      [&](std::size_t b, std::size_t e) {
        const std::scoped_lock lock(mu);
        ranges.emplace_back(b, e);
      },
      {Schedule::Guided, 8});
  std::sort(ranges.begin(), ranges.end());
  // First claimed chunk is remaining/(2*lanes) = 2500-ish; the final chunks
  // bottom out at the minimum.
  EXPECT_GE(ranges.front().second - ranges.front().first, 1000u);
  EXPECT_LE(ranges.back().second - ranges.back().first, 8u);
}

TEST(ParallelFor, ExceptionIsRethrownOnCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 100,
                   [](std::size_t b, std::size_t) {
                     if (b >= 25) throw fisheye::IoError("lane failure");
                   }),
      fisheye::IoError);
  // Pool must still be usable afterwards.
  std::atomic<int> ok{0};
  parallel_for_each(pool, 10, [&ok](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ParallelFor, FirstExceptionWins) {
  ThreadPool pool(4);
  try {
    parallel_for_each(
        pool, 100,
        [](std::size_t i) {
          if (i % 2 == 0) throw fisheye::IoError("even");
          throw fisheye::ResourceError("odd");
        },
        {Schedule::Dynamic, 1});
    FAIL() << "must throw";
  } catch (const fisheye::Error& e) {
    // Exactly one of the two exception types, intact message.
    const std::string msg = e.what();
    EXPECT_TRUE(msg == "even" || msg == "odd") << msg;
  }
}

TEST(ParallelFor, ZeroChunkViolatesContract) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(
                   pool, 10, [](std::size_t, std::size_t) {},
                   {Schedule::Dynamic, 0}),
               fisheye::InvalidArgument);
}

TEST(ParallelForEach, SumsCorrectly) {
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  parallel_for_each(
      pool, 1000, [&sum](std::size_t i) { sum.fetch_add(static_cast<long long>(i)); },
      {Schedule::Guided, 4});
  EXPECT_EQ(sum.load(), 999LL * 1000 / 2);
}

}  // namespace
}  // namespace fisheye::par
