// Robustness: the file decoders must never crash, loop, or allocate
// absurdly on malformed input — every outcome is either a valid image or
// an IoError. Deterministic "fuzzing": random byte soup, truncated valid
// files, and random single-byte mutations of valid files.
#include <gtest/gtest.h>

#include <string>

#include "core/map_io.hpp"
#include "core/mapping.hpp"
#include "core/projection.hpp"
#include "image/io_bmp.hpp"
#include "image/io_pnm.hpp"
#include "image/synth.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"

namespace fisheye::img {
namespace {

template <class DecodeFn>
void expect_no_crash(DecodeFn&& decode, const std::string& bytes) {
  try {
    const Image8 im = decode(bytes);
    // If it decoded, the result must be sane.
    EXPECT_GT(im.width(), 0);
    EXPECT_GT(im.height(), 0);
    EXPECT_LE(static_cast<long long>(im.width()) * im.height(),
              1LL << 28);
  } catch (const IoError&) {
    // expected for garbage
  } catch (const InvalidArgument&) {
    // contract rejection is acceptable too
  }
}

TEST(FuzzPnm, RandomByteSoup) {
  util::Rng rng(101);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t len = rng.next_below(512);
    std::string bytes(len, '\0');
    for (char& c : bytes) c = static_cast<char>(rng.next_below(256));
    expect_no_crash([](const std::string& b) { return decode_pnm(b); },
                    bytes);
  }
}

TEST(FuzzPnm, SoupWithValidMagic) {
  util::Rng rng(102);
  const char* magics[] = {"P5\n", "P6\n", "P2\n", "P3\n"};
  for (int trial = 0; trial < 300; ++trial) {
    std::string bytes = magics[trial % 4];
    const std::size_t len = rng.next_below(256);
    for (std::size_t i = 0; i < len; ++i)
      bytes += static_cast<char>(rng.next_below(256));
    expect_no_crash([](const std::string& b) { return decode_pnm(b); },
                    bytes);
  }
}

TEST(FuzzPnm, TruncationsOfValidFile) {
  const Image8 im = make_gradient(31, 17);
  const std::string valid = encode_pnm(im.view());
  for (std::size_t cut = 0; cut < valid.size(); cut += 7)
    expect_no_crash([](const std::string& b) { return decode_pnm(b); },
                    valid.substr(0, cut));
}

TEST(FuzzPnm, SingleByteMutationsOfValidFile) {
  const Image8 im = make_checkerboard(16, 16, 4);
  const std::string valid = encode_pnm(im.view());
  util::Rng rng(103);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = valid;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] = static_cast<char>(rng.next_below(256));
    expect_no_crash([](const std::string& b) { return decode_pnm(b); },
                    mutated);
  }
}

TEST(FuzzBmp, RandomByteSoup) {
  util::Rng rng(201);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t len = rng.next_below(512);
    std::string bytes(len, '\0');
    for (char& c : bytes) c = static_cast<char>(rng.next_below(256));
    expect_no_crash([](const std::string& b) { return decode_bmp(b); },
                    bytes);
  }
}

TEST(FuzzBmp, SoupWithValidMagic) {
  util::Rng rng(202);
  for (int trial = 0; trial < 300; ++trial) {
    std::string bytes = "BM";
    const std::size_t len = 52 + rng.next_below(256);
    for (std::size_t i = 0; i < len; ++i)
      bytes += static_cast<char>(rng.next_below(256));
    expect_no_crash([](const std::string& b) { return decode_bmp(b); },
                    bytes);
  }
}

TEST(FuzzBmp, TruncationsOfValidFile) {
  Image8 im(13, 9, 3);
  im.fill(42);
  const std::string valid = encode_bmp(im.view());
  for (std::size_t cut = 0; cut < valid.size(); cut += 5)
    expect_no_crash([](const std::string& b) { return decode_bmp(b); },
                    valid.substr(0, cut));
}

TEST(FuzzBmp, SingleByteMutationsOfValidFile) {
  Image8 im(12, 8, 3);
  const std::string valid = encode_bmp(im.view());
  util::Rng rng(203);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = valid;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] = static_cast<char>(rng.next_below(256));
    expect_no_crash([](const std::string& b) { return decode_bmp(b); },
                    mutated);
  }
}

// Map decoders get the same treatment: every outcome on malformed input is
// a decoded map or an IoError -- never a crash, hang, or giant allocation.
void expect_map_no_crash(const std::string& bytes) {
  try {
    const core::CompactMap m = core::decode_compact_map(bytes);
    EXPECT_GT(m.width, 0);
    EXPECT_GT(m.height, 0);
    EXPECT_EQ(m.gx.size(),
              static_cast<std::size_t>(m.grid_w) * m.grid_h);
  } catch (const IoError&) {
    // expected for garbage
  }
}

std::string valid_compact_bytes() {
  const auto cam = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, util::deg_to_rad(180.0), 24, 18);
  const core::PerspectiveView view(24, 18, cam.lens().focal());
  return core::encode_map(
      core::compact_map(core::build_map(cam, view), 24, 18, 4));
}

TEST(FuzzCompactMap, RandomByteSoup) {
  util::Rng rng(301);
  for (int trial = 0; trial < 300; ++trial) {
    std::string bytes(rng.next_below(512), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.next_below(256));
    expect_map_no_crash(bytes);
  }
}

TEST(FuzzCompactMap, SoupWithValidMagicAndKind) {
  util::Rng rng(302);
  for (int trial = 0; trial < 300; ++trial) {
    std::string bytes = "FEMAP1\n";
    bytes += '\x02';  // compact kind tag
    const std::size_t len = rng.next_below(256);
    for (std::size_t i = 0; i < len; ++i)
      bytes += static_cast<char>(rng.next_below(256));
    expect_map_no_crash(bytes);
  }
}

TEST(FuzzCompactMap, TruncationsOfValidFile) {
  const std::string valid = valid_compact_bytes();
  for (std::size_t cut = 0; cut < valid.size(); cut += 3)
    expect_map_no_crash(valid.substr(0, cut));
}

TEST(FuzzCompactMap, SingleByteMutationsOfValidFile) {
  const std::string valid = valid_compact_bytes();
  util::Rng rng(303);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = valid;
    mutated[rng.next_below(mutated.size())] =
        static_cast<char>(rng.next_below(256));
    expect_map_no_crash(mutated);
  }
}

TEST(FuzzCompactMap, HeaderDimensionBombsRejected) {
  // A header claiming absurd dimensions must be rejected by the size checks
  // before any allocation sized from it.
  std::string bytes = "FEMAP1\n";
  bytes += '\x02';
  auto put_i32 = [&bytes](std::int32_t v) {
    bytes.append(reinterpret_cast<const char*>(&v), 4);
  };
  put_i32(1999999999);  // width
  put_i32(1999999999);  // height
  put_i32(8);           // stride
  put_i32(14);          // frac_bits
  put_i32(1999999999);  // src_width
  put_i32(1999999999);  // src_height
  bytes.append(8, '\0');  // error fields
  expect_map_no_crash(bytes);
}

TEST(FuzzPnm, HeaderDimensionBombsRejected) {
  // Absurd dimensions must be rejected before any giant allocation.
  expect_no_crash([](const std::string& b) { return decode_pnm(b); },
                  "P5\n999999999 999999999\n255\n");
  expect_no_crash([](const std::string& b) { return decode_pnm(b); },
                  "P5\n2147483647 1\n255\nxx");
}

}  // namespace
}  // namespace fisheye::img
