// Robustness: no backend spec string, however malformed, may crash the
// process or trip an internal contract. Every BackendSpec::parse or
// BackendRegistry::create outcome is either a constructed backend or an
// InvalidArgument naming the problem. Deterministic "fuzzing": random byte
// soup, structured token soup assembled from the real option vocabulary,
// and targeted out-of-range values for every numeric option.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/backend_registry.hpp"
#include "core/model_spec.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fisheye::core {
namespace {

/// Parse must either succeed or throw InvalidArgument; anything else
/// (another exception type, a contract abort) fails the test.
void expect_parse_no_crash(const std::string& spec) {
  try {
    (void)BackendSpec::parse(spec);
  } catch (const InvalidArgument&) {
    // expected for garbage
  }
}

/// Same guarantee one level up: registry create either builds a working
/// backend (whose name() must itself round-trip through parse) or throws
/// InvalidArgument.
void expect_create_no_crash(const std::string& spec) {
  try {
    const std::unique_ptr<Backend> b = BackendRegistry::create(spec);
    ASSERT_NE(b, nullptr) << spec;
    EXPECT_FALSE(b->name().empty()) << spec;
  } catch (const InvalidArgument&) {
    // expected for out-of-range or unknown options
  }
}

TEST(FuzzBackendSpec, ParseRandomByteSoup) {
  util::Rng rng(401);
  for (int trial = 0; trial < 500; ++trial) {
    std::string spec(rng.next_below(64), '\0');
    for (char& c : spec) c = static_cast<char>(rng.next_below(256));
    expect_parse_no_crash(spec);
  }
}

TEST(FuzzBackendSpec, ParsePunctuationSoup) {
  // The separators themselves, in every broken arrangement.
  util::Rng rng(402);
  const char alphabet[] = {':', ',', '=', 'x', 'a', '1', '-', '.', ' '};
  for (int trial = 0; trial < 500; ++trial) {
    std::string spec(rng.next_below(24), '\0');
    for (char& c : spec)
      c = alphabet[rng.next_below(sizeof(alphabet))];
    expect_parse_no_crash(spec);
  }
}

// Token soup: random but plausible specs assembled from the real kind and
// option vocabulary, so the corpus exercises every factory's validation
// paths rather than dying at the parser.
TEST(FuzzBackendSpec, CreateTokenSoupNeverCrashes) {
  const std::vector<std::string> kinds = {
      "serial", "pool", "simd",  "openmp", "cell",
      "gpu",    "fpga", "cluster", "shard", "bogus", ""};
  const std::vector<std::string> keys = {
      "threads", "rows",  "cols", "chunks", "tile", "spes", "ls",
      "sms",     "clock", "tex",  "cache",  "block", "bram", "ddr",
      "ranks",   "net",   "speed", "map",   "schedule", "cpp", "junk",
      "datapath", "tuned", "workers", "ring", "timeout_ms", "heartbeat_ms"};
  const std::vector<std::string> values = {
      "-1",       "0",     "1",       "2",     "3",        "4",
      "7",        "8",     "64",      "100000", "99999999999999",
      "3.5",      "-2.5",  "zzz",     "",      "16x16",    "0x0",
      "32x8x8x1", "3x8x8x1", "8x8x8x0", "float", "packed",
      "compact:4", "compact:3", "compact:zz", "steal", "dynamic",
      "rr",       "gige",  "ib",   "scalar", "soa",   "gather", "auto",
      "gather/128/-/-", "-/-/128x64/-", "soa/64/32x32/compact:8",
      "auto/9",   "a/b",   "gather/0/-/-", "////"};
  const std::vector<std::string> flags = {"dbuf", "sbuf", "scatter",
                                          "bcast", "tiles", "junkflag"};
  util::Rng rng(403);
  for (int trial = 0; trial < 400; ++trial) {
    std::string spec = kinds[rng.next_below(kinds.size())];
    const std::size_t nopts = rng.next_below(4);
    for (std::size_t i = 0; i < nopts; ++i) {
      spec += i == 0 ? ':' : ',';
      if (rng.next_below(4) == 0) {
        spec += flags[rng.next_below(flags.size())];
      } else {
        spec += keys[rng.next_below(keys.size())];
        spec += '=';
        spec += values[rng.next_below(values.size())];
      }
    }
    expect_create_no_crash(spec);
  }
}

// Every numeric option has a factory-level range guard, so hostile values
// surface as InvalidArgument instead of reaching a contract check (or an
// allocation sized from the value) deeper in the stack.
TEST(FuzzBackendSpec, OutOfRangeValuesThrowInvalidArgument) {
  const char* bad[] = {
      "pool:threads=-2",    "pool:threads=100000", "pool:rows=-1",
      "pool:tile=0x0",      "pool:tile=100000x100000",
      "simd:threads=-2",    "simd:threads=100000",
      "cell:spes=0",        "cell:spes=100000",    "cell:tile=1x1",
      "cell:ls=16",         "cell:cpp=0",          "cell:cpp=-1",
      "gpu:sms=0",          "gpu:sms=100000",      "gpu:block=2",
      "gpu:block=64",       "gpu:tex=3x8x8x1",     "gpu:tex=8x8x8x0",
      "fpga:cache=5x8x8x1", "fpga:cache=8x8x8x100", "fpga:bram=-5",
      "fpga:ddr=-1",        "cluster:ranks=0",     "cluster:ranks=100000",
      "cluster:speed=0",    "cluster:speed=-2",
      "shard:0",            "shard:-1",            "shard:65",
      "shard:workers=0",    "shard:workers=100000", "shard:ring=0",
      "shard:ring=17",      "shard:timeout_ms=0",  "shard:heartbeat_ms=0",
      "shard:heartbeat_ms=99999999", "shard:4,8",  "shard:workers=zzz",
      "simd:datapath=avx9", "simd:datapath=",      "pool:datapath=soa",
      "simd:tuned=zzz",     "simd:tuned=auto/9",   "simd:tuned=gather/0/-/-",
      "simd:tuned=a/b",     "pool:tuned=-/-/0x0/-",
      "simd:tuned=-/-/-/martian",
  };
  for (const char* spec : bad)
    EXPECT_THROW((void)BackendRegistry::create(spec), InvalidArgument)
        << spec;
}

TEST(FuzzBackendSpec, UnknownOptionsNameTheToken) {
  // Satellite guarantee: a typo'd option is rejected with the offending
  // token in the message, for every registered kind.
  for (const std::string& kind : BackendRegistry::instance().kinds()) {
    try {
      (void)BackendRegistry::create(kind + ":bogus_option=1");
      FAIL() << kind << " accepted an unknown option";
    } catch (const InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find("bogus_option"),
                std::string::npos)
          << kind << ": " << e.what();
    }
  }
}

// Serve specs ride the same convention and get the same guarantee: parse
// either yields options (whose canonical spec() round-trips) or throws
// InvalidArgument — never a crash, never a contract abort.
void expect_serve_parse_no_crash(const std::string& spec) {
  try {
    const serve::ServeOptions o = serve::ServeOptions::parse(spec);
    EXPECT_EQ(serve::ServeOptions::parse(o.spec()).spec(), o.spec()) << spec;
  } catch (const InvalidArgument&) {
    // expected for garbage
  }
}

TEST(FuzzBackendSpec, ServeRandomByteSoupNeverCrashes) {
  util::Rng rng(404);
  for (int trial = 0; trial < 500; ++trial) {
    std::string spec = "serve";
    const std::size_t n = rng.next_below(32);
    for (std::size_t i = 0; i < n; ++i)
      spec += static_cast<char>(rng.next_below(256));
    expect_serve_parse_no_crash(spec);
  }
}

TEST(FuzzBackendSpec, ServeTokenSoupNeverCrashes) {
  const std::vector<std::string> keys = {
      "lanes", "queue_depth", "pending", "cache_budget", "quantum",
      "coalesce", "map", "frac", "tile", "threads", "junk"};
  const std::vector<std::string> values = {
      "-1", "0", "1", "2", "4", "16", "17", "64", "65", "256", "4096",
      "100000", "99999999999999999999", "3.5", "zzz", "", "on", "off",
      "maybe", "float", "packed", "compact:8", "compact:0", "compact:zz",
      "16x16", "0x0", "8K", "128M", "2G", "1T", "12Q", "Mlots", "16k",
      "0x10", "-8M"};
  util::Rng rng(405);
  for (int trial = 0; trial < 400; ++trial) {
    std::string spec = "serve";
    const std::size_t nopts = rng.next_below(5);
    for (std::size_t i = 0; i < nopts; ++i) {
      spec += i == 0 ? ':' : ',';
      spec += keys[rng.next_below(keys.size())];
      spec += '=';
      spec += values[rng.next_below(values.size())];
    }
    expect_serve_parse_no_crash(spec);
  }
}

TEST(FuzzBackendSpec, ServeOutOfRangeValuesThrowInvalidArgument) {
  const char* bad[] = {
      "serve:lanes=0",          "serve:lanes=-1",
      "serve:lanes=100000",     "serve:queue_depth=0",
      "serve:queue_depth=65",   "serve:pending=0",
      "serve:pending=99999999", "serve:quantum=0",
      "serve:quantum=3",        "serve:quantum=1024",
      "serve:coalesce=yes",     "serve:map=onthefly",
      "serve:map=compact:0",    "serve:frac=0",
      "serve:frac=23",          "serve:tile=0x0",
      "serve:tile=7x7",         "serve:tile=1024x1024",
      "serve:cache_budget=-1",  "serve:cache_budget=1T",
      "serve:cache_budget=K",   "serve:cache_budget=9999999999999999999",
      "serve:map=compact:16,quantum=4",
      "pool:lanes=2",           "serve:unknown_opt=3",
  };
  for (const char* spec : bad)
    EXPECT_THROW((void)serve::ServeOptions::parse(spec), InvalidArgument)
        << spec;
}

TEST(FuzzBackendSpec, InRangeSpecsRoundTrip) {
  // Positive control for the fuzz corpus: well-formed specs build, and the
  // canonical name reparses to an equivalent backend.
  const char* good[] = {
      "serial",
      "pool:dynamic,rows=4,threads=2",
      "simd:threads=2",
      "cell:spes=4,sbuf,tile=64x16",
      "gpu:sms=16,block=16,tex=32x8x8x1",
      "fpga:clock=100,cache=32x8x8x1",
      "cluster:ranks=4,net=gige,scatter",
      "shard:4",
      "shard:workers=2,ring=2,timeout_ms=500,heartbeat_ms=50",
  };
  for (const char* spec : good) {
    const std::unique_ptr<Backend> b = BackendRegistry::create(spec);
    ASSERT_NE(b, nullptr) << spec;
    const std::unique_ptr<Backend> b2 = BackendRegistry::create(b->name());
    EXPECT_EQ(b2->name(), b->name()) << spec;
  }
}

// Lens/view specs (core/model_spec.hpp) ride the same convention: parse
// either yields a value whose canonical name() round-trips, or throws
// InvalidArgument — never a crash, never a contract abort.
void expect_lens_parse_no_crash(const std::string& spec) {
  try {
    const LensSpec o = LensSpec::parse(spec);
    EXPECT_EQ(LensSpec::parse(o.name()).name(), o.name()) << spec;
  } catch (const InvalidArgument&) {
    // expected for garbage
  }
}

void expect_view_parse_no_crash(const std::string& spec) {
  try {
    const ViewSpec o = ViewSpec::parse(spec);
    EXPECT_EQ(ViewSpec::parse(o.name()).name(), o.name()) << spec;
  } catch (const InvalidArgument&) {
    // expected for garbage
  }
}

TEST(FuzzModelSpec, RandomByteSoupNeverCrashes) {
  util::Rng rng(406);
  for (int trial = 0; trial < 500; ++trial) {
    std::string spec(rng.next_below(48), '\0');
    for (char& c : spec) c = static_cast<char>(rng.next_below(256));
    expect_lens_parse_no_crash(spec);
    expect_view_parse_no_crash(spec);
    // The registry-token prefix form takes the same path.
    expect_lens_parse_no_crash("lens=" + spec);
    expect_view_parse_no_crash("view=" + spec);
  }
}

TEST(FuzzModelSpec, TokenSoupNeverCrashes) {
  const std::vector<std::string> kinds = {
      "equidistant", "equisolid",  "orthographic", "stereographic",
      "rectilinear", "kannala_brandt", "division",
      "perspective", "cylindrical", "equirect", "quadview", "bogus", ""};
  const std::vector<std::string> keys = {"k1",   "k2",   "k3",   "k4",
                                         "lambda", "fov",  "hfov", "vfov",
                                         "tilt", "junk"};
  const std::vector<std::string> values = {
      "-1",  "0",    "1",     "2",   "90",   "160", "180", "181", "360",
      "361", "-0.25", "0.25", "-5",  "5",    "6",   "-11", "1e9", "-1e9",
      "nan", "inf",  "-inf",  "zzz", "",     "3..5", "0x10", "1e",
      "--2", "1,2"};
  util::Rng rng(407);
  for (int trial = 0; trial < 400; ++trial) {
    std::string spec = kinds[rng.next_below(kinds.size())];
    const std::size_t nopts = rng.next_below(5);
    for (std::size_t i = 0; i < nopts; ++i) {
      spec += i == 0 ? ':' : ',';
      spec += keys[rng.next_below(keys.size())];
      spec += '=';
      spec += values[rng.next_below(values.size())];
    }
    expect_lens_parse_no_crash(spec);
    expect_view_parse_no_crash(spec);
  }
}

TEST(FuzzModelSpec, OutOfRangeValuesThrowInvalidArgument) {
  const char* bad_lens[] = {
      "kannala_brandt:k1=9",      "kannala_brandt:k3=-6",
      "kannala_brandt:k4=nan",    "division:lambda=1",
      "division:lambda=-11",      "division:lambda=inf",
      "equidistant:fov=0",        "equidistant:fov=361",
      "equidistant:fov=-90",      "equidistant:fov=nan",
      "equidistant:k1=0.1",       "division:k2=0.1",
      "kannala_brandt:lambda=-1", "rectilinear:fov=180",
      "orthographic:fov=200",     "stereographic:junk=1",
      "fisheye",                  "",
  };
  for (const char* spec : bad_lens)
    EXPECT_THROW((void)LensSpec::parse(spec), InvalidArgument) << spec;

  const char* bad_view[] = {
      "perspective:fov=180",  "perspective:fov=-1",
      "perspective:hfov=90",  "cylindrical:hfov=0",
      "cylindrical:hfov=361", "cylindrical:tilt=10",
      "equirect:vfov=181",    "equirect:hfov=nan",
      "quadview:fov=0",       "quadview:fov=179.5",
      "quadview:tilt=91",     "quadview:tilt=-1",
      "quadview:hfov=90",     "fishbowl",
      "",
  };
  for (const char* spec : bad_view)
    EXPECT_THROW((void)ViewSpec::parse(spec), InvalidArgument) << spec;
}

}  // namespace
}  // namespace fisheye::core
