// Runtime measurement utilities: statistics, timers, report helpers.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "runtime/report.hpp"
#include "util/error.hpp"
#include "runtime/stats.hpp"
#include "runtime/timer.hpp"

namespace fisheye::rt {
namespace {

TEST(Stats, SummarizeOddCount) {
  const RunStats s = summarize({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_EQ(s.samples, 3);
}

TEST(Stats, SummarizeEvenCountMedianIsMidpoint) {
  const RunStats s = summarize({4.0, 1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Stats, MadSigmaOfConstantIsZero) {
  const RunStats s = summarize({2.0, 2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(s.mad_sigma, 0.0);
}

TEST(Stats, MadSigmaRobustToOutlier) {
  // One wild outlier barely moves median/MAD but wrecks the mean.
  const RunStats s = summarize({1.0, 1.1, 0.9, 1.0, 100.0});
  EXPECT_DOUBLE_EQ(s.median, 1.0);
  EXPECT_LT(s.mad_sigma, 0.2);
  EXPECT_GT(s.mean, 20.0);
}

TEST(Stats, SingleSample) {
  const RunStats s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.median, 7.0);
  EXPECT_DOUBLE_EQ(s.mad_sigma, 0.0);
  EXPECT_EQ(s.samples, 1);
}

TEST(Stats, EmptyViolatesContract) {
  EXPECT_THROW(summarize({}), fisheye::InvalidArgument);
}

TEST(Stats, MeasureRunsWarmupPlusReps) {
  int calls = 0;
  const RunStats s = measure([&calls] { ++calls; }, 5, 2);
  EXPECT_EQ(calls, 7);
  EXPECT_EQ(s.samples, 5);
  EXPECT_GE(s.min, 0.0);
}

TEST(Timer, StopwatchMeasuresElapsed) {
  const Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double e = sw.elapsed_seconds();
  EXPECT_GE(e, 0.018);
  EXPECT_LT(e, 2.0);  // generous upper bound for a loaded host
  EXPECT_NEAR(sw.elapsed_ms(), e * 1e3, 1e3);
}

TEST(Timer, ResetRestarts) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sw.reset();
  EXPECT_LT(sw.elapsed_seconds(), 0.01);
}

TEST(Timer, TimeOnceReturnsDuration) {
  const double s = time_once(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(5)); });
  EXPECT_GE(s, 0.004);
}

TEST(Report, FpsAndThroughputHelpers) {
  EXPECT_DOUBLE_EQ(fps_from_seconds(0.02), 50.0);
  EXPECT_DOUBLE_EQ(fps_from_seconds(0.0), 0.0);
  EXPECT_DOUBLE_EQ(mpix_per_s(1000, 1000, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(mpix_per_s(1920, 1080, 0.0), 0.0);
  EXPECT_EQ(resolution_label(1280, 720), "1280x720");
}

TEST(Report, StandardResolutionsAreOrdered) {
  long long prev = 0;
  for (const Resolution& r : kResolutions) {
    const long long px = static_cast<long long>(r.width) * r.height;
    EXPECT_GT(px, prev) << r.name;
    prev = px;
  }
}

}  // namespace
}  // namespace fisheye::rt
