// AutotuneCache disk-mirror hardening: the FISHEYE_TUNE_CACHE file is an
// optimization, never a liability. A corrupt, truncated, version-skewed or
// outright binary file must load as "no decisions" without throwing, must
// not poison the in-process cache, and the next store() must rewrite the
// file into a clean, loadable state.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/autotune.hpp"
#include "core/backend.hpp"

namespace fisheye {
namespace {

using core::AutotuneCache;
using core::TunedSpec;

class AutotuneCacheDisk : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = std::string("/tmp/fisheye_tune_cache_") + info->name() + ".tsv";
    std::remove(path_.c_str());
    ::setenv("FISHEYE_TUNE_CACHE", path_.c_str(), 1);
    AutotuneCache::instance().reload_disk();
  }

  void TearDown() override {
    ::unsetenv("FISHEYE_TUNE_CACHE");
    AutotuneCache::instance().reload_disk();  // back to disk-free state
    std::remove(path_.c_str());
  }

  void write_file(const std::string& contents) const {
    std::ofstream out(path_, std::ios::trunc | std::ios::binary);
    out << contents;
  }

  std::string path_;
};

TEST_F(AutotuneCacheDisk, RoundTripsThroughDisk) {
  AutotuneCache& cache = AutotuneCache::instance();
  cache.store("keyA", TunedSpec::parse("gather/128/-/-"));
  cache.store("keyB", TunedSpec::parse("soa/-/96x32/compact:8"));

  cache.reload_disk();
  const auto a = cache.lookup("keyA");
  const auto b = cache.lookup("keyB");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->token(), "gather/128/-/-");
  EXPECT_EQ(b->token(), "soa/-/96x32/compact:8");
}

TEST_F(AutotuneCacheDisk, MissingFileLoadsEmpty) {
  AutotuneCache& cache = AutotuneCache::instance();
  EXPECT_FALSE(cache.lookup("anything").has_value());
}

TEST_F(AutotuneCacheDisk, VersionSkewedFileIsIgnoredWholesale) {
  // A file from a different (or future) format version: even lines that
  // would parse under the current format must not load.
  write_file("fisheye-tune-cache/999\nkeyA\tgather/128/-/-\n");
  AutotuneCache& cache = AutotuneCache::instance();
  cache.reload_disk();
  EXPECT_FALSE(cache.lookup("keyA").has_value());
}

TEST_F(AutotuneCacheDisk, HeaderlessLegacyFileIsIgnored) {
  write_file("keyA\tgather/128/-/-\n");
  AutotuneCache& cache = AutotuneCache::instance();
  cache.reload_disk();
  EXPECT_FALSE(cache.lookup("keyA").has_value());
}

TEST_F(AutotuneCacheDisk, CorruptLinesAreSkippedValidOnesLoad) {
  write_file(
      "fisheye-tune-cache/1\n"
      "no-tab-on-this-line\n"
      "\ttab-first-no-key\n"
      "keyBad\tnot/a/valid\n"           // 3 slots, parse rejects
      "keyWorse\twarp9/!!/0x0/lol\n"    // 4 slots, every one malformed
      "keyHuge\t-/99999999999999999999999999/-/-\n"  // stoi out_of_range
      "keyGood\tscalar/-/-/-\n");
  AutotuneCache& cache = AutotuneCache::instance();
  cache.reload_disk();
  EXPECT_FALSE(cache.lookup("keyBad").has_value());
  EXPECT_FALSE(cache.lookup("keyWorse").has_value());
  EXPECT_FALSE(cache.lookup("keyHuge").has_value());
  const auto good = cache.lookup("keyGood");
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(good->token(), "scalar/-/-/-");
}

TEST_F(AutotuneCacheDisk, TruncatedEntryIsSkipped) {
  // Torn write: the last line stops mid-token.
  write_file(
      "fisheye-tune-cache/1\n"
      "keyGood\tgather/256/-/-\n"
      "keyTorn\tgather/2");
  AutotuneCache& cache = AutotuneCache::instance();
  cache.reload_disk();
  EXPECT_TRUE(cache.lookup("keyGood").has_value());
  EXPECT_FALSE(cache.lookup("keyTorn").has_value());
}

TEST_F(AutotuneCacheDisk, BinaryGarbageNeverThrows) {
  std::string junk("\x7f""ELF\x01\x02\x00garbage\n\x00\xff\xfe\ttab\n", 28);
  write_file(junk);
  AutotuneCache& cache = AutotuneCache::instance();
  EXPECT_NO_THROW(cache.reload_disk());
  EXPECT_FALSE(cache.lookup("garbage").has_value());
}

TEST_F(AutotuneCacheDisk, StoreRewritesCorruptFileClean) {
  write_file("total nonsense, no header\nmore nonsense\n");
  AutotuneCache& cache = AutotuneCache::instance();
  cache.reload_disk();
  cache.store("keyA", TunedSpec::parse("soa/64/-/-"));

  // The rewrite repaired the file: a fresh load sees exactly the stored
  // decision and none of the nonsense.
  cache.reload_disk();
  const auto a = cache.lookup("keyA");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->token(), "soa/64/-/-");

  std::ifstream in(path_);
  std::string first;
  ASSERT_TRUE(std::getline(in, first));
  EXPECT_EQ(first, "fisheye-tune-cache/1");
}

TEST_F(AutotuneCacheDisk, StatsCountHitsAndMisses) {
  AutotuneCache& cache = AutotuneCache::instance();
  cache.store("keyA", TunedSpec::parse("gather/-/-/-"));
  (void)cache.lookup("keyA");
  (void)cache.lookup("keyMissing");
  const auto stats = cache.stats();
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

}  // namespace
}  // namespace fisheye
