// Unit tests for image containers, views, and border policies.
#include <gtest/gtest.h>

#include <cstdint>

#include "image/border.hpp"
#include "image/image.hpp"
#include "util/error.hpp"

namespace fisheye::img {
namespace {

TEST(Image, AllocatesPaddedAlignedRows) {
  Image8 im(100, 10, 3);
  EXPECT_EQ(im.width(), 100);
  EXPECT_EQ(im.height(), 10);
  EXPECT_EQ(im.channels(), 3);
  // Pitch must cover the payload and be 64-byte aligned in bytes.
  EXPECT_GE(im.pitch(), 300u);
  EXPECT_EQ((im.pitch() * sizeof(std::uint8_t)) % 64, 0u);
  for (int y = 0; y < im.height(); ++y)
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(im.row(y)) % 64, 0u);
}

TEST(Image, ZeroInitialized) {
  Image8 im(33, 7, 1);
  for (int y = 0; y < 7; ++y)
    for (int x = 0; x < 33; ++x) EXPECT_EQ(im.at(x, y), 0);
}

TEST(Image, FillAndAt) {
  Image8 im(5, 4, 2);
  im.fill(9);
  EXPECT_EQ(im.at(4, 3, 1), 9);
  im.at(2, 1, 0) = 77;
  EXPECT_EQ(im.at(2, 1, 0), 77);
  EXPECT_EQ(im.at(2, 1, 1), 9);
}

TEST(Image, CloneIsDeep) {
  Image8 a(8, 8, 1);
  a.fill(5);
  Image8 b = a.clone();
  b.at(0, 0) = 200;
  EXPECT_EQ(a.at(0, 0), 5);
  EXPECT_EQ(b.at(0, 0), 200);
}

TEST(Image, PayloadBytesExcludesPadding) {
  Image8 im(10, 10, 3);
  EXPECT_EQ(im.payload_bytes(), 300u);
}

TEST(Image, InvalidDimensionsViolateContract) {
  EXPECT_THROW(Image8(0, 5, 1), InvalidArgument);
  EXPECT_THROW(Image8(5, -1, 1), InvalidArgument);
  EXPECT_THROW(Image8(5, 5, 0), InvalidArgument);
  EXPECT_THROW(Image8(5, 5, 5), InvalidArgument);
}

TEST(ImageView, RowSubviewSharesStorage) {
  Image8 im(6, 6, 1);
  ImageView<std::uint8_t> v = im.view().rows(2, 3);
  EXPECT_EQ(v.height, 3);
  v.at(0, 0) = 42;  // row 2 of the parent
  EXPECT_EQ(im.at(0, 2), 42);
}

TEST(ImageView, ConstConversion) {
  Image8 im(4, 4, 1);
  ImageView<std::uint8_t> v = im.view();
  ConstImageView<std::uint8_t> cv = v;  // implicit, like span
  EXPECT_EQ(cv.width, 4);
  EXPECT_EQ(cv.row(1), im.row(1));
}

TEST(ImageView, Contains) {
  Image8 im(4, 3, 1);
  const auto v = im.view();
  EXPECT_TRUE(v.contains(0, 0));
  EXPECT_TRUE(v.contains(3, 2));
  EXPECT_FALSE(v.contains(4, 0));
  EXPECT_FALSE(v.contains(0, 3));
  EXPECT_FALSE(v.contains(-1, 0));
}

TEST(EqualPixels, DetectsDifferenceAndShapeMismatch) {
  Image8 a(5, 5, 1), b(5, 5, 1), c(5, 4, 1);
  EXPECT_TRUE(equal_pixels<std::uint8_t>(a.view(), b.view()));
  b.at(4, 4) = 1;
  EXPECT_FALSE(equal_pixels<std::uint8_t>(a.view(), b.view()));
  EXPECT_FALSE(equal_pixels<std::uint8_t>(a.view(), c.view()));
}

TEST(Border, ClampIndex) {
  EXPECT_EQ(clamp_index(-5, 10), 0);
  EXPECT_EQ(clamp_index(0, 10), 0);
  EXPECT_EQ(clamp_index(9, 10), 9);
  EXPECT_EQ(clamp_index(12, 10), 9);
}

TEST(Border, ReflectIndexMirrorsWithoutEdgeRepeat) {
  // n=4 pattern: 0 1 2 3 2 1 0 1 2 3 ...
  EXPECT_EQ(reflect_index(-1, 4), 1);
  EXPECT_EQ(reflect_index(-2, 4), 2);
  EXPECT_EQ(reflect_index(4, 4), 2);
  EXPECT_EQ(reflect_index(5, 4), 1);
  EXPECT_EQ(reflect_index(6, 4), 0);
  EXPECT_EQ(reflect_index(2, 4), 2);
}

TEST(Border, ReflectSingleton) { EXPECT_EQ(reflect_index(7, 1), 0); }

class ReflectProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReflectProperty, AlwaysInRangeAndPeriodic) {
  const int n = GetParam();
  for (int i = -3 * n; i <= 3 * n; ++i) {
    const int r = reflect_index(i, n);
    EXPECT_GE(r, 0);
    EXPECT_LT(r, n);
    if (n > 1) {
      EXPECT_EQ(reflect_index(i + 2 * (n - 1), n), r) << "i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ReflectProperty,
                         ::testing::Values(2, 3, 4, 7, 16));

TEST(Border, Names) {
  EXPECT_STREQ(border_name(BorderMode::Constant), "constant");
  EXPECT_STREQ(border_name(BorderMode::Replicate), "replicate");
  EXPECT_STREQ(border_name(BorderMode::Reflect), "reflect");
}

}  // namespace
}  // namespace fisheye::img
