// Cross-backend equivalence: every execution strategy must produce the
// serial reference output (bit-exact for scalar-kernel backends, within one
// level for the SIMD kernel, bit-exact for the Cell simulator, and the
// packed-kernel reference for the FPGA simulator).
#include <gtest/gtest.h>

#include <memory>

#include "accel/accel_backend.hpp"
#include "core/corrector.hpp"
#include "image/metrics.hpp"
#include "image/synth.hpp"
#include "video/pipeline.hpp"

namespace fisheye {
namespace {

using core::Corrector;
using util::deg_to_rad;

struct Shape {
  int w;
  int h;
  int ch;
};

class BackendEquivalence : public ::testing::TestWithParam<Shape> {
 protected:
  static img::Image8 fisheye_input(int w, int h, int ch) {
    const auto cam = core::FisheyeCamera::centered(
        core::LensKind::Equidistant, deg_to_rad(180.0), w, h);
    video::SyntheticVideoSource source(cam, w, h, ch);
    return source.frame(0);
  }
};

TEST_P(BackendEquivalence, PoolSchedulesMatchSerialBitExact) {
  const auto [w, h, ch] = GetParam();
  const Corrector corr =
      Corrector::builder(w, h).fov_degrees(180.0).build();
  const img::Image8 src = fisheye_input(w, h, ch);
  img::Image8 ref(w, h, ch);
  core::SerialBackend serial;
  corr.correct(src.view(), ref.view(), serial);

  par::ThreadPool pool(4);
  for (const par::Schedule sched :
       {par::Schedule::Static, par::Schedule::Dynamic, par::Schedule::Guided,
        par::Schedule::Steal})
    for (const par::PartitionKind part :
         {par::PartitionKind::RowBlocks, par::PartitionKind::RowCyclic,
          par::PartitionKind::Tiles, par::PartitionKind::ColumnBlocks}) {
      core::PoolBackend backend(pool, {sched, part, 0, 48, 24});
      img::Image8 out(w, h, ch);
      corr.correct(src.view(), out.view(), backend);
      EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()))
          << backend.name();
    }
}

TEST_P(BackendEquivalence, SimdWithinOneLevelOfSerial) {
  const auto [w, h, ch] = GetParam();
  const Corrector corr =
      Corrector::builder(w, h).fov_degrees(180.0).build();
  const img::Image8 src = fisheye_input(w, h, ch);
  img::Image8 ref(w, h, ch), out(w, h, ch);
  core::SerialBackend serial;
  corr.correct(src.view(), ref.view(), serial);

  core::SimdBackend simd_serial(nullptr);
  corr.correct(src.view(), out.view(), simd_serial);
  EXPECT_LT(img::fraction_differing(ref.view(), out.view(), 1), 0.01);

  par::ThreadPool pool(3);
  core::SimdBackend simd_pool(&pool);
  img::Image8 out2(w, h, ch);
  corr.correct(src.view(), out2.view(), simd_pool);
  // Threaded SIMD must equal serial SIMD exactly (same kernel, disjoint
  // rows).
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(out.view(), out2.view()));
}

TEST_P(BackendEquivalence, CellSimulatorMatchesSerialBitExact) {
  const auto [w, h, ch] = GetParam();
  const Corrector corr =
      Corrector::builder(w, h).fov_degrees(180.0).build();
  const img::Image8 src = fisheye_input(w, h, ch);
  img::Image8 ref(w, h, ch), out(w, h, ch);
  core::SerialBackend serial;
  corr.correct(src.view(), ref.view(), serial);

  accel::SpeConfig config;
  config.num_spes = 4;
  accel::CellBackend cell(config);
  corr.correct(src.view(), out.view(), cell);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()));
  EXPECT_GT(cell.last_stats().fps, 0.0);
}

TEST_P(BackendEquivalence, FpgaSimulatorMatchesPackedReference) {
  const auto [w, h, ch] = GetParam();
  const Corrector corr = Corrector::builder(w, h)
                             .fov_degrees(180.0)
                             .map_mode(core::MapMode::PackedLut)
                             .build();
  const img::Image8 src = fisheye_input(w, h, ch);
  img::Image8 ref(w, h, ch), out(w, h, ch);
  core::SerialBackend serial;  // serial PackedLut path
  corr.correct(src.view(), ref.view(), serial);

  accel::FpgaBackend fpga(accel::FpgaConfig{});
  corr.correct(src.view(), out.view(), fpga);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()));
  EXPECT_GT(fpga.last_stats().cache_accesses, 0u);
}

#ifdef _OPENMP
TEST_P(BackendEquivalence, OpenMpMatchesSerialBitExact) {
  const auto [w, h, ch] = GetParam();
  const Corrector corr =
      Corrector::builder(w, h).fov_degrees(180.0).build();
  const img::Image8 src = fisheye_input(w, h, ch);
  img::Image8 ref(w, h, ch), out(w, h, ch);
  core::SerialBackend serial;
  corr.correct(src.view(), ref.view(), serial);
  core::OpenMpBackend omp(2);
  corr.correct(src.view(), out.view(), omp);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()));
}
#endif

INSTANTIATE_TEST_SUITE_P(Shapes, BackendEquivalence,
                         ::testing::Values(Shape{160, 120, 1},
                                           Shape{160, 120, 3},
                                           Shape{321, 201, 1},
                                           Shape{127, 97, 3}),
                         [](const auto& pinfo) {
                           const Shape s = pinfo.param;
                           return std::to_string(s.w) + "x" +
                                  std::to_string(s.h) + "c" +
                                  std::to_string(s.ch);
                         });

TEST(Backends, OtfModeAcrossSchedulesMatchesSerial) {
  const Corrector corr = Corrector::builder(160, 120)
                             .fov_degrees(170.0)
                             .map_mode(core::MapMode::OnTheFly)
                             .build();
  const auto cam = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, deg_to_rad(170.0), 160, 120);
  video::SyntheticVideoSource source(cam, 160, 120, 1);
  const img::Image8 src = source.frame(0);
  img::Image8 ref(160, 120, 1), out(160, 120, 1);
  core::SerialBackend serial;
  corr.correct(src.view(), ref.view(), serial);
  par::ThreadPool pool(4);
  core::PoolBackend backend(pool,
                            {par::Schedule::Dynamic,
                             par::PartitionKind::RowCyclic, 0, 64, 64});
  corr.correct(src.view(), out.view(), backend);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()));
}

TEST(Backends, NamesDescribeConfiguration) {
  par::ThreadPool pool(2);
  EXPECT_EQ(core::SerialBackend{}.name(), "serial");
  core::PoolBackend pb(pool, {par::Schedule::Guided,
                              par::PartitionKind::Tiles, 0, 64, 64});
  EXPECT_EQ(pb.name(), "pool:guided,tiles,tile=64x64,threads=2");
  EXPECT_EQ(core::SimdBackend{}.name(), "simd:threads=1");
  accel::SpeConfig sc;
  sc.num_spes = 6;
  sc.double_buffering = false;
  EXPECT_EQ(accel::CellBackend(sc).name(), "cell:spes=6,sbuf");
}

TEST(Backends, SimdRejectsUnsupportedModes) {
  const Corrector corr = Corrector::builder(64, 64)
                             .fov_degrees(170.0)
                             .map_mode(core::MapMode::OnTheFly)
                             .build();
  img::Image8 src(64, 64, 1), dst(64, 64, 1);
  core::SimdBackend simd;
  EXPECT_THROW(corr.correct(src.view(), dst.view(), simd),
               InvalidArgument);
}

TEST(Backends, PackedLutRequiresBilinear) {
  EXPECT_THROW(Corrector::builder(64, 64)
                   .map_mode(core::MapMode::PackedLut)
                   .interp(core::Interp::Bicubic)
                   .build(),
               InvalidArgument);
}

}  // namespace
}  // namespace fisheye
