// Corrector facade: builder, configuration validation, map construction
// per mode, geometric behaviour of the corrected output.
#include <gtest/gtest.h>

#include "core/corrector.hpp"
#include "image/metrics.hpp"
#include "image/synth.hpp"
#include "util/mathx.hpp"
#include "video/pipeline.hpp"

namespace fisheye::core {
namespace {

using util::deg_to_rad;

TEST(Builder, DefaultsAreSane) {
  const Corrector corr = Corrector::builder(320, 240).build();
  const CorrectorConfig& cfg = corr.config();
  EXPECT_EQ(cfg.src_width, 320);
  EXPECT_EQ(cfg.out_width, 320);   // defaults to input size
  EXPECT_EQ(cfg.out_height, 240);
  EXPECT_NEAR(cfg.fov_rad, util::kPi, 1e-12);  // 180 degrees
  EXPECT_EQ(cfg.lens, LensKind::Equidistant);
  EXPECT_EQ(cfg.map_mode, MapMode::FloatLut);
  // Matched focal: equidistant with circle radius 120 -> f = 120/(pi/2).
  EXPECT_NEAR(cfg.out_focal, 120.0 / util::kHalfPi, 1e-9);
  EXPECT_NE(corr.map(), nullptr);
  EXPECT_EQ(corr.packed(), nullptr);
}

TEST(Builder, FluentOptionsStick) {
  const Corrector corr = Corrector::builder(640, 480)
                             .lens(LensKind::Equisolid)
                             .fov_degrees(160.0)
                             .output_size(800, 600)
                             .output_focal(250.0)
                             .interp(Interp::Bicubic)
                             .border(img::BorderMode::Replicate, 9)
                             .fast_math(true)
                             .build();
  const CorrectorConfig& cfg = corr.config();
  EXPECT_EQ(cfg.lens.kind, LensKind::Equisolid);
  // fov_degrees() overrides the lens spec's fov; the resolved config keeps
  // both fields in agreement.
  EXPECT_NEAR(cfg.lens.fov_deg, 160.0, 1e-12);
  EXPECT_NEAR(cfg.fov_rad, deg_to_rad(160.0), 1e-12);
  EXPECT_EQ(cfg.out_width, 800);
  EXPECT_DOUBLE_EQ(cfg.out_focal, 250.0);
  EXPECT_EQ(cfg.remap.interp, Interp::Bicubic);
  EXPECT_EQ(cfg.remap.border, img::BorderMode::Replicate);
  EXPECT_EQ(cfg.remap.fill, 9);
  EXPECT_TRUE(cfg.fast_math);
}

TEST(Corrector, PackedModeBuildsBothMaps) {
  const Corrector corr = Corrector::builder(160, 120)
                             .map_mode(MapMode::PackedLut)
                             .frac_bits(10)
                             .build();
  ASSERT_NE(corr.map(), nullptr);
  ASSERT_NE(corr.packed(), nullptr);
  EXPECT_EQ(corr.packed()->frac_bits, 10);
}

TEST(Corrector, OtfModeBuildsNoMaps) {
  const Corrector corr =
      Corrector::builder(160, 120).map_mode(MapMode::OnTheFly).build();
  EXPECT_EQ(corr.map(), nullptr);
  EXPECT_EQ(corr.packed(), nullptr);
}

TEST(Corrector, InvalidConfigsViolateContracts) {
  EXPECT_THROW(Corrector::builder(0, 100).build(), fisheye::InvalidArgument);
  EXPECT_THROW(Corrector::builder(100, 100).fov_degrees(-10.0).build(),
               fisheye::InvalidArgument);
  EXPECT_THROW(Corrector::builder(100, 100).frac_bits(0).build(),
               fisheye::InvalidArgument);
  EXPECT_THROW(Corrector::builder(100, 100).frac_bits(30).build(),
               fisheye::InvalidArgument);
}

TEST(Corrector, RejectsMismatchedFrames) {
  const Corrector corr = Corrector::builder(64, 64).build();
  SerialBackend backend;
  img::Image8 wrong(32, 32, 1), out(64, 64, 1), src(64, 64, 1),
      out3(64, 64, 3);
  EXPECT_THROW(corr.correct(wrong.view(), out.view(), backend),
               fisheye::InvalidArgument);
  EXPECT_THROW(corr.correct(src.view(), out3.view(), backend),
               fisheye::InvalidArgument);
}

TEST(Corrector, StraightensDistortedVerticalLine) {
  // The headline property of the whole system: a straight line in the
  // world, curved by the fisheye, becomes straight after correction.
  const int w = 320, h = 240;
  const auto cam =
      FisheyeCamera::centered(LensKind::Equidistant, deg_to_rad(180.0), w, h);
  video::SyntheticVideoSource source(cam, w, h, 1);

  // Scene: single bright vertical stripe offset from centre.
  img::Image8 scene(source.scene_frame(0).width(),
                    source.scene_frame(0).height(), 1);
  const int stripe_x = scene.width() / 2 + 90;
  for (int y = 0; y < scene.height(); ++y)
    for (int x = stripe_x - 2; x <= stripe_x + 2; ++x) scene.at(x, y) = 255;

  // Forward-distort it like the source does.
  const WarpMap synth = build_synthesis_map(
      cam, scene.width(), scene.height(), 0.25 * scene.width(), w, h);
  img::Image8 fish(w, h, 1);
  remap_rect(scene.view(), fish.view(), synth, {0, 0, w, h},
             {Interp::Bilinear, img::BorderMode::Constant, 0});

  // In the fisheye image the stripe bows: centroid x varies across rows.
  auto centroid_x = [](const img::Image8& im, int y) {
    double num = 0.0, den = 0.0;
    for (int x = 0; x < im.width(); ++x) {
      num += x * static_cast<double>(im.at(x, y));
      den += im.at(x, y);
    }
    return den > 0 ? num / den : -1.0;
  };
  auto spread = [&](const img::Image8& im, int y0, int y1) {
    double lo = 1e9, hi = -1e9;
    for (int y = y0; y < y1; y += 4) {
      const double c = centroid_x(im, y);
      if (c < 0) continue;
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    return hi - lo;
  };
  const double bow_fish = spread(fish, h / 4, 3 * h / 4);

  const Corrector corr = Corrector::builder(w, h).fov_degrees(180.0).build();
  SerialBackend backend;
  img::Image8 corrected(w, h, 1);
  corr.correct(fish.view(), corrected.view(), backend);
  const double bow_corr = spread(corrected, h / 4, 3 * h / 4);

  EXPECT_GT(bow_fish, 3.0);           // visibly curved before
  EXPECT_LT(bow_corr, 1.0);           // straight after (sub-pixel residual
                                      // from resampling + centroid noise)
  EXPECT_LT(bow_corr, bow_fish / 5);  // at least 5x straightening
}

TEST(Corrector, WiderOutputFocalZoomsIn) {
  // Doubling the output focal halves the field covered by the output.
  const int n = 160;
  const auto make = [&](double focal) {
    return Corrector::builder(n, n)
        .fov_degrees(180.0)
        .output_focal(focal)
        .build();
  };
  const Corrector normal = make(0.0);             // matched
  const double f0 = normal.config().out_focal;
  const Corrector zoomed = make(2.0 * f0);
  // The zoomed map's edge pixel samples a source point closer to centre.
  const WarpMap& m0 = *normal.map();
  const WarpMap& m1 = *zoomed.map();
  const std::size_t edge = m0.index(n - 1, n / 2);
  const double c = (n - 1) / 2.0;
  EXPECT_LT(std::abs(m1.src_x[edge] - c), std::abs(m0.src_x[edge] - c));
}

TEST(Corrector, MakeContextWiresPointers) {
  const Corrector corr = Corrector::builder(64, 64).build();
  img::Image8 src(64, 64, 1), dst(64, 64, 1);
  const ExecContext ctx = corr.make_context(src.view(), dst.view());
  EXPECT_EQ(ctx.map, corr.map());
  EXPECT_EQ(ctx.camera, &corr.camera());
  EXPECT_EQ(ctx.view, &corr.view());
  EXPECT_EQ(ctx.mode, MapMode::FloatLut);
}

}  // namespace
}  // namespace fisheye::core
