// PNM and BMP codec tests: round trips, format variants, malformed input.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "image/image.hpp"
#include "image/io_bmp.hpp"
#include "image/io_pnm.hpp"
#include "image/synth.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fisheye::img {
namespace {

Image8 random_image(int w, int h, int ch, std::uint64_t seed) {
  util::Rng rng(seed);
  Image8 im(w, h, ch);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w * ch; ++x)
      im.row(y)[x] = static_cast<std::uint8_t>(rng.next_below(256));
  return im;
}

class PnmRoundTrip : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PnmRoundTrip, EncodeDecodeIsIdentity) {
  const auto [w, h, ch] = GetParam();
  const Image8 original = random_image(w, h, ch, 42);
  const Image8 decoded = decode_pnm(encode_pnm(original.view()));
  EXPECT_TRUE(equal_pixels<std::uint8_t>(original.view(), decoded.view()));
  EXPECT_EQ(decoded.channels(), ch);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PnmRoundTrip,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{7, 3, 1},
                      std::tuple{64, 64, 1}, std::tuple{1, 1, 3},
                      std::tuple{33, 17, 3}, std::tuple{128, 1, 3}));

TEST(Pnm, HeaderFormat) {
  Image8 im(3, 2, 1);
  im.fill(7);
  const std::string bytes = encode_pnm(im.view());
  EXPECT_EQ(bytes.substr(0, 2), "P5");
  EXPECT_NE(bytes.find("3 2"), std::string::npos);
  EXPECT_NE(bytes.find("255"), std::string::npos);
}

TEST(Pnm, AsciiP2Decodes) {
  const std::string ascii = "P2\n# a comment\n3 2\n255\n0 10 20\n30 40 50\n";
  const Image8 im = decode_pnm(ascii);
  ASSERT_EQ(im.width(), 3);
  ASSERT_EQ(im.height(), 2);
  EXPECT_EQ(im.at(0, 0), 0);
  EXPECT_EQ(im.at(2, 1), 50);
}

TEST(Pnm, AsciiP3Decodes) {
  const std::string ascii = "P3\n1 1\n255\n9 8 7\n";
  const Image8 im = decode_pnm(ascii);
  ASSERT_EQ(im.channels(), 3);
  EXPECT_EQ(im.at(0, 0, 0), 9);
  EXPECT_EQ(im.at(0, 0, 2), 7);
}

TEST(Pnm, CommentsInsideHeaderAreSkipped) {
  const std::string ascii = "P2\n#c1\n2 #c2\n1\n255\n5 6\n";
  const Image8 im = decode_pnm(ascii);
  EXPECT_EQ(im.at(1, 0), 6);
}

TEST(Pnm, MalformedInputsThrowIoError) {
  EXPECT_THROW(decode_pnm(""), IoError);
  EXPECT_THROW(decode_pnm("P9\n1 1\n255\n"), IoError);
  EXPECT_THROW(decode_pnm("P5\n0 1\n255\n"), IoError);          // zero width
  EXPECT_THROW(decode_pnm("P5\n2 2\n70000\n"), IoError);        // maxval
  EXPECT_THROW(decode_pnm("P5\n4 4\n255\nxx"), IoError);        // short raster
  EXPECT_THROW(decode_pnm("P2\n1 1\n255\n999\n"), IoError);     // > maxval
  EXPECT_THROW(decode_pnm("P5\nab cd\n255\n"), IoError);        // non-numeric
}

TEST(Pnm, FileRoundTrip) {
  const Image8 original = random_image(20, 10, 3, 7);
  const std::string path = ::testing::TempDir() + "/fe_io_test.ppm";
  write_pnm(path, original.view());
  const Image8 back = read_pnm(path);
  EXPECT_TRUE(equal_pixels<std::uint8_t>(original.view(), back.view()));
  std::remove(path.c_str());
}

TEST(Pnm, MissingFileThrows) {
  EXPECT_THROW(read_pnm("/nonexistent/nowhere.pgm"), IoError);
}

class BmpRoundTrip : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BmpRoundTrip, RgbEncodeDecodeIsIdentity) {
  // Widths chosen to hit every row-padding remainder (0..3 bytes).
  const auto [w, h] = GetParam();
  const Image8 original = random_image(w, h, 3, 13);
  const Image8 decoded = decode_bmp(encode_bmp(original.view()));
  EXPECT_TRUE(equal_pixels<std::uint8_t>(original.view(), decoded.view()));
}

INSTANTIATE_TEST_SUITE_P(PaddingWidths, BmpRoundTrip,
                         ::testing::Values(std::tuple{4, 3}, std::tuple{5, 3},
                                           std::tuple{6, 2}, std::tuple{7, 2},
                                           std::tuple{32, 8}));

TEST(Bmp, GrayReplicatesToRgb) {
  Image8 gray(3, 3, 1);
  gray.fill(99);
  const Image8 decoded = decode_bmp(encode_bmp(gray.view()));
  ASSERT_EQ(decoded.channels(), 3);
  EXPECT_EQ(decoded.at(1, 1, 0), 99);
  EXPECT_EQ(decoded.at(1, 1, 1), 99);
  EXPECT_EQ(decoded.at(1, 1, 2), 99);
}

TEST(Bmp, MalformedInputsThrow) {
  EXPECT_THROW(decode_bmp(""), IoError);
  EXPECT_THROW(decode_bmp("XX123456789012345678901234567890123456789012345678901234"),
               IoError);
  // Valid header but truncated raster.
  Image8 im(16, 16, 3);
  std::string bytes = encode_bmp(im.view());
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(decode_bmp(bytes), IoError);
}

TEST(Bmp, FileRoundTrip) {
  const Image8 original = random_image(9, 5, 3, 21);
  const std::string path = ::testing::TempDir() + "/fe_io_test.bmp";
  write_bmp(path, original.view());
  const Image8 back = read_bmp(path);
  EXPECT_TRUE(equal_pixels<std::uint8_t>(original.view(), back.view()));
  std::remove(path.c_str());
}

TEST(Bmp, EncodedSizeMatchesHeaderMath) {
  Image8 im(5, 4, 3);  // row 15 bytes -> padded 16
  const std::string bytes = encode_bmp(im.view());
  EXPECT_EQ(bytes.size(), 54u + 16u * 4u);
}

}  // namespace
}  // namespace fisheye::img
