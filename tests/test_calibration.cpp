// Calibration: exact recovery without noise, graceful degradation with
// noise, convergence history.
#include <gtest/gtest.h>

#include <cmath>

#include "calib/calibrate.hpp"
#include "util/mathx.hpp"

namespace fisheye::calib {
namespace {

using core::FisheyeCamera;
using core::LensKind;
using util::deg_to_rad;

FisheyeCamera truth_camera(double fov_deg = 170.0) {
  return FisheyeCamera::centered(LensKind::Equidistant, deg_to_rad(fov_deg),
                                 640, 480);
}

TEST(Correspondences, GeneratorProducesRequestedGrid) {
  const FisheyeCamera cam = truth_camera();
  util::Rng rng(1);
  const auto obs =
      make_grid_correspondences(cam, 7, deg_to_rad(70.0), 0.0, rng);
  EXPECT_EQ(obs.size(), 7u * 7u + 1u);
  for (const Correspondence& o : obs) {
    EXPECT_NEAR(o.ray.norm(), 1.0, 1e-12);
    EXPECT_GT(o.ray.z, -1e-12);
  }
}

TEST(Correspondences, NoiselessPointsReproject) {
  const FisheyeCamera cam = truth_camera();
  util::Rng rng(2);
  const auto obs =
      make_grid_correspondences(cam, 5, deg_to_rad(60.0), 0.0, rng);
  for (const Correspondence& o : obs) {
    const util::Vec2 proj = cam.project(o.ray);
    EXPECT_NEAR(proj.x, o.pixel.x, 1e-9);
    EXPECT_NEAR(proj.y, o.pixel.y, 1e-9);
  }
}

TEST(Calibrate, RecoversExactParametersWithoutNoise) {
  const FisheyeCamera cam = truth_camera();
  util::Rng rng(3);
  const auto obs =
      make_grid_correspondences(cam, 9, deg_to_rad(75.0), 0.0, rng);
  // Start 15% off in focal, 10 px off in centre.
  const CalibrationResult result =
      calibrate_radial(LensKind::Equidistant, obs,
                       cam.lens().focal() * 1.15, cam.cx() + 10.0,
                       cam.cy() - 8.0);
  EXPECT_NEAR(result.focal, cam.lens().focal(), 1e-4);
  EXPECT_NEAR(result.cx, cam.cx(), 1e-4);
  EXPECT_NEAR(result.cy, cam.cy(), 1e-4);
  EXPECT_LT(result.rms_error_px, 1e-5);
}

TEST(Calibrate, HandlesNoiseGracefully) {
  const FisheyeCamera cam = truth_camera();
  util::Rng rng(4);
  const double noise = 0.5;  // px, a typical detector sigma
  const auto obs =
      make_grid_correspondences(cam, 12, deg_to_rad(75.0), noise, rng);
  const CalibrationResult result = calibrate_radial(
      LensKind::Equidistant, obs, cam.lens().focal() * 1.1, cam.cx() + 5.0,
      cam.cy() + 5.0);
  // Parameter error bounded by a few times noise/sqrt(N).
  EXPECT_NEAR(result.focal, cam.lens().focal(), 1.0);
  EXPECT_NEAR(result.cx, cam.cx(), 1.0);
  EXPECT_NEAR(result.cy, cam.cy(), 1.0);
  // Residual floor is the injected noise, not zero.
  EXPECT_GT(result.rms_error_px, 0.2);
  EXPECT_LT(result.rms_error_px, 1.0);
}

TEST(Calibrate, ErrorHistoryIsMonotoneNonIncreasing) {
  const FisheyeCamera cam = truth_camera();
  util::Rng rng(5);
  const auto obs =
      make_grid_correspondences(cam, 8, deg_to_rad(70.0), 0.2, rng);
  const CalibrationResult result = calibrate_radial(
      LensKind::Equidistant, obs, cam.lens().focal() * 1.3, cam.cx() - 20.0,
      cam.cy() + 15.0);
  ASSERT_GE(result.error_history.size(), 2u);
  for (std::size_t i = 1; i < result.error_history.size(); ++i)
    EXPECT_LE(result.error_history[i], result.error_history[i - 1] + 1e-12);
  EXPECT_TRUE(result.converged);
}

TEST(Calibrate, WorksForOtherLensKinds) {
  for (const LensKind kind :
       {LensKind::Equisolid, LensKind::Stereographic}) {
    const FisheyeCamera cam =
        FisheyeCamera::centered(kind, deg_to_rad(160.0), 640, 480);
    util::Rng rng(6);
    const auto obs =
        make_grid_correspondences(cam, 9, deg_to_rad(70.0), 0.0, rng);
    const CalibrationResult result = calibrate_radial(
        kind, obs, cam.lens().focal() * 0.9, cam.cx(), cam.cy());
    EXPECT_NEAR(result.focal, cam.lens().focal(), 1e-3)
        << lens_kind_name(kind);
  }
}

TEST(Calibrate, WrongModelLeavesResidual) {
  // Fitting a rectilinear model to equidistant data cannot reach zero
  // residual — a sanity check that the optimizer reports honest errors.
  const FisheyeCamera cam = truth_camera();
  util::Rng rng(7);
  const auto obs =
      make_grid_correspondences(cam, 9, deg_to_rad(60.0), 0.0, rng);
  const CalibrationResult wrong = calibrate_radial(
      LensKind::Rectilinear, obs, cam.lens().focal(), cam.cx(), cam.cy());
  const CalibrationResult right = calibrate_radial(
      LensKind::Equidistant, obs, cam.lens().focal(), cam.cx(), cam.cy());
  EXPECT_GT(wrong.rms_error_px, 100.0 * std::max(right.rms_error_px, 1e-9));
  EXPECT_GT(wrong.rms_error_px, 1.0);
}

TEST(Calibrate, ContractsOnInputs) {
  const FisheyeCamera cam = truth_camera();
  util::Rng rng(8);
  const auto obs =
      make_grid_correspondences(cam, 5, deg_to_rad(60.0), 0.0, rng);
  EXPECT_THROW(calibrate_radial(LensKind::Equidistant, obs, -1.0, 0.0, 0.0),
               fisheye::InvalidArgument);
  EXPECT_THROW(calibrate_radial(LensKind::Equidistant, {}, 100.0, 0.0, 0.0),
               fisheye::InvalidArgument);
  EXPECT_THROW(
      make_grid_correspondences(cam, 2, deg_to_rad(60.0), 0.0, rng),
      fisheye::InvalidArgument);
}


TEST(CalibrateBrownConrady, RecoversSyntheticPolynomialCamera) {
  // Ground truth IS a Brown-Conrady camera: generate pixels through the
  // forward polynomial model and recover all six parameters.
  const double f = 400.0, cx = 320.0, cy = 240.0;
  const core::BrownConrady truth_model({-0.18, 0.03, -0.004, 0.0, 0.0}, f);
  std::vector<Correspondence> obs;
  for (int i = 1; i <= 10; ++i)
    for (int j = 0; j < 12; ++j) {
      const double theta = deg_to_rad(55.0) * i / 10.0;
      const double phi = 2.0 * util::kPi * j / 12.0 + 0.07 * i;
      const util::Vec3 ray{std::sin(theta) * std::cos(phi),
                           std::sin(theta) * std::sin(phi), std::cos(theta)};
      const util::Vec2 u{ray.x / ray.z, ray.y / ray.z};
      const util::Vec2 d = truth_model.distort_normalized(u);
      obs.push_back({ray, {f * d.x + cx, f * d.y + cy}});
    }
  const BrownConradyCalibration est =
      calibrate_brown_conrady(obs, f * 1.2, cx + 15.0, cy - 10.0);
  EXPECT_NEAR(est.focal, f, 1e-2);
  EXPECT_NEAR(est.cx, cx, 1e-2);
  EXPECT_NEAR(est.cy, cy, 1e-2);
  EXPECT_NEAR(est.coeffs.k1, -0.18, 1e-3);
  EXPECT_NEAR(est.coeffs.k2, 0.03, 5e-3);
  EXPECT_LT(est.rms_error_px, 1e-3);
}

TEST(CalibrateBrownConrady, ResidualOnTrueFisheyeExceedsExactModel) {
  // The classical estimator cannot drive the residual to the noise floor
  // on wide-angle equidistant data; the exact model can. This is the
  // calibration-side statement of T3.
  const FisheyeCamera truth = truth_camera(175.0);
  util::Rng rng(11);
  const auto obs = make_grid_correspondences(truth, 12, deg_to_rad(80.0),
                                             0.1, rng);
  const CalibrationResult exact = calibrate_radial(
      LensKind::Equidistant, obs, truth.lens().focal(), truth.cx(),
      truth.cy());
  const BrownConradyCalibration poly = calibrate_brown_conrady(
      obs, truth.lens().focal(), truth.cx(), truth.cy());
  EXPECT_LT(exact.rms_error_px, 0.3);
  EXPECT_GT(poly.rms_error_px, 5.0 * exact.rms_error_px);
}

TEST(CalibrateBrownConrady, BarrelSignRecovered) {
  const FisheyeCamera truth = truth_camera(160.0);
  util::Rng rng(12);
  const auto obs =
      make_grid_correspondences(truth, 10, deg_to_rad(60.0), 0.0, rng);
  const BrownConradyCalibration est = calibrate_brown_conrady(
      obs, truth.lens().focal(), truth.cx(), truth.cy());
  EXPECT_LT(est.coeffs.k1, 0.0);  // barrel
}

TEST(CalibrateBrownConrady, RejectsDegenerateInput) {
  std::vector<Correspondence> behind;
  for (int i = 0; i < 8; ++i)
    behind.push_back({{1.0, 0.0, 0.01}, {0.0, 0.0}});  // z too small
  EXPECT_THROW(calibrate_brown_conrady(behind, 100.0, 0.0, 0.0),
               fisheye::InvalidArgument);
  EXPECT_THROW(calibrate_brown_conrady({}, -1.0, 0.0, 0.0),
               fisheye::InvalidArgument);
}

}  // namespace
}  // namespace fisheye::calib
