// Process-sharding backend: correctness and supervision. The hard
// guarantees under test: shard output is bit-exact with serial (same
// scalar kernel, disjoint strips, regardless of which side of the fork
// computes a strip); a SIGKILLed worker costs at most frame latency —
// never a wrong pixel — and is respawned; a stopped (silent) worker is
// detected as stalled and its strips lease back to the supervisor; the
// ring's generation counters survive slot reuse (wraparound) with
// distinct per-frame content.
#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <memory>
#include <thread>

#include "core/backend_registry.hpp"
#include "core/corrector.hpp"
#include "image/image.hpp"
#include "runtime/timer.hpp"
#include "shard/shard_backend.hpp"
#include "util/mathx.hpp"
#include "video/pipeline.hpp"

namespace fisheye::shard {
namespace {

using core::Corrector;
using util::deg_to_rad;

constexpr int kW = 96;
constexpr int kH = 64;

img::Image8 fisheye_frame(int index, int ch = 1) {
  const auto cam = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, deg_to_rad(180.0), kW, kH);
  const video::SyntheticVideoSource source(cam, kW, kH, ch);
  return source.frame(index);
}

/// Wait (bounded) until `pred` holds; returns whether it did.
template <class Pred>
bool eventually(Pred pred, double timeout_s = 10.0) {
  const rt::Stopwatch sw;
  while (sw.elapsed_seconds() < timeout_s) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

struct Harness {
  Corrector corr = Corrector::builder(kW, kH).fov_degrees(180.0).build();
  core::SerialBackend serial;

  img::Image8 reference(const img::Image8& src) {
    img::Image8 ref(kW, kH, src.view().channels);
    corr.correct(src.view(), ref.view(), serial);
    return ref;
  }
};

TEST(Shard, MatchesSerialBitExact) {
  Harness h;
  for (const int ch : {1, 3}) {
    ShardOptions o;
    o.workers = 4;
    o.heartbeat_ms = 20;
    ShardBackend backend(o);
    const Corrector::Prepared prepared = h.corr.prepare(backend, ch);
    for (int i = 0; i < 4; ++i) {
      const img::Image8 src = fisheye_frame(i, ch);
      const img::Image8 ref = h.reference(src);
      img::Image8 out(kW, kH, ch);
      h.corr.correct(prepared, src.view(), out.view());
      EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()))
          << backend.name() << " ch=" << ch << " frame " << i;
    }
    const rt::ShardStats st = backend.last_stats();
    EXPECT_EQ(st.workers, 4);
    EXPECT_EQ(st.frames, 4u);
    EXPECT_EQ(st.respawns, 0u);
  }
}

TEST(Shard, RingWraparoundKeepsFramesDistinct) {
  // ring=2 forces slot reuse from the third frame on; every frame must
  // still match its own serial reference (generation counters keep a
  // late worker from computing a reused slot's old content).
  Harness h;
  ShardOptions o;
  o.workers = 2;
  o.ring = 2;
  o.heartbeat_ms = 20;
  ShardBackend backend(o);
  const Corrector::Prepared prepared = h.corr.prepare(backend, 1);
  for (int i = 0; i < 6; ++i) {
    const img::Image8 src = fisheye_frame(i);
    const img::Image8 ref = h.reference(src);
    img::Image8 out(kW, kH, 1);
    h.corr.correct(prepared, src.view(), out.view());
    EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()))
        << "frame " << i;
  }
}

TEST(Shard, KilledWorkerIsRespawnedAndFramesStayBitExact) {
  Harness h;
  ShardOptions o;
  o.workers = 3;
  o.heartbeat_ms = 20;
  o.timeout_ms = 300;
  ShardBackend backend(o);
  const Corrector::Prepared prepared = h.corr.prepare(backend, 1);

  const img::Image8 src = fisheye_frame(0);
  const img::Image8 ref = h.reference(src);
  img::Image8 out(kW, kH, 1);
  h.corr.correct(prepared, src.view(), out.view());
  ASSERT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()));

  std::vector<ShardWorkerInfo> info = backend.workers_info();
  ASSERT_EQ(info.size(), 3u);
  const long victim = info[1].pid;
  ASSERT_GT(victim, 0);
  ASSERT_EQ(kill(static_cast<pid_t>(victim), SIGKILL), 0);

  // Every frame during the outage is complete and bit-exact — the
  // supervisor computes the dead shard's strip itself.
  for (int i = 0; i < 3; ++i) {
    out.fill(0);
    h.corr.correct(prepared, src.view(), out.view());
    EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()))
        << "frame during outage " << i;
  }

  // The monitor reaps and respawns shard 1 with a bumped epoch.
  ASSERT_TRUE(eventually([&] {
    const std::vector<ShardWorkerInfo> now = backend.workers_info();
    return now[1].live && now[1].pid > 0 && now[1].pid != victim &&
           now[1].epoch >= 2;
  })) << "worker was not respawned";
  EXPECT_GE(backend.last_stats().respawns, 1u);

  // Post-recovery frames are bit-exact, and the respawned worker takes
  // its strip back (a frame with no supervisor fallback).
  ASSERT_TRUE(eventually([&] {
    out.fill(0);
    h.corr.correct(prepared, src.view(), out.view());
    EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()));
    return prepared.plan.instrumentation().fallback_strips == 0;
  })) << "respawned worker never resumed computing its strip";
}

TEST(Shard, StalledWorkerLeasesStripToSupervisor) {
  Harness h;
  ShardOptions o;
  o.workers = 2;
  o.heartbeat_ms = 20;
  o.timeout_ms = 150;
  ShardBackend backend(o);
  const Corrector::Prepared prepared = h.corr.prepare(backend, 1);

  const img::Image8 src = fisheye_frame(0);
  const img::Image8 ref = h.reference(src);
  img::Image8 out(kW, kH, 1);
  h.corr.correct(prepared, src.view(), out.view());
  ASSERT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()));

  const long victim = backend.workers_info()[0].pid;
  ASSERT_GT(victim, 0);
  ASSERT_EQ(kill(static_cast<pid_t>(victim), SIGSTOP), 0);

  // Frames stay bit-exact while the worker is silent; the monitor marks
  // it stalled (backpressure: the supervisor stops waiting on it).
  ASSERT_TRUE(eventually([&] {
    out.fill(0);
    h.corr.correct(prepared, src.view(), out.view());
    EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()));
    return backend.last_stats().stalls >= 1;
  })) << "stall was never detected";

  // Once stalled, frames no longer pay the deadline wait for that shard.
  out.fill(0);
  h.corr.correct(prepared, src.view(), out.view());
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()));
  EXPECT_GE(prepared.plan.instrumentation().fallback_strips, 1u);

  // Resume (or, if the supervisor already escalated to SIGKILL, respawn):
  // either way the shard must come back live, and frames stay bit-exact.
  kill(static_cast<pid_t>(victim), SIGCONT);
  ASSERT_TRUE(eventually([&] {
    return backend.workers_info()[0].live;
  })) << "worker never came back after SIGCONT";
  out.fill(0);
  h.corr.correct(prepared, src.view(), out.view());
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()));
}

TEST(Shard, ZeroCopyIngestSkipsSourceTransport) {
  Harness h;
  ShardOptions o;
  o.workers = 2;
  o.heartbeat_ms = 20;
  ShardBackend backend(o);
  const Corrector::Prepared prepared = h.corr.prepare(backend, 1);

  const img::Image8 src = fisheye_frame(0);
  const img::Image8 ref = h.reference(src);
  img::Image8 out(kW, kH, 1);

  // Copied path: transport counts the source.
  h.corr.correct(prepared, src.view(), out.view());
  const rt::ShardStats copied = backend.last_stats();
  EXPECT_GT(copied.transport_in_bytes, 0u);

  // Zero-copy path: render straight into the ring slot the next frame
  // reads; execute() detects the aliasing and skips the staging copy.
  const img::View8 in = backend.next_input();
  ASSERT_EQ(in.width, kW);
  ASSERT_EQ(in.height, kH);
  for (int y = 0; y < kH; ++y)
    std::memcpy(in.row(y), src.view().row(y), static_cast<std::size_t>(kW));
  out.fill(0);
  h.corr.correct(prepared, in, out.view());
  const rt::ShardStats zero = backend.last_stats();
  EXPECT_EQ(zero.transport_in_bytes, copied.transport_in_bytes)
      << "zero-copy frame still staged its source";
  EXPECT_GT(zero.transport_out_bytes, copied.transport_out_bytes);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()));
}

TEST(Shard, RegistrySpecRoundTripsAndClampsToRows) {
  const std::unique_ptr<core::Backend> b =
      core::BackendRegistry::create("shard:4");
  EXPECT_EQ(b->name(), "shard:workers=4");
  const std::unique_ptr<core::Backend> b2 =
      core::BackendRegistry::create(b->name());
  EXPECT_EQ(b2->name(), b->name());
  EXPECT_EQ(core::BackendRegistry::create("shard:2,ring=2,timeout_ms=100")
                ->name(),
            "shard:workers=2,ring=2,timeout_ms=100");

  // More workers than output rows: the plan clamps the fleet, and the
  // tiny frame still corrects bit-exactly.
  Harness h;
  ShardOptions o;
  o.workers = 16;
  o.heartbeat_ms = 20;
  ShardBackend wide(o);
  const Corrector tiny = Corrector::builder(32, 8).fov_degrees(180.0).build();
  const auto cam = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, deg_to_rad(180.0), 32, 8);
  const video::SyntheticVideoSource source(cam, 32, 8, 1);
  const img::Image8 src = source.frame(0);
  img::Image8 ref(32, 8, 1), out(32, 8, 1);
  tiny.correct(src.view(), ref.view(), h.serial);
  tiny.correct(src.view(), out.view(), wide);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()));
  EXPECT_EQ(wide.last_stats().workers, 8);  // one strip per row
}

TEST(Shard, DescribeSurfacesTransportCounters) {
  Harness h;
  ShardOptions o;
  o.workers = 2;
  o.heartbeat_ms = 20;
  ShardBackend backend(o);
  const Corrector::Prepared prepared = h.corr.prepare(backend, 1);
  const img::Image8 src = fisheye_frame(0);
  img::Image8 out(kW, kH, 1);
  h.corr.correct(prepared, src.view(), out.view());
  EXPECT_NE(prepared.plan.describe().find("shard[transport="),
            std::string::npos)
      << prepared.plan.describe();
  EXPECT_EQ(prepared.plan.tile_stats().transport_bytes,
            prepared.plan.instrumentation().transport_bytes);
}

}  // namespace
}  // namespace fisheye::shard
