// CompactMap contract tests: build validation, reconstruction-error bounds
// and bookkeeping, stride-1 bit-exactness against the packed kernel, SoA /
// cell / FPGA kernel agreement with the scalar reference, and the
// source_bbox superset property the accelerator DMA path relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "accel/fpga_platform.hpp"
#include "accel/spe_platform.hpp"
#include "core/backend_registry.hpp"
#include "core/corrector.hpp"
#include "core/mapping.hpp"
#include "core/remap.hpp"
#include "image/metrics.hpp"
#include "simd/remap_simd.hpp"
#include "util/mathx.hpp"
#include "video/pipeline.hpp"

namespace fisheye::core {
namespace {

using util::deg_to_rad;

WarpMap test_map(int w = 96, int h = 64, LensKind kind = LensKind::Equidistant,
                 double fov_deg = 180.0) {
  const auto cam = FisheyeCamera::centered(kind, deg_to_rad(fov_deg), w, h);
  const PerspectiveView view(w, h, cam.lens().focal());
  return build_map(cam, view);
}

img::Image8 test_input(int w, int h) {
  const auto cam = FisheyeCamera::centered(LensKind::Equidistant,
                                           deg_to_rad(180.0), w, h);
  return video::SyntheticVideoSource(cam, w, h, 1).frame(0);
}

// --- build validation -------------------------------------------------------

TEST(CompactMap, BuildValidatesArguments) {
  const WarpMap map = test_map(32, 24);
  EXPECT_THROW(compact_map(map, 32, 24, 0), InvalidArgument);
  EXPECT_THROW(compact_map(map, 32, 24, 3), InvalidArgument);    // not pow2
  EXPECT_THROW(compact_map(map, 32, 24, 128), InvalidArgument);  // > 64
  EXPECT_THROW(compact_map(map, 32, 24, 8, 0), InvalidArgument);
  EXPECT_THROW(compact_map(map, 32, 24, 8, 17), InvalidArgument);
}

TEST(CompactMap, GridDimensionsAndBytes) {
  const WarpMap map = test_map(96, 64);
  const CompactMap cm = compact_map(map, 96, 64, 8);
  EXPECT_EQ(cm.grid_w, (96 - 1) / 8 + 2);
  EXPECT_EQ(cm.grid_h, (64 - 1) / 8 + 2);
  EXPECT_EQ(cm.bytes(), static_cast<std::size_t>(cm.grid_w) * cm.grid_h * 8);
  // The point of the representation: far smaller than the 8 B/px packed LUT.
  EXPECT_LT(cm.bytes(), pack_map(map, 96, 64).bytes() / 16);
}

// --- reconstruction error ---------------------------------------------------

TEST(CompactMap, StrideEightErrorUnderQuarterPixel) {
  // The acceptance bound from the study: for the standard test cameras the
  // warp field is smooth enough that an 8-pixel grid reconstructs every
  // source coordinate to better than a quarter pixel.
  struct Case {
    LensKind kind;
    double fov_deg;
  };
  const Case cases[] = {{LensKind::Equidistant, 180.0},
                        {LensKind::Equisolid, 150.0},
                        {LensKind::Stereographic, 160.0}};
  for (const Case& c : cases) {
    const WarpMap map = test_map(320, 240, c.kind, c.fov_deg);
    const CompactMap cm = compact_map(map, 320, 240, 8);
    EXPECT_LT(cm.max_error, 0.25f)
        << lens_kind_name(c.kind) << " " << c.fov_deg;
    EXPECT_LE(cm.mean_error, cm.max_error);
  }
}

TEST(CompactMap, StoredErrorMatchesBruteForceRecomputation) {
  const WarpMap map = test_map(96, 64);
  const CompactMap cm = compact_map(map, 96, 64, 8);
  const double scale = static_cast<double>(std::int64_t{1} << cm.frac_bits);
  double max_err = 0.0, sum_err = 0.0;
  std::size_t valid = 0;
  for (int y = 0; y < map.height; ++y) {
    for (int x = 0; x < map.width; ++x) {
      const double sx = map.src_x[map.index(x, y)];
      const double sy = map.src_y[map.index(x, y)];
      if (sx <= -1.0 || sy <= -1.0 || sx >= 96.0 || sy >= 64.0) continue;
      const CompactEntry e = reconstruct_entry(cm, x, y);
      const double err = std::max(std::abs(e.fx / scale - sx),
                                  std::abs(e.fy / scale - sy));
      max_err = std::max(max_err, err);
      sum_err += err;
      ++valid;
    }
  }
  ASSERT_GT(valid, 0u);
  EXPECT_FLOAT_EQ(cm.max_error, static_cast<float>(max_err));
  EXPECT_FLOAT_EQ(cm.mean_error,
                  static_cast<float>(sum_err / static_cast<double>(valid)));
}

TEST(CompactMap, StrideOneReconstructionIsQuantizationOnly) {
  // stride == 1 stores every pixel: the only residual is fixed-point
  // rounding, half an lsb at frac_bits = 14.
  const WarpMap map = test_map(64, 48);
  const CompactMap cm = compact_map(map, 64, 48, 1);
  EXPECT_LE(cm.max_error, 0.5 / 16384.0 + 1e-7);
}

// --- kernel agreement -------------------------------------------------------

TEST(CompactMap, StrideOneRemapMatchesPackedBitExact) {
  const int w = 96, h = 64;
  const WarpMap map = test_map(w, h);
  const PackedMap packed = pack_map(map, w, h, 14);
  const CompactMap cm = compact_map(map, w, h, 1, 14);
  const img::Image8 src = test_input(w, h);
  img::Image8 a(w, h, 1), b(w, h, 1);
  remap_packed_rect(src.view(), a.view(), packed, {0, 0, w, h}, 0);
  remap_compact_rect(src.view(), b.view(), cm, {0, 0, w, h}, 0);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(a.view(), b.view()));
}

TEST(CompactMap, SoaKernelMatchesScalarBitExact) {
  const int w = 112, h = 80;
  const WarpMap map = test_map(w, h);
  const img::Image8 src = test_input(w, h);
  for (const int stride : {1, 4, 8, 16}) {
    const CompactMap cm = compact_map(map, w, h, stride);
    img::Image8 a(w, h, 1), b(w, h, 1);
    a.fill(7);
    b.fill(7);
    // Full frame plus an offset interior rect: both paths must agree on
    // rect handling, not just on (0,0)-anchored strips.
    simd::SoaScratch scratch;
    for (const par::Rect rect :
         {par::Rect{0, 0, w, h}, par::Rect{13, 9, w - 5, h - 3}}) {
      remap_compact_rect(src.view(), a.view(), cm, rect, 0);
      simd::remap_compact_soa(src.view(), b.view(), cm, rect, 0, scratch);
    }
    EXPECT_TRUE(img::equal_pixels<std::uint8_t>(a.view(), b.view()))
        << "stride=" << stride;
  }
}

TEST(CompactMap, CellPlatformMatchesScalarKernel) {
  const int w = 160, h = 120;
  const WarpMap map = test_map(w, h);
  const CompactMap cm = compact_map(map, w, h, 8);
  const img::Image8 src = test_input(w, h);
  img::Image8 ref(w, h, 1), out(w, h, 1);
  remap_compact_rect(src.view(), ref.view(), cm, {0, 0, w, h}, 0);

  accel::CellLikePlatform platform(cm, 1, accel::SpeConfig{});
  const accel::AccelFrameStats stats =
      platform.run_frame(src.view(), out.view(), 0);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()));

  // The representational win the cost model must reflect: per-frame DMA-in
  // drops well below the float platform's (which streams 8 B/px of map).
  accel::CellLikePlatform fplatform(map, w, h, 1, accel::SpeConfig{});
  img::Image8 fout(w, h, 1);
  const accel::AccelFrameStats fstats =
      fplatform.run_frame(src.view(), fout.view(), 0);
  EXPECT_LT(stats.bytes_in, fstats.bytes_in);
}

TEST(CompactMap, FpgaPlatformMatchesScalarKernel) {
  const int w = 160, h = 120;
  const WarpMap map = test_map(w, h);
  const CompactMap cm = compact_map(map, w, h, 8);
  const img::Image8 src = test_input(w, h);
  img::Image8 ref(w, h, 1), out(w, h, 1);
  remap_compact_rect(src.view(), ref.view(), cm, {0, 0, w, h}, 0);

  accel::FpgaPlatform fpga(cm, accel::FpgaConfig{});
  const accel::AccelFrameStats stats =
      fpga.run_frame(src.view(), out.view(), 0);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()));

  // A 160x120 stride-8 grid is a few KB: it must fit the BRAM budget, and
  // then the modeled per-frame DDR traffic carries no LUT bytes at all --
  // strictly less than the packed platform's, which streams its whole LUT.
  EXPECT_TRUE(fpga.lut_on_chip());
  const PackedMap packed = pack_map(map, w, h, 14);
  accel::FpgaPlatform pfpga(packed, accel::FpgaConfig{});
  img::Image8 pout(w, h, 1);
  const accel::AccelFrameStats pstats =
      pfpga.run_frame(src.view(), pout.view(), 0);
  EXPECT_LT(stats.bytes_in, pstats.bytes_in - packed.bytes() / 2);
}

// --- source_bbox / valid_fraction ------------------------------------------

TEST(CompactMap, SourceBboxCoversEveryReconstructedFootprint) {
  const int w = 96, h = 64;
  const WarpMap map = test_map(w, h);
  for (const int stride : {4, 8, 16}) {
    const CompactMap cm = compact_map(map, w, h, stride);
    const std::int32_t one = std::int32_t{1} << cm.frac_bits;
    const std::int32_t lim_x = std::int32_t{w} << cm.frac_bits;
    const std::int32_t lim_y = std::int32_t{h} << cm.frac_bits;
    for (const par::Rect rect :
         {par::Rect{0, 0, w, h}, par::Rect{0, 0, 17, 13},
          par::Rect{40, 24, 96, 64}, par::Rect{33, 17, 57, 39}}) {
      const par::Rect box = source_bbox(cm, rect);
      for (int y = rect.y0; y < rect.y1; ++y) {
        for (int x = rect.x0; x < rect.x1; ++x) {
          CompactEntry e = reconstruct_entry(cm, x, y);
          if (e.fx <= -one || e.fy <= -one || e.fx >= lim_x || e.fy >= lim_y)
            continue;  // invalid: filled, samples nothing
          ASSERT_FALSE(box.empty());
          // Clamp exactly as the kernel does, then the taps must fall
          // inside the box -- this is what lets the cell kernel index its
          // DMA window without bounds checks.
          e.fx = std::clamp(e.fx, std::int32_t{0}, lim_x - one);
          e.fy = std::clamp(e.fy, std::int32_t{0}, lim_y - one);
          const int ix = e.fx >> cm.frac_bits;
          const int iy = e.fy >> cm.frac_bits;
          const int ix1 = ix + 1 < w ? ix + 1 : ix;
          const int iy1 = iy + 1 < h ? iy + 1 : iy;
          ASSERT_GE(ix, box.x0) << stride << " " << x << "," << y;
          ASSERT_GE(iy, box.y0) << stride << " " << x << "," << y;
          ASSERT_LT(ix1, box.x1) << stride << " " << x << "," << y;
          ASSERT_LT(iy1, box.y1) << stride << " " << x << "," << y;
        }
      }
    }
  }
}

TEST(CompactMap, ValidFractionMatchesPerPixelCount) {
  // A view wider than the lens field: the corners map outside the source,
  // so the fraction is meaningfully inside (0, 1).
  const int w = 96, h = 64;
  const auto cam = FisheyeCamera::centered(LensKind::Equidistant,
                                           deg_to_rad(100.0), w, h);
  const PerspectiveView view(w, h, cam.lens().focal() * 0.4);
  const WarpMap map = build_map(cam, view);
  const CompactMap cm = compact_map(map, w, h, 8);
  std::size_t valid = 0;
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      if (compact_entry_valid(cm, reconstruct_entry(cm, x, y))) ++valid;
  EXPECT_NEAR(valid_fraction(cm),
              static_cast<double>(valid) / (static_cast<double>(w) * h),
              1e-12);
  EXPECT_GT(valid_fraction(cm), 0.1);
  EXPECT_LT(valid_fraction(cm), 1.0);
}

// --- corrector / registry integration ---------------------------------------

TEST(CompactMap, CorrectorBuildsCompactLut) {
  const int w = 128, h = 96;
  const Corrector corr = Corrector::builder(w, h)
                             .map_mode(MapMode::CompactLut)
                             .compact_stride(8)
                             .build();
  ASSERT_NE(corr.compact(), nullptr);
  EXPECT_EQ(corr.compact()->stride, 8);
  EXPECT_LT(corr.compact()->max_error, 0.25f);

  const img::Image8 src = test_input(w, h);
  img::Image8 ref(w, h, 1), out(w, h, 1);
  remap_compact_rect(src.view(), ref.view(), *corr.compact(), {0, 0, w, h},
                     0);
  const auto serial = core::BackendRegistry::create("serial");
  corr.correct(src.view(), out.view(), *serial);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(ref.view(), out.view()));
}

TEST(CompactMap, MapSpecConvertsAtPlanTimeAndIsPlanIdentity) {
  // A float-LUT corrector driven through backends that convert at plan
  // time: compact:1 must reproduce the packed datapath bit-exactly, and
  // the canonical names (the plan identity) must distinguish the formats.
  const int w = 160, h = 120;
  const img::Image8 src = test_input(w, h);
  const Corrector corr = Corrector::builder(w, h).build();  // FloatLut

  const auto packed = core::BackendRegistry::create("pool:threads=2,map=packed");
  const auto compact1 =
      core::BackendRegistry::create("pool:threads=2,map=compact:1");
  const auto compact8 =
      core::BackendRegistry::create("pool:threads=2,map=compact:8");
  EXPECT_NE(packed->name(), compact1->name());
  EXPECT_NE(compact1->name(), compact8->name());

  img::Image8 a(w, h, 1), b(w, h, 1), c(w, h, 1);
  corr.correct(src.view(), a.view(), *packed);
  corr.correct(src.view(), b.view(), *compact1);
  corr.correct(src.view(), c.view(), *compact8);
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(a.view(), b.view()));
  // stride 8 trades < 0.25 px of coordinate error; the image stays close
  // to the exact-LUT result everywhere.
  EXPECT_GT(img::psnr(a.view(), c.view()), 30.0);
}

}  // namespace
}  // namespace fisheye::core
