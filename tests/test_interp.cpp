// Interpolation kernels: exactness, ordering, border behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "core/interp.hpp"
#include "core/kernel.hpp"
#include "image/synth.hpp"
#include "util/rng.hpp"

namespace fisheye::core {
namespace {

img::Image8 constant_image(int w, int h, std::uint8_t v) {
  img::Image8 im(w, h, 1);
  im.fill(v);
  return im;
}

/// Linear ramp f(x, y) = 10 + 3x + 2y (exactly representable up to u8 range).
img::Image8 ramp_image(int w, int h) {
  img::Image8 im(w, h, 1);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      im.at(x, y) = static_cast<std::uint8_t>(10 + 3 * x + 2 * y);
  return im;
}

class AllKernels : public ::testing::TestWithParam<Interp> {};

TEST_P(AllKernels, ReproducesConstantImagesExactly) {
  const img::Image8 im = constant_image(32, 32, 137);
  util::Rng rng(5);
  std::uint8_t out = 0;
  for (int i = 0; i < 200; ++i) {
    const float sx = static_cast<float>(rng.uniform(3.0, 28.0));
    const float sy = static_cast<float>(rng.uniform(3.0, 28.0));
    sample_kernel(GetParam())(im.view(), sx, sy, img::BorderMode::Constant, 0,
                              &out);
    EXPECT_EQ(out, 137) << interp_name(GetParam()) << " at " << sx << ','
                        << sy;
  }
}

TEST_P(AllKernels, ExactAtIntegerCoordinates) {
  util::Rng rng(9);
  img::Image8 im(16, 16, 1);
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x)
      im.at(x, y) = static_cast<std::uint8_t>(rng.next_below(256));
  std::uint8_t out = 0;
  for (int y = 4; y < 12; ++y)
    for (int x = 4; x < 12; ++x) {
      sample_kernel(GetParam())(im.view(), static_cast<float>(x),
                                static_cast<float>(y),
                                img::BorderMode::Constant, 0, &out);
      EXPECT_EQ(out, im.at(x, y))
          << interp_name(GetParam()) << " at " << x << ',' << y;
    }
}

TEST_P(AllKernels, HandlesMultiChannel) {
  img::Image8 im(8, 8, 3);
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x)
      for (int c = 0; c < 3; ++c)
        im.at(x, y, c) = static_cast<std::uint8_t>(40 * c + 10);
  std::uint8_t out[3] = {};
  sample_kernel(GetParam())(im.view(), 3.4f, 4.6f, img::BorderMode::Constant,
                            0, out);
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[1], 50);
  EXPECT_EQ(out[2], 90);
}

INSTANTIATE_TEST_SUITE_P(Kernels, AllKernels,
                         ::testing::Values(Interp::Nearest, Interp::Bilinear,
                                           Interp::Bicubic, Interp::Lanczos3),
                         [](const auto& pinfo) {
                           return std::string(interp_name(pinfo.param));
                         });

TEST(Nearest, PicksClosestSample) {
  img::Image8 im(4, 4, 1);
  im.at(2, 1) = 200;
  std::uint8_t out = 0;
  sample_nearest(im.view(), 2.4f, 1.4f, img::BorderMode::Constant, 0, &out);
  EXPECT_EQ(out, 200);
  sample_nearest(im.view(), 2.6f, 1.4f, img::BorderMode::Constant, 0, &out);
  EXPECT_EQ(out, im.at(3, 1));
}

TEST(Bilinear, ExactOnLinearRamp) {
  const img::Image8 im = ramp_image(32, 32);
  std::uint8_t out = 0;
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double sx = rng.uniform(1.0, 30.0);
    const double sy = rng.uniform(1.0, 30.0);
    sample_bilinear(im.view(), static_cast<float>(sx), static_cast<float>(sy),
                    img::BorderMode::Constant, 0, &out);
    const double expect = 10.0 + 3.0 * sx + 2.0 * sy;
    EXPECT_NEAR(out, expect, 0.75) << sx << ',' << sy;
  }
}

TEST(Bilinear, MidpointAveragesFourTaps) {
  img::Image8 im(2, 2, 1);
  im.at(0, 0) = 0;
  im.at(1, 0) = 100;
  im.at(0, 1) = 200;
  im.at(1, 1) = 100;
  std::uint8_t out = 0;
  sample_bilinear(im.view(), 0.5f, 0.5f, img::BorderMode::Constant, 0, &out);
  EXPECT_EQ(out, 100);  // (0+100+200+100)/4
}

TEST(Bilinear, ConstantBorderBlendsWithFill) {
  img::Image8 im(2, 2, 1);
  im.fill(100);
  std::uint8_t out = 0;
  // Half a pixel outside the left edge: 50/50 fill and edge sample.
  sample_bilinear(im.view(), -0.5f, 0.0f, img::BorderMode::Constant, 20, &out);
  EXPECT_EQ(out, 60);
}

TEST(Bilinear, ReplicateBorderClampsOutside) {
  img::Image8 im(2, 2, 1);
  im.at(0, 0) = 50;
  im.at(1, 0) = 50;
  im.at(0, 1) = 90;
  im.at(1, 1) = 90;
  std::uint8_t out = 0;
  sample_bilinear(im.view(), 0.5f, -3.0f, img::BorderMode::Replicate, 0, &out);
  EXPECT_EQ(out, 50);  // clamped to top row
  sample_bilinear(im.view(), 0.5f, 5.0f, img::BorderMode::Replicate, 0, &out);
  EXPECT_EQ(out, 90);
}

TEST(Bicubic, OvershootIsClampedToU8) {
  // A step edge makes Catmull-Rom overshoot; the result must clamp, not
  // wrap.
  img::Image8 im(8, 1, 1);
  for (int x = 0; x < 8; ++x) im.at(x, 0) = x < 4 ? 0 : 255;
  std::uint8_t out = 0;
  for (float sx = 2.0f; sx < 6.0f; sx += 0.1f) {
    sample_bicubic(im.view(), sx, 0.0f, img::BorderMode::Replicate, 0, &out);
    // No assertion on exact value; clamping itself is the property and the
    // u8 type guarantees range. Check monotone-ish envelope instead:
    SUCCEED();
  }
  sample_bicubic(im.view(), 3.5f, 0.0f, img::BorderMode::Replicate, 0, &out);
  EXPECT_GT(out, 100);
  EXPECT_LT(out, 160);  // midpoint of the edge, not an overshoot artifact
}

TEST(SmoothSignal, HigherOrderKernelsAreMoreAccurate) {
  // Sample a smooth 2D cosine at off-grid points; bicubic and lanczos must
  // beat bilinear in RMS error.
  const int n = 64;
  img::Image8 im(n, n, 1);
  auto f = [](double x, double y) {
    return 127.5 + 80.0 * std::cos(x * 0.35) * std::cos(y * 0.28);
  };
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x)
      im.at(x, y) = static_cast<std::uint8_t>(std::lround(f(x, y)));

  util::Rng rng(11);
  double err_bil = 0.0, err_cub = 0.0, err_lan = 0.0;
  const int samples = 500;
  for (int i = 0; i < samples; ++i) {
    const double sx = rng.uniform(8.0, n - 9.0);
    const double sy = rng.uniform(8.0, n - 9.0);
    std::uint8_t o_bil, o_cub, o_lan;
    sample_bilinear(im.view(), static_cast<float>(sx), static_cast<float>(sy),
                    img::BorderMode::Constant, 0, &o_bil);
    sample_bicubic(im.view(), static_cast<float>(sx), static_cast<float>(sy),
                   img::BorderMode::Constant, 0, &o_cub);
    sample_lanczos3(im.view(), static_cast<float>(sx), static_cast<float>(sy),
                    img::BorderMode::Constant, 0, &o_lan);
    const double truth = f(sx, sy);
    err_bil += util::sq(o_bil - truth);
    err_cub += util::sq(o_cub - truth);
    err_lan += util::sq(o_lan - truth);
  }
  EXPECT_LT(err_cub, err_bil);
  EXPECT_LT(err_lan, err_bil);
}

TEST(Lanczos3, WeightsAreNormalized) {
  // A constant image must be reproduced exactly even at awkward phases —
  // covered above — and the weight function itself satisfies w(0)=1,
  // w(1)=w(2)=0.
  EXPECT_NEAR(detail::lanczos3_weight(0.0f), 1.0f, 1e-6f);
  EXPECT_NEAR(detail::lanczos3_weight(1.0f), 0.0f, 1e-6f);
  EXPECT_NEAR(detail::lanczos3_weight(2.0f), 0.0f, 1e-6f);
  EXPECT_EQ(detail::lanczos3_weight(3.0f), 0.0f);
}

TEST(Cubic, CatmullRomProperties) {
  EXPECT_NEAR(detail::cubic_weight(0.0f), 1.0f, 1e-6f);
  EXPECT_NEAR(detail::cubic_weight(1.0f), 0.0f, 1e-6f);
  EXPECT_EQ(detail::cubic_weight(2.0f), 0.0f);
  // Partition of unity at any phase.
  for (float t = 0.0f; t < 1.0f; t += 0.1f) {
    float sum = 0.0f;
    for (int i = -1; i <= 2; ++i)
      sum += detail::cubic_weight(static_cast<float>(i) - t);
    EXPECT_NEAR(sum, 1.0f, 1e-5f) << t;
  }
}

TEST(InterpMeta, SupportLadder) {
  EXPECT_EQ(interp_support(Interp::Nearest), 1);
  EXPECT_EQ(interp_support(Interp::Bilinear), 2);
  EXPECT_EQ(interp_support(Interp::Bicubic), 4);
  EXPECT_EQ(interp_support(Interp::Lanczos3), 6);
}

}  // namespace
}  // namespace fisheye::core
