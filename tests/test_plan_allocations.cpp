// The tentpole guarantee of the plan/execute split: once a plan is built
// and warmed up, steady-state execute() performs ZERO heap allocations on
// every CPU backend — the Workspace arena (tiles, steal order/runs,
// resplit buffers, SoA scratch) and the instrumentation slots are all
// sized at plan time or during the first frames.
//
// The hook is a counting global operator new: warm the plan for a few
// frames (lazy pool spin-up, vector capacity growth, libgomp internals),
// snapshot the counter, run more frames, and require a zero delta.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>

#include "core/backend.hpp"
#include "core/backend_registry.hpp"
#include "core/corrector.hpp"
#include "core/mapping.hpp"
#include "core/projection.hpp"
#include "image/image.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/server.hpp"
#include "stream/stream_executor.hpp"
#include "util/mathx.hpp"

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size) != 0)
    throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace fisheye::core {
namespace {

using util::deg_to_rad;

constexpr int kW = 96;
constexpr int kH = 64;

struct Frame {
  img::Image8 src{kW, kH, 1};
  img::Image8 dst{kW, kH, 1};
  WarpMap map;
  CompactMap cmap;

  Frame() {
    const FisheyeCamera cam = FisheyeCamera::centered(
        LensKind::Equidistant, deg_to_rad(170.0), kW, kH);
    const PerspectiveView view(kW, kH, cam.lens().focal());
    map = build_map(cam, view);
    cmap = compact_map(map, kW, kH, 4);
    src.fill(100);
  }

  [[nodiscard]] ExecContext ctx(MapMode mode = MapMode::FloatLut) {
    ExecContext c;
    c.src = src.view();
    c.dst = dst.view();
    if (mode == MapMode::CompactLut) {
      c.compact = &cmap;
    } else {
      c.map = &map;
    }
    c.mode = mode;
    return c;
  }
};

void expect_zero_steady_state_allocs(const std::string& spec,
                                     MapMode mode = MapMode::FloatLut) {
  Frame frame;
  const std::unique_ptr<Backend> backend = BackendRegistry::create(spec);
  const ExecContext ctx = frame.ctx(mode);
  const ExecutionPlan plan = backend->plan(ctx);
  // Warmup: first frames may lazily spin up pools, grow steal-deque and
  // instrumentation capacity, or touch allocator-backed TLS.
  for (int i = 0; i < 6; ++i) backend->execute(plan, ctx);

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 12; ++i) backend->execute(plan, ctx);
  const std::size_t delta =
      g_allocations.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(delta, 0u) << spec << ": " << delta
                       << " allocations across 12 steady-state frames";
}

TEST(PlanAllocations, SerialIsAllocationFree) {
  expect_zero_steady_state_allocs("serial");
}

TEST(PlanAllocations, SerialCompactIsAllocationFree) {
  expect_zero_steady_state_allocs("serial", MapMode::CompactLut);
}

TEST(PlanAllocations, PoolStaticIsAllocationFree) {
  expect_zero_steady_state_allocs("pool:static,threads=2");
}

TEST(PlanAllocations, PoolDynamicIsAllocationFree) {
  expect_zero_steady_state_allocs("pool:dynamic,rows=8,threads=2");
}

TEST(PlanAllocations, PoolGuidedIsAllocationFree) {
  expect_zero_steady_state_allocs("pool:guided,tiles,tile=32x16,threads=2");
}

TEST(PlanAllocations, PoolStealIsAllocationFree) {
  expect_zero_steady_state_allocs("pool:steal,tiles,tile=32x16,threads=2");
}

TEST(PlanAllocations, SimdSingleLaneIsAllocationFree) {
  expect_zero_steady_state_allocs("simd:threads=1");
}

TEST(PlanAllocations, SimdPooledIsAllocationFree) {
  expect_zero_steady_state_allocs("simd:threads=2");
}

TEST(PlanAllocations, SimdCompactIsAllocationFree) {
  expect_zero_steady_state_allocs("simd:threads=2", MapMode::CompactLut);
}

TEST(PlanAllocations, SimdGatherIsAllocationFree) {
  expect_zero_steady_state_allocs("simd:threads=1,datapath=gather");
}

TEST(PlanAllocations, SimdTunedAutoIsAllocationFree) {
  // Autotuning probes candidate plans at plan() time (which allocates
  // freely); the resolved plan must still be zero-alloc in steady state.
  expect_zero_steady_state_allocs("simd:threads=1,tuned=auto");
}

TEST(PlanAllocations, PoolTunedAutoIsAllocationFree) {
  expect_zero_steady_state_allocs(
      "pool:steal,tiles,tile=32x16,threads=2,tuned=auto");
}

TEST(PlanAllocations, ShardSupervisorIsAllocationFree) {
  // The supervisor's steady-state frame loop — stage source, ring the
  // doorbell, wait on completions, gather strips — must not allocate;
  // worker processes have their own heaps and don't count here.
  expect_zero_steady_state_allocs("shard:workers=2,heartbeat_ms=20");
}

TEST(PlanAllocations, OpenMpSchedulesAreAllocationFree) {
  if (!BackendRegistry::instance().has("openmp"))
    GTEST_SKIP() << "built without OpenMP";
  for (const char* sched : {"static", "dynamic", "guided", "steal"})
    expect_zero_steady_state_allocs(
        std::string("openmp:threads=2,schedule=") + sched);
}

TEST(PlanAllocations, StreamExecutorMultiStreamIsAllocationFree) {
  // The multi-stream guarantee: M streams in concurrent flight, and once
  // the per-stream arenas (plan workspace, instrumentation, pending ring)
  // and the scheduler's queue/loot capacities are warm, steady-state
  // service allocates nothing — submit, tile execution, stealing, retire,
  // and wait included.
  par::ThreadPool pool(2);
  stream::StreamExecutorOptions opts;
  opts.max_streams = 3;
  opts.tile_w = 32;
  opts.tile_h = 16;
  stream::StreamExecutor exec(pool, opts);

  constexpr std::size_t kStreams = 3;
  std::vector<std::unique_ptr<Frame>> frames;
  std::vector<stream::StreamId> ids;
  std::vector<std::unique_ptr<Corrector>> correctors;
  for (std::size_t i = 0; i < kStreams; ++i) {
    frames.push_back(std::make_unique<Frame>());
    correctors.push_back(std::make_unique<Corrector>(
        Corrector::builder(kW, kH).fov_degrees(170.0).config()));
    ids.push_back(exec.add_stream(*correctors.back(), 1));
  }
  const auto round = [&] {
    std::uint64_t last = 0;
    for (std::size_t i = 0; i < kStreams; ++i)
      last = exec.submit(ids[i], frames[i]->src.view(),
                         frames[i]->dst.view());
    // Waiting on the last stream's frame is enough to bound the round;
    // the others retire before or while we sleep.
    exec.wait(ids.back(), last);
  };
  for (int i = 0; i < 6; ++i) round();  // warm queues, loot, cv internals
  exec.drain();

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 12; ++i) round();
  exec.drain();
  const std::size_t delta =
      g_allocations.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(delta, 0u) << "StreamExecutor: " << delta
                       << " allocations across 12 steady-state rounds of "
                       << kStreams << " streams";
}

TEST(PlanAllocations, ServeCacheHitPathIsAllocationFree) {
  // The serving-layer guarantee: once the PlanCache holds a frame's view
  // plans and every arena is warm (request slots, coalescer scratch, lane
  // fifos, stream rings), a steady-state frame — request accumulation,
  // coalescing, cache hits, cluster execution, crop copies, retire
  // callbacks — allocates nothing.
  par::ThreadPool pool(2);
  serve::ServerConfig cfg;
  cfg.src_width = kW;
  cfg.src_height = kH;
  cfg.fov_rad = deg_to_rad(170.0);
  cfg.levels = {{kW, kH, 0.0}};
  const serve::ServeOptions opts =
      serve::ServeOptions::parse("serve:lanes=2,quantum=8,tile=16x16");
  serve::Server server(cfg, opts, pool);
  server.set_retire([](std::uint64_t, std::uint64_t, double) {});

  img::Image8 src(kW, kH, 1);
  src.fill(100);
  // Duplicate + overlapping views, identical every frame: after warmup
  // every cluster is a cache hit.
  const par::Rect rects[] = {
      {0, 0, 48, 32}, {8, 8, 56, 40}, {8, 8, 56, 40}, {40, 24, 88, 56}};
  constexpr std::size_t kReqs = sizeof(rects) / sizeof(rects[0]);
  std::vector<img::Image8> crops;
  for (const par::Rect& r : rects) crops.emplace_back(r.width(), r.height(), 1);

  const auto round = [&] {
    for (std::size_t i = 0; i < kReqs; ++i)
      server.request(0, rects[i], crops[i].view());
    server.submit_frame(src.cview());
    server.drain();
  };
  for (int i = 0; i < 6; ++i) round();

  const rt::ServeStats warm = server.stats();
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 12; ++i) round();
  const std::size_t delta =
      g_allocations.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(delta, 0u) << "serve: " << delta
                       << " allocations across 12 steady-state frames";
  // Every measured cluster must have been a plan-cache hit — a miss would
  // build maps and allocate, making the zero above vacuous.
  const rt::ServeStats st = server.stats();
  EXPECT_EQ(st.plan_misses, warm.plan_misses);
  EXPECT_GT(st.plan_hits, warm.plan_hits);
}

}  // namespace
}  // namespace fisheye::core
