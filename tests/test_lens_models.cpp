// Lens model properties: exact inverses, monotonicity, derivative
// consistency, focal solving. Parameterized across every model kind.
#include <gtest/gtest.h>

#include <cmath>

#include "core/lens_model.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"

namespace fisheye::core {
namespace {

using util::kHalfPi;
using util::kPi;

class LensSweep : public ::testing::TestWithParam<LensKind> {
 protected:
  static constexpr double kFocal = 320.0;
  std::unique_ptr<LensModel> lens_ = make_lens(GetParam(), kFocal);
  /// A safe upper test angle strictly inside the model's domain.
  [[nodiscard]] double theta_hi() const {
    return std::min(lens_->max_theta() * 0.95, kHalfPi * 0.98);
  }
};

TEST_P(LensSweep, InverseIsExactOverDomain) {
  for (int i = 0; i <= 200; ++i) {
    const double theta = theta_hi() * i / 200.0;
    const double r = lens_->radius_from_theta(theta);
    EXPECT_NEAR(lens_->theta_from_radius(r), theta, 1e-10) << "theta=" << theta;
  }
}

TEST_P(LensSweep, RadiusIsStrictlyMonotone) {
  double prev = -1.0;
  for (int i = 0; i <= 100; ++i) {
    const double theta = theta_hi() * i / 100.0;
    const double r = lens_->radius_from_theta(theta);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST_P(LensSweep, ZeroMapsToZero) {
  EXPECT_DOUBLE_EQ(lens_->radius_from_theta(0.0), 0.0);
  EXPECT_DOUBLE_EQ(lens_->theta_from_radius(0.0), 0.0);
}

TEST_P(LensSweep, DerivativeMatchesNumericDifference) {
  for (int i = 1; i < 20; ++i) {
    const double theta = theta_hi() * i / 20.0;
    const double h = 1e-6;
    const double numeric = (lens_->radius_from_theta(theta + h) -
                            lens_->radius_from_theta(theta - h)) /
                           (2.0 * h);
    EXPECT_NEAR(lens_->dradius_dtheta(theta), numeric,
                1e-3 * std::abs(numeric) + 1e-6)
        << "theta=" << theta;
  }
}

TEST_P(LensSweep, CentreDerivativeEqualsFocal) {
  // Every model behaves like r = f*theta near the axis.
  EXPECT_NEAR(lens_->dradius_dtheta(0.0), kFocal, 1e-9);
}

TEST_P(LensSweep, FocalForFovInvertsImageCircle) {
  const double fov = std::min(2.0 * theta_hi(), 2.9);
  const double radius = 250.0;
  const double f = focal_for_fov(GetParam(), fov, radius);
  const auto lens = make_lens(GetParam(), f);
  EXPECT_NEAR(lens->radius_from_theta(fov / 2.0), radius, 1e-9);
  EXPECT_NEAR(lens->image_circle_radius(fov), radius, 1e-9);
}

TEST_P(LensSweep, NameStartsWithKind) {
  EXPECT_EQ(lens_->kind(), GetParam());
  // Parameterized models (kannala_brandt, division) append their
  // coefficients after the kind token; analytic models are the bare kind.
  const std::string name = lens_->name();
  EXPECT_EQ(name.rfind(lens_kind_name(GetParam()), 0), 0u) << name;
  EXPECT_FALSE(name.empty());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, LensSweep,
                         ::testing::Values(LensKind::Equidistant,
                                           LensKind::Equisolid,
                                           LensKind::Orthographic,
                                           LensKind::Stereographic,
                                           LensKind::Rectilinear,
                                           LensKind::KannalaBrandt,
                                           LensKind::Division),
                         [](const auto& pinfo) {
                           return std::string(lens_kind_name(pinfo.param));
                         });

// Inversion round-trip across the FULL usable domain (not the 95% the sweep
// tests use): theta_from_radius(radius_from_theta(theta)) must reproduce
// theta to 1e-9 for every model, including angles within one part in 1e6 of
// max_theta, where the Kannala-Brandt derivative may be near-degenerate and
// Newton has to fall back on bisection to stay inside the bracket.
TEST(LensInversion, RoundTripIsTightOverFullDomain) {
  constexpr double kFocal = 320.0;
  const LensKind kinds[] = {
      LensKind::Equidistant,   LensKind::Equisolid, LensKind::Orthographic,
      LensKind::Stereographic, LensKind::Rectilinear,
      LensKind::KannalaBrandt, LensKind::Division,
  };
  for (const LensKind kind : kinds) {
    const auto lens = make_lens(kind, kFocal);
    // Orthographic (asin at pi/2) and equisolid (asin of sin(theta/2) at
    // pi) have d(radius)/d(theta) = 0 exactly at max_theta — no inverse
    // can restore digits the forward map never encoded there. Stay a hair
    // inside for those two; everything else is tested to the very edge.
    const bool degenerate_edge = kind == LensKind::Orthographic ||
                                 kind == LensKind::Equisolid;
    const double hi = degenerate_edge ? lens->max_theta() * (1.0 - 1e-6)
                                      : lens->max_theta();
    for (int i = 0; i <= 400; ++i) {
      const double theta = hi * i / 400.0;
      const double r = lens->radius_from_theta(theta);
      EXPECT_NEAR(lens->theta_from_radius(r), theta, 1e-9)
          << lens->name() << " theta=" << theta;
    }
    // Near-max_theta edge: the last representable sliver of the domain.
    for (const double eps : {1e-6, 1e-9, 1e-12}) {
      const double theta = hi * (1.0 - eps);
      const double r = lens->radius_from_theta(theta);
      EXPECT_NEAR(lens->theta_from_radius(r), theta, 1e-9)
          << lens->name() << " eps=" << eps;
    }
  }
}

TEST(LensInversion, KannalaBrandtRandomizedCoefficients) {
  // Newton with the equidistant initial guess must converge for arbitrary
  // mild calibrations, not just the default set. Coefficients are drawn
  // from the range real fisheye calibrations occupy; the constructor caps
  // max_theta at the first derivative zero, so the full domain is fair.
  util::Rng rng(501);
  for (int trial = 0; trial < 50; ++trial) {
    const std::array<double, 4> k = {
        rng.uniform(-0.25, 0.25), rng.uniform(-0.05, 0.05),
        rng.uniform(-0.01, 0.01), rng.uniform(-0.002, 0.002)};
    const KannalaBrandt lens(250.0, k);
    ASSERT_GT(lens.max_theta(), 0.1);
    // When the coefficients produce a derivative zero inside (0, pi], the
    // constructor caps max_theta exactly there — the same degenerate edge
    // orthographic/equisolid have, where the forward map encodes no digits
    // for the inverse to restore. Sweep to a hair inside the cap then.
    const double hi = lens.max_theta() < kPi
                          ? lens.max_theta() * (1.0 - 1e-6)
                          : lens.max_theta();
    for (int i = 0; i <= 100; ++i) {
      const double theta = hi * i / 100.0;
      const double r = lens.radius_from_theta(theta);
      EXPECT_NEAR(lens.theta_from_radius(r), theta, 1e-9)
          << "trial=" << trial << " theta=" << theta << " " << lens.name();
    }
  }
}

TEST(LensInversion, DivisionInverseIsClosedForm) {
  // Sweep lambda across its full range; the atan-based inverse is exact.
  for (const double lambda : {0.0, -0.05, -0.25, -1.0, -4.0, -10.0}) {
    const DivisionModel lens(200.0, lambda);
    for (int i = 0; i <= 200; ++i) {
      const double theta = lens.max_theta() * i / 200.0;
      const double r = lens.radius_from_theta(theta);
      EXPECT_NEAR(lens.theta_from_radius(r), theta, 1e-9)
          << "lambda=" << lambda << " theta=" << theta;
    }
  }
}

TEST(Equidistant, IsLinearInTheta) {
  const auto lens = make_lens(LensKind::Equidistant, 100.0);
  EXPECT_DOUBLE_EQ(lens->radius_from_theta(0.5), 50.0);
  EXPECT_DOUBLE_EQ(lens->radius_from_theta(1.0), 100.0);
  EXPECT_DOUBLE_EQ(lens->max_theta(), kPi);
}

TEST(Equidistant, HalfSolidAngleCircle) {
  // The study's lens: 180 degrees maps to radius f*pi/2.
  const auto lens = make_lens(LensKind::Equidistant, 200.0);
  EXPECT_DOUBLE_EQ(lens->image_circle_radius(kPi), 200.0 * kHalfPi);
}

TEST(Rectilinear, MatchesTanAndIsBoundedBelowHalfPi) {
  const auto lens = make_lens(LensKind::Rectilinear, 100.0);
  EXPECT_NEAR(lens->radius_from_theta(0.6), 100.0 * std::tan(0.6), 1e-12);
  EXPECT_LT(lens->max_theta(), kHalfPi);
}

TEST(Orthographic, SaturatesAtHalfPi) {
  const auto lens = make_lens(LensKind::Orthographic, 100.0);
  EXPECT_DOUBLE_EQ(lens->max_theta(), kHalfPi);
  EXPECT_NEAR(lens->radius_from_theta(kHalfPi), 100.0, 1e-12);
}

TEST(LensModels, ModelsOrderByCompressionAtWideAngle) {
  // At 80 degrees off-axis, for equal focal: stereographic > rectilinear...
  // no — the relevant property for the study: equidistant compresses less
  // than orthographic, more than stereographic.
  const double theta = util::deg_to_rad(80.0);
  const double f = 100.0;
  const double r_ortho =
      make_lens(LensKind::Orthographic, f)->radius_from_theta(theta);
  const double r_equi =
      make_lens(LensKind::Equidistant, f)->radius_from_theta(theta);
  const double r_stereo =
      make_lens(LensKind::Stereographic, f)->radius_from_theta(theta);
  EXPECT_LT(r_ortho, r_equi);
  EXPECT_LT(r_equi, r_stereo);
}

TEST(LensModels, InvalidConstruction) {
  EXPECT_THROW(make_lens(LensKind::Equidistant, 0.0),
               fisheye::InvalidArgument);
  EXPECT_THROW(make_lens(LensKind::Equidistant, -5.0),
               fisheye::InvalidArgument);
  EXPECT_THROW(focal_for_fov(LensKind::Rectilinear, kPi, 100.0),
               fisheye::InvalidArgument);  // fov/2 beyond max_theta
}

}  // namespace
}  // namespace fisheye::core
