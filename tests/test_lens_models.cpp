// Lens model properties: exact inverses, monotonicity, derivative
// consistency, focal solving. Parameterized across every model kind.
#include <gtest/gtest.h>

#include <cmath>

#include "core/lens_model.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"

namespace fisheye::core {
namespace {

using util::kHalfPi;
using util::kPi;

class LensSweep : public ::testing::TestWithParam<LensKind> {
 protected:
  static constexpr double kFocal = 320.0;
  std::unique_ptr<LensModel> lens_ = make_lens(GetParam(), kFocal);
  /// A safe upper test angle strictly inside the model's domain.
  [[nodiscard]] double theta_hi() const {
    return std::min(lens_->max_theta() * 0.95, kHalfPi * 0.98);
  }
};

TEST_P(LensSweep, InverseIsExactOverDomain) {
  for (int i = 0; i <= 200; ++i) {
    const double theta = theta_hi() * i / 200.0;
    const double r = lens_->radius_from_theta(theta);
    EXPECT_NEAR(lens_->theta_from_radius(r), theta, 1e-10) << "theta=" << theta;
  }
}

TEST_P(LensSweep, RadiusIsStrictlyMonotone) {
  double prev = -1.0;
  for (int i = 0; i <= 100; ++i) {
    const double theta = theta_hi() * i / 100.0;
    const double r = lens_->radius_from_theta(theta);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST_P(LensSweep, ZeroMapsToZero) {
  EXPECT_DOUBLE_EQ(lens_->radius_from_theta(0.0), 0.0);
  EXPECT_DOUBLE_EQ(lens_->theta_from_radius(0.0), 0.0);
}

TEST_P(LensSweep, DerivativeMatchesNumericDifference) {
  for (int i = 1; i < 20; ++i) {
    const double theta = theta_hi() * i / 20.0;
    const double h = 1e-6;
    const double numeric = (lens_->radius_from_theta(theta + h) -
                            lens_->radius_from_theta(theta - h)) /
                           (2.0 * h);
    EXPECT_NEAR(lens_->dradius_dtheta(theta), numeric,
                1e-3 * std::abs(numeric) + 1e-6)
        << "theta=" << theta;
  }
}

TEST_P(LensSweep, CentreDerivativeEqualsFocal) {
  // Every model behaves like r = f*theta near the axis.
  EXPECT_NEAR(lens_->dradius_dtheta(0.0), kFocal, 1e-9);
}

TEST_P(LensSweep, FocalForFovInvertsImageCircle) {
  const double fov = std::min(2.0 * theta_hi(), 2.9);
  const double radius = 250.0;
  const double f = focal_for_fov(GetParam(), fov, radius);
  const auto lens = make_lens(GetParam(), f);
  EXPECT_NEAR(lens->radius_from_theta(fov / 2.0), radius, 1e-9);
  EXPECT_NEAR(lens->image_circle_radius(fov), radius, 1e-9);
}

TEST_P(LensSweep, NameMatchesKind) {
  EXPECT_EQ(lens_->kind(), GetParam());
  EXPECT_EQ(lens_->name(), lens_kind_name(GetParam()));
  EXPECT_FALSE(lens_->name().empty());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, LensSweep,
                         ::testing::Values(LensKind::Equidistant,
                                           LensKind::Equisolid,
                                           LensKind::Orthographic,
                                           LensKind::Stereographic,
                                           LensKind::Rectilinear),
                         [](const auto& pinfo) {
                           return std::string(lens_kind_name(pinfo.param));
                         });

TEST(Equidistant, IsLinearInTheta) {
  const auto lens = make_lens(LensKind::Equidistant, 100.0);
  EXPECT_DOUBLE_EQ(lens->radius_from_theta(0.5), 50.0);
  EXPECT_DOUBLE_EQ(lens->radius_from_theta(1.0), 100.0);
  EXPECT_DOUBLE_EQ(lens->max_theta(), kPi);
}

TEST(Equidistant, HalfSolidAngleCircle) {
  // The study's lens: 180 degrees maps to radius f*pi/2.
  const auto lens = make_lens(LensKind::Equidistant, 200.0);
  EXPECT_DOUBLE_EQ(lens->image_circle_radius(kPi), 200.0 * kHalfPi);
}

TEST(Rectilinear, MatchesTanAndIsBoundedBelowHalfPi) {
  const auto lens = make_lens(LensKind::Rectilinear, 100.0);
  EXPECT_NEAR(lens->radius_from_theta(0.6), 100.0 * std::tan(0.6), 1e-12);
  EXPECT_LT(lens->max_theta(), kHalfPi);
}

TEST(Orthographic, SaturatesAtHalfPi) {
  const auto lens = make_lens(LensKind::Orthographic, 100.0);
  EXPECT_DOUBLE_EQ(lens->max_theta(), kHalfPi);
  EXPECT_NEAR(lens->radius_from_theta(kHalfPi), 100.0, 1e-12);
}

TEST(LensModels, ModelsOrderByCompressionAtWideAngle) {
  // At 80 degrees off-axis, for equal focal: stereographic > rectilinear...
  // no — the relevant property for the study: equidistant compresses less
  // than orthographic, more than stereographic.
  const double theta = util::deg_to_rad(80.0);
  const double f = 100.0;
  const double r_ortho =
      make_lens(LensKind::Orthographic, f)->radius_from_theta(theta);
  const double r_equi =
      make_lens(LensKind::Equidistant, f)->radius_from_theta(theta);
  const double r_stereo =
      make_lens(LensKind::Stereographic, f)->radius_from_theta(theta);
  EXPECT_LT(r_ortho, r_equi);
  EXPECT_LT(r_equi, r_stereo);
}

TEST(LensModels, InvalidConstruction) {
  EXPECT_THROW(make_lens(LensKind::Equidistant, 0.0),
               fisheye::InvalidArgument);
  EXPECT_THROW(make_lens(LensKind::Equidistant, -5.0),
               fisheye::InvalidArgument);
  EXPECT_THROW(focal_for_fov(LensKind::Rectilinear, kPi, 100.0),
               fisheye::InvalidArgument);  // fov/2 beyond max_theta
}

}  // namespace
}  // namespace fisheye::core
