// Remap executor semantics: identity/translation maps, packed vs float
// agreement, LUT vs on-the-fly agreement, tile offsets.
#include <gtest/gtest.h>

#include <cmath>

#include "core/corrector.hpp"
#include "core/remap.hpp"
#include "image/metrics.hpp"
#include "image/synth.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"

namespace fisheye::core {
namespace {

using util::deg_to_rad;

WarpMap identity_map(int w, int h) {
  WarpMap map;
  map.width = w;
  map.height = h;
  map.src_x.resize(map.pixel_count());
  map.src_y.resize(map.pixel_count());
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      map.src_x[map.index(x, y)] = static_cast<float>(x);
      map.src_y[map.index(x, y)] = static_cast<float>(y);
    }
  return map;
}

img::Image8 random_image(int w, int h, int ch, std::uint64_t seed) {
  util::Rng rng(seed);
  img::Image8 im(w, h, ch);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w * ch; ++x)
      im.row(y)[x] = static_cast<std::uint8_t>(rng.next_below(256));
  return im;
}

class IdentityAllInterps : public ::testing::TestWithParam<Interp> {};

TEST_P(IdentityAllInterps, IdentityMapReproducesImage) {
  const img::Image8 src = random_image(40, 30, 1, 3);
  img::Image8 dst(40, 30, 1);
  const WarpMap map = identity_map(40, 30);
  remap_rect(src.view(), dst.view(), map, {0, 0, 40, 30},
             {GetParam(), img::BorderMode::Replicate, 0});
  EXPECT_TRUE(img::equal_pixels<std::uint8_t>(src.view(), dst.view()))
      << interp_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Kernels, IdentityAllInterps,
                         ::testing::Values(Interp::Nearest, Interp::Bilinear,
                                           Interp::Bicubic, Interp::Lanczos3),
                         [](const auto& pinfo) {
                           return std::string(interp_name(pinfo.param));
                         });

TEST(Remap, IntegerTranslationShifts) {
  const img::Image8 src = random_image(20, 20, 1, 5);
  img::Image8 dst(20, 20, 1);
  WarpMap map = identity_map(20, 20);
  for (auto& v : map.src_x) v += 3.0f;  // sample 3 px to the right
  for (auto& v : map.src_y) v += 2.0f;
  remap_rect(src.view(), dst.view(), map, {0, 0, 20, 20},
             {Interp::Bilinear, img::BorderMode::Constant, 7});
  for (int y = 0; y < 18; ++y)
    for (int x = 0; x < 17; ++x)
      EXPECT_EQ(dst.at(x, y), src.at(x + 3, y + 2)) << x << ',' << y;
  // Beyond the right edge: fill.
  EXPECT_EQ(dst.at(19, 0), 7);
  EXPECT_EQ(dst.at(0, 19), 7);
}

TEST(Remap, RectRestrictsOutputRegion) {
  const img::Image8 src = random_image(16, 16, 1, 9);
  img::Image8 dst(16, 16, 1);
  dst.fill(200);
  const WarpMap map = identity_map(16, 16);
  remap_rect(src.view(), dst.view(), map, {4, 4, 8, 8},
             {Interp::Nearest, img::BorderMode::Constant, 0});
  EXPECT_EQ(dst.at(5, 5), src.at(5, 5));
  EXPECT_EQ(dst.at(0, 0), 200);   // untouched
  EXPECT_EQ(dst.at(8, 8), 200);   // rect is half-open
}

TEST(Remap, OffsetVariantMatchesFullFrame) {
  // Remapping through a copied source sub-window with the offset variant
  // must equal the full-frame result when the window covers the bbox.
  const FisheyeCamera cam =
      FisheyeCamera::centered(LensKind::Equidistant, deg_to_rad(180.0), 64, 64);
  const PerspectiveView view(64, 64, cam.lens().focal());
  const WarpMap map = build_map(cam, view);
  const img::Image8 src = random_image(64, 64, 1, 13);
  const par::Rect rect{16, 16, 48, 48};
  const par::Rect box = source_bbox(map, rect, 64, 64);
  ASSERT_FALSE(box.empty());

  img::Image8 full(64, 64, 1);
  const RemapOptions opts{Interp::Bilinear, img::BorderMode::Constant, 0};
  remap_rect(src.view(), full.view(), map, rect, opts);

  // Copy the window, then remap with offsets.
  img::Image8 window(box.width(), box.height(), 1);
  for (int y = 0; y < box.height(); ++y)
    for (int x = 0; x < box.width(); ++x)
      window.at(x, y) = src.at(box.x0 + x, box.y0 + y);
  img::Image8 tiled(64, 64, 1);
  remap_rect_offset(window.view(), tiled.view(), map, rect, box.x0, box.y0,
                    opts);
  for (int y = rect.y0; y < rect.y1; ++y)
    for (int x = rect.x0; x < rect.x1; ++x)
      EXPECT_EQ(tiled.at(x, y), full.at(x, y)) << x << ',' << y;
}

TEST(RemapPacked, MatchesFloatBilinearWithinOneLevel) {
  const FisheyeCamera cam = FisheyeCamera::centered(
      LensKind::Equidistant, deg_to_rad(170.0), 128, 96);
  const PerspectiveView view(128, 96, cam.lens().focal());
  const WarpMap map = build_map(cam, view);
  const PackedMap packed = pack_map(map, 128, 96, 14);
  const img::Image8 src = img::make_gradient(128, 96);
  img::Image8 a(128, 96, 1), b(128, 96, 1);
  remap_rect(src.view(), a.view(), map, {0, 0, 128, 96},
             {Interp::Bilinear, img::BorderMode::Constant, 0});
  remap_packed_rect(src.view(), b.view(), packed, {0, 0, 128, 96}, 0);
  // Fixed-point Q.14 coordinates and 8-bit blend weights: within 2 levels.
  EXPECT_LE(img::max_abs_diff(a.view(), b.view()), 2);
  EXPECT_LT(img::fraction_differing(a.view(), b.view(), 1), 0.02);
}

TEST(RemapPacked, InvalidPixelsGetFill) {
  PackedMap packed;
  packed.width = 2;
  packed.height = 1;
  packed.frac_bits = 14;
  packed.fx = {PackedMap::kInvalid, 1 << 14};
  packed.fy = {PackedMap::kInvalid, 0};
  img::Image8 src(4, 4, 1);
  src.fill(50);
  img::Image8 dst(2, 1, 1);
  remap_packed_rect(src.view(), dst.view(), packed, {0, 0, 2, 1}, 99);
  EXPECT_EQ(dst.at(0, 0), 99);
  EXPECT_EQ(dst.at(1, 0), 50);
}

TEST(RemapPacked, NarrowFracBitsStillWork) {
  const WarpMap map = identity_map(16, 16);
  const img::Image8 src = random_image(16, 16, 1, 21);
  for (int bits : {4, 6, 8, 12, 18}) {
    const PackedMap packed = pack_map(map, 16, 16, bits);
    img::Image8 dst(16, 16, 1);
    remap_packed_rect(src.view(), dst.view(), packed, {0, 0, 16, 16}, 0);
    EXPECT_TRUE(img::equal_pixels<std::uint8_t>(src.view(), dst.view()))
        << "frac_bits=" << bits;
  }
}

TEST(RemapOtf, MatchesFloatLut) {
  const FisheyeCamera cam = FisheyeCamera::centered(
      LensKind::Equidistant, deg_to_rad(180.0), 96, 96);
  const PerspectiveView view(96, 96, cam.lens().focal());
  const WarpMap map = build_map(cam, view);
  const img::Image8 src = img::make_checkerboard(96, 96, 8);
  img::Image8 lut(96, 96, 1), otf(96, 96, 1);
  const RemapOptions opts{Interp::Bilinear, img::BorderMode::Constant, 0};
  remap_rect(src.view(), lut.view(), map, {0, 0, 96, 96}, opts);
  remap_otf_rect(src.view(), otf.view(), cam, view, {0, 0, 96, 96}, opts,
                 /*fast_math=*/false);
  // LUT stores float32; OTF computes double. Sub-level agreement expected.
  EXPECT_LE(img::max_abs_diff(lut.view(), otf.view()), 1);
}

TEST(RemapOtf, FastMathStaysClose) {
  const FisheyeCamera cam = FisheyeCamera::centered(
      LensKind::Equidistant, deg_to_rad(180.0), 96, 96);
  const PerspectiveView view(96, 96, cam.lens().focal());
  const img::Image8 src = img::make_gradient(96, 96);
  img::Image8 exact(96, 96, 1), fast(96, 96, 1);
  const RemapOptions opts{Interp::Bilinear, img::BorderMode::Constant, 0};
  remap_otf_rect(src.view(), exact.view(), cam, view, {0, 0, 96, 96}, opts,
                 false);
  remap_otf_rect(src.view(), fast.view(), cam, view, {0, 0, 96, 96}, opts,
                 true);
  // atan error 2e-5 rad * focal ~48 px => coordinate error ~1e-3 px.
  EXPECT_GT(img::psnr(exact.view(), fast.view()), 45.0);
}

TEST(Remap, ChannelMismatchViolatesContract) {
  img::Image8 src(8, 8, 1), dst(8, 8, 3);
  const WarpMap map = identity_map(8, 8);
  EXPECT_THROW(remap_rect(src.view(), dst.view(), map, {0, 0, 8, 8}, {}),
               fisheye::InvalidArgument);
}

TEST(Remap, BadRectViolatesContract) {
  img::Image8 src(8, 8, 1), dst(8, 8, 1);
  const WarpMap map = identity_map(8, 8);
  EXPECT_THROW(remap_rect(src.view(), dst.view(), map, {0, 0, 9, 8}, {}),
               fisheye::InvalidArgument);
  EXPECT_THROW(remap_rect(src.view(), dst.view(), map, {4, 4, 4, 8}, {}),
               fisheye::InvalidArgument);
}

}  // namespace
}  // namespace fisheye::core
