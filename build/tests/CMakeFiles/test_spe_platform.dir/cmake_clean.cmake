file(REMOVE_RECURSE
  "CMakeFiles/test_spe_platform.dir/test_spe_platform.cpp.o"
  "CMakeFiles/test_spe_platform.dir/test_spe_platform.cpp.o.d"
  "test_spe_platform"
  "test_spe_platform.pdb"
  "test_spe_platform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spe_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
