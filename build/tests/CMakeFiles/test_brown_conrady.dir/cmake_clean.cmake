file(REMOVE_RECURSE
  "CMakeFiles/test_brown_conrady.dir/test_brown_conrady.cpp.o"
  "CMakeFiles/test_brown_conrady.dir/test_brown_conrady.cpp.o.d"
  "test_brown_conrady"
  "test_brown_conrady.pdb"
  "test_brown_conrady[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_brown_conrady.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
