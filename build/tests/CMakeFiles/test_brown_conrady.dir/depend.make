# Empty dependencies file for test_brown_conrady.
# This may be replaced when dependencies are built.
