file(REMOVE_RECURSE
  "CMakeFiles/test_pyramid_aa.dir/test_pyramid_aa.cpp.o"
  "CMakeFiles/test_pyramid_aa.dir/test_pyramid_aa.cpp.o.d"
  "test_pyramid_aa"
  "test_pyramid_aa.pdb"
  "test_pyramid_aa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pyramid_aa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
