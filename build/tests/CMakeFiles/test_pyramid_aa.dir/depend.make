# Empty dependencies file for test_pyramid_aa.
# This may be replaced when dependencies are built.
