# Empty compiler generated dependencies file for test_ptz_controller.
# This may be replaced when dependencies are built.
