file(REMOVE_RECURSE
  "CMakeFiles/test_ptz_controller.dir/test_ptz_controller.cpp.o"
  "CMakeFiles/test_ptz_controller.dir/test_ptz_controller.cpp.o.d"
  "test_ptz_controller"
  "test_ptz_controller.pdb"
  "test_ptz_controller[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ptz_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
