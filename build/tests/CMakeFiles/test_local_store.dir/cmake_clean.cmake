file(REMOVE_RECURSE
  "CMakeFiles/test_local_store.dir/test_local_store.cpp.o"
  "CMakeFiles/test_local_store.dir/test_local_store.cpp.o.d"
  "test_local_store"
  "test_local_store.pdb"
  "test_local_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
