file(REMOVE_RECURSE
  "CMakeFiles/test_backend_sweep.dir/test_backend_sweep.cpp.o"
  "CMakeFiles/test_backend_sweep.dir/test_backend_sweep.cpp.o.d"
  "test_backend_sweep"
  "test_backend_sweep.pdb"
  "test_backend_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backend_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
