# Empty dependencies file for test_backend_sweep.
# This may be replaced when dependencies are built.
