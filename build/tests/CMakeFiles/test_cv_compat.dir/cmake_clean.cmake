file(REMOVE_RECURSE
  "CMakeFiles/test_cv_compat.dir/test_cv_compat.cpp.o"
  "CMakeFiles/test_cv_compat.dir/test_cv_compat.cpp.o.d"
  "test_cv_compat"
  "test_cv_compat.pdb"
  "test_cv_compat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cv_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
