# Empty compiler generated dependencies file for test_cv_compat.
# This may be replaced when dependencies are built.
