# Empty compiler generated dependencies file for test_stitch.
# This may be replaced when dependencies are built.
