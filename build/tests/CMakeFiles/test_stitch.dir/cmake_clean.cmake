file(REMOVE_RECURSE
  "CMakeFiles/test_stitch.dir/test_stitch.cpp.o"
  "CMakeFiles/test_stitch.dir/test_stitch.cpp.o.d"
  "test_stitch"
  "test_stitch.pdb"
  "test_stitch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
