file(REMOVE_RECURSE
  "CMakeFiles/test_accel_dma.dir/test_accel_dma.cpp.o"
  "CMakeFiles/test_accel_dma.dir/test_accel_dma.cpp.o.d"
  "test_accel_dma"
  "test_accel_dma.pdb"
  "test_accel_dma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
