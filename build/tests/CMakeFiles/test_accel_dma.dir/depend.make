# Empty dependencies file for test_accel_dma.
# This may be replaced when dependencies are built.
