# Empty compiler generated dependencies file for test_remap.
# This may be replaced when dependencies are built.
