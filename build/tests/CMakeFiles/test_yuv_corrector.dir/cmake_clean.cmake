file(REMOVE_RECURSE
  "CMakeFiles/test_yuv_corrector.dir/test_yuv_corrector.cpp.o"
  "CMakeFiles/test_yuv_corrector.dir/test_yuv_corrector.cpp.o.d"
  "test_yuv_corrector"
  "test_yuv_corrector.pdb"
  "test_yuv_corrector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_yuv_corrector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
