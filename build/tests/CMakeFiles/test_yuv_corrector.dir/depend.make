# Empty dependencies file for test_yuv_corrector.
# This may be replaced when dependencies are built.
