file(REMOVE_RECURSE
  "CMakeFiles/test_fpga_platform.dir/test_fpga_platform.cpp.o"
  "CMakeFiles/test_fpga_platform.dir/test_fpga_platform.cpp.o.d"
  "test_fpga_platform"
  "test_fpga_platform.pdb"
  "test_fpga_platform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpga_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
