# Empty dependencies file for test_fpga_platform.
# This may be replaced when dependencies are built.
