file(REMOVE_RECURSE
  "CMakeFiles/test_synth_metrics.dir/test_synth_metrics.cpp.o"
  "CMakeFiles/test_synth_metrics.dir/test_synth_metrics.cpp.o.d"
  "test_synth_metrics"
  "test_synth_metrics.pdb"
  "test_synth_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
