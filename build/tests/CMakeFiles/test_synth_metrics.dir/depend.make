# Empty dependencies file for test_synth_metrics.
# This may be replaced when dependencies are built.
