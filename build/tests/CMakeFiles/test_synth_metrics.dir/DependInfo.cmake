
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_synth_metrics.cpp" "tests/CMakeFiles/test_synth_metrics.dir/test_synth_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_synth_metrics.dir/test_synth_metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fisheye_core.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/fisheye_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/calib/CMakeFiles/fisheye_calib.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/fisheye_video.dir/DependInfo.cmake"
  "/root/repo/build/src/stitch/CMakeFiles/fisheye_stitch.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/fisheye_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/fisheye_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fisheye_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/fisheye_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/fisheye_image.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/fisheye_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fisheye_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
