file(REMOVE_RECURSE
  "CMakeFiles/test_lens_models.dir/test_lens_models.cpp.o"
  "CMakeFiles/test_lens_models.dir/test_lens_models.cpp.o.d"
  "test_lens_models"
  "test_lens_models.pdb"
  "test_lens_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lens_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
