# Empty dependencies file for test_lens_models.
# This may be replaced when dependencies are built.
