file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_platform.dir/test_gpu_platform.cpp.o"
  "CMakeFiles/test_gpu_platform.dir/test_gpu_platform.cpp.o.d"
  "test_gpu_platform"
  "test_gpu_platform.pdb"
  "test_gpu_platform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
