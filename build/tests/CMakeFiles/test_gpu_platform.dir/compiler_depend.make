# Empty compiler generated dependencies file for test_gpu_platform.
# This may be replaced when dependencies are built.
