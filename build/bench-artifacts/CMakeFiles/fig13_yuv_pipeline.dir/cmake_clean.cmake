file(REMOVE_RECURSE
  "../bench/fig13_yuv_pipeline"
  "../bench/fig13_yuv_pipeline.pdb"
  "CMakeFiles/fig13_yuv_pipeline.dir/fig13_yuv_pipeline.cpp.o"
  "CMakeFiles/fig13_yuv_pipeline.dir/fig13_yuv_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_yuv_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
