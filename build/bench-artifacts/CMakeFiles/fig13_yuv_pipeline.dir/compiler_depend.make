# Empty compiler generated dependencies file for fig13_yuv_pipeline.
# This may be replaced when dependencies are built.
