file(REMOVE_RECURSE
  "../bench/fig10_calibration"
  "../bench/fig10_calibration.pdb"
  "CMakeFiles/fig10_calibration.dir/fig10_calibration.cpp.o"
  "CMakeFiles/fig10_calibration.dir/fig10_calibration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
