# Empty dependencies file for fig10_calibration.
# This may be replaced when dependencies are built.
