# Empty dependencies file for tab03_accuracy.
# This may be replaced when dependencies are built.
