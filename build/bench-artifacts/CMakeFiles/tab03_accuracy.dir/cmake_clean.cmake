file(REMOVE_RECURSE
  "../bench/tab03_accuracy"
  "../bench/tab03_accuracy.pdb"
  "CMakeFiles/tab03_accuracy.dir/tab03_accuracy.cpp.o"
  "CMakeFiles/tab03_accuracy.dir/tab03_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
