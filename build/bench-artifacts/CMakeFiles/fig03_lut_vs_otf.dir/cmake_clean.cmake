file(REMOVE_RECURSE
  "../bench/fig03_lut_vs_otf"
  "../bench/fig03_lut_vs_otf.pdb"
  "CMakeFiles/fig03_lut_vs_otf.dir/fig03_lut_vs_otf.cpp.o"
  "CMakeFiles/fig03_lut_vs_otf.dir/fig03_lut_vs_otf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_lut_vs_otf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
