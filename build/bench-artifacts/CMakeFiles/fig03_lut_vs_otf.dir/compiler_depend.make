# Empty compiler generated dependencies file for fig03_lut_vs_otf.
# This may be replaced when dependencies are built.
