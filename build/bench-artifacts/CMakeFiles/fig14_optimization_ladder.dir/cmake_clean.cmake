file(REMOVE_RECURSE
  "../bench/fig14_optimization_ladder"
  "../bench/fig14_optimization_ladder.pdb"
  "CMakeFiles/fig14_optimization_ladder.dir/fig14_optimization_ladder.cpp.o"
  "CMakeFiles/fig14_optimization_ladder.dir/fig14_optimization_ladder.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_optimization_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
