# Empty dependencies file for fig14_optimization_ladder.
# This may be replaced when dependencies are built.
