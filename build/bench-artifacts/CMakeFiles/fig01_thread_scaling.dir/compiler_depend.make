# Empty compiler generated dependencies file for fig01_thread_scaling.
# This may be replaced when dependencies are built.
