file(REMOVE_RECURSE
  "../bench/fig01_thread_scaling"
  "../bench/fig01_thread_scaling.pdb"
  "CMakeFiles/fig01_thread_scaling.dir/fig01_thread_scaling.cpp.o"
  "CMakeFiles/fig01_thread_scaling.dir/fig01_thread_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_thread_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
