file(REMOVE_RECURSE
  "../bench/fig06_spe_tiles"
  "../bench/fig06_spe_tiles.pdb"
  "CMakeFiles/fig06_spe_tiles.dir/fig06_spe_tiles.cpp.o"
  "CMakeFiles/fig06_spe_tiles.dir/fig06_spe_tiles.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_spe_tiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
