# Empty dependencies file for fig06_spe_tiles.
# This may be replaced when dependencies are built.
