# Empty dependencies file for tab01_profile.
# This may be replaced when dependencies are built.
