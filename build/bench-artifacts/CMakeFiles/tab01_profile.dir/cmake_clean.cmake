file(REMOVE_RECURSE
  "../bench/tab01_profile"
  "../bench/tab01_profile.pdb"
  "CMakeFiles/tab01_profile.dir/tab01_profile.cpp.o"
  "CMakeFiles/tab01_profile.dir/tab01_profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
