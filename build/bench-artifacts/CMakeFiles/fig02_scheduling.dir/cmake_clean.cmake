file(REMOVE_RECURSE
  "../bench/fig02_scheduling"
  "../bench/fig02_scheduling.pdb"
  "CMakeFiles/fig02_scheduling.dir/fig02_scheduling.cpp.o"
  "CMakeFiles/fig02_scheduling.dir/fig02_scheduling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
