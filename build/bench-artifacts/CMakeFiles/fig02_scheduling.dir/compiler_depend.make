# Empty compiler generated dependencies file for fig02_scheduling.
# This may be replaced when dependencies are built.
