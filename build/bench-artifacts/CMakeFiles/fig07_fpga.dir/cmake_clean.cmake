file(REMOVE_RECURSE
  "../bench/fig07_fpga"
  "../bench/fig07_fpga.pdb"
  "CMakeFiles/fig07_fpga.dir/fig07_fpga.cpp.o"
  "CMakeFiles/fig07_fpga.dir/fig07_fpga.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
