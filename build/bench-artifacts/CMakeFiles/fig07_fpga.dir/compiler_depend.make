# Empty compiler generated dependencies file for fig07_fpga.
# This may be replaced when dependencies are built.
