# Empty dependencies file for fig11_gpu.
# This may be replaced when dependencies are built.
