file(REMOVE_RECURSE
  "../bench/fig12_antialiasing"
  "../bench/fig12_antialiasing.pdb"
  "CMakeFiles/fig12_antialiasing.dir/fig12_antialiasing.cpp.o"
  "CMakeFiles/fig12_antialiasing.dir/fig12_antialiasing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_antialiasing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
