# Empty dependencies file for fig12_antialiasing.
# This may be replaced when dependencies are built.
