# Empty compiler generated dependencies file for tab04_quality.
# This may be replaced when dependencies are built.
