file(REMOVE_RECURSE
  "../bench/tab04_quality"
  "../bench/tab04_quality.pdb"
  "CMakeFiles/tab04_quality.dir/tab04_quality.cpp.o"
  "CMakeFiles/tab04_quality.dir/tab04_quality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
