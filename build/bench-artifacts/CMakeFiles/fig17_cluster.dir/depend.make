# Empty dependencies file for fig17_cluster.
# This may be replaced when dependencies are built.
