file(REMOVE_RECURSE
  "../bench/fig17_cluster"
  "../bench/fig17_cluster.pdb"
  "CMakeFiles/fig17_cluster.dir/fig17_cluster.cpp.o"
  "CMakeFiles/fig17_cluster.dir/fig17_cluster.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
