file(REMOVE_RECURSE
  "../bench/fig18_spe_scheduling"
  "../bench/fig18_spe_scheduling.pdb"
  "CMakeFiles/fig18_spe_scheduling.dir/fig18_spe_scheduling.cpp.o"
  "CMakeFiles/fig18_spe_scheduling.dir/fig18_spe_scheduling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_spe_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
