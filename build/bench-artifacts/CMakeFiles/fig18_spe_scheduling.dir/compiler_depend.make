# Empty compiler generated dependencies file for fig18_spe_scheduling.
# This may be replaced when dependencies are built.
