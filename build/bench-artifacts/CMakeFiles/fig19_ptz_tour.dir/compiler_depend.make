# Empty compiler generated dependencies file for fig19_ptz_tour.
# This may be replaced when dependencies are built.
