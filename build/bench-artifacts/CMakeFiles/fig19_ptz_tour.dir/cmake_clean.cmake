file(REMOVE_RECURSE
  "../bench/fig19_ptz_tour"
  "../bench/fig19_ptz_tour.pdb"
  "CMakeFiles/fig19_ptz_tour.dir/fig19_ptz_tour.cpp.o"
  "CMakeFiles/fig19_ptz_tour.dir/fig19_ptz_tour.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_ptz_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
