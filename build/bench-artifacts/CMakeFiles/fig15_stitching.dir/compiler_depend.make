# Empty compiler generated dependencies file for fig15_stitching.
# This may be replaced when dependencies are built.
