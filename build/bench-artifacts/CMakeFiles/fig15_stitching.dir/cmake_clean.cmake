file(REMOVE_RECURSE
  "../bench/fig15_stitching"
  "../bench/fig15_stitching.pdb"
  "CMakeFiles/fig15_stitching.dir/fig15_stitching.cpp.o"
  "CMakeFiles/fig15_stitching.dir/fig15_stitching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_stitching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
