file(REMOVE_RECURSE
  "../bench/fig09_fixed_point"
  "../bench/fig09_fixed_point.pdb"
  "CMakeFiles/fig09_fixed_point.dir/fig09_fixed_point.cpp.o"
  "CMakeFiles/fig09_fixed_point.dir/fig09_fixed_point.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_fixed_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
