file(REMOVE_RECURSE
  "../bench/fig16_frame_parallel"
  "../bench/fig16_frame_parallel.pdb"
  "CMakeFiles/fig16_frame_parallel.dir/fig16_frame_parallel.cpp.o"
  "CMakeFiles/fig16_frame_parallel.dir/fig16_frame_parallel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_frame_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
