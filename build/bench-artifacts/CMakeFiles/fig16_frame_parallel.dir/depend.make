# Empty dependencies file for fig16_frame_parallel.
# This may be replaced when dependencies are built.
