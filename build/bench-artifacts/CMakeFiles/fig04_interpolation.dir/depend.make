# Empty dependencies file for fig04_interpolation.
# This may be replaced when dependencies are built.
