file(REMOVE_RECURSE
  "../bench/fig04_interpolation"
  "../bench/fig04_interpolation.pdb"
  "CMakeFiles/fig04_interpolation.dir/fig04_interpolation.cpp.o"
  "CMakeFiles/fig04_interpolation.dir/fig04_interpolation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_interpolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
