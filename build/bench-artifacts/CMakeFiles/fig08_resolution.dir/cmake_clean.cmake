file(REMOVE_RECURSE
  "../bench/fig08_resolution"
  "../bench/fig08_resolution.pdb"
  "CMakeFiles/fig08_resolution.dir/fig08_resolution.cpp.o"
  "CMakeFiles/fig08_resolution.dir/fig08_resolution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
