# Empty dependencies file for fig08_resolution.
# This may be replaced when dependencies are built.
