file(REMOVE_RECURSE
  "../bench/fig05_spe_scaling"
  "../bench/fig05_spe_scaling.pdb"
  "CMakeFiles/fig05_spe_scaling.dir/fig05_spe_scaling.cpp.o"
  "CMakeFiles/fig05_spe_scaling.dir/fig05_spe_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_spe_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
