# Empty dependencies file for security_camera.
# This may be replaced when dependencies are built.
