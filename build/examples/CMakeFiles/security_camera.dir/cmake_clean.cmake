file(REMOVE_RECURSE
  "CMakeFiles/security_camera.dir/security_camera.cpp.o"
  "CMakeFiles/security_camera.dir/security_camera.cpp.o.d"
  "security_camera"
  "security_camera.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_camera.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
