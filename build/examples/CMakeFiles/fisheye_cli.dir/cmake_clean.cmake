file(REMOVE_RECURSE
  "CMakeFiles/fisheye_cli.dir/fisheye_cli.cpp.o"
  "CMakeFiles/fisheye_cli.dir/fisheye_cli.cpp.o.d"
  "fisheye_cli"
  "fisheye_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fisheye_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
