# Empty dependencies file for fisheye_cli.
# This may be replaced when dependencies are built.
