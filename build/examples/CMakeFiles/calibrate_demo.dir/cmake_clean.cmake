file(REMOVE_RECURSE
  "CMakeFiles/calibrate_demo.dir/calibrate_demo.cpp.o"
  "CMakeFiles/calibrate_demo.dir/calibrate_demo.cpp.o.d"
  "calibrate_demo"
  "calibrate_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
