# Empty compiler generated dependencies file for calibrate_demo.
# This may be replaced when dependencies are built.
