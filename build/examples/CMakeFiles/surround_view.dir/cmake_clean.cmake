file(REMOVE_RECURSE
  "CMakeFiles/surround_view.dir/surround_view.cpp.o"
  "CMakeFiles/surround_view.dir/surround_view.cpp.o.d"
  "surround_view"
  "surround_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surround_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
