# Empty dependencies file for surround_view.
# This may be replaced when dependencies are built.
