file(REMOVE_RECURSE
  "CMakeFiles/panorama.dir/panorama.cpp.o"
  "CMakeFiles/panorama.dir/panorama.cpp.o.d"
  "panorama"
  "panorama.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/panorama.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
