# Empty compiler generated dependencies file for ptz_tour.
# This may be replaced when dependencies are built.
