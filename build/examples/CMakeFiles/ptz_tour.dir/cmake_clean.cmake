file(REMOVE_RECURSE
  "CMakeFiles/ptz_tour.dir/ptz_tour.cpp.o"
  "CMakeFiles/ptz_tour.dir/ptz_tour.cpp.o.d"
  "ptz_tour"
  "ptz_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptz_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
