# Empty dependencies file for platform_compare.
# This may be replaced when dependencies are built.
