file(REMOVE_RECURSE
  "CMakeFiles/fisheye_simd.dir/remap_simd.cpp.o"
  "CMakeFiles/fisheye_simd.dir/remap_simd.cpp.o.d"
  "libfisheye_simd.a"
  "libfisheye_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fisheye_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
