file(REMOVE_RECURSE
  "libfisheye_simd.a"
)
