# Empty compiler generated dependencies file for fisheye_simd.
# This may be replaced when dependencies are built.
