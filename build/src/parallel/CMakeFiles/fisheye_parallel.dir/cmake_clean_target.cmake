file(REMOVE_RECURSE
  "libfisheye_parallel.a"
)
