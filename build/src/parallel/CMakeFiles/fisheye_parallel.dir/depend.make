# Empty dependencies file for fisheye_parallel.
# This may be replaced when dependencies are built.
