file(REMOVE_RECURSE
  "CMakeFiles/fisheye_parallel.dir/parallel_for.cpp.o"
  "CMakeFiles/fisheye_parallel.dir/parallel_for.cpp.o.d"
  "CMakeFiles/fisheye_parallel.dir/partition.cpp.o"
  "CMakeFiles/fisheye_parallel.dir/partition.cpp.o.d"
  "CMakeFiles/fisheye_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/fisheye_parallel.dir/thread_pool.cpp.o.d"
  "libfisheye_parallel.a"
  "libfisheye_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fisheye_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
