file(REMOVE_RECURSE
  "CMakeFiles/fisheye_calib.dir/calibrate.cpp.o"
  "CMakeFiles/fisheye_calib.dir/calibrate.cpp.o.d"
  "libfisheye_calib.a"
  "libfisheye_calib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fisheye_calib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
