# Empty compiler generated dependencies file for fisheye_calib.
# This may be replaced when dependencies are built.
