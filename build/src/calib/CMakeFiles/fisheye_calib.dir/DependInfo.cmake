
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/calib/calibrate.cpp" "src/calib/CMakeFiles/fisheye_calib.dir/calibrate.cpp.o" "gcc" "src/calib/CMakeFiles/fisheye_calib.dir/calibrate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fisheye_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/fisheye_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/fisheye_image.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/fisheye_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fisheye_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
