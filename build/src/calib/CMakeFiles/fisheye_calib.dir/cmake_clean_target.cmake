file(REMOVE_RECURSE
  "libfisheye_calib.a"
)
