file(REMOVE_RECURSE
  "libfisheye_analysis.a"
)
