file(REMOVE_RECURSE
  "CMakeFiles/fisheye_analysis.dir/quality.cpp.o"
  "CMakeFiles/fisheye_analysis.dir/quality.cpp.o.d"
  "libfisheye_analysis.a"
  "libfisheye_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fisheye_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
