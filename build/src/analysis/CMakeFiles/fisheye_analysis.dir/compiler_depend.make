# Empty compiler generated dependencies file for fisheye_analysis.
# This may be replaced when dependencies are built.
