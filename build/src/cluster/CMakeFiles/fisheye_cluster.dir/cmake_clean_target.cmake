file(REMOVE_RECURSE
  "libfisheye_cluster.a"
)
