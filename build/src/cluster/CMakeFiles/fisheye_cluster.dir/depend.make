# Empty dependencies file for fisheye_cluster.
# This may be replaced when dependencies are built.
