file(REMOVE_RECURSE
  "CMakeFiles/fisheye_cluster.dir/cluster_sim.cpp.o"
  "CMakeFiles/fisheye_cluster.dir/cluster_sim.cpp.o.d"
  "libfisheye_cluster.a"
  "libfisheye_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fisheye_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
