
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/convert.cpp" "src/image/CMakeFiles/fisheye_image.dir/convert.cpp.o" "gcc" "src/image/CMakeFiles/fisheye_image.dir/convert.cpp.o.d"
  "/root/repo/src/image/io_bmp.cpp" "src/image/CMakeFiles/fisheye_image.dir/io_bmp.cpp.o" "gcc" "src/image/CMakeFiles/fisheye_image.dir/io_bmp.cpp.o.d"
  "/root/repo/src/image/io_pnm.cpp" "src/image/CMakeFiles/fisheye_image.dir/io_pnm.cpp.o" "gcc" "src/image/CMakeFiles/fisheye_image.dir/io_pnm.cpp.o.d"
  "/root/repo/src/image/metrics.cpp" "src/image/CMakeFiles/fisheye_image.dir/metrics.cpp.o" "gcc" "src/image/CMakeFiles/fisheye_image.dir/metrics.cpp.o.d"
  "/root/repo/src/image/pyramid.cpp" "src/image/CMakeFiles/fisheye_image.dir/pyramid.cpp.o" "gcc" "src/image/CMakeFiles/fisheye_image.dir/pyramid.cpp.o.d"
  "/root/repo/src/image/synth.cpp" "src/image/CMakeFiles/fisheye_image.dir/synth.cpp.o" "gcc" "src/image/CMakeFiles/fisheye_image.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fisheye_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
