file(REMOVE_RECURSE
  "libfisheye_image.a"
)
