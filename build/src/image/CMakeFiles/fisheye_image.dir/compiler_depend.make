# Empty compiler generated dependencies file for fisheye_image.
# This may be replaced when dependencies are built.
