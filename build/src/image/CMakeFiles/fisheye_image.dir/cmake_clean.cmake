file(REMOVE_RECURSE
  "CMakeFiles/fisheye_image.dir/convert.cpp.o"
  "CMakeFiles/fisheye_image.dir/convert.cpp.o.d"
  "CMakeFiles/fisheye_image.dir/io_bmp.cpp.o"
  "CMakeFiles/fisheye_image.dir/io_bmp.cpp.o.d"
  "CMakeFiles/fisheye_image.dir/io_pnm.cpp.o"
  "CMakeFiles/fisheye_image.dir/io_pnm.cpp.o.d"
  "CMakeFiles/fisheye_image.dir/metrics.cpp.o"
  "CMakeFiles/fisheye_image.dir/metrics.cpp.o.d"
  "CMakeFiles/fisheye_image.dir/pyramid.cpp.o"
  "CMakeFiles/fisheye_image.dir/pyramid.cpp.o.d"
  "CMakeFiles/fisheye_image.dir/synth.cpp.o"
  "CMakeFiles/fisheye_image.dir/synth.cpp.o.d"
  "libfisheye_image.a"
  "libfisheye_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fisheye_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
