file(REMOVE_RECURSE
  "CMakeFiles/fisheye_stitch.dir/environment.cpp.o"
  "CMakeFiles/fisheye_stitch.dir/environment.cpp.o.d"
  "CMakeFiles/fisheye_stitch.dir/stitcher.cpp.o"
  "CMakeFiles/fisheye_stitch.dir/stitcher.cpp.o.d"
  "libfisheye_stitch.a"
  "libfisheye_stitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fisheye_stitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
