file(REMOVE_RECURSE
  "libfisheye_stitch.a"
)
