# Empty compiler generated dependencies file for fisheye_stitch.
# This may be replaced when dependencies are built.
