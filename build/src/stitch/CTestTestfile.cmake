# CMake generated Testfile for 
# Source directory: /root/repo/src/stitch
# Build directory: /root/repo/build/src/stitch
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
