# Empty dependencies file for fisheye_video.
# This may be replaced when dependencies are built.
