file(REMOVE_RECURSE
  "CMakeFiles/fisheye_video.dir/pipeline.cpp.o"
  "CMakeFiles/fisheye_video.dir/pipeline.cpp.o.d"
  "CMakeFiles/fisheye_video.dir/ptz_controller.cpp.o"
  "CMakeFiles/fisheye_video.dir/ptz_controller.cpp.o.d"
  "CMakeFiles/fisheye_video.dir/yuv_corrector.cpp.o"
  "CMakeFiles/fisheye_video.dir/yuv_corrector.cpp.o.d"
  "libfisheye_video.a"
  "libfisheye_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fisheye_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
