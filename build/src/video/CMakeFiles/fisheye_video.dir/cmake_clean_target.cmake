file(REMOVE_RECURSE
  "libfisheye_video.a"
)
