# Empty compiler generated dependencies file for fisheye_util.
# This may be replaced when dependencies are built.
