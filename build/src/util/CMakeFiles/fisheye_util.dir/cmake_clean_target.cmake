file(REMOVE_RECURSE
  "libfisheye_util.a"
)
