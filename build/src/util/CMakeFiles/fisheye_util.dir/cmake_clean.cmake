file(REMOVE_RECURSE
  "CMakeFiles/fisheye_util.dir/cpu.cpp.o"
  "CMakeFiles/fisheye_util.dir/cpu.cpp.o.d"
  "CMakeFiles/fisheye_util.dir/error.cpp.o"
  "CMakeFiles/fisheye_util.dir/error.cpp.o.d"
  "CMakeFiles/fisheye_util.dir/log.cpp.o"
  "CMakeFiles/fisheye_util.dir/log.cpp.o.d"
  "CMakeFiles/fisheye_util.dir/matrix.cpp.o"
  "CMakeFiles/fisheye_util.dir/matrix.cpp.o.d"
  "CMakeFiles/fisheye_util.dir/rng.cpp.o"
  "CMakeFiles/fisheye_util.dir/rng.cpp.o.d"
  "CMakeFiles/fisheye_util.dir/table.cpp.o"
  "CMakeFiles/fisheye_util.dir/table.cpp.o.d"
  "libfisheye_util.a"
  "libfisheye_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fisheye_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
