file(REMOVE_RECURSE
  "libfisheye_runtime.a"
)
