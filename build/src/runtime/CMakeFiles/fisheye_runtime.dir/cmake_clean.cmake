file(REMOVE_RECURSE
  "CMakeFiles/fisheye_runtime.dir/report.cpp.o"
  "CMakeFiles/fisheye_runtime.dir/report.cpp.o.d"
  "CMakeFiles/fisheye_runtime.dir/stats.cpp.o"
  "CMakeFiles/fisheye_runtime.dir/stats.cpp.o.d"
  "libfisheye_runtime.a"
  "libfisheye_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fisheye_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
