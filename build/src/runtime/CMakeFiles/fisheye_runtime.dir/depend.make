# Empty dependencies file for fisheye_runtime.
# This may be replaced when dependencies are built.
