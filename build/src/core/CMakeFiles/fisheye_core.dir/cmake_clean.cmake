file(REMOVE_RECURSE
  "CMakeFiles/fisheye_core.dir/aa_remap.cpp.o"
  "CMakeFiles/fisheye_core.dir/aa_remap.cpp.o.d"
  "CMakeFiles/fisheye_core.dir/backend.cpp.o"
  "CMakeFiles/fisheye_core.dir/backend.cpp.o.d"
  "CMakeFiles/fisheye_core.dir/brown_conrady.cpp.o"
  "CMakeFiles/fisheye_core.dir/brown_conrady.cpp.o.d"
  "CMakeFiles/fisheye_core.dir/camera.cpp.o"
  "CMakeFiles/fisheye_core.dir/camera.cpp.o.d"
  "CMakeFiles/fisheye_core.dir/corrector.cpp.o"
  "CMakeFiles/fisheye_core.dir/corrector.cpp.o.d"
  "CMakeFiles/fisheye_core.dir/cv_compat.cpp.o"
  "CMakeFiles/fisheye_core.dir/cv_compat.cpp.o.d"
  "CMakeFiles/fisheye_core.dir/lens_model.cpp.o"
  "CMakeFiles/fisheye_core.dir/lens_model.cpp.o.d"
  "CMakeFiles/fisheye_core.dir/map_io.cpp.o"
  "CMakeFiles/fisheye_core.dir/map_io.cpp.o.d"
  "CMakeFiles/fisheye_core.dir/mapping.cpp.o"
  "CMakeFiles/fisheye_core.dir/mapping.cpp.o.d"
  "CMakeFiles/fisheye_core.dir/projection.cpp.o"
  "CMakeFiles/fisheye_core.dir/projection.cpp.o.d"
  "CMakeFiles/fisheye_core.dir/remap.cpp.o"
  "CMakeFiles/fisheye_core.dir/remap.cpp.o.d"
  "libfisheye_core.a"
  "libfisheye_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fisheye_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
