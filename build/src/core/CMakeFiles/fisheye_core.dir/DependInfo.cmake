
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aa_remap.cpp" "src/core/CMakeFiles/fisheye_core.dir/aa_remap.cpp.o" "gcc" "src/core/CMakeFiles/fisheye_core.dir/aa_remap.cpp.o.d"
  "/root/repo/src/core/backend.cpp" "src/core/CMakeFiles/fisheye_core.dir/backend.cpp.o" "gcc" "src/core/CMakeFiles/fisheye_core.dir/backend.cpp.o.d"
  "/root/repo/src/core/brown_conrady.cpp" "src/core/CMakeFiles/fisheye_core.dir/brown_conrady.cpp.o" "gcc" "src/core/CMakeFiles/fisheye_core.dir/brown_conrady.cpp.o.d"
  "/root/repo/src/core/camera.cpp" "src/core/CMakeFiles/fisheye_core.dir/camera.cpp.o" "gcc" "src/core/CMakeFiles/fisheye_core.dir/camera.cpp.o.d"
  "/root/repo/src/core/corrector.cpp" "src/core/CMakeFiles/fisheye_core.dir/corrector.cpp.o" "gcc" "src/core/CMakeFiles/fisheye_core.dir/corrector.cpp.o.d"
  "/root/repo/src/core/cv_compat.cpp" "src/core/CMakeFiles/fisheye_core.dir/cv_compat.cpp.o" "gcc" "src/core/CMakeFiles/fisheye_core.dir/cv_compat.cpp.o.d"
  "/root/repo/src/core/lens_model.cpp" "src/core/CMakeFiles/fisheye_core.dir/lens_model.cpp.o" "gcc" "src/core/CMakeFiles/fisheye_core.dir/lens_model.cpp.o.d"
  "/root/repo/src/core/map_io.cpp" "src/core/CMakeFiles/fisheye_core.dir/map_io.cpp.o" "gcc" "src/core/CMakeFiles/fisheye_core.dir/map_io.cpp.o.d"
  "/root/repo/src/core/mapping.cpp" "src/core/CMakeFiles/fisheye_core.dir/mapping.cpp.o" "gcc" "src/core/CMakeFiles/fisheye_core.dir/mapping.cpp.o.d"
  "/root/repo/src/core/projection.cpp" "src/core/CMakeFiles/fisheye_core.dir/projection.cpp.o" "gcc" "src/core/CMakeFiles/fisheye_core.dir/projection.cpp.o.d"
  "/root/repo/src/core/remap.cpp" "src/core/CMakeFiles/fisheye_core.dir/remap.cpp.o" "gcc" "src/core/CMakeFiles/fisheye_core.dir/remap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fisheye_util.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/fisheye_image.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/fisheye_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/fisheye_simd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
