# Empty compiler generated dependencies file for fisheye_core.
# This may be replaced when dependencies are built.
