file(REMOVE_RECURSE
  "libfisheye_core.a"
)
