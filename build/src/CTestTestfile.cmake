# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("image")
subdirs("parallel")
subdirs("simd")
subdirs("runtime")
subdirs("core")
subdirs("accel")
subdirs("calib")
subdirs("video")
subdirs("stitch")
subdirs("cluster")
subdirs("analysis")
