file(REMOVE_RECURSE
  "CMakeFiles/fisheye_accel.dir/accel_backend.cpp.o"
  "CMakeFiles/fisheye_accel.dir/accel_backend.cpp.o.d"
  "CMakeFiles/fisheye_accel.dir/cache_sim.cpp.o"
  "CMakeFiles/fisheye_accel.dir/cache_sim.cpp.o.d"
  "CMakeFiles/fisheye_accel.dir/dma.cpp.o"
  "CMakeFiles/fisheye_accel.dir/dma.cpp.o.d"
  "CMakeFiles/fisheye_accel.dir/fpga_platform.cpp.o"
  "CMakeFiles/fisheye_accel.dir/fpga_platform.cpp.o.d"
  "CMakeFiles/fisheye_accel.dir/gpu_platform.cpp.o"
  "CMakeFiles/fisheye_accel.dir/gpu_platform.cpp.o.d"
  "CMakeFiles/fisheye_accel.dir/spe_platform.cpp.o"
  "CMakeFiles/fisheye_accel.dir/spe_platform.cpp.o.d"
  "libfisheye_accel.a"
  "libfisheye_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fisheye_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
