# Empty compiler generated dependencies file for fisheye_accel.
# This may be replaced when dependencies are built.
