
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/accel_backend.cpp" "src/accel/CMakeFiles/fisheye_accel.dir/accel_backend.cpp.o" "gcc" "src/accel/CMakeFiles/fisheye_accel.dir/accel_backend.cpp.o.d"
  "/root/repo/src/accel/cache_sim.cpp" "src/accel/CMakeFiles/fisheye_accel.dir/cache_sim.cpp.o" "gcc" "src/accel/CMakeFiles/fisheye_accel.dir/cache_sim.cpp.o.d"
  "/root/repo/src/accel/dma.cpp" "src/accel/CMakeFiles/fisheye_accel.dir/dma.cpp.o" "gcc" "src/accel/CMakeFiles/fisheye_accel.dir/dma.cpp.o.d"
  "/root/repo/src/accel/fpga_platform.cpp" "src/accel/CMakeFiles/fisheye_accel.dir/fpga_platform.cpp.o" "gcc" "src/accel/CMakeFiles/fisheye_accel.dir/fpga_platform.cpp.o.d"
  "/root/repo/src/accel/gpu_platform.cpp" "src/accel/CMakeFiles/fisheye_accel.dir/gpu_platform.cpp.o" "gcc" "src/accel/CMakeFiles/fisheye_accel.dir/gpu_platform.cpp.o.d"
  "/root/repo/src/accel/spe_platform.cpp" "src/accel/CMakeFiles/fisheye_accel.dir/spe_platform.cpp.o" "gcc" "src/accel/CMakeFiles/fisheye_accel.dir/spe_platform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fisheye_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/fisheye_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/fisheye_image.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/fisheye_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fisheye_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
