file(REMOVE_RECURSE
  "libfisheye_accel.a"
)
