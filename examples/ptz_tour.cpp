// PTZ tour: a virtual operator sweeps across a fisheye stream along a
// keyframed path; snapshots of the tour are written as PPMs.
//
//   ./ptz_tour [out_dir]
#include <iostream>
#include <string>

#include "image/io_pnm.hpp"
#include "video/pipeline.hpp"
#include "video/ptz_controller.hpp"

int main(int argc, char** argv) try {
  using namespace fisheye;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  const int w = 1280, h = 720;
  const auto camera = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, util::deg_to_rad(180.0), w, h);
  const video::SyntheticVideoSource source(camera, w, h, 3);

  // Tour: wide sweep left to right, then zoom onto the centre.
  video::PtzPath path;
  path.keys = {
      {0.0, {util::deg_to_rad(-55.0), util::deg_to_rad(5.0),
             util::deg_to_rad(70.0)}},
      {2.0, {util::deg_to_rad(55.0), util::deg_to_rad(5.0),
             util::deg_to_rad(70.0)}},
      {3.0, {0.0, util::deg_to_rad(12.0), util::deg_to_rad(30.0)}},
  };

  video::VirtualPtz ptz(camera, 640, 360);
  img::Image8 view(640, 360, 3);
  const double fps = 30.0;
  const int frames = static_cast<int>(3.0 * fps);
  double rebuild_total = 0.0;
  for (int f = 0; f <= frames; ++f) {
    const double t = f / fps;
    ptz.set_view(path.at(t));
    const img::Image8 input = source.frame(f);
    ptz.render(input.view(), view.view());
    rebuild_total += ptz.last_rebuild_ms();
    if (f % 30 == 0) {
      const std::string p =
          out_dir + "/ptz_tour_t" + std::to_string(f / 30) + "s.ppm";
      img::write_pnm(p, view.view());
      std::cout << "wrote " << p << " (pan "
                << util::rad_to_deg(ptz.pose().pan) << " deg, hfov "
                << util::rad_to_deg(ptz.pose().hfov) << " deg)\n";
    }
  }
  std::cout << frames + 1 << " frames, " << ptz.rebuilds()
            << " map rebuilds, " << rebuild_total / (frames + 1)
            << " ms/frame average rebuild cost\n";
  return 0;
} catch (const fisheye::Error& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
