// Platform comparison in one command: runs the same 720p correction on
// every backend (serial, pooled, SIMD, Cell-sim, FPGA-sim, GPU-sim),
// verifies the outputs agree, and prints a summary table — a miniature of
// bench T2.
//
// Every backend comes out of the BackendRegistry by spec string, and the
// table's first column is each instance's canonical name() — paste it back
// into BackendRegistry::create() to reproduce a row.
//
//   ./platform_compare
#include <iostream>
#include <memory>

#include "accel/accel_backend.hpp"
#include "core/backend_registry.hpp"
#include "core/corrector.hpp"
#include "image/metrics.hpp"
#include "runtime/report.hpp"
#include "util/cpu.hpp"
#include "runtime/stats.hpp"
#include "util/table.hpp"
#include "video/pipeline.hpp"

int main() {
  using namespace fisheye;
  const int w = 1280, h = 720;
  std::cout << "correcting one 720p frame on every platform ("
            << util::cpu_info().summary() << ")\n";

  const auto camera = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, util::kPi, w, h);
  const video::SyntheticVideoSource source(camera, w, h, 1);
  const img::Image8 fish = source.frame(0);

  const core::Corrector float_corr = core::Corrector::builder(w, h).build();
  const core::Corrector packed_corr = core::Corrector::builder(w, h)
                                          .map_mode(core::MapMode::PackedLut)
                                          .build();

  const auto serial = core::BackendRegistry::create("serial");
  img::Image8 reference(w, h, 1);
  float_corr.correct(fish.view(), reference.view(), *serial);

  util::Table table({"backend", "fps", "source", "max diff vs serial"});
  img::Image8 out(w, h, 1);

  // Measured CPU rows: plan once, time the steady-state execute path.
  auto run_cpu = [&](const std::string& spec, const core::Corrector& corr) {
    const auto backend = core::BackendRegistry::create(spec);
    const core::Corrector::Prepared prepared = corr.prepare(*backend);
    const rt::RunStats stats = rt::measure(
        [&] { corr.correct(prepared, fish.view(), out.view()); }, 5);
    table.row()
        .add(backend->name())
        .add(rt::fps_from_seconds(stats.median), 1)
        .add("measured")
        .add(img::max_abs_diff(reference.view(), out.view()));
  };
  run_cpu("serial", float_corr);
  run_cpu("pool", float_corr);
  run_cpu("simd", float_corr);

  // Modeled accelerator rows: one corrected frame drives the cycle model.
  auto modeled_fps = [](const core::Backend& b) {
    if (const auto* cell = dynamic_cast<const accel::CellBackend*>(&b))
      return cell->last_stats().fps;
    if (const auto* gpu = dynamic_cast<const accel::GpuBackend*>(&b))
      return gpu->last_stats().fps;
    return dynamic_cast<const accel::FpgaBackend&>(b).last_stats().fps;
  };
  auto run_accel = [&](const std::string& spec, const core::Corrector& corr) {
    const auto backend = core::BackendRegistry::create(spec);
    corr.correct(fish.view(), out.view(), *backend);
    table.row()
        .add(backend->name())
        .add(modeled_fps(*backend), 1)
        .add("cycle model")
        .add(img::max_abs_diff(reference.view(), out.view()));
  };
  run_accel("cell", float_corr);
  run_accel("fpga", packed_corr);
  run_accel("gpu", float_corr);

  std::cout << table.to_markdown();
  std::cout << "\nall backends agree within fixed-point tolerance; the "
               "accelerator rows report modeled hardware throughput, not "
               "host speed.\n";
  return 0;
}
