// Platform comparison in one command: runs the same 720p correction on
// every backend (serial, pooled, SIMD, Cell-sim, FPGA-sim), verifies the
// outputs agree, and prints a summary table — a miniature of bench T2.
//
//   ./platform_compare
#include <iostream>

#include "accel/accel_backend.hpp"
#include "core/corrector.hpp"
#include "image/metrics.hpp"
#include "runtime/report.hpp"
#include "util/cpu.hpp"
#include "runtime/stats.hpp"
#include "util/table.hpp"
#include "video/pipeline.hpp"

int main() {
  using namespace fisheye;
  const int w = 1280, h = 720;
  std::cout << "correcting one 720p frame on every platform ("
            << util::cpu_info().summary() << ")\n";

  const auto camera = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, util::kPi, w, h);
  const video::SyntheticVideoSource source(camera, w, h, 1);
  const img::Image8 fish = source.frame(0);

  const core::Corrector float_corr = core::Corrector::builder(w, h).build();
  const core::Corrector packed_corr = core::Corrector::builder(w, h)
                                          .map_mode(core::MapMode::PackedLut)
                                          .build();

  core::SerialBackend serial;
  img::Image8 reference(w, h, 1);
  float_corr.correct(fish.view(), reference.view(), serial);

  par::ThreadPool pool(0);
  core::PoolBackend pooled(pool);
  core::SimdBackend simd(&pool);
  accel::CellBackend cell(accel::SpeConfig{});
  accel::FpgaBackend fpga(accel::FpgaConfig{});

  util::Table table({"backend", "fps", "source", "max diff vs serial"});
  img::Image8 out(w, h, 1);

  auto run_cpu = [&](core::Backend& b, const core::Corrector& corr) {
    const rt::RunStats stats = rt::measure(
        [&] { corr.correct(fish.view(), out.view(), b); }, 5);
    table.row()
        .add(b.name())
        .add(rt::fps_from_seconds(stats.median), 1)
        .add("measured")
        .add(img::max_abs_diff(reference.view(), out.view()));
  };
  run_cpu(serial, float_corr);
  run_cpu(pooled, float_corr);
  run_cpu(simd, float_corr);

  float_corr.correct(fish.view(), out.view(), cell);
  table.row()
      .add(cell.name())
      .add(cell.last_stats().fps, 1)
      .add("cycle model")
      .add(img::max_abs_diff(reference.view(), out.view()));

  packed_corr.correct(fish.view(), out.view(), fpga);
  table.row()
      .add(fpga.name())
      .add(fpga.last_stats().fps, 1)
      .add("cycle model")
      .add(img::max_abs_diff(reference.view(), out.view()));

  std::cout << table.to_markdown();
  std::cout << "\nall backends agree within fixed-point tolerance; the "
               "accelerator rows report modeled hardware throughput, not "
               "host speed.\n";
  return 0;
}
