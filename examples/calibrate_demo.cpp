// Calibration walkthrough: recover fisheye intrinsics from noisy synthetic
// target detections, then build a corrector from the estimate and compare
// it against one built from ground truth.
//
//   ./calibrate_demo [noise_px]
#include <cstdlib>
#include <iostream>

#include "calib/calibrate.hpp"
#include "core/backend_registry.hpp"
#include "core/corrector.hpp"
#include "image/metrics.hpp"
#include "video/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  const double noise = argc > 1 ? std::atof(argv[1]) : 0.5;

  const int w = 1280, h = 720;
  const double fov = util::deg_to_rad(180.0);
  const auto truth =
      core::FisheyeCamera::centered(core::LensKind::Equidistant, fov, w, h);
  std::cout << "ground truth: focal " << truth.lens().focal() << " px, centre ("
            << truth.cx() << ", " << truth.cy() << ")\n"
            << "detector noise: " << noise << " px\n\n";

  // "Detect" an 11x11 target grid out to 80 degrees off-axis.
  util::Rng rng(2026);
  const auto obs = calib::make_grid_correspondences(
      truth, 11, util::deg_to_rad(80.0), noise, rng);
  std::cout << obs.size() << " correspondences\n";

  // Deliberately poor starting guess: 25% focal error, 30 px centre error.
  const calib::CalibrationResult est = calib::calibrate_radial(
      core::LensKind::Equidistant, obs, truth.lens().focal() * 1.25,
      truth.cx() + 30.0, truth.cy() - 20.0);

  std::cout << "converged in " << est.iterations << " accepted steps\n"
            << "estimate: focal " << est.focal << " px (err "
            << est.focal - truth.lens().focal() << "), centre (" << est.cx
            << ", " << est.cy << ")\n"
            << "rms reprojection error: " << est.rms_error_px << " px\n\n";

  // Correct a frame with both and compare.
  const video::SyntheticVideoSource source(truth, w, h, 1);
  const img::Image8 fish = source.frame(0);
  const double est_fov = 2.0 * (0.5 * std::min(w, h)) / est.focal;
  const core::Corrector corr_est =
      core::Corrector::builder(w, h)
          .fov_degrees(util::rad_to_deg(est_fov))
          .build();
  const core::Corrector corr_truth = core::Corrector::builder(w, h).build();
  const auto backend = core::BackendRegistry::create("serial");
  img::Image8 a(w, h, 1), b(w, h, 1);
  corr_est.correct(fish.view(), a.view(), *backend);
  corr_truth.correct(fish.view(), b.view(), *backend);
  std::cout << "corrected-image agreement (estimated vs true intrinsics): "
            << img::psnr(a.view(), b.view()) << " dB PSNR\n";
  return 0;
}
