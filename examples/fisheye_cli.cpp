// fisheye_cli — command-line correction utility.
//
//   ./fisheye_cli [input.(pgm|ppm|bmp)] --out corrected.ppm
//       [--lens LENS_SPEC]  equidistant|equisolid|orthographic|stereographic|
//                           rectilinear|kannala_brandt:k1=..|division:lambda=..
//                           with optional ,fov=<deg> (core/model_spec.hpp)
//       [--view VIEW_SPEC]  perspective[:fov=..]|cylindrical[:hfov=..]|
//                           equirect[:hfov=..,vfov=..]|quadview[:fov=..,tilt=..]
//       [--fov 180] [--out-width W] [--out-height H] [--out-focal F]
//       [--interp nearest|bilinear|bicubic|lanczos3]
//       [--border constant|replicate|reflect] [--fill 0]
//       [--backend SPEC] [--threads N]
//       [--map float|packed|compact[:stride]|otf] [--frac-bits 14] [--stats]
//       [--save-map maps.femap]   (persist the precomputed warp LUT)
//       [--list-backends]         (print every registered backend kind with
//                                  its options, including valid map= formats)
//
// SPEC is a BackendRegistry spec, e.g. serial, pool:dynamic,threads=4,
// simd, cell:spes=8, fpga (needs --map packed or compact), gpu,
// cluster:ranks=8. Backends that convert the map themselves take a spec
// option instead, e.g. pool:map=compact:8 against the default float map.
// --threads N is shorthand for appending threads=N to the spec.
//
// Without an input file a synthetic 720p fisheye test frame is corrected
// (so the tool demonstrates itself with zero assets).
#include <exception>
#include <iostream>
#include <string>

#include "core/backend_registry.hpp"
#include "core/corrector.hpp"
#include "core/map_io.hpp"
#include "image/io_bmp.hpp"
#include "image/io_pnm.hpp"
#include "runtime/stats.hpp"
#include "util/args.hpp"
#include "video/pipeline.hpp"

namespace {

using namespace fisheye;

core::Interp parse_interp(const std::string& name) {
  if (name == "nearest") return core::Interp::Nearest;
  if (name == "bilinear") return core::Interp::Bilinear;
  if (name == "bicubic") return core::Interp::Bicubic;
  if (name == "lanczos3") return core::Interp::Lanczos3;
  throw InvalidArgument("--interp: unknown kernel '" + name + "'");
}

img::BorderMode parse_border(const std::string& name) {
  if (name == "constant") return img::BorderMode::Constant;
  if (name == "replicate") return img::BorderMode::Replicate;
  if (name == "reflect") return img::BorderMode::Reflect;
  throw InvalidArgument("--border: unknown mode '" + name + "'");
}

struct MapRequest {
  core::MapMode mode = core::MapMode::FloatLut;
  int compact_stride = 8;
};

MapRequest parse_map(const std::string& name) {
  if (name == "float") return {core::MapMode::FloatLut, 8};
  if (name == "packed") return {core::MapMode::PackedLut, 8};
  if (name == "otf") return {core::MapMode::OnTheFly, 8};
  if (name == "compact") return {core::MapMode::CompactLut, 8};
  if (name.rfind("compact:", 0) == 0) {
    const std::string tail = name.substr(8);
    int stride = 0;
    try {
      std::size_t used = 0;
      stride = std::stoi(tail, &used);
      if (used != tail.size()) stride = 0;
    } catch (const std::exception&) {
      stride = 0;
    }
    if (stride < 1 || stride > 64 || (stride & (stride - 1)) != 0)
      throw InvalidArgument("--map: bad compact stride '" + tail +
                            "' (want a power of two in [1, 64])");
    return {core::MapMode::CompactLut, stride};
  }
  throw InvalidArgument("--map: unknown mode '" + name + "'");
}

img::Image8 load_input(const util::Args& args) {
  if (!args.positional().empty()) {
    const std::string& path = args.positional().front();
    if (path.size() > 4 && path.substr(path.size() - 4) == ".bmp")
      return img::read_bmp(path);
    return img::read_pnm(path);
  }
  std::cout << "no input given; using a synthetic 1280x720 fisheye frame\n";
  const auto cam = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, util::kPi, 1280, 720);
  return video::SyntheticVideoSource(cam, 1280, 720, 3).frame(0);
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Args args(argc, argv);
  if (args.get_bool("help")) {
    std::cout << "usage: " << args.program()
              << " [input.pgm|ppm|bmp] --out FILE [options]\n"
                 "see the header of examples/fisheye_cli.cpp for the full "
                 "option list.\n";
    return 0;
  }
  if (args.get_bool("list-backends")) {
    for (const auto& [kind, summary] : core::BackendRegistry::instance().help())
      std::cout << kind << "\n    " << summary << "\n";
    return 0;
  }

  const img::Image8 input = load_input(args);
  const std::string out_path = args.get("out", "corrected.ppm");

  const MapRequest map_request = parse_map(args.get("map", "float"));
  core::Corrector::Builder builder(input.width(), input.height());
  builder.lens(core::LensSpec::parse(args.get("lens", "equidistant")))
      .view(core::ViewSpec::parse(args.get("view", "perspective")))
      .output_size(args.get_int("out-width", 0),
                   args.get_int("out-height", 0))
      .output_focal(args.get_double("out-focal", 0.0))
      .interp(parse_interp(args.get("interp", "bilinear")))
      .border(parse_border(args.get("border", "constant")),
              static_cast<std::uint8_t>(args.get_int("fill", 0)))
      .map_mode(map_request.mode)
      .compact_stride(map_request.compact_stride)
      .frac_bits(args.get_int("frac-bits", 14));
  // --fov overrides the lens spec's field of view; 0/absent keeps it.
  if (args.get_double("fov", 0.0) > 0.0)
    builder.fov_degrees(args.get_double("fov", 0.0));
  const core::Corrector corrector = builder.build();
  if (corrector.compact() != nullptr)
    std::cout << "compact map: stride " << corrector.compact()->stride
              << ", " << corrector.compact()->bytes() / 1024 << " KiB, max "
              << corrector.compact()->max_error << " px reconstruction "
              << "error\n";

  if (args.has("save-map")) {
    const std::string map_path = args.get("save-map", "map.femap");
    // Stamp the file with the models that built it, so a later load under
    // a different calibration is refused instead of silently remapping.
    const core::MapProvenance prov{corrector.config().lens.name(),
                                   corrector.config().view.name()};
    if (corrector.compact() != nullptr) {
      core::save_map(map_path, *corrector.compact(), prov);
      std::cout << "saved compact warp map to " << map_path << " (lens="
                << prov.lens << ", view=" << prov.view << ")\n";
    } else if (corrector.map() != nullptr) {
      core::save_map(map_path, *corrector.map(), prov);
      std::cout << "saved warp map to " << map_path << " (lens=" << prov.lens
                << ", view=" << prov.view << ")\n";
    }
  }

  std::string spec = args.get("backend", "serial");
  const int threads = args.get_int("threads", -1);
  if (threads >= 0)
    spec += (spec.find(':') == std::string::npos ? ":" : ",") +
            ("threads=" + std::to_string(threads));
  const std::unique_ptr<core::Backend> backend =
      core::BackendRegistry::create(spec);

  img::Image8 output(corrector.config().out_width,
                     corrector.config().out_height, input.channels());
  // Plan once (prepare), then run the steady-state path — the structure a
  // video loop would use; --stats times only the per-frame execute.
  const core::Corrector::Prepared prepared =
      corrector.prepare(*backend, input.channels());
  if (args.get_bool("stats")) {
    const rt::RunStats stats = rt::measure(
        [&] { corrector.correct(prepared, input.view(), output.view()); },
        7);
    std::cout << backend->name() << ": " << stats.median * 1e3
              << " ms/frame (" << 1.0 / stats.median << " fps)\n";
  } else {
    corrector.correct(prepared, input.view(), output.view());
  }

  if (out_path.size() > 4 && out_path.substr(out_path.size() - 4) == ".bmp")
    img::write_bmp(out_path, output.view());
  else
    img::write_pnm(out_path, output.view());
  std::cout << "wrote " << out_path << " (" << output.width() << 'x'
            << output.height() << ")\n";
  return 0;
} catch (const fisheye::Error& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
