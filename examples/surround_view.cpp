// Surround view: four fisheye cameras at 90-degree spacing fused into one
// 360-degree panorama — the automotive/installation use case.
//
//   ./surround_view [out_dir]
//
// Inputs are rendered from a synthetic 360-degree street environment so the
// stitched result has a pixel-accurate reference; the example reports the
// coverage, per-frame stitch time, and writes all inputs plus the panorama.
#include <iostream>
#include <string>
#include <vector>

#include "image/io_pnm.hpp"
#include "image/metrics.hpp"
#include "runtime/timer.hpp"
#include "stitch/environment.hpp"
#include "stitch/ground_view.hpp"
#include "stitch/stitcher.hpp"

int main(int argc, char** argv) try {
  using namespace fisheye;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  // The world: a seamless 360-degree street scene.
  const img::Image8 env = stitch::make_street_environment(2048, 1024);

  // The rig: four 185-degree cameras, one per side (generous overlap).
  const int fw = 640, fh = 640;
  std::vector<stitch::RigCamera> rig;
  for (int i = 0; i < 4; ++i) {
    rig.push_back({core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 util::deg_to_rad(185.0), fw,
                                                 fh),
                   util::Mat3::rot_y(util::deg_to_rad(90.0 * i)), fw, fh});
  }

  // Per-camera input frames.
  std::vector<img::Image8> frames;
  std::vector<img::ConstImageView<std::uint8_t>> views;
  for (std::size_t c = 0; c < rig.size(); ++c) {
    frames.push_back(stitch::render_from_environment(
        env.view(), rig[c].camera, rig[c].world_from_cam, fw, fh));
    views.push_back(frames.back().view());
    const std::string path =
        out_dir + "/surround_cam" + std::to_string(c) + ".ppm";
    img::write_pnm(path, frames.back().view());
    std::cout << "wrote " << path << '\n';
  }

  // One-time setup: maps + feather weights for a full 360 x 100 panorama.
  const rt::Stopwatch setup_sw;
  const stitch::PanoramaStitcher stitcher(rig, 1440, 400,
                                          util::deg_to_rad(360.0),
                                          util::deg_to_rad(100.0));
  std::cout << "setup " << setup_sw.elapsed_ms() << " ms; uncovered pixels: "
            << stitcher.uncovered_pixels() << " of " << 1440 * 400 << '\n';

  // Steady state.
  par::ThreadPool pool(0);
  const rt::Stopwatch sw;
  img::Image8 pano;
  const int reps = 5;
  for (int i = 0; i < reps; ++i) pano = stitcher.stitch(views, &pool);
  std::cout << "stitch: " << sw.elapsed_ms() / reps << " ms/frame ("
            << 4 << " cameras -> 1440x400)\n";

  img::write_pnm(out_dir + "/surround_panorama.ppm", pano.view());
  std::cout << "wrote " << out_dir << "/surround_panorama.ppm\n";

  // Bonus: the top-down parking view from the same rig (tilt the cameras
  // 40 degrees toward the ground for realistic coverage).
  std::vector<stitch::RigCamera> down_rig = rig;
  for (auto& rc : down_rig)
    rc.world_from_cam =
        rc.world_from_cam * util::Mat3::rot_x(-util::deg_to_rad(40.0));
  std::vector<img::Image8> down_frames;
  std::vector<img::ConstImageView<std::uint8_t>> down_views;
  for (const auto& rc : down_rig) {
    down_frames.push_back(stitch::render_from_environment(
        env.view(), rc.camera, rc.world_from_cam, fw, fh));
    down_views.push_back(down_frames.back().view());
  }
  const stitch::GroundPlaneView top(480, 480, 0.04, 2.0);
  const stitch::PanoramaStitcher top_stitcher(down_rig, top);
  const img::Image8 topdown = top_stitcher.stitch(down_views, &pool);
  img::write_pnm(out_dir + "/surround_topdown.ppm", topdown.view());
  std::cout << "wrote " << out_dir << "/surround_topdown.ppm ("
            << top_stitcher.uncovered_pixels() << " uncovered px)\n";
  return 0;
} catch (const fisheye::Error& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
