// Panorama: unwrap a 180-degree fisheye into equirectangular and
// cylindrical strips — the automotive surround-view projection.
//
//   ./panorama [out_dir]
#include <iostream>
#include <string>

#include "core/mapping.hpp"
#include "core/remap.hpp"
#include "image/io_pnm.hpp"
#include "video/pipeline.hpp"

int main(int argc, char** argv) try {
  using namespace fisheye;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  const int width = 1280, height = 720;
  const auto camera = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, util::deg_to_rad(180.0), width, height);
  const video::SyntheticVideoSource source(camera, width, height, 3);
  const img::Image8 fish = source.frame(0);
  img::write_pnm(out_dir + "/panorama_input.ppm", fish.view());

  const core::RemapOptions opts{core::Interp::Bilinear,
                                img::BorderMode::Constant, 0};

  // Equirectangular: 170 x 70 degrees onto a 1440x480 strip.
  {
    const core::EquirectangularView view(1440, 480, util::deg_to_rad(170.0),
                                         util::deg_to_rad(70.0));
    const core::WarpMap map = core::build_map(camera, view);
    img::Image8 pano(1440, 480, 3);
    core::remap_rect(fish.view(), pano.view(), map, {0, 0, 1440, 480}, opts);
    img::write_pnm(out_dir + "/panorama_equirect.ppm", pano.view());
    std::cout << "wrote " << out_dir << "/panorama_equirect.ppm ("
              << 100.0 * core::valid_fraction(map, width, height)
              << "% of pixels inside the image circle)\n";
  }

  // Cylindrical: straight verticals for the same horizontal span.
  {
    const core::CylindricalView view(1440, 420, util::deg_to_rad(170.0),
                                     480.0);
    const core::WarpMap map = core::build_map(camera, view);
    img::Image8 pano(1440, 420, 3);
    core::remap_rect(fish.view(), pano.view(), map, {0, 0, 1440, 420}, opts);
    img::write_pnm(out_dir + "/panorama_cylindrical.ppm", pano.view());
    std::cout << "wrote " << out_dir << "/panorama_cylindrical.ppm\n";
  }

  std::cout << "input: " << out_dir << "/panorama_input.ppm\n"
            << "compare the lamp posts: bowed in the input, vertical in "
               "the cylindrical unwrap.\n";
  return 0;
} catch (const fisheye::Error& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
