// Quickstart: synthesize a fisheye frame, correct it, write both to disk.
//
//   ./quickstart [out_dir]
//
// Produces out_dir/quickstart_fisheye.ppm and out_dir/quickstart_corrected.ppm
// (plus BMP copies) and prints what happened. No inputs required — the
// fisheye frame is rendered from a synthetic street scene through the exact
// forward lens model, so you can eyeball the straightened verticals.
#include <iostream>
#include <string>

#include "core/backend_registry.hpp"
#include "core/corrector.hpp"
#include "image/io_bmp.hpp"
#include "image/io_pnm.hpp"
#include "video/pipeline.hpp"

int main(int argc, char** argv) try {
  using namespace fisheye;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  // 1. A 720p, 180-degree equidistant fisheye camera.
  const int width = 1280, height = 720;
  const auto camera = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, util::deg_to_rad(180.0), width, height);
  std::cout << "camera: equidistant fisheye, 180 deg, focal "
            << camera.lens().focal() << " px\n";

  // 2. Render a fisheye frame of the synthetic street scene.
  const video::SyntheticVideoSource source(camera, width, height, 3);
  const img::Image8 fisheye_frame = source.frame(0);
  img::write_pnm(out_dir + "/quickstart_fisheye.ppm", fisheye_frame.view());

  // 3. Configure the corrector once (expensive: builds the warp LUT)...
  const core::Corrector corrector = core::Corrector::builder(width, height)
                                        .fov_degrees(180.0)
                                        .interp(core::Interp::Bilinear)
                                        .build();

  // 4. ...then correct frames cheaply. Any registered backend works —
  // swap the spec for "pool:threads=4", "simd", "cell", ... For a frame
  // loop, prepare() builds the execution plan once and correct() just runs
  // it (the plan stays valid until the corrector's map or geometry change).
  const auto backend = core::BackendRegistry::create("serial");
  const core::Corrector::Prepared prepared = corrector.prepare(*backend, 3);
  img::Image8 corrected(width, height, 3);
  corrector.correct(prepared, fisheye_frame.view(), corrected.view());

  img::write_pnm(out_dir + "/quickstart_corrected.ppm", corrected.view());
  img::write_bmp(out_dir + "/quickstart_corrected.bmp", corrected.view());

  std::cout << "wrote " << out_dir << "/quickstart_fisheye.ppm (input)\n"
            << "wrote " << out_dir << "/quickstart_corrected.{ppm,bmp}\n"
            << "output focal: " << corrector.config().out_focal
            << " px (matched to preserve centre resolution)\n";
  return 0;
} catch (const fisheye::Error& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
