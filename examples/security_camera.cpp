// Security-camera scenario: one ceiling fisheye feeds several virtual
// pan-tilt-zoom operators simultaneously — the surveillance use case that
// motivated real-time fisheye correction.
//
//   ./security_camera [frames] [out_dir]
//
// Runs a short clip: each frame is corrected into four PTZ views on the
// thread pool; the first frame's views are written as PPMs and per-view
// throughput is reported.
#include <iostream>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/mapping.hpp"
#include "image/io_pnm.hpp"
#include "runtime/timer.hpp"
#include "video/pipeline.hpp"

int main(int argc, char** argv) try {
  using namespace fisheye;
  const int frames = argc > 1 ? std::max(1, std::atoi(argv[1])) : 30;
  const std::string out_dir = argc > 2 ? argv[2] : ".";

  const int width = 1280, height = 720;
  const auto camera = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, util::deg_to_rad(180.0), width, height);
  const video::SyntheticVideoSource source(camera, width, height, 3);

  // Four fixed virtual operators: wide overview plus three zoomed patrols.
  struct Operator {
    const char* name;
    double pan_deg, tilt_deg, hfov_deg;
  };
  const Operator operators[] = {
      {"overview", 0.0, 5.0, 100.0},
      {"gate-left", -45.0, 8.0, 45.0},
      {"gate-right", 45.0, 8.0, 45.0},
      {"zoom-centre", 0.0, 12.0, 30.0},
  };

  // Build one warp map per view (one-time setup).
  const int vw = 640, vh = 360;
  std::vector<core::WarpMap> maps;
  for (const Operator& op : operators) {
    const core::PerspectiveView view = core::PerspectiveView::ptz(
        vw, vh, util::deg_to_rad(op.pan_deg), util::deg_to_rad(op.tilt_deg),
        util::deg_to_rad(op.hfov_deg));
    maps.push_back(core::build_map(camera, view));
  }

  par::ThreadPool pool(0);
  const core::RemapOptions opts{core::Interp::Bilinear,
                                img::BorderMode::Constant, 0};
  std::vector<img::Image8> views;
  for (std::size_t v = 0; v < maps.size(); ++v) views.emplace_back(vw, vh, 3);

  double total_s = 0.0;
  for (int f = 0; f < frames; ++f) {
    const img::Image8 frame = source.frame(f);
    const rt::Stopwatch sw;
    // All views of one frame in parallel: the natural decomposition when
    // several operators watch one camera.
    par::parallel_for_each(pool, maps.size(), [&](std::size_t v) {
      core::remap_rect(frame.view(), views[v].view(), maps[v],
                       {0, 0, vw, vh}, opts);
    });
    total_s += sw.elapsed_seconds();
    if (f == 0) {
      for (std::size_t v = 0; v < maps.size(); ++v) {
        const std::string path = out_dir + "/security_" +
                                 operators[v].name + ".ppm";
        img::write_pnm(path, views[v].view());
        std::cout << "wrote " << path << '\n';
      }
    }
  }
  std::cout << frames << " frames x " << maps.size() << " PTZ views: "
            << 1e3 * total_s / frames << " ms/frame ("
            << frames / total_s << " fps aggregate, "
            << maps.size() * frames / total_s << " views/s)\n";
  return 0;
} catch (const fisheye::Error& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
