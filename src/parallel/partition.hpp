// Frame decomposition strategies.
//
// How a frame is split across workers decides both load balance (per-pixel
// remap work varies radially: edge pixels of a constant-border output cost
// almost nothing, centre pixels interpolate) and locality (source accesses
// of a tile stay inside one bounding box; rows of the output touch a wide
// arc of the source). F2 compares these policies head to head.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace fisheye::par {

/// Half-open pixel-space rectangle [x0,x1) x [y0,y1).
struct Rect {
  int x0 = 0;
  int y0 = 0;
  int x1 = 0;
  int y1 = 0;

  [[nodiscard]] constexpr int width() const noexcept { return x1 - x0; }
  [[nodiscard]] constexpr int height() const noexcept { return y1 - y0; }
  [[nodiscard]] constexpr long long area() const noexcept {
    return static_cast<long long>(width()) * height();
  }
  [[nodiscard]] constexpr bool empty() const noexcept {
    return x1 <= x0 || y1 <= y0;
  }
  constexpr bool operator==(const Rect&) const noexcept = default;
};

enum class PartitionKind {
  RowBlocks,    ///< contiguous horizontal bands, one per chunk
  RowCyclic,    ///< single rows dealt round-robin (fine-grained, balanced)
  Tiles,        ///< 2D tile grid (the locality-friendly accelerator layout)
  ColumnBlocks  ///< vertical bands (pathological for row-major locality)
};

[[nodiscard]] const char* partition_name(PartitionKind kind) noexcept;

/// Split `width` x `height` into chunks according to `kind`.
/// - RowBlocks/ColumnBlocks: `chunks` near-equal bands.
/// - RowCyclic: one chunk per row (chunks parameter ignored).
/// - Tiles: grid of `tile_w` x `tile_h` tiles (last row/column truncated).
/// Every pixel is covered exactly once (tested property).
std::vector<Rect> partition(int width, int height, PartitionKind kind,
                            int chunks, int tile_w = 64, int tile_h = 64);

/// Interleave the low 16 bits of x and y into a Morton (Z-order) code.
/// Rect centroids mapped through this code give a space-filling traversal:
/// consecutive codes are spatially adjacent, which is what makes a
/// Morton-sorted tile schedule walk the source image cache-coherently.
[[nodiscard]] std::uint32_t morton2d(std::uint32_t x, std::uint32_t y) noexcept;

/// Permutation of [0, keys.size()) ordered by morton2d of each rect's
/// centroid. Empty rects (tiles that touch no source pixel) sort after all
/// non-empty ones in index order — they are near-free fill work, so they
/// belong in the schedule tail. The permutation is deterministic: ties
/// break by index.
std::vector<std::uint32_t> morton_order(const std::vector<Rect>& keys);

}  // namespace fisheye::par
