#include "parallel/partition.hpp"

#include <algorithm>

namespace fisheye::par {

const char* partition_name(PartitionKind kind) noexcept {
  switch (kind) {
    case PartitionKind::RowBlocks: return "row-blocks";
    case PartitionKind::RowCyclic: return "row-cyclic";
    case PartitionKind::Tiles: return "tiles";
    case PartitionKind::ColumnBlocks: return "column-blocks";
  }
  return "?";
}

std::vector<Rect> partition(int width, int height, PartitionKind kind,
                            int chunks, int tile_w, int tile_h) {
  FE_EXPECTS(width > 0 && height > 0);
  std::vector<Rect> out;

  switch (kind) {
    case PartitionKind::RowBlocks: {
      FE_EXPECTS(chunks > 0);
      const int n = std::min(chunks, height);
      out.reserve(n);
      for (int i = 0; i < n; ++i) {
        // Balanced split: first (height % n) bands get one extra row.
        const int y0 = static_cast<int>(
            static_cast<long long>(height) * i / n);
        const int y1 = static_cast<int>(
            static_cast<long long>(height) * (i + 1) / n);
        out.push_back({0, y0, width, y1});
      }
      break;
    }
    case PartitionKind::ColumnBlocks: {
      FE_EXPECTS(chunks > 0);
      const int n = std::min(chunks, width);
      out.reserve(n);
      for (int i = 0; i < n; ++i) {
        const int x0 =
            static_cast<int>(static_cast<long long>(width) * i / n);
        const int x1 =
            static_cast<int>(static_cast<long long>(width) * (i + 1) / n);
        out.push_back({x0, 0, x1, height});
      }
      break;
    }
    case PartitionKind::RowCyclic: {
      out.reserve(static_cast<std::size_t>(height));
      for (int y = 0; y < height; ++y) out.push_back({0, y, width, y + 1});
      break;
    }
    case PartitionKind::Tiles: {
      FE_EXPECTS(tile_w > 0 && tile_h > 0);
      for (int y = 0; y < height; y += tile_h)
        for (int x = 0; x < width; x += tile_w)
          out.push_back({x, y, std::min(x + tile_w, width),
                         std::min(y + tile_h, height)});
      break;
    }
  }
  FE_ENSURES(!out.empty());
  return out;
}

}  // namespace fisheye::par
