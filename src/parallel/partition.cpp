#include "parallel/partition.hpp"

#include <algorithm>

namespace fisheye::par {

const char* partition_name(PartitionKind kind) noexcept {
  switch (kind) {
    case PartitionKind::RowBlocks: return "row-blocks";
    case PartitionKind::RowCyclic: return "row-cyclic";
    case PartitionKind::Tiles: return "tiles";
    case PartitionKind::ColumnBlocks: return "column-blocks";
  }
  return "?";
}

std::vector<Rect> partition(int width, int height, PartitionKind kind,
                            int chunks, int tile_w, int tile_h) {
  FE_EXPECTS(width > 0 && height > 0);
  std::vector<Rect> out;

  switch (kind) {
    case PartitionKind::RowBlocks: {
      FE_EXPECTS(chunks > 0);
      const int n = std::min(chunks, height);
      out.reserve(n);
      for (int i = 0; i < n; ++i) {
        // Balanced split: first (height % n) bands get one extra row.
        const int y0 = static_cast<int>(
            static_cast<long long>(height) * i / n);
        const int y1 = static_cast<int>(
            static_cast<long long>(height) * (i + 1) / n);
        out.push_back({0, y0, width, y1});
      }
      break;
    }
    case PartitionKind::ColumnBlocks: {
      FE_EXPECTS(chunks > 0);
      const int n = std::min(chunks, width);
      out.reserve(n);
      for (int i = 0; i < n; ++i) {
        const int x0 =
            static_cast<int>(static_cast<long long>(width) * i / n);
        const int x1 =
            static_cast<int>(static_cast<long long>(width) * (i + 1) / n);
        out.push_back({x0, 0, x1, height});
      }
      break;
    }
    case PartitionKind::RowCyclic: {
      out.reserve(static_cast<std::size_t>(height));
      for (int y = 0; y < height; ++y) out.push_back({0, y, width, y + 1});
      break;
    }
    case PartitionKind::Tiles: {
      FE_EXPECTS(tile_w > 0 && tile_h > 0);
      for (int y = 0; y < height; y += tile_h)
        for (int x = 0; x < width; x += tile_w)
          out.push_back({x, y, std::min(x + tile_w, width),
                         std::min(y + tile_h, height)});
      break;
    }
  }
  FE_ENSURES(!out.empty());
  return out;
}

std::uint32_t morton2d(std::uint32_t x, std::uint32_t y) noexcept {
  // Spread the low 16 bits of each coordinate into the even bit positions
  // (classic bit-twiddling dilation), then interleave.
  auto spread = [](std::uint32_t v) noexcept {
    v &= 0xFFFFu;
    v = (v | (v << 8)) & 0x00FF00FFu;
    v = (v | (v << 4)) & 0x0F0F0F0Fu;
    v = (v | (v << 2)) & 0x33333333u;
    v = (v | (v << 1)) & 0x55555555u;
    return v;
  };
  return spread(x) | (spread(y) << 1);
}

std::vector<std::uint32_t> morton_order(const std::vector<Rect>& keys) {
  std::vector<std::uint32_t> order(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i)
    order[i] = static_cast<std::uint32_t>(i);
  std::vector<std::uint32_t> code(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const Rect& r = keys[i];
    code[i] = r.empty()
                  ? 0  // ranked by the `empty` flag below, not the code
                  : morton2d(static_cast<std::uint32_t>((r.x0 + r.x1) / 2),
                             static_cast<std::uint32_t>((r.y0 + r.y1) / 2));
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     const bool ea = keys[a].empty();
                     const bool eb = keys[b].empty();
                     if (ea != eb) return !ea;  // fill tiles last
                     if (ea) return a < b;      // stable index order
                     if (code[a] != code[b]) return code[a] < code[b];
                     return a < b;
                   });
  return order;
}

}  // namespace fisheye::par
