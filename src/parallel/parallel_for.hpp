// parallel_for with OpenMP-style scheduling policies over a ThreadPool.
//
// Static: the index space is pre-split into one contiguous chunk per lane.
// Dynamic: lanes pull fixed-size chunks from a shared cursor.
// Guided: like dynamic but chunk size decays (remaining / (2 * lanes)),
//         so early chunks are large (low overhead) and late chunks are small
//         (good tail balance) — exactly the OpenMP `guided` semantics.
//
// Exceptions thrown by the body are captured, the loop completes, and the
// first exception is rethrown on the calling thread (E.25-friendly: no
// exception crosses a thread boundary unobserved).
//
// Header templates end to end: the body is never erased into a
// std::function, so per-frame dispatch (the pooled backends' hot path)
// performs no heap allocation — see ThreadPool::run_indexed.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "parallel/work_stealing.hpp"
#include "util/error.hpp"

namespace fisheye::par {

enum class Schedule { Static, Dynamic, Guided, Steal };

[[nodiscard]] constexpr const char* schedule_name(Schedule s) noexcept {
  switch (s) {
    case Schedule::Static: return "static";
    case Schedule::Dynamic: return "dynamic";
    case Schedule::Guided: return "guided";
    case Schedule::Steal: return "steal";
  }
  return "?";
}

struct ForOptions {
  Schedule schedule = Schedule::Static;
  /// Chunk size for Dynamic (indices per grab); minimum chunk for Guided.
  std::size_t chunk = 1;
};

namespace detail {

/// Captures the first exception thrown by any lane.
class ErrorSlot {
 public:
  void capture() noexcept {
    const std::scoped_lock lock(mu_);
    if (!error_) error_ = std::current_exception();
  }
  void rethrow_if_set() {
    if (error_) std::rethrow_exception(error_);
  }

 private:
  std::mutex mu_;
  std::exception_ptr error_;
};

/// Schedule::Steal for ad-hoc parallel_for calls: fixed-size chunks in
/// index order, even initial runs across the pool, work stealing for the
/// tail. Allocates its scheduler per call — steady-state frame loops use a
/// persistent WorkStealingPool instead.
template <class Guarded>
void run_steal(ThreadPool& pool, std::size_t n, std::size_t chunk,
               const Guarded& guarded) {
  const std::size_t items = (n + chunk - 1) / chunk;
  std::vector<std::uint32_t> order(items);
  for (std::size_t i = 0; i < items; ++i)
    order[i] = static_cast<std::uint32_t>(i);
  WorkStealingPool ws(pool);
  const std::vector<std::size_t> runs =
      balanced_runs(items, ws.size(), [](std::size_t) { return 1.0; });
  ws.run_ordered(order.data(), items, runs, [&](std::size_t i) {
    const std::size_t b = i * chunk;
    guarded(b, std::min(b + chunk, n));
  });
}

}  // namespace detail

/// Run `body(begin, end)` over [0, n) split across `pool` per `opts`.
/// `body` receives contiguous half-open subranges and must be data-race
/// free across disjoint ranges.
template <class Body>
void parallel_for(ThreadPool& pool, std::size_t n, const Body& body,
                  ForOptions opts = {}) {
  if (n == 0) return;
  FE_EXPECTS(opts.chunk >= 1);
  const std::size_t lanes = std::min<std::size_t>(pool.size(), n);

  detail::ErrorSlot errors;
  auto guarded = [&](std::size_t b, std::size_t e) {
    try {
      body(b, e);
    } catch (...) {
      errors.capture();
    }
  };

  switch (opts.schedule) {
    case Schedule::Static: {
      // One contiguous chunk per lane; run_indexed assigns lane i chunk i.
      pool.run_indexed(lanes, [&](std::size_t lane) {
        const std::size_t b = n * lane / lanes;
        const std::size_t e = n * (lane + 1) / lanes;
        if (b < e) guarded(b, e);
      });
      break;
    }
    case Schedule::Dynamic: {
      std::atomic<std::size_t> cursor{0};
      const std::size_t chunk = opts.chunk;
      pool.run_indexed(lanes, [&](std::size_t) {
        for (;;) {
          const std::size_t b =
              cursor.fetch_add(chunk, std::memory_order_relaxed);
          if (b >= n) return;
          guarded(b, std::min(b + chunk, n));
        }
      });
      break;
    }
    case Schedule::Guided: {
      std::atomic<std::size_t> cursor{0};
      const std::size_t min_chunk = opts.chunk;
      pool.run_indexed(lanes, [&](std::size_t) {
        for (;;) {
          // Optimistic size estimate from the current cursor; claim with a
          // single fetch_add of that size (classic guided self-scheduling).
          const std::size_t done = cursor.load(std::memory_order_relaxed);
          if (done >= n) return;
          const std::size_t remaining = n - done;
          const std::size_t want =
              std::max(min_chunk, remaining / (2 * lanes));
          const std::size_t b =
              cursor.fetch_add(want, std::memory_order_relaxed);
          if (b >= n) return;
          guarded(b, std::min(b + want, n));
        }
      });
      break;
    }
    case Schedule::Steal: {
      // Generic entry point: chunks in index order, even initial runs, and
      // work stealing to repair imbalance. The pooled backend's steal
      // schedule does NOT come through here — it pre-orders plan tiles by
      // source locality and reuses a persistent WorkStealingPool (see
      // work_stealing.hpp); this path serves ad-hoc parallel_for callers.
      detail::run_steal(pool, n, opts.chunk, guarded);
      break;
    }
  }
  errors.rethrow_if_set();
}

/// Convenience: per-index body.
template <class Body>
void parallel_for_each(ThreadPool& pool, std::size_t n, const Body& body,
                       ForOptions opts = {}) {
  parallel_for(
      pool, n,
      [&body](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) body(i);
      },
      opts);
}

}  // namespace fisheye::par
