// parallel_for with OpenMP-style scheduling policies over a ThreadPool.
//
// Static: the index space is pre-split into one contiguous chunk per lane.
// Dynamic: lanes pull fixed-size chunks from a shared cursor.
// Guided: like dynamic but chunk size decays (remaining / (2 * lanes)),
//         so early chunks are large (low overhead) and late chunks are small
//         (good tail balance) — exactly the OpenMP `guided` semantics.
//
// Exceptions thrown by the body are captured, the loop completes, and the
// first exception is rethrown on the calling thread (E.25-friendly: no
// exception crosses a thread boundary unobserved).
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <mutex>

#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace fisheye::par {

enum class Schedule { Static, Dynamic, Guided };

[[nodiscard]] constexpr const char* schedule_name(Schedule s) noexcept {
  switch (s) {
    case Schedule::Static: return "static";
    case Schedule::Dynamic: return "dynamic";
    case Schedule::Guided: return "guided";
  }
  return "?";
}

struct ForOptions {
  Schedule schedule = Schedule::Static;
  /// Chunk size for Dynamic (indices per grab); minimum chunk for Guided.
  std::size_t chunk = 1;
};

/// Run `body(begin, end)` over [0, n) split across `pool` per `opts`.
/// `body` receives contiguous half-open subranges and must be data-race
/// free across disjoint ranges.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  ForOptions opts = {});

/// Convenience: per-index body.
void parallel_for_each(ThreadPool& pool, std::size_t n,
                       const std::function<void(std::size_t)>& body,
                       ForOptions opts = {});

}  // namespace fisheye::par
