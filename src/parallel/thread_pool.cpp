#include "parallel/thread_pool.hpp"

#include <atomic>

#include "util/cpu.hpp"
#include "util/error.hpp"

namespace fisheye::par {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = util::cpu_info().hardware_threads;
  FE_EXPECTS(threads >= 1 && threads <= 1024);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mu_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::scoped_lock lock(mu_);
    FE_EXPECTS(!stopping_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      const std::scoped_lock lock(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace fisheye::par
