#include "parallel/thread_pool.hpp"

#include <atomic>

#include "util/cpu.hpp"
#include "util/error.hpp"

namespace fisheye::par {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = util::cpu_info().hardware_threads;
  FE_EXPECTS(threads >= 1 && threads <= 1024);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mu_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::scoped_lock lock(mu_);
    FE_EXPECTS(!stopping_);
    if (ring_count_ == ring_.size()) {
      // Grow and restore contiguity. Rare: capacity is bounded by the peak
      // outstanding-task count (the lane count for run_indexed frames), so
      // steady-state frames never reach here.
      std::vector<std::function<void()>> bigger(
          std::max<std::size_t>(ring_.size() * 2, 16));
      for (std::size_t i = 0; i < ring_count_; ++i)
        bigger[i] = std::move(ring_[(ring_head_ + i) % ring_.size()]);
      ring_ = std::move(bigger);
      ring_head_ = 0;
    }
    ring_[(ring_head_ + ring_count_) % ring_.size()] = std::move(task);
    ++ring_count_;
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stopping_ || ring_count_ != 0; });
      if (ring_count_ == 0) return;  // stopping_ and drained
      task = std::move(ring_[ring_head_]);
      ring_head_ = (ring_head_ + 1) % ring_.size();
      --ring_count_;
    }
    task();
    {
      const std::scoped_lock lock(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace fisheye::par
