// Small synchronization helpers shared by the parallel backends and the
// accelerator simulators.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

#include "util/aligned.hpp"

namespace fisheye::par {

/// Pads T to its own cache line; used for per-worker counters so that the
/// scheduling statistics gathered during benches never false-share.
template <class T>
struct alignas(util::kCacheLine) CacheAligned {
  T value{};
};

/// Sense-reversing spin barrier for a fixed set of participants. The SPE
/// simulator uses it to model the hardware barrier between DMA phases.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t participants) noexcept
      : participants_(participants) {}

  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == participants_) {
      count_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) != my_sense)
        std::this_thread::yield();
    }
  }

 private:
  const std::size_t participants_;
  std::atomic<std::size_t> count_{0};
  std::atomic<bool> sense_{false};
};

}  // namespace fisheye::par
