// Fixed-size worker pool.
//
// This is the multicore substrate of the study: the CPU backends decompose
// a frame into ranges/tiles and run them on this pool. The pool is built
// once per Corrector (thread creation is far more expensive than a frame)
// and torn down deterministically in the destructor (CP.23: joined, never
// detached).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/aligned.hpp"

namespace fisheye::par {

class ThreadPool {
 public:
  /// Create `threads` workers. 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue one task. Tasks must not throw; kernels report errors through
  /// their own channels (the parallel_for wrapper converts exceptions into
  /// a stored first-error that is rethrown on the caller thread).
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has finished executing.
  void wait_idle();

  /// Run `n` invocations of `fn(index)` across the pool and wait. Work runs
  /// exclusively on the workers so that "pool of N" means exactly N lanes —
  /// the property the thread-scaling benches (F1) depend on.
  ///
  /// Templated on the callable: the per-lane tasks capture one pointer to a
  /// stack-resident control block (cursor + n + callable), so dispatching a
  /// frame performs no per-lane heap allocation — this is the hot path of
  /// every pooled backend. `fn` must not throw (see submit()).
  template <class Fn>
  void run_indexed(std::size_t n, Fn&& fn) {
    if (n == 0) return;
    // One shared atomic cursor instead of n queue entries: cheaper for the
    // fine-grained dynamic schedules, and every worker stays busy until the
    // index space is drained. The block lives on this stack frame; tasks
    // are guaranteed drained (wait_idle) before it unwinds.
    //
    // The cursor sits alone on its cache line: it is written by every lane
    // on every grab, while n/batch/fn are read-only — sharing a line would
    // have each fetch_add invalidate the constants in every other lane's
    // cache. For fine-grained index spaces (n >> lanes) lanes also grab
    // small batches instead of single indices, cutting cursor traffic by
    // the batch factor while keeping the tail balanced (the last batches
    // are at most ~1/8 of a lane's fair share each).
    struct Control {
      alignas(util::kCacheLine) std::atomic<std::size_t> cursor{0};
      alignas(util::kCacheLine) std::size_t n;
      std::size_t batch;
      std::remove_reference_t<Fn>* fn;
    } control;
    const std::size_t lanes = std::min<std::size_t>(n, workers_.size());
    control.n = n;
    control.batch = std::clamp<std::size_t>(n / (lanes * 8), 1, 16);
    control.fn = std::addressof(fn);
    try {
      for (std::size_t l = 0; l < lanes; ++l) {
        submit([ctl = &control] {
          for (;;) {
            const std::size_t b =
                ctl->cursor.fetch_add(ctl->batch, std::memory_order_relaxed);
            if (b >= ctl->n) return;
            const std::size_t e = std::min(b + ctl->batch, ctl->n);
            for (std::size_t i = b; i < e; ++i) (*ctl->fn)(i);
          }
        });
      }
    } catch (...) {
      wait_idle();  // already-submitted lanes reference `control`
      throw;
    }
    wait_idle();
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  /// Task queue as a ring over a capacity-stable vector (a deque's block
  /// churn allocates as the queue cycles; this one stops allocating once
  /// grown to the peak outstanding-task count). Slots hold small pointer
  /// captures, so assigning into a slot stays within std::function's SBO.
  std::vector<std::function<void()>> ring_;
  std::size_t ring_head_ = 0;   ///< index of the oldest queued task
  std::size_t ring_count_ = 0;  ///< queued (not yet popped) tasks
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Process-wide default pool, sized to the hardware; created on first use.
ThreadPool& default_pool();

}  // namespace fisheye::par
