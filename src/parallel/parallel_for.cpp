#include "parallel/parallel_for.hpp"

#include <algorithm>
#include <memory>

namespace fisheye::par {

namespace {

/// Captures the first exception thrown by any lane.
class ErrorSlot {
 public:
  void capture() noexcept {
    const std::scoped_lock lock(mu_);
    if (!error_) error_ = std::current_exception();
  }
  void rethrow_if_set() {
    if (error_) std::rethrow_exception(error_);
  }

 private:
  std::mutex mu_;
  std::exception_ptr error_;
};

}  // namespace

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  ForOptions opts) {
  if (n == 0) return;
  FE_EXPECTS(opts.chunk >= 1);
  const std::size_t lanes = std::min<std::size_t>(pool.size(), n);

  ErrorSlot errors;
  auto guarded = [&](std::size_t b, std::size_t e) {
    try {
      body(b, e);
    } catch (...) {
      errors.capture();
    }
  };

  switch (opts.schedule) {
    case Schedule::Static: {
      // One contiguous chunk per lane; run_indexed assigns lane i chunk i.
      pool.run_indexed(lanes, [&](std::size_t lane) {
        const std::size_t b = n * lane / lanes;
        const std::size_t e = n * (lane + 1) / lanes;
        if (b < e) guarded(b, e);
      });
      break;
    }
    case Schedule::Dynamic: {
      auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
      const std::size_t chunk = opts.chunk;
      pool.run_indexed(lanes, [&, cursor](std::size_t) {
        for (;;) {
          const std::size_t b =
              cursor->fetch_add(chunk, std::memory_order_relaxed);
          if (b >= n) return;
          guarded(b, std::min(b + chunk, n));
        }
      });
      break;
    }
    case Schedule::Guided: {
      auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
      const std::size_t min_chunk = opts.chunk;
      pool.run_indexed(lanes, [&, cursor](std::size_t) {
        for (;;) {
          // Optimistic size estimate from the current cursor; claim with a
          // single fetch_add of that size (classic guided self-scheduling).
          const std::size_t done = cursor->load(std::memory_order_relaxed);
          if (done >= n) return;
          const std::size_t remaining = n - done;
          const std::size_t want =
              std::max(min_chunk, remaining / (2 * lanes));
          const std::size_t b =
              cursor->fetch_add(want, std::memory_order_relaxed);
          if (b >= n) return;
          guarded(b, std::min(b + want, n));
        }
      });
      break;
    }
  }
  errors.rethrow_if_set();
}

void parallel_for_each(ThreadPool& pool, std::size_t n,
                       const std::function<void(std::size_t)>& body,
                       ForOptions opts) {
  parallel_for(
      pool, n,
      [&body](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) body(i);
      },
      opts);
}

}  // namespace fisheye::par
