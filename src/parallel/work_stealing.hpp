// Locality-aware work-stealing tile executor.
//
// The paper's multicore axis (F2/F18) compares static, cyclic, and dynamic
// decompositions because per-pixel remap cost varies radially across the
// frame. A shared-cursor dynamic schedule balances load but interleaves
// tiles from distant frame regions on one worker, destroying source-cache
// locality; a static schedule preserves locality but eats the imbalance.
// Work stealing gets both: each worker starts with a contiguous run of a
// locality-ordered tile sequence (see core/tile_order.hpp for the Morton
// ordering), consumes it in order, and only when it runs dry does it steal
// half of another worker's remaining run — so steals repair imbalance
// while the common case walks source-adjacent tiles.
//
// Structure:
//  * StealQueue      — one worker's tile queue. The owner pops LIFO from
//                      the tail (the items array is filled in reverse, so
//                      owner pops traverse the assigned run in schedule
//                      order); thieves lock and take HALF of the remaining
//                      items from the head — the far end of the owner's
//                      traversal, keeping the contested halves disjoint.
//  * StealPolicy     — steal granularity: a don't-steal-below floor and a
//                      minimum batch, so thieves never thrash over the
//                      last few tiles of a nearly-drained run.
//  * StealScheduler  — a set of cache-line-padded worker blocks plus the
//                      stealing run loop; thread-agnostic, so it can be
//                      driven by ThreadPool lanes or by an OpenMP team.
//  * StreamScheduler — the hybrid frame×tile generalization: S stream
//                      slots instead of W worker deques. Each slot holds
//                      one in-flight frame (a locality-ordered tile run);
//                      a worker claims the oldest unowned frame and walks
//                      its run in order (owner-LIFO within a stream), and
//                      idle workers steal tile batches across streams.
//  * WorkStealingPool— StealScheduler bound to a ThreadPool: per-frame
//                      dispatch with zero per-frame allocation after the
//                      first frame (blocks and queues are reused). Grows a
//                      service mode that dedicates pool lanes to a
//                      StreamScheduler (the multi-stream executor); several
//                      services can split one pool's lanes between them.
//
// Queues are mutex-protected: a steal is O(half the queue) under the lock
// and owner pops are uncontended in the common case. Victim selection reads
// a relaxed size mirror (approx_size) so the scan never touches a lock. At
// tile granularity (thousands of pixels each) the residual lock cost is
// noise, and the scheme is clean under ThreadSanitizer — the CI TSan job
// builds exactly this.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"

namespace fisheye::par {

/// Aggregate scheduling counters for one frame, surfaced per plan through
/// rt::TileStats so benches can report how much stealing actually happened.
/// Every executed tile counts in exactly one of local/stolen, so the two
/// sum to the frame's tile count.
struct StealStats {
  std::size_t local = 0;   ///< tiles a worker ran from its own initial run
  std::size_t stolen = 0;  ///< tiles run after being stolen from a victim
  std::size_t steals = 0;  ///< successful steal operations (≤ stolen)
};

/// Steal granularity. Stealing half of a tiny far-end run thrashes: the
/// thief pays a lock + O(n) copy for one or two near-free tiles, the victim
/// immediately runs dry and steals back, and on small tile counts (skewed
/// frames, low-resolution streams) that ping-pong erases the schedule's
/// win over static (the F2b regression). The floor says "leave short runs
/// to their owner" — the residual imbalance is bounded by floor-1 tiles —
/// and min_batch makes every successful steal carry enough work to amortize
/// its cost.
struct StealPolicy {
  /// Don't steal from a queue holding fewer than this many items.
  std::size_t steal_floor = 4;
  /// Take at least this many items per steal (capped by what's there).
  std::size_t min_batch = 2;
};

/// One worker's queue of tile indices. Owner takes from the tail; thieves
/// take half from the head. All operations lock; see the header comment
/// for why that is the right trade at tile granularity.
class StealQueue {
 public:
  /// Replace the contents with `run` = [begin, end) of `order`, stored in
  /// reverse so that pop() yields order[begin], order[begin+1], ...
  void assign(const std::uint32_t* order, std::size_t begin, std::size_t end) {
    const std::scoped_lock lock(mu_);
    items_.clear();
    items_.reserve(end - begin);
    for (std::size_t i = end; i > begin; --i)
      items_.push_back(order[i - 1]);
    size_.store(items_.size(), std::memory_order_relaxed);
  }

  /// Owner pop (LIFO tail). Returns false when empty.
  bool pop(std::uint32_t& out) {
    const std::scoped_lock lock(mu_);
    if (items_.empty()) return false;
    out = items_.back();
    items_.pop_back();
    size_.store(items_.size(), std::memory_order_relaxed);
    return true;
  }

  /// Steal ceil(half) — at least min(min_batch, size) — of the remaining
  /// items from the head into `loot` (cleared first), unless fewer than
  /// `floor` items remain, in which case nothing is taken. Returns the
  /// number of items taken.
  std::size_t steal_half(std::vector<std::uint32_t>& loot,
                         std::size_t floor = 0, std::size_t min_batch = 1) {
    loot.clear();
    const std::scoped_lock lock(mu_);
    const std::size_t n = items_.size();
    if (n == 0 || n < floor) return 0;
    // Head = front of the vector = the far end of the owner's traversal.
    const std::size_t take =
        std::max((n + 1) / 2, std::min(min_batch, n));
    loot.assign(items_.begin(),
                items_.begin() + static_cast<std::ptrdiff_t>(take));
    items_.erase(items_.begin(),
                 items_.begin() + static_cast<std::ptrdiff_t>(take));
    size_.store(items_.size(), std::memory_order_relaxed);
    return take;
  }

  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mu_);
    return items_.size();
  }

  /// Lock-free size mirror for victim scans. May be momentarily stale;
  /// steal_half re-validates under the lock.
  [[nodiscard]] std::size_t approx_size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::uint32_t> items_;
  std::atomic<std::size_t> size_{0};
};

/// The deques plus the stealing loop, independent of who provides the
/// threads. One StealScheduler instance is reused frame after frame (the
/// worker blocks persist), and a given instance runs one frame at a time.
class StealScheduler {
 public:
  explicit StealScheduler(unsigned workers, StealPolicy policy = {})
      : policy_(policy), blocks_(workers == 0 ? 1 : workers) {
    FE_EXPECTS(workers >= 1);
  }

  [[nodiscard]] unsigned workers() const noexcept {
    return static_cast<unsigned>(blocks_.size());
  }

  /// Load a frame: `order` is a permutation of [0, n) (the locality-ordered
  /// tile sequence) and `runs` the initial split — worker w starts with
  /// order[runs[w]..runs[w+1]). `runs` must have workers()+1 entries with
  /// runs[0] == 0 and runs.back() == n.
  void begin_frame(const std::uint32_t* order, std::size_t n,
                   const std::vector<std::size_t>& runs) {
    FE_EXPECTS(runs.size() == blocks_.size() + 1);
    FE_EXPECTS(runs.front() == 0 && runs.back() == n);
    remaining_.store(n, std::memory_order_relaxed);
    for (std::size_t w = 0; w < blocks_.size(); ++w) {
      FE_EXPECTS(runs[w] <= runs[w + 1]);
      blocks_[w].queue.assign(order, runs[w], runs[w + 1]);
      blocks_[w].foreign = false;
      blocks_[w].local = 0;
      blocks_[w].stolen = 0;
      blocks_[w].steals = 0;
    }
  }

  /// Worker `w`'s frame loop: drain the own queue, then steal until every
  /// tile of the frame has been claimed. `fn(index)` must not throw (wrap
  /// with an error slot at the call site, as parallel_for does).
  template <class Fn>
  void work(unsigned w, Fn&& fn) {
    Block& self = blocks_[w];
    std::uint32_t item = 0;
    for (;;) {
      // Own queue first: traverses the locality-ordered run in order. The
      // queue holds either the initial run or parked loot (never both;
      // loot is only parked once the run is drained), so `foreign` tells
      // which counter an execution belongs to — local + stolen across all
      // workers sums to exactly the frame's tile count.
      while (self.queue.pop(item)) {
        ++(self.foreign ? self.stolen : self.local);
        fn(static_cast<std::size_t>(item));
        remaining_.fetch_sub(1, std::memory_order_acq_rel);
      }
      if (remaining_.load(std::memory_order_acquire) == 0) return;
      // Steal half of the largest visible queue: the victim with the most
      // work left is both the best balance repair and keeps the stolen
      // half contiguous in schedule order. The scan reads the relaxed size
      // mirrors — no locks — and the policy floor leaves short runs to
      // their owners instead of thrashing over the tail.
      std::size_t victim = blocks_.size();
      std::size_t victim_size = 0;
      for (std::size_t v = 0; v < blocks_.size(); ++v) {
        if (v == w) continue;
        const std::size_t sz = blocks_[v].queue.approx_size();
        if (sz > victim_size) {
          victim = v;
          victim_size = sz;
        }
      }
      if (victim == blocks_.size() || victim_size < policy_.steal_floor) {
        // Nothing worth stealing; another worker may still be executing
        // its last tiles (remaining_ > 0). Yield instead of spinning hard:
        // the wait is bounded by a few tiles' execution time.
        if (remaining_.load(std::memory_order_acquire) == 0) return;
        std::this_thread::yield();
        continue;
      }
      const std::size_t got = blocks_[victim].queue.steal_half(
          self.loot, policy_.steal_floor, policy_.min_batch);
      if (got == 0) continue;  // raced with the victim draining; rescan
      ++self.steals;
      ++self.stolen;  // the first looted tile, run below
      // Run the first looted tile now; park the rest in the own queue
      // (preserving their schedule order) where they stay stealable. The
      // own queue is empty here — only the owner ever refills it — and is
      // foreign from now on: pops of parked loot count as stolen.
      if (got > 1) self.queue.assign(self.loot.data(), 1, got);
      self.foreign = true;
      const std::uint32_t first = self.loot.front();
      fn(static_cast<std::size_t>(first));
      remaining_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  /// Aggregate counters of the last frame (call after the frame barrier).
  [[nodiscard]] StealStats stats() const {
    StealStats s;
    for (const Block& b : blocks_) {
      s.local += b.local;
      s.stolen += b.stolen;
      s.steals += b.steals;
    }
    return s;
  }

 private:
  /// Per-worker state, padded so that one worker's queue mutations never
  /// false-share with a neighbour's counters.
  struct alignas(util::kCacheLine) Block {
    StealQueue queue;
    std::vector<std::uint32_t> loot;  ///< steal scratch, reused per worker
    bool foreign = false;  ///< queue currently holds parked loot
    std::size_t local = 0;
    std::size_t stolen = 0;
    std::size_t steals = 0;
  };

  StealPolicy policy_;
  std::vector<Block> blocks_;
  std::atomic<std::size_t> remaining_{0};
};

/// One frame of one stream, loaded onto a StreamScheduler slot: the tile
/// indices in schedule order plus the callbacks that execute one tile and
/// retire the frame. Both callbacks must not throw — the executor layer
/// wraps kernels with its own error slot.
struct StreamJob {
  const std::uint32_t* order = nullptr;  ///< tile indices in schedule order
  std::size_t count = 0;                 ///< tiles in the frame
  void* env = nullptr;                   ///< passed through to the callbacks
  void (*run)(void* env, std::uint32_t item, unsigned worker) = nullptr;
  /// Called exactly once per job, by the worker that finishes the frame's
  /// last tile, after the slot has gone idle — so posting the stream's
  /// next frame from inside retire is legal. `frame` carries the frame's
  /// local/stolen/steal counters (local + stolen == count, always).
  void (*retire)(void* env, const StealStats& frame) = nullptr;
};

/// Hybrid frame×tile scheduler: the multi-stream generalization of
/// StealScheduler. Where the single-frame scheduler splits ONE tile run
/// across W worker deques, this one holds S stream slots, each carrying at
/// most one in-flight frame as a single locality-ordered run:
///
///  * a free worker claims the OLDEST posted unowned frame (FIFO over post
///    order — the fairness rule) and becomes its owner, walking the run in
///    schedule order (owner-LIFO pops, exactly like a steal deque);
///  * a worker that finds no claimable frame steals a tile batch from the
///    largest visible queue across ALL streams (subject to the
///    StealPolicy floor), so big frames recruit idle workers while small
///    frames stay cache-local on one core;
///  * the worker that executes a frame's last tile retires it: counters
///    are snapshotted and reset, the slot goes idle, and the job's retire
///    callback runs (typically posting the stream's next queued frame).
///
/// Slot storage is fixed at construction (max_slots), so worker scans
/// never race a reallocation: create_slot/destroy_slot just flip a state
/// atomic, which makes concurrent stream add/remove safe while serving.
/// One frame at a time per slot is the caller's contract (checked).
class StreamScheduler {
 public:
  static constexpr std::size_t kNoSlot =
      std::numeric_limits<std::size_t>::max();

  StreamScheduler(unsigned workers, std::size_t max_slots,
                  StealPolicy policy = {})
      : policy_(policy),
        slots_(max_slots),
        blocks_(workers == 0 ? 1 : workers) {
    FE_EXPECTS(workers >= 1 && max_slots >= 1);
  }

  [[nodiscard]] unsigned workers() const noexcept {
    return static_cast<unsigned>(blocks_.size());
  }

  /// Claim a free slot; kNoSlot when all max_slots are in use.
  [[nodiscard]] std::size_t create_slot() {
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      int expected = kEmpty;
      if (slots_[s].state.compare_exchange_strong(
              expected, kIdle, std::memory_order_acq_rel))
        return s;
    }
    return kNoSlot;
  }

  /// Release a slot. The slot must be idle (no job posted or running).
  void destroy_slot(std::size_t s) {
    FE_EXPECTS(s < slots_.size());
    int expected = kIdle;
    const bool idle = slots_[s].state.compare_exchange_strong(
        expected, kEmpty, std::memory_order_acq_rel);
    FE_EXPECTS(idle);
  }

  /// Load one frame onto an idle slot and wake the workers. The caller
  /// must serialize posts per slot against the job's retire (the retire
  /// callback is the natural place to post the next frame).
  void post(std::size_t s, const StreamJob& job) {
    FE_EXPECTS(s < slots_.size());
    FE_EXPECTS(job.run != nullptr && job.order != nullptr && job.count > 0);
    Slot& slot = slots_[s];
    FE_EXPECTS(slot.state.load(std::memory_order_acquire) == kIdle);
    slot.job = job;
    slot.seq.store(next_seq_.fetch_add(1, std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
    slot.remaining.store(job.count, std::memory_order_relaxed);
    // Advertise the largest job ever posted so workers can size their
    // steal scratch eagerly (keeps steady-state service allocation-free
    // even when the first steal from this stream happens much later).
    std::size_t seen = max_count_.load(std::memory_order_relaxed);
    while (seen < job.count &&
           !max_count_.compare_exchange_weak(seen, job.count,
                                             std::memory_order_relaxed)) {
    }
    // The queue mutex inside assign() orders everything above before any
    // pop that yields this frame's items.
    slot.queue.assign(job.order, 0, job.count);
    slot.state.store(kActive, std::memory_order_release);
    {
      const std::scoped_lock lock(mu_);
      ++wake_version_;
    }
    cv_.notify_all();
  }

  /// Worker `w`'s service loop: claim-or-steal until stop(). Runs forever
  /// on a ThreadPool lane (WorkStealingPool::start_service) or a dedicated
  /// thread.
  void run_worker(unsigned w) {
    FE_EXPECTS(w < blocks_.size());
    std::vector<std::uint32_t>& loot = blocks_[w].loot;
    for (;;) {
      // Grow the steal scratch up-front (a steal never loots more than one
      // whole job), so the steal path itself stays allocation-free.
      const std::size_t cap = max_count_.load(std::memory_order_relaxed);
      if (loot.capacity() < cap) loot.reserve(cap);
      if (own_one(w)) continue;
      if (steal_one(w, loot)) continue;
      // Nothing runnable: sleep until a post (or stop) bumps the version.
      std::unique_lock<std::mutex> lock(mu_);
      if (stop_) return;
      const std::uint64_t version = wake_version_;
      lock.unlock();
      // Re-scan after reading the version so a post that landed between
      // the failed scans and the lock cannot be slept through.
      if (own_one(w) || steal_one(w, loot)) continue;
      lock.lock();
      if (stop_) return;
      if (wake_version_ == version) cv_.wait(lock);
    }
  }

  /// Ask every worker to exit once it goes idle. Terminal: a stopped
  /// scheduler never serves again (executor lifetimes match this).
  void stop() {
    {
      const std::scoped_lock lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
  }

 private:
  static constexpr int kEmpty = 0;   ///< slot unassigned
  static constexpr int kIdle = 1;    ///< slot assigned, no job in flight
  static constexpr int kActive = 2;  ///< job posted and not yet retired
  static constexpr unsigned kNoOwner = std::numeric_limits<unsigned>::max();

  /// One stream's in-flight frame. Counter ownership: `local` is written
  /// only by the slot's current owner and read/reset only by the retiring
  /// worker — the remaining-counter acquire/release chain makes both safe
  /// without atomics; stolen/steals are touched by concurrent thieves and
  /// stay atomic.
  struct alignas(util::kCacheLine) Slot {
    std::atomic<int> state{kEmpty};
    std::atomic<unsigned> owner{kNoOwner};
    std::atomic<std::uint64_t> seq{0};       ///< post order (FIFO fairness)
    std::atomic<std::size_t> remaining{0};   ///< tiles not yet executed
    std::atomic<std::size_t> stolen{0};
    std::atomic<std::size_t> steals{0};
    std::size_t local = 0;
    StreamJob job{};
    StealQueue queue;
  };

  struct alignas(util::kCacheLine) WorkerBlock {
    std::vector<std::uint32_t> loot;  ///< steal scratch, reused per worker
  };

  /// Claim the oldest posted frame that still has unclaimed run items and
  /// drain it in schedule order. Returns true when at least one tile ran.
  bool own_one(unsigned w) {
    for (;;) {
      std::size_t best = kNoSlot;
      std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
      for (std::size_t s = 0; s < slots_.size(); ++s) {
        Slot& slot = slots_[s];
        if (slot.state.load(std::memory_order_acquire) != kActive) continue;
        if (slot.owner.load(std::memory_order_relaxed) != kNoOwner) continue;
        if (slot.queue.approx_size() == 0) continue;
        const std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
        if (seq < best_seq) {
          best_seq = seq;
          best = s;
        }
      }
      if (best == kNoSlot) return false;
      Slot& slot = slots_[best];
      unsigned expected = kNoOwner;
      if (!slot.owner.compare_exchange_strong(expected, w,
                                              std::memory_order_acq_rel))
        continue;  // lost the claim race; rescan
      if (slot.state.load(std::memory_order_acquire) != kActive) {
        // The frame retired (or the slot was destroyed) between the scan
        // and the claim; let go and rescan.
        slot.owner.store(kNoOwner, std::memory_order_release);
        continue;
      }
      if (drain_own(w, slot, best_seq)) return true;
    }
  }

  /// Owner loop over one slot: pop-and-run the locality run in order. The
  /// job is re-read after every pop — the queue mutex orders a post()'s
  /// job write before the pop that first yields the new frame's items, so
  /// the copy always matches the frame the item belongs to even when the
  /// frame retires and the next one is posted mid-drain. Crossing such a
  /// frame boundary exits the loop so the worker re-runs the FIFO scan
  /// (fairness: a camping owner must not shut out older streams).
  bool drain_own(unsigned w, Slot& slot, std::uint64_t claimed_seq) {
    bool ran = false;
    std::uint32_t item = 0;
    while (slot.queue.pop(item)) {
      ran = true;
      ++slot.local;
      const StreamJob job = slot.job;
      const std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
      job.run(job.env, item, w);
      finish_item(slot);
      if (seq != claimed_seq) break;
    }
    slot.owner.store(kNoOwner, std::memory_order_release);
    return ran;
  }

  /// Steal a tile batch from the largest visible queue across all streams
  /// and run it. A stolen batch belongs to exactly one frame (a queue only
  /// ever holds the posted frame's items), and the thief's unfinished
  /// items pin that frame, so the job copy is stable for the whole batch.
  bool steal_one(unsigned w, std::vector<std::uint32_t>& loot) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      std::size_t victim = kNoSlot;
      std::size_t victim_size = 0;
      for (std::size_t s = 0; s < slots_.size(); ++s) {
        Slot& slot = slots_[s];
        if (slot.state.load(std::memory_order_acquire) != kActive) continue;
        const std::size_t sz = slot.queue.approx_size();
        if (sz > victim_size) {
          victim = s;
          victim_size = sz;
        }
      }
      if (victim == kNoSlot || victim_size < policy_.steal_floor)
        return false;
      Slot& slot = slots_[victim];
      const std::size_t got =
          slot.queue.steal_half(loot, policy_.steal_floor, policy_.min_batch);
      if (got == 0) continue;  // raced with the owner draining; rescan
      const StreamJob job = slot.job;
      slot.steals.fetch_add(1, std::memory_order_relaxed);
      slot.stolen.fetch_add(got, std::memory_order_relaxed);
      for (std::size_t i = 0; i < got; ++i) {
        job.run(job.env, loot[i], w);
        finish_item(slot);
      }
      return true;
    }
    return false;
  }

  /// Account one executed tile; the worker that brings `remaining` to zero
  /// retires the frame. Every contributor's counter writes happen before
  /// its decrement (release), so the retiring worker's acquire sees them
  /// all — reading and resetting the counters here is race-free.
  void finish_item(Slot& slot) {
    if (slot.remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
    StealStats frame;
    frame.local = slot.local;
    frame.stolen = slot.stolen.load(std::memory_order_relaxed);
    frame.steals = slot.steals.load(std::memory_order_relaxed);
    slot.local = 0;
    slot.stolen.store(0, std::memory_order_relaxed);
    slot.steals.store(0, std::memory_order_relaxed);
    const StreamJob job = slot.job;
    slot.state.store(kIdle, std::memory_order_release);
    if (job.retire != nullptr) job.retire(job.env, frame);
  }

  StealPolicy policy_;
  std::vector<Slot> slots_;
  std::vector<WorkerBlock> blocks_;
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::size_t> max_count_{0};  ///< largest job.count ever posted
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t wake_version_ = 0;  ///< guarded by mu_
  bool stop_ = false;               ///< guarded by mu_
};

/// StealScheduler driven by ThreadPool lanes: the pooled backends' steal
/// schedule. Construction is cheap (no threads of its own); per-frame
/// dispatch reuses the persistent worker blocks.
///
/// Also the binding point for hybrid frame×tile service: start_service()
/// dedicates `streams.workers()` pool lanes to a StreamScheduler until
/// stop_service() — the substrate of stream::StreamExecutor. A scheduler
/// sized below the pool leaves lanes for other services (one scheduler per
/// WorkStealingPool instance; stack several instances on one ThreadPool to
/// host several schedulers). run_ordered() on an instance that is serving
/// is still mutually exclusive with its service.
class WorkStealingPool {
 public:
  explicit WorkStealingPool(ThreadPool& pool)
      : pool_(pool), scheduler_(pool.size()) {}

  [[nodiscard]] unsigned size() const noexcept { return pool_.size(); }

  /// Run fn(i) exactly once for every i in [0, n), visiting indices in the
  /// order of the permutation `order` with initial runs `runs` (see
  /// StealScheduler::begin_frame). Blocks until the frame is done; returns
  /// the frame's steal counters.
  template <class Fn>
  StealStats run_ordered(const std::uint32_t* order, std::size_t n,
                         const std::vector<std::size_t>& runs, Fn&& fn) {
    FE_EXPECTS(serving_ == nullptr);
    if (n == 0) return {};
    scheduler_.begin_frame(order, n, runs);
    pool_.run_indexed(scheduler_.workers(),
                      [&](std::size_t lane) {
                        scheduler_.work(static_cast<unsigned>(lane), fn);
                      });
    return scheduler_.stats();
  }

  /// Dedicate `streams.workers()` pool lanes to `streams` until
  /// stop_service(). The scheduler may be sized below the pool
  /// (streams.workers() <= size()): the remaining lanes stay free for
  /// run_indexed work or for other services — the lane sum of all
  /// concurrent services on one ThreadPool must stay within its size, or
  /// the excess lane tasks would queue behind the running services and
  /// their scheduler would never reach full strength.
  void start_service(StreamScheduler& streams) {
    FE_EXPECTS(serving_ == nullptr);
    FE_EXPECTS(streams.workers() <= pool_.size());
    serving_ = &streams;
    join_ = std::make_shared<ServiceJoin>();
    join_->pending.store(streams.workers(), std::memory_order_relaxed);
    for (unsigned w = 0; w < streams.workers(); ++w)
      pool_.submit([scheduler = serving_, join = join_, w] {
        scheduler->run_worker(w);
        join->lane_done();
      });
  }

  /// Stop the served scheduler and wait for ITS lanes to exit — not the
  /// whole pool, so services sharing the pool keep running. In-flight
  /// frames complete first (stop is honoured at the idle point).
  void stop_service() {
    if (serving_ == nullptr) return;
    serving_->stop();
    join_->wait();
    join_.reset();
    serving_ = nullptr;
  }

  [[nodiscard]] bool serving() const noexcept { return serving_ != nullptr; }

 private:
  /// Completion latch for one service's lanes. stop_service() must wait
  /// for exactly the lanes it submitted; ThreadPool::wait_idle() would
  /// block on every OTHER service sharing the pool. shared_ptr-held so a
  /// lane exiting after stop_service() returned (impossible today, cheap
  /// to make impossible forever) never touches a dead latch.
  struct ServiceJoin {
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<unsigned> pending{0};
    void lane_done() {
      if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::scoped_lock lock(mu);
        cv.notify_all();
      }
    }
    void wait() {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] {
        return pending.load(std::memory_order_acquire) == 0;
      });
    }
  };

  ThreadPool& pool_;
  StealScheduler scheduler_;
  StreamScheduler* serving_ = nullptr;
  std::shared_ptr<ServiceJoin> join_;
};

/// Split the (already ordered) tile sequence into workers() contiguous
/// initial runs of near-equal total weight, writing the runs offsets
/// (workers + 1 entries) into `runs`. `weight(i)` is the balance proxy for
/// item i — tile area for the pooled backends. Writing into a caller-owned
/// vector lets steady-state resplits reuse its capacity (no allocation
/// after the first frame).
template <class WeightFn>
void balanced_runs_into(std::vector<std::size_t>& runs, std::size_t n,
                        unsigned workers, WeightFn&& weight) {
  FE_EXPECTS(workers >= 1);
  runs.assign(workers + 1, n);
  runs[0] = 0;
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += weight(i);
  double acc = 0.0;
  std::size_t w = 1;
  for (std::size_t i = 0; i < n && w < workers; ++i) {
    acc += weight(i);
    // Cut after item i once this run carries its fair share.
    if (acc * static_cast<double>(workers) >=
        total * static_cast<double>(w)) {
      runs[w] = i + 1;
      ++w;
    }
  }
  for (; w < workers; ++w) runs[w] = std::max(runs[w - 1], runs[w]);
}

/// Convenience form returning a fresh runs vector.
template <class WeightFn>
std::vector<std::size_t> balanced_runs(std::size_t n, unsigned workers,
                                       WeightFn&& weight) {
  std::vector<std::size_t> runs;
  balanced_runs_into(runs, n, workers, std::forward<WeightFn>(weight));
  return runs;
}

}  // namespace fisheye::par
