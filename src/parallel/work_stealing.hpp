// Locality-aware work-stealing tile executor.
//
// The paper's multicore axis (F2/F18) compares static, cyclic, and dynamic
// decompositions because per-pixel remap cost varies radially across the
// frame. A shared-cursor dynamic schedule balances load but interleaves
// tiles from distant frame regions on one worker, destroying source-cache
// locality; a static schedule preserves locality but eats the imbalance.
// Work stealing gets both: each worker starts with a contiguous run of a
// locality-ordered tile sequence (see core/tile_order.hpp for the Morton
// ordering), consumes it in order, and only when it runs dry does it steal
// half of another worker's remaining run — so steals repair imbalance
// while the common case walks source-adjacent tiles.
//
// Structure:
//  * StealQueue      — one worker's tile queue. The owner pops LIFO from
//                      the tail (the items array is filled in reverse, so
//                      owner pops traverse the assigned run in schedule
//                      order); thieves lock and take HALF of the remaining
//                      items from the head — the far end of the owner's
//                      traversal, keeping the contested halves disjoint.
//  * StealScheduler  — a set of cache-line-padded worker blocks plus the
//                      stealing run loop; thread-agnostic, so it can be
//                      driven by ThreadPool lanes or by an OpenMP team.
//  * WorkStealingPool— StealScheduler bound to a ThreadPool: per-frame
//                      dispatch with zero per-frame allocation after the
//                      first frame (blocks and queues are reused).
//
// Queues are mutex-protected: a steal is O(half the queue) under the lock
// and owner pops are uncontended in the common case. At tile granularity
// (thousands of pixels each) the lock cost is noise, and the scheme is
// clean under ThreadSanitizer — the CI TSan job builds exactly this.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"

namespace fisheye::par {

/// Aggregate scheduling counters for one frame, surfaced per plan through
/// rt::TileStats so benches can report how much stealing actually happened.
/// Every executed tile counts in exactly one of local/stolen, so the two
/// sum to the frame's tile count.
struct StealStats {
  std::size_t local = 0;   ///< tiles a worker ran from its own initial run
  std::size_t stolen = 0;  ///< tiles run after being stolen from a victim
  std::size_t steals = 0;  ///< successful steal operations (≤ stolen)
};

/// One worker's queue of tile indices. Owner takes from the tail; thieves
/// take half from the head. All operations lock; see the header comment
/// for why that is the right trade at tile granularity.
class StealQueue {
 public:
  /// Replace the contents with `run` = [begin, end) of `order`, stored in
  /// reverse so that pop() yields order[begin], order[begin+1], ...
  void assign(const std::uint32_t* order, std::size_t begin, std::size_t end) {
    const std::scoped_lock lock(mu_);
    items_.clear();
    items_.reserve(end - begin);
    for (std::size_t i = end; i > begin; --i)
      items_.push_back(order[i - 1]);
  }

  /// Owner pop (LIFO tail). Returns false when empty.
  bool pop(std::uint32_t& out) {
    const std::scoped_lock lock(mu_);
    if (items_.empty()) return false;
    out = items_.back();
    items_.pop_back();
    return true;
  }

  /// Steal ceil(half) of the remaining items from the head into `loot`
  /// (cleared first). Returns the number of items taken.
  std::size_t steal_half(std::vector<std::uint32_t>& loot) {
    loot.clear();
    const std::scoped_lock lock(mu_);
    if (items_.empty()) return 0;
    const std::size_t take = (items_.size() + 1) / 2;
    // Head = front of the vector = the far end of the owner's traversal.
    loot.assign(items_.begin(),
                items_.begin() + static_cast<std::ptrdiff_t>(take));
    items_.erase(items_.begin(),
                 items_.begin() + static_cast<std::ptrdiff_t>(take));
    return take;
  }

  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::uint32_t> items_;
};

/// The deques plus the stealing loop, independent of who provides the
/// threads. One StealScheduler instance is reused frame after frame (the
/// worker blocks persist), and a given instance runs one frame at a time.
class StealScheduler {
 public:
  explicit StealScheduler(unsigned workers)
      : blocks_(workers == 0 ? 1 : workers) {
    FE_EXPECTS(workers >= 1);
  }

  [[nodiscard]] unsigned workers() const noexcept {
    return static_cast<unsigned>(blocks_.size());
  }

  /// Load a frame: `order` is a permutation of [0, n) (the locality-ordered
  /// tile sequence) and `runs` the initial split — worker w starts with
  /// order[runs[w]..runs[w+1]). `runs` must have workers()+1 entries with
  /// runs[0] == 0 and runs.back() == n.
  void begin_frame(const std::uint32_t* order, std::size_t n,
                   const std::vector<std::size_t>& runs) {
    FE_EXPECTS(runs.size() == blocks_.size() + 1);
    FE_EXPECTS(runs.front() == 0 && runs.back() == n);
    remaining_.store(n, std::memory_order_relaxed);
    for (std::size_t w = 0; w < blocks_.size(); ++w) {
      FE_EXPECTS(runs[w] <= runs[w + 1]);
      blocks_[w].queue.assign(order, runs[w], runs[w + 1]);
      blocks_[w].foreign = false;
      blocks_[w].local = 0;
      blocks_[w].stolen = 0;
      blocks_[w].steals = 0;
    }
  }

  /// Worker `w`'s frame loop: drain the own queue, then steal until every
  /// tile of the frame has been claimed. `fn(index)` must not throw (wrap
  /// with an error slot at the call site, as parallel_for does).
  template <class Fn>
  void work(unsigned w, Fn&& fn) {
    Block& self = blocks_[w];
    std::uint32_t item = 0;
    for (;;) {
      // Own queue first: traverses the locality-ordered run in order. The
      // queue holds either the initial run or parked loot (never both;
      // loot is only parked once the run is drained), so `foreign` tells
      // which counter an execution belongs to — local + stolen across all
      // workers sums to exactly the frame's tile count.
      while (self.queue.pop(item)) {
        ++(self.foreign ? self.stolen : self.local);
        fn(static_cast<std::size_t>(item));
        remaining_.fetch_sub(1, std::memory_order_acq_rel);
      }
      if (remaining_.load(std::memory_order_acquire) == 0) return;
      // Steal half of the largest visible queue: the victim with the most
      // work left is both the best balance repair and keeps the stolen
      // half contiguous in schedule order.
      std::size_t victim = blocks_.size();
      std::size_t victim_size = 0;
      for (std::size_t v = 0; v < blocks_.size(); ++v) {
        if (v == w) continue;
        const std::size_t sz = blocks_[v].queue.size();
        if (sz > victim_size) {
          victim = v;
          victim_size = sz;
        }
      }
      if (victim == blocks_.size()) {
        // Nothing visible to steal; another worker may still be executing
        // its last tiles (remaining_ > 0). Yield instead of spinning hard:
        // the wait is bounded by one tile's execution time.
        if (remaining_.load(std::memory_order_acquire) == 0) return;
        std::this_thread::yield();
        continue;
      }
      const std::size_t got = blocks_[victim].queue.steal_half(self.loot);
      if (got == 0) continue;  // raced with the victim draining; rescan
      ++self.steals;
      ++self.stolen;  // the first looted tile, run below
      // Run the first looted tile now; park the rest in the own queue
      // (preserving their schedule order) where they stay stealable. The
      // own queue is empty here — only the owner ever refills it — and is
      // foreign from now on: pops of parked loot count as stolen.
      if (got > 1) self.queue.assign(self.loot.data(), 1, got);
      self.foreign = true;
      const std::uint32_t first = self.loot.front();
      fn(static_cast<std::size_t>(first));
      remaining_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  /// Aggregate counters of the last frame (call after the frame barrier).
  [[nodiscard]] StealStats stats() const {
    StealStats s;
    for (const Block& b : blocks_) {
      s.local += b.local;
      s.stolen += b.stolen;
      s.steals += b.steals;
    }
    return s;
  }

 private:
  /// Per-worker state, padded so that one worker's queue mutations never
  /// false-share with a neighbour's counters.
  struct alignas(util::kCacheLine) Block {
    StealQueue queue;
    std::vector<std::uint32_t> loot;  ///< steal scratch, reused per worker
    bool foreign = false;  ///< queue currently holds parked loot
    std::size_t local = 0;
    std::size_t stolen = 0;
    std::size_t steals = 0;
  };

  std::vector<Block> blocks_;
  std::atomic<std::size_t> remaining_{0};
};

/// StealScheduler driven by ThreadPool lanes: the pooled backends' steal
/// schedule. Construction is cheap (no threads of its own); per-frame
/// dispatch reuses the persistent worker blocks.
class WorkStealingPool {
 public:
  explicit WorkStealingPool(ThreadPool& pool)
      : pool_(pool), scheduler_(pool.size()) {}

  [[nodiscard]] unsigned size() const noexcept { return pool_.size(); }

  /// Run fn(i) exactly once for every i in [0, n), visiting indices in the
  /// order of the permutation `order` with initial runs `runs` (see
  /// StealScheduler::begin_frame). Blocks until the frame is done; returns
  /// the frame's steal counters.
  template <class Fn>
  StealStats run_ordered(const std::uint32_t* order, std::size_t n,
                         const std::vector<std::size_t>& runs, Fn&& fn) {
    if (n == 0) return {};
    scheduler_.begin_frame(order, n, runs);
    pool_.run_indexed(scheduler_.workers(),
                      [&](std::size_t lane) {
                        scheduler_.work(static_cast<unsigned>(lane), fn);
                      });
    return scheduler_.stats();
  }

 private:
  ThreadPool& pool_;
  StealScheduler scheduler_;
};

/// Split the (already ordered) tile sequence into workers() contiguous
/// initial runs of near-equal total weight, writing the runs offsets
/// (workers + 1 entries) into `runs`. `weight(i)` is the balance proxy for
/// item i — tile area for the pooled backends. Writing into a caller-owned
/// vector lets steady-state resplits reuse its capacity (no allocation
/// after the first frame).
template <class WeightFn>
void balanced_runs_into(std::vector<std::size_t>& runs, std::size_t n,
                        unsigned workers, WeightFn&& weight) {
  FE_EXPECTS(workers >= 1);
  runs.assign(workers + 1, n);
  runs[0] = 0;
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += weight(i);
  double acc = 0.0;
  std::size_t w = 1;
  for (std::size_t i = 0; i < n && w < workers; ++i) {
    acc += weight(i);
    // Cut after item i once this run carries its fair share.
    if (acc * static_cast<double>(workers) >=
        total * static_cast<double>(w)) {
      runs[w] = i + 1;
      ++w;
    }
  }
  for (; w < workers; ++w) runs[w] = std::max(runs[w - 1], runs[w]);
}

/// Convenience form returning a fresh runs vector.
template <class WeightFn>
std::vector<std::size_t> balanced_runs(std::size_t n, unsigned workers,
                                       WeightFn&& weight) {
  std::vector<std::size_t> runs;
  balanced_runs_into(runs, n, workers, std::forward<WeightFn>(weight));
  return runs;
}

}  // namespace fisheye::par
