// BackendRegistry registration for the process-sharding backend ("shard"
// kind). Forced out of the static archive by the linker anchor below.
#include <memory>

#include "core/backend_registry.hpp"
#include "shard/shard_backend.hpp"

extern "C" void fisheye_shard_register_backends() {}

namespace fisheye::shard {

namespace {

constexpr const char* kShardOptions =
    "<N>|workers=N, ring=N, timeout_ms=N, heartbeat_ms=N, "
    "map=float|packed|compact:<stride>";

std::unique_ptr<core::Backend> make_shard(core::BackendSpec& spec) {
  ShardOptions o;
  o.workers = spec.bare_int(o.workers);
  o.workers = spec.value_int("workers", o.workers);
  core::require_spec_range(spec, "workers", o.workers, 1, 64);
  o.ring = spec.value_int("ring", o.ring);
  core::require_spec_range(spec, "ring", o.ring, 1, 16);
  o.timeout_ms = spec.value_int("timeout_ms", o.timeout_ms);
  core::require_spec_range(spec, "timeout_ms", o.timeout_ms, 1, 600000);
  o.heartbeat_ms = spec.value_int("heartbeat_ms", o.heartbeat_ms);
  core::require_spec_range(spec, "heartbeat_ms", o.heartbeat_ms, 1, 60000);
  auto backend = std::make_unique<ShardBackend>(o);
  core::apply_map_option(spec, *backend);
  spec.finish(kShardOptions);
  return backend;
}

const core::BackendRegistrar register_shard{"shard", kShardOptions,
                                            make_shard};

}  // namespace

}  // namespace fisheye::shard
