#include "shard/shard_backend.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>
#include <utility>

#include "core/backend_registry.hpp"
#include "core/kernel.hpp"
#include "parallel/partition.hpp"
#include "runtime/timer.hpp"
#include "shard/shard_ring.hpp"
#include "util/error.hpp"

#ifdef _WIN32
#error "the shard backend requires a POSIX host"
#endif

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0  // macOS: sends may raise SIGPIPE; workers are short
#endif

namespace fisheye::shard {

namespace {

/// Control-socket message; fixed-size datagrams both ways.
enum class MsgType : std::uint32_t { Assign = 1, Ready = 2, Heartbeat = 3 };

struct ControlMsg {
  MsgType type = MsgType::Assign;
  std::uint32_t shard = 0;
  std::uint32_t epoch = 0;
  std::int32_t y0 = 0;
  std::int32_t y1 = 0;
  std::uint32_t heartbeat_ms = 0;
  std::uint32_t beats = 0;
};

void copy_rows(img::View8 dst, img::CView8 src, const par::Rect& r) {
  const std::size_t off = static_cast<std::size_t>(r.x0) * src.channels;
  const std::size_t bytes =
      static_cast<std::size_t>(r.width()) * src.channels;
  for (int y = r.y0; y < r.y1; ++y)
    std::memcpy(dst.row(y) + off, src.row(y) + off, bytes);
}

}  // namespace

/// The plan-owned process fleet: ring, workers, monitor thread, counters.
/// Forked at plan() time; destroyed with the last plan copy.
class WorkerFleet {
 public:
  WorkerFleet(const ShardOptions& opts, const core::ExecContext& ectx,
              std::vector<par::Rect> strips, core::ResolvedKernel kernel)
      : opts_(opts),
        strips_(std::move(strips)),
        kernel_(kernel),
        ring_(std::make_unique<FrameRing>(
            FrameRing::Geometry{ectx.src.width, ectx.src.height,
                                ectx.dst.width, ectx.dst.height,
                                ectx.src.channels},
            opts.ring, static_cast<int>(strips_.size()))),
        procs_(strips_.size()) {
    for (std::size_t s = 0; s < strips_.size(); ++s)
      spawn(static_cast<int>(s), /*epoch=*/1);
    monitor_ = std::thread([this] { monitor_loop(); });
  }

  ~WorkerFleet() {
    stopping_.store(true, std::memory_order_relaxed);
    ring_->header().shutdown.store(1, std::memory_order_release);
    ring_->header().doorbell.fetch_add(1, std::memory_order_release);
    futex_wake_all(ring_->header().doorbell);
    if (monitor_.joinable()) monitor_.join();
    for (WorkerProc& p : procs_) {
      const long pid = p.pid.load(std::memory_order_relaxed);
      if (pid > 0) {
        // Grace period for the shutdown flag, then force.
        int status = 0;
        bool reaped = false;
        for (int i = 0; i < 200 && !reaped; ++i) {
          if (waitpid(static_cast<pid_t>(pid), &status, WNOHANG) == pid)
            reaped = true;
          else
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        if (!reaped) {
          kill(static_cast<pid_t>(pid), SIGKILL);
          waitpid(static_cast<pid_t>(pid), &status, 0);
        }
      }
      if (p.sock >= 0) close(p.sock);
    }
  }

  WorkerFleet(const WorkerFleet&) = delete;
  WorkerFleet& operator=(const WorkerFleet&) = delete;

  /// One frame: publish source, wake workers, gather strips, cover for the
  /// dead. Allocation-free; called with the plan's instrumentation.
  void run_frame(const core::ExecutionPlan& plan,
                 const core::ExecContext& ctx) {
    core::PlanInstrumentation& inst = plan.instrumentation();
    const std::size_t nshards = strips_.size();
    inst.begin_frame(nshards);

    RingHeader& hdr = ring_->header();
    const std::uint64_t seq = ++next_seq_;
    const int slot = static_cast<int>(seq % ring_->slots());
    const img::View8 slot_src = ring_->slot_src(slot);
    const img::View8 slot_dst = ring_->slot_dst(slot);

    // Stage the source into the slot — skipped entirely when the caller
    // already rendered into next_input() (zero-copy ingest).
    std::size_t in_bytes = 0;
    if (ctx.src.data != slot_src.data) {
      const std::size_t row_bytes =
          static_cast<std::size_t>(ctx.src.width) * ctx.src.channels;
      for (int y = 0; y < ctx.src.height; ++y)
        std::memcpy(slot_src.row(y), ctx.src.row(y), row_bytes);
      in_bytes = row_bytes * static_cast<std::size_t>(ctx.src.height);
    }

    ring_->slot(slot).seq.store(seq, std::memory_order_release);
    hdr.frame_seq.store(seq, std::memory_order_release);
    hdr.doorbell.fetch_add(1, std::memory_order_release);
    futex_wake_all(hdr.doorbell);

    // Wait for strips, bounded by the frame deadline. A shard whose
    // process is dead or stalled is not waited on at all.
    const double deadline_s = opts_.timeout_ms * 1e-3;
    const rt::Stopwatch wait_sw;
    for (;;) {
      bool missing = false;
      for (std::size_t s = 0; s < nshards; ++s) {
        if (!procs_[s].live.load(std::memory_order_relaxed)) continue;
        if (ring_->slab(static_cast<int>(s))
                .done_seq.load(std::memory_order_acquire) < seq) {
          missing = true;
          break;
        }
      }
      if (!missing || wait_sw.elapsed_seconds() >= deadline_s) break;
      const std::uint32_t c =
          hdr.completions.load(std::memory_order_acquire);
      futex_wait(hdr.completions, c, /*timeout_ms=*/2);
    }
    wait_ns_.fetch_add(
        static_cast<std::uint64_t>(wait_sw.elapsed_seconds() * 1e9),
        std::memory_order_relaxed);

    // Gather: copy finished strips out of the ring; compute the rest
    // locally with the same (deterministic) kernel so the frame is
    // complete and bit-exact regardless of fleet health.
    std::size_t out_bytes = 0;
    std::size_t fallbacks = 0;
    for (std::size_t s = 0; s < nshards; ++s) {
      const par::Rect& strip = strips_[s];
      WorkerSlab& slab = ring_->slab(static_cast<int>(s));
      if (slab.done_seq.load(std::memory_order_acquire) >= seq) {
        copy_rows(ctx.dst, slot_dst, strip);
        out_bytes += static_cast<std::size_t>(strip.width()) *
                     strip.height() * ctx.dst.channels;
        inst.tile_seconds[s] =
            slab.last_ns.load(std::memory_order_relaxed) * 1e-9;
      } else {
        const rt::Stopwatch sw;
        kernel_(ctx.src, ctx.dst, strip);
        inst.tile_seconds[s] = sw.elapsed_seconds();
        ++fallbacks;
      }
    }

    inst.bytes_in = plan.workspace().bytes_in_estimate;
    inst.bytes_out = plan.workspace().bytes_out_estimate;
    inst.modeled = false;
    inst.transport_bytes = in_bytes + out_bytes;
    inst.fallback_strips = fallbacks;
    inst.respawns = respawns_.load(std::memory_order_relaxed);

    frames_.fetch_add(1, std::memory_order_relaxed);
    t_in_.fetch_add(in_bytes, std::memory_order_relaxed);
    t_out_.fetch_add(out_bytes, std::memory_order_relaxed);
    fallbacks_.fetch_add(fallbacks, std::memory_order_relaxed);
  }

  [[nodiscard]] rt::ShardStats stats() const {
    rt::ShardStats s;
    s.workers = static_cast<int>(strips_.size());
    s.frames = frames_.load(std::memory_order_relaxed);
    s.transport_in_bytes = t_in_.load(std::memory_order_relaxed);
    s.transport_out_bytes = t_out_.load(std::memory_order_relaxed);
    s.fallback_strips = fallbacks_.load(std::memory_order_relaxed);
    s.respawns = respawns_.load(std::memory_order_relaxed);
    s.stalls = stalls_.load(std::memory_order_relaxed);
    s.heartbeats = beats_.load(std::memory_order_relaxed);
    s.wait_seconds = wait_ns_.load(std::memory_order_relaxed) * 1e-9;
    return s;
  }

  [[nodiscard]] std::vector<ShardWorkerInfo> workers_info() const {
    std::vector<ShardWorkerInfo> out(strips_.size());
    for (std::size_t s = 0; s < strips_.size(); ++s) {
      out[s].shard = static_cast<int>(s);
      out[s].pid = procs_[s].pid.load(std::memory_order_relaxed);
      out[s].live = procs_[s].live.load(std::memory_order_relaxed);
      out[s].epoch = procs_[s].epoch.load(std::memory_order_relaxed);
      out[s].frames = ring_->slab(static_cast<int>(s))
                          .frames.load(std::memory_order_relaxed);
    }
    return out;
  }

  [[nodiscard]] img::View8 next_input() const {
    return ring_->slot_src(
        static_cast<int>((next_seq_ + 1) % ring_->slots()));
  }

 private:
  struct WorkerProc {
    std::atomic<long> pid{-1};
    int sock = -1;  ///< supervisor end; monitor-thread-only after spawn
    std::atomic<bool> live{false};
    std::atomic<std::uint32_t> epoch{0};
    std::uint32_t seen_beat = 0;  ///< monitor-local heartbeat bookkeeping
    double beat_time = 0.0;
    bool was_stalled = false;
  };

  void spawn(int shard, std::uint32_t epoch) {
    int sv[2];
    if (socketpair(AF_UNIX, SOCK_DGRAM, 0, sv) != 0)
      throw Error(std::string("shard: socketpair failed: ") +
                  std::strerror(errno));
    const pid_t pid = fork();
    if (pid < 0) {
      close(sv[0]);
      close(sv[1]);
      throw Error(std::string("shard: fork failed: ") +
                  std::strerror(errno));
    }
    if (pid == 0) {
      // Child: drop every supervisor-side descriptor, then serve.
      close(sv[0]);
      for (const WorkerProc& p : procs_)
        if (p.sock >= 0) close(p.sock);
      worker_main(sv[1]);  // never returns
    }
    close(sv[1]);
    WorkerProc& p = procs_[static_cast<std::size_t>(shard)];
    if (p.sock >= 0) close(p.sock);
    p.sock = sv[0];
    p.pid.store(pid, std::memory_order_relaxed);
    p.epoch.store(epoch, std::memory_order_relaxed);
    p.seen_beat = ring_->slab(shard).heartbeat.load(std::memory_order_relaxed);
    p.beat_time = clock_.elapsed_seconds();
    p.was_stalled = false;
    ControlMsg assign;
    assign.type = MsgType::Assign;
    assign.shard = static_cast<std::uint32_t>(shard);
    assign.epoch = epoch;
    assign.y0 = strips_[static_cast<std::size_t>(shard)].y0;
    assign.y1 = strips_[static_cast<std::size_t>(shard)].y1;
    assign.heartbeat_ms = static_cast<std::uint32_t>(opts_.heartbeat_ms);
    send(p.sock, &assign, sizeof assign, MSG_NOSIGNAL);
    // Optimistic: the frame deadline covers a spawn that never comes up.
    p.live.store(true, std::memory_order_relaxed);
  }

  /// Worker process entry. Inherits the ring mapping and the resolved
  /// kernel (fork's copy-on-write keeps its bound map/camera pointers
  /// valid), so no plan re-resolution happens in the child; the strip
  /// assignment arrives over the control socket.
  [[noreturn]] void worker_main(int sock) {
    ControlMsg assign;
    for (;;) {
      const ssize_t n = recv(sock, &assign, sizeof assign, 0);
      if (n == static_cast<ssize_t>(sizeof assign) &&
          assign.type == MsgType::Assign)
        break;
      if (n < 0 && errno == EINTR) continue;
      _exit(1);
    }
    const par::Rect strip = strips_[assign.shard];
    const int hb_ms = static_cast<int>(assign.heartbeat_ms);
    RingHeader& hdr = ring_->header();
    WorkerSlab& me = ring_->slab(static_cast<int>(assign.shard));
    ControlMsg beat;
    beat.type = MsgType::Ready;
    beat.shard = assign.shard;
    beat.epoch = assign.epoch;
    send(sock, &beat, sizeof beat, MSG_DONTWAIT | MSG_NOSIGNAL);
    beat.type = MsgType::Heartbeat;

    std::uint64_t seen = me.done_seq.load(std::memory_order_relaxed);
    for (;;) {
      if (hdr.shutdown.load(std::memory_order_acquire) != 0) _exit(0);
      const std::uint64_t seq =
          hdr.frame_seq.load(std::memory_order_acquire);
      if (seq == seen) {
        const std::uint32_t bell =
            hdr.doorbell.load(std::memory_order_acquire);
        if (hdr.frame_seq.load(std::memory_order_acquire) != seen ||
            hdr.shutdown.load(std::memory_order_acquire) != 0)
          continue;
        futex_wait(hdr.doorbell, bell, hb_ms);
        me.heartbeat.fetch_add(1, std::memory_order_release);
        beat.beats = me.heartbeat.load(std::memory_order_relaxed);
        send(sock, &beat, sizeof beat, MSG_DONTWAIT | MSG_NOSIGNAL);
        continue;
      }
      const int slot = static_cast<int>(seq % ring_->slots());
      if (ring_->slot(slot).seq.load(std::memory_order_acquire) != seq) {
        // We slept through this frame and the supervisor reused the slot;
        // its fallback already covered our strip. Catch up.
        seen = seq;
        continue;
      }
      const rt::Stopwatch sw;
      kernel_(ring_->slot_src(slot), ring_->slot_dst(slot), strip);
      const auto ns =
          static_cast<std::uint64_t>(sw.elapsed_seconds() * 1e9);
      me.last_ns.store(ns, std::memory_order_relaxed);
      me.compute_ns.fetch_add(ns, std::memory_order_relaxed);
      me.frames.fetch_add(1, std::memory_order_relaxed);
      me.heartbeat.fetch_add(1, std::memory_order_release);
      seen = seq;
      me.done_seq.store(seq, std::memory_order_release);
      hdr.completions.fetch_add(1, std::memory_order_release);
      futex_wake_all(hdr.completions);
    }
  }

  void monitor_loop() {
    const double hb_s = opts_.heartbeat_ms * 1e-3;
    const double timeout_s = opts_.timeout_ms * 1e-3;
    // Stall after ~4 silent heartbeats, but never sooner than the frame
    // deadline — a worker legitimately computing a slow strip heartbeats
    // only between frames.
    const double stall_after = std::max(4.0 * hb_s, timeout_s);
    const double kill_after = std::max(10.0 * hb_s, 2.0 * timeout_s);
    const auto tick =
        std::chrono::milliseconds(std::max(1, opts_.heartbeat_ms / 2));
    while (!stopping_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(tick);
      const double now = clock_.elapsed_seconds();
      for (std::size_t s = 0; s < procs_.size(); ++s) {
        WorkerProc& p = procs_[s];
        const long pid = p.pid.load(std::memory_order_relaxed);
        if (pid <= 0) continue;
        // Drain the control socket (bounded, fixed buffer, no alloc).
        ControlMsg msg;
        for (int i = 0; i < 64; ++i) {
          const ssize_t n =
              recv(p.sock, &msg, sizeof msg, MSG_DONTWAIT);
          if (n != static_cast<ssize_t>(sizeof msg)) break;
          if (msg.type == MsgType::Ready ||
              msg.type == MsgType::Heartbeat) {
            beats_.fetch_add(1, std::memory_order_relaxed);
            note_beat(p, now);
          }
        }
        // The shm heartbeat word works even when the socket backs up.
        const std::uint32_t beat = ring_->slab(static_cast<int>(s))
                                       .heartbeat.load(
                                           std::memory_order_relaxed);
        if (beat != p.seen_beat) {
          p.seen_beat = beat;
          note_beat(p, now);
        }
        // Crash detection + respawn.
        int status = 0;
        if (waitpid(static_cast<pid_t>(pid), &status, WNOHANG) == pid) {
          p.live.store(false, std::memory_order_relaxed);
          p.pid.store(-1, std::memory_order_relaxed);
          close(p.sock);
          p.sock = -1;
          if (!stopping_.load(std::memory_order_relaxed)) {
            respawns_.fetch_add(1, std::memory_order_relaxed);
            spawn(static_cast<int>(s),
                  p.epoch.load(std::memory_order_relaxed) + 1);
          }
          continue;
        }
        // Stall detection: silent but not dead. Strips lease back to the
        // supervisor (live=false) until heartbeats resume; a worker wedged
        // past kill_after is killed and respawned by the reap above.
        const double silent = now - p.beat_time;
        if (p.live.load(std::memory_order_relaxed) &&
            silent > stall_after) {
          p.live.store(false, std::memory_order_relaxed);
          p.was_stalled = true;
          stalls_.fetch_add(1, std::memory_order_relaxed);
        }
        if (p.was_stalled && silent > kill_after)
          kill(static_cast<pid_t>(pid), SIGKILL);
      }
    }
  }

  void note_beat(WorkerProc& p, double now) {
    p.beat_time = now;
    if (p.was_stalled) {
      p.was_stalled = false;  // it woke up; hand the strip back
      p.live.store(true, std::memory_order_relaxed);
    }
  }

  ShardOptions opts_;
  std::vector<par::Rect> strips_;
  core::ResolvedKernel kernel_;
  std::unique_ptr<FrameRing> ring_;
  std::vector<WorkerProc> procs_;
  rt::Stopwatch clock_;
  std::uint64_t next_seq_ = 0;

  std::atomic<std::size_t> frames_{0};
  std::atomic<std::size_t> t_in_{0};
  std::atomic<std::size_t> t_out_{0};
  std::atomic<std::size_t> fallbacks_{0};
  std::atomic<std::size_t> respawns_{0};
  std::atomic<std::size_t> stalls_{0};
  std::atomic<std::size_t> beats_{0};
  std::atomic<std::uint64_t> wait_ns_{0};

  std::thread monitor_;
  std::atomic<bool> stopping_{false};
};

ShardBackend::ShardBackend(ShardOptions options) : options_(options) {
  FE_EXPECTS(options.workers >= 1);
  FE_EXPECTS(options.ring >= 1);
  FE_EXPECTS(options.timeout_ms >= 1);
  FE_EXPECTS(options.heartbeat_ms >= 1);
}

ShardBackend::~ShardBackend() = default;

core::ExecutionPlan ShardBackend::plan(const core::ExecContext& ctx) {
  std::shared_ptr<const core::ConvertedMap> converted;
  const core::ExecContext ectx = resolve_map(ctx, converted);
  const int shards =
      std::min(options_.workers, std::max(1, ectx.dst.height));
  std::vector<par::Rect> strips = par::partition(
      ectx.dst.width, ectx.dst.height, par::PartitionKind::RowBlocks,
      shards);
  auto fleet = std::make_shared<WorkerFleet>(
      options_, ectx, strips,
      core::resolve_kernel(ectx, core::KernelVariant::Scalar));
  fleet_ = fleet;
  return make_plan(ctx, std::move(strips), std::move(fleet),
                   std::move(converted));
}

void ShardBackend::execute(const core::ExecutionPlan& plan,
                           const core::ExecContext& ctx) {
  check_plan(plan, ctx);
  FE_EXPECTS(ctx.src.data != nullptr && ctx.dst.data != nullptr);
  auto* fleet = plan.state<WorkerFleet>();
  FE_EXPECTS(fleet != nullptr);
  const core::ExecContext ectx =
      plan.converted() != nullptr ? plan.converted()->apply(ctx) : ctx;
  fleet->run_frame(plan, ectx);
}

std::string ShardBackend::name() const {
  core::SpecBuilder spec("shard");
  spec.opt("workers", options_.workers);
  const ShardOptions def;
  if (options_.ring != def.ring) spec.opt("ring", options_.ring);
  if (options_.timeout_ms != def.timeout_ms)
    spec.opt("timeout_ms", options_.timeout_ms);
  if (options_.heartbeat_ms != def.heartbeat_ms)
    spec.opt("heartbeat_ms", options_.heartbeat_ms);
  return decorate_spec(spec.str());
}

rt::ShardStats ShardBackend::last_stats() const {
  return fleet_ != nullptr ? fleet_->stats() : rt::ShardStats{};
}

std::vector<ShardWorkerInfo> ShardBackend::workers_info() const {
  return fleet_ != nullptr ? fleet_->workers_info()
                           : std::vector<ShardWorkerInfo>{};
}

img::View8 ShardBackend::next_input() const {
  FE_EXPECTS(fleet_ != nullptr);
  return fleet_->next_input();
}

}  // namespace fisheye::shard
