#include "shard/shard_ring.hpp"

#include <cerrno>
#include <cstring>
#include <ctime>
#include <new>
#include <string>

#include "util/aligned.hpp"
#include "util/error.hpp"

#ifdef __linux__
#include <linux/futex.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#include <sys/mman.h>
#endif

namespace fisheye::shard {

static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
              "cross-process futex words must be lock-free");
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "cross-process sequence counters must be lock-free");
static_assert(sizeof(RingHeader) == 64 && sizeof(WorkerSlab) == 64 &&
                  sizeof(SlotHeader) == 64,
              "shared blocks are exactly one cache line");

void futex_wait(const std::atomic<std::uint32_t>& word, std::uint32_t expected,
                int timeout_ms) noexcept {
#ifdef __linux__
  timespec ts{};
  ts.tv_sec = timeout_ms / 1000;
  ts.tv_nsec = static_cast<long>(timeout_ms % 1000) * 1000000L;
  // FUTEX_WAIT re-checks *word == expected atomically against concurrent
  // wakes, so a doorbell rung between our load and this call is not lost.
  syscall(SYS_futex, reinterpret_cast<const std::uint32_t*>(&word),
          FUTEX_WAIT, expected, &ts, nullptr, 0);
#else
  // Poll fallback: short bounded naps until the word moves or time is up.
  timespec nap{};
  nap.tv_nsec = 500000L;  // 500us
  for (int waited_us = 0; waited_us < timeout_ms * 1000; waited_us += 500) {
    if (word.load(std::memory_order_acquire) != expected) return;
    nanosleep(&nap, nullptr);
  }
#endif
}

void futex_wake_all(const std::atomic<std::uint32_t>& word) noexcept {
#ifdef __linux__
  syscall(SYS_futex, reinterpret_cast<const std::uint32_t*>(&word),
          FUTEX_WAKE, INT32_MAX, nullptr, nullptr, 0);
#else
  (void)word;  // pollers notice the store on their next nap boundary
#endif
}

FrameRing::FrameRing(const Geometry& geometry, int slots, int workers)
    : geo_(geometry), slots_(slots), workers_(workers) {
  FE_EXPECTS(geometry.src_w > 0 && geometry.src_h > 0);
  FE_EXPECTS(geometry.dst_w > 0 && geometry.dst_h > 0);
  FE_EXPECTS(geometry.channels > 0 && geometry.channels <= 4);
  FE_EXPECTS(slots > 0 && workers > 0);

  src_pitch_ = util::align_up(
      static_cast<std::size_t>(geo_.src_w) * geo_.channels, util::kCacheLine);
  dst_pitch_ = util::align_up(
      static_cast<std::size_t>(geo_.dst_w) * geo_.channels, util::kCacheLine);
  slab_off_ = sizeof(RingHeader);
  slot0_off_ = util::align_up(
      slab_off_ + sizeof(WorkerSlab) * static_cast<std::size_t>(workers_),
      util::kCacheLine);
  src_off_ = sizeof(SlotHeader);
  dst_off_ = src_off_ + src_pitch_ * static_cast<std::size_t>(geo_.src_h);
  slot_stride_ = util::align_up(
      dst_off_ + dst_pitch_ * static_cast<std::size_t>(geo_.dst_h),
      util::kCacheLine);
  size_ = slot0_off_ + slot_stride_ * static_cast<std::size_t>(slots_);

  void* mem = mmap(nullptr, size_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED)
    throw Error("shard: mmap of " + std::to_string(size_) +
                "-byte frame ring failed: " + std::strerror(errno));
  base_ = static_cast<unsigned char*>(mem);
  new (base_) RingHeader();
  for (int w = 0; w < workers_; ++w)
    new (base_ + slab_off_ + sizeof(WorkerSlab) * w) WorkerSlab();
  for (int s = 0; s < slots_; ++s)
    new (base_ + slot0_off_ + slot_stride_ * s) SlotHeader();
}

FrameRing::~FrameRing() {
  if (base_ != nullptr) munmap(base_, size_);
}

RingHeader& FrameRing::header() const noexcept {
  return *reinterpret_cast<RingHeader*>(base_);
}

WorkerSlab& FrameRing::slab(int worker) const noexcept {
  return *reinterpret_cast<WorkerSlab*>(base_ + slab_off_ +
                                        sizeof(WorkerSlab) * worker);
}

SlotHeader& FrameRing::slot(int s) const noexcept {
  return *reinterpret_cast<SlotHeader*>(base_ + slot0_off_ + slot_stride_ * s);
}

img::View8 FrameRing::slot_src(int s) const noexcept {
  return {base_ + slot0_off_ + slot_stride_ * s + src_off_, geo_.src_w,
          geo_.src_h, geo_.channels, src_pitch_};
}

img::View8 FrameRing::slot_dst(int s) const noexcept {
  return {base_ + slot0_off_ + slot_stride_ * s + dst_off_, geo_.dst_w,
          geo_.dst_h, geo_.channels, dst_pitch_};
}

}  // namespace fisheye::shard
