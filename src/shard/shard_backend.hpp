// Process-level sharding backend: one supervisor, N forked workers.
//
// The paper scales the remap across cores of one address space (pool,
// OpenMP) and across simulated machines (cluster:). This backend is the
// step between the two that production video servers actually deploy:
// REAL processes on one host, so a crashed or wedged decoder takes down
// its strip, not the server. The supervisor owns the Corrector plan and a
// shared-memory FrameRing (shard_ring.hpp); each worker is a fork of the
// planned process executing the same resolved scalar kernel over its row
// strip of every frame. Frames flow through the ring (source in, strips
// out, generation counters + futex doorbells); control flows over a
// per-worker UNIX datagram socketpair (strip assignment, heartbeats).
//
// Supervision: a monitor thread reaps crashed workers (waitpid), respawns
// them with a bumped epoch, marks silent ones stalled after a heartbeat
// timeout, and SIGKILLs workers that stay wedged. A frame never waits on
// a dead or stalled worker past the frame deadline — the supervisor
// computes the missing strips itself with the same kernel, so output is
// bit-exact (the scalar kernel is deterministic) and every frame
// completes; `kill -9` costs at most one frame's latency, not the stream.
//
// Spec: shard:<N> | shard:workers=N[,ring=R][,timeout_ms=T]
//       [,heartbeat_ms=H][,map=...]   (see shard_registry.cpp)
//
// Construction does NOT fork — the fleet (ring + processes + monitor) is
// created at plan() time, when the frame geometry is known, and torn down
// with the plan's state. Steady-state execute() is allocation-free and
// zero-copy on the source when the caller writes frames directly into
// next_input().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "image/image.hpp"
#include "runtime/stats.hpp"

namespace fisheye::shard {

struct ShardOptions {
  int workers = 4;  ///< processes to fork (clamped to output rows at plan)
  int ring = 4;     ///< frame slots in the shared ring
  /// Frame deadline: after this long the supervisor stops waiting and
  /// computes unfinished strips locally.
  int timeout_ms = 2000;
  /// Worker heartbeat period; a worker silent for ~4 heartbeats is
  /// stalled (strips lease to the supervisor), ~10 gets SIGKILLed.
  int heartbeat_ms = 100;
};

/// One worker's supervision snapshot (tests and the bench poke at this).
struct ShardWorkerInfo {
  int shard = 0;             ///< strip index == worker index
  long pid = -1;             ///< current process (-1 between respawns)
  bool live = false;         ///< heartbeating and assigned
  std::uint32_t epoch = 0;   ///< respawn generation (0 = original fork)
  std::uint64_t frames = 0;  ///< strips this shard's processes computed
};

class WorkerFleet;

/// See the header comment. Thread-safety follows Backend: plan() from any
/// thread, one frame in flight per plan. The fleet lives in the plan's
/// shared state, so copies of the plan share the same worker processes.
class ShardBackend final : public core::Backend {
 public:
  explicit ShardBackend(ShardOptions options = {});
  ~ShardBackend() override;

  using Backend::execute;
  [[nodiscard]] core::ExecutionPlan plan(const core::ExecContext& ctx) override;
  void execute(const core::ExecutionPlan& plan,
               const core::ExecContext& ctx) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const ShardOptions& options() const noexcept {
    return options_;
  }

  /// Cumulative transport/supervision counters of the most recent fleet.
  [[nodiscard]] rt::ShardStats last_stats() const;
  /// Per-worker supervision snapshots of the most recent fleet.
  [[nodiscard]] std::vector<ShardWorkerInfo> workers_info() const;

  /// The ring slot the NEXT execute() will read the source from. A caller
  /// that renders/decodes directly into this view skips the supervisor's
  /// source copy entirely (execute detects src.data == slot data).
  [[nodiscard]] img::View8 next_input() const;

 private:
  ShardOptions options_;
  /// Most recent plan's fleet (shared with the plan's state), kept so the
  /// accessors above work without holding the plan.
  std::shared_ptr<WorkerFleet> fleet_;
};

}  // namespace fisheye::shard
