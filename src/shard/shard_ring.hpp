// Shared-memory frame ring for the multi-process shard backend.
//
// One anonymous MAP_SHARED segment, mapped by the supervisor BEFORE it
// forks its workers so every process sees it at the same address (no
// pointer translation, no name in the filesystem, reclaimed by the kernel
// when the last process exits — kill -9 leaks nothing). Layout:
//
//   [RingHeader]                 doorbell/completions futex words, the
//                                frame generation counter, shutdown flag
//   [WorkerSlab x workers]       per-worker progress: done_seq (the seqlock
//                                gate the supervisor reads), heartbeat,
//                                compute timing — one cache line each so a
//                                worker's stores never false-share
//   [slot 0..R-1]                each: [SlotHeader | src frame | dst frame]
//                                with 64-byte-aligned row pitch (same
//                                layout as img::Image, so kernels run on
//                                ring-backed views unchanged)
//
// Generation protocol (seqlock-style): the supervisor writes frame N's
// source into slot N % R, stores SlotHeader::seq = N (release), publishes
// RingHeader::frame_seq = N, and rings the doorbell. A worker validates
// SlotHeader::seq == N before computing (a mismatch means it slept through
// the frame and the slot was reused — skip, the supervisor's fallback
// covered it) and stores its WorkerSlab::done_seq = N (release) after
// writing its dst strip. The supervisor copies a strip out ONLY when
// done_seq >= N, which makes every torn case safe: a stale worker writing
// into a reused slot can never satisfy the gate for the frame that owns
// the slot now, so its garbage is overwritten before anyone reads it.
//
// Doorbells are futex words on Linux (FUTEX_WAIT/WAKE on the shared
// atomic — the same mechanism a cross-process semaphore would use, minus
// the allocation) and degrade to a short-sleep poll elsewhere; waits are
// always bounded so heartbeats keep flowing.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "image/image.hpp"

namespace fisheye::shard {

/// Bounded wait on a shared 32-bit word: returns when `word != expected`,
/// on a wake, or after `timeout_ms` — whichever is first. Spurious returns
/// are fine (every caller re-checks its real condition).
void futex_wait(const std::atomic<std::uint32_t>& word, std::uint32_t expected,
                int timeout_ms) noexcept;

/// Wake every process waiting on `word` (no-op on the poll fallback).
void futex_wake_all(const std::atomic<std::uint32_t>& word) noexcept;

/// Shared control words; one per ring.
struct alignas(64) RingHeader {
  std::atomic<std::uint32_t> doorbell{0};     ///< bumped per posted frame
  std::atomic<std::uint32_t> completions{0};  ///< bumped per finished strip
  std::atomic<std::uint32_t> shutdown{0};     ///< workers _exit(0) when set
  std::atomic<std::uint64_t> frame_seq{0};    ///< newest posted frame
};

/// One worker's progress block (written by the worker, read by the
/// supervisor). done_seq is the strip-completion gate; heartbeat advances
/// on every wait tick and every computed strip, so a stopped process goes
/// visibly silent even when the control socket backs up.
struct alignas(64) WorkerSlab {
  std::atomic<std::uint64_t> done_seq{0};
  std::atomic<std::uint32_t> heartbeat{0};
  std::atomic<std::uint64_t> frames{0};      ///< strips computed (lifetime)
  std::atomic<std::uint64_t> compute_ns{0};  ///< cumulative strip time
  std::atomic<std::uint64_t> last_ns{0};     ///< last strip's compute time
};

/// Per-slot generation counter (see the header comment's protocol).
struct alignas(64) SlotHeader {
  std::atomic<std::uint64_t> seq{0};
};

/// The mapping itself. Constructed by the supervisor pre-fork; the
/// destructor unmaps (worker processes hold their own references via
/// inherited mappings, so teardown order does not matter).
class FrameRing {
 public:
  struct Geometry {
    int src_w = 0, src_h = 0;
    int dst_w = 0, dst_h = 0;
    int channels = 1;
  };

  /// Maps and zero-initializes a ring of `slots` frames for `workers`
  /// workers. Throws Error when the kernel refuses the mapping.
  FrameRing(const Geometry& geometry, int slots, int workers);
  ~FrameRing();

  FrameRing(const FrameRing&) = delete;
  FrameRing& operator=(const FrameRing&) = delete;

  [[nodiscard]] RingHeader& header() const noexcept;
  [[nodiscard]] WorkerSlab& slab(int worker) const noexcept;
  [[nodiscard]] SlotHeader& slot(int s) const noexcept;
  /// Ring-backed views of slot `s`'s frames; same pitch discipline as
  /// img::Image, so every kernel in the catalogue runs on them unchanged.
  [[nodiscard]] img::View8 slot_src(int s) const noexcept;
  [[nodiscard]] img::View8 slot_dst(int s) const noexcept;

  [[nodiscard]] int slots() const noexcept { return slots_; }
  [[nodiscard]] int workers() const noexcept { return workers_; }
  [[nodiscard]] const Geometry& geometry() const noexcept { return geo_; }
  /// Total mapped bytes (header + slabs + all slots).
  [[nodiscard]] std::size_t bytes() const noexcept { return size_; }

 private:
  Geometry geo_;
  int slots_ = 0;
  int workers_ = 0;
  std::size_t src_pitch_ = 0;  ///< bytes between source rows
  std::size_t dst_pitch_ = 0;
  std::size_t slab_off_ = 0;
  std::size_t slot0_off_ = 0;
  std::size_t slot_stride_ = 0;
  std::size_t src_off_ = 0;  ///< source offset within a slot
  std::size_t dst_off_ = 0;
  std::size_t size_ = 0;
  unsigned char* base_ = nullptr;
};

}  // namespace fisheye::shard
