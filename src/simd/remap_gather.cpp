// AVX2 gather datapath — see remap_gather.hpp for the contract.
//
// Pass 1 fills the shared SoaScratch with clamped tap coordinates and the
// 0..256 integer blend weights (all three map representations reduce to
// the same scratch layout, which is what lets one pass-2 serve them all).
// Pass 2 processes eight pixels per iteration: two masked dword gathers
// fetch the (x0, x0+1) byte pairs of the top and bottom tap rows, and the
// factored 8.8 blend
//   v = (256-ay) * ((256-ax) p00 + ax p10) + ay * ((256-ax) p01 + ax p11)
// accumulates in int32 (max 2 * 256 * 255 * 256 < 2^25), rounds half-up
// and packs to bytes. Lanes excluded from the vector path — invalid
// samples, edge-clamped footprints, dword reads that would overrun the
// buffer's last padded row — are finished by the scalar fixup loop over
// the same scratch, so every lane runs the identical integer arithmetic.
#include "simd/remap_gather.hpp"

#include <algorithm>
#include <cmath>

#include "util/cpu.hpp"
#include "util/error.hpp"

#if defined(__AVX2__) && !defined(FISHEYE_DISABLE_AVX2)
#define FISHEYE_HAVE_GATHER 1
#include <immintrin.h>
#else
#define FISHEYE_HAVE_GATHER 0
#endif

namespace fisheye::simd {

bool gather_compiled() noexcept { return FISHEYE_HAVE_GATHER != 0; }

bool gather_available() noexcept {
  return gather_compiled() && util::cpu_info().avx2 && !util::force_scalar();
}

namespace {

/// Clamp a requested strip length into what the scratch arrays can hold.
inline int clamp_strip(int strip) noexcept {
  if (strip <= 0) return kSoaStrip;
  return std::clamp(strip, 8, kSoaStrip);
}

/// One pixel of the 8.8 integer blend from scratch slot `i` (ch == 1).
inline std::uint8_t blend_one(const SoaScratch& s, int i,
                              const std::uint8_t* __restrict base,
                              std::size_t pitch) noexcept {
  const std::uint8_t* __restrict r0 =
      base + static_cast<std::size_t>(s.y0[i]) * pitch;
  const std::uint8_t* __restrict r1 =
      base + static_cast<std::size_t>(s.y1[i]) * pitch;
  const int ax = s.ax[i], ay = s.ay[i];
  const int t0 = (256 - ax) * r0[s.x0[i]] + ax * r0[s.x1[i]];
  const int t1 = (256 - ax) * r1[s.x0[i]] + ax * r1[s.x1[i]];
  const int v = (256 - ay) * t0 + ay * t1;
  return static_cast<std::uint8_t>((v + (1 << 15)) >> 16);
}

/// Scalar pass 2 over scratch slots [i0, i1): the fallback for non-AVX2
/// builds, vector-loop tails, and multi-channel frames.
void blend_span_scalar(const SoaScratch& s, int i0, int i1,
                       const std::uint8_t* __restrict base, std::size_t pitch,
                       int ch, std::uint8_t* __restrict out,
                       std::uint8_t fill) noexcept {
  if (ch == 1) {
    for (int i = i0; i < i1; ++i)
      out[i] = s.valid[i] ? blend_one(s, i, base, pitch) : fill;
    return;
  }
  for (int i = i0; i < i1; ++i) {
    std::uint8_t* __restrict o = out + static_cast<std::size_t>(i) * ch;
    if (!s.valid[i]) {
      for (int c = 0; c < ch; ++c) o[c] = fill;
      continue;
    }
    const std::uint8_t* __restrict r0 =
        base + static_cast<std::size_t>(s.y0[i]) * pitch;
    const std::uint8_t* __restrict r1 =
        base + static_cast<std::size_t>(s.y1[i]) * pitch;
    const int lx0 = s.x0[i] * ch;
    const int lx1 = s.x1[i] * ch;
    const int ax = s.ax[i], ay = s.ay[i];
    for (int c = 0; c < ch; ++c) {
      const int t0 = (256 - ax) * r0[lx0 + c] + ax * r0[lx1 + c];
      const int t1 = (256 - ax) * r1[lx0 + c] + ax * r1[lx1 + c];
      const int v = (256 - ay) * t0 + ay * t1;
      o[c] = static_cast<std::uint8_t>((v + (1 << 15)) >> 16);
    }
  }
}

#if FISHEYE_HAVE_GATHER

/// AVX2 pass 2 for ch == 1 over scratch slots [0, n). `total` is the
/// source buffer size in bytes (pitch * height), bounding the dword reads.
void blend_span_avx2(const SoaScratch& s, int n,
                     const std::uint8_t* __restrict base, int pitch,
                     int total, std::uint8_t* __restrict out,
                     std::uint8_t fill) noexcept {
  const __m256i vpitch = _mm256_set1_epi32(pitch);
  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vone = _mm256_set1_epi32(1);
  const __m256i v256 = _mm256_set1_epi32(256);
  const __m256i vff = _mm256_set1_epi32(0xFF);
  const __m256i vfill = _mm256_set1_epi32(fill);
  const __m256i vhalf = _mm256_set1_epi32(1 << 15);
  // Vector lanes read 4 bytes at `bot`; require bot + 4 <= total, i.e.
  // bot < total - 3 (the last padded row near the right edge can fail
  // this when pitch == width; those lanes take the fixup path).
  const __m256i vlim = _mm256_set1_epi32(total - 3);
  const __m256i perm = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  const int* ibase = reinterpret_cast<const int*>(base);

  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x0 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(s.x0 + i));
    const __m256i y0 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(s.y0 + i));
    const __m256i x1 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(s.x1 + i));
    const __m256i y1 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(s.y1 + i));
    const __m256i valid = _mm256_cmpgt_epi32(
        _mm256_load_si256(reinterpret_cast<const __m256i*>(s.valid + i)),
        vzero);
    const __m256i top = _mm256_add_epi32(_mm256_mullo_epi32(y0, vpitch), x0);
    const __m256i bot = _mm256_add_epi32(top, vpitch);
    // Vector-eligible: valid, contiguous 2x2 footprint, in-bounds dwords.
    __m256i vec = _mm256_and_si256(
        _mm256_cmpeq_epi32(x1, _mm256_add_epi32(x0, vone)),
        _mm256_cmpeq_epi32(y1, _mm256_add_epi32(y0, vone)));
    vec = _mm256_and_si256(vec, _mm256_cmpgt_epi32(vlim, bot));
    vec = _mm256_and_si256(vec, valid);

    const __m256i topw = _mm256_mask_i32gather_epi32(vzero, ibase, top, vec, 1);
    const __m256i botw = _mm256_mask_i32gather_epi32(vzero, ibase, bot, vec, 1);

    const __m256i ax =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(s.ax + i));
    const __m256i ay =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(s.ay + i));
    const __m256i bx = _mm256_sub_epi32(v256, ax);
    const __m256i by = _mm256_sub_epi32(v256, ay);
    const __m256i p00 = _mm256_and_si256(topw, vff);
    const __m256i p10 = _mm256_and_si256(_mm256_srli_epi32(topw, 8), vff);
    const __m256i p01 = _mm256_and_si256(botw, vff);
    const __m256i p11 = _mm256_and_si256(_mm256_srli_epi32(botw, 8), vff);
    const __m256i t0 = _mm256_add_epi32(_mm256_mullo_epi32(p00, bx),
                                        _mm256_mullo_epi32(p10, ax));
    const __m256i t1 = _mm256_add_epi32(_mm256_mullo_epi32(p01, bx),
                                        _mm256_mullo_epi32(p11, ax));
    __m256i acc = _mm256_add_epi32(_mm256_mullo_epi32(t0, by),
                                   _mm256_mullo_epi32(t1, ay));
    acc = _mm256_srli_epi32(_mm256_add_epi32(acc, vhalf), 16);
    acc = _mm256_blendv_epi8(vfill, acc, valid);

    // 8 x int32 in 0..255 -> low 8 bytes.
    const __m256i p16 = _mm256_packs_epi32(acc, acc);
    const __m256i p8 = _mm256_packus_epi16(p16, p16);
    const __m256i lanes = _mm256_permutevar8x32_epi32(p8, perm);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i),
                     _mm256_castsi256_si128(lanes));

    // Valid lanes the vector path skipped (clamped footprint or buffer
    // tail): redo scalar — identical integer math, so no seam.
    int fix = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_andnot_si256(vec, valid)));
    while (fix != 0) {
      const int j = __builtin_ctz(static_cast<unsigned>(fix));
      fix &= fix - 1;
      out[i + j] = blend_one(s, i + j, base, static_cast<std::size_t>(pitch));
    }
  }
  blend_span_scalar(s, i, n, base, static_cast<std::size_t>(pitch), 1, out,
                    fill);
}

#endif  // FISHEYE_HAVE_GATHER

/// Pass 2 dispatch for one strip: AVX2 when compiled in, the frame is
/// single-channel, and the byte offsets fit int32; scalar otherwise.
inline void blend_strip(const SoaScratch& s, int n,
                        const std::uint8_t* __restrict base, std::size_t pitch,
                        std::size_t total, int ch,
                        std::uint8_t* __restrict out,
                        std::uint8_t fill) noexcept {
#if FISHEYE_HAVE_GATHER
  if (ch == 1 && total + 4 <= static_cast<std::size_t>(INT32_MAX)) {
    blend_span_avx2(s, n, base, static_cast<int>(pitch),
                    static_cast<int>(total), out, fill);
    return;
  }
#else
  (void)total;
#endif
  blend_span_scalar(s, 0, n, base, pitch, ch, out, fill);
}

/// Cache lines prefetched per strip, bounding the pass-1 overhead: a
/// 256-pixel strip of a smooth map typically spans a handful of source
/// rows, each a few lines wide (docs/modeling.md works the arithmetic).
constexpr int kMaxPrefetchLines = 64;

/// Software-prefetch the source rows the strip [xb, xe) of output row pair
/// (g0, g1) will gather from, using the subsampled grid's coarse bbox —
/// the CompactMap is the only representation whose footprint is knowable
/// this cheaply (two grid rows instead of a per-pixel scan).
inline void prefetch_strip_sources(const core::CompactMap& map,
                                   const std::uint8_t* base, std::size_t pitch,
                                   int ch, std::size_t g0, std::size_t g1,
                                   int xb, int xe) noexcept {
  if (xb >= xe) return;
  const int shift = map.shift();
  const int c0 = xb >> shift;
  const int c1 = std::min(((xe - 1) >> shift) + 1, map.grid_w - 1);
  std::int32_t min_x = INT32_MAX, max_x = INT32_MIN;
  std::int32_t min_y = INT32_MAX, max_y = INT32_MIN;
  for (int c = c0; c <= c1; ++c) {
    for (const std::size_t g : {g0 + c, g1 + c}) {
      min_x = std::min(min_x, map.gx[g]);
      max_x = std::max(max_x, map.gx[g]);
      min_y = std::min(min_y, map.gy[g]);
      max_y = std::max(max_y, map.gy[g]);
    }
  }
  const int frac = map.frac_bits;
  const int y_lo = std::clamp(min_y >> frac, 0, map.src_height - 1);
  const int y_hi = std::clamp((max_y >> frac) + 1, 0, map.src_height - 1);
  const int x_lo = std::clamp(min_x >> frac, 0, map.src_width - 1);
  const int x_hi = std::clamp((max_x >> frac) + 1, 0, map.src_width - 1);
  int lines = 0;
  for (int y = y_lo; y <= y_hi && lines < kMaxPrefetchLines; ++y) {
    const std::uint8_t* row = base + static_cast<std::size_t>(y) * pitch;
    const std::uint8_t* q = row + static_cast<std::size_t>(x_lo) * ch;
    const std::uint8_t* end = row + static_cast<std::size_t>(x_hi) * ch;
    for (; q <= end && lines < kMaxPrefetchLines; q += 64, ++lines)
      __builtin_prefetch(q, 0, 1);
  }
}

}  // namespace

void remap_bilinear_gather(img::ConstImageView<std::uint8_t> src,
                           img::ImageView<std::uint8_t> dst,
                           const core::WarpMap& map, par::Rect rect,
                           std::uint8_t fill, SoaScratch& scratch, int strip) {
  FE_EXPECTS(src.channels == dst.channels);
  FE_EXPECTS(map.width == dst.width && map.height == dst.height);
  FE_EXPECTS(rect.x0 >= 0 && rect.y0 >= 0 && rect.x1 <= dst.width &&
             rect.y1 <= dst.height);

  SoaScratch& s = scratch;
  const int len = clamp_strip(strip);
  const int ch = src.channels;
  const auto src_w = static_cast<float>(src.width);
  const auto src_h = static_cast<float>(src.height);
  const std::size_t pitch = src.pitch;
  const std::size_t total =
      pitch * static_cast<std::size_t>(src.height);

  for (int y = rect.y0; y < rect.y1; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * map.width;
    std::uint8_t* __restrict out_row = dst.row(y);

    for (int xb = rect.x0; xb < rect.x1; xb += len) {
      const int n = std::min(len, rect.x1 - xb);
      const float* __restrict mx = map.src_x.data() + row + xb;
      const float* __restrict my = map.src_y.data() + row + xb;

      // Pass 1: tap coordinates + 8.8 weights, rounded to nearest so the
      // quantization error stays under half a weight step (±1 contract).
      for (int i = 0; i < n; ++i) {
        const float sx = mx[i];
        const float sy = my[i];
        const float fx = std::floor(sx);
        const float fy = std::floor(sy);
        const std::int32_t ix = static_cast<std::int32_t>(fx);
        const std::int32_t iy = static_cast<std::int32_t>(fy);
        s.x0[i] = ix;
        s.y0[i] = iy;
        s.x1[i] = ix + 1;
        s.y1[i] = iy + 1;
        s.ax[i] = static_cast<std::int32_t>((sx - fx) * 256.0f + 0.5f);
        s.ay[i] = static_cast<std::int32_t>((sy - fy) * 256.0f + 0.5f);
        // Same interior-only validity as the SoA kernel.
        s.valid[i] = (fx >= 0.0f) & (fy >= 0.0f) & (fx < src_w - 1.0f) &
                     (fy < src_h - 1.0f);
      }

      std::uint8_t* __restrict out =
          out_row + static_cast<std::size_t>(xb) * ch;
      blend_strip(s, n, src.data, pitch, total, ch, out, fill);
    }
  }
}

void remap_packed_gather(img::ConstImageView<std::uint8_t> src,
                         img::ImageView<std::uint8_t> dst,
                         const core::PackedMap& map, par::Rect rect,
                         std::uint8_t fill, SoaScratch& scratch, int strip) {
  FE_EXPECTS(src.channels == dst.channels);
  FE_EXPECTS(map.width == dst.width && map.height == dst.height);
  FE_EXPECTS(rect.x0 >= 0 && rect.y0 >= 0 && rect.x1 <= dst.width &&
             rect.y1 <= dst.height);

  SoaScratch& s = scratch;
  const int len = clamp_strip(strip);
  const int ch = src.channels;
  const std::size_t pitch = src.pitch;
  const std::size_t total = pitch * static_cast<std::size_t>(src.height);
  const int frac = map.frac_bits;
  const int wshift = frac >= 8 ? frac - 8 : 0;
  const int wscale_up = frac >= 8 ? 0 : 8 - frac;
  const std::int32_t frac_mask = (std::int32_t{1} << frac) - 1;
  const int src_w = src.width;
  const int src_h = src.height;

  for (int y = rect.y0; y < rect.y1; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * map.width;
    std::uint8_t* __restrict out_row = dst.row(y);

    for (int xb = rect.x0; xb < rect.x1; xb += len) {
      const int n = std::min(len, rect.x1 - xb);
      const std::int32_t* __restrict pfx = map.fx.data() + row + xb;
      const std::int32_t* __restrict pfy = map.fy.data() + row + xb;

      // Pass 1: identical integer expressions to the scalar packed kernel
      // (core/remap.cpp), so pass 2 reproduces it bit-for-bit. Invalid
      // lanes keep garbage coordinates; no path dereferences them.
      for (int i = 0; i < n; ++i) {
        const std::int32_t fx = pfx[i];
        const std::int32_t fy = pfy[i];
        const std::int32_t x0 = fx >> frac;
        const std::int32_t y0 = fy >> frac;
        s.x0[i] = x0;
        s.y0[i] = y0;
        s.x1[i] = x0 + 1 < src_w ? x0 + 1 : x0;
        s.y1[i] = y0 + 1 < src_h ? y0 + 1 : y0;
        s.ax[i] = ((fx & frac_mask) >> wshift) << wscale_up;  // 0..256
        s.ay[i] = ((fy & frac_mask) >> wshift) << wscale_up;
        s.valid[i] = fx != core::PackedMap::kInvalid;
      }

      std::uint8_t* __restrict out =
          out_row + static_cast<std::size_t>(xb) * ch;
      blend_strip(s, n, src.data, pitch, total, ch, out, fill);
    }
  }
}

void remap_compact_gather(img::ConstImageView<std::uint8_t> src,
                          img::ImageView<std::uint8_t> dst,
                          const core::CompactMap& map, par::Rect rect,
                          std::uint8_t fill, SoaScratch& scratch, int strip) {
  FE_EXPECTS(src.channels == dst.channels);
  FE_EXPECTS(map.width == dst.width && map.height == dst.height);
  FE_EXPECTS(src.width == map.src_width && src.height == map.src_height);
  FE_EXPECTS(rect.x0 >= 0 && rect.y0 >= 0 && rect.x1 <= dst.width &&
             rect.y1 <= dst.height);

  SoaScratch& s = scratch;
  const int len = clamp_strip(strip);
  const int ch = src.channels;
  const std::size_t pitch = src.pitch;
  const std::size_t total = pitch * static_cast<std::size_t>(src.height);

  const int frac = map.frac_bits;
  const int wshift = frac >= 8 ? frac - 8 : 0;
  const int wscale_up = frac >= 8 ? 0 : 8 - frac;
  const std::int32_t frac_mask = (std::int32_t{1} << frac) - 1;
  const int shift = map.shift();
  const int smask = map.stride - 1;
  const std::int64_t gs = map.stride;
  const int rshift = 2 * shift;
  const std::int64_t half = rshift > 0 ? (std::int64_t{1} << (rshift - 1)) : 0;
  const std::int32_t one = std::int32_t{1} << frac;
  const std::int32_t lim_x = static_cast<std::int32_t>(map.src_width) << frac;
  const std::int32_t lim_y = static_cast<std::int32_t>(map.src_height) << frac;
  const std::int32_t max_fx = lim_x - one;
  const std::int32_t max_fy = lim_y - one;

  const std::int32_t* __restrict grid_x = map.gx.data();
  const std::int32_t* __restrict grid_y = map.gy.data();

  for (int y = rect.y0; y < rect.y1; ++y) {
    const std::int64_t ty = y & smask;
    const std::size_t g0 = static_cast<std::size_t>(y >> shift) * map.grid_w;
    const std::size_t g1 = g0 + map.grid_w;
    std::uint8_t* __restrict out_row = dst.row(y);

    for (int xb = rect.x0; xb < rect.x1; xb += len) {
      const int n = std::min(len, rect.x1 - xb);

      // Ahead of pass 1: warm the NEXT strip's source lines while this
      // strip's arithmetic hides the latency — by the time its gathers
      // issue, the lines are (at worst) in flight.
      if (xb + len < rect.x1)
        prefetch_strip_sources(map, src.data, pitch, ch, g0, g1, xb + len,
                               std::min(rect.x1, xb + 2 * len));

      // Pass 1: grid reconstruction — identical integer expressions to the
      // scalar compact kernel, so pass 2 reproduces it bit-for-bit.
      for (int i = 0; i < n; ++i) {
        const int x = xb + i;
        const int cx = x >> shift;
        const std::int64_t tx = x & smask;
        const std::int64_t lx =
            grid_x[g0 + cx] * (gs - ty) + grid_x[g1 + cx] * ty;
        const std::int64_t rx =
            grid_x[g0 + cx + 1] * (gs - ty) + grid_x[g1 + cx + 1] * ty;
        const std::int64_t ly =
            grid_y[g0 + cx] * (gs - ty) + grid_y[g1 + cx] * ty;
        const std::int64_t ry =
            grid_y[g0 + cx + 1] * (gs - ty) + grid_y[g1 + cx + 1] * ty;
        std::int32_t fx = static_cast<std::int32_t>(
            (lx * gs + tx * (rx - lx) + half) >> rshift);
        std::int32_t fy = static_cast<std::int32_t>(
            (ly * gs + tx * (ry - ly) + half) >> rshift);
        s.valid[i] = (fx > -one) & (fy > -one) & (fx < lim_x) & (fy < lim_y);
        fx = fx < 0 ? 0 : (fx > max_fx ? max_fx : fx);
        fy = fy < 0 ? 0 : (fy > max_fy ? max_fy : fy);
        const std::int32_t ix = fx >> frac;
        const std::int32_t iy = fy >> frac;
        s.x0[i] = ix;
        s.y0[i] = iy;
        s.x1[i] = ix + 1 < map.src_width ? ix + 1 : ix;
        s.y1[i] = iy + 1 < map.src_height ? iy + 1 : iy;
        s.ax[i] = ((fx & frac_mask) >> wshift) << wscale_up;  // 0..256
        s.ay[i] = ((fy & frac_mask) >> wshift) << wscale_up;
      }

      std::uint8_t* __restrict out =
          out_row + static_cast<std::size_t>(xb) * ch;
      blend_strip(s, n, src.data, pitch, total, ch, out, fill);
    }
  }
}

}  // namespace fisheye::simd
