// Explicit-intrinsics gather datapath (KernelVariant::SimdGather).
//
// The SoA kernels (remap_simd.hpp) leave pass 2 — the four taps per pixel —
// to scalar loads; the study's hand-SIMDized ports replaced exactly that
// with hardware gathers. These kernels keep the two-pass strip structure
// and vectorize pass 2 with AVX2 `_mm256_i32gather_epi32`: one dword gather
// per tap row fetches the (p0, p1) byte pair, and an 8.8 fixed-point weight
// blend produces eight output pixels per iteration.
//
// Contract vs the scalar kernels:
//  * packed / compact: bit-exact (identical integer expressions, the same
//    property the SoA compact kernel has);
//  * float LUT: within ±1 level of the scalar bilinear kernel on interior
//    samples — the 8.8 weight quantization error is < 1 output level and
//    both sides round half-up (tested property).
//
// Lanes whose 2x2 footprint is not contiguous (edge-clamped taps) or whose
// dword read would overrun the last padded row take a scalar fixup path;
// multi-channel frames run the integer blend scalar from the SoA scratch.
//
// The compact kernel additionally issues software prefetches for the NEXT
// strip's source rows, derived from the block-subsampled grid's coarse
// source bbox, so pass 2's gathers hit warm lines (docs/modeling.md).
//
// This translation unit is compiled with -mavx2 when the toolchain allows
// (src/simd/CMakeLists.txt); on other targets — or under
// -DFISHEYE_DISABLE_AVX2=ON — the same entry points fall back to the scalar
// pass-2 loop and gather_compiled() reports false. Callers do not need to
// care: kernel resolution (core/kernel.cpp) consults gather_available()
// and degrades SimdGather to SimdSoa/Scalar before these run.
#pragma once

#include <cstdint>

#include "core/mapping.hpp"
#include "image/image.hpp"
#include "parallel/partition.hpp"
#include "simd/remap_simd.hpp"

namespace fisheye::simd {

/// True when this library was compiled with the AVX2 gather path present
/// (the dedicated TU got -mavx2 and FISHEYE_DISABLE_AVX2 was off).
[[nodiscard]] bool gather_compiled() noexcept;

/// True when the gather datapath can run here and now: compiled in, the
/// executing CPU reports AVX2, and util::force_scalar() is not set.
/// Kernel resolution consults this to degrade SimdGather gracefully.
[[nodiscard]] bool gather_available() noexcept;

/// Bilinear remap of `rect` from a float WarpMap, constant-fill border,
/// AVX2 gather pass 2. Agreement with the scalar kernel is ±1 level on
/// interior samples (see header comment). `strip` pixels are staged per
/// scratch refill; 0 selects kSoaStrip, larger values are clamped to it.
void remap_bilinear_gather(img::ConstImageView<std::uint8_t> src,
                           img::ImageView<std::uint8_t> dst,
                           const core::WarpMap& map, par::Rect rect,
                           std::uint8_t fill, SoaScratch& scratch,
                           int strip = kSoaStrip);

/// Fixed-point PackedMap remap, AVX2 gather pass 2. Bit-exact against
/// core::remap_packed_rect (same integer arithmetic).
void remap_packed_gather(img::ConstImageView<std::uint8_t> src,
                         img::ImageView<std::uint8_t> dst,
                         const core::PackedMap& map, par::Rect rect,
                         std::uint8_t fill, SoaScratch& scratch,
                         int strip = kSoaStrip);

/// CompactMap remap, AVX2 gather pass 2 plus grid-driven software prefetch
/// of the next strip's source rows. Bit-exact against
/// core::remap_compact_rect (same integer arithmetic).
void remap_compact_gather(img::ConstImageView<std::uint8_t> src,
                          img::ImageView<std::uint8_t> dst,
                          const core::CompactMap& map, par::Rect rect,
                          std::uint8_t fill, SoaScratch& scratch,
                          int strip = kSoaStrip);

}  // namespace fisheye::simd
