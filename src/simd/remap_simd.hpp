// SIMD-oriented remap kernel.
//
// The scalar kernel interleaves address math, weight math and gathers per
// pixel — a long dependence chain the vector units cannot chew on. This
// kernel restructures the loop the way the study's hand-SIMDized versions
// did:
//   pass 1 (vectorizable): for a strip of output pixels, compute integer
//           tap coordinates, validity mask and the four bilinear weights
//           into contiguous SoA scratch arrays;
//   pass 2 (gather-bound): fetch the four taps per pixel and blend with the
//           precomputed weights.
// Pass 1 auto-vectorizes to AVX2/AVX-512 under -march=native; pass 2 is the
// irreducible gather cost. The F-series "simd" backend is this kernel run
// on the thread pool.
#pragma once

#include <cstdint>

#include "core/mapping.hpp"
#include "image/image.hpp"
#include "parallel/partition.hpp"

namespace fisheye::simd {

/// Bilinear remap of `rect` with constant-fill border. Bit-exact against
/// core::remap_rect with Interp::Bilinear + BorderMode::Constant is NOT
/// guaranteed (float rounding order differs); agreement within +-1 level is
/// (tested property).
void remap_bilinear_soa(img::ConstImageView<std::uint8_t> src,
                        img::ImageView<std::uint8_t> dst,
                        const core::WarpMap& map, par::Rect rect,
                        std::uint8_t fill);

/// Compact-map strip kernel, same two-pass scratch structure:
///   pass 1 (vectorizable): reconstruct each pixel's fixed-point source
///           coordinate from the stride grid, derive tap coordinates,
///           validity and the 0..256 integer weights into SoA scratch;
///   pass 2 (gather-bound): fetch taps and blend on the 8-bit integer
///           datapath.
/// Unlike the float kernel this one is bit-exact against its scalar
/// counterpart (core::remap_compact_rect): both run identical integer
/// arithmetic (tested property).
void remap_compact_soa(img::ConstImageView<std::uint8_t> src,
                       img::ImageView<std::uint8_t> dst,
                       const core::CompactMap& map, par::Rect rect,
                       std::uint8_t fill);

}  // namespace fisheye::simd
