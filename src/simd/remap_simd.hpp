// SIMD-oriented remap kernel.
//
// The scalar kernel interleaves address math, weight math and gathers per
// pixel — a long dependence chain the vector units cannot chew on. This
// kernel restructures the loop the way the study's hand-SIMDized versions
// did:
//   pass 1 (vectorizable): for a strip of output pixels, compute integer
//           tap coordinates, validity mask and the four bilinear weights
//           into contiguous SoA scratch arrays;
//   pass 2 (gather-bound): fetch the four taps per pixel and blend with the
//           precomputed weights.
// Pass 1 auto-vectorizes to AVX2/AVX-512 under -march=native; pass 2 is the
// irreducible gather cost. The F-series "simd" backend is this kernel run
// on the thread pool.
#pragma once

#include <cstdint>

#include "core/mapping.hpp"
#include "image/image.hpp"
#include "parallel/partition.hpp"

namespace fisheye::simd {

/// Strip length processed per scratch refill. Long enough to amortize the
/// two-pass split, short enough that the scratch arrays stay inside L1.
inline constexpr int kSoaStrip = 256;

/// SoA strip scratch shared by both kernels: one slot per strip pixel.
/// The float kernel fills x0/y0 + the float weights; the compact kernel
/// fills the clamped tap coordinates + the 0..256 integer weights. Sized
/// ~11 KB — callers running many lanes should allocate one per lane once
/// (the pooled SIMD backend keeps them in its plan's Workspace) rather
/// than burn stack per tile.
struct SoaScratch {
  alignas(64) std::int32_t x0[kSoaStrip];
  alignas(64) std::int32_t y0[kSoaStrip];
  alignas(64) std::int32_t x1[kSoaStrip];
  alignas(64) std::int32_t y1[kSoaStrip];
  alignas(64) float w00[kSoaStrip];
  alignas(64) float w10[kSoaStrip];
  alignas(64) float w01[kSoaStrip];
  alignas(64) float w11[kSoaStrip];
  alignas(64) std::int32_t ax[kSoaStrip];
  alignas(64) std::int32_t ay[kSoaStrip];
  alignas(64) std::int32_t valid[kSoaStrip];
};

/// Bilinear remap of `rect` with constant-fill border. Bit-exact against
/// core::remap_rect with Interp::Bilinear + BorderMode::Constant is NOT
/// guaranteed (float rounding order differs); agreement within +-1 level is
/// (tested property). The scratch overload reuses caller storage; `strip`
/// pixels are staged per scratch refill (0 selects kSoaStrip, larger
/// values are clamped to it — the plan-time autotuner probes this axis).
void remap_bilinear_soa(img::ConstImageView<std::uint8_t> src,
                        img::ImageView<std::uint8_t> dst,
                        const core::WarpMap& map, par::Rect rect,
                        std::uint8_t fill, SoaScratch& scratch,
                        int strip = kSoaStrip);

/// Compact-map strip kernel, same two-pass scratch structure:
///   pass 1 (vectorizable): reconstruct each pixel's fixed-point source
///           coordinate from the stride grid, derive tap coordinates,
///           validity and the 0..256 integer weights into SoA scratch;
///   pass 2 (gather-bound): fetch taps and blend on the 8-bit integer
///           datapath.
/// Unlike the float kernel this one is bit-exact against its scalar
/// counterpart (core::remap_compact_rect): both run identical integer
/// arithmetic (tested property).
void remap_compact_soa(img::ConstImageView<std::uint8_t> src,
                       img::ImageView<std::uint8_t> dst,
                       const core::CompactMap& map, par::Rect rect,
                       std::uint8_t fill, SoaScratch& scratch,
                       int strip = kSoaStrip);

}  // namespace fisheye::simd
