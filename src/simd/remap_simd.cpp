#include "simd/remap_simd.hpp"

#include <cmath>

#include "util/error.hpp"

namespace fisheye::simd {

namespace {

// Strip length processed per scratch refill. Long enough to amortize the
// two-pass split, short enough that scratch (10 arrays) stays inside L1.
constexpr int kStrip = 256;

struct Scratch {
  alignas(64) std::int32_t x0[kStrip];
  alignas(64) std::int32_t y0[kStrip];
  alignas(64) float w00[kStrip];
  alignas(64) float w10[kStrip];
  alignas(64) float w01[kStrip];
  alignas(64) float w11[kStrip];
  alignas(64) std::int32_t valid[kStrip];
};

inline std::uint8_t round_clamp_u8(float v) noexcept {
  const int r = static_cast<int>(v + 0.5f);
  return static_cast<std::uint8_t>(r < 0 ? 0 : (r > 255 ? 255 : r));
}

}  // namespace

void remap_bilinear_soa(img::ConstImageView<std::uint8_t> src,
                        img::ImageView<std::uint8_t> dst,
                        const core::WarpMap& map, par::Rect rect,
                        std::uint8_t fill) {
  FE_EXPECTS(src.channels == dst.channels);
  FE_EXPECTS(map.width == dst.width && map.height == dst.height);
  FE_EXPECTS(rect.x0 >= 0 && rect.y0 >= 0 && rect.x1 <= dst.width &&
             rect.y1 <= dst.height);

  Scratch s;
  const int ch = src.channels;
  const auto src_w = static_cast<float>(src.width);
  const auto src_h = static_cast<float>(src.height);
  const std::size_t pitch = src.pitch;

  for (int y = rect.y0; y < rect.y1; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * map.width;
    std::uint8_t* __restrict out_row = dst.row(y);

    for (int xb = rect.x0; xb < rect.x1; xb += kStrip) {
      const int n = std::min(kStrip, rect.x1 - xb);
      const float* __restrict mx = map.src_x.data() + row + xb;
      const float* __restrict my = map.src_y.data() + row + xb;

      // Pass 1: SoA coordinate/weight computation. Branch-free; the
      // interior test folds into a mask so the loop auto-vectorizes.
      for (int i = 0; i < n; ++i) {
        const float sx = mx[i];
        const float sy = my[i];
        const float fx = std::floor(sx);
        const float fy = std::floor(sy);
        const float ax = sx - fx;
        const float ay = sy - fy;
        s.x0[i] = static_cast<std::int32_t>(fx);
        s.y0[i] = static_cast<std::int32_t>(fy);
        s.w00[i] = (1.0f - ax) * (1.0f - ay);
        s.w10[i] = ax * (1.0f - ay);
        s.w01[i] = (1.0f - ax) * ay;
        s.w11[i] = ax * ay;
        // Interior-only fast validity: a 1-pixel frame falls back to fill,
        // an acceptable trade the hand-SIMDized kernels of the era made
        // (the image circle never touches the frame for real maps).
        s.valid[i] =
            (fx >= 0.0f) & (fy >= 0.0f) & (fx < src_w - 1.0f) &
            (fy < src_h - 1.0f);
      }

      // Pass 2: gather + blend.
      std::uint8_t* __restrict out = out_row + static_cast<std::size_t>(xb) * ch;
      if (ch == 1) {
        for (int i = 0; i < n; ++i) {
          if (!s.valid[i]) {
            out[i] = fill;
            continue;
          }
          const std::uint8_t* __restrict p =
              src.data + static_cast<std::size_t>(s.y0[i]) * pitch + s.x0[i];
          const float v = s.w00[i] * p[0] + s.w10[i] * p[1] +
                          s.w01[i] * p[pitch] + s.w11[i] * p[pitch + 1];
          out[i] = round_clamp_u8(v);
        }
      } else {
        for (int i = 0; i < n; ++i) {
          std::uint8_t* __restrict o = out + static_cast<std::size_t>(i) * ch;
          if (!s.valid[i]) {
            for (int c = 0; c < ch; ++c) o[c] = fill;
            continue;
          }
          const std::uint8_t* __restrict p =
              src.data + static_cast<std::size_t>(s.y0[i]) * pitch +
              static_cast<std::size_t>(s.x0[i]) * ch;
          for (int c = 0; c < ch; ++c) {
            const float v = s.w00[i] * p[c] + s.w10[i] * p[ch + c] +
                            s.w01[i] * p[pitch + c] +
                            s.w11[i] * p[pitch + ch + c];
            o[c] = round_clamp_u8(v);
          }
        }
      }
    }
  }
}

}  // namespace fisheye::simd
