#include "simd/remap_simd.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fisheye::simd {

namespace {

inline std::uint8_t round_clamp_u8(float v) noexcept {
  const int r = static_cast<int>(v + 0.5f);
  return static_cast<std::uint8_t>(r < 0 ? 0 : (r > 255 ? 255 : r));
}

/// Clamp a requested strip length into what the scratch arrays can hold.
inline int clamp_strip(int strip) noexcept {
  if (strip <= 0) return kSoaStrip;
  return std::clamp(strip, 8, kSoaStrip);
}

}  // namespace

void remap_bilinear_soa(img::ConstImageView<std::uint8_t> src,
                        img::ImageView<std::uint8_t> dst,
                        const core::WarpMap& map, par::Rect rect,
                        std::uint8_t fill, SoaScratch& scratch, int strip) {
  FE_EXPECTS(src.channels == dst.channels);
  FE_EXPECTS(map.width == dst.width && map.height == dst.height);
  FE_EXPECTS(rect.x0 >= 0 && rect.y0 >= 0 && rect.x1 <= dst.width &&
             rect.y1 <= dst.height);

  SoaScratch& s = scratch;
  const int len = clamp_strip(strip);
  const int ch = src.channels;
  const auto src_w = static_cast<float>(src.width);
  const auto src_h = static_cast<float>(src.height);
  const std::size_t pitch = src.pitch;

  for (int y = rect.y0; y < rect.y1; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * map.width;
    std::uint8_t* __restrict out_row = dst.row(y);

    for (int xb = rect.x0; xb < rect.x1; xb += len) {
      const int n = std::min(len, rect.x1 - xb);
      const float* __restrict mx = map.src_x.data() + row + xb;
      const float* __restrict my = map.src_y.data() + row + xb;

      // Pass 1: SoA coordinate/weight computation. Branch-free; the
      // interior test folds into a mask so the loop auto-vectorizes.
      for (int i = 0; i < n; ++i) {
        const float sx = mx[i];
        const float sy = my[i];
        const float fx = std::floor(sx);
        const float fy = std::floor(sy);
        const float ax = sx - fx;
        const float ay = sy - fy;
        s.x0[i] = static_cast<std::int32_t>(fx);
        s.y0[i] = static_cast<std::int32_t>(fy);
        s.w00[i] = (1.0f - ax) * (1.0f - ay);
        s.w10[i] = ax * (1.0f - ay);
        s.w01[i] = (1.0f - ax) * ay;
        s.w11[i] = ax * ay;
        // Interior-only fast validity: a 1-pixel frame falls back to fill,
        // an acceptable trade the hand-SIMDized kernels of the era made
        // (the image circle never touches the frame for real maps).
        s.valid[i] =
            (fx >= 0.0f) & (fy >= 0.0f) & (fx < src_w - 1.0f) &
            (fy < src_h - 1.0f);
      }

      // Pass 2: gather + blend.
      std::uint8_t* __restrict out = out_row + static_cast<std::size_t>(xb) * ch;
      if (ch == 1) {
        for (int i = 0; i < n; ++i) {
          if (!s.valid[i]) {
            out[i] = fill;
            continue;
          }
          const std::uint8_t* __restrict p =
              src.data + static_cast<std::size_t>(s.y0[i]) * pitch + s.x0[i];
          const float v = s.w00[i] * p[0] + s.w10[i] * p[1] +
                          s.w01[i] * p[pitch] + s.w11[i] * p[pitch + 1];
          out[i] = round_clamp_u8(v);
        }
      } else {
        for (int i = 0; i < n; ++i) {
          std::uint8_t* __restrict o = out + static_cast<std::size_t>(i) * ch;
          if (!s.valid[i]) {
            for (int c = 0; c < ch; ++c) o[c] = fill;
            continue;
          }
          const std::uint8_t* __restrict p =
              src.data + static_cast<std::size_t>(s.y0[i]) * pitch +
              static_cast<std::size_t>(s.x0[i]) * ch;
          for (int c = 0; c < ch; ++c) {
            const float v = s.w00[i] * p[c] + s.w10[i] * p[ch + c] +
                            s.w01[i] * p[pitch + c] +
                            s.w11[i] * p[pitch + ch + c];
            o[c] = round_clamp_u8(v);
          }
        }
      }
    }
  }
}

void remap_compact_soa(img::ConstImageView<std::uint8_t> src,
                       img::ImageView<std::uint8_t> dst,
                       const core::CompactMap& map, par::Rect rect,
                       std::uint8_t fill, SoaScratch& scratch, int strip) {
  FE_EXPECTS(src.channels == dst.channels);
  FE_EXPECTS(map.width == dst.width && map.height == dst.height);
  FE_EXPECTS(src.width == map.src_width && src.height == map.src_height);
  FE_EXPECTS(rect.x0 >= 0 && rect.y0 >= 0 && rect.x1 <= dst.width &&
             rect.y1 <= dst.height);

  SoaScratch& s = scratch;
  const int len = clamp_strip(strip);
  const int ch = src.channels;
  const std::size_t pitch = src.pitch;

  const int frac = map.frac_bits;
  const int wshift = frac >= 8 ? frac - 8 : 0;
  const int wscale_up = frac >= 8 ? 0 : 8 - frac;
  const std::int32_t frac_mask = (std::int32_t{1} << frac) - 1;
  const int shift = map.shift();
  const int smask = map.stride - 1;
  const std::int64_t gs = map.stride;
  const int rshift = 2 * shift;
  const std::int64_t half =
      rshift > 0 ? (std::int64_t{1} << (rshift - 1)) : 0;
  const std::int32_t one = std::int32_t{1} << frac;
  const std::int32_t lim_x = static_cast<std::int32_t>(map.src_width) << frac;
  const std::int32_t lim_y = static_cast<std::int32_t>(map.src_height) << frac;
  const std::int32_t max_fx = lim_x - one;
  const std::int32_t max_fy = lim_y - one;

  const std::int32_t* __restrict grid_x = map.gx.data();
  const std::int32_t* __restrict grid_y = map.gy.data();

  for (int y = rect.y0; y < rect.y1; ++y) {
    const std::int64_t ty = y & smask;
    const std::size_t g0 = static_cast<std::size_t>(y >> shift) * map.grid_w;
    const std::size_t g1 = g0 + map.grid_w;
    std::uint8_t* __restrict out_row = dst.row(y);

    for (int xb = rect.x0; xb < rect.x1; xb += len) {
      const int n = std::min(len, rect.x1 - xb);

      // Pass 1: reconstruct + tap/weight computation, SoA. Same integer
      // expressions as the scalar kernel, so outputs match bit-for-bit.
      for (int i = 0; i < n; ++i) {
        const int x = xb + i;
        const int cx = x >> shift;
        const std::int64_t tx = x & smask;
        const std::int64_t lx =
            grid_x[g0 + cx] * (gs - ty) + grid_x[g1 + cx] * ty;
        const std::int64_t rx =
            grid_x[g0 + cx + 1] * (gs - ty) + grid_x[g1 + cx + 1] * ty;
        const std::int64_t ly =
            grid_y[g0 + cx] * (gs - ty) + grid_y[g1 + cx] * ty;
        const std::int64_t ry =
            grid_y[g0 + cx + 1] * (gs - ty) + grid_y[g1 + cx + 1] * ty;
        std::int32_t fx = static_cast<std::int32_t>(
            (lx * gs + tx * (rx - lx) + half) >> rshift);
        std::int32_t fy = static_cast<std::int32_t>(
            (ly * gs + tx * (ry - ly) + half) >> rshift);
        s.valid[i] = (fx > -one) & (fy > -one) & (fx < lim_x) & (fy < lim_y);
        fx = fx < 0 ? 0 : (fx > max_fx ? max_fx : fx);
        fy = fy < 0 ? 0 : (fy > max_fy ? max_fy : fy);
        const std::int32_t ix = fx >> frac;
        const std::int32_t iy = fy >> frac;
        s.x0[i] = ix;
        s.y0[i] = iy;
        s.x1[i] = ix + 1 < map.src_width ? ix + 1 : ix;
        s.y1[i] = iy + 1 < map.src_height ? iy + 1 : iy;
        s.ax[i] = ((fx & frac_mask) >> wshift) << wscale_up;  // 0..256
        s.ay[i] = ((fy & frac_mask) >> wshift) << wscale_up;
      }

      // Pass 2: gather + integer blend.
      std::uint8_t* __restrict out =
          out_row + static_cast<std::size_t>(xb) * ch;
      for (int i = 0; i < n; ++i) {
        std::uint8_t* __restrict o = out + static_cast<std::size_t>(i) * ch;
        if (!s.valid[i]) {
          for (int c = 0; c < ch; ++c) o[c] = fill;
          continue;
        }
        const std::uint8_t* __restrict r0 =
            src.data + static_cast<std::size_t>(s.y0[i]) * pitch;
        const std::uint8_t* __restrict r1 =
            src.data + static_cast<std::size_t>(s.y1[i]) * pitch;
        const int lx0 = s.x0[i] * ch;
        const int lx1 = s.x1[i] * ch;
        const int w00 = (256 - s.ax[i]) * (256 - s.ay[i]);
        const int w10 = s.ax[i] * (256 - s.ay[i]);
        const int w01 = (256 - s.ax[i]) * s.ay[i];
        const int w11 = s.ax[i] * s.ay[i];
        for (int c = 0; c < ch; ++c) {
          const int v = w00 * r0[lx0 + c] + w10 * r0[lx1 + c] +
                        w01 * r1[lx0 + c] + w11 * r1[lx1 + c];
          o[c] = static_cast<std::uint8_t>((v + (1 << 15)) >> 16);
        }
      }
    }
  }
}

}  // namespace fisheye::simd
