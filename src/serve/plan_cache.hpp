// PlanCache: per-view execution plans for the serving layer.
//
// A cached view is everything the steady state needs to correct one
// coalesced PTZ region: the windowed warp map (built straight from the
// camera math, bit-exact vs the corresponding crop of the full level map),
// its packed/compact conversion when the server runs those representations,
// a service ExecutionPlan (Morton-ordered tiles, workspace arena, resolved
// kernel, instrumentation slots), and the shared output buffer client crops
// are copied from. Building an entry is the expensive miss — per-pixel
// trigonometry for the map, plan construction, output allocation; a hit is
// a hash lookup plus an intrusive LRU splice, and from there the frame
// reaches steady-state correction with zero allocations.
//
// Keying: (calibration generation, level, quantized view rect). The
// backend spec is fixed per server, so it lives outside the key — lookups
// stay allocation-free POD compares. Eviction is LRU under a byte budget;
// entries pinned by the in-flight frame are never evicted (their plan and
// output are being written by workers).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "core/corrector.hpp"
#include "image/image.hpp"

namespace fisheye::serve {

/// Cache identity of one coalesced view region.
struct ViewKey {
  std::uint64_t generation = 0;  ///< server calibration generation
  int level = 0;                 ///< zoom level index
  par::Rect rect;                ///< quantized region, level output space
  bool operator==(const ViewKey&) const noexcept = default;
};

/// POD field mix (FNV-1a over the packed fields); no allocation.
struct ViewKeyHash {
  std::size_t operator()(const ViewKey& k) const noexcept {
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) noexcept {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(k.generation);
    mix(static_cast<std::uint32_t>(k.level));
    mix((static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.rect.x0))
         << 32) |
        static_cast<std::uint32_t>(k.rect.y0));
    mix((static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.rect.x1))
         << 32) |
        static_cast<std::uint32_t>(k.rect.y1));
    return static_cast<std::size_t>(h);
  }
};

/// One cached view (see header comment). The maps live here so the
/// resolved kernel's bound pointers stay valid for the entry's lifetime;
/// `out` carries one-stride right/bottom padding in compact mode (the plan
/// tiles cover only [0,width)x[0,height) — see build_cached_view).
struct CachedView {
  ViewKey key;
  core::WarpMap map;
  std::optional<core::PackedMap> packed;
  std::optional<core::CompactMap> compact;
  core::ExecutionPlan plan;
  img::Image<std::uint8_t> out;
  int width = 0;   ///< served (unpadded) region width
  int height = 0;  ///< served (unpadded) region height
  std::size_t bytes = 0;          ///< accounted footprint
  std::uint64_t pinned_frame = 0; ///< frame id currently executing the entry
  CachedView* lru_prev = nullptr;
  CachedView* lru_next = nullptr;
};

/// Geometry + conversion parameters for building entries; fixed per server.
struct ViewBuildContext {
  const core::FisheyeCamera* camera = nullptr;
  const core::ViewProjection* view = nullptr;  ///< the key's level view
  int src_width = 0;
  int src_height = 0;
  int channels = 1;
  core::RemapOptions remap;
  core::MapMode mode = core::MapMode::FloatLut;
  int compact_stride = 8;
  int frac_bits = 14;
  int tile_w = 32;
  int tile_h = 32;
};

/// Canonical PlanKey backend name of serving-layer plans.
inline constexpr const char* kServePlanName = "serve";

/// Build the entry for `key` under `build`: windowed map (padded one
/// stride right/bottom in compact mode so every grid line the kernel reads
/// is sampled, not extrapolated), representation conversion, service plan
/// and output buffer. The quantized rect origin must be stride-aligned in
/// compact mode (the server's quantum enforces it) — that alignment is
/// what makes the windowed compact grid coincide with the full level
/// grid, keeping served crops bit-exact vs a standalone correction.
[[nodiscard]] std::unique_ptr<CachedView> build_cached_view(
    const ViewBuildContext& build, const ViewKey& key);

/// LRU + byte-budget cache of CachedViews. Single-writer: the server's
/// one-dispatch-at-a-time invariant serializes all access, so the cache
/// itself takes no lock.
class PlanCache {
 public:
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t bytes = 0;
    std::size_t entries = 0;
  };

  explicit PlanCache(std::size_t byte_budget) : budget_(byte_budget) {}

  /// The entry for `key`, bumped to LRU front and pinned to `frame`; null
  /// (a counted miss) when absent. Allocation-free.
  [[nodiscard]] CachedView* find(const ViewKey& key, std::uint64_t frame);

  /// Insert a freshly built entry (the resolution of a find() miss),
  /// pinned to `frame`; evicts unpinned LRU-tail entries over budget. The
  /// new entry itself always survives, even over budget — it is about to
  /// execute.
  CachedView& insert(std::unique_ptr<CachedView> entry, std::uint64_t frame);

  /// Evict over-budget LRU-tail entries, skipping those pinned to
  /// `active_frame` (0 = nothing pinned; the server trims on frame
  /// completion, which is what makes cache_budget=0 the cold-plan mode).
  void trim(std::uint64_t active_frame);

  /// Drop everything (recalibration); counted as evictions.
  void flush();

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t budget() const noexcept { return budget_; }

 private:
  void unlink_(CachedView* e) noexcept;
  void push_front_(CachedView* e) noexcept;

  std::size_t budget_;
  std::unordered_map<ViewKey, std::unique_ptr<CachedView>, ViewKeyHash> map_;
  CachedView* head_ = nullptr;  ///< most recently used
  CachedView* tail_ = nullptr;  ///< eviction end
  Stats stats_;
};

}  // namespace fisheye::serve
