// View coalescing for the virtual-PTZ serving layer.
//
// Per source frame, N clients request overlapping pan/tilt/zoom rects of
// the same corrected view pyramid. Running the windowed kernels once per
// request wastes work exactly where traffic concentrates — popular views
// are by definition requested many times. The coalescer groups a frame's
// quantized view rects into clusters: exact duplicates collapse outright,
// and overlapping rects merge while the union bounding box costs no more
// pixels than executing the parts separately — so a merge never increases
// kernel work, and every member crop is served from the shared cluster
// output.
#pragma once

#include <cstdint>
#include <vector>

#include "parallel/partition.hpp"

namespace fisheye::serve {

/// One client view as the coalescer sees it: zoom level + the rect already
/// quantized by the server (origin aligned down, extent up), so identical
/// nearby views become identical rects.
struct QuantizedView {
  int level = 0;
  par::Rect rect;
};

/// A coalesced execution region: the union of its member views' quantized
/// rects (still quantum-aligned — a union of aligned rects is aligned).
/// Members are request indices `members()[first .. first + count)`.
struct ViewCluster {
  int level = 0;
  par::Rect bounds;
  std::uint32_t first = 0;
  std::uint32_t count = 0;
};

/// Groups one frame's views into clusters. All storage is reused across
/// frames: once capacities are warm, coalesce() allocates nothing — it sits
/// on the serving hot path.
class Coalescer {
 public:
  /// Cluster `views` (request index = position). When `enabled`, duplicates
  /// share a cluster and overlapping same-level rects merge under the
  /// union-area guard; when disabled every request is its own cluster (the
  /// bench's uncoalesced baseline).
  void coalesce(const std::vector<QuantizedView>& views, bool enabled);

  [[nodiscard]] const std::vector<ViewCluster>& clusters() const noexcept {
    return clusters_;
  }
  /// Request indices grouped by cluster (see ViewCluster::first/count).
  [[nodiscard]] const std::vector<std::uint32_t>& members() const noexcept {
    return members_;
  }

 private:
  std::vector<std::uint32_t> order_;       ///< request indices, sort scratch
  std::vector<std::uint32_t> cluster_of_;  ///< request -> pass-1 cluster
  std::vector<std::uint32_t> alias_;       ///< pass-1 cluster -> merged root
  std::vector<std::uint32_t> remap_;       ///< pass-1 cluster -> final index
  std::vector<ViewCluster> scratch_;       ///< pass-1 clusters
  std::vector<ViewCluster> clusters_;
  std::vector<std::uint32_t> members_;
};

}  // namespace fisheye::serve
