#include "serve/server.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>

#include "core/backend_registry.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"

namespace fisheye::serve {

namespace {

[[nodiscard]] bool is_pow2(long long v) noexcept {
  return v > 0 && (v & (v - 1)) == 0;
}

/// Parse "<digits>[K|M|G]" (case-insensitive suffix) into bytes.
[[nodiscard]] std::size_t parse_bytes(const core::BackendSpec& spec,
                                      const std::string& key,
                                      const std::string& text) {
  std::size_t digits = 0;
  while (digits < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[digits])) != 0)
    ++digits;
  std::size_t shift = 0;
  if (digits == text.size() - 1) {
    switch (std::tolower(static_cast<unsigned char>(text.back()))) {
      case 'k': shift = 10; break;
      case 'm': shift = 20; break;
      case 'g': shift = 30; break;
      default: digits = 0; break;  // unknown suffix -> malformed
    }
  } else if (digits != text.size()) {
    digits = 0;
  }
  if (digits == 0 || text.empty())
    throw InvalidArgument("spec '" + spec.text() + "': option '" + key + "=" +
                          text + "' is not <bytes>[K|M|G]");
  long long v = 0;
  for (std::size_t i = 0; i < digits; ++i) {
    v = v * 10 + (text[i] - '0');
    if (v > (std::int64_t{1} << 40))
      throw InvalidArgument("spec '" + spec.text() + "': option '" + key +
                            "=" + text + "' is out of range");
  }
  core::require_spec_range(spec, key, v << shift, 0, std::int64_t{1} << 40);
  return static_cast<std::size_t>(v) << shift;
}

}  // namespace

ServeOptions ServeOptions::parse(const std::string& spec_text) {
  core::BackendSpec spec = core::BackendSpec::parse(spec_text);
  if (spec.kind() != "serve")
    throw InvalidArgument("serve spec '" + spec_text +
                          "': kind must be 'serve'");
  ServeOptions o;
  o.lanes = spec.value_int("lanes", o.lanes);
  core::require_spec_range(spec, "lanes", o.lanes, 1, 64);
  o.queue_depth = static_cast<std::size_t>(
      spec.value_int("queue_depth", static_cast<int>(o.queue_depth)));
  core::require_spec_range(spec, "queue_depth",
                           static_cast<long long>(o.queue_depth), 1, 64);
  o.max_pending = static_cast<std::size_t>(
      spec.value_int("pending", static_cast<int>(o.max_pending)));
  core::require_spec_range(spec, "pending",
                           static_cast<long long>(o.max_pending), 1, 1 << 20);
  if (const auto budget = spec.value("cache_budget"))
    o.cache_budget = parse_bytes(spec, "cache_budget", *budget);
  o.quantum = spec.value_int("quantum", o.quantum);
  core::require_spec_range(spec, "quantum", o.quantum, 1, 256);
  if (!is_pow2(o.quantum))
    throw InvalidArgument("spec '" + spec.text() + "': option 'quantum=" +
                          std::to_string(o.quantum) +
                          "' must be a power of two");
  if (const auto c = spec.value("coalesce")) {
    if (*c == "on")
      o.coalesce = true;
    else if (*c == "off")
      o.coalesce = false;
    else
      throw InvalidArgument("spec '" + spec.text() + "': option 'coalesce=" +
                            *c + "' must be on|off");
  }
  if (const auto m = spec.value("map")) {
    const core::MapChoice choice = core::MapChoice::parse(*m);
    o.map_mode = *choice.mode;
    o.compact_stride = choice.stride;
  }
  o.frac_bits = spec.value_int("frac", o.frac_bits);
  core::require_spec_range(spec, "frac", o.frac_bits, 1, 22);
  const auto [tw, th] = spec.value_dims("tile", o.tile_w, o.tile_h);
  o.tile_w = tw;
  o.tile_h = th;
  core::require_spec_range(spec, "tile", o.tile_w, 8, 512);
  core::require_spec_range(spec, "tile", o.tile_h, 8, 512);
  if (o.map_mode == core::MapMode::CompactLut &&
      o.quantum % o.compact_stride != 0)
    throw InvalidArgument(
        "spec '" + spec.text() + "': option 'quantum=" +
        std::to_string(o.quantum) +
        "' must be a multiple of the compact stride " +
        std::to_string(o.compact_stride) +
        " (windowed grids must stay aligned with the level grid)");
  spec.finish(
      "lanes=<n>, queue_depth=<n>, pending=<n>, cache_budget=<bytes[K|M|G]>, "
      "quantum=<pow2>, coalesce=on|off, map=float|packed|compact:<stride>, "
      "frac=<bits>, tile=<WxH>");
  return o;
}

std::string ServeOptions::spec() const {
  core::SpecBuilder b("serve");
  b.opt("lanes", lanes);
  b.opt("queue_depth", queue_depth);
  b.opt("pending", max_pending);
  b.opt("cache_budget", cache_budget);
  b.opt("quantum", quantum);
  b.opt("coalesce", coalesce ? "on" : "off");
  core::MapChoice map;
  map.mode = map_mode;
  map.stride = compact_stride;
  b.opt(map.spec_text());
  b.opt("frac", frac_bits);
  b.opt("tile",
        std::to_string(tile_w) + "x" + std::to_string(tile_h));
  return b.str();
}

Server::Server(ServerConfig config, ServeOptions options,
               par::ThreadPool& pool)
    : config_(std::move(config)), options_(options), cache_(options.cache_budget) {
  FE_EXPECTS(config_.src_width > 0 && config_.src_height > 0);
  // Field-of-view resolution mirrors CorrectorConfig: an explicit fov_rad
  // overrides the lens spec, otherwise the spec's fov governs.
  if (config_.fov_rad == 0.0) {
    config_.fov_rad = config_.lens.fov_rad();
  } else {
    config_.lens.fov_deg = util::rad_to_deg(config_.fov_rad);
  }
  FE_EXPECTS(config_.fov_rad > 0.0);
  FE_EXPECTS(config_.channels >= 1);
  if (config_.levels.empty())
    throw InvalidArgument("serve::Server: at least one zoom level required");
  if (options_.map_mode != core::MapMode::FloatLut &&
      config_.remap.interp != core::Interp::Bilinear)
    throw InvalidArgument(
        "serve::Server: packed/compact maps require bilinear interpolation");

  camera_ = std::make_unique<core::FisheyeCamera>(core::FisheyeCamera::centered(
      config_.lens, config_.src_width, config_.src_height));
  for (LevelSpec& level : config_.levels) {
    if (level.width <= 0 || level.height <= 0)
      throw InvalidArgument("serve::Server: level dims must be positive");
    if (level.focal == 0.0) level.focal = camera_->lens().dradius_dtheta(0.0);
    level_views_.push_back(std::make_unique<core::PerspectiveView>(
        level.width, level.height, level.focal));
  }

  // Slot count: one open (accumulating), one active, queue_depth parked.
  slots_.resize(options_.queue_depth + 2);
  for (FrameSlot& s : slots_) {
    s.requests.reserve(options_.max_pending);
    s.views.reserve(options_.max_pending);
  }
  slots_[open_].state = SlotState::Open;
  cluster_entries_.reserve(options_.max_pending);

  // The lanes' frame rings are sized to the per-frame request bound: even
  // if every cluster of a frame hashes to one lane, submits from the
  // dispatch path never block inside a worker's retire callback.
  stream::StreamExecutorOptions exec_opts;
  exec_opts.max_streams = static_cast<std::size_t>(options_.lanes);
  lanes_.resize(static_cast<std::size_t>(options_.lanes));
  exec_ = std::make_unique<stream::StreamExecutor>(pool, exec_opts);
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    lanes_[i].fifo.reserve(options_.max_pending);
    lanes_[i].id = exec_->add_plan_stream(
        [this, i](stream::StreamId, std::uint64_t, double) {
          on_lane_retire_(i);
        },
        options_.max_pending);
  }
}

Server::~Server() {
  // exec_ (declared last) is destroyed first and waits for in-flight
  // frames; everything its retire callbacks touch is still alive then.
}

par::Rect Server::quantize_(par::Rect r) const noexcept {
  const int q = options_.quantum;
  return {(r.x0 / q) * q, (r.y0 / q) * q, ((r.x1 + q - 1) / q) * q,
          ((r.y1 + q - 1) / q) * q};
}

std::size_t Server::tile_count_(par::Rect r) const noexcept {
  const auto div_up = [](int v, int d) { return (v + d - 1) / d; };
  return static_cast<std::size_t>(div_up(r.width(), options_.tile_w)) *
         static_cast<std::size_t>(div_up(r.height(), options_.tile_h));
}

std::uint64_t Server::request(int level, par::Rect rect,
                              img::ImageView<std::uint8_t> dst,
                              std::uint64_t tag) {
  if (level < 0 || level >= static_cast<int>(config_.levels.size()))
    throw InvalidArgument("serve::Server: unknown level " +
                          std::to_string(level));
  const LevelSpec& spec = config_.levels[static_cast<std::size_t>(level)];
  if (rect.empty() || rect.x0 < 0 || rect.y0 < 0 || rect.x1 > spec.width ||
      rect.y1 > spec.height)
    throw InvalidArgument("serve::Server: view rect outside level " +
                          std::to_string(level) + " (" +
                          std::to_string(spec.width) + "x" +
                          std::to_string(spec.height) + ")");
  if (dst.width != rect.width() || dst.height != rect.height() ||
      dst.channels != config_.channels)
    throw InvalidArgument(
        "serve::Server: dst must be rect-sized with the server's channels");

  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    return slots_[open_].requests.size() < options_.max_pending;
  });
  FrameSlot& slot = slots_[open_];
  Request r;
  r.level = level;
  r.rect = rect;
  r.qrect = quantize_(rect);
  r.dst = dst;
  r.seq = ++req_seq_;
  r.tag = tag;
  r.submit_time = epoch_.elapsed_seconds();
  slot.requests.push_back(r);
  slot.views.push_back({level, r.qrect});
  ++stats_.requests;
  return r.seq;
}

std::uint64_t Server::submit_frame(img::ConstImageView<std::uint8_t> src) {
  FE_EXPECTS(src.width == config_.src_width &&
             src.height == config_.src_height &&
             src.channels == config_.channels);
  std::unique_lock<std::mutex> lock(mu_);
  const std::size_t submitted = open_;
  FrameSlot& slot = slots_[submitted];
  slot.src = src;
  slot.frame_id = ++frame_seq_;
  const std::uint64_t fid = slot.frame_id;
  // Claim the dispatcher role NOW, before the free-slot wait drops the
  // lock: if the frame merely went Queued, a worker's complete_frame_
  // could dispatch AND complete it during that wait, and a post-wait
  // `!active_` check would dispatch the same slot a second time.
  const bool start = !active_;
  if (start) {
    active_ = true;
    active_slot_ = submitted;
    slot.state = SlotState::Active;
  } else {
    slot.state = SlotState::Queued;
  }
  // Reopen: wait for a free slot to accumulate the next frame's requests
  // (backpressure — all slots busy means queue_depth frames are parked).
  cv_.wait(lock, [this] {
    return std::any_of(slots_.begin(), slots_.end(), [](const FrameSlot& s) {
      return s.state == SlotState::Free;
    });
  });
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].state == SlotState::Free) {
      slots_[i].state = SlotState::Open;
      open_ = i;
      break;
    }
  }
  cv_.notify_all();  // request() waiters now see the fresh open slot
  lock.unlock();
  if (start) dispatch_(submitted);
  return fid;
}

void Server::dispatch_(std::size_t slot_index) {
  FrameSlot& slot = slots_[slot_index];
  const std::uint64_t fid = slot.frame_id;

  coalescer_.coalesce(slot.views, options_.coalesce);
  const std::vector<ViewCluster>& clusters = coalescer_.clusters();

  // Resolve every cluster through the cache before any submit: misses
  // build maps/plans (slow), and eviction during the builds must see the
  // frame's pins on every entry it already resolved.
  cluster_entries_.clear();
  std::size_t hits = 0;
  std::size_t tiles_exec = 0;
  std::size_t tiles_indep = 0;
  for (const ViewCluster& cl : clusters) {
    const ViewKey key{generation_, cl.level, cl.bounds};
    CachedView* e = cache_.find(key, fid);
    if (e == nullptr) {
      ViewBuildContext build;
      build.camera = camera_.get();
      build.view = level_views_[static_cast<std::size_t>(cl.level)].get();
      build.src_width = config_.src_width;
      build.src_height = config_.src_height;
      build.channels = config_.channels;
      build.remap = config_.remap;
      build.mode = options_.map_mode;
      build.compact_stride = options_.compact_stride;
      build.frac_bits = options_.frac_bits;
      build.tile_w = options_.tile_w;
      build.tile_h = options_.tile_h;
      e = &cache_.insert(build_cached_view(build, key), fid);
    } else {
      ++hits;
    }
    cluster_entries_.push_back(e);
    tiles_exec += e->plan.tiles().size();
  }
  for (const QuantizedView& v : slot.views) tiles_indep += tile_count_(v.rect);

  {
    const std::scoped_lock lock(mu_);
    ++stats_.frames;
    stats_.clusters += clusters.size();
    stats_.tiles_executed += tiles_exec;
    stats_.tiles_requested += tiles_indep;
    (void)hits;  // hit/miss/eviction counts come from cache_.stats()
  }

  if (clusters.empty()) {
    complete_frame_();
    return;
  }

  // Fill every lane fifo BEFORE the first submit: retire callbacks start
  // firing the moment a cluster is in, and they read the fifos.
  for (Lane& lane : lanes_) {
    lane.fifo.clear();
    lane.head = 0;
  }
  remaining_clusters_.store(clusters.size(), std::memory_order_relaxed);
  for (std::uint32_t c = 0; c < clusters.size(); ++c) {
    // Coalesced frames round-robin (distinct clusters, any lane works);
    // uncoalesced frames key-hash so duplicate views — same cached plan —
    // serialize on one lane and never execute concurrently.
    const std::size_t lane_index =
        options_.coalesce
            ? c % lanes_.size()
            : ViewKeyHash{}(cluster_entries_[c]->key) % lanes_.size();
    lanes_[lane_index].fifo.push_back(c);
  }
  for (Lane& lane : lanes_) {
    for (const std::uint32_t c : lane.fifo) {
      CachedView* e = cluster_entries_[c];
      exec_->submit(lane.id, e->plan, slot.src, e->out.view());
    }
  }
}

void Server::on_lane_retire_(std::size_t lane_index) {
  Lane& lane = lanes_[lane_index];
  const std::uint32_t c = lane.fifo[lane.head++];
  const FrameSlot& slot = slots_[active_slot_];
  const ViewCluster& cl = coalescer_.clusters()[c];
  const CachedView& e = *cluster_entries_[c];
  const std::vector<std::uint32_t>& members = coalescer_.members();

  const img::ConstImageView<std::uint8_t> out = e.out.cview();
  const int ch = config_.channels;
  double lat_sum = 0.0;
  double lat_max = 0.0;
  for (std::uint32_t m = cl.first; m < cl.first + cl.count; ++m) {
    const Request& r = slot.requests[members[m]];
    const int ox = r.rect.x0 - cl.bounds.x0;
    const int oy = r.rect.y0 - cl.bounds.y0;
    const std::size_t row_bytes =
        static_cast<std::size_t>(r.rect.width()) * ch;
    for (int y = 0; y < r.rect.height(); ++y)
      std::memcpy(r.dst.row(y),
                  out.row(oy + y) + static_cast<std::size_t>(ox) * ch,
                  row_bytes);
    const double lat = epoch_.elapsed_seconds() - r.submit_time;
    lat_sum += lat;
    lat_max = std::max(lat_max, lat);
    if (retire_) retire_(r.seq, r.tag, lat);
  }
  {
    const std::scoped_lock lock(retire_mu_);
    retired_ += cl.count;
    total_latency_ += lat_sum;
    max_latency_ = std::max(max_latency_, lat_max);
  }
  if (remaining_clusters_.fetch_sub(1, std::memory_order_acq_rel) == 1)
    complete_frame_();
}

void Server::complete_frame_() {
  // No entry is executing now; release pins and enforce the byte budget
  // (with cache_budget=0 this is what makes every frame a cold plan).
  cache_.trim(0);

  std::unique_lock<std::mutex> lock(mu_);
  FrameSlot& done = slots_[active_slot_];
  done.requests.clear();
  done.views.clear();
  done.state = SlotState::Free;
  // Snapshot cache counters under mu_: stats() never touches cache_, which
  // only the (unsynchronized) dispatcher chain mutates.
  const PlanCache::Stats& cs = cache_.stats();
  stats_.plan_hits = cs.hits;
  stats_.plan_misses = cs.misses;
  stats_.plan_evictions = cs.evictions;
  stats_.cache_bytes = cs.bytes;
  stats_.cache_entries = cs.entries;

  // Oldest queued frame dispatches next, on this (worker) thread.
  std::size_t next = slots_.size();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].state != SlotState::Queued) continue;
    if (next == slots_.size() ||
        slots_[i].frame_id < slots_[next].frame_id)
      next = i;
  }
  if (next == slots_.size()) {
    active_ = false;
    cv_.notify_all();
    return;
  }
  slots_[next].state = SlotState::Active;
  active_slot_ = next;
  cv_.notify_all();
  lock.unlock();
  dispatch_(next);
}

void Server::drain() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    wait_idle_locked_(lock);
  }
  exec_->drain();  // rethrow the first kernel error, if any
}

void Server::wait_idle_locked_(std::unique_lock<std::mutex>& lock) {
  cv_.wait(lock, [this] {
    return !active_ &&
           std::none_of(slots_.begin(), slots_.end(), [](const FrameSlot& s) {
             return s.state == SlotState::Queued;
           });
  });
}

void Server::recalibrate(const core::LensSpec& lens) {
  std::unique_lock<std::mutex> lock(mu_);
  wait_idle_locked_(lock);
  config_.lens = lens;
  config_.fov_rad = lens.fov_rad();
  camera_ = std::make_unique<core::FisheyeCamera>(core::FisheyeCamera::centered(
      lens, config_.src_width, config_.src_height));
  ++generation_;  // old cached views are invalid by key from here on
  cache_.flush();
  stats_.plan_evictions = cache_.stats().evictions;
  stats_.cache_bytes = 0;
  stats_.cache_entries = 0;
}

void Server::recalibrate(core::LensKind lens, double fov_rad) {
  FE_EXPECTS(fov_rad > 0.0);
  core::LensSpec spec(lens);
  spec.fov_deg = util::rad_to_deg(fov_rad);
  recalibrate(spec);
}

rt::ServeStats Server::stats() const {
  rt::ServeStats out;
  {
    const std::scoped_lock lock(mu_);
    out = stats_;
  }
  {
    const std::scoped_lock lock(retire_mu_);
    out.retired = retired_;
    out.total_latency_seconds = total_latency_;
    out.max_latency_seconds = max_latency_;
  }
  return out;
}

}  // namespace fisheye::serve
