#include "serve/coalesce.hpp"

#include <algorithm>
#include <numeric>

namespace fisheye::serve {

namespace {

[[nodiscard]] bool intersects(par::Rect a, par::Rect b) noexcept {
  return a.x0 < b.x1 && b.x0 < a.x1 && a.y0 < b.y1 && b.y0 < a.y1;
}

[[nodiscard]] par::Rect rect_union(par::Rect a, par::Rect b) noexcept {
  return {std::min(a.x0, b.x0), std::min(a.y0, b.y0), std::max(a.x1, b.x1),
          std::max(a.y1, b.y1)};
}

}  // namespace

void Coalescer::coalesce(const std::vector<QuantizedView>& views,
                         bool enabled) {
  const std::size_t n = views.size();
  clusters_.clear();
  scratch_.clear();
  members_.clear();
  cluster_of_.assign(n, 0);

  if (!enabled) {
    // Uncoalesced baseline: one cluster per request, duplicates included.
    for (std::uint32_t i = 0; i < n; ++i) {
      clusters_.push_back({views[i].level, views[i].rect, i, 1});
      members_.push_back(i);
    }
    return;
  }

  // Sort request indices by (level, rect): duplicates become adjacent, so
  // pass 1 collapses them without any hashing.
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0u);
  std::sort(order_.begin(), order_.end(),
            [&views](std::uint32_t a, std::uint32_t b) {
              const QuantizedView& va = views[a];
              const QuantizedView& vb = views[b];
              if (va.level != vb.level) return va.level < vb.level;
              const par::Rect& ra = va.rect;
              const par::Rect& rb = vb.rect;
              if (ra.x0 != rb.x0) return ra.x0 < rb.x0;
              if (ra.y0 != rb.y0) return ra.y0 < rb.y0;
              if (ra.x1 != rb.x1) return ra.x1 < rb.x1;
              return ra.y1 < rb.y1;
            });

  // Pass 1: one cluster per distinct (level, rect).
  for (const std::uint32_t idx : order_) {
    const QuantizedView& v = views[idx];
    if (!scratch_.empty() && scratch_.back().level == v.level &&
        scratch_.back().bounds == v.rect) {
      ++scratch_.back().count;
    } else {
      scratch_.push_back({v.level, v.rect, 0, 1});
    }
    cluster_of_[idx] = static_cast<std::uint32_t>(scratch_.size() - 1);
  }

  // Pass 2: merge overlapping clusters to a fixpoint. The guard — the
  // union bbox holds no more pixels than the parts — means a merge never
  // increases kernel work, so the tiles-saved counter cannot go negative
  // from merging. Cluster counts are small after dedup (distinct rects,
  // not requests), so the quadratic sweep per level is cheap.
  alias_.resize(scratch_.size());
  std::iota(alias_.begin(), alias_.end(), 0u);
  bool merged = true;
  while (merged) {
    merged = false;
    for (std::size_t a = 0; a < scratch_.size(); ++a) {
      if (scratch_[a].count == 0) continue;  // absorbed
      for (std::size_t b = a + 1; b < scratch_.size(); ++b) {
        if (scratch_[b].level != scratch_[a].level) break;  // level-sorted
        if (scratch_[b].count == 0) continue;
        const par::Rect u = rect_union(scratch_[a].bounds, scratch_[b].bounds);
        if (!intersects(scratch_[a].bounds, scratch_[b].bounds)) continue;
        if (u.area() >
            scratch_[a].bounds.area() + scratch_[b].bounds.area())
          continue;
        scratch_[a].bounds = u;
        scratch_[a].count += scratch_[b].count;
        scratch_[b].count = 0;
        alias_[b] = static_cast<std::uint32_t>(a);
        merged = true;
      }
    }
  }
  // Path-compress aliases (an absorbed cluster may itself have absorbed).
  for (std::size_t c = 0; c < alias_.size(); ++c) {
    std::uint32_t root = alias_[c];
    while (alias_[root] != root) root = alias_[root];
    alias_[c] = root;
  }

  // Compact live clusters and group member request indices per cluster
  // (counting sort over the final cluster ids — no per-cluster vectors).
  remap_.assign(scratch_.size(), 0);
  for (std::size_t c = 0; c < scratch_.size(); ++c) {
    if (scratch_[c].count == 0) continue;
    remap_[c] = static_cast<std::uint32_t>(clusters_.size());
    clusters_.push_back(scratch_[c]);
  }
  std::uint32_t offset = 0;
  for (ViewCluster& cl : clusters_) {
    cl.first = offset;
    offset += cl.count;
  }
  members_.resize(n);
  // Reuse order_ as per-cluster fill cursors.
  order_.assign(clusters_.size(), 0u);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t c = remap_[alias_[cluster_of_[i]]];
    members_[clusters_[c].first + order_[c]++] = i;
  }
}

}  // namespace fisheye::serve
