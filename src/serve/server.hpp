// serve::Server — the virtual-PTZ serving layer.
//
// One fisheye source, N concurrent viewers, each with an independent
// pan/tilt/zoom view. The server exposes a discrete zoom pyramid (each
// LevelSpec is a PerspectiveView of its own focal — constructing a level
// is free, maps are built per *view region* on demand); a client request
// is (level, rect in level output space, destination crop). Pan/tilt is
// the rect position, zoom is the level index.
//
// Per source frame the pipeline is: quantize request rects (origin down,
// extent up, to `quantum` px — transparent to clients, crops stay exact) →
// coalesce duplicates/overlaps into clusters (Coalescer) → resolve each
// cluster through the PlanCache (hit: zero-allocation; miss: build the
// windowed map + plan) → fan clusters out across plan-stream lanes of a
// stream::StreamExecutor → on cluster retire, copy member crops out of the
// shared cluster output and fire the per-request retire callback with the
// true request→crop latency.
//
// Backpressure is two-level: request() blocks when the open frame already
// holds max_pending requests, submit_frame() blocks when queue_depth
// frames are already parked behind the in-flight one. Frames dispatch
// serially (the next frame starts only after every cluster of the current
// one retired), which is also what lets the cache evict safely: only
// entries pinned by the one in-flight frame are ever executing.
//
//   par::ThreadPool pool(8);
//   serve::Server server(cfg, serve::ServeOptions::parse("serve:lanes=4"),
//                        pool);
//   server.set_retire([&](uint64_t seq, uint64_t tag, double lat) {...});
//   server.request(/*level=*/0, {x0, y0, x1, y1}, crop.view());
//   server.submit_frame(fisheye.view());
//   server.drain();
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>
#include <vector>

#include "core/model_spec.hpp"
#include "runtime/stats.hpp"
#include "runtime/timer.hpp"
#include "serve/coalesce.hpp"
#include "serve/plan_cache.hpp"
#include "stream/stream_executor.hpp"

namespace fisheye::serve {

/// One zoom level: output dims + perspective focal in pixels (0 = match
/// the lens centre-of-image resolution, like CorrectorConfig::out_focal).
struct LevelSpec {
  int width = 0;
  int height = 0;
  double focal = 0.0;
};

/// Serving knobs, parseable from a spec string through the same
/// convention as backend specs (kind:key=value,... — unknown or
/// out-of-range tokens rejected by name):
///
///   serve:lanes=4,queue_depth=4,pending=4096,cache_budget=128M,
///         quantum=16,coalesce=on,map=compact:8,frac=14,tile=32x32
struct ServeOptions {
  int lanes = 2;  ///< plan-stream lanes clusters fan out across
  std::size_t queue_depth = 4;     ///< frames parked behind the active one
  std::size_t max_pending = 4096;  ///< requests per frame before blocking
  std::size_t cache_budget = std::size_t{128} << 20;  ///< PlanCache bytes
  int quantum = 16;      ///< rect quantization, px; power of two
  bool coalesce = true;  ///< merge duplicate/overlapping views
  core::MapMode map_mode = core::MapMode::FloatLut;
  int compact_stride = 8;  ///< CompactLut grid pitch; quantum must be a
                           ///< multiple (keeps windows grid-aligned)
  int frac_bits = 14;
  int tile_w = 32;  ///< cluster plan tile size (views are small; smaller
  int tile_h = 32;  ///< tiles than full-frame plans keep lanes busy)

  /// Parse a serve spec. Throws InvalidArgument naming the offending
  /// token for unknown options, malformed values, or out-of-range
  /// numbers; `parse(o.spec())` round-trips.
  static ServeOptions parse(const std::string& spec);
  /// Canonical spec text (all options, fixed order).
  [[nodiscard]] std::string spec() const;
};

/// Source geometry + the view pyramid served from it.
struct ServerConfig {
  int src_width = 0;
  int src_height = 0;
  /// Lens model identity; implicitly convertible from LensKind, so
  /// `cfg.lens = LensKind::X` keeps working.
  core::LensSpec lens = core::LensKind::Equidistant;
  /// 0 = take the field of view from the lens spec (default 180 degrees);
  /// non-zero overrides the spec, like CorrectorConfig.
  double fov_rad = 0.0;
  int channels = 1;
  core::RemapOptions remap;  ///< Bilinear required for packed/compact
  std::vector<LevelSpec> levels;  ///< at least one zoom level
};

/// See the header comment. Thread-safety: request/submit_frame form the
/// producer side and may be called from one thread (or externally
/// serialized); drain/stats from any thread; retire callbacks run on
/// worker threads.
class Server {
 public:
  /// Per-request completion: `seq` is what request() returned, `tag` the
  /// caller's cookie, latency is request() → crop copied into dst.
  /// Invoked on a worker thread; must not call back into the server
  /// except via another thread's request/submit_frame.
  using RetireFn = std::function<void(std::uint64_t seq, std::uint64_t tag,
                                      double latency_seconds)>;

  /// `pool` is fully dedicated to this server's stream executor for the
  /// server's lifetime (WorkStealingPool::start_service semantics): one
  /// live Server (or StreamExecutor) per pool.
  Server(ServerConfig config, ServeOptions options, par::ThreadPool& pool);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Install the retire callback (before the first request).
  void set_retire(RetireFn fn) { retire_ = std::move(fn); }

  /// Register one view request against the *next* submitted frame. `rect`
  /// is in level output space and must lie within the level; `dst` must
  /// be rect-sized with the server's channel count and stay valid until
  /// the request retires. Blocks when the open frame is full
  /// (max_pending). Returns the request sequence number.
  std::uint64_t request(int level, par::Rect rect,
                        img::ImageView<std::uint8_t> dst,
                        std::uint64_t tag = 0);

  /// Bind the accumulated requests to one source frame and dispatch it
  /// (immediately when idle, else queued). Blocks when queue_depth frames
  /// are already waiting (backpressure). `src` must stay valid until the
  /// frame completes. Returns the frame id.
  std::uint64_t submit_frame(img::ConstImageView<std::uint8_t> src);

  /// Block until every submitted frame has fully retired, then rethrow
  /// the first kernel error, if any. Requests accumulated after the last
  /// submit_frame stay pending.
  void drain();

  /// Swap the lens model (new calibration): waits for in-flight frames,
  /// bumps the calibration generation and flushes the PlanCache — every
  /// cached view of the old calibration is invalid by key. The spec form
  /// carries calibration parameters and field of view; the (kind, fov)
  /// form wraps it for existing call sites.
  void recalibrate(const core::LensSpec& lens);
  void recalibrate(core::LensKind lens, double fov_rad);

  [[nodiscard]] rt::ServeStats stats() const;
  [[nodiscard]] const ServeOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

 private:
  struct Request {
    int level = 0;
    par::Rect rect;   ///< as requested (crop geometry)
    par::Rect qrect;  ///< quantized (cache/cluster geometry)
    img::ImageView<std::uint8_t> dst;
    std::uint64_t seq = 0;
    std::uint64_t tag = 0;
    double submit_time = 0.0;
  };

  enum class SlotState { Free, Open, Queued, Active };

  /// One frame in the pipeline; `requests`/`views` are parallel arrays
  /// reserved to max_pending, so accumulation allocates nothing.
  struct FrameSlot {
    std::vector<Request> requests;
    std::vector<QuantizedView> views;
    img::ConstImageView<std::uint8_t> src;
    std::uint64_t frame_id = 0;
    SlotState state = SlotState::Free;
  };

  /// One plan-stream lane. `fifo` holds the cluster indices submitted to
  /// the lane this frame, in order — stream frames retire FIFO, so the
  /// retire callback pops from `head`. Filled completely before the first
  /// submit of a frame, so callbacks never race the fill.
  struct Lane {
    stream::StreamId id = 0;
    std::vector<std::uint32_t> fifo;
    std::size_t head = 0;
  };

  [[nodiscard]] par::Rect quantize_(par::Rect r) const noexcept;
  [[nodiscard]] std::size_t tile_count_(par::Rect r) const noexcept;
  void dispatch_(std::size_t slot_index);
  void on_lane_retire_(std::size_t lane_index);
  void complete_frame_();
  void wait_idle_locked_(std::unique_lock<std::mutex>& lock);

  ServerConfig config_;
  ServeOptions options_;
  std::unique_ptr<core::FisheyeCamera> camera_;
  std::vector<std::unique_ptr<core::PerspectiveView>> level_views_;
  std::uint64_t generation_ = 1;
  rt::Stopwatch epoch_;
  RetireFn retire_;

  // Producer/pipeline state, guarded by mu_. cv_ signals slot transitions
  // (backpressure release, drain).
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<FrameSlot> slots_;
  std::size_t open_ = 0;         ///< slot accumulating requests
  std::size_t active_slot_ = 0;  ///< slot whose clusters are in flight
  bool active_ = false;
  std::uint64_t req_seq_ = 0;
  std::uint64_t frame_seq_ = 0;
  rt::ServeStats stats_;  ///< producer-side counters under mu_

  // Dispatch/retire state. Touched only by the single dispatcher (the
  // one-active-frame invariant) and, for lanes' heads, by that lane's
  // serialized retire callbacks.
  PlanCache cache_;
  Coalescer coalescer_;
  std::vector<CachedView*> cluster_entries_;
  std::atomic<std::size_t> remaining_clusters_{0};

  // Retire-side counters; separate lock so crop-copy workers do not
  // contend with producers.
  mutable std::mutex retire_mu_;
  double total_latency_ = 0.0;
  double max_latency_ = 0.0;
  std::size_t retired_ = 0;

  std::vector<Lane> lanes_;
  /// Last member, destroyed first: its destructor waits for in-flight
  /// frames, whose retire callbacks touch everything above.
  std::unique_ptr<stream::StreamExecutor> exec_;
};

}  // namespace fisheye::serve
