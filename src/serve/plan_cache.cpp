#include "serve/plan_cache.hpp"

#include "util/error.hpp"

namespace fisheye::serve {

std::unique_ptr<CachedView> build_cached_view(const ViewBuildContext& build,
                                              const ViewKey& key) {
  FE_EXPECTS(build.camera != nullptr && build.view != nullptr);
  FE_EXPECTS(!key.rect.empty());
  FE_EXPECTS(build.mode != core::MapMode::OnTheFly);

  auto entry = std::make_unique<CachedView>();
  entry->key = key;
  entry->width = key.rect.width();
  entry->height = key.rect.height();

  // Compact mode pads the window one stride right/bottom: the grid corners
  // serving pixel (width-1, height-1) then land on *sampled* positions, so
  // reconstruction matches the full level map (whose grid, thanks to the
  // stride-aligned window origin, samples the same absolute positions).
  const int pad =
      build.mode == core::MapMode::CompactLut ? build.compact_stride : 0;
  if (pad != 0) FE_EXPECTS(key.rect.x0 % build.compact_stride == 0 &&
                           key.rect.y0 % build.compact_stride == 0);
  const par::Rect window{key.rect.x0, key.rect.y0, key.rect.x1 + pad,
                         key.rect.y1 + pad};
  entry->map = core::build_map_window(*build.camera, *build.view, window);
  if (build.mode == core::MapMode::PackedLut)
    entry->packed = core::pack_map(entry->map, build.src_width,
                                   build.src_height, build.frac_bits);
  if (build.mode == core::MapMode::CompactLut)
    entry->compact =
        core::compact_map(entry->map, build.src_width, build.src_height,
                          build.compact_stride, build.frac_bits);

  entry->out = img::Image<std::uint8_t>(window.width(), window.height(),
                                        build.channels);

  // The plan's context: shape-only source (planning never reads pixels),
  // the entry's own output buffer, and the entry's maps — their addresses
  // are final here, so the resolved kernel's bound pointers stay valid for
  // the entry's lifetime. Tiles cover only the served region; the pad rows
  // and columns are never written or read.
  core::ExecContext ctx;
  ctx.src = img::ConstImageView<std::uint8_t>(
      nullptr, build.src_width, build.src_height, build.channels,
      static_cast<std::size_t>(build.src_width) * build.channels);
  ctx.dst = entry->out.view();
  ctx.map = &entry->map;
  ctx.packed = entry->packed ? &*entry->packed : nullptr;
  ctx.compact = entry->compact ? &*entry->compact : nullptr;
  ctx.opts = build.remap;
  ctx.mode = build.mode;
  entry->plan =
      core::build_service_plan(ctx, build.tile_w, build.tile_h,
                               kServePlanName, entry->width, entry->height);

  std::size_t bytes = sizeof(CachedView) + entry->map.bytes();
  if (entry->packed) bytes += entry->packed->bytes();
  if (entry->compact) bytes += entry->compact->bytes();
  bytes += static_cast<std::size_t>(entry->out.view().pitch) *
           entry->out.view().height;
  bytes += entry->plan.tiles().size() *
           (sizeof(par::Rect) + sizeof(std::uint32_t) + sizeof(double));
  entry->bytes = bytes;
  return entry;
}

CachedView* PlanCache::find(const ViewKey& key, std::uint64_t frame) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  CachedView* e = it->second.get();
  e->pinned_frame = frame;
  if (head_ != e) {
    unlink_(e);
    push_front_(e);
  }
  return e;
}

CachedView& PlanCache::insert(std::unique_ptr<CachedView> entry,
                              std::uint64_t frame) {
  CachedView* e = entry.get();
  e->pinned_frame = frame;
  stats_.bytes += e->bytes;
  ++stats_.entries;
  map_[e->key] = std::move(entry);
  push_front_(e);
  trim(frame);
  return *e;
}

void PlanCache::trim(std::uint64_t active_frame) {
  CachedView* e = tail_;
  while (e != nullptr && stats_.bytes > budget_) {
    CachedView* prev = e->lru_prev;
    // Skip entries the in-flight frame is executing; their plan/output
    // must stay alive until the frame retires.
    if (active_frame == 0 || e->pinned_frame != active_frame) {
      stats_.bytes -= e->bytes;
      --stats_.entries;
      ++stats_.evictions;
      unlink_(e);
      map_.erase(e->key);
    }
    e = prev;
  }
}

void PlanCache::flush() {
  stats_.evictions += stats_.entries;
  stats_.entries = 0;
  stats_.bytes = 0;
  head_ = tail_ = nullptr;
  map_.clear();
}

void PlanCache::unlink_(CachedView* e) noexcept {
  if (e->lru_prev != nullptr)
    e->lru_prev->lru_next = e->lru_next;
  else
    head_ = e->lru_next;
  if (e->lru_next != nullptr)
    e->lru_next->lru_prev = e->lru_prev;
  else
    tail_ = e->lru_prev;
  e->lru_prev = e->lru_next = nullptr;
}

void PlanCache::push_front_(CachedView* e) noexcept {
  e->lru_prev = nullptr;
  e->lru_next = head_;
  if (head_ != nullptr) head_->lru_prev = e;
  head_ = e;
  if (tail_ == nullptr) tail_ = e;
}

}  // namespace fisheye::serve
