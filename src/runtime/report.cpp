#include "runtime/report.hpp"

#include <iostream>
#include <sstream>

#include "util/cpu.hpp"

namespace fisheye::rt {

void print_banner(const std::string& experiment_id,
                  const std::string& description) {
  std::cout << "## " << experiment_id << " — " << description << '\n'
            << "host: " << util::cpu_info().summary() << '\n';
}

double fps_from_seconds(double seconds_per_frame) noexcept {
  return seconds_per_frame > 0.0 ? 1.0 / seconds_per_frame : 0.0;
}

double mpix_per_s(int width, int height, double seconds_per_frame) noexcept {
  if (seconds_per_frame <= 0.0) return 0.0;
  return static_cast<double>(width) * height / 1e6 / seconds_per_frame;
}

std::string resolution_label(int width, int height) {
  std::ostringstream os;
  os << width << 'x' << height;
  return os.str();
}

}  // namespace fisheye::rt
