#include "runtime/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace fisheye::rt {

namespace {

double median_of_sorted(const std::vector<double>& v) {
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

RunStats summarize(std::vector<double> samples) {
  FE_EXPECTS(!samples.empty());
  std::sort(samples.begin(), samples.end());

  RunStats s;
  s.samples = static_cast<int>(samples.size());
  s.min = samples.front();
  s.max = samples.back();
  s.median = median_of_sorted(samples);
  s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());

  std::vector<double> dev(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i)
    dev[i] = std::abs(samples[i] - s.median);
  std::sort(dev.begin(), dev.end());
  s.mad_sigma = 1.4826 * median_of_sorted(dev);
  return s;
}

}  // namespace fisheye::rt
