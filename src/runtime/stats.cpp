#include "runtime/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace fisheye::rt {

namespace {

double median_of_sorted(const std::vector<double>& v) {
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

RunStats summarize(std::vector<double> samples) {
  FE_EXPECTS(!samples.empty());
  std::sort(samples.begin(), samples.end());

  RunStats s;
  s.samples = static_cast<int>(samples.size());
  s.min = samples.front();
  s.max = samples.back();
  s.median = median_of_sorted(samples);
  s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());

  std::vector<double> dev(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i)
    dev[i] = std::abs(samples[i] - s.median);
  std::sort(dev.begin(), dev.end());
  s.mad_sigma = 1.4826 * median_of_sorted(dev);
  return s;
}

double percentile(std::vector<double> samples, double pct) {
  FE_EXPECTS(!samples.empty());
  FE_EXPECTS(pct >= 0.0 && pct <= 100.0);
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  const std::size_t rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(pct / 100.0 * n)));
  return samples[std::min(rank, samples.size()) - 1];
}

TileStats summarize_tiles(const std::vector<double>& tile_seconds,
                          std::size_t bytes_in, std::size_t bytes_out) {
  TileStats t;
  t.bytes_in = bytes_in;
  t.bytes_out = bytes_out;
  if (tile_seconds.empty()) return t;
  t.tiles = static_cast<int>(tile_seconds.size());
  t.min_seconds = tile_seconds.front();
  t.max_seconds = tile_seconds.front();
  for (const double s : tile_seconds) {
    t.min_seconds = std::min(t.min_seconds, s);
    t.max_seconds = std::max(t.max_seconds, s);
    t.total_seconds += s;
  }
  t.mean_seconds = t.total_seconds / static_cast<double>(t.tiles);
  t.imbalance = t.mean_seconds > 0.0 ? t.max_seconds / t.mean_seconds : 0.0;
  return t;
}

}  // namespace fisheye::rt
