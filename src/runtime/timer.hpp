// Wall-clock timing utilities for the bench harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace fisheye::rt {

/// Monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_ms() const noexcept {
    return elapsed_seconds() * 1e3;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Time a callable once; returns seconds.
template <class Fn>
double time_once(Fn&& fn) {
  const Stopwatch sw;
  fn();
  return sw.elapsed_seconds();
}

}  // namespace fisheye::rt
