// Robust run statistics for measurements.
//
// Bench binaries report the median of repeated runs (robust to scheduler
// noise in a shared container) plus min and spread, so the tables are
// meaningful on loaded machines.
#pragma once

#include <vector>

namespace fisheye::rt {

struct RunStats {
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  /// Median absolute deviation (scaled by 1.4826 to estimate sigma).
  double mad_sigma = 0.0;
  int samples = 0;
};

/// Compute statistics of `samples` (not modified).
RunStats summarize(std::vector<double> samples);

/// Run `fn` `warmup + reps` times, timing the last `reps`; returns stats of
/// the per-run seconds.
template <class Fn>
RunStats measure(Fn&& fn, int reps, int warmup = 1);

}  // namespace fisheye::rt

#include "runtime/timer.hpp"

namespace fisheye::rt {

template <class Fn>
RunStats measure(Fn&& fn, int reps, int warmup) {
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) samples.push_back(time_once(fn));
  return summarize(std::move(samples));
}

}  // namespace fisheye::rt
