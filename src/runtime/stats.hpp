// Robust run statistics for measurements.
//
// Bench binaries report the median of repeated runs (robust to scheduler
// noise in a shared container) plus min and spread, so the tables are
// meaningful on loaded machines.
#pragma once

#include <vector>

namespace fisheye::rt {

struct RunStats {
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  /// Median absolute deviation (scaled by 1.4826 to estimate sigma).
  double mad_sigma = 0.0;
  int samples = 0;
};

/// Compute statistics of `samples` (not modified).
RunStats summarize(std::vector<double> samples);

/// Per-tile execution summary for one frame of a planned backend run.
/// Uniform across serial, pooled, SIMD and accelerator backends: `tiles`
/// is the plan's decomposition granularity, times are per-tile seconds
/// (wall-clock on CPU backends, modeled on the simulators), and
/// `imbalance` is max/mean — 1.0 for a perfectly balanced decomposition.
struct TileStats {
  int tiles = 0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  double mean_seconds = 0.0;
  double total_seconds = 0.0;
  double imbalance = 0.0;
  std::size_t bytes_in = 0;   ///< estimated bytes read (map + source taps)
  std::size_t bytes_out = 0;  ///< bytes written to the destination frame
  /// Work-stealing counters for schedule=steal backends (zero elsewhere):
  /// tiles run from the worker's initial run vs after being stolen, and
  /// the number of successful steal operations.
  std::size_t local_tiles = 0;
  std::size_t stolen_tiles = 0;
  std::size_t steals = 0;
};

/// Summarize per-tile seconds into a TileStats; byte counters are copied
/// through. Returns a zeroed struct for an empty vector.
TileStats summarize_tiles(const std::vector<double>& tile_seconds,
                          std::size_t bytes_in, std::size_t bytes_out);

/// Run `fn` `warmup + reps` times, timing the last `reps`; returns stats of
/// the per-run seconds.
template <class Fn>
RunStats measure(Fn&& fn, int reps, int warmup = 1);

}  // namespace fisheye::rt

#include "runtime/timer.hpp"

namespace fisheye::rt {

template <class Fn>
RunStats measure(Fn&& fn, int reps, int warmup) {
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) samples.push_back(time_once(fn));
  return summarize(std::move(samples));
}

}  // namespace fisheye::rt
