// Robust run statistics for measurements.
//
// Bench binaries report the median of repeated runs (robust to scheduler
// noise in a shared container) plus min and spread, so the tables are
// meaningful on loaded machines.
#pragma once

#include <vector>

namespace fisheye::rt {

struct RunStats {
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  /// Median absolute deviation (scaled by 1.4826 to estimate sigma).
  double mad_sigma = 0.0;
  int samples = 0;
};

/// Compute statistics of `samples` (not modified).
RunStats summarize(std::vector<double> samples);

/// Per-tile execution summary for one frame of a planned backend run.
/// Uniform across serial, pooled, SIMD and accelerator backends: `tiles`
/// is the plan's decomposition granularity, times are per-tile seconds
/// (wall-clock on CPU backends, modeled on the simulators), and
/// `imbalance` is max/mean — 1.0 for a perfectly balanced decomposition.
struct TileStats {
  int tiles = 0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  double mean_seconds = 0.0;
  double total_seconds = 0.0;
  double imbalance = 0.0;
  std::size_t bytes_in = 0;   ///< estimated bytes read (map + source taps)
  std::size_t bytes_out = 0;  ///< bytes written to the destination frame
  /// Work-stealing counters for schedule=steal backends (zero elsewhere):
  /// tiles run from the worker's initial run vs after being stolen, and
  /// the number of successful steal operations.
  std::size_t local_tiles = 0;
  std::size_t stolen_tiles = 0;
  std::size_t steals = 0;
  /// Process-sharding counters (backend=shard; zero elsewhere): shm bytes
  /// moved for the frame (source in + strips out), strips the supervisor
  /// computed locally because a worker was dead/stalled/past deadline, and
  /// cumulative worker respawns since the plan forked its fleet.
  std::size_t transport_bytes = 0;
  std::size_t fallback_strips = 0;
  std::size_t respawns = 0;
};

/// Summarize per-tile seconds into a TileStats; byte counters are copied
/// through. Returns a zeroed struct for an empty vector.
TileStats summarize_tiles(const std::vector<double>& tile_seconds,
                          std::size_t bytes_in, std::size_t bytes_out);

/// Per-stream service counters of the multi-stream executor
/// (stream::StreamExecutor). Frames/tiles are cumulative since the stream
/// was added; waits measure submit → first executed tile, the fairness
/// signal — a stream whose frames sit posted but untouched is being
/// starved by its neighbours. `tiles_local` counts tiles run by the
/// frame's owning worker in schedule order, `tiles_stolen` tiles that idle
/// workers pulled cross-stream; the two sum to frames × tiles-per-frame.
struct StreamStats {
  std::size_t frames = 0;        ///< frames retired
  std::size_t tiles_local = 0;   ///< tiles run by the frame's owner
  std::size_t tiles_stolen = 0;  ///< tiles stolen by other workers
  std::size_t steals = 0;        ///< successful cross-stream steals
  double total_wait_seconds = 0.0;  ///< sum of submit→first-tile waits
  double max_wait_seconds = 0.0;    ///< worst single-frame wait
  /// Frames whose wait exceeded the executor's starvation threshold.
  std::size_t starvation_events = 0;
};

/// Cumulative counters of the virtual-PTZ serving layer (serve::Server).
/// Requests are client view rects; clusters are the coalesced regions the
/// kernels actually ran. tiles_requested − tiles_executed is the
/// coalescing benefit: tiles that would have run had every view been
/// corrected independently but were served from a shared cluster output.
struct ServeStats {
  std::size_t requests = 0;   ///< view requests accepted
  std::size_t retired = 0;    ///< requests served (crop delivered)
  std::size_t frames = 0;     ///< source frames dispatched
  std::size_t clusters = 0;   ///< coalesced clusters executed
  std::size_t plan_hits = 0;    ///< cluster plans served from the PlanCache
  std::size_t plan_misses = 0;  ///< cluster plans built (map + plan + output)
  std::size_t plan_evictions = 0;  ///< cache entries dropped (LRU or flush)
  std::size_t cache_bytes = 0;     ///< bytes resident in the PlanCache
  std::size_t cache_entries = 0;   ///< entries resident in the PlanCache
  std::size_t tiles_executed = 0;   ///< tiles run across all clusters
  std::size_t tiles_requested = 0;  ///< tiles had every view run alone
  double total_latency_seconds = 0.0;  ///< sum of request → crop-delivered
  double max_latency_seconds = 0.0;    ///< worst single request
};

/// Cumulative supervisor-side counters of the multi-process shard backend
/// (shard::ShardBackend), reset each time a plan forks a fresh worker
/// fleet. Transport counts payload bytes actually copied across the shared
/// ring (a source already rendered into the ring costs zero in);
/// fallback_strips are frames' strips the supervisor computed locally so
/// every frame stays complete when workers die or stall.
struct ShardStats {
  int workers = 0;            ///< worker processes the plan forked
  std::size_t frames = 0;     ///< frames executed under the plan
  std::size_t transport_in_bytes = 0;   ///< source bytes copied into the ring
  std::size_t transport_out_bytes = 0;  ///< strip bytes copied out of the ring
  std::size_t fallback_strips = 0;  ///< strips computed by the supervisor
  std::size_t respawns = 0;   ///< crashed workers re-forked (waitpid path)
  std::size_t stalls = 0;     ///< live→stalled transitions (heartbeat timeout)
  std::size_t heartbeats = 0; ///< heartbeat observations across all workers
  double wait_seconds = 0.0;  ///< supervisor time spent waiting on workers
};

/// Nearest-rank percentile of `samples` (pct in [0, 100]; 50 = median-ish,
/// 99 = p99). Takes the vector by value — sorting is part of the job.
double percentile(std::vector<double> samples, double pct);

/// Run `fn` `warmup + reps` times, timing the last `reps`; returns stats of
/// the per-run seconds.
template <class Fn>
RunStats measure(Fn&& fn, int reps, int warmup = 1);

}  // namespace fisheye::rt

#include "runtime/timer.hpp"

namespace fisheye::rt {

template <class Fn>
RunStats measure(Fn&& fn, int reps, int warmup) {
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) samples.push_back(time_once(fn));
  return summarize(std::move(samples));
}

}  // namespace fisheye::rt
