// Shared bench-report header/footer so every experiment binary prints the
// same preamble (experiment id, hardware, configuration) and the tables are
// directly comparable across runs.
#pragma once

#include <string>

#include "runtime/stats.hpp"

namespace fisheye::rt {

/// Print the standard experiment banner to stdout.
void print_banner(const std::string& experiment_id,
                  const std::string& description);

/// Frames per second implied by a per-frame time.
[[nodiscard]] double fps_from_seconds(double seconds_per_frame) noexcept;

/// Megapixels per second of output produced.
[[nodiscard]] double mpix_per_s(int width, int height,
                                double seconds_per_frame) noexcept;

/// "1280x720" style label.
[[nodiscard]] std::string resolution_label(int width, int height);

/// Standard resolution set used across experiments (name, width, height).
struct Resolution {
  const char* name;
  int width;
  int height;
};

/// VGA through 4K — the sweep axis of T2/F8.
inline constexpr Resolution kResolutions[] = {
    {"VGA", 640, 480},     {"D1", 720, 576},      {"720p", 1280, 720},
    {"1080p", 1920, 1080}, {"4MP", 2048, 2048},
};

}  // namespace fisheye::rt
