// Frame pipeline: the end-to-end application loop of the study — a camera
// delivering fisheye frames, corrected per frame on a chosen backend, with
// steady-state throughput accounting.
//
// The synthetic source renders an animated scene through the *forward*
// fisheye model, so every corrected frame has a pixel-accurate ground truth
// available (something real footage never gives you).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/backend.hpp"
#include "core/corrector.hpp"
#include "image/image.hpp"
#include "runtime/stats.hpp"

namespace fisheye::video {

/// Produces fisheye frames of an animated synthetic street scene.
class SyntheticVideoSource {
 public:
  /// Frames are `width` x `height`, `channels` 1 (gray) or 3 (RGB); the
  /// scene is rendered at `scene_scale` x resolution and forward-distorted
  /// through `camera`'s lens.
  SyntheticVideoSource(const core::FisheyeCamera& camera, int width,
                       int height, int channels, double fps = 30.0);

  /// Render frame `index` (deterministic; random access allowed).
  [[nodiscard]] img::Image8 frame(int index) const;

  /// The undistorted scene frame `index` was rendered from (ground truth
  /// for quality metrics).
  [[nodiscard]] img::Image8 scene_frame(int index) const;

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }

 private:
  const core::FisheyeCamera* camera_;
  int width_;
  int height_;
  int channels_;
  double fps_;
  int scene_width_;
  int scene_height_;
  double scene_focal_;
  core::WarpMap synth_map_;
};

/// Per-run pipeline report.
struct PipelineStats {
  int frames = 0;
  double wall_seconds = 0.0;
  double fps = 0.0;
  rt::RunStats per_frame;  ///< per-frame seconds distribution
  /// Frame-parallel runs only: per-stream service counters of the
  /// executor's stream clones (empty on the serial pipeline).
  std::vector<rt::StreamStats> streams;
};

/// Drive `frames` frames from `source` through `corrector` on `backend`.
/// `sink` (optional) observes each corrected frame (e.g. to write files or
/// compute metrics); its cost is excluded from per-frame timing.
PipelineStats run_pipeline(
    const SyntheticVideoSource& source, const core::Corrector& corrector,
    core::Backend& backend, int frames,
    const std::function<void(int, const img::Image8&)>& sink = {});

/// Inter-frame parallelism: up to pool-size frames in flight at once — the
/// throughput-oriented alternative to splitting a single frame (compared
/// in F16). Runs on stream::StreamExecutor: the corrector is registered as
/// min(pool, frames) stream clones, frames are submitted round-robin, and
/// the shared work-stealing pool serves them — so unlike the old
/// one-task-per-frame path, per-frame latencies are real measurements
/// (submit → retire) and per-stream steal/fairness counters come back in
/// PipelineStats::streams. `sink`, if given, is called in frame order
/// after the batch completes. Outputs are identical to the serial path
/// (tested).
PipelineStats run_pipeline_frame_parallel(
    const SyntheticVideoSource& source, const core::Corrector& corrector,
    par::ThreadPool& pool, int frames,
    const std::function<void(int, const img::Image8&)>& sink = {});

}  // namespace fisheye::video
