#include "video/ptz_controller.hpp"

#include "core/projection.hpp"
#include "runtime/timer.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"

namespace fisheye::video {

PtzPose PtzPath::at(double t) const {
  FE_EXPECTS(!keys.empty());
  for (std::size_t i = 1; i < keys.size(); ++i)
    FE_EXPECTS(keys[i].time_s > keys[i - 1].time_s);
  if (t <= keys.front().time_s) return keys.front().pose;
  if (t >= keys.back().time_s) return keys.back().pose;
  for (std::size_t i = 1; i < keys.size(); ++i) {
    if (t > keys[i].time_s) continue;
    const Key& a = keys[i - 1];
    const Key& b = keys[i];
    const double u = (t - a.time_s) / (b.time_s - a.time_s);
    return {util::lerp(a.pose.pan, b.pose.pan, u),
            util::lerp(a.pose.tilt, b.pose.tilt, u),
            util::lerp(a.pose.hfov, b.pose.hfov, u)};
  }
  return keys.back().pose;  // unreachable
}

VirtualPtz::VirtualPtz(const core::FisheyeCamera& camera, int out_width,
                       int out_height)
    : camera_(&camera), out_width_(out_width), out_height_(out_height) {
  FE_EXPECTS(out_width > 0 && out_height > 0);
  pose_ = {0.0, 0.0, util::deg_to_rad(60.0)};
}

void VirtualPtz::set_view(const PtzPose& pose) {
  FE_EXPECTS(pose.hfov > 0.0 && pose.hfov < util::kPi);
  if (pose == pose_) return;
  pose_ = pose;
  map_.reset();  // rebuild lazily
}

void VirtualPtz::ensure_map() const {
  if (map_.has_value()) {
    last_rebuild_ms_ = 0.0;
    return;
  }
  const rt::Stopwatch sw;
  const core::PerspectiveView view = core::PerspectiveView::ptz(
      out_width_, out_height_, pose_.pan, pose_.tilt, pose_.hfov);
  map_ = core::build_map(*camera_, view);
  last_rebuild_ms_ = sw.elapsed_ms();
  ++rebuilds_;
}

const core::WarpMap& VirtualPtz::map() const {
  ensure_map();
  return *map_;
}

void VirtualPtz::render(img::ConstImageView<std::uint8_t> src,
                        img::ImageView<std::uint8_t> dst,
                        const core::RemapOptions& opts) const {
  FE_EXPECTS(dst.width == out_width_ && dst.height == out_height_);
  ensure_map();
  core::remap_rect(src, dst, *map_, {0, 0, out_width_, out_height_}, opts);
}

}  // namespace fisheye::video
