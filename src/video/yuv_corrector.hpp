// YUV-native correction.
//
// Cameras of the study's era delivered YUV 4:2:0; converting to RGB just to
// remap and converting back doubles the per-frame cost. The production path
// corrects the planes directly: the luma plane with the full-resolution
// map, both chroma planes with a half-resolution map derived from the same
// camera geometry. Chroma siting follows the 4:2:0 convention (a chroma
// sample sits between its four luma samples), handled by the half-pixel
// offsets in decimate_map.
#pragma once

#include "core/corrector.hpp"
#include "image/convert.hpp"

namespace fisheye::video {

/// Derive the map for a plane subsampled `factor`x in both directions from
/// the full-resolution map: out pixel (x, y) of the small plane corresponds
/// to full-res position (factor*x + (factor-1)/2), and source coordinates
/// scale down the same way. Exposed for tests.
core::WarpMap decimate_map(const core::WarpMap& full, int factor);

/// Corrects Yuv420 frames in place of the RGB path. Build once, then
/// correct_frame per frame on any Backend.
class YuvCorrector {
 public:
  /// `config` describes the *luma* geometry (as Corrector). Width/height
  /// must be even.
  explicit YuvCorrector(const core::CorrectorConfig& config);

  /// Correct all three planes of `in` into a fresh frame.
  [[nodiscard]] img::Yuv420 correct_frame(const img::Yuv420& in,
                                          core::Backend& backend) const;

  [[nodiscard]] const core::WarpMap& luma_map() const noexcept {
    return *luma_.map();
  }
  [[nodiscard]] const core::WarpMap& chroma_map() const noexcept {
    return chroma_map_;
  }

 private:
  core::Corrector luma_;
  core::WarpMap chroma_map_;
  core::RemapOptions opts_;
};

}  // namespace fisheye::video
