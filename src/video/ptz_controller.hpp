// Virtual PTZ controller: a steerable perspective view into a fisheye
// stream, with lazy map regeneration.
//
// An operator (or an automated tour) changes pan/tilt/zoom at UI rate while
// frames arrive at video rate; regenerating the warp map is the expensive
// step (tens of ms at 1080p), so the controller rebuilds it only when the
// view actually changed and exposes the cost so pipelines can budget it.
#pragma once

#include <optional>
#include <vector>

#include "core/camera.hpp"
#include "core/mapping.hpp"
#include "core/remap.hpp"

namespace fisheye::video {

/// One PTZ pose (radians).
struct PtzPose {
  double pan = 0.0;
  double tilt = 0.0;
  double hfov = 1.0;

  bool operator==(const PtzPose&) const = default;
};

/// Piecewise-linear PTZ tour through timed keyframes.
struct PtzPath {
  struct Key {
    double time_s = 0.0;
    PtzPose pose;
  };
  std::vector<Key> keys;

  /// Pose at time `t` (clamped to the first/last keyframe). Keyframes must
  /// be in strictly increasing time order.
  [[nodiscard]] PtzPose at(double t) const;
};

class VirtualPtz {
 public:
  /// `camera` must outlive the controller; output is out_w x out_h.
  VirtualPtz(const core::FisheyeCamera& camera, int out_width,
             int out_height);

  /// Set the current view; the map rebuild is deferred to the next render
  /// (or map()) and skipped entirely when the pose is unchanged.
  void set_view(const PtzPose& pose);

  /// Warp map for the current pose (builds it if stale).
  [[nodiscard]] const core::WarpMap& map() const;

  /// Render the current view of `src` into `dst` (bilinear by default).
  void render(img::ConstImageView<std::uint8_t> src,
              img::ImageView<std::uint8_t> dst,
              const core::RemapOptions& opts = {}) const;

  [[nodiscard]] const PtzPose& pose() const noexcept { return pose_; }
  /// Milliseconds spent in the most recent map rebuild (0 if cached).
  [[nodiscard]] double last_rebuild_ms() const noexcept {
    return last_rebuild_ms_;
  }
  /// Total rebuilds since construction.
  [[nodiscard]] int rebuilds() const noexcept { return rebuilds_; }

 private:
  void ensure_map() const;

  const core::FisheyeCamera* camera_;
  int out_width_;
  int out_height_;
  PtzPose pose_;
  mutable std::optional<core::WarpMap> map_;
  mutable double last_rebuild_ms_ = 0.0;
  mutable int rebuilds_ = 0;
};

}  // namespace fisheye::video
