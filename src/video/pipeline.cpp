#include "video/pipeline.hpp"

#include <algorithm>

#include "core/remap.hpp"
#include "image/convert.hpp"
#include "image/synth.hpp"
#include "runtime/timer.hpp"
#include "stream/stream_executor.hpp"
#include "util/error.hpp"

namespace fisheye::video {

SyntheticVideoSource::SyntheticVideoSource(const core::FisheyeCamera& camera,
                                           int width, int height, int channels,
                                           double fps)
    : camera_(&camera),
      width_(width),
      height_(height),
      channels_(channels),
      fps_(fps) {
  FE_EXPECTS(width > 0 && height > 0);
  FE_EXPECTS(channels == 1 || channels == 3);
  FE_EXPECTS(fps > 0.0);
  // Render the scene with enough margin that the fisheye's wide field sees
  // actual content rather than border fill across most of the image circle.
  scene_width_ = width * 2;
  scene_height_ = height * 2;
  // Scene focal ~ quarter of its width: a very wide pinhole (~127 degrees),
  // the widest view a plane can reasonably carry.
  scene_focal_ = 0.25 * scene_width_;
  synth_map_ = core::build_synthesis_map(*camera_, scene_width_, scene_height_,
                                         scene_focal_, width_, height_);
}

img::Image8 SyntheticVideoSource::scene_frame(int index) const {
  FE_EXPECTS(index >= 0);
  const double t = static_cast<double>(index) / fps_;
  img::Image8 rgb = img::make_scene_rgb(scene_width_, scene_height_, t);
  if (channels_ == 1) return img::rgb_to_gray(rgb.view());
  return rgb;
}

img::Image8 SyntheticVideoSource::frame(int index) const {
  const img::Image8 scene = scene_frame(index);
  img::Image8 fish(width_, height_, channels_);
  const core::RemapOptions opts{core::Interp::Bilinear,
                                img::BorderMode::Constant, 0};
  core::remap_rect(scene.view(), fish.view(), synth_map_,
                   {0, 0, width_, height_}, opts);
  return fish;
}

PipelineStats run_pipeline(
    const SyntheticVideoSource& source, const core::Corrector& corrector,
    core::Backend& backend, int frames,
    const std::function<void(int, const img::Image8&)>& sink) {
  FE_EXPECTS(frames > 0);

  // Pre-render the input frames: the pipeline measures correction cost,
  // not the synthetic camera.
  std::vector<img::Image8> inputs;
  inputs.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i) inputs.push_back(source.frame(i));

  img::Image8 out(corrector.config().out_width, corrector.config().out_height,
                  inputs.front().channels());

  // Plan once, outside the timed loop: per-frame times are pure execution.
  const core::Corrector::Prepared prepared =
      corrector.prepare(backend, inputs.front().channels());

  PipelineStats stats;
  std::vector<double> per_frame;
  per_frame.reserve(static_cast<std::size_t>(frames));
  const rt::Stopwatch wall;
  for (int i = 0; i < frames; ++i) {
    const rt::Stopwatch sw;
    corrector.correct(prepared, inputs[static_cast<std::size_t>(i)].view(),
                      out.view());
    per_frame.push_back(sw.elapsed_seconds());
    if (sink) sink(i, out);
  }
  stats.wall_seconds = wall.elapsed_seconds();
  stats.frames = frames;
  stats.per_frame = rt::summarize(std::move(per_frame));
  stats.fps = stats.per_frame.median > 0.0 ? 1.0 / stats.per_frame.median : 0.0;
  return stats;
}

PipelineStats run_pipeline_frame_parallel(
    const SyntheticVideoSource& source, const core::Corrector& corrector,
    par::ThreadPool& pool, int frames,
    const std::function<void(int, const img::Image8&)>& sink) {
  FE_EXPECTS(frames > 0);

  std::vector<img::Image8> inputs;
  inputs.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i) inputs.push_back(source.frame(i));

  const int ow = corrector.config().out_width;
  const int oh = corrector.config().out_height;
  std::vector<img::Image8> outputs;
  outputs.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i)
    outputs.emplace_back(ow, oh, inputs.front().channels());

  // One corrector exposed as min(pool, frames) stream clones: each clone
  // owns a plan (so plan state is never shared across in-flight frames —
  // the property the old path bought with task-local backends), and the
  // shared pool steals tiles across clones whenever a frame can't fill it.
  const std::size_t clones =
      std::min<std::size_t>(pool.size(), static_cast<std::size_t>(frames));
  std::vector<double> latencies(static_cast<std::size_t>(frames), 0.0);

  PipelineStats stats;
  const rt::Stopwatch wall;
  {
    stream::StreamExecutorOptions opts;
    opts.max_streams = clones;
    stream::StreamExecutor exec(pool, opts);
    std::vector<stream::StreamId> ids(clones);
    for (std::size_t k = 0; k < clones; ++k)
      ids[k] = exec.add_stream(
          corrector, inputs.front().channels(),
          [&latencies, k, clones](stream::StreamId, std::uint64_t seq,
                                  double latency) {
            // Frame i went to clone i % clones as its frame (i / clones)+1.
            latencies[(seq - 1) * clones + k] = latency;
          });
    for (int i = 0; i < frames; ++i) {
      const std::size_t idx = static_cast<std::size_t>(i);
      exec.submit(ids[idx % clones], inputs[idx].view(), outputs[idx].view());
    }
    exec.drain();
    stats.streams.reserve(clones);
    for (std::size_t k = 0; k < clones; ++k)
      stats.streams.push_back(exec.stats(ids[k]));
  }
  stats.wall_seconds = wall.elapsed_seconds();

  if (sink)
    for (int i = 0; i < frames; ++i)
      sink(i, outputs[static_cast<std::size_t>(i)]);

  stats.frames = frames;
  // Unlike the old one-task-per-frame path, per-frame latency is observable
  // here (submit → retire per frame); fps stays the aggregate rate — with
  // frames overlapping, median latency understates throughput.
  stats.per_frame = rt::summarize(std::move(latencies));
  stats.fps = stats.wall_seconds > 0.0 ? frames / stats.wall_seconds : 0.0;
  return stats;
}

}  // namespace fisheye::video
