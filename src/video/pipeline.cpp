#include "video/pipeline.hpp"

#include "core/remap.hpp"
#include "image/convert.hpp"
#include "image/synth.hpp"
#include "runtime/timer.hpp"
#include "util/error.hpp"

namespace fisheye::video {

SyntheticVideoSource::SyntheticVideoSource(const core::FisheyeCamera& camera,
                                           int width, int height, int channels,
                                           double fps)
    : camera_(&camera),
      width_(width),
      height_(height),
      channels_(channels),
      fps_(fps) {
  FE_EXPECTS(width > 0 && height > 0);
  FE_EXPECTS(channels == 1 || channels == 3);
  FE_EXPECTS(fps > 0.0);
  // Render the scene with enough margin that the fisheye's wide field sees
  // actual content rather than border fill across most of the image circle.
  scene_width_ = width * 2;
  scene_height_ = height * 2;
  // Scene focal ~ quarter of its width: a very wide pinhole (~127 degrees),
  // the widest view a plane can reasonably carry.
  scene_focal_ = 0.25 * scene_width_;
  synth_map_ = core::build_synthesis_map(*camera_, scene_width_, scene_height_,
                                         scene_focal_, width_, height_);
}

img::Image8 SyntheticVideoSource::scene_frame(int index) const {
  FE_EXPECTS(index >= 0);
  const double t = static_cast<double>(index) / fps_;
  img::Image8 rgb = img::make_scene_rgb(scene_width_, scene_height_, t);
  if (channels_ == 1) return img::rgb_to_gray(rgb.view());
  return rgb;
}

img::Image8 SyntheticVideoSource::frame(int index) const {
  const img::Image8 scene = scene_frame(index);
  img::Image8 fish(width_, height_, channels_);
  const core::RemapOptions opts{core::Interp::Bilinear,
                                img::BorderMode::Constant, 0};
  core::remap_rect(scene.view(), fish.view(), synth_map_,
                   {0, 0, width_, height_}, opts);
  return fish;
}

PipelineStats run_pipeline(
    const SyntheticVideoSource& source, const core::Corrector& corrector,
    core::Backend& backend, int frames,
    const std::function<void(int, const img::Image8&)>& sink) {
  FE_EXPECTS(frames > 0);

  // Pre-render the input frames: the pipeline measures correction cost,
  // not the synthetic camera.
  std::vector<img::Image8> inputs;
  inputs.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i) inputs.push_back(source.frame(i));

  img::Image8 out(corrector.config().out_width, corrector.config().out_height,
                  inputs.front().channels());

  // Plan once, outside the timed loop: per-frame times are pure execution.
  const core::Corrector::Prepared prepared =
      corrector.prepare(backend, inputs.front().channels());

  PipelineStats stats;
  std::vector<double> per_frame;
  per_frame.reserve(static_cast<std::size_t>(frames));
  const rt::Stopwatch wall;
  for (int i = 0; i < frames; ++i) {
    const rt::Stopwatch sw;
    corrector.correct(prepared, inputs[static_cast<std::size_t>(i)].view(),
                      out.view());
    per_frame.push_back(sw.elapsed_seconds());
    if (sink) sink(i, out);
  }
  stats.wall_seconds = wall.elapsed_seconds();
  stats.frames = frames;
  stats.per_frame = rt::summarize(std::move(per_frame));
  stats.fps = stats.per_frame.median > 0.0 ? 1.0 / stats.per_frame.median : 0.0;
  return stats;
}

PipelineStats run_pipeline_frame_parallel(
    const SyntheticVideoSource& source, const core::Corrector& corrector,
    par::ThreadPool& pool, int frames,
    const std::function<void(int, const img::Image8&)>& sink) {
  FE_EXPECTS(frames > 0);

  std::vector<img::Image8> inputs;
  inputs.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i) inputs.push_back(source.frame(i));

  const int ow = corrector.config().out_width;
  const int oh = corrector.config().out_height;
  std::vector<img::Image8> outputs;
  outputs.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i)
    outputs.emplace_back(ow, oh, inputs.front().channels());

  // Backends carry per-instance plan state (plan cache + instrumentation),
  // so concurrent tasks must not share one; a task-local SerialBackend is
  // cheap (planning a serial frame is a single-tile key build).
  const rt::Stopwatch wall;
  par::parallel_for_each(
      pool, static_cast<std::size_t>(frames),
      [&](std::size_t i) {
        core::SerialBackend serial;
        corrector.correct(inputs[i].view(), outputs[i].view(), serial);
      },
      {par::Schedule::Dynamic, 1});
  const double wall_s = wall.elapsed_seconds();

  if (sink)
    for (int i = 0; i < frames; ++i)
      sink(i, outputs[static_cast<std::size_t>(i)]);

  PipelineStats stats;
  stats.frames = frames;
  stats.wall_seconds = wall_s;
  // Per-frame distribution is not observable (frames overlap); report the
  // amortized time per frame in all fields.
  const double amortized = wall_s / frames;
  stats.per_frame = rt::summarize({amortized});
  stats.fps = amortized > 0.0 ? 1.0 / amortized : 0.0;
  return stats;
}

}  // namespace fisheye::video
