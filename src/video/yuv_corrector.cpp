#include "video/yuv_corrector.hpp"

#include "core/remap.hpp"
#include "util/error.hpp"

namespace fisheye::video {

core::WarpMap decimate_map(const core::WarpMap& full, int factor) {
  FE_EXPECTS(factor >= 2);
  FE_EXPECTS(full.width % factor == 0 && full.height % factor == 0);
  core::WarpMap small;
  small.width = full.width / factor;
  small.height = full.height / factor;
  small.src_x.resize(small.pixel_count());
  small.src_y.resize(small.pixel_count());
  // 4:2:0-style siting: small pixel (x, y) sits at full-res position
  // (factor*x + (factor-1)/2.0) — between grid points for even factors —
  // so evaluate the full map there as the box average of its factor^2
  // block (the map is smooth at pixel scale), then rescale the source
  // coordinate into small-plane units: s_small = (s_full - off) / factor.
  const float offf = static_cast<float>(factor - 1) * 0.5f;
  const float inv = 1.0f / static_cast<float>(factor);
  const float norm = inv * inv;
  for (int y = 0; y < small.height; ++y)
    for (int x = 0; x < small.width; ++x) {
      float sx = 0.0f, sy = 0.0f;
      for (int dy = 0; dy < factor; ++dy)
        for (int dx = 0; dx < factor; ++dx) {
          const std::size_t fi =
              full.index(factor * x + dx, factor * y + dy);
          sx += full.src_x[fi];
          sy += full.src_y[fi];
        }
      const std::size_t si = small.index(x, y);
      small.src_x[si] = (sx * norm - offf) * inv;
      small.src_y[si] = (sy * norm - offf) * inv;
    }
  return small;
}

YuvCorrector::YuvCorrector(const core::CorrectorConfig& config)
    : luma_([&] {
        core::CorrectorConfig c = config;
        // The YUV path always needs the float luma map to derive chroma.
        c.map_mode = core::MapMode::FloatLut;
        return core::Corrector(c);
      }()),
      opts_(config.remap) {
  FE_EXPECTS(config.src_width % 2 == 0 && config.src_height % 2 == 0);
  FE_EXPECTS(luma_.config().out_width % 2 == 0 &&
             luma_.config().out_height % 2 == 0);
  chroma_map_ = decimate_map(*luma_.map(), 2);
}

img::Yuv420 YuvCorrector::correct_frame(const img::Yuv420& in,
                                        core::Backend& backend) const {
  FE_EXPECTS(in.width() == luma_.config().src_width &&
             in.height() == luma_.config().src_height);
  const int ow = luma_.config().out_width;
  const int oh = luma_.config().out_height;
  img::Yuv420 out{img::Image8(ow, oh, 1), img::Image8(ow / 2, oh / 2, 1),
                  img::Image8(ow / 2, oh / 2, 1)};

  // Luma through the configured backend.
  luma_.correct(in.y.view(), out.y.view(), backend);

  // Chroma planes through the half-resolution map. The neutral value for
  // out-of-circle chroma is 128 (grey), not the luma fill.
  core::RemapOptions chroma_opts = opts_;
  chroma_opts.fill = 128;
  core::ExecContext ctx;
  ctx.map = &chroma_map_;
  ctx.opts = chroma_opts;
  ctx.mode = core::MapMode::FloatLut;
  ctx.src = in.u.view();
  ctx.dst = out.u.view();
  backend.execute(ctx);
  ctx.src = in.v.view();
  ctx.dst = out.v.view();
  backend.execute(ctx);
  return out;
}

}  // namespace fisheye::video
