// Multi-stream correction executor: M camera streams, one pool.
//
// The paper corrects ONE fisheye frame as fast as the substrate allows;
// the serving question is different — M cameras each produce frames at
// their own rate, and the budget is aggregate throughput plus per-stream
// tail latency under a fixed core count. Giving every stream its own pool
// oversubscribes the machine; serializing streams through one pool wastes
// it whenever a small frame can't fill the lanes. The StreamExecutor is
// the hybrid: every stream keeps its own ExecutionPlan (tile order,
// workspace arena, instrumentation — its cache-warm state), and ALL
// streams share one WorkStealingPool through a par::StreamScheduler —
// frames are claimed FIFO across streams (fairness), a frame's tiles run
// owner-LIFO in source-locality order (cache), and idle workers steal tile
// batches across streams (utilization).
//
//   par::ThreadPool pool(8);
//   stream::StreamExecutor exec(pool);
//   const auto cam0 = exec.add_stream(corrector_720p);
//   const auto cam1 = exec.add_stream(corrector_ptz, /*channels=*/3);
//   exec.submit(cam0, fish0.view(), out0.view());   // returns immediately
//   exec.submit(cam1, fish1.view(), out1.view());
//   exec.drain();                                   // or wait(id, seq)
//   rt::StreamStats s = exec.stats(cam0);           // fairness counters
//
// Steady state allocates nothing: per-stream arenas (plan workspace,
// instrumentation slots, the pending-frame ring) are sized when the stream
// is added, and the scheduler's queues/loot buffers reach their peak
// capacity within the first frames — the operator-new-counting test pins
// this with M concurrent streams.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <vector>

#include "core/corrector.hpp"
#include "parallel/work_stealing.hpp"
#include "runtime/stats.hpp"
#include "runtime/timer.hpp"

namespace fisheye::stream {

/// Identifies a stream within one executor; dense indices, reused after
/// remove_stream.
using StreamId = std::size_t;

/// Per-frame completion callback, invoked by the worker that retires the
/// frame (not the submitting thread), with the stream's lock NOT held —
/// submitting the stream's next frame from inside the callback is the
/// intended closed-loop driving pattern. `seq` is the value submit()
/// returned; `latency_seconds` is submit → last tile done.
using FrameRetireFn =
    std::function<void(StreamId id, std::uint64_t seq, double latency_seconds)>;

struct StreamExecutorOptions {
  int tile_w = 64;  ///< stream plan tile size (see Corrector::prepare_stream)
  int tile_h = 64;
  std::size_t max_streams = 64;
  /// Frames a stream may hold queued behind its in-flight frame before
  /// submit() blocks (backpressure). Small keeps latency honest.
  std::size_t queue_depth = 4;
  /// A frame waiting longer than this between submit and its first
  /// executed tile counts as a starvation event in rt::StreamStats.
  double starvation_wait_seconds = 0.25;
  par::StealPolicy steal;  ///< cross-stream steal granularity
  /// Pool lanes dedicated to this executor (0 = every lane). Sizing it
  /// below the pool's lane count lets several executors — multi-source
  /// serving — split one ThreadPool: the lane sums of all services on the
  /// pool must stay within its size.
  unsigned lanes = 0;
};

/// See the header comment. Thread-safety: submit/wait/stats/add_stream/
/// remove_stream may be called from any thread; per stream, submit and
/// remove must not race each other (a stream has one producer).
class StreamExecutor {
 public:
  /// Dedicates `options.lanes` lanes of `pool` (default: every lane) to
  /// stream service until destruction. With the default, the pool cannot
  /// run other work while the executor lives; with fewer lanes, the rest
  /// of the pool stays available for other executors or ordinary work.
  explicit StreamExecutor(par::ThreadPool& pool,
                          StreamExecutorOptions options = {});
  ~StreamExecutor();

  StreamExecutor(const StreamExecutor&) = delete;
  StreamExecutor& operator=(const StreamExecutor&) = delete;

  /// Register a stream: builds the stream's plan (tile order, arena,
  /// kernel) from `corrector`, which must outlive the stream. Throws
  /// InvalidArgument when max_streams are already registered.
  StreamId add_stream(const core::Corrector& corrector, int channels = 1,
                      FrameRetireFn on_retire = {});

  /// Register a *plan stream*: a lane with no corrector of its own, whose
  /// every submitted frame carries its own ExecutionPlan (the serving
  /// layer's cached per-view plans). The plan must stay valid — and must
  /// not execute anywhere else — until the frame retires; frames within
  /// the lane are serialized, so two frames carrying the same plan on the
  /// same lane never race its workspace. `queue_depth` overrides the
  /// executor-wide option for this lane (0 = use the option); the serving
  /// layer sizes it to its own request bound so lane submits never block
  /// inside a worker's retire path.
  StreamId add_plan_stream(FrameRetireFn on_retire = {},
                           std::size_t queue_depth = 0);

  /// Drain the stream's queued and in-flight frames, then unregister it.
  /// Must not race submit() on the same id.
  void remove_stream(StreamId id);

  /// Enqueue one frame; returns the stream's 1-based frame sequence
  /// number. Returns immediately while the stream holds fewer than
  /// queue_depth pending frames, otherwise blocks (backpressure). The
  /// src/dst buffers must stay valid until the frame retires.
  std::uint64_t submit(StreamId id, img::ConstImageView<std::uint8_t> src,
                       img::ImageView<std::uint8_t> dst);

  /// Plan-stream submit: enqueue one frame executing `plan` (see
  /// add_plan_stream). The plan's key must match the frame geometry.
  std::uint64_t submit(StreamId id, const core::ExecutionPlan& plan,
                       img::ConstImageView<std::uint8_t> src,
                       img::ImageView<std::uint8_t> dst);

  /// Block until the stream has retired frame `seq`.
  void wait(StreamId id, std::uint64_t seq);

  /// Block until every registered stream is idle, then rethrow the first
  /// kernel error, if any.
  void drain();

  /// Snapshot of the stream's cumulative service counters.
  [[nodiscard]] rt::StreamStats stats(StreamId id) const;

  /// The stream's plan (tile decomposition, last frame's instrumentation).
  /// Invalid for plan streams — their plans arrive per frame.
  [[nodiscard]] const core::ExecutionPlan& plan(StreamId id) const;

  /// Lanes actually serving this executor (== options.lanes when set).
  [[nodiscard]] unsigned workers() const noexcept {
    return scheduler_.workers();
  }
  [[nodiscard]] std::size_t streams() const;  ///< currently registered

 private:
  /// One queued frame: views + identity + the plan that executes it (the
  /// stream's own plan, or the caller's on plan streams). POD-ish, lives
  /// in the pre-sized ring, so queueing allocates nothing.
  struct PendingFrame {
    const core::ExecutionPlan* plan = nullptr;
    img::ConstImageView<std::uint8_t> src;
    img::ImageView<std::uint8_t> dst;
    std::uint64_t seq = 0;
    double submit_time = 0.0;
  };

  struct Stream;

  // par::StreamJob trampolines (env = Stream*).
  static void run_tile_(void* env, std::uint32_t item, unsigned worker);
  static void retire_frame_(void* env, const par::StealStats& frame);

  StreamId register_(std::unique_ptr<Stream> s);
  std::uint64_t enqueue_(Stream& s, const core::ExecutionPlan& plan,
                         img::ConstImageView<std::uint8_t> src,
                         img::ImageView<std::uint8_t> dst);
  void activate_locked_(Stream& s, const PendingFrame& frame);
  [[nodiscard]] Stream& stream_ref_(StreamId id) const;
  void wait_all_idle_() noexcept;

  StreamExecutorOptions options_;
  par::ThreadPool& pool_;
  par::StreamScheduler scheduler_;
  par::WorkStealingPool service_;
  rt::Stopwatch epoch_;  ///< all stream timestamps are seconds since this
  /// First kernel exception, rethrown by drain().
  std::mutex error_mu_;
  std::exception_ptr error_;
  /// Fixed-capacity registry: entries never move, so a submit on stream A
  /// never races an add/remove of stream B. Guarded by registry_mu_ for
  /// add/remove; readers access their own (handed-off) entry lock-free.
  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<Stream>> streams_;
};

}  // namespace fisheye::stream
