#include "stream/stream_executor.hpp"

#include <algorithm>
#include <atomic>
#include <string>

#include "util/error.hpp"

namespace fisheye::stream {

/// Per-stream state. Lifecycle: created by add_stream (before any worker
/// can see the slot), destroyed by remove_stream (after the slot went
/// idle). Frame flow: submit() either activates a frame directly (stream
/// idle) or parks it in the ring; the retire path pops the ring and posts
/// the next frame — so within a stream, activation is serialized and the
/// plan's workspace/instrumentation are only ever touched by one frame.
struct StreamExecutor::Stream {
  StreamExecutor* owner = nullptr;
  StreamId id = 0;
  std::size_t slot = 0;  ///< par::StreamScheduler slot index
  const core::Corrector* corrector = nullptr;
  core::ExecutionPlan plan;
  /// Plan stream (add_plan_stream): no corrector, `plan` stays invalid,
  /// every frame carries its own plan.
  bool external_plans = false;
  FrameRetireFn on_retire;

  /// The in-flight frame. Written by activate_locked_ (no frame in
  /// flight at that point), read by every worker serving its tiles; the
  /// scheduler's post/pop ordering makes the writes visible.
  struct Active {
    const core::ExecutionPlan* plan = nullptr;
    img::ConstImageView<std::uint8_t> src;
    img::ImageView<std::uint8_t> dst;
    std::uint64_t seq = 0;
    double submit_time = 0.0;
    /// First-tile latch: the winner stamps start_time (the wait metric).
    std::atomic<bool> started{false};
    double start_time = 0.0;
  } active;

  /// Pending-frame ring (capacity = queue_depth) + stream bookkeeping,
  /// guarded by mu. cv signals retires (backpressure release, wait()).
  mutable std::mutex mu;
  std::condition_variable cv;
  std::vector<PendingFrame> ring;
  std::size_t ring_head = 0;
  std::size_t ring_count = 0;
  bool frame_in_flight = false;
  bool removing = false;
  std::uint64_t next_seq = 0;
  std::uint64_t retired_seq = 0;
  rt::StreamStats stats;
};

StreamExecutor::StreamExecutor(par::ThreadPool& pool,
                               StreamExecutorOptions options)
    : options_(options),
      pool_(pool),
      scheduler_(options.lanes == 0 ? pool.size() : options.lanes,
                 options.max_streams, options.steal),
      service_(pool) {
  FE_EXPECTS(options_.max_streams >= 1);
  FE_EXPECTS(options_.queue_depth >= 1);
  FE_EXPECTS(options_.lanes <= pool.size());
  streams_.resize(options_.max_streams);
  service_.start_service(scheduler_);
}

StreamExecutor::~StreamExecutor() {
  wait_all_idle_();
  service_.stop_service();
}

StreamId StreamExecutor::add_stream(const core::Corrector& corrector,
                                    int channels, FrameRetireFn on_retire) {
  auto s = std::make_unique<Stream>();
  s->owner = this;
  s->corrector = &corrector;
  s->plan =
      corrector.prepare_stream(channels, options_.tile_w, options_.tile_h);
  s->on_retire = std::move(on_retire);
  s->ring.resize(options_.queue_depth);
  return register_(std::move(s));
}

StreamId StreamExecutor::add_plan_stream(FrameRetireFn on_retire,
                                         std::size_t queue_depth) {
  auto s = std::make_unique<Stream>();
  s->owner = this;
  s->external_plans = true;
  s->on_retire = std::move(on_retire);
  s->ring.resize(queue_depth != 0 ? queue_depth : options_.queue_depth);
  return register_(std::move(s));
}

StreamId StreamExecutor::register_(std::unique_ptr<Stream> s) {
  const std::scoped_lock lock(registry_mu_);
  for (StreamId id = 0; id < streams_.size(); ++id) {
    if (streams_[id]) continue;
    const std::size_t slot = scheduler_.create_slot();
    // Slots and registry entries are both max_streams: a free entry
    // guarantees a free slot.
    FE_ENSURES(slot != par::StreamScheduler::kNoSlot);
    s->id = id;
    s->slot = slot;
    streams_[id] = std::move(s);
    return id;
  }
  throw InvalidArgument("StreamExecutor: all " +
                        std::to_string(options_.max_streams) +
                        " stream slots are in use");
}

void StreamExecutor::remove_stream(StreamId id) {
  Stream& s = stream_ref_(id);
  {
    std::unique_lock<std::mutex> lock(s.mu);
    s.removing = true;  // fail-fast any racing submit (contract violation)
    s.cv.wait(lock, [&s] { return !s.frame_in_flight && s.ring_count == 0; });
  }
  scheduler_.destroy_slot(s.slot);
  const std::scoped_lock lock(registry_mu_);
  streams_[id].reset();
}

std::uint64_t StreamExecutor::submit(StreamId id,
                                     img::ConstImageView<std::uint8_t> src,
                                     img::ImageView<std::uint8_t> dst) {
  Stream& s = stream_ref_(id);
  FE_EXPECTS(!s.external_plans);
  // Geometry gate: the plan was built for the corrector's shapes; a frame
  // of any other shape would index the tile rects out of bounds.
  FE_EXPECTS(s.plan.matches(s.corrector->make_context(src, dst),
                            core::Corrector::kStreamPlanName));
  return enqueue_(s, s.plan, src, dst);
}

std::uint64_t StreamExecutor::submit(StreamId id,
                                     const core::ExecutionPlan& plan,
                                     img::ConstImageView<std::uint8_t> src,
                                     img::ImageView<std::uint8_t> dst) {
  Stream& s = stream_ref_(id);
  FE_EXPECTS(s.external_plans);
  FE_EXPECTS(plan.valid());
  // Same geometry gate as the corrector path, against the carried plan's
  // key: tile rects index into dst, the kernel samples src.
  const core::PlanKey& k = plan.key();
  FE_EXPECTS(src.width == k.src_width && src.height == k.src_height);
  FE_EXPECTS(dst.width == k.dst_width && dst.height == k.dst_height);
  FE_EXPECTS(src.channels == k.channels && dst.channels == k.channels);
  return enqueue_(s, plan, src, dst);
}

std::uint64_t StreamExecutor::enqueue_(Stream& s,
                                       const core::ExecutionPlan& plan,
                                       img::ConstImageView<std::uint8_t> src,
                                       img::ImageView<std::uint8_t> dst) {
  std::unique_lock<std::mutex> lock(s.mu);
  FE_EXPECTS(!s.removing);
  s.cv.wait(lock, [&s] { return s.ring_count < s.ring.size(); });
  const std::uint64_t seq = ++s.next_seq;
  PendingFrame frame{&plan, src, dst, seq, epoch_.elapsed_seconds()};
  if (s.frame_in_flight) {
    s.ring[(s.ring_head + s.ring_count) % s.ring.size()] = frame;
    ++s.ring_count;
  } else {
    s.frame_in_flight = true;
    activate_locked_(s, frame);
  }
  return seq;
}

void StreamExecutor::wait(StreamId id, std::uint64_t seq) {
  Stream& s = stream_ref_(id);
  std::unique_lock<std::mutex> lock(s.mu);
  s.cv.wait(lock, [&s, seq] { return s.retired_seq >= seq; });
}

void StreamExecutor::drain() {
  wait_all_idle_();
  const std::scoped_lock lock(error_mu_);
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

rt::StreamStats StreamExecutor::stats(StreamId id) const {
  Stream& s = stream_ref_(id);
  const std::scoped_lock lock(s.mu);
  return s.stats;
}

const core::ExecutionPlan& StreamExecutor::plan(StreamId id) const {
  return stream_ref_(id).plan;
}

std::size_t StreamExecutor::streams() const {
  const std::scoped_lock lock(registry_mu_);
  std::size_t n = 0;
  for (const auto& s : streams_)
    if (s) ++n;
  return n;
}

void StreamExecutor::activate_locked_(Stream& s, const PendingFrame& frame) {
  const core::ExecutionPlan& plan = *frame.plan;
  plan.instrumentation().begin_frame(plan.tiles().size());
  s.active.plan = frame.plan;
  s.active.src = frame.src;
  s.active.dst = frame.dst;
  s.active.seq = frame.seq;
  s.active.submit_time = frame.submit_time;
  s.active.start_time = 0.0;
  s.active.started.store(false, std::memory_order_relaxed);

  par::StreamJob job;
  job.order = plan.workspace().steal_order.data();
  job.count = plan.workspace().steal_order.size();
  job.env = &s;
  job.run = &run_tile_;
  job.retire = &retire_frame_;
  scheduler_.post(s.slot, job);
}

void StreamExecutor::run_tile_(void* env, std::uint32_t item,
                               unsigned /*worker*/) {
  auto* s = static_cast<Stream*>(env);
  Stream::Active& a = s->active;
  if (!a.started.load(std::memory_order_relaxed) &&
      !a.started.exchange(true, std::memory_order_relaxed))
    a.start_time = s->owner->epoch_.elapsed_seconds();
  const rt::Stopwatch sw;
  try {
    a.plan->kernel()(a.src, a.dst, a.plan->tiles()[item]);
  } catch (...) {
    // Kernels only throw on contract violations; keep the first one for
    // drain() — the scheduler itself must never see an exception.
    const std::scoped_lock lock(s->owner->error_mu_);
    if (!s->owner->error_) s->owner->error_ = std::current_exception();
  }
  a.plan->instrumentation().tile_seconds[item] = sw.elapsed_seconds();
}

void StreamExecutor::retire_frame_(void* env, const par::StealStats& frame) {
  auto* s = static_cast<Stream*>(env);
  StreamExecutor& exec = *s->owner;
  const core::ExecutionPlan& plan = *s->active.plan;
  const std::size_t tiles = plan.tiles().size();
  // Race-free by construction: the retiring worker is the only one still
  // touching the frame, so it merges the frame's counters into the plan
  // and checks the conservation invariant — every tile ran exactly once,
  // as local or stolen.
  FE_ENSURES(frame.local + frame.stolen == tiles);
  core::PlanInstrumentation& inst = plan.instrumentation();
  inst.local_tiles = frame.local;
  inst.stolen_tiles = frame.stolen;
  inst.steals = frame.steals;

  const double end = exec.epoch_.elapsed_seconds();
  const bool started = s->active.started.load(std::memory_order_relaxed);
  const double wait =
      (started ? s->active.start_time : end) - s->active.submit_time;
  const double latency = end - s->active.submit_time;
  const std::uint64_t seq = s->active.seq;
  {
    const std::scoped_lock lock(s->mu);
    rt::StreamStats& st = s->stats;
    st.frames += 1;
    st.tiles_local += frame.local;
    st.tiles_stolen += frame.stolen;
    st.steals += frame.steals;
    st.total_wait_seconds += wait;
    st.max_wait_seconds = std::max(st.max_wait_seconds, wait);
    if (wait > exec.options_.starvation_wait_seconds) ++st.starvation_events;
    s->retired_seq = seq;
  }
  // User callback OUTSIDE the stream lock so it may submit the next frame.
  if (s->on_retire) s->on_retire(s->id, seq, latency);
  {
    const std::scoped_lock lock(s->mu);
    if (s->ring_count > 0) {
      const PendingFrame next = s->ring[s->ring_head];
      s->ring_head = (s->ring_head + 1) % s->ring.size();
      --s->ring_count;
      exec.activate_locked_(*s, next);
    } else {
      s->frame_in_flight = false;
    }
    // Notify while still holding the lock: a waiter in remove_stream()
    // may destroy the Stream (and this cv) the moment it observes idle,
    // so an unlocked notify could touch freed memory.
    s->cv.notify_all();
  }
}

StreamExecutor::Stream& StreamExecutor::stream_ref_(StreamId id) const {
  FE_EXPECTS(id < streams_.size());
  // Lock-free read: the vector never resizes and the caller owns the entry
  // (an id is only known to the thread add_stream returned it to, or to
  // whoever it was handed to with the usual happens-before).
  Stream* s = streams_[id].get();
  FE_EXPECTS(s != nullptr);
  return *s;
}

void StreamExecutor::wait_all_idle_() noexcept {
  for (StreamId id = 0; id < streams_.size(); ++id) {
    Stream* s = nullptr;
    {
      const std::scoped_lock lock(registry_mu_);
      s = streams_[id].get();
    }
    if (s == nullptr) continue;
    std::unique_lock<std::mutex> lock(s->mu);
    s->cv.wait(lock,
               [s] { return !s->frame_in_flight && s->ring_count == 0; });
  }
}

}  // namespace fisheye::stream
