// BackendRegistry registration for the cluster simulator ("cluster" kind).
// Forced out of the static archive by the linker anchor below.
#include <memory>

#include "cluster/cluster_sim.hpp"
#include "core/backend_registry.hpp"
#include "util/error.hpp"

extern "C" void fisheye_cluster_register_backends() {}

namespace fisheye::cluster {

namespace {

std::unique_ptr<core::Backend> make_cluster(core::BackendSpec& spec) {
  ClusterConfig c;
  c.ranks = spec.value_int("ranks", c.ranks);
  core::require_spec_range(spec, "ranks", c.ranks, 1, 1024);
  if (const auto net = spec.value("net")) {
    if (*net == "gige") {
      c.network = InterconnectModel::gigabit_ethernet();
    } else if (*net == "10gige") {
      c.network = InterconnectModel::ten_gige();
    } else if (*net == "ib" || *net == "ib-qdr") {
      c.network = InterconnectModel::infiniband_qdr();
    } else {
      throw InvalidArgument("backend spec '" + spec.text() +
                            "': net must be gige, 10gige, or ib");
    }
  }
  if (spec.flag("bcast")) c.distribution = Distribution::FullBroadcast;
  if (spec.flag("scatter")) c.distribution = Distribution::StripScatter;
  c.node_speed = spec.value_double("speed", c.node_speed);
  if (c.node_speed <= 0.0)
    throw InvalidArgument("backend spec '" + spec.text() +
                          "': option 'speed' must be positive");
  spec.finish("ranks=N, net=gige|10gige|ib, scatter|bcast, speed=X");
  return std::make_unique<ClusterSimBackend>(c);
}

const core::BackendRegistrar register_cluster{
    "cluster", "ranks=N, net=gige|10gige|ib, scatter|bcast, speed=X",
    make_cluster};

}  // namespace

}  // namespace fisheye::cluster
