// Distributed-memory (message-passing) execution simulator.
//
// The scale-out port of the kernel: a root node holds the frame, scatters
// work to R ranks over an interconnect, ranks compute their strips, and
// results gather back — the classic MPI master/worker layout for image
// pipelines. As with the accelerator simulators, execution is functional
// (each rank really computes from only the bytes it was "sent" — a private
// copy of its source window, so distribution bugs corrupt output and are
// caught by tests) while time is a hybrid model: per-strip compute is
// measured on this host (scaled by a per-node speed factor), communication
// is latency + size/bandwidth per message with sends serialized at the
// root (single NIC).
//
// Two distribution strategies, the real design decision of such ports:
//  * StripScatter — each rank receives only its strip's map slice plus the
//    source bounding box its strip actually samples (minimal traffic,
//    needs the bbox analysis);
//  * FullBroadcast — each rank receives the whole source frame plus its
//    map slice (simple, bandwidth-hungry; wins only on tiny rank counts or
//    fat links).
#pragma once

#include <vector>

#include "accel/cost_model.hpp"
#include "core/backend.hpp"

namespace fisheye::cluster {

/// Point-to-point interconnect model.
struct InterconnectModel {
  const char* name = "custom";
  double latency_s = 10e-6;
  double bandwidth_bytes_per_s = 1e9;

  /// Time for one message of `bytes`.
  [[nodiscard]] double message_time(std::size_t bytes) const noexcept {
    return latency_s +
           static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }

  static InterconnectModel gigabit_ethernet() {
    return {"gige", 50e-6, 118e6};
  }
  static InterconnectModel infiniband_qdr() {
    return {"ib-qdr", 1.3e-6, 3.2e9};
  }
  static InterconnectModel ten_gige() { return {"10gige", 20e-6, 1.18e9}; }
};

enum class Distribution { StripScatter, FullBroadcast };

[[nodiscard]] constexpr const char* distribution_name(Distribution d) noexcept {
  switch (d) {
    case Distribution::StripScatter: return "strip-scatter";
    case Distribution::FullBroadcast: return "full-broadcast";
  }
  return "?";
}

struct ClusterConfig {
  int ranks = 4;
  InterconnectModel network = InterconnectModel::gigabit_ethernet();
  Distribution distribution = Distribution::StripScatter;
  /// Per-node compute speed relative to this host (cluster nodes of the
  /// era were often slower per core than the measurement machine).
  double node_speed = 1.0;
};

/// Per-frame result beyond the functional output.
struct ClusterFrameStats {
  double seconds = 0.0;        ///< modeled end-to-end frame time
  double fps = 0.0;
  double compute_seconds = 0.0;   ///< sum over ranks (work)
  double comm_seconds = 0.0;      ///< root-serialized send+recv time
  std::size_t bytes_scattered = 0;
  std::size_t bytes_gathered = 0;
  int ranks = 0;
  /// Speedup over doing all measured strip work on one node.
  double speedup = 0.0;
  double efficiency = 0.0;  ///< speedup / ranks
};

/// core::Backend adapter: FloatLut + bilinear + constant border (the
/// production configuration; matches the accelerator backends).
///
/// The plan is the distribution decision: the strip decomposition plus the
/// per-strip source bounding-box analysis (what each rank must be sent),
/// computed once per (geometry, map) instead of per frame. Registered with
/// BackendRegistry as "cluster" (see cluster_registry.cpp).
class ClusterSimBackend final : public core::Backend {
 public:
  explicit ClusterSimBackend(ClusterConfig config) : config_(config) {}

  using Backend::execute;
  [[nodiscard]] core::ExecutionPlan plan(
      const core::ExecContext& ctx) override;
  void execute(const core::ExecutionPlan& plan,
               const core::ExecContext& ctx) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const ClusterFrameStats& last_stats() const noexcept {
    return last_stats_;
  }
  [[nodiscard]] const ClusterConfig& config() const noexcept {
    return config_;
  }

 private:
  ClusterConfig config_;
  ClusterFrameStats last_stats_;
};

}  // namespace fisheye::cluster
