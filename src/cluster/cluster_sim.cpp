#include "cluster/cluster_sim.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "core/remap.hpp"
#include "parallel/partition.hpp"
#include "runtime/timer.hpp"
#include "util/error.hpp"

namespace fisheye::cluster {

void ClusterSimBackend::execute(const core::ExecContext& ctx) {
  FE_EXPECTS(ctx.mode == core::MapMode::FloatLut && ctx.map != nullptr);
  FE_EXPECTS(ctx.opts.interp == core::Interp::Bilinear);
  FE_EXPECTS(ctx.opts.border == img::BorderMode::Constant);
  FE_EXPECTS(config_.ranks >= 1 && config_.ranks <= 1024);
  FE_EXPECTS(config_.node_speed > 0.0);

  const core::WarpMap& map = *ctx.map;
  const int ranks = std::min(config_.ranks, ctx.dst.height);
  const std::vector<par::Rect> strips = par::partition(
      ctx.dst.width, ctx.dst.height, par::PartitionKind::RowBlocks, ranks);

  ClusterFrameStats stats;
  stats.ranks = ranks;
  const InterconnectModel& net = config_.network;

  double scatter_clock = 0.0;  // root serializes its sends
  std::vector<double> rank_done(strips.size(), 0.0);
  std::vector<double> compute_s(strips.size(), 0.0);

  const std::size_t ch = static_cast<std::size_t>(ctx.src.channels);
  for (std::size_t r = 0; r < strips.size(); ++r) {
    const par::Rect& strip = strips[r];
    const std::size_t strip_px = static_cast<std::size_t>(strip.area());
    const std::size_t map_bytes = strip_px * 2 * sizeof(float);

    // --- scatter: map slice + source data ---
    const par::Rect box =
        core::source_bbox(map, strip, ctx.src.width, ctx.src.height);
    std::size_t src_bytes = 0;
    par::Rect window = box;
    if (config_.distribution == Distribution::FullBroadcast) {
      window = {0, 0, ctx.src.width, ctx.src.height};
      src_bytes = static_cast<std::size_t>(window.area()) * ch;
    } else if (!box.empty()) {
      src_bytes = static_cast<std::size_t>(box.area()) * ch;
    }
    stats.bytes_scattered += map_bytes + src_bytes;
    scatter_clock += net.message_time(map_bytes + src_bytes);
    const double work_start = scatter_clock;

    // --- functional compute from the rank's private copy only ---
    img::Image8 local_out(strip.width(), strip.height(), ctx.src.channels);
    const rt::Stopwatch sw;
    if (window.empty()) {
      // Whole strip outside the source: rank just emits fill.
      local_out.fill(ctx.opts.fill);
    } else {
      img::Image8 local_src(window.width(), window.height(),
                            ctx.src.channels);
      for (int y = 0; y < window.height(); ++y)
        std::memcpy(local_src.row(y),
                    ctx.src.row(window.y0 + y) +
                        static_cast<std::size_t>(window.x0) * ch,
                    static_cast<std::size_t>(window.width()) * ch);
      // Strip-local map view: reuse the global map with the dst offset by
      // building a shifted rect remap into a full-size proxy is wasteful;
      // instead remap directly into the real dst via the offset variant,
      // then copy into local_out to model the rank-private buffer.
      img::ImageView<std::uint8_t> dst_strip = ctx.dst.rows(strip.y0,
                                                            strip.height());
      // Build a strip map referencing global dst coordinates.
      core::remap_rect_offset(local_src.view(), ctx.dst, map, strip,
                              window.x0, window.y0, ctx.opts);
      for (int y = 0; y < strip.height(); ++y)
        std::memcpy(local_out.row(y),
                    dst_strip.row(y),
                    static_cast<std::size_t>(strip.width()) * ch);
    }
    compute_s[r] = sw.elapsed_seconds() / config_.node_speed;
    stats.compute_seconds += compute_s[r];

    // --- gather: strip result back to root ---
    const std::size_t out_bytes = strip_px * ch;
    stats.bytes_gathered += out_bytes;
    // Arrival at root cannot precede compute completion; root receives
    // sequentially after its sends are done (single-NIC model).
    rank_done[r] = work_start + compute_s[r];

    // Write the rank's buffer into the frame (functional gather).
    for (int y = 0; y < strip.height(); ++y)
      std::memcpy(ctx.dst.row(strip.y0 + y) /* root frame */,
                  local_out.row(y),
                  static_cast<std::size_t>(strip.width()) * ch);
  }

  // Root receive loop: drains results in completion order, each receive
  // occupying the NIC for its message time.
  std::vector<std::size_t> order(strips.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rank_done[a] < rank_done[b];
  });
  double recv_clock = scatter_clock;
  for (const std::size_t r : order) {
    const std::size_t out_bytes =
        static_cast<std::size_t>(strips[r].area()) * ch;
    recv_clock = std::max(recv_clock, rank_done[r]) +
                 net.message_time(out_bytes);
  }

  stats.comm_seconds =
      scatter_clock + (recv_clock - std::max(scatter_clock,
                                             *std::max_element(
                                                 rank_done.begin(),
                                                 rank_done.end())));
  if (stats.comm_seconds < 0.0) stats.comm_seconds = scatter_clock;
  stats.seconds = recv_clock;
  stats.fps = stats.seconds > 0.0 ? 1.0 / stats.seconds : 0.0;
  stats.speedup =
      stats.seconds > 0.0 ? stats.compute_seconds / stats.seconds : 0.0;
  stats.efficiency = stats.speedup / static_cast<double>(ranks);
  last_stats_ = stats;
}

std::string ClusterSimBackend::name() const {
  std::ostringstream os;
  os << "cluster-sim(" << config_.ranks << "r," << config_.network.name
     << ',' << distribution_name(config_.distribution) << ')';
  return os.str();
}

}  // namespace fisheye::cluster
