#include "cluster/cluster_sim.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>

#include "core/backend_registry.hpp"
#include "core/kernel.hpp"
#include "parallel/partition.hpp"
#include "runtime/timer.hpp"
#include "util/error.hpp"

namespace fisheye::cluster {

namespace {

/// Plan state: what each rank is sent — its source window (bounding box
/// for StripScatter, the whole frame for FullBroadcast; empty when the
/// strip sees no source at all).
struct ClusterPlanState {
  std::vector<par::Rect> windows;
};

}  // namespace

core::ExecutionPlan ClusterSimBackend::plan(const core::ExecContext& ctx) {
  FE_EXPECTS(ctx.mode == core::MapMode::FloatLut && ctx.map != nullptr);
  FE_EXPECTS(ctx.opts.interp == core::Interp::Bilinear);
  FE_EXPECTS(ctx.opts.border == img::BorderMode::Constant);
  FE_EXPECTS(config_.ranks >= 1 && config_.ranks <= 1024);
  FE_EXPECTS(config_.node_speed > 0.0);

  const int ranks = std::min(config_.ranks, ctx.dst.height);
  std::vector<par::Rect> strips = par::partition(
      ctx.dst.width, ctx.dst.height, par::PartitionKind::RowBlocks, ranks);

  // The distribution analysis (which source window each rank needs) is the
  // expensive part of scattering; doing it here means steady-state frames
  // only pay for copies and the modeled message times.
  auto state = std::make_shared<ClusterPlanState>();
  state->windows.reserve(strips.size());
  for (const par::Rect& strip : strips) {
    if (config_.distribution == Distribution::FullBroadcast)
      state->windows.push_back({0, 0, ctx.src.width, ctx.src.height});
    else
      state->windows.push_back(core::source_bbox(*ctx.map, strip,
                                                 ctx.src.width,
                                                 ctx.src.height));
  }
  return make_plan(ctx, std::move(strips), std::move(state));
}

void ClusterSimBackend::execute(const core::ExecutionPlan& plan,
                                const core::ExecContext& ctx) {
  check_plan(plan, ctx);
  const core::ResolvedKernel& kernel = plan.kernel();
  const std::vector<par::Rect>& strips = plan.tiles();
  const ClusterPlanState& state = *plan.state<ClusterPlanState>();

  core::PlanInstrumentation& inst = plan.instrumentation();
  inst.begin_frame(strips.size());

  ClusterFrameStats stats;
  stats.ranks = static_cast<int>(strips.size());
  const InterconnectModel& net = config_.network;

  double scatter_clock = 0.0;  // root serializes its sends
  std::vector<double> rank_done(strips.size(), 0.0);
  std::vector<double> compute_s(strips.size(), 0.0);

  const std::size_t ch = static_cast<std::size_t>(ctx.src.channels);
  for (std::size_t r = 0; r < strips.size(); ++r) {
    const par::Rect& strip = strips[r];
    const par::Rect& window = state.windows[r];
    const std::size_t strip_px = static_cast<std::size_t>(strip.area());
    const std::size_t map_bytes = strip_px * 2 * sizeof(float);

    // --- scatter: map slice + source data ---
    const std::size_t src_bytes =
        window.empty() ? 0 : static_cast<std::size_t>(window.area()) * ch;
    stats.bytes_scattered += map_bytes + src_bytes;
    scatter_clock += net.message_time(map_bytes + src_bytes);
    const double work_start = scatter_clock;

    // --- functional compute from the rank's private copy only ---
    img::Image8 local_out(strip.width(), strip.height(), ctx.src.channels);
    const rt::Stopwatch sw;
    if (window.empty()) {
      // Whole strip outside the source: rank just emits fill.
      local_out.fill(ctx.opts.fill);
    } else {
      img::Image8 local_src(window.width(), window.height(),
                            ctx.src.channels);
      for (int y = 0; y < window.height(); ++y)
        std::memcpy(local_src.row(y),
                    ctx.src.row(window.y0 + y) +
                        static_cast<std::size_t>(window.x0) * ch,
                    static_cast<std::size_t>(window.width()) * ch);
      // Strip-local map view: reuse the global map with the dst offset by
      // building a shifted rect remap into a full-size proxy is wasteful;
      // instead run the plan's windowed kernel directly into the real dst,
      // then copy into local_out to model the rank-private buffer.
      img::ImageView<std::uint8_t> dst_strip = ctx.dst.rows(strip.y0,
                                                            strip.height());
      kernel.run_windowed(local_src.view(), ctx.dst, strip, window.x0,
                          window.y0);
      for (int y = 0; y < strip.height(); ++y)
        std::memcpy(local_out.row(y),
                    dst_strip.row(y),
                    static_cast<std::size_t>(strip.width()) * ch);
    }
    compute_s[r] = sw.elapsed_seconds() / config_.node_speed;
    stats.compute_seconds += compute_s[r];
    inst.tile_seconds[r] = compute_s[r];

    // --- gather: strip result back to root ---
    const std::size_t out_bytes = strip_px * ch;
    stats.bytes_gathered += out_bytes;
    // Arrival at root cannot precede compute completion; root receives
    // sequentially after its sends are done (single-NIC model).
    rank_done[r] = work_start + compute_s[r];

    // Write the rank's buffer into the frame (functional gather).
    for (int y = 0; y < strip.height(); ++y)
      std::memcpy(ctx.dst.row(strip.y0 + y) /* root frame */,
                  local_out.row(y),
                  static_cast<std::size_t>(strip.width()) * ch);
  }

  // Root receive loop: drains results in completion order, each receive
  // occupying the NIC for its message time.
  std::vector<std::size_t> order(strips.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rank_done[a] < rank_done[b];
  });
  double recv_clock = scatter_clock;
  for (const std::size_t r : order) {
    const std::size_t out_bytes =
        static_cast<std::size_t>(strips[r].area()) * ch;
    recv_clock = std::max(recv_clock, rank_done[r]) +
                 net.message_time(out_bytes);
  }

  stats.comm_seconds =
      scatter_clock + (recv_clock - std::max(scatter_clock,
                                             *std::max_element(
                                                 rank_done.begin(),
                                                 rank_done.end())));
  if (stats.comm_seconds < 0.0) stats.comm_seconds = scatter_clock;
  stats.seconds = recv_clock;
  stats.fps = stats.seconds > 0.0 ? 1.0 / stats.seconds : 0.0;
  stats.speedup =
      stats.seconds > 0.0 ? stats.compute_seconds / stats.seconds : 0.0;
  stats.efficiency = stats.speedup / static_cast<double>(stats.ranks);
  last_stats_ = stats;

  inst.bytes_in = stats.bytes_scattered;
  inst.bytes_out = stats.bytes_gathered;
  inst.modeled = true;
}

std::string ClusterSimBackend::name() const {
  const ClusterConfig def;
  core::SpecBuilder spec("cluster");
  if (config_.ranks != def.ranks) spec.opt("ranks", config_.ranks);
  const std::string net = config_.network.name;
  if (net != def.network.name)
    spec.opt("net", net == "ib-qdr" ? std::string("ib") : net);
  if (config_.distribution == Distribution::FullBroadcast) spec.opt("bcast");
  if (config_.node_speed != def.node_speed)
    spec.opt("speed", config_.node_speed);
  return spec.str();
}

}  // namespace fisheye::cluster
