// Geometric/image quality analysis used by the accuracy experiments.
//
// Three instruments:
//  * line straightness — the visual definition of "distortion corrected":
//    fit a line to the centroid track of a bright stripe and report the
//    worst deviation (px);
//  * radial contrast profile — Michelson contrast of a Siemens-star target
//    per radial band (an MTF proxy): shows where interpolation or residual
//    distortion destroys resolution;
//  * warp-error field statistics — percentile summary of the geometric
//    difference between two maps (e.g. exact vs polynomial baseline).
#pragma once

#include <vector>

#include "core/mapping.hpp"
#include "image/image.hpp"

namespace fisheye::analysis {

/// Deviation-from-straight of a bright (high-intensity) stripe crossing
/// the image vertically: for each row in [y0, y1) compute the intensity
/// centroid x, fit a least-squares line x(y), return the maximum absolute
/// residual in pixels. Rows with no signal are skipped.
struct StraightnessReport {
  double max_deviation_px = 0.0;
  double rms_deviation_px = 0.0;
  double slope = 0.0;   ///< fitted px per row (shear)
  int rows_used = 0;
};
StraightnessReport stripe_straightness(img::ConstImageView<std::uint8_t> im,
                                       int y0, int y1,
                                       std::uint8_t threshold = 128);

/// Robust Michelson contrast (p95-p5)/(p95+p5) of `im` per radial band
/// around the image centre; `bands` equal-width rings out to `max_radius`.
/// Percentiles rather than extremes so blur registers and ringing
/// overshoot does not inflate the score.
std::vector<double> radial_contrast(img::ConstImageView<std::uint8_t> im,
                                    int bands, double max_radius);

/// Percentile summary of the per-pixel Euclidean distance between two maps
/// (restricted to entries where both are valid for a src_w x src_h source).
struct MapErrorStats {
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  std::size_t samples = 0;
};
MapErrorStats map_error_stats(const core::WarpMap& a, const core::WarpMap& b,
                              int src_width, int src_height);

}  // namespace fisheye::analysis
