#include "analysis/quality.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/error.hpp"

namespace fisheye::analysis {

StraightnessReport stripe_straightness(img::ConstImageView<std::uint8_t> im,
                                       int y0, int y1,
                                       std::uint8_t threshold) {
  FE_EXPECTS(im.channels == 1);
  FE_EXPECTS(y0 >= 0 && y1 <= im.height && y0 < y1);

  std::vector<double> ys, xs;
  for (int y = y0; y < y1; ++y) {
    const std::uint8_t* row = im.row(y);
    double num = 0.0, den = 0.0;
    for (int x = 0; x < im.width; ++x) {
      if (row[x] < threshold) continue;
      num += static_cast<double>(x) * row[x];
      den += row[x];
    }
    if (den <= 0.0) continue;
    ys.push_back(static_cast<double>(y));
    xs.push_back(num / den);
  }

  StraightnessReport report;
  report.rows_used = static_cast<int>(ys.size());
  if (ys.size() < 2) return report;

  // Least-squares line x = a + b*y.
  double sy = 0.0, sx = 0.0, syy = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < ys.size(); ++i) {
    sy += ys[i];
    sx += xs[i];
    syy += ys[i] * ys[i];
    sxy += ys[i] * xs[i];
  }
  const auto n = static_cast<double>(ys.size());
  const double denom = n * syy - sy * sy;
  const double b = denom != 0.0 ? (n * sxy - sy * sx) / denom : 0.0;
  const double a = (sx - b * sy) / n;
  report.slope = b;

  double worst = 0.0, acc = 0.0;
  for (std::size_t i = 0; i < ys.size(); ++i) {
    const double r = xs[i] - (a + b * ys[i]);
    worst = std::max(worst, std::abs(r));
    acc += r * r;
  }
  report.max_deviation_px = worst;
  report.rms_deviation_px = std::sqrt(acc / n);
  return report;
}

std::vector<double> radial_contrast(img::ConstImageView<std::uint8_t> im,
                                    int bands, double max_radius) {
  FE_EXPECTS(im.channels == 1);
  FE_EXPECTS(bands >= 1 && max_radius > 0.0);
  const double cx = 0.5 * (im.width - 1);
  const double cy = 0.5 * (im.height - 1);

  // Percentile-based contrast: raw min/max saturate on any surviving
  // extreme pixel (and on ringing overshoot); the p5/p95 spread tracks
  // actual blur. One 256-bin histogram per band.
  std::vector<std::array<std::size_t, 256>> hist(
      static_cast<std::size_t>(bands));
  for (auto& h : hist) h.fill(0);
  std::vector<std::size_t> count(static_cast<std::size_t>(bands), 0);
  for (int y = 0; y < im.height; ++y) {
    const std::uint8_t* row = im.row(y);
    for (int x = 0; x < im.width; ++x) {
      const double r = std::hypot(x - cx, y - cy);
      if (r >= max_radius) continue;
      const int band = std::min(
          bands - 1, static_cast<int>(r / max_radius * bands));
      ++hist[static_cast<std::size_t>(band)][row[x]];
      ++count[static_cast<std::size_t>(band)];
    }
  }
  auto percentile = [&](int band, double p) {
    const std::size_t target =
        static_cast<std::size_t>(p * static_cast<double>(count[band]));
    std::size_t acc = 0;
    for (int v = 0; v < 256; ++v) {
      acc += hist[static_cast<std::size_t>(band)][static_cast<std::size_t>(v)];
      if (acc > target) return static_cast<double>(v);
    }
    return 255.0;
  };
  std::vector<double> contrast(static_cast<std::size_t>(bands), 0.0);
  for (int b = 0; b < bands; ++b) {
    if (count[static_cast<std::size_t>(b)] == 0) continue;
    const double lo = percentile(b, 0.05);
    const double hi = percentile(b, 0.95);
    const double sum = hi + lo;
    contrast[static_cast<std::size_t>(b)] = sum > 0.0 ? (hi - lo) / sum : 0.0;
  }
  return contrast;
}

MapErrorStats map_error_stats(const core::WarpMap& a, const core::WarpMap& b,
                              int src_width, int src_height) {
  FE_EXPECTS(a.width == b.width && a.height == b.height);
  auto valid = [&](const core::WarpMap& m, std::size_t i) {
    return m.src_x[i] > -1.0f && m.src_y[i] > -1.0f &&
           m.src_x[i] < static_cast<float>(src_width) &&
           m.src_y[i] < static_cast<float>(src_height);
  };
  std::vector<double> errors;
  errors.reserve(a.pixel_count());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.pixel_count(); ++i) {
    if (!valid(a, i) || !valid(b, i)) continue;
    const double e = std::hypot(a.src_x[i] - b.src_x[i],
                                a.src_y[i] - b.src_y[i]);
    errors.push_back(e);
    sum += e;
  }
  MapErrorStats stats;
  stats.samples = errors.size();
  if (errors.empty()) return stats;
  std::sort(errors.begin(), errors.end());
  stats.mean = sum / static_cast<double>(errors.size());
  auto pct = [&](double p) {
    const std::size_t idx = std::min(
        errors.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(errors.size())));
    return errors[idx];
  };
  stats.p50 = pct(0.50);
  stats.p95 = pct(0.95);
  stats.p99 = pct(0.99);
  stats.max = errors.back();
  return stats;
}

}  // namespace fisheye::analysis
