#include "image/io_bmp.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace fisheye::img {

namespace {

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint16_t get_u16(const std::string& s, std::size_t off) {
  if (off + 2 > s.size()) throw IoError("bmp: truncated header");
  return static_cast<std::uint16_t>(
      static_cast<unsigned char>(s[off]) |
      (static_cast<unsigned char>(s[off + 1]) << 8));
}

std::uint32_t get_u32(const std::string& s, std::size_t off) {
  if (off + 4 > s.size()) throw IoError("bmp: truncated header");
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(s[off + static_cast<std::size_t>(i)]);
  return v;
}

}  // namespace

std::string encode_bmp(ConstImageView<std::uint8_t> image) {
  FE_EXPECTS(image.channels == 1 || image.channels == 3);
  FE_EXPECTS(image.width > 0 && image.height > 0);

  const std::uint32_t row_bytes =
      (static_cast<std::uint32_t>(image.width) * 3 + 3) & ~3u;
  const std::uint32_t pixel_bytes =
      row_bytes * static_cast<std::uint32_t>(image.height);
  const std::uint32_t header_bytes = 14 + 40;

  std::string out;
  out.reserve(header_bytes + pixel_bytes);
  // BITMAPFILEHEADER
  out += "BM";
  put_u32(out, header_bytes + pixel_bytes);
  put_u32(out, 0);  // reserved
  put_u32(out, header_bytes);
  // BITMAPINFOHEADER
  put_u32(out, 40);
  put_u32(out, static_cast<std::uint32_t>(image.width));
  put_u32(out, static_cast<std::uint32_t>(image.height));
  put_u16(out, 1);   // planes
  put_u16(out, 24);  // bpp
  put_u32(out, 0);   // BI_RGB
  put_u32(out, pixel_bytes);
  put_u32(out, 2835);  // 72 dpi
  put_u32(out, 2835);
  put_u32(out, 0);
  put_u32(out, 0);

  // Bottom-up raster, BGR order, rows padded to 4 bytes.
  for (int y = image.height - 1; y >= 0; --y) {
    const std::uint8_t* r = image.row(y);
    std::size_t emitted = 0;
    for (int x = 0; x < image.width; ++x) {
      std::uint8_t rgb[3];
      if (image.channels == 1) {
        rgb[0] = rgb[1] = rgb[2] = r[x];
      } else {
        rgb[0] = r[x * 3 + 0];
        rgb[1] = r[x * 3 + 1];
        rgb[2] = r[x * 3 + 2];
      }
      out.push_back(static_cast<char>(rgb[2]));  // B
      out.push_back(static_cast<char>(rgb[1]));  // G
      out.push_back(static_cast<char>(rgb[0]));  // R
      emitted += 3;
    }
    while (emitted++ < row_bytes) out.push_back('\0');
  }
  return out;
}

Image8 decode_bmp(const std::string& s) {
  if (s.size() < 54 || s[0] != 'B' || s[1] != 'M')
    throw IoError("bmp: bad magic");
  const std::uint32_t data_off = get_u32(s, 10);
  const std::uint32_t dib = get_u32(s, 14);
  if (dib < 40) throw IoError("bmp: unsupported DIB header");
  const auto width = static_cast<std::int32_t>(get_u32(s, 18));
  const auto height_raw = static_cast<std::int32_t>(get_u32(s, 22));
  const std::uint16_t bpp = get_u16(s, 28);
  const std::uint32_t compression = get_u32(s, 30);
  if (width <= 0 || height_raw == 0) throw IoError("bmp: bad dimensions");
  if (static_cast<long long>(width) *
          (height_raw < 0 ? -static_cast<long long>(height_raw)
                          : height_raw) >
      (1LL << 28))
    throw IoError("bmp: image too large");
  if (compression != 0) throw IoError("bmp: compressed BMP unsupported");
  if (bpp != 24 && bpp != 32) throw IoError("bmp: only 24/32 bpp supported");

  const bool top_down = height_raw < 0;
  const int height = top_down ? -height_raw : height_raw;
  const std::size_t bytes_pp = bpp / 8;
  const std::size_t row_bytes =
      (static_cast<std::size_t>(width) * bytes_pp + 3) & ~std::size_t{3};
  if (static_cast<std::size_t>(data_off) + row_bytes * height > s.size())
    throw IoError("bmp: truncated raster");

  Image8 image(width, height, 3);
  for (int y = 0; y < height; ++y) {
    const int src_row = top_down ? y : height - 1 - y;
    const char* src = s.data() + data_off + row_bytes * src_row;
    std::uint8_t* dst = image.row(y);
    for (int x = 0; x < width; ++x) {
      const auto* px =
          reinterpret_cast<const unsigned char*>(src + x * bytes_pp);
      dst[x * 3 + 0] = px[2];  // R
      dst[x * 3 + 1] = px[1];  // G
      dst[x * 3 + 2] = px[0];  // B
    }
  }
  return image;
}

void write_bmp(const std::string& path, ConstImageView<std::uint8_t> image) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("bmp: cannot open for write: " + path);
  const std::string bytes = encode_bmp(image);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) throw IoError("bmp: write failed: " + path);
}

Image8 read_bmp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("bmp: cannot open for read: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return decode_bmp(buf.str());
}

}  // namespace fisheye::img
