// Pixel-format conversions for the video pipeline.
//
// Surveillance/automotive sensors of the study's era delivered YUV; the
// pipeline converts to the format the correction kernel wants and back, and
// the conversion cost shows up in the per-frame profile (T1).
#pragma once

#include <cstdint>
#include <vector>

#include "image/image.hpp"

namespace fisheye::img {

/// BT.601 luma from interleaved RGB.
Image8 rgb_to_gray(ConstImageView<std::uint8_t> rgb);

/// Replicate a gray plane into interleaved RGB.
Image8 gray_to_rgb(ConstImageView<std::uint8_t> gray);

/// Planar YUV 4:2:0 frame (I420): full-res Y plane plus quarter-res U, V.
struct Yuv420 {
  Image8 y;  ///< width x height, 1 channel
  Image8 u;  ///< width/2 x height/2
  Image8 v;  ///< width/2 x height/2

  [[nodiscard]] int width() const noexcept { return y.width(); }
  [[nodiscard]] int height() const noexcept { return y.height(); }
};

/// BT.601 full-range RGB -> I420. Width/height must be even.
Yuv420 rgb_to_yuv420(ConstImageView<std::uint8_t> rgb);

/// I420 -> interleaved RGB (bilinear chroma upsampling is deliberately NOT
/// applied: nearest chroma matches what the era's fixed-function pipelines
/// did and keeps the conversion exactly invertible on gray content).
Image8 yuv420_to_rgb(const Yuv420& yuv);

/// Packed YUYV (YUY2) byte stream for a full frame, 2 pixels per 4 bytes.
std::vector<std::uint8_t> rgb_to_yuyv(ConstImageView<std::uint8_t> rgb);

/// YUYV stream -> interleaved RGB. `width` must be even and the stream size
/// exactly width*height*2 bytes.
Image8 yuyv_to_rgb(const std::vector<std::uint8_t>& yuyv, int width,
                   int height);

}  // namespace fisheye::img
