// Image containers and non-owning views.
//
// Layout: channel-interleaved rows, each row padded so that the row pitch is
// a multiple of 64 bytes (see util::AlignedBuffer). All remap kernels and
// the simulated accelerators operate on ImageView/ConstImageView so the same
// kernel code runs on whole frames, tiles, and local-store copies.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "util/aligned.hpp"
#include "util/error.hpp"

namespace fisheye::img {

/// Non-owning mutable view of an interleaved image region.
template <class T>
struct ImageView {
  T* data = nullptr;
  int width = 0;           ///< pixels per row
  int height = 0;          ///< rows
  int channels = 1;        ///< interleaved samples per pixel
  std::size_t pitch = 0;   ///< elements (not bytes) between rows

  [[nodiscard]] T* row(int y) const noexcept { return data + pitch * y; }
  [[nodiscard]] T& at(int x, int y, int c = 0) const noexcept {
    return data[pitch * y + static_cast<std::size_t>(x) * channels + c];
  }
  [[nodiscard]] bool contains(int x, int y) const noexcept {
    return x >= 0 && y >= 0 && x < width && y < height;
  }
  /// Sub-view of rows [y0, y0+h); shares storage.
  [[nodiscard]] ImageView rows(int y0, int h) const noexcept {
    return {data + pitch * y0, width, h, channels, pitch};
  }
};

/// Non-owning read-only view.
template <class T>
struct ConstImageView {
  const T* data = nullptr;
  int width = 0;
  int height = 0;
  int channels = 1;
  std::size_t pitch = 0;

  ConstImageView() = default;
  ConstImageView(const T* d, int w, int h, int c, std::size_t p) noexcept
      : data(d), width(w), height(h), channels(c), pitch(p) {}
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors span's const-conversion
  ConstImageView(ImageView<T> v) noexcept
      : data(v.data), width(v.width), height(v.height), channels(v.channels),
        pitch(v.pitch) {}

  [[nodiscard]] const T* row(int y) const noexcept { return data + pitch * y; }
  [[nodiscard]] const T& at(int x, int y, int c = 0) const noexcept {
    return data[pitch * y + static_cast<std::size_t>(x) * channels + c];
  }
  [[nodiscard]] bool contains(int x, int y) const noexcept {
    return x >= 0 && y >= 0 && x < width && y < height;
  }
  [[nodiscard]] ConstImageView rows(int y0, int h) const noexcept {
    return {data + pitch * y0, width, h, channels, pitch};
  }
};

/// Owning image. Storage is 64-byte aligned with padded rows; zeroed on
/// construction.
template <class T>
class Image {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  Image() = default;

  Image(int width, int height, int channels = 1)
      : width_(width), height_(height), channels_(channels) {
    FE_EXPECTS(width > 0 && height > 0 && channels > 0 && channels <= 4);
    const std::size_t row_elems =
        static_cast<std::size_t>(width) * channels;
    pitch_ = util::align_up(row_elems * sizeof(T), util::kCacheLine) /
             sizeof(T);
    buf_ = util::AlignedBuffer<T>(pitch_ * static_cast<std::size_t>(height));
  }

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] int channels() const noexcept { return channels_; }
  [[nodiscard]] std::size_t pitch() const noexcept { return pitch_; }
  [[nodiscard]] bool empty() const noexcept { return buf_.empty(); }
  /// Payload bytes (excluding row padding) — what a frame costs to DMA.
  [[nodiscard]] std::size_t payload_bytes() const noexcept {
    return static_cast<std::size_t>(width_) * height_ * channels_ * sizeof(T);
  }

  [[nodiscard]] T* row(int y) noexcept { return buf_.data() + pitch_ * y; }
  [[nodiscard]] const T* row(int y) const noexcept {
    return buf_.data() + pitch_ * y;
  }
  [[nodiscard]] T& at(int x, int y, int c = 0) noexcept {
    return row(y)[static_cast<std::size_t>(x) * channels_ + c];
  }
  [[nodiscard]] const T& at(int x, int y, int c = 0) const noexcept {
    return row(y)[static_cast<std::size_t>(x) * channels_ + c];
  }

  [[nodiscard]] ImageView<T> view() noexcept {
    return {buf_.data(), width_, height_, channels_, pitch_};
  }
  [[nodiscard]] ConstImageView<T> view() const noexcept {
    return {buf_.data(), width_, height_, channels_, pitch_};
  }
  [[nodiscard]] ConstImageView<T> cview() const noexcept { return view(); }

  void fill(T value) noexcept {
    for (int y = 0; y < height_; ++y) {
      T* r = row(y);
      for (std::size_t i = 0;
           i < static_cast<std::size_t>(width_) * channels_; ++i)
        r[i] = value;
    }
  }

  [[nodiscard]] Image clone() const {
    Image copy(width_, height_, channels_);
    for (int y = 0; y < height_; ++y)
      std::memcpy(copy.row(y), row(y),
                  static_cast<std::size_t>(width_) * channels_ * sizeof(T));
    return copy;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  int channels_ = 1;
  std::size_t pitch_ = 0;
  util::AlignedBuffer<T> buf_;
};

using Image8 = Image<std::uint8_t>;
using ImageF = Image<float>;
using View8 = ImageView<std::uint8_t>;
using CView8 = ConstImageView<std::uint8_t>;

/// Deep equality of the visible payload (padding ignored).
template <class T>
[[nodiscard]] bool equal_pixels(ConstImageView<T> a, ConstImageView<T> b) noexcept {
  if (a.width != b.width || a.height != b.height || a.channels != b.channels)
    return false;
  for (int y = 0; y < a.height; ++y)
    if (std::memcmp(a.row(y), b.row(y),
                    static_cast<std::size_t>(a.width) * a.channels *
                        sizeof(T)) != 0)
      return false;
  return true;
}

}  // namespace fisheye::img
