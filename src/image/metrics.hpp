// Image-quality metrics used by the accuracy experiments (T3, F4, F9).
#pragma once

#include <cstdint>

#include "image/image.hpp"

namespace fisheye::img {

/// Mean squared error across all channels. Views must match in shape.
double mse(ConstImageView<std::uint8_t> a, ConstImageView<std::uint8_t> b);

/// Peak signal-to-noise ratio in dB (peak = 255). Returns +inf for identical
/// images (mse == 0).
double psnr(ConstImageView<std::uint8_t> a, ConstImageView<std::uint8_t> b);

/// Largest absolute per-sample difference.
int max_abs_diff(ConstImageView<std::uint8_t> a,
                 ConstImageView<std::uint8_t> b);

/// Mean structural similarity (SSIM) over 8x8 windows with the standard
/// constants (K1=0.01, K2=0.03, L=255). Single-channel only.
double ssim(ConstImageView<std::uint8_t> a, ConstImageView<std::uint8_t> b);

/// Fraction of samples differing by more than `tolerance` levels.
double fraction_differing(ConstImageView<std::uint8_t> a,
                          ConstImageView<std::uint8_t> b, int tolerance);

}  // namespace fisheye::img
