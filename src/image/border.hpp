// Border (out-of-range source sample) policies for remapping.
//
// The fisheye inverse map sends many output pixels outside the source image
// circle; the policy chosen here is visible in every corrected frame, so it
// is part of the public CorrectionParams.
#pragma once

#include "util/error.hpp"

namespace fisheye::img {

enum class BorderMode {
  Constant,   ///< use a fixed fill value (the classic black surround)
  Replicate,  ///< clamp to the nearest edge pixel
  Reflect,    ///< mirror about the edge (abcb|abcba-style, no edge repeat)
};

/// Map an out-of-range index into [0, n) under Replicate.
[[nodiscard]] constexpr int clamp_index(int i, int n) noexcept {
  return i < 0 ? 0 : (i >= n ? n - 1 : i);
}

/// Map an out-of-range index into [0, n) under Reflect (period 2n-2).
[[nodiscard]] constexpr int reflect_index(int i, int n) noexcept {
  if (n == 1) return 0;
  const int period = 2 * (n - 1);
  int m = i % period;
  if (m < 0) m += period;
  return m < n ? m : period - m;
}

/// Resolve an index for any border mode; for Constant the caller must test
/// bounds first (this helper is only defined for Replicate/Reflect).
[[nodiscard]] constexpr int border_index(int i, int n, BorderMode mode) noexcept {
  return mode == BorderMode::Reflect ? reflect_index(i, n) : clamp_index(i, n);
}

[[nodiscard]] constexpr const char* border_name(BorderMode mode) noexcept {
  switch (mode) {
    case BorderMode::Constant: return "constant";
    case BorderMode::Replicate: return "replicate";
    case BorderMode::Reflect: return "reflect";
  }
  return "?";
}

}  // namespace fisheye::img
