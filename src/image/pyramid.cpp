#include "image/pyramid.hpp"

#include <algorithm>
#include <cmath>

namespace fisheye::img {

Image8 downsample_2x2(ConstImageView<std::uint8_t> src) {
  FE_EXPECTS(src.width >= 1 && src.height >= 1);
  const int out_w = std::max(1, (src.width + 1) / 2);
  const int out_h = std::max(1, (src.height + 1) / 2);
  const int ch = src.channels;
  Image8 out(out_w, out_h, ch);
  for (int y = 0; y < out_h; ++y) {
    const int y0 = 2 * y;
    const int y1 = std::min(y0 + 1, src.height - 1);
    std::uint8_t* dst = out.row(y);
    for (int x = 0; x < out_w; ++x) {
      const int x0 = 2 * x;
      const int x1 = std::min(x0 + 1, src.width - 1);
      for (int c = 0; c < ch; ++c) {
        const int sum = src.at(x0, y0, c) + src.at(x1, y0, c) +
                        src.at(x0, y1, c) + src.at(x1, y1, c);
        dst[x * ch + c] = static_cast<std::uint8_t>((sum + 2) / 4);
      }
    }
  }
  return out;
}

Pyramid::Pyramid(ConstImageView<std::uint8_t> src, int levels) {
  FE_EXPECTS(src.width > 0 && src.height > 0);
  FE_EXPECTS(levels >= 0);
  // Copy level 0 (owning) so the pyramid is self-contained.
  Image8 base(src.width, src.height, src.channels);
  for (int y = 0; y < src.height; ++y)
    std::copy_n(src.row(y),
                static_cast<std::size_t>(src.width) * src.channels,
                base.row(y));
  levels_.push_back(std::move(base));

  const int max_fit =
      1 + static_cast<int>(std::max(
              0.0, std::floor(std::log2(std::min(src.width, src.height)))));
  const int target = levels == 0 ? max_fit : std::min(levels, max_fit);
  while (static_cast<int>(levels_.size()) < target) {
    const Image8& prev = levels_.back();
    if (prev.width() == 1 && prev.height() == 1) break;
    levels_.push_back(downsample_2x2(prev.view()));
  }
}

}  // namespace fisheye::img
