#include "image/metrics.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace fisheye::img {

namespace {

void expect_same_shape(ConstImageView<std::uint8_t> a,
                       ConstImageView<std::uint8_t> b) {
  FE_EXPECTS(a.width == b.width && a.height == b.height &&
             a.channels == b.channels);
  FE_EXPECTS(a.width > 0 && a.height > 0);
}

}  // namespace

double mse(ConstImageView<std::uint8_t> a, ConstImageView<std::uint8_t> b) {
  expect_same_shape(a, b);
  const std::size_t row_samples =
      static_cast<std::size_t>(a.width) * a.channels;
  double acc = 0.0;
  for (int y = 0; y < a.height; ++y) {
    const std::uint8_t* ra = a.row(y);
    const std::uint8_t* rb = b.row(y);
    for (std::size_t i = 0; i < row_samples; ++i) {
      const double d = static_cast<double>(ra[i]) - rb[i];
      acc += d * d;
    }
  }
  return acc / (static_cast<double>(row_samples) * a.height);
}

double psnr(ConstImageView<std::uint8_t> a, ConstImageView<std::uint8_t> b) {
  const double m = mse(a, b);
  if (m == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / m);
}

int max_abs_diff(ConstImageView<std::uint8_t> a,
                 ConstImageView<std::uint8_t> b) {
  expect_same_shape(a, b);
  const std::size_t row_samples =
      static_cast<std::size_t>(a.width) * a.channels;
  int worst = 0;
  for (int y = 0; y < a.height; ++y) {
    const std::uint8_t* ra = a.row(y);
    const std::uint8_t* rb = b.row(y);
    for (std::size_t i = 0; i < row_samples; ++i) {
      const int d = std::abs(static_cast<int>(ra[i]) - rb[i]);
      if (d > worst) worst = d;
    }
  }
  return worst;
}

double fraction_differing(ConstImageView<std::uint8_t> a,
                          ConstImageView<std::uint8_t> b, int tolerance) {
  expect_same_shape(a, b);
  const std::size_t row_samples =
      static_cast<std::size_t>(a.width) * a.channels;
  std::size_t bad = 0;
  for (int y = 0; y < a.height; ++y) {
    const std::uint8_t* ra = a.row(y);
    const std::uint8_t* rb = b.row(y);
    for (std::size_t i = 0; i < row_samples; ++i)
      if (std::abs(static_cast<int>(ra[i]) - rb[i]) > tolerance) ++bad;
  }
  return static_cast<double>(bad) /
         (static_cast<double>(row_samples) * a.height);
}

double ssim(ConstImageView<std::uint8_t> a, ConstImageView<std::uint8_t> b) {
  expect_same_shape(a, b);
  FE_EXPECTS(a.channels == 1);
  constexpr int kWin = 8;
  constexpr double kC1 = (0.01 * 255) * (0.01 * 255);
  constexpr double kC2 = (0.03 * 255) * (0.03 * 255);

  double total = 0.0;
  std::size_t windows = 0;
  for (int y0 = 0; y0 + kWin <= a.height; y0 += kWin) {
    for (int x0 = 0; x0 + kWin <= a.width; x0 += kWin) {
      double sum_a = 0, sum_b = 0, sum_aa = 0, sum_bb = 0, sum_ab = 0;
      for (int y = y0; y < y0 + kWin; ++y) {
        const std::uint8_t* ra = a.row(y);
        const std::uint8_t* rb = b.row(y);
        for (int x = x0; x < x0 + kWin; ++x) {
          const double va = ra[x], vb = rb[x];
          sum_a += va;
          sum_b += vb;
          sum_aa += va * va;
          sum_bb += vb * vb;
          sum_ab += va * vb;
        }
      }
      constexpr double n = kWin * kWin;
      const double mu_a = sum_a / n, mu_b = sum_b / n;
      const double var_a = sum_aa / n - mu_a * mu_a;
      const double var_b = sum_bb / n - mu_b * mu_b;
      const double cov = sum_ab / n - mu_a * mu_b;
      total += ((2 * mu_a * mu_b + kC1) * (2 * cov + kC2)) /
               ((mu_a * mu_a + mu_b * mu_b + kC1) * (var_a + var_b + kC2));
      ++windows;
    }
  }
  FE_ENSURES(windows > 0);
  return total / static_cast<double>(windows);
}

}  // namespace fisheye::img
