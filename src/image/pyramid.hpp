// Mip pyramid for anti-aliased (minification-aware) sampling.
//
// The inverse fisheye map is strongly minifying in places (the synthesis
// direction compresses the whole scene rim into a few pixels; aggressive
// zoom-out corrections do the same), where point-sampled bilinear aliases.
// The classic fix is a power-of-two pyramid plus per-pixel level-of-detail
// — built here with an exact 2x2 box filter (area-weighted at odd edges).
#pragma once

#include <vector>

#include "image/image.hpp"

namespace fisheye::img {

/// Power-of-two image pyramid; level 0 is a copy of the source.
class Pyramid {
 public:
  /// Build `levels` levels (capped so the coarsest is >= 1x1). levels == 0
  /// means "as many as fit".
  Pyramid(ConstImageView<std::uint8_t> src, int levels = 0);

  [[nodiscard]] int levels() const noexcept {
    return static_cast<int>(levels_.size());
  }
  [[nodiscard]] const Image8& level(int i) const {
    FE_EXPECTS(i >= 0 && i < levels());
    return levels_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] int channels() const noexcept {
    return levels_.front().channels();
  }

 private:
  std::vector<Image8> levels_;
};

/// One 2x2 box-filter reduction (area-weighted on odd dimensions).
Image8 downsample_2x2(ConstImageView<std::uint8_t> src);

}  // namespace fisheye::img
