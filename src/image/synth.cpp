#include "image/synth.hpp"

#include <algorithm>
#include <cmath>

#include "util/mathx.hpp"

namespace fisheye::img {

Image8 make_checkerboard(int width, int height, int cell, std::uint8_t dark,
                         std::uint8_t light) {
  FE_EXPECTS(cell > 0);
  Image8 image(width, height, 1);
  for (int y = 0; y < height; ++y) {
    std::uint8_t* r = image.row(y);
    const int cy = (y / cell) & 1;
    for (int x = 0; x < width; ++x)
      r[x] = ((x / cell) & 1) == cy ? light : dark;
  }
  return image;
}

Image8 make_circle_grid(int width, int height, int spacing, int radius,
                        std::uint8_t background, std::uint8_t foreground) {
  FE_EXPECTS(spacing > 0 && radius > 0 && radius < spacing);
  Image8 image(width, height, 1);
  image.fill(background);
  const int r2 = radius * radius;
  for (int cy = spacing / 2; cy < height; cy += spacing) {
    for (int cx = spacing / 2; cx < width; cx += spacing) {
      const int y0 = std::max(0, cy - radius);
      const int y1 = std::min(height - 1, cy + radius);
      for (int y = y0; y <= y1; ++y) {
        std::uint8_t* row = image.row(y);
        const int x0 = std::max(0, cx - radius);
        const int x1 = std::min(width - 1, cx + radius);
        for (int x = x0; x <= x1; ++x) {
          const int dx = x - cx, dy = y - cy;
          if (dx * dx + dy * dy <= r2) row[x] = foreground;
        }
      }
    }
  }
  return image;
}

Image8 make_siemens_star(int width, int height, int spokes, std::uint8_t dark,
                         std::uint8_t light) {
  FE_EXPECTS(spokes > 0);
  Image8 image(width, height, 1);
  const double cx = 0.5 * (width - 1), cy = 0.5 * (height - 1);
  for (int y = 0; y < height; ++y) {
    std::uint8_t* r = image.row(y);
    for (int x = 0; x < width; ++x) {
      const double a = std::atan2(y - cy, x - cx) + util::kPi;
      const int sector =
          static_cast<int>(a / (2.0 * util::kPi) * 2.0 * spokes) & 1;
      r[x] = sector != 0 ? light : dark;
    }
  }
  return image;
}

Image8 make_gradient(int width, int height) {
  Image8 image(width, height, 1);
  const double cx = 0.5 * (width - 1), cy = 0.5 * (height - 1);
  const double rmax = std::hypot(cx, cy);
  for (int y = 0; y < height; ++y) {
    std::uint8_t* r = image.row(y);
    for (int x = 0; x < width; ++x) {
      const double radial = std::hypot(x - cx, y - cy) / rmax;     // [0,1]
      const double horiz = static_cast<double>(x) / (width - 1);   // [0,1]
      r[x] = static_cast<std::uint8_t>(
          util::clamp(127.5 * radial + 127.5 * horiz, 0.0, 255.0));
    }
  }
  return image;
}

Image8 make_noise(int width, int height, util::Rng& rng) {
  Image8 image(width, height, 1);
  for (int y = 0; y < height; ++y) {
    std::uint8_t* r = image.row(y);
    for (int x = 0; x < width; ++x)
      r[x] = static_cast<std::uint8_t>(rng.next_below(256));
  }
  return image;
}

Image8 make_rings(int width, int height, int ring_width, std::uint8_t dark,
                  std::uint8_t light) {
  FE_EXPECTS(ring_width > 0);
  Image8 image(width, height, 1);
  const double cx = 0.5 * (width - 1), cy = 0.5 * (height - 1);
  for (int y = 0; y < height; ++y) {
    std::uint8_t* r = image.row(y);
    for (int x = 0; x < width; ++x) {
      const int ring =
          static_cast<int>(std::hypot(x - cx, y - cy)) / ring_width;
      r[x] = (ring & 1) != 0 ? light : dark;
    }
  }
  return image;
}

namespace {

void fill_rect_rgb(Image8& image, int x0, int y0, int x1, int y1,
                   std::uint8_t r, std::uint8_t g, std::uint8_t b) {
  x0 = std::max(0, x0);
  y0 = std::max(0, y0);
  x1 = std::min(image.width(), x1);
  y1 = std::min(image.height(), y1);
  for (int y = y0; y < y1; ++y) {
    std::uint8_t* row = image.row(y);
    for (int x = x0; x < x1; ++x) {
      row[x * 3 + 0] = r;
      row[x * 3 + 1] = g;
      row[x * 3 + 2] = b;
    }
  }
}

}  // namespace

Image8 make_scene_rgb(int width, int height, double time_s) {
  Image8 image(width, height, 3);

  // Sky-to-ground vertical gradient.
  for (int y = 0; y < height; ++y) {
    const double t = static_cast<double>(y) / std::max(1, height - 1);
    const auto sky_r = static_cast<std::uint8_t>(110 + 60 * (1.0 - t));
    const auto sky_g = static_cast<std::uint8_t>(140 + 60 * (1.0 - t));
    const auto sky_b = static_cast<std::uint8_t>(170 + 60 * (1.0 - t));
    std::uint8_t* row = image.row(y);
    for (int x = 0; x < width; ++x) {
      row[x * 3 + 0] = sky_r;
      row[x * 3 + 1] = sky_g;
      row[x * 3 + 2] = sky_b;
    }
  }

  // Buildings: deterministic pseudo-random block skyline; `time_s` slides the
  // skyline horizontally so consecutive video frames differ.
  util::Rng rng(42);
  const int horizon = height * 55 / 100;
  const int shift = static_cast<int>(time_s * 40.0);  // 40 px/s pan
  int x = -((shift % 160) + 160) % 160 - 40;
  while (x < width) {
    const int bw = 60 + static_cast<int>(rng.next_below(100));
    const int bh = height / 6 + static_cast<int>(rng.next_below(
                                    static_cast<std::uint64_t>(height) / 3));
    const auto shade = static_cast<std::uint8_t>(60 + rng.next_below(90));
    fill_rect_rgb(image, x, horizon - bh, x + bw, horizon, shade,
                  static_cast<std::uint8_t>(shade * 9 / 10),
                  static_cast<std::uint8_t>(shade * 8 / 10));
    // Window grid.
    for (int wy = horizon - bh + 8; wy < horizon - 8; wy += 18)
      for (int wx = x + 6; wx < x + bw - 6; wx += 14)
        fill_rect_rgb(image, wx, wy, wx + 7, wy + 10, 230, 225, 160);
    x += bw + 12;
  }

  // Road with dashed lane markings.
  fill_rect_rgb(image, 0, horizon, width, height, 70, 70, 74);
  const int dash_phase = static_cast<int>(time_s * 120.0);
  for (int ly = horizon + 20; ly < height; ly += 46) {
    for (int lx = -((dash_phase % 64) + 64) % 64; lx < width; lx += 64)
      fill_rect_rgb(image, lx, ly, lx + 34, ly + 5, 235, 235, 210);
  }

  // High-contrast verticals (lamp posts) — sensitive to residual curvature.
  for (int px = width / 8; px < width; px += width / 4) {
    fill_rect_rgb(image, px - 2, horizon - height / 4, px + 2, horizon, 20, 20,
                  22);
    fill_rect_rgb(image, px - 8, horizon - height / 4 - 8, px + 8,
                  horizon - height / 4, 250, 240, 150);
  }
  return image;
}

}  // namespace fisheye::img
