// Synthetic scene generators.
//
// These stand in for the production camera footage the original study used:
// calibration-style patterns (checkerboard, circle grid, Siemens star) whose
// geometry is known analytically, plus a detailed "urban" composite used by
// the video pipeline. Each generator is deterministic given its parameters.
#pragma once

#include <cstdint>

#include "image/image.hpp"
#include "util/rng.hpp"

namespace fisheye::img {

/// Gray checkerboard with `cell` px squares (the classic calibration target).
Image8 make_checkerboard(int width, int height, int cell,
                         std::uint8_t dark = 32, std::uint8_t light = 224);

/// Gray grid of filled circles, spaced `spacing` px with radius `radius`.
Image8 make_circle_grid(int width, int height, int spacing, int radius,
                        std::uint8_t background = 230,
                        std::uint8_t foreground = 20);

/// Siemens star: `spokes` alternating sectors around the image centre; the
/// standard resolution target (interpolation-quality measurements use it).
Image8 make_siemens_star(int width, int height, int spokes,
                         std::uint8_t dark = 16, std::uint8_t light = 240);

/// Smooth radial+horizontal gradient (exercises interpolation exactness:
/// bilinear reproduces affine ramps to quantization error).
Image8 make_gradient(int width, int height);

/// Uniform noise image (worst case for any cache/prefetch heuristic).
Image8 make_noise(int width, int height, util::Rng& rng);

/// RGB composite "street scene": horizon gradient, building blocks, window
/// grids, lane markings and a few high-contrast poles. Detailed enough that
/// warping artifacts are visible, cheap enough to synthesize per frame.
Image8 make_scene_rgb(int width, int height, double time_s = 0.0);

/// Concentric circles of alternating intensity (matches the wall-of-circles
/// test target described in fisheye-correction papers: straight-line
/// restoration is judged on the warped rings).
Image8 make_rings(int width, int height, int ring_width,
                  std::uint8_t dark = 16, std::uint8_t light = 240);

}  // namespace fisheye::img
