#include "image/convert.hpp"

#include "util/error.hpp"
#include "util/mathx.hpp"

namespace fisheye::img {

namespace {

// BT.601 full-range, integer-exact coefficients scaled by 2^16 so that the
// conversion is branch-free integer math (what a fixed-function block does).
constexpr int kYr = 19595, kYg = 38470, kYb = 7471;  // sums to 65536

std::uint8_t clamp_u8(int v) noexcept {
  return static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
}

struct YuvPix {
  std::uint8_t y, u, v;
};

YuvPix rgb_px_to_yuv(std::uint8_t r, std::uint8_t g, std::uint8_t b) noexcept {
  const int y = (kYr * r + kYg * g + kYb * b + 32768) >> 16;
  const int u = ((b - y) * 32244 >> 16) + 128;  // 0.492 * 2^16
  const int v = ((r - y) * 57475 >> 16) + 128;  // 0.877 * 2^16
  return {clamp_u8(y), clamp_u8(u), clamp_u8(v)};
}

void yuv_px_to_rgb(std::uint8_t y, std::uint8_t u, std::uint8_t v,
                   std::uint8_t* rgb) noexcept {
  const int cu = u - 128, cv = v - 128;
  rgb[0] = clamp_u8(y + ((74711 * cv) >> 16));                     // 1.140 V
  rgb[1] = clamp_u8(y - ((25559 * cu + 38014 * cv) >> 16));        // 0.395/0.581
  rgb[2] = clamp_u8(y + ((133176 * cu) >> 16));                    // 2.032 U
}

}  // namespace

Image8 rgb_to_gray(ConstImageView<std::uint8_t> rgb) {
  FE_EXPECTS(rgb.channels == 3);
  Image8 gray(rgb.width, rgb.height, 1);
  for (int y = 0; y < rgb.height; ++y) {
    const std::uint8_t* src = rgb.row(y);
    std::uint8_t* dst = gray.row(y);
    for (int x = 0; x < rgb.width; ++x) {
      dst[x] = clamp_u8((kYr * src[x * 3] + kYg * src[x * 3 + 1] +
                         kYb * src[x * 3 + 2] + 32768) >>
                        16);
    }
  }
  return gray;
}

Image8 gray_to_rgb(ConstImageView<std::uint8_t> gray) {
  FE_EXPECTS(gray.channels == 1);
  Image8 rgb(gray.width, gray.height, 3);
  for (int y = 0; y < gray.height; ++y) {
    const std::uint8_t* src = gray.row(y);
    std::uint8_t* dst = rgb.row(y);
    for (int x = 0; x < gray.width; ++x) {
      dst[x * 3 + 0] = src[x];
      dst[x * 3 + 1] = src[x];
      dst[x * 3 + 2] = src[x];
    }
  }
  return rgb;
}

Yuv420 rgb_to_yuv420(ConstImageView<std::uint8_t> rgb) {
  FE_EXPECTS(rgb.channels == 3);
  FE_EXPECTS(rgb.width % 2 == 0 && rgb.height % 2 == 0);
  Yuv420 out{Image8(rgb.width, rgb.height, 1),
             Image8(rgb.width / 2, rgb.height / 2, 1),
             Image8(rgb.width / 2, rgb.height / 2, 1)};
  for (int y = 0; y < rgb.height; ++y) {
    const std::uint8_t* src = rgb.row(y);
    std::uint8_t* dst = out.y.row(y);
    for (int x = 0; x < rgb.width; ++x)
      dst[x] =
          rgb_px_to_yuv(src[x * 3], src[x * 3 + 1], src[x * 3 + 2]).y;
  }
  // Chroma: average the 2x2 block's chroma (standard 4:2:0 siting).
  for (int cy = 0; cy < rgb.height / 2; ++cy) {
    std::uint8_t* du = out.u.row(cy);
    std::uint8_t* dv = out.v.row(cy);
    for (int cx = 0; cx < rgb.width / 2; ++cx) {
      int su = 0, sv = 0;
      for (int dy = 0; dy < 2; ++dy)
        for (int dx = 0; dx < 2; ++dx) {
          const std::uint8_t* px = rgb.row(cy * 2 + dy) + (cx * 2 + dx) * 3;
          const YuvPix p = rgb_px_to_yuv(px[0], px[1], px[2]);
          su += p.u;
          sv += p.v;
        }
      du[cx] = static_cast<std::uint8_t>((su + 2) / 4);
      dv[cx] = static_cast<std::uint8_t>((sv + 2) / 4);
    }
  }
  return out;
}

Image8 yuv420_to_rgb(const Yuv420& yuv) {
  FE_EXPECTS(!yuv.y.empty());
  FE_EXPECTS(yuv.u.width() == yuv.y.width() / 2 &&
             yuv.v.width() == yuv.y.width() / 2);
  Image8 rgb(yuv.y.width(), yuv.y.height(), 3);
  for (int y = 0; y < rgb.height(); ++y) {
    const std::uint8_t* sy = yuv.y.row(y);
    const std::uint8_t* su = yuv.u.row(y / 2);
    const std::uint8_t* sv = yuv.v.row(y / 2);
    std::uint8_t* dst = rgb.row(y);
    for (int x = 0; x < rgb.width(); ++x)
      yuv_px_to_rgb(sy[x], su[x / 2], sv[x / 2], dst + x * 3);
  }
  return rgb;
}

std::vector<std::uint8_t> rgb_to_yuyv(ConstImageView<std::uint8_t> rgb) {
  FE_EXPECTS(rgb.channels == 3 && rgb.width % 2 == 0);
  std::vector<std::uint8_t> out(
      static_cast<std::size_t>(rgb.width) * rgb.height * 2);
  std::size_t o = 0;
  for (int y = 0; y < rgb.height; ++y) {
    const std::uint8_t* src = rgb.row(y);
    for (int x = 0; x < rgb.width; x += 2) {
      const YuvPix p0 =
          rgb_px_to_yuv(src[x * 3], src[x * 3 + 1], src[x * 3 + 2]);
      const YuvPix p1 = rgb_px_to_yuv(src[(x + 1) * 3], src[(x + 1) * 3 + 1],
                                      src[(x + 1) * 3 + 2]);
      out[o++] = p0.y;
      out[o++] = static_cast<std::uint8_t>((p0.u + p1.u) / 2);
      out[o++] = p1.y;
      out[o++] = static_cast<std::uint8_t>((p0.v + p1.v) / 2);
    }
  }
  return out;
}

Image8 yuyv_to_rgb(const std::vector<std::uint8_t>& yuyv, int width,
                   int height) {
  FE_EXPECTS(width > 0 && height > 0 && width % 2 == 0);
  FE_EXPECTS(yuyv.size() ==
             static_cast<std::size_t>(width) * height * 2);
  Image8 rgb(width, height, 3);
  std::size_t o = 0;
  for (int y = 0; y < height; ++y) {
    std::uint8_t* dst = rgb.row(y);
    for (int x = 0; x < width; x += 2) {
      const std::uint8_t y0 = yuyv[o], u = yuyv[o + 1], y1 = yuyv[o + 2],
                         v = yuyv[o + 3];
      o += 4;
      yuv_px_to_rgb(y0, u, v, dst + x * 3);
      yuv_px_to_rgb(y1, u, v, dst + (x + 1) * 3);
    }
  }
  return rgb;
}

}  // namespace fisheye::img
