#include "image/io_pnm.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace fisheye::img {

namespace {

/// Read the next PNM header token, skipping whitespace and '#' comments.
std::string next_token(std::istream& in) {
  std::string tok;
  int ch = 0;
  while ((ch = in.get()) != EOF) {
    if (ch == '#') {
      while ((ch = in.get()) != EOF && ch != '\n') {
      }
      continue;
    }
    if (!std::isspace(ch)) {
      tok += static_cast<char>(ch);
      break;
    }
  }
  while ((ch = in.get()) != EOF && !std::isspace(ch))
    tok += static_cast<char>(ch);
  return tok;
}

int parse_int(std::istream& in, const char* what) {
  const std::string tok = next_token(in);
  if (tok.empty()) throw IoError(std::string("pnm: missing ") + what);
  int value = 0;
  for (char c : tok) {
    if (!std::isdigit(static_cast<unsigned char>(c)))
      throw IoError(std::string("pnm: malformed ") + what + ": " + tok);
    value = value * 10 + (c - '0');
    if (value > 1 << 28) throw IoError(std::string("pnm: absurd ") + what);
  }
  return value;
}

Image8 decode_stream(std::istream& in) {
  const std::string magic = next_token(in);
  int channels = 0;
  bool binary = false;
  if (magic == "P5") {
    channels = 1;
    binary = true;
  } else if (magic == "P6") {
    channels = 3;
    binary = true;
  } else if (magic == "P2") {
    channels = 1;
  } else if (magic == "P3") {
    channels = 3;
  } else {
    throw IoError("pnm: unsupported magic '" + magic + "'");
  }

  const int width = parse_int(in, "width");
  const int height = parse_int(in, "height");
  const int maxval = parse_int(in, "maxval");
  if (width <= 0 || height <= 0) throw IoError("pnm: non-positive dimensions");
  // Bound total pixels before allocating (decoders must not be a way to
  // request gigabytes from untrusted bytes).
  if (static_cast<long long>(width) * height > (1LL << 28))
    throw IoError("pnm: image too large");
  if (maxval <= 0 || maxval > 255)
    throw IoError("pnm: unsupported maxval " + std::to_string(maxval));

  Image8 image(width, height, channels);
  const std::size_t row_bytes = static_cast<std::size_t>(width) * channels;
  if (binary) {
    // Exactly one whitespace byte separates the header from the raster; the
    // header parse above already consumed it.
    for (int y = 0; y < height; ++y) {
      in.read(reinterpret_cast<char*>(image.row(y)),
              static_cast<std::streamsize>(row_bytes));
      if (static_cast<std::size_t>(in.gcount()) != row_bytes)
        throw IoError("pnm: short raster read");
    }
  } else {
    for (int y = 0; y < height; ++y) {
      std::uint8_t* r = image.row(y);
      for (std::size_t i = 0; i < row_bytes; ++i) {
        const int v = parse_int(in, "sample");
        if (v > maxval) throw IoError("pnm: sample exceeds maxval");
        r[i] = static_cast<std::uint8_t>(v);
      }
    }
  }
  return image;
}

}  // namespace

std::string encode_pnm(ConstImageView<std::uint8_t> image) {
  FE_EXPECTS(image.channels == 1 || image.channels == 3);
  FE_EXPECTS(image.width > 0 && image.height > 0);
  std::ostringstream os;
  os << (image.channels == 1 ? "P5" : "P6") << '\n'
     << image.width << ' ' << image.height << "\n255\n";
  const std::size_t row_bytes =
      static_cast<std::size_t>(image.width) * image.channels;
  for (int y = 0; y < image.height; ++y)
    os.write(reinterpret_cast<const char*>(image.row(y)),
             static_cast<std::streamsize>(row_bytes));
  return os.str();
}

Image8 decode_pnm(const std::string& bytes) {
  std::istringstream in(bytes);
  return decode_stream(in);
}

void write_pnm(const std::string& path, ConstImageView<std::uint8_t> image) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("pnm: cannot open for write: " + path);
  const std::string bytes = encode_pnm(image);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) throw IoError("pnm: write failed: " + path);
}

Image8 read_pnm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("pnm: cannot open for read: " + path);
  return decode_stream(in);
}

}  // namespace fisheye::img
