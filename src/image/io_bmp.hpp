// Uncompressed 24-bit BMP writer/reader.
//
// Provided so corrected frames can be opened by any stock viewer; BMP is the
// second interchange format next to PNM and exercises a different row order
// (bottom-up) and padding convention in the I/O tests.
#pragma once

#include <string>

#include "image/image.hpp"

namespace fisheye::img {

/// Write a 1- or 3-channel 8-bit image as a 24-bit BMP (gray is replicated
/// across B, G, R). Throws IoError on failure.
void write_bmp(const std::string& path, ConstImageView<std::uint8_t> image);

/// Read a 24-bit or 32-bit uncompressed BMP into a 3-channel RGB image.
Image8 read_bmp(const std::string& path);

/// In-memory variants for tests.
std::string encode_bmp(ConstImageView<std::uint8_t> image);
Image8 decode_bmp(const std::string& bytes);

}  // namespace fisheye::img
