// PGM/PPM (netpbm) reader/writer for 8-bit images.
//
// Supports binary P5/P6 and ASCII P2/P3 with comments and maxval <= 255.
// This is the interchange format the examples emit; it keeps the repository
// free of external image-codec dependencies.
#pragma once

#include <string>

#include "image/image.hpp"

namespace fisheye::img {

/// Write `image` (1 channel -> PGM, 3 channels -> PPM) in binary form.
/// Throws IoError on failure.
void write_pnm(const std::string& path, ConstImageView<std::uint8_t> image);

/// Read a PGM/PPM file; returns a 1- or 3-channel image.
/// Throws IoError on malformed input.
Image8 read_pnm(const std::string& path);

/// In-memory encode/decode (used by tests to avoid filesystem round trips).
std::string encode_pnm(ConstImageView<std::uint8_t> image);
Image8 decode_pnm(const std::string& bytes);

}  // namespace fisheye::img
