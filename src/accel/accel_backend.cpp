#include "accel/accel_backend.hpp"

#include <sstream>

#include "util/error.hpp"

namespace fisheye::accel {

void CellBackend::execute(const core::ExecContext& ctx) {
  FE_EXPECTS(ctx.mode == core::MapMode::FloatLut && ctx.map != nullptr);
  FE_EXPECTS(ctx.opts.interp == core::Interp::Bilinear);
  FE_EXPECTS(ctx.opts.border == img::BorderMode::Constant);
  if (platform_ == nullptr || cached_map_ != ctx.map ||
      cached_channels_ != ctx.src.channels) {
    platform_ = std::make_unique<CellLikePlatform>(
        *ctx.map, ctx.src.width, ctx.src.height, ctx.src.channels, config_);
    cached_map_ = ctx.map;
    cached_channels_ = ctx.src.channels;
  }
  last_stats_ = platform_->run_frame(ctx.src, ctx.dst, ctx.opts.fill);
}

std::string CellBackend::name() const {
  std::ostringstream os;
  os << "cell-sim(" << config_.num_spes << "spe,"
     << (config_.double_buffering ? "dbuf" : "sbuf") << ')';
  return os.str();
}

void GpuBackend::execute(const core::ExecContext& ctx) {
  FE_EXPECTS(ctx.mode == core::MapMode::FloatLut && ctx.map != nullptr);
  FE_EXPECTS(ctx.opts.interp == core::Interp::Bilinear);
  FE_EXPECTS(ctx.opts.border == img::BorderMode::Constant);
  if (platform_ == nullptr || cached_map_ != ctx.map) {
    platform_ = std::make_unique<GpuPlatform>(*ctx.map, config_);
    cached_map_ = ctx.map;
  }
  last_stats_ = platform_->run_frame(ctx.src, ctx.dst, ctx.opts.fill);
}

std::string GpuBackend::name() const {
  std::ostringstream os;
  os << "gpu-sim(" << config_.cost.num_sms << "sm,"
     << config_.cost.clock_hz / 1e9 << "GHz)";
  return os.str();
}

void FpgaBackend::execute(const core::ExecContext& ctx) {
  FE_EXPECTS(ctx.mode == core::MapMode::PackedLut && ctx.packed != nullptr);
  if (platform_ == nullptr || cached_map_ != ctx.packed) {
    platform_ = std::make_unique<FpgaPlatform>(*ctx.packed, config_);
    cached_map_ = ctx.packed;
  }
  last_stats_ = platform_->run_frame(ctx.src, ctx.dst, ctx.opts.fill);
}

std::string FpgaBackend::name() const {
  std::ostringstream os;
  os << "fpga-sim(" << config_.cost.clock_hz / 1e6 << "MHz,"
     << config_.cache.capacity_pixels() / 1024 << "Kpx)";
  return os.str();
}

}  // namespace fisheye::accel
