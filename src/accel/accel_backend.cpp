#include "accel/accel_backend.hpp"

#include <memory>
#include <sstream>

#include "core/backend_registry.hpp"
#include "util/error.hpp"

namespace fisheye::accel {

namespace {

/// Copy a frame's modeled byte traffic into the plan slots.
void record_modeled(const core::ExecutionPlan& plan,
                    const AccelFrameStats& stats) {
  core::PlanInstrumentation& inst = plan.instrumentation();
  inst.bytes_in = stats.bytes_in;
  inst.bytes_out = stats.bytes_out;
  inst.steals = stats.steals;  // Cell schedule=steal; zero elsewhere
  inst.modeled = true;
}

/// Emit `key=value` when the value differs from its default; printed with
/// default precision so the spec reparses to the same config.
template <class T>
void emit_if(core::SpecBuilder& spec, const char* key, const T& value,
             const T& def) {
  if (value != def) spec.opt(key, value);
}

void emit_cache_if(core::SpecBuilder& spec, const char* key,
                   const BlockCacheConfig& c, const BlockCacheConfig& def) {
  if (c.block_w != def.block_w || c.block_h != def.block_h ||
      c.sets != def.sets || c.ways != def.ways) {
    std::ostringstream os;
    os << c.block_w << 'x' << c.block_h << 'x' << c.sets << 'x' << c.ways;
    spec.opt(key, os.str());
  }
}

}  // namespace

// --- Cell ------------------------------------------------------------------

core::ExecutionPlan CellBackend::plan(const core::ExecContext& ctx) {
  std::shared_ptr<const core::ConvertedMap> converted;
  const core::ExecContext ectx = resolve_map(ctx, converted);
  FE_EXPECTS((ectx.mode == core::MapMode::FloatLut && ectx.map != nullptr) ||
             (ectx.mode == core::MapMode::CompactLut &&
              ectx.compact != nullptr));
  FE_EXPECTS(ectx.opts.interp == core::Interp::Bilinear);
  FE_EXPECTS(ectx.opts.border == img::BorderMode::Constant);
  auto platform =
      ectx.mode == core::MapMode::CompactLut
          ? std::make_shared<CellLikePlatform>(*ectx.compact,
                                               ectx.src.channels, config_)
          : std::make_shared<CellLikePlatform>(*ectx.map, ectx.src.width,
                                               ectx.src.height,
                                               ectx.src.channels, config_);
  std::vector<par::Rect> tiles;
  tiles.reserve(platform->tiles().size());
  for (const SpeTile& t : platform->tiles()) tiles.push_back(t.out);
  std::vector<double> seconds = platform->tile_seconds();
  core::ExecutionPlan plan = make_plan(ctx, std::move(tiles),
                                       std::move(platform),
                                       std::move(converted));
  // The cost model is static: per-tile times are a property of the plan,
  // not of any particular frame. Fill the slots once.
  plan.instrumentation().tile_seconds = std::move(seconds);
  return plan;
}

void CellBackend::execute(const core::ExecutionPlan& plan,
                          const core::ExecContext& ctx) {
  check_plan(plan, ctx);
  CellLikePlatform* platform = plan.state<CellLikePlatform>();
  last_stats_ = platform->run_frame(ctx.src, ctx.dst, ctx.opts.fill);
  record_modeled(plan, last_stats_);
}

std::string CellBackend::name() const {
  const SpeConfig def;
  core::SpecBuilder spec("cell");
  emit_if(spec, "spes", config_.num_spes, def.num_spes);
  if (!config_.double_buffering) spec.opt("sbuf");
  if (config_.tile_w != def.tile_w || config_.tile_h != def.tile_h) {
    std::ostringstream os;
    os << config_.tile_w << 'x' << config_.tile_h;
    spec.opt("tile", os.str());
  }
  emit_if(spec, "ls", config_.local_store_bytes, def.local_store_bytes);
  if (config_.schedule != def.schedule) {
    switch (config_.schedule) {
      case TileSchedule::RoundRobin: spec.opt("schedule", "rr"); break;
      case TileSchedule::GreedyEft: spec.opt("schedule", "eft"); break;
      case TileSchedule::Lpt: spec.opt("schedule", "lpt"); break;
      case TileSchedule::Steal: spec.opt("schedule", "steal"); break;
    }
  }
  emit_if(spec, "cpp", config_.cost.cycles_per_pixel,
          def.cost.cycles_per_pixel);
  return decorate_spec(spec.str());
}

// --- GPU -------------------------------------------------------------------

core::ExecutionPlan GpuBackend::plan(const core::ExecContext& ctx) {
  FE_EXPECTS(ctx.mode == core::MapMode::FloatLut && ctx.map != nullptr);
  FE_EXPECTS(ctx.opts.interp == core::Interp::Bilinear);
  FE_EXPECTS(ctx.opts.border == img::BorderMode::Constant);
  auto platform = std::make_shared<GpuPlatform>(*ctx.map, config_);
  // The plan tiles are the thread-block grid.
  const int bd = config_.block_dim;
  std::vector<par::Rect> tiles;
  for (int y = 0; y < ctx.dst.height; y += bd)
    for (int x = 0; x < ctx.dst.width; x += bd)
      tiles.push_back({x, y, std::min(x + bd, ctx.dst.width),
                       std::min(y + bd, ctx.dst.height)});
  return make_plan(ctx, std::move(tiles), std::move(platform));
}

void GpuBackend::execute(const core::ExecutionPlan& plan,
                         const core::ExecContext& ctx) {
  check_plan(plan, ctx);
  last_stats_ =
      plan.state<GpuPlatform>()->run_frame(ctx.src, ctx.dst, ctx.opts.fill);
  // The roofline model has no per-block resolution: blocks are uniform by
  // construction (resident warps hide latency), so spread the frame time
  // evenly over the grid.
  core::PlanInstrumentation& inst = plan.instrumentation();
  const std::size_t blocks = plan.tiles().size();
  inst.tile_seconds.assign(blocks,
                           last_stats_.seconds / static_cast<double>(blocks));
  record_modeled(plan, last_stats_);
}

std::string GpuBackend::name() const {
  const GpuConfig def;
  core::SpecBuilder spec("gpu");
  emit_if(spec, "sms", config_.cost.num_sms, def.cost.num_sms);
  emit_if(spec, "clock", config_.cost.clock_hz / 1e9,
          def.cost.clock_hz / 1e9);
  emit_cache_if(spec, "tex", config_.tex_cache, def.tex_cache);
  emit_if(spec, "block", config_.block_dim, def.block_dim);
  return spec.str();
}

// --- FPGA ------------------------------------------------------------------

core::ExecutionPlan FpgaBackend::plan(const core::ExecContext& ctx) {
  std::shared_ptr<const core::ConvertedMap> converted;
  const core::ExecContext ectx = resolve_map(ctx, converted);
  FE_EXPECTS(
      (ectx.mode == core::MapMode::PackedLut && ectx.packed != nullptr) ||
      (ectx.mode == core::MapMode::CompactLut && ectx.compact != nullptr));
  auto platform =
      ectx.mode == core::MapMode::CompactLut
          ? std::make_shared<FpgaPlatform>(*ectx.compact, config_)
          : std::make_shared<FpgaPlatform>(*ectx.packed, config_);
  // One streaming pass over the frame: a single plan tile.
  return make_plan(ctx, {par::Rect{0, 0, ctx.dst.width, ctx.dst.height}},
                   std::move(platform), std::move(converted));
}

void FpgaBackend::execute(const core::ExecutionPlan& plan,
                          const core::ExecContext& ctx) {
  check_plan(plan, ctx);
  last_stats_ =
      plan.state<FpgaPlatform>()->run_frame(ctx.src, ctx.dst, ctx.opts.fill);
  core::PlanInstrumentation& inst = plan.instrumentation();
  inst.tile_seconds.assign(1, last_stats_.seconds);
  record_modeled(plan, last_stats_);
}

std::string FpgaBackend::name() const {
  const FpgaConfig def;
  core::SpecBuilder spec("fpga");
  emit_if(spec, "clock", config_.cost.clock_hz / 1e6,
          def.cost.clock_hz / 1e6);
  emit_cache_if(spec, "cache", config_.cache, def.cache);
  emit_if(spec, "bram", config_.lut_bram_bytes, def.lut_bram_bytes);
  emit_if(spec, "ddr", config_.cost.ddr_bytes_per_cycle,
          def.cost.ddr_bytes_per_cycle);
  return decorate_spec(spec.str());
}

}  // namespace fisheye::accel
