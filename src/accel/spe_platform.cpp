#include "accel/spe_platform.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "core/execution_plan.hpp"
#include "core/kernel.hpp"
#include "parallel/work_stealing.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace fisheye::accel {

CellLikePlatform::CellLikePlatform(const core::WarpMap& map, int src_width,
                                   int src_height, int channels,
                                   const SpeConfig& config)
    : map_(&map),
      cmap_(nullptr),
      out_width_(map.width),
      out_height_(map.height),
      src_width_(src_width),
      src_height_(src_height),
      channels_(channels),
      config_(config) {
  init();
}

CellLikePlatform::CellLikePlatform(const core::CompactMap& map, int channels,
                                   const SpeConfig& config)
    : map_(nullptr),
      cmap_(&map),
      out_width_(map.width),
      out_height_(map.height),
      src_width_(map.src_width),
      src_height_(map.src_height),
      channels_(channels),
      config_(config) {
  init();
}

void CellLikePlatform::init() {
  FE_EXPECTS(config_.num_spes >= 1 && config_.num_spes <= 64);
  FE_EXPECTS(config_.tile_w >= 8 && config_.tile_h >= 1);
  FE_EXPECTS(channels_ >= 1 && channels_ <= 4);

  const std::vector<par::Rect> grid =
      par::partition(out_width_, out_height_, par::PartitionKind::Tiles,
                     /*chunks=*/0, config_.tile_w, config_.tile_h);
  for (const par::Rect& r : grid) decompose(r, 0);

  // Reorganize the map tile-contiguously (setup-time work, done once).
  if (cmap_) {
    tile_grids_.reserve(tiles_.size());
    for (const SpeTile& t : tiles_) {
      const par::Rect g = grid_rect(t.out);
      std::vector<std::int32_t> tg;
      tg.reserve(static_cast<std::size_t>(g.area()) * 2);
      for (int gy = g.y0; gy < g.y1; ++gy)
        for (int gx = g.x0; gx < g.x1; ++gx)
          tg.push_back(cmap_->gx[cmap_->index(gx, gy)]);
      for (int gy = g.y0; gy < g.y1; ++gy)
        for (int gx = g.x0; gx < g.x1; ++gx)
          tg.push_back(cmap_->gy[cmap_->index(gx, gy)]);
      tile_grids_.push_back(std::move(tg));
    }
    return;
  }
  tile_maps_.reserve(tiles_.size());
  for (const SpeTile& t : tiles_) {
    std::vector<float> tm;
    tm.reserve(static_cast<std::size_t>(t.out.area()) * 2);
    for (int y = t.out.y0; y < t.out.y1; ++y) {
      const std::size_t row = static_cast<std::size_t>(y) * map_->width;
      for (int x = t.out.x0; x < t.out.x1; ++x)
        tm.push_back(map_->src_x[row + x]);
    }
    for (int y = t.out.y0; y < t.out.y1; ++y) {
      const std::size_t row = static_cast<std::size_t>(y) * map_->width;
      for (int x = t.out.x0; x < t.out.x1; ++x)
        tm.push_back(map_->src_y[row + x]);
    }
    tile_maps_.push_back(std::move(tm));
  }
}

par::Rect CellLikePlatform::grid_rect(par::Rect out) const noexcept {
  // Entries at cells [x>>shift, (x-1 of end)>>shift + 1] inclusive feed the
  // bilinear reconstruction of every pixel in `out`.
  const int shift = cmap_->shift();
  return {out.x0 >> shift, out.y0 >> shift, ((out.x1 - 1) >> shift) + 2,
          ((out.y1 - 1) >> shift) + 2};
}

std::size_t CellLikePlatform::map_slice_bytes(par::Rect out) const noexcept {
  if (cmap_)
    return static_cast<std::size_t>(grid_rect(out).area()) * 2 *
           sizeof(std::int32_t);
  return static_cast<std::size_t>(out.area()) * 2 * sizeof(float);
}

std::size_t CellLikePlatform::working_set(par::Rect out,
                                          par::Rect src_box) const noexcept {
  const std::size_t out_px = static_cast<std::size_t>(out.area());
  const std::size_t map_bytes = map_slice_bytes(out);
  const std::size_t out_bytes = out_px * static_cast<std::size_t>(channels_);
  const std::size_t src_bytes =
      src_box.empty() ? 0
                      : static_cast<std::size_t>(src_box.area()) *
                            static_cast<std::size_t>(channels_);
  const std::size_t buffers = map_bytes + out_bytes + src_bytes;
  // Double buffering keeps two complete buffer sets resident.
  return config_.double_buffering ? 2 * buffers : buffers;
}

void CellLikePlatform::decompose(par::Rect rect, int depth) {
  const par::Rect box =
      cmap_ ? core::source_bbox(*cmap_, rect)
            : core::source_bbox(*map_, rect, src_width_, src_height_);
  const std::size_t ws = working_set(rect, box);
  // Keep ~2 KB headroom for code/stack the way a real SPE budget would.
  const std::size_t budget = config_.local_store_bytes - 2048;
  if (ws <= budget || rect.area() <= 64) {
    if (ws > budget)
      throw ResourceError(
          "SPE tile irreducible: working set " + std::to_string(ws) +
          " B exceeds local store budget " + std::to_string(budget) + " B");
    // Count pixels whose bilinear footprint touches the source: the SPE
    // kernel runs the full gather for those and a cheap fill store for the
    // rest, so the cost model needs the split.
    std::size_t valid = 0;
    if (cmap_) {
      for (int y = rect.y0; y < rect.y1; ++y)
        for (int x = rect.x0; x < rect.x1; ++x)
          valid += core::compact_entry_valid(
                       *cmap_, core::reconstruct_entry(*cmap_, x, y))
                       ? 1
                       : 0;
    } else {
      for (int y = rect.y0; y < rect.y1; ++y) {
        const std::size_t row = static_cast<std::size_t>(y) * map_->width;
        for (int x = rect.x0; x < rect.x1; ++x) {
          const float sx = map_->src_x[row + x];
          const float sy = map_->src_y[row + x];
          valid += (sx > -1.0f && sy > -1.0f &&
                    sx < static_cast<float>(src_width_) &&
                    sy < static_cast<float>(src_height_))
                       ? 1
                       : 0;
        }
      }
    }
    tiles_.push_back({rect, box, ws, valid, depth > 0});
    return;
  }
  FE_EXPECTS(depth < 16);
  // Split along the longer output dimension; halving the output roughly
  // halves the source window too (the map is smooth).
  par::Rect a = rect, b = rect;
  if (rect.width() >= rect.height()) {
    const int mid = rect.x0 + rect.width() / 2;
    a.x1 = mid;
    b.x0 = mid;
  } else {
    const int mid = rect.y0 + rect.height() / 2;
    a.y1 = mid;
    b.y0 = mid;
  }
  decompose(a, depth + 1);
  decompose(b, depth + 1);
}

CellLikePlatform::TileCost CellLikePlatform::tile_cost(
    const SpeTile& tile) const noexcept {
  const SpeCostModel& c = config_.cost;
  TileCost tc;
  const auto out_px = static_cast<double>(tile.out.area());
  const auto ch = static_cast<double>(channels_);

  const std::size_t map_bytes = map_slice_bytes(tile.out);
  const std::size_t src_bytes =
      tile.src_box.empty() ? 0
                           : static_cast<std::size_t>(tile.src_box.area()) *
                                 static_cast<std::size_t>(channels_);
  const std::size_t out_bytes =
      static_cast<std::size_t>(tile.out.area()) *
      static_cast<std::size_t>(channels_);

  // get(map) + get(src): two MFC commands.
  tc.dma_in = c.dispatch_cycles_per_tile + c.dma_latency_cycles +
              static_cast<double>(map_bytes) / c.dma_bytes_per_cycle;
  if (src_bytes > 0)
    tc.dma_in += c.dma_latency_cycles +
                 static_cast<double>(src_bytes) / c.dma_bytes_per_cycle;

  // Valid pixels run the full gather kernel; fill pixels stream a constant
  // (~1 cycle / pixel / channel). Compact maps add a per-pixel coordinate
  // reconstruction before the validity test can cull anything.
  const auto valid = static_cast<double>(tile.valid_px);
  tc.compute = valid * ch * c.cycles_per_pixel + (out_px - valid) * ch;
  if (cmap_) tc.compute += out_px * c.compact_cycles_per_pixel;

  tc.dma_out = c.dma_latency_cycles +
               static_cast<double>(out_bytes) / c.dma_bytes_per_cycle;
  return tc;
}

std::size_t CellLikePlatform::peak_working_set() const noexcept {
  std::size_t peak = 0;
  for (const SpeTile& t : tiles_) peak = std::max(peak, t.working_set_bytes);
  return peak;
}

std::vector<double> CellLikePlatform::tile_seconds() const {
  std::vector<double> out;
  out.reserve(tiles_.size());
  for (const SpeTile& t : tiles_) {
    const TileCost c = tile_cost(t);
    out.push_back((c.dma_in + c.compute + c.dma_out) /
                  config_.cost.clock_hz);
  }
  return out;
}

AccelFrameStats CellLikePlatform::run_frame(
    img::ConstImageView<std::uint8_t> src, img::ImageView<std::uint8_t> dst,
    std::uint8_t fill) {
  FE_EXPECTS(src.width == src_width_ && src.height == src_height_);
  FE_EXPECTS(dst.width == out_width_ && dst.height == out_height_);
  FE_EXPECTS(src.channels == channels_ && dst.channels == channels_);

  AccelFrameStats stats;
  stats.tiles = tiles_.size();

  // The SPE "program" is not written here: the compute kernel comes from
  // the registry (core/kernel.hpp), resolved once per frame — the same
  // windowed function object the CPU backends run. This simulator owns
  // only the DMA, local-store, and scheduling model around it.
  core::ExecContext kctx;
  kctx.src = src;
  kctx.dst = dst;
  kctx.map = map_;
  kctx.compact = cmap_;
  kctx.mode = cmap_ ? core::MapMode::CompactLut : core::MapMode::FloatLut;
  kctx.opts = {core::Interp::Bilinear, img::BorderMode::Constant, fill};
  const core::ResolvedKernel kernel = core::resolve_kernel(kctx);

  // --- scheduling: greedy earliest-finish assignment of tiles to SPEs ---
  const int n_spes = config_.num_spes;
  struct Lane {
    // Three-stage pipeline clocks (double buffering) or serial clock.
    double in_done = 0.0;
    double in_done_prev = 0.0;    // in_done of tile k-1 on this lane
    double comp_done = 0.0;
    double comp_done_prev = 0.0;  // comp_done of tile k-1
    double out_done = 0.0;
    double busy_compute = 0.0;
  };
  std::vector<Lane> lanes(static_cast<std::size_t>(n_spes));

  const SpeCostModel& c = config_.cost;
  LocalStore store(config_.local_store_bytes);

  // Dispatch order and lane choice per the configured policy.
  std::vector<std::size_t> order(tiles_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (config_.schedule == TileSchedule::Lpt) {
    std::vector<double> total(tiles_.size());
    for (std::size_t i = 0; i < tiles_.size(); ++i) {
      const TileCost tc = tile_cost(tiles_[i]);
      total[i] = tc.dma_in + tc.compute + tc.dma_out;
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return total[a] > total[b]; });
  }

  // Steal policy state: each SPE starts with a contiguous run of the
  // Morton-ordered (by source-bbox centroid) tile sequence, split by
  // modeled cost; an SPE whose run is exhausted takes the TAIL half of the
  // most loaded SPE's remaining run — the far end of the victim's
  // traversal, mirroring par::StealQueue. Runs are consumed front-first so
  // each SPE walks source-adjacent tiles (docs/modeling.md).
  std::vector<std::vector<std::size_t>> spe_runs;
  std::vector<std::size_t> spe_head;
  if (config_.schedule == TileSchedule::Steal) {
    std::vector<par::Rect> keys;
    keys.reserve(tiles_.size());
    for (const SpeTile& t : tiles_) keys.push_back(t.src_box);
    const std::vector<std::uint32_t> morder = par::morton_order(keys);
    std::vector<double> total(tiles_.size());
    for (std::size_t i = 0; i < tiles_.size(); ++i) {
      const TileCost tc = tile_cost(tiles_[i]);
      total[i] = tc.dma_in + tc.compute + tc.dma_out;
    }
    const std::vector<std::size_t> runs = par::balanced_runs(
        morder.size(), static_cast<unsigned>(n_spes),
        [&](std::size_t i) { return total[morder[i]]; });
    spe_runs.resize(lanes.size());
    spe_head.assign(lanes.size(), 0);
    for (std::size_t w = 0; w < lanes.size(); ++w)
      spe_runs[w].assign(morder.begin() + static_cast<std::ptrdiff_t>(runs[w]),
                         morder.begin() +
                             static_cast<std::ptrdiff_t>(runs[w + 1]));
  }

  for (std::size_t idx = 0; idx < order.size(); ++idx) {
    // Pick the lane and the tile per policy.
    std::size_t best = 0;
    std::size_t t = order[idx];
    if (config_.schedule == TileSchedule::RoundRobin) {
      best = idx % lanes.size();
    } else {
      // GreedyEft, Lpt, Steal: the lane that frees earliest goes next.
      for (std::size_t l = 1; l < lanes.size(); ++l)
        if (lanes[l].out_done < lanes[best].out_done) best = l;
    }
    if (config_.schedule == TileSchedule::Steal) {
      if (spe_head[best] == spe_runs[best].size()) {
        // Run exhausted: steal the tail half of the largest remaining run.
        std::size_t victim = lanes.size();
        std::size_t victim_rem = 0;
        for (std::size_t v = 0; v < lanes.size(); ++v) {
          const std::size_t rem = spe_runs[v].size() - spe_head[v];
          if (rem > victim_rem) {
            victim = v;
            victim_rem = rem;
          }
        }
        FE_EXPECTS(victim < lanes.size());  // idx < total => work remains
        const std::size_t take = (victim_rem + 1) / 2;
        std::vector<std::size_t>& vq = spe_runs[victim];
        spe_runs[best].assign(vq.end() - static_cast<std::ptrdiff_t>(take),
                              vq.end());
        vq.erase(vq.end() - static_cast<std::ptrdiff_t>(take), vq.end());
        spe_head[best] = 0;
        ++stats.steals;
      }
      t = spe_runs[best][spe_head[best]++];
    }
    const SpeTile& tile = tiles_[t];
    const TileCost tc = tile_cost(tile);
    stats.tile_splits += tile.split ? 1 : 0;
    Lane& lane = lanes[best];

    if (config_.double_buffering) {
      // DMA-in of tile k may start once the input buffer of tile k-2 is
      // free, i.e. after compute of k-2 finished (two buffer sets).
      const double in_start = std::max(lane.in_done, lane.comp_done_prev);
      const double in_done = in_start + tc.dma_in;
      const double comp_start = std::max(lane.comp_done, in_done);
      const double comp_done = comp_start + tc.compute;
      const double out_done = std::max(lane.out_done, comp_done) + tc.dma_out;
      lane.comp_done_prev = lane.comp_done;
      lane.in_done_prev = lane.in_done;
      lane.in_done = in_done;
      lane.comp_done = comp_done;
      lane.out_done = out_done;
    } else {
      // Strictly serial: get, compute, put.
      lane.out_done += tc.dma_in + tc.compute + tc.dma_out;
      lane.in_done = lane.comp_done = lane.out_done;
    }
    lane.busy_compute += tc.compute;
    stats.compute_cycles += tc.compute;
    stats.dma_cycles += tc.dma_in + tc.dma_out;

    // --- functional execution through the local store ---
    store.reset();
    const std::size_t out_px = static_cast<std::size_t>(tile.out.area());
    const std::size_t map_bytes = map_slice_bytes(tile.out);
    DmaEngine dma(c);
    std::uint8_t* map_local = store.allocate(map_bytes);
    dma.get_linear(cmap_ ? static_cast<const void*>(tile_grids_[t].data())
                         : static_cast<const void*>(tile_maps_[t].data()),
                   map_bytes, map_local, map_bytes);

    std::uint8_t* out_local = store.allocate(out_px * channels_);
    const int tw = tile.out.width();
    const int th = tile.out.height();

    if (tile.src_box.empty()) {
      std::fill_n(out_local, out_px * channels_, fill);
    } else {
      const std::size_t src_bytes =
          static_cast<std::size_t>(tile.src_box.area()) *
          static_cast<std::size_t>(channels_);
      std::uint8_t* src_local = store.allocate(src_bytes);
      dma.get_rect(src, tile.src_box, src_local, src_bytes);
      stats.bytes_in += src_bytes;

      const int win_w = tile.src_box.width();
      const int win_h = tile.src_box.height();
      const std::size_t win_pitch =
          static_cast<std::size_t>(win_w) * channels_;

      // Registry kernel over the DMA'd window: the source bbox covers
      // every in-frame tap of the tile's pixels, so sampling the window
      // with constant fill is bit-exact with full-frame execution.
      const img::ConstImageView<std::uint8_t> window(src_local, win_w, win_h,
                                                     channels_, win_pitch);
      kernel.run_windowed(window, dst, tile.out, tile.src_box.x0,
                          tile.src_box.y0);
      // Mirror the freshly computed rect into the local output buffer so
      // the DMA-put below transfers exactly what the SPE would hold.
      for (int yy = 0; yy < th; ++yy)
        std::memcpy(
            out_local + static_cast<std::size_t>(yy) * tw * channels_,
            dst.row(tile.out.y0 + yy) +
                static_cast<std::size_t>(tile.out.x0) * channels_,
            static_cast<std::size_t>(tw) * channels_);
    }
    dma.put_rect(out_local, dst, tile.out);
    stats.bytes_in += map_bytes;
    stats.bytes_out += out_px * channels_;
  }

  // Frame time: the slowest lane, bounded below by shared memory bandwidth.
  double pipeline_cycles = 0.0;
  double busiest = 0.0;
  for (const Lane& l : lanes) {
    pipeline_cycles = std::max(pipeline_cycles, l.out_done);
    busiest = std::max(busiest, l.busy_compute);
  }
  const double bw_cycles =
      static_cast<double>(stats.bytes_in + stats.bytes_out) /
      c.shared_memory_bytes_per_cycle;
  stats.cycles = std::max(pipeline_cycles, bw_cycles);
  stats.seconds = stats.cycles / c.clock_hz;
  stats.fps = stats.seconds > 0.0 ? 1.0 / stats.seconds : 0.0;
  stats.utilization =
      stats.cycles > 0.0
          ? stats.compute_cycles /
                (static_cast<double>(config_.num_spes) * stats.cycles)
          : 0.0;
  FE_ENSURES(store.peak() <= config_.local_store_bytes);
  return stats;
}

}  // namespace fisheye::accel
