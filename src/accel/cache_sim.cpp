#include "accel/cache_sim.hpp"

#include "util/aligned.hpp"

namespace fisheye::accel {

namespace {

int log2_exact(int v) {
  FE_EXPECTS(v > 0 && util::is_pow2(static_cast<std::size_t>(v)));
  int s = 0;
  while ((1 << s) < v) ++s;
  return s;
}

}  // namespace

BlockCache::BlockCache(const BlockCacheConfig& config)
    : config_(config),
      block_w_shift_(log2_exact(config.block_w)),
      block_h_shift_(log2_exact(config.block_h)),
      set_mask_(static_cast<std::uint64_t>(config.sets) - 1),
      ways_(static_cast<std::size_t>(config.sets) *
            static_cast<std::size_t>(config.ways)) {
  FE_EXPECTS(util::is_pow2(static_cast<std::size_t>(config.sets)));
  FE_EXPECTS(config.ways >= 1 && config.ways <= 64);
}

std::uint64_t BlockCache::block_id(int x, int y) const noexcept {
  const auto bx = static_cast<std::uint64_t>(x >> block_w_shift_);
  const auto by = static_cast<std::uint64_t>(y >> block_h_shift_);
  // 4 M blocks per row is far beyond any frame; packs into unique ids.
  return (by << 22) | bx;
}

bool BlockCache::access(int x, int y) noexcept {
  ++accesses_;
  ++clock_;
  const std::uint64_t id = block_id(x, y);
  // Index by block coordinates; XOR-fold the y part in so vertically
  // adjacent blocks do not collide on the same set (classic 2D tiling fix).
  const std::uint64_t set = (id ^ (id >> 22)) & set_mask_;
  Way* base = ways_.data() + set * static_cast<std::uint64_t>(config_.ways);

  Way* victim = base;
  for (int w = 0; w < config_.ways; ++w) {
    if (base[w].tag == id) {
      base[w].lru = clock_;
      return true;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  ++misses_;
  victim->tag = id;
  victim->lru = clock_;
  return false;
}

int BlockCache::access_footprint(int x, int y) noexcept {
  int miss_count = access(x, y) ? 0 : 1;
  const bool x_split = ((x + 1) >> block_w_shift_) != (x >> block_w_shift_);
  const bool y_split = ((y + 1) >> block_h_shift_) != (y >> block_h_shift_);
  if (x_split) miss_count += access(x + 1, y) ? 0 : 1;
  if (y_split) miss_count += access(x, y + 1) ? 0 : 1;
  if (x_split && y_split) miss_count += access(x + 1, y + 1) ? 0 : 1;
  return miss_count;
}

void BlockCache::flush() noexcept {
  for (Way& w : ways_) w = Way{};
  // Counters survive a flush; callers reset by reconstructing.
}

}  // namespace fisheye::accel
