// Explicit DMA engine model (Cell MFC style).
//
// Functional role: copies pixel rectangles between host frames and local-
// store buffers, so the simulated SPE kernel really does operate on a
// private copy (any indexing bug corrupts output and is caught by tests).
// Accounting role: every transfer is charged latency + size/bandwidth, with
// large transfers split into hardware-sized list elements, and alignment
// rules enforced the way the MFC enforces them.
#pragma once

#include <cstdint>

#include "accel/cost_model.hpp"
#include "image/image.hpp"
#include "parallel/partition.hpp"

namespace fisheye::accel {

/// Per-engine transfer statistics (one engine per simulated SPE).
struct DmaStats {
  std::size_t transfers = 0;      ///< user-level get/put calls
  std::size_t list_elements = 0;  ///< hardware elements after splitting
  std::size_t bytes_in = 0;
  std::size_t bytes_out = 0;
  double cycles = 0.0;
};

class DmaEngine {
 public:
  /// Hardware maximum per DMA list element (Cell MFC: 16 KB).
  static constexpr std::size_t kMaxElementBytes = 16 * 1024;
  /// Required alignment of local-store addresses (quadword).
  static constexpr std::size_t kAlignment = 16;

  explicit DmaEngine(const SpeCostModel& cost) : cost_(&cost) {}

  /// GET: copy rect `box` of `src` (full-frame coordinates) into the local
  /// buffer `local` laid out as box.width()*channels contiguous bytes per
  /// row. `local_capacity` is checked. Returns bytes moved.
  std::size_t get_rect(img::ConstImageView<std::uint8_t> src, par::Rect box,
                       std::uint8_t* local, std::size_t local_capacity);

  /// GET for raw arrays (map tiles): `bytes` from host `src` into `local`.
  std::size_t get_linear(const void* src, std::size_t bytes,
                         std::uint8_t* local, std::size_t local_capacity);

  /// PUT: copy the local tile (tight rows of box.width()*channels) into
  /// rect `box` of the destination frame.
  std::size_t put_rect(const std::uint8_t* local,
                       img::ImageView<std::uint8_t> dst, par::Rect box);

  [[nodiscard]] const DmaStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  /// Charge one logical transfer of `bytes` (split into list elements).
  void account(std::size_t bytes, bool inbound);

  const SpeCostModel* cost_;
  DmaStats stats_;
};

}  // namespace fisheye::accel
