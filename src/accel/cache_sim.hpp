// Block cache simulator (FPGA BRAM cache in front of DDR).
//
// The streaming correction pipeline reads the source image in a data-
// dependent order; a real FPGA implementation hides DDR latency behind an
// on-chip block cache. This is a tag-only set-associative simulator over
// 2D pixel blocks: accesses return hit/miss, counters accumulate, and the
// platform charges miss penalties. LRU replacement within a set.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace fisheye::accel {

struct BlockCacheConfig {
  int block_w = 32;  ///< pixels per block horizontally (power of two)
  int block_h = 8;   ///< rows per block (power of two)
  int sets = 64;     ///< number of sets (power of two)
  int ways = 4;      ///< associativity

  /// Total capacity in pixels.
  [[nodiscard]] constexpr std::size_t capacity_pixels() const noexcept {
    return static_cast<std::size_t>(block_w) * block_h * sets * ways;
  }
};

class BlockCache {
 public:
  explicit BlockCache(const BlockCacheConfig& config);

  /// Access pixel (x, y); returns true on hit, false on miss (the block is
  /// then resident). Coordinates must be non-negative.
  bool access(int x, int y) noexcept;

  /// Touch the whole aligned footprint of a bilinear tap pair: accesses
  /// (x, y) and, when they fall in different blocks, (x+1, y), (x, y+1),
  /// (x+1, y+1). Returns the number of misses incurred (0-4).
  int access_footprint(int x, int y) noexcept;

  void flush() noexcept;

  [[nodiscard]] std::size_t accesses() const noexcept { return accesses_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }
  [[nodiscard]] double hit_rate() const noexcept {
    return accesses_ == 0
               ? 0.0
               : 1.0 - static_cast<double>(misses_) /
                           static_cast<double>(accesses_);
  }
  [[nodiscard]] const BlockCacheConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Way {
    std::uint64_t tag = kEmpty;
    std::uint64_t lru = 0;  ///< last-use stamp
  };
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  [[nodiscard]] std::uint64_t block_id(int x, int y) const noexcept;

  BlockCacheConfig config_;
  int block_w_shift_;
  int block_h_shift_;
  std::uint64_t set_mask_;
  std::vector<Way> ways_;  ///< sets * ways, row-major by set
  std::uint64_t clock_ = 0;
  std::size_t accesses_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace fisheye::accel
