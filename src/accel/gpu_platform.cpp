#include "accel/gpu_platform.hpp"

#include <cmath>

#include "core/execution_plan.hpp"
#include "core/kernel.hpp"
#include "parallel/partition.hpp"
#include "util/error.hpp"

namespace fisheye::accel {

GpuPlatform::GpuPlatform(const core::WarpMap& map, const GpuConfig& config)
    : map_(&map), config_(config) {
  FE_EXPECTS(config.cost.num_sms >= 1 && config.cost.num_sms <= 256);
  FE_EXPECTS(config.block_dim >= 4 && config.block_dim <= 32);
}

AccelFrameStats GpuPlatform::run_frame(img::ConstImageView<std::uint8_t> src,
                                       img::ImageView<std::uint8_t> dst,
                                       std::uint8_t fill) {
  FE_EXPECTS(dst.width == map_->width && dst.height == map_->height);
  FE_EXPECTS(src.channels == dst.channels);

  // Functional output: the registry's float-LUT bilinear kernel — the same
  // resolved function object every CPU backend runs, so outputs are
  // bit-identical to the serial reference by construction.
  core::ExecContext kctx;
  kctx.src = src;
  kctx.dst = dst;
  kctx.map = map_;
  kctx.mode = core::MapMode::FloatLut;
  kctx.opts = {core::Interp::Bilinear, img::BorderMode::Constant, fill};
  core::resolve_kernel(kctx)(src, dst, {0, 0, dst.width, dst.height});

  const GpuCostModel& c = config_.cost;
  const int bd = config_.block_dim;
  const int ch = src.channels;

  // Thread blocks round-robin across SMs; one texture cache per SM.
  std::vector<BlockCache> tex;
  tex.reserve(static_cast<std::size_t>(c.num_sms));
  for (int s = 0; s < c.num_sms; ++s) tex.emplace_back(config_.tex_cache);

  const std::vector<par::Rect> blocks = par::partition(
      map_->width, map_->height, par::PartitionKind::Tiles, 0, bd, bd);

  double compute_cycles = 0.0;
  std::size_t lut_bytes = 0, out_bytes = 0, tex_miss_bytes = 0;
  std::size_t tex_accesses = 0, tex_misses = 0;
  const std::size_t tex_block_bytes =
      static_cast<std::size_t>(config_.tex_cache.block_w) *
      config_.tex_cache.block_h * ch;

  for (std::size_t b = 0; b < blocks.size(); ++b) {
    BlockCache& cache = tex[b % static_cast<std::size_t>(c.num_sms)];
    const par::Rect& r = blocks[b];
    for (int y = r.y0; y < r.y1; ++y) {
      const std::size_t row = static_cast<std::size_t>(y) * map_->width;
      for (int x = r.x0; x < r.x1; ++x) {
        compute_cycles += c.issue_cycles_per_pixel * ch;
        const float sx = map_->src_x[row + x];
        const float sy = map_->src_y[row + x];
        if (sx <= -1.0f || sy <= -1.0f ||
            sx >= static_cast<float>(src.width) ||
            sy >= static_cast<float>(src.height))
          continue;  // fill: no memory taps
        const int x0 = static_cast<int>(std::floor(sx));
        const int y0 = static_cast<int>(std::floor(sy));
        const int cx = x0 < 0 ? 0 : x0;
        const int cy = y0 < 0 ? 0 : y0;
        const int miss = cache.access_footprint(cx, cy);
        tex_misses += static_cast<std::size_t>(miss);
        tex_accesses += 1;
        tex_miss_bytes += static_cast<std::size_t>(miss) * tex_block_bytes;
      }
    }
    // Coalesced streams: LUT reads (8 B/px) and output writes (ch B/px),
    // rounded up to whole transactions per block row segment.
    const std::size_t px = static_cast<std::size_t>(r.area());
    const auto round_txn = [&](std::size_t bytes) {
      const std::size_t t = static_cast<std::size_t>(c.transaction_bytes);
      return ((bytes + t - 1) / t) * t;
    };
    lut_bytes += round_txn(px * 8);
    out_bytes += round_txn(px * static_cast<std::size_t>(ch));
  }

  AccelFrameStats stats;
  const double alu_cycles =
      compute_cycles / static_cast<double>(c.num_sms);
  const double dram_bytes =
      static_cast<double>(lut_bytes + out_bytes + tex_miss_bytes);
  const double bw_cycles = dram_bytes / c.dram_bytes_per_cycle;
  stats.cycles = c.launch_overhead_cycles + std::max(alu_cycles, bw_cycles);
  stats.seconds = stats.cycles / c.clock_hz;
  stats.fps = stats.seconds > 0.0 ? 1.0 / stats.seconds : 0.0;
  stats.compute_cycles = compute_cycles;
  stats.bytes_in = lut_bytes + tex_miss_bytes;
  stats.bytes_out = out_bytes;
  stats.cache_accesses = tex_accesses;
  stats.cache_misses = tex_misses;
  stats.tiles = blocks.size();
  stats.utilization =
      stats.cycles > 0.0 ? alu_cycles / stats.cycles : 0.0;
  return stats;
}

}  // namespace fisheye::accel
