// FPGA streaming-pipeline platform simulator.
//
// Architecture modeled (the standard way the kernel is hardened):
//   coordinate stream (packed fixed-point LUT from DDR, sequential bursts)
//     -> address generator
//     -> block cache (BRAM) in front of the DDR source-frame reader
//     -> 4-tap bilinear blend datapath, II = 1
//     -> sequential output writer.
// Output pixels are produced in raster order, one per II cycles, except
// that each block-cache miss stalls the pipeline for a DDR burst. The LUT
// and output streams are sequential and prefetched, so they do not stall;
// their bandwidth is accounted but rarely binds.
//
// With a compact map the address generator is fed by an on-the-fly fixed-
// point reconstruction stage instead of a DDR coordinate stream. When the
// whole grid fits the LUT BRAM budget it is loaded once at configuration
// time and the per-frame LUT DDR traffic drops to zero — the paper-era win
// this platform exists to demonstrate. Oversized grids fall back to
// streaming the grid from DDR each frame (still ~stride^2 less traffic
// than the packed LUT).
//
// Functional execution uses the same packed/compact fixed-point kernels as
// the CPU paths, so output equality is testable bit-for-bit.
#pragma once

#include "accel/cache_sim.hpp"
#include "accel/cost_model.hpp"
#include "core/mapping.hpp"
#include "image/image.hpp"

namespace fisheye::accel {

struct FpgaConfig {
  BlockCacheConfig cache;
  FpgaCostModel cost;
  /// BRAM budget for holding a compact coordinate grid on-chip. A grid
  /// that fits is loaded at configuration time and costs no per-frame DDR
  /// traffic; a larger grid streams from DDR each frame. (The full packed
  /// LUT never fits: 8 B/pixel vs a few hundred KB of BRAM.)
  std::size_t lut_bram_bytes = 256 * 1024;
};

class FpgaPlatform {
 public:
  /// `map` must outlive the platform.
  FpgaPlatform(const core::PackedMap& map, const FpgaConfig& config);

  /// Compact-map variant: the address generator reconstructs coordinates
  /// from the stride x stride grid (bit-exact with remap_compact_rect).
  FpgaPlatform(const core::CompactMap& map, const FpgaConfig& config);

  /// Simulate one frame: fills `dst` (bilinear, constant fill) and returns
  /// modeled timing including cache statistics.
  AccelFrameStats run_frame(img::ConstImageView<std::uint8_t> src,
                            img::ImageView<std::uint8_t> dst,
                            std::uint8_t fill);

  [[nodiscard]] const FpgaConfig& config() const noexcept { return config_; }

  /// True when the coordinate data is resident in BRAM (compact grid within
  /// lut_bram_bytes): no per-frame LUT DDR traffic.
  [[nodiscard]] bool lut_on_chip() const noexcept {
    return cmap_ != nullptr && cmap_->bytes() <= config_.lut_bram_bytes;
  }

 private:
  const core::PackedMap* map_;          ///< packed mode; null otherwise
  const core::CompactMap* cmap_ = nullptr;  ///< compact mode
  FpgaConfig config_;
};

}  // namespace fisheye::accel
