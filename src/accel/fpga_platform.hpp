// FPGA streaming-pipeline platform simulator.
//
// Architecture modeled (the standard way the kernel is hardened):
//   coordinate stream (packed fixed-point LUT from DDR, sequential bursts)
//     -> address generator
//     -> block cache (BRAM) in front of the DDR source-frame reader
//     -> 4-tap bilinear blend datapath, II = 1
//     -> sequential output writer.
// Output pixels are produced in raster order, one per II cycles, except
// that each block-cache miss stalls the pipeline for a DDR burst. The LUT
// and output streams are sequential and prefetched, so they do not stall;
// their bandwidth is accounted but rarely binds.
//
// Functional execution uses the same packed fixed-point kernel as the CPU
// PackedLut path, so output equality is testable bit-for-bit.
#pragma once

#include "accel/cache_sim.hpp"
#include "accel/cost_model.hpp"
#include "core/mapping.hpp"
#include "image/image.hpp"

namespace fisheye::accel {

struct FpgaConfig {
  BlockCacheConfig cache;
  FpgaCostModel cost;
};

class FpgaPlatform {
 public:
  /// `map` must outlive the platform.
  FpgaPlatform(const core::PackedMap& map, const FpgaConfig& config);

  /// Simulate one frame: fills `dst` (bilinear, constant fill) and returns
  /// modeled timing including cache statistics.
  AccelFrameStats run_frame(img::ConstImageView<std::uint8_t> src,
                            img::ImageView<std::uint8_t> dst,
                            std::uint8_t fill);

  [[nodiscard]] const FpgaConfig& config() const noexcept { return config_; }

 private:
  const core::PackedMap* map_;
  FpgaConfig config_;
};

}  // namespace fisheye::accel
