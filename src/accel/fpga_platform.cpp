#include "accel/fpga_platform.hpp"

#include "core/execution_plan.hpp"
#include "core/kernel.hpp"
#include "util/error.hpp"

namespace fisheye::accel {

FpgaPlatform::FpgaPlatform(const core::PackedMap& map,
                           const FpgaConfig& config)
    : map_(&map), config_(config) {}

FpgaPlatform::FpgaPlatform(const core::CompactMap& map,
                           const FpgaConfig& config)
    : map_(nullptr), cmap_(&map), config_(config) {}

AccelFrameStats FpgaPlatform::run_frame(img::ConstImageView<std::uint8_t> src,
                                        img::ImageView<std::uint8_t> dst,
                                        std::uint8_t fill) {
  const int out_w = cmap_ ? cmap_->width : map_->width;
  const int out_h = cmap_ ? cmap_->height : map_->height;
  FE_EXPECTS(dst.width == out_w && dst.height == out_h);
  FE_EXPECTS(src.channels == dst.channels);

  // Functional output: the registry's fixed-point kernel for this map
  // representation — identical datapath to the CPU packed/compact paths.
  core::ExecContext kctx;
  kctx.src = src;
  kctx.dst = dst;
  kctx.packed = map_;
  kctx.compact = cmap_;
  kctx.mode = cmap_ ? core::MapMode::CompactLut : core::MapMode::PackedLut;
  kctx.opts = {core::Interp::Bilinear, img::BorderMode::Constant, fill};
  core::resolve_kernel(kctx)(src, dst, {0, 0, dst.width, dst.height});

  // Timing: raster scan of the output; every valid pixel touches its
  // bilinear footprint through the block cache.
  BlockCache cache(config_.cache);
  std::size_t total_misses = 0;
  if (cmap_) {
    const int frac = cmap_->frac_bits;
    const std::int32_t one = std::int32_t{1} << frac;
    const std::int32_t lim_x = static_cast<std::int32_t>(cmap_->src_width)
                               << frac;
    const std::int32_t lim_y = static_cast<std::int32_t>(cmap_->src_height)
                               << frac;
    for (int y = 0; y < out_h; ++y) {
      for (int x = 0; x < out_w; ++x) {
        const core::CompactEntry e = core::reconstruct_entry(*cmap_, x, y);
        if (e.fx <= -one || e.fy <= -one || e.fx >= lim_x || e.fy >= lim_y)
          continue;
        const std::int32_t fx =
            e.fx < 0 ? 0 : (e.fx > lim_x - one ? lim_x - one : e.fx);
        const std::int32_t fy =
            e.fy < 0 ? 0 : (e.fy > lim_y - one ? lim_y - one : e.fy);
        total_misses += cache.access_footprint(fx >> frac, fy >> frac);
      }
    }
  } else {
    const int frac = map_->frac_bits;
    for (int y = 0; y < out_h; ++y) {
      const std::size_t row = static_cast<std::size_t>(y) * out_w;
      for (int x = 0; x < out_w; ++x) {
        const std::int32_t fx = map_->fx[row + x];
        if (fx == core::PackedMap::kInvalid) continue;
        const std::int32_t fy = map_->fy[row + x];
        total_misses += cache.access_footprint(fx >> frac, fy >> frac);
      }
    }
  }

  AccelFrameStats stats;
  const auto pixels = static_cast<double>(out_w) * static_cast<double>(out_h);
  const FpgaCostModel& c = config_.cost;
  // DDR traffic: LUT stream + output stream + one block per miss. A
  // compact grid resident in BRAM costs nothing per frame.
  const std::size_t block_bytes =
      static_cast<std::size_t>(config_.cache.block_w) *
      static_cast<std::size_t>(config_.cache.block_h) *
      static_cast<std::size_t>(src.channels);
  const std::size_t lut_bytes =
      cmap_ ? (lut_on_chip() ? 0 : cmap_->bytes()) : map_->bytes();
  stats.bytes_in = lut_bytes + cache.misses() * block_bytes;
  stats.bytes_out = static_cast<std::size_t>(dst.width) * dst.height *
                    static_cast<std::size_t>(dst.channels);
  stats.cycles = c.pipeline_depth + pixels * c.initiation_interval +
                 static_cast<double>(total_misses) * c.miss_penalty_cycles;
  // Shared-DDR-port bound (when modeled): the pipeline cannot outrun the
  // memory controller feeding the LUT/miss/output streams.
  if (c.ddr_bytes_per_cycle > 0.0) {
    const double ddr_cycles =
        static_cast<double>(stats.bytes_in + stats.bytes_out) /
        c.ddr_bytes_per_cycle;
    if (ddr_cycles > stats.cycles) stats.cycles = ddr_cycles;
  }
  stats.seconds = stats.cycles / c.clock_hz;
  stats.fps = stats.seconds > 0.0 ? 1.0 / stats.seconds : 0.0;
  stats.cache_accesses = cache.accesses();
  stats.cache_misses = cache.misses();
  stats.tiles = 1;
  stats.compute_cycles = pixels * c.initiation_interval;
  stats.utilization = stats.cycles > 0.0 ? stats.compute_cycles / stats.cycles
                                         : 0.0;
  return stats;
}

}  // namespace fisheye::accel
