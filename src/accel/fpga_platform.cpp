#include "accel/fpga_platform.hpp"

#include "core/remap.hpp"
#include "util/error.hpp"

namespace fisheye::accel {

FpgaPlatform::FpgaPlatform(const core::PackedMap& map,
                           const FpgaConfig& config)
    : map_(&map), config_(config) {}

AccelFrameStats FpgaPlatform::run_frame(img::ConstImageView<std::uint8_t> src,
                                        img::ImageView<std::uint8_t> dst,
                                        std::uint8_t fill) {
  FE_EXPECTS(dst.width == map_->width && dst.height == map_->height);
  FE_EXPECTS(src.channels == dst.channels);

  // Functional output: identical datapath to the CPU packed-LUT kernel.
  core::remap_packed_rect(src, dst, *map_,
                          {0, 0, dst.width, dst.height}, fill);

  // Timing: raster scan of the output; every valid pixel touches its
  // bilinear footprint through the block cache.
  BlockCache cache(config_.cache);
  const int frac = map_->frac_bits;
  std::size_t total_misses = 0;
  for (int y = 0; y < map_->height; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * map_->width;
    for (int x = 0; x < map_->width; ++x) {
      const std::int32_t fx = map_->fx[row + x];
      if (fx == core::PackedMap::kInvalid) continue;
      const std::int32_t fy = map_->fy[row + x];
      total_misses += cache.access_footprint(fx >> frac, fy >> frac);
    }
  }

  AccelFrameStats stats;
  const auto pixels =
      static_cast<double>(map_->width) * static_cast<double>(map_->height);
  const FpgaCostModel& c = config_.cost;
  stats.cycles = c.pipeline_depth + pixels * c.initiation_interval +
                 static_cast<double>(total_misses) * c.miss_penalty_cycles;
  stats.seconds = stats.cycles / c.clock_hz;
  stats.fps = stats.seconds > 0.0 ? 1.0 / stats.seconds : 0.0;
  stats.cache_accesses = cache.accesses();
  stats.cache_misses = cache.misses();
  stats.tiles = 1;
  // DDR traffic: LUT stream + output stream + one block per miss.
  const std::size_t block_bytes =
      static_cast<std::size_t>(config_.cache.block_w) *
      static_cast<std::size_t>(config_.cache.block_h) *
      static_cast<std::size_t>(src.channels);
  stats.bytes_in = map_->bytes() + cache.misses() * block_bytes;
  stats.bytes_out = static_cast<std::size_t>(dst.width) * dst.height *
                    static_cast<std::size_t>(dst.channels);
  stats.compute_cycles = pixels * c.initiation_interval;
  stats.utilization = stats.cycles > 0.0 ? stats.compute_cycles / stats.cycles
                                         : 0.0;
  return stats;
}

}  // namespace fisheye::accel
