// core::Backend adapters for the simulated accelerator platforms, so the
// bench harness drives CPUs and accelerators through one interface.
//
// Platform setup (tile decomposition, map reorganization) happens on the
// first execute() for a given map and is cached — mirroring the one-time
// initialization cost a real deployment pays; last_stats() exposes the
// modeled per-frame timing for the harness.
#pragma once

#include <memory>
#include <optional>

#include "accel/fpga_platform.hpp"
#include "accel/gpu_platform.hpp"
#include "accel/spe_platform.hpp"
#include "core/backend.hpp"

namespace fisheye::accel {

class CellBackend final : public core::Backend {
 public:
  explicit CellBackend(SpeConfig config) : config_(config) {}

  /// Requires ctx.mode == FloatLut with bilinear + constant border.
  void execute(const core::ExecContext& ctx) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const AccelFrameStats& last_stats() const noexcept {
    return last_stats_;
  }
  [[nodiscard]] const CellLikePlatform* platform() const noexcept {
    return platform_.get();
  }

 private:
  SpeConfig config_;
  std::unique_ptr<CellLikePlatform> platform_;
  const core::WarpMap* cached_map_ = nullptr;
  int cached_channels_ = 0;
  AccelFrameStats last_stats_;
};

class GpuBackend final : public core::Backend {
 public:
  explicit GpuBackend(GpuConfig config) : config_(config) {}

  /// Requires ctx.mode == FloatLut with bilinear + constant border.
  void execute(const core::ExecContext& ctx) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const AccelFrameStats& last_stats() const noexcept {
    return last_stats_;
  }

 private:
  GpuConfig config_;
  std::unique_ptr<GpuPlatform> platform_;
  const core::WarpMap* cached_map_ = nullptr;
  AccelFrameStats last_stats_;
};

class FpgaBackend final : public core::Backend {
 public:
  explicit FpgaBackend(FpgaConfig config) : config_(config) {}

  /// Requires ctx.mode == PackedLut.
  void execute(const core::ExecContext& ctx) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const AccelFrameStats& last_stats() const noexcept {
    return last_stats_;
  }

 private:
  FpgaConfig config_;
  std::unique_ptr<FpgaPlatform> platform_;
  const core::PackedMap* cached_map_ = nullptr;
  AccelFrameStats last_stats_;
};

}  // namespace fisheye::accel
