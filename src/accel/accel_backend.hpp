// core::Backend adapters for the simulated accelerator platforms, so the
// bench harness drives CPUs and accelerators through one interface.
//
// Platform setup (tile decomposition, map reorganization, cache sizing) is
// the plan: Backend::plan(ctx) instantiates the platform and stores it as
// the ExecutionPlan's state, keyed on geometry and map identity (address +
// generation + dims — so a map rebuilt at a recycled address replans
// instead of silently reusing a stale reorganization). execute(plan, ctx)
// is the steady-state per-frame path; last_stats() exposes the modeled
// frame timing, and the plan's instrumentation carries per-tile modeled
// seconds like every other backend.
//
// These kinds self-register with BackendRegistry ("cell", "gpu", "fpga")
// from accel_registry.cpp.
#pragma once

#include "accel/fpga_platform.hpp"
#include "accel/gpu_platform.hpp"
#include "accel/spe_platform.hpp"
#include "core/backend.hpp"

namespace fisheye::accel {

class CellBackend final : public core::Backend {
 public:
  explicit CellBackend(SpeConfig config) : config_(config) {}

  using Backend::execute;
  /// Requires an effective mode of FloatLut or CompactLut (map=compact:N
  /// converts at plan time) with bilinear + constant border.
  [[nodiscard]] core::ExecutionPlan plan(const core::ExecContext& ctx) override;
  void execute(const core::ExecutionPlan& plan,
               const core::ExecContext& ctx) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const AccelFrameStats& last_stats() const noexcept {
    return last_stats_;
  }
  [[nodiscard]] const SpeConfig& config() const noexcept { return config_; }
  /// Platform prepared by the one-shot path's cached plan (null before the
  /// first execute(ctx)); F6 reads peak_working_set() from it.
  [[nodiscard]] const CellLikePlatform* platform() const noexcept {
    return last_plan().valid() ? last_plan().state<CellLikePlatform>()
                               : nullptr;
  }

 private:
  SpeConfig config_;
  AccelFrameStats last_stats_;
};

class GpuBackend final : public core::Backend {
 public:
  explicit GpuBackend(GpuConfig config) : config_(config) {}

  using Backend::execute;
  /// Requires ctx.mode == FloatLut with bilinear + constant border.
  [[nodiscard]] core::ExecutionPlan plan(const core::ExecContext& ctx) override;
  void execute(const core::ExecutionPlan& plan,
               const core::ExecContext& ctx) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const AccelFrameStats& last_stats() const noexcept {
    return last_stats_;
  }
  [[nodiscard]] const GpuConfig& config() const noexcept { return config_; }

 private:
  GpuConfig config_;
  AccelFrameStats last_stats_;
};

class FpgaBackend final : public core::Backend {
 public:
  explicit FpgaBackend(FpgaConfig config) : config_(config) {}

  using Backend::execute;
  /// Requires an effective mode of PackedLut or CompactLut (map=compact:N
  /// converts at plan time).
  [[nodiscard]] core::ExecutionPlan plan(const core::ExecContext& ctx) override;
  void execute(const core::ExecutionPlan& plan,
               const core::ExecContext& ctx) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const AccelFrameStats& last_stats() const noexcept {
    return last_stats_;
  }
  [[nodiscard]] const FpgaConfig& config() const noexcept { return config_; }

 private:
  FpgaConfig config_;
  AccelFrameStats last_stats_;
};

}  // namespace fisheye::accel
