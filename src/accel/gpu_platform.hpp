// GPU-like SIMT platform simulator (2010-era discrete GPU).
//
// Architecture modeled — the standard CUDA port of the remap kernel:
//  * the output frame is tiled into 16x16 thread blocks, assigned
//    round-robin to `num_sms` streaming multiprocessors;
//  * per 32-thread warp: a few issue cycles per pixel of ALU work, one
//    coalesced 128-byte-transaction stream for the LUT read and the output
//    write, and data-dependent source taps served by a per-SM texture
//    cache (the BlockCache simulator);
//  * enough warps are resident that DRAM latency is hidden; throughput is
//    therefore the max of the aggregate ALU rate and the DRAM bandwidth
//    demanded by LUT + output + texture misses (a roofline, the standard
//    first-order GPU model), plus a fixed launch overhead.
//
// Functional execution reuses the float-LUT bilinear kernel, so outputs
// are bit-identical to the CPU serial reference (tested).
#pragma once

#include <vector>

#include "accel/cache_sim.hpp"
#include "accel/cost_model.hpp"
#include "core/mapping.hpp"
#include "image/image.hpp"

namespace fisheye::accel {

/// GTX-280-class defaults (30 SMs @ 1.3 GHz, ~140 GB/s DRAM).
struct GpuCostModel {
  int num_sms = 30;
  double clock_hz = 1.3e9;
  /// Issue cycles per output pixel per channel (address + blend ALU work,
  /// amortized across the warp).
  double issue_cycles_per_pixel = 6.0;
  /// DRAM bandwidth in bytes per core cycle (140 GB/s / 1.3 GHz ~ 108).
  double dram_bytes_per_cycle = 108.0;
  /// Memory transaction granularity (coalescing unit).
  int transaction_bytes = 128;
  /// Kernel launch + driver overhead per frame, cycles.
  double launch_overhead_cycles = 20000.0;
};

struct GpuConfig {
  GpuCostModel cost;
  /// Per-SM texture cache geometry. Default ~8 KB like the era's per-SM
  /// texture caches: 16x4-pixel blocks, 32 sets, 4 ways.
  BlockCacheConfig tex_cache{16, 4, 32, 4};
  int block_dim = 16;  ///< thread-block edge (block_dim x block_dim)
};

class GpuPlatform {
 public:
  /// `map` must outlive the platform.
  GpuPlatform(const core::WarpMap& map, const GpuConfig& config);

  /// Simulate one frame (bilinear, constant fill); returns modeled timing.
  AccelFrameStats run_frame(img::ConstImageView<std::uint8_t> src,
                            img::ImageView<std::uint8_t> dst,
                            std::uint8_t fill);

  [[nodiscard]] const GpuConfig& config() const noexcept { return config_; }

 private:
  const core::WarpMap* map_;
  GpuConfig config_;
};

}  // namespace fisheye::accel
