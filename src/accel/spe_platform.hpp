// Cell-BE-style accelerator platform simulator.
//
// Programming model reproduced faithfully:
//  * the frame is decomposed into output tiles;
//  * a tile's working set (its map entries, its source bounding box, its
//    output buffer) must fit in the SPE's 256 KB local store — tiles whose
//    source window is too large (edge tiles of a 180-degree map pull wide
//    arcs of the source) are recursively split;
//  * per tile: DMA-get map + source window, compute (bilinear remap with
//    constant fill), DMA-put the output tile;
//  * with a compact map only the tile's slice of the stride x stride
//    coordinate grid is DMA'd; the SPE reconstructs per-pixel coordinates
//    in fixed point, shrinking per-tile map traffic by ~stride^2 and
//    letting much larger output tiles fit the local store;
//  * tiles are dispatched across N SPEs; with double buffering the DMA of
//    tile k+1 overlaps the compute of tile k (three-stage pipeline with two
//    input/output buffer sets).
//
// Execution is functional (the output image is produced through real DMA
// copies into a real capacity-checked LocalStore) and timed analytically
// with SpeCostModel, so correctness is host-testable and the reported fps
// reflects the modeled hardware, not this container.
#pragma once

#include <vector>

#include "accel/cost_model.hpp"
#include "accel/dma.hpp"
#include "accel/local_store.hpp"
#include "core/mapping.hpp"
#include "image/image.hpp"
#include "parallel/partition.hpp"

namespace fisheye::accel {

/// How tiles are assigned to SPEs (the PPE-side scheduling policy).
enum class TileSchedule {
  RoundRobin,  ///< static cyclic assignment (no cost knowledge)
  GreedyEft,   ///< earliest-finish-time, tiles in raster order (work queue)
  Lpt,         ///< longest-processing-time-first: sort by cost, then EFT
  Steal,       ///< per-SPE runs of Morton-ordered tiles; idle SPEs steal
               ///< the tail half of the most loaded SPE's remaining run
};

[[nodiscard]] constexpr const char* tile_schedule_name(TileSchedule s) noexcept {
  switch (s) {
    case TileSchedule::RoundRobin: return "round-robin";
    case TileSchedule::GreedyEft: return "greedy-eft";
    case TileSchedule::Lpt: return "lpt";
    case TileSchedule::Steal: return "steal";
  }
  return "?";
}

struct SpeConfig {
  int num_spes = 8;
  std::size_t local_store_bytes = 256 * 1024;
  bool double_buffering = true;
  /// Initial output tile size; tiles split automatically if the working set
  /// exceeds the local store.
  int tile_w = 128;
  int tile_h = 32;
  TileSchedule schedule = TileSchedule::GreedyEft;
  SpeCostModel cost;
};

/// Per-tile record after decomposition (exposed for tests and F6).
struct SpeTile {
  par::Rect out;        ///< output rectangle
  par::Rect src_box;    ///< source bounding box (may be empty)
  std::size_t working_set_bytes = 0;
  std::size_t valid_px = 0;  ///< pixels that sample the source (vs fill)
  bool split = false;   ///< produced by splitting an oversized tile
};

class CellLikePlatform {
 public:
  /// Decomposes the frame and reorganizes `map` into tile-contiguous
  /// layout (the one-time setup a real port performs). `map` must outlive
  /// the platform. Channels is the pixel channel count frames will have.
  CellLikePlatform(const core::WarpMap& map, int src_width, int src_height,
                   int channels, const SpeConfig& config);

  /// Compact-map variant: tiles carry stride x stride grid slices instead
  /// of per-pixel entries and the SPE kernel reconstructs coordinates on
  /// the fly (bit-exact with core::remap_compact_rect). `map` must outlive
  /// the platform; source dimensions come from the map.
  CellLikePlatform(const core::CompactMap& map, int channels,
                   const SpeConfig& config);

  /// Simulate one frame: produces `dst` functionally and returns the
  /// modeled timing. Bilinear + constant border (the hardware kernel).
  AccelFrameStats run_frame(img::ConstImageView<std::uint8_t> src,
                            img::ImageView<std::uint8_t> dst,
                            std::uint8_t fill);

  [[nodiscard]] const std::vector<SpeTile>& tiles() const noexcept {
    return tiles_;
  }
  [[nodiscard]] const SpeConfig& config() const noexcept { return config_; }

  /// Largest local-store occupancy over all tiles (bytes), including the
  /// double-buffer factor. Always <= local_store_bytes by construction.
  [[nodiscard]] std::size_t peak_working_set() const noexcept;

  /// Modeled seconds per tile (DMA-in + compute + DMA-out at clock_hz),
  /// indexed like tiles(); fills the ExecutionPlan instrumentation slots.
  [[nodiscard]] std::vector<double> tile_seconds() const;

 private:
  struct TileCost {
    double dma_in = 0.0;
    double compute = 0.0;
    double dma_out = 0.0;
  };

  void init();
  void decompose(par::Rect rect, int depth);
  [[nodiscard]] std::size_t working_set(par::Rect out,
                                        par::Rect src_box) const noexcept;
  [[nodiscard]] TileCost tile_cost(const SpeTile& tile) const noexcept;
  /// Grid cells (exclusive bounds) whose entries the compact kernel reads
  /// for output rect `out`. Compact mode only.
  [[nodiscard]] par::Rect grid_rect(par::Rect out) const noexcept;
  /// Bytes of map data DMA'd per tile: per-pixel floats (float mode) or
  /// the grid slice (compact mode).
  [[nodiscard]] std::size_t map_slice_bytes(par::Rect out) const noexcept;

  const core::WarpMap* map_;            ///< float mode; null in compact mode
  const core::CompactMap* cmap_;        ///< compact mode; null in float mode
  int out_width_;
  int out_height_;
  int src_width_;
  int src_height_;
  int channels_;
  SpeConfig config_;
  std::vector<SpeTile> tiles_;
  /// Tile-contiguous map copy: for tile t, tile_maps_[t] holds src_x for
  /// all its pixels row-major, then src_y. Float mode only.
  std::vector<std::vector<float>> tile_maps_;
  /// Compact mode: per tile, the grid_rect() slice of gx row-major, then gy.
  std::vector<std::vector<std::int32_t>> tile_grids_;
};

}  // namespace fisheye::accel
