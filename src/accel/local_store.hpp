// Capacity-limited local store (SPE scratchpad) model.
//
// A bump arena over a real aligned allocation: the simulated kernel's
// buffers live here, so exceeding the 256 KB budget is a hard failure
// (ResourceError) exactly as it would be on hardware — the tile-splitting
// logic in the platform exists to avoid it, and tests drive both paths.
#pragma once

#include <cstdint>

#include "util/aligned.hpp"
#include "util/error.hpp"

namespace fisheye::accel {

class LocalStore {
 public:
  explicit LocalStore(std::size_t capacity_bytes)
      : capacity_(capacity_bytes), storage_(capacity_bytes) {
    FE_EXPECTS(capacity_bytes >= 4096);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t used() const noexcept { return used_; }
  [[nodiscard]] std::size_t free_bytes() const noexcept {
    return capacity_ - used_;
  }
  /// High-water mark since construction (reported as occupancy in F6).
  [[nodiscard]] std::size_t peak() const noexcept { return peak_; }

  /// Allocate `bytes` aligned to 16 (DMA quadword). Throws ResourceError
  /// when the store cannot hold the request — the hardware equivalent of a
  /// kernel that does not fit.
  std::uint8_t* allocate(std::size_t bytes) {
    const std::size_t aligned = util::align_up(bytes, 16);
    if (aligned > free_bytes())
      throw ResourceError("local store exhausted: need " +
                          std::to_string(aligned) + " B, free " +
                          std::to_string(free_bytes()) + " B of " +
                          std::to_string(capacity_) + " B");
    std::uint8_t* p = storage_.data() + used_;
    used_ += aligned;
    if (used_ > peak_) peak_ = used_;
    return p;
  }

  /// Release everything (between tiles). Peak is preserved.
  void reset() noexcept { used_ = 0; }

 private:
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
  util::AlignedBuffer<std::uint8_t> storage_;
};

}  // namespace fisheye::accel
