// BackendRegistry registrations for the accelerator simulators.
//
// This TU self-registers at static-initialization time; consumers force it
// out of the static archive with the linker anchor below (see the
// target_link_options in CMakeLists.txt), so linking fisheye_accel is all
// it takes for "cell" / "gpu" / "fpga" specs to resolve.
#include <memory>

#include "accel/accel_backend.hpp"
#include "core/backend_registry.hpp"
#include "util/error.hpp"

// Anchor referenced by `-Wl,--undefined=` so the archive member (and its
// static registrars) is always linked.
extern "C" void fisheye_accel_register_backends() {}

namespace fisheye::accel {

namespace {

/// Validate a spec-supplied BlockCacheConfig (cache_sim.hpp requires
/// power-of-two block dims and sets, ways in [1, 64]) at factory level so
/// bad specs throw InvalidArgument instead of tripping contracts later.
void require_cache_config(const core::BackendSpec& spec,
                          const std::string& key,
                          const std::vector<int>& v) {
  const auto pow2 = [](int x) { return x > 0 && (x & (x - 1)) == 0; };
  if (!pow2(v[0]) || !pow2(v[1]) || !pow2(v[2]))
    throw InvalidArgument(
        "backend spec '" + spec.text() + "': option '" + key +
        "' block dims and sets must be powers of two, got '" +
        std::to_string(v[0]) + "x" + std::to_string(v[1]) + "x" +
        std::to_string(v[2]) + "x" + std::to_string(v[3]) + "'");
  core::require_spec_range(spec, key, v[3], 1, 64);
  core::require_spec_range(spec, key, v[0], 1, 1 << 12);
  core::require_spec_range(spec, key, v[1], 1, 1 << 12);
  core::require_spec_range(spec, key, v[2], 1, 1 << 20);
}

std::unique_ptr<core::Backend> make_cell(core::BackendSpec& spec) {
  SpeConfig c;
  c.num_spes = spec.value_int("spes", c.num_spes);
  core::require_spec_range(spec, "spes", c.num_spes, 1, 64);
  if (spec.flag("sbuf")) c.double_buffering = false;
  if (spec.flag("dbuf")) c.double_buffering = true;
  std::tie(c.tile_w, c.tile_h) =
      spec.value_dims("tile", c.tile_w, c.tile_h);
  core::require_spec_range(spec, "tile", c.tile_w, 8, 1 << 16);
  core::require_spec_range(spec, "tile", c.tile_h, 1, 1 << 16);
  const int ls = spec.value_int("ls", static_cast<int>(c.local_store_bytes));
  // Floor matches LocalStore's minimum capacity plus the 2 KB code/stack
  // headroom the decomposer reserves.
  core::require_spec_range(spec, "ls", ls, 4096, 1 << 30);
  c.local_store_bytes = static_cast<std::size_t>(ls);
  if (const auto sched = spec.value("schedule")) {
    if (*sched == "rr") {
      c.schedule = TileSchedule::RoundRobin;
    } else if (*sched == "eft") {
      c.schedule = TileSchedule::GreedyEft;
    } else if (*sched == "lpt") {
      c.schedule = TileSchedule::Lpt;
    } else if (*sched == "steal") {
      c.schedule = TileSchedule::Steal;
    } else {
      throw InvalidArgument("backend spec '" + spec.text() +
                            "': unknown schedule '" + *sched +
                            "' (valid: rr, eft, lpt, steal)");
    }
  }
  c.cost.cycles_per_pixel =
      spec.value_double("cpp", c.cost.cycles_per_pixel);
  if (c.cost.cycles_per_pixel <= 0.0)
    throw InvalidArgument("backend spec '" + spec.text() +
                          "': option 'cpp' must be positive");
  auto backend = std::make_unique<CellBackend>(c);
  core::apply_map_option(spec, *backend);
  spec.finish(
      "spes=N, dbuf, sbuf, tile=WxH, ls=BYTES, schedule=rr|eft|lpt|steal, "
      "cpp=CYCLES, map=float|compact:<stride>");
  return backend;
}

std::unique_ptr<core::Backend> make_gpu(core::BackendSpec& spec) {
  GpuConfig c;
  c.cost.num_sms = spec.value_int("sms", c.cost.num_sms);
  core::require_spec_range(spec, "sms", c.cost.num_sms, 1, 256);
  const double ghz = spec.value_double("clock", 0.0);
  if (ghz > 0.0) c.cost.clock_hz = ghz * 1e9;
  const std::vector<int> tex = spec.value_int_list(
      "tex", {c.tex_cache.block_w, c.tex_cache.block_h, c.tex_cache.sets,
              c.tex_cache.ways});
  require_cache_config(spec, "tex", tex);
  c.tex_cache = {tex[0], tex[1], tex[2], tex[3]};
  c.block_dim = spec.value_int("block", c.block_dim);
  core::require_spec_range(spec, "block", c.block_dim, 4, 32);
  spec.finish("sms=N, clock=GHZ, tex=BWxBHxSETSxWAYS, block=N");
  return std::make_unique<GpuBackend>(c);
}

std::unique_ptr<core::Backend> make_fpga(core::BackendSpec& spec) {
  FpgaConfig c;
  const double mhz = spec.value_double("clock", 0.0);
  if (mhz > 0.0) c.cost.clock_hz = mhz * 1e6;
  const std::vector<int> cache = spec.value_int_list(
      "cache",
      {c.cache.block_w, c.cache.block_h, c.cache.sets, c.cache.ways});
  require_cache_config(spec, "cache", cache);
  c.cache = {cache[0], cache[1], cache[2], cache[3]};
  const int bram = spec.value_int("bram", static_cast<int>(c.lut_bram_bytes));
  core::require_spec_range(spec, "bram", bram, 0, 1 << 30);
  c.lut_bram_bytes = static_cast<std::size_t>(bram);
  c.cost.ddr_bytes_per_cycle =
      spec.value_double("ddr", c.cost.ddr_bytes_per_cycle);
  // ddr=0 disables the bandwidth term entirely, so only negatives are bad.
  if (c.cost.ddr_bytes_per_cycle < 0.0)
    throw InvalidArgument("backend spec '" + spec.text() +
                          "': option 'ddr' must be non-negative");
  auto backend = std::make_unique<FpgaBackend>(c);
  core::apply_map_option(spec, *backend);
  spec.finish(
      "clock=MHZ, cache=BWxBHxSETSxWAYS, bram=BYTES, ddr=BYTES_PER_CYCLE, "
      "map=packed|compact:<stride>");
  return backend;
}

const core::BackendRegistrar register_cell{
    "cell", "spes=N, dbuf|sbuf, tile=WxH, ls=BYTES, "
            "schedule=rr|eft|lpt|steal, cpp=CYCLES, "
            "map=float|compact:<stride>",
    make_cell};
const core::BackendRegistrar register_gpu{
    "gpu", "sms=N, clock=GHZ, tex=BWxBHxSETSxWAYS, block=N", make_gpu};
const core::BackendRegistrar register_fpga{
    "fpga", "clock=MHZ, cache=BWxBHxSETSxWAYS, bram=BYTES, "
            "ddr=BYTES_PER_CYCLE, map=packed|compact:<stride>",
    make_fpga};

}  // namespace

}  // namespace fisheye::accel
