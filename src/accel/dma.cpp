#include "accel/dma.hpp"

#include <cstring>

#include "util/error.hpp"

namespace fisheye::accel {

void DmaEngine::account(std::size_t bytes, bool inbound) {
  if (bytes == 0) return;
  const std::size_t elements =
      (bytes + kMaxElementBytes - 1) / kMaxElementBytes;
  stats_.transfers += 1;
  stats_.list_elements += elements;
  if (inbound)
    stats_.bytes_in += bytes;
  else
    stats_.bytes_out += bytes;
  // One latency per command; the list elements stream back-to-back.
  stats_.cycles += cost_->dma_latency_cycles +
                   static_cast<double>(bytes) / cost_->dma_bytes_per_cycle;
}

std::size_t DmaEngine::get_rect(img::ConstImageView<std::uint8_t> src,
                                par::Rect box, std::uint8_t* local,
                                std::size_t local_capacity) {
  FE_EXPECTS(!box.empty());
  FE_EXPECTS(box.x0 >= 0 && box.y0 >= 0 && box.x1 <= src.width &&
             box.y1 <= src.height);
  FE_EXPECTS(reinterpret_cast<std::uintptr_t>(local) % kAlignment == 0);
  const std::size_t row_bytes =
      static_cast<std::size_t>(box.width()) * src.channels;
  const std::size_t total = row_bytes * static_cast<std::size_t>(box.height());
  FE_EXPECTS(total <= local_capacity);
  for (int y = box.y0; y < box.y1; ++y)
    std::memcpy(local + row_bytes * static_cast<std::size_t>(y - box.y0),
                src.row(y) + static_cast<std::size_t>(box.x0) * src.channels,
                row_bytes);
  account(total, /*inbound=*/true);
  return total;
}

std::size_t DmaEngine::get_linear(const void* src, std::size_t bytes,
                                  std::uint8_t* local,
                                  std::size_t local_capacity) {
  FE_EXPECTS(bytes <= local_capacity);
  FE_EXPECTS(reinterpret_cast<std::uintptr_t>(local) % kAlignment == 0);
  std::memcpy(local, src, bytes);
  account(bytes, /*inbound=*/true);
  return bytes;
}

std::size_t DmaEngine::put_rect(const std::uint8_t* local,
                                img::ImageView<std::uint8_t> dst,
                                par::Rect box) {
  FE_EXPECTS(!box.empty());
  FE_EXPECTS(box.x0 >= 0 && box.y0 >= 0 && box.x1 <= dst.width &&
             box.y1 <= dst.height);
  FE_EXPECTS(reinterpret_cast<std::uintptr_t>(local) % kAlignment == 0);
  const std::size_t row_bytes =
      static_cast<std::size_t>(box.width()) * dst.channels;
  for (int y = box.y0; y < box.y1; ++y)
    std::memcpy(dst.row(y) + static_cast<std::size_t>(box.x0) * dst.channels,
                local + row_bytes * static_cast<std::size_t>(y - box.y0),
                row_bytes);
  const std::size_t total = row_bytes * static_cast<std::size_t>(box.height());
  account(total, /*inbound=*/false);
  return total;
}

}  // namespace fisheye::accel
