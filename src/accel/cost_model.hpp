// Cycle cost models for the simulated accelerator platforms.
//
// The simulators execute the real kernels functionally on the host (so
// output correctness is testable bit-for-bit) while accounting cycles with
// these analytic models. Constants default to the published figures of the
// 2010-era hardware the study targeted:
//  * Cell BE: 3.2 GHz SPEs, 256 KB local store, MFC DMA up to 16 KB per
//    element, ~25.6 GB/s XDR memory, EIB far above memory bandwidth.
//  * Mid-range FPGA: 100-200 MHz pixel pipeline, II=1, BRAM line/block
//    cache in front of a DDR controller with tens-of-cycles burst latency.
// Absolute fps numbers are model outputs, not host measurements — the shape
// (scaling, saturation, crossover) is what the experiments reproduce.
#pragma once

#include <cstddef>

namespace fisheye::accel {

/// Cell-BE-like accelerator cost parameters.
struct SpeCostModel {
  double clock_hz = 3.2e9;

  /// SPE compute cost per output pixel per channel, bilinear from the LUT.
  /// Dominated by the four byte gathers, which the SPU ISA has no direct
  /// support for (shuffle-based extraction), plus address generation and
  /// the blend: ~48 cycles/pixel is representative of a tuned kernel.
  double cycles_per_pixel = 48.0;

  /// Extra SPE cost per output pixel (not per channel) to reconstruct the
  /// sampling coordinate from a compact block-subsampled map: two fixed
  /// point lerps per axis plus the rounding shift, all in the integer
  /// pipelines, which dual-issue against the gather-heavy odd pipeline.
  double compact_cycles_per_pixel = 6.0;

  /// Fixed MFC command issue + completion latency per DMA transfer.
  double dma_latency_cycles = 300.0;

  /// Per-SPE DMA streaming throughput, bytes per SPE cycle (the MFC can
  /// sustain ~8 B/cycle when the EIB is uncontended).
  double dma_bytes_per_cycle = 8.0;

  /// Aggregate off-chip memory bandwidth shared by all SPEs, bytes per
  /// cycle at clock_hz (25.6 GB/s / 3.2 GHz = 8 B/cycle).
  double shared_memory_bytes_per_cycle = 8.0;

  /// PPE-side work-queue dispatch overhead per tile (mailbox round trip).
  double dispatch_cycles_per_tile = 1000.0;
};

/// FPGA streaming-pipeline cost parameters.
struct FpgaCostModel {
  double clock_hz = 150.0e6;

  /// Initiation interval: output pixels per cycle is 1/II.
  double initiation_interval = 1.0;

  /// Pipeline fill depth (cycles before the first pixel emerges).
  double pipeline_depth = 64.0;

  /// Stall cycles per block-cache miss (DDR burst fetch of one block).
  double miss_penalty_cycles = 24.0;

  /// Shared DDR port bandwidth in bytes per pipeline cycle; the frame can
  /// go no faster than (bytes_in + bytes_out) / this. 0 (the default)
  /// disables the bound — the idealized prefetch model the cache-centric
  /// experiments (F7) use. A mid-range-era board sits around 6 B/cycle
  /// (a 16/32-bit DDR2 channel at ~900 MB/s effective against a 150 MHz
  /// pipeline), at which point streaming an 8 B/px LUT from DDR is the
  /// binding constraint — the map-bandwidth wall F20 measures, and the
  /// reason a BRAM-resident compact grid wins.
  double ddr_bytes_per_cycle = 0.0;
};

/// Outcome of one simulated frame on an accelerator.
struct AccelFrameStats {
  double cycles = 0.0;            ///< modeled total cycles for the frame
  double seconds = 0.0;           ///< cycles / clock
  double fps = 0.0;               ///< 1 / seconds
  std::size_t bytes_in = 0;       ///< DMA/DDR bytes fetched
  std::size_t bytes_out = 0;      ///< DMA/DDR bytes written
  std::size_t tiles = 0;          ///< tiles (Cell) or 1 (FPGA stream)
  std::size_t tile_splits = 0;    ///< tiles split to fit the local store
  std::size_t steals = 0;         ///< Cell steal policy: steal operations
  double compute_cycles = 0.0;    ///< aggregate busy compute cycles
  double dma_cycles = 0.0;        ///< aggregate DMA occupancy cycles
  double utilization = 0.0;       ///< busiest-lane compute / total
  // FPGA-specific:
  std::size_t cache_accesses = 0;
  std::size_t cache_misses = 0;

  [[nodiscard]] double cache_hit_rate() const noexcept {
    return cache_accesses == 0
               ? 0.0
               : 1.0 - static_cast<double>(cache_misses) /
                           static_cast<double>(cache_accesses);
  }
};

}  // namespace fisheye::accel
