#include "calib/calibrate.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/mathx.hpp"

namespace fisheye::calib {

std::vector<Correspondence> make_grid_correspondences(
    const core::FisheyeCamera& truth, int grid_n, double max_theta,
    double noise_px, util::Rng& rng) {
  FE_EXPECTS(grid_n >= 3);
  FE_EXPECTS(max_theta > 0.0 && max_theta <= truth.lens().max_theta());
  std::vector<Correspondence> obs;
  obs.reserve(static_cast<std::size_t>(grid_n) * grid_n);
  // Rays on a polar grid: `grid_n` rings x `grid_n` azimuths, plus centre.
  for (int i = 0; i < grid_n; ++i) {
    const double theta = max_theta * (i + 1) / grid_n;
    for (int j = 0; j < grid_n; ++j) {
      const double phi = 2.0 * util::kPi * j / grid_n +
                         0.1 * i;  // stagger rings to avoid degenerate rows
      const util::Vec3 ray{std::sin(theta) * std::cos(phi),
                           std::sin(theta) * std::sin(phi), std::cos(theta)};
      util::Vec2 px = truth.project(ray);
      px.x += rng.normal(0.0, noise_px);
      px.y += rng.normal(0.0, noise_px);
      obs.push_back({ray, px});
    }
  }
  obs.push_back({{0.0, 0.0, 1.0}, {truth.cx(), truth.cy()}});
  return obs;
}

namespace {

/// Residual vector (2 entries per observation) for parameters p=(f,cx,cy).
std::vector<double> residuals(core::LensKind kind,
                              const std::vector<Correspondence>& obs,
                              double focal, double cx, double cy) {
  const auto lens = core::make_lens(kind, focal);
  const core::FisheyeCamera cam(
      std::shared_ptr<const core::LensModel>(lens.get(),
                                             [](const core::LensModel*) {}),
      cx, cy);
  std::vector<double> r;
  r.reserve(obs.size() * 2);
  for (const Correspondence& o : obs) {
    const util::Vec2 proj = cam.project(o.ray);
    r.push_back(proj.x - o.pixel.x);
    r.push_back(proj.y - o.pixel.y);
  }
  return r;
}

double cost_of(const std::vector<double>& r) {
  double c = 0.0;
  for (double v : r) c += v * v;
  return c;
}

}  // namespace

CalibrationResult calibrate_radial(core::LensKind kind,
                                   const std::vector<Correspondence>& obs,
                                   double initial_focal, double initial_cx,
                                   double initial_cy,
                                   const CalibrationOptions& options) {
  FE_EXPECTS(obs.size() >= 3);
  FE_EXPECTS(initial_focal > 0.0);

  double p[3] = {initial_focal, initial_cx, initial_cy};
  std::vector<double> r = residuals(kind, obs, p[0], p[1], p[2]);
  double cost = cost_of(r);
  double lambda = options.initial_lambda;

  CalibrationResult result;
  const auto record_error = [&](double c) {
    result.error_history.push_back(
        std::sqrt(c / static_cast<double>(obs.size() * 2)));
  };
  record_error(cost);

  for (int it = 0; it < options.max_iterations; ++it) {
    // Numeric Jacobian, central differences.
    util::MatX jac(r.size(), 3);
    for (int k = 0; k < 3; ++k) {
      const double h = std::max(1e-6, std::abs(p[k]) * 1e-6);
      double pk = p[k];
      p[k] = pk + h;
      const std::vector<double> rp = residuals(kind, obs, p[0], p[1], p[2]);
      p[k] = pk - h;
      const std::vector<double> rm = residuals(kind, obs, p[0], p[1], p[2]);
      p[k] = pk;
      for (std::size_t i = 0; i < r.size(); ++i)
        jac(i, k) = (rp[i] - rm[i]) / (2.0 * h);
    }

    // LM step: solve (J^T J + lambda I) d = -J^T r.
    std::vector<double> neg_r(r.size());
    for (std::size_t i = 0; i < r.size(); ++i) neg_r[i] = -r[i];

    bool accepted = false;
    for (int attempt = 0; attempt < 8 && !accepted; ++attempt) {
      std::vector<double> d;
      try {
        d = util::solve_least_squares(jac, neg_r, lambda);
      } catch (const InvalidArgument&) {
        lambda *= 10.0;
        continue;
      }
      const double cand[3] = {p[0] + d[0], p[1] + d[1], p[2] + d[2]};
      if (cand[0] <= 0.0) {
        lambda *= 10.0;
        continue;
      }
      const std::vector<double> rc =
          residuals(kind, obs, cand[0], cand[1], cand[2]);
      const double cc = cost_of(rc);
      if (cc < cost) {
        p[0] = cand[0];
        p[1] = cand[1];
        p[2] = cand[2];
        const double improvement = (cost - cc) / std::max(cost, 1e-30);
        r = rc;
        cost = cc;
        lambda = std::max(lambda * 0.3, 1e-12);
        accepted = true;
        record_error(cost);
        ++result.iterations;
        if (improvement < options.tolerance) {
          result.converged = true;
          it = options.max_iterations;  // stop outer loop
        }
      } else {
        lambda *= 10.0;
      }
    }
    if (!accepted) {
      result.converged = true;  // no descent direction left
      break;
    }
  }

  result.focal = p[0];
  result.cx = p[1];
  result.cy = p[2];
  result.rms_error_px =
      std::sqrt(cost / static_cast<double>(obs.size() * 2));
  return result;
}

namespace {

/// Residuals of the Brown-Conrady camera p = (f, cx, cy, k1, k2, k3).
/// Observations behind (or at) the image plane are skipped by the caller.
std::vector<double> bc_residuals(const std::vector<Correspondence>& obs,
                                 const double* p) {
  const core::BrownConrady model(
      core::BrownConradyCoeffs{p[3], p[4], p[5], 0.0, 0.0}, p[0]);
  std::vector<double> r;
  r.reserve(obs.size() * 2);
  for (const Correspondence& o : obs) {
    const util::Vec2 undist{o.ray.x / o.ray.z, o.ray.y / o.ray.z};
    const util::Vec2 dist = model.distort_normalized(undist);
    r.push_back(p[0] * dist.x + p[1] - o.pixel.x);
    r.push_back(p[0] * dist.y + p[2] - o.pixel.y);
  }
  return r;
}

}  // namespace

BrownConradyCalibration calibrate_brown_conrady(
    const std::vector<Correspondence>& obs, double initial_focal,
    double initial_cx, double initial_cy, const CalibrationOptions& options) {
  FE_EXPECTS(initial_focal > 0.0);
  // Reject rays the pinhole parameterization cannot express.
  std::vector<Correspondence> usable;
  usable.reserve(obs.size());
  for (const Correspondence& o : obs)
    if (o.ray.z > 0.05) usable.push_back(o);
  FE_EXPECTS(usable.size() >= 4);

  double p[6] = {initial_focal, initial_cx, initial_cy, 0.0, 0.0, 0.0};
  std::vector<double> r = bc_residuals(usable, p);
  double cost = cost_of(r);
  double lambda = options.initial_lambda;

  BrownConradyCalibration result;
  for (int it = 0; it < options.max_iterations; ++it) {
    util::MatX jac(r.size(), 6);
    for (int k = 0; k < 6; ++k) {
      const double h = std::max(1e-8, std::abs(p[k]) * 1e-6);
      const double pk = p[k];
      p[k] = pk + h;
      const std::vector<double> rp = bc_residuals(usable, p);
      p[k] = pk - h;
      const std::vector<double> rm = bc_residuals(usable, p);
      p[k] = pk;
      for (std::size_t i = 0; i < r.size(); ++i)
        jac(i, k) = (rp[i] - rm[i]) / (2.0 * h);
    }
    std::vector<double> neg_r(r.size());
    for (std::size_t i = 0; i < r.size(); ++i) neg_r[i] = -r[i];

    bool accepted = false;
    for (int attempt = 0; attempt < 8 && !accepted; ++attempt) {
      std::vector<double> d;
      try {
        d = util::solve_least_squares(jac, neg_r, lambda);
      } catch (const InvalidArgument&) {
        lambda *= 10.0;
        continue;
      }
      double cand[6];
      for (int k = 0; k < 6; ++k) cand[k] = p[k] + d[k];
      if (cand[0] <= 0.0) {
        lambda *= 10.0;
        continue;
      }
      const std::vector<double> rc = bc_residuals(usable, cand);
      const double cc = cost_of(rc);
      if (cc < cost) {
        const double improvement = (cost - cc) / std::max(cost, 1e-30);
        for (int k = 0; k < 6; ++k) p[k] = cand[k];
        r = rc;
        cost = cc;
        lambda = std::max(lambda * 0.3, 1e-12);
        accepted = true;
        ++result.iterations;
        if (improvement < options.tolerance) {
          result.converged = true;
          it = options.max_iterations;
        }
      } else {
        lambda *= 10.0;
      }
    }
    if (!accepted) {
      result.converged = true;
      break;
    }
  }

  result.focal = p[0];
  result.cx = p[1];
  result.cy = p[2];
  result.coeffs = core::BrownConradyCoeffs{p[3], p[4], p[5], 0.0, 0.0};
  result.rms_error_px =
      std::sqrt(cost / static_cast<double>(usable.size() * 2));
  return result;
}

}  // namespace fisheye::calib
