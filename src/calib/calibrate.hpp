// Fisheye intrinsic calibration from point correspondences.
//
// Estimates focal length and principal point of a radial lens model by
// Gauss-Newton/Levenberg-Marquardt on reprojection error. Correspondences
// come from a synthetic target generator (grid of known 3D directions with
// controllable detector noise) — the stand-in for a checkerboard detection
// pipeline, exercising the identical optimization path.
#pragma once

#include <vector>

#include "core/brown_conrady.hpp"
#include "core/camera.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace fisheye::calib {

/// One observation: a known ray direction (target geometry) and where the
/// lens imaged it (detected pixel).
struct Correspondence {
  util::Vec3 ray;     ///< unit direction in camera frame
  util::Vec2 pixel;   ///< observed fisheye pixel
};

/// Generate correspondences for a planar grid target held in front of a
/// ground-truth camera, with Gaussian detector noise of `noise_px`.
/// The grid spans angles up to `max_theta` off-axis, `grid_n` x `grid_n`
/// points.
std::vector<Correspondence> make_grid_correspondences(
    const core::FisheyeCamera& truth, int grid_n, double max_theta,
    double noise_px, util::Rng& rng);

/// Calibration unknowns and the result of fitting them.
struct CalibrationResult {
  double focal = 0.0;
  double cx = 0.0;
  double cy = 0.0;
  double rms_error_px = 0.0;   ///< final RMS reprojection error
  int iterations = 0;
  bool converged = false;
  /// RMS error after each accepted iteration (for the F10 curve).
  std::vector<double> error_history;
};

struct CalibrationOptions {
  int max_iterations = 50;
  double tolerance = 1e-10;      ///< relative cost improvement to stop
  double initial_lambda = 1e-3;  ///< LM damping start
};

/// Fit (focal, cx, cy) of a `kind` lens to the correspondences starting
/// from `initial` guesses. Uses LM with numeric Jacobians (central
/// differences) — 3 parameters, so the cost is negligible.
CalibrationResult calibrate_radial(core::LensKind kind,
                                   const std::vector<Correspondence>& obs,
                                   double initial_focal, double initial_cx,
                                   double initial_cy,
                                   const CalibrationOptions& options = {});

/// Result of fitting the classical Brown-Conrady pinhole+polynomial model.
struct BrownConradyCalibration {
  double focal = 0.0;
  double cx = 0.0;
  double cy = 0.0;
  core::BrownConradyCoeffs coeffs;
  double rms_error_px = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Fit the 6-parameter Brown-Conrady camera (focal, centre, k1..k3) to the
/// correspondences — the estimator every classical toolchain runs. Rays at
/// or beyond 90 degrees off-axis are rejected (the pinhole model cannot
/// represent them); T3/F10 use the residual of this fit on true-fisheye
/// data as the baseline's accuracy ceiling.
BrownConradyCalibration calibrate_brown_conrady(
    const std::vector<Correspondence>& obs, double initial_focal,
    double initial_cx, double initial_cy,
    const CalibrationOptions& options = {});

}  // namespace fisheye::calib
