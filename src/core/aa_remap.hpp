// Anti-aliased remap: trilinear sampling from a mip pyramid with per-pixel
// level-of-detail derived from the warp map's local Jacobian.
//
// Where the map magnifies (LOD <= 0) this degenerates to plain bilinear;
// where it minifies, the sampler reads the pyramid level whose texel pitch
// matches the source footprint of one output pixel, removing the aliasing
// the point-sampled kernels exhibit (quantified by bench F12).
#pragma once

#include <cstdint>

#include "core/mapping.hpp"
#include "image/pyramid.hpp"
#include "parallel/partition.hpp"

namespace fisheye::core {

/// Per-pixel LOD for output pixel (x, y): log2 of the larger axis of the
/// source-space footprint, from central differences of the map. Clamped to
/// [0, max_lod]. Exposed for tests and for precomputed-LOD pipelines.
float map_lod(const WarpMap& map, int x, int y, float max_lod) noexcept;

/// Remap `rect` sampling `pyramid` trilinearly (bilinear in-level, linear
/// across levels). Constant-fill border.
void remap_aa_rect(const img::Pyramid& pyramid,
                   img::ImageView<std::uint8_t> dst, const WarpMap& map,
                   par::Rect rect, std::uint8_t fill);

}  // namespace fisheye::core
