#include "core/map_io.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace fisheye::core {

namespace {

constexpr char kMagic[] = "FEMAP1\n";
constexpr std::size_t kMagicLen = 7;

std::uint64_t fnv1a(const char* data, std::size_t len) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

template <class T>
void put(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

template <class T>
T get(const std::string& s, std::size_t& off) {
  if (off + sizeof(T) > s.size()) throw IoError("map: truncated");
  T v;
  std::memcpy(&v, s.data() + off, sizeof(T));
  off += sizeof(T);
  return v;
}

void check_dims(std::int32_t w, std::int32_t h) {
  if (w <= 0 || h <= 0 || static_cast<long long>(w) * h > (1LL << 28))
    throw IoError("map: bad dimensions");
}

std::string finish(std::string header_and_payload, std::size_t payload_off) {
  const std::uint64_t sum = fnv1a(header_and_payload.data() + payload_off,
                                  header_and_payload.size() - payload_off);
  put(header_and_payload, sum);
  return header_and_payload;
}

/// Kinds 3/4/5 are kinds 0/1/2 with a provenance block after the kind byte.
constexpr std::uint8_t kProvenanceKindOffset = 3;
/// Hard cap on a stored model-name string; real canonical names are tens of
/// bytes, so anything larger is corruption, not configuration.
constexpr std::size_t kMaxProvenanceName = 4096;

void put_provenance(std::string& out, const MapProvenance& prov) {
  FE_EXPECTS(prov.lens.size() <= kMaxProvenanceName &&
             prov.view.size() <= kMaxProvenanceName);
  put<std::uint16_t>(out, static_cast<std::uint16_t>(prov.lens.size()));
  out.append(prov.lens);
  put<std::uint16_t>(out, static_cast<std::uint16_t>(prov.view.size()));
  out.append(prov.view);
}

/// u16-length-prefixed string; the length must fit before the trailing
/// checksum (callers guarantee s.size() >= 8).
std::string get_pstring(const std::string& s, std::size_t& off) {
  const auto len = get<std::uint16_t>(s, off);
  if (len > kMaxProvenanceName || off + len > s.size() - 8)
    throw IoError("map: bad provenance");
  std::string v(s.data() + off, len);
  off += len;
  return v;
}

struct Envelope {
  std::size_t off = 0;  ///< past kind byte and any provenance block
  MapProvenance prov;   ///< empty fields for legacy kinds
};

/// Validates magic + kind (accepting `base_kind` or its provenance-stamped
/// twin); verifies the checksum and reads the provenance block when
/// present. Returns the offset where the kind-specific fields begin.
Envelope open_envelope(const std::string& s, std::uint8_t base_kind) {
  if (s.size() < kMagicLen + 1 + 8 ||
      std::memcmp(s.data(), kMagic, kMagicLen) != 0)
    throw IoError("map: bad magic");
  std::size_t off = kMagicLen;
  const auto kind = get<std::uint8_t>(s, off);
  if (kind != base_kind && kind != base_kind + kProvenanceKindOffset)
    throw IoError("map: wrong kind");
  // Checksum covers everything between the kind byte and the trailing 8
  // bytes — the provenance block included, so stamped names are as guarded
  // against bit rot as the payload.
  const std::size_t body_end = s.size() - 8;
  std::size_t tail_off = body_end;
  const auto stored = get<std::uint64_t>(s, tail_off);
  if (fnv1a(s.data() + off, body_end - off) != stored)
    throw IoError("map: checksum mismatch");
  Envelope env;
  if (kind == base_kind + kProvenanceKindOffset) {
    env.prov.lens = get_pstring(s, off);
    env.prov.view = get_pstring(s, off);
  }
  env.off = off;
  return env;
}

/// A stamped file must agree with every non-empty field of `expected`;
/// legacy (unstamped) files pass unconditionally.
void check_provenance(const MapProvenance& stored,
                      const MapProvenance& expected) {
  if (stored.lens.empty() && stored.view.empty()) return;
  if ((!expected.lens.empty() && stored.lens != expected.lens) ||
      (!expected.view.empty() && stored.view != expected.view))
    throw IoError("map: provenance mismatch: stored lens=\"" + stored.lens +
                  "\" view=\"" + stored.view + "\", expected lens=\"" +
                  expected.lens + "\" view=\"" + expected.view + "\"");
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("map: cannot open for write: " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) throw IoError("map: write failed: " + path);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("map: cannot open for read: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

namespace {

/// Shared header writer: magic, kind (stamped twin when `prov` non-null),
/// provenance block. Returns the checksum start offset.
std::size_t begin_encode(std::string& out, std::uint8_t base_kind,
                         const MapProvenance* prov) {
  out.assign(kMagic, kMagicLen);
  put<std::uint8_t>(out, prov != nullptr
                             ? static_cast<std::uint8_t>(base_kind +
                                                         kProvenanceKindOffset)
                             : base_kind);
  const std::size_t payload_off = out.size();
  if (prov != nullptr) put_provenance(out, *prov);
  return payload_off;
}

std::string encode_float(const WarpMap& map, const MapProvenance* prov) {
  FE_EXPECTS(map.width > 0 && map.height > 0);
  std::string out;
  const std::size_t payload_off = begin_encode(out, 0, prov);
  put<std::int32_t>(out, map.width);
  put<std::int32_t>(out, map.height);
  out.append(reinterpret_cast<const char*>(map.src_x.data()),
             map.src_x.size() * sizeof(float));
  out.append(reinterpret_cast<const char*>(map.src_y.data()),
             map.src_y.size() * sizeof(float));
  return finish(std::move(out), payload_off);
}

std::string encode_packed(const PackedMap& map, const MapProvenance* prov) {
  FE_EXPECTS(map.width > 0 && map.height > 0);
  std::string out;
  const std::size_t payload_off = begin_encode(out, 1, prov);
  put<std::int32_t>(out, map.width);
  put<std::int32_t>(out, map.height);
  put<std::int32_t>(out, map.frac_bits);
  out.append(reinterpret_cast<const char*>(map.fx.data()),
             map.fx.size() * sizeof(std::int32_t));
  out.append(reinterpret_cast<const char*>(map.fy.data()),
             map.fy.size() * sizeof(std::int32_t));
  return finish(std::move(out), payload_off);
}

std::string encode_compact(const CompactMap& map, const MapProvenance* prov) {
  FE_EXPECTS(map.width > 0 && map.height > 0);
  FE_EXPECTS(map.grid_w > 0 && map.grid_h > 0);
  std::string out;
  const std::size_t payload_off = begin_encode(out, 2, prov);
  put<std::int32_t>(out, map.width);
  put<std::int32_t>(out, map.height);
  put<std::int32_t>(out, map.stride);
  put<std::int32_t>(out, map.frac_bits);
  put<std::int32_t>(out, map.src_width);
  put<std::int32_t>(out, map.src_height);
  put<float>(out, map.max_error);
  put<float>(out, map.mean_error);
  out.append(reinterpret_cast<const char*>(map.gx.data()),
             map.gx.size() * sizeof(std::int32_t));
  out.append(reinterpret_cast<const char*>(map.gy.data()),
             map.gy.size() * sizeof(std::int32_t));
  return finish(std::move(out), payload_off);
}

}  // namespace

std::string encode_map(const WarpMap& map) {
  return encode_float(map, nullptr);
}

std::string encode_map(const PackedMap& map) {
  return encode_packed(map, nullptr);
}

std::string encode_map(const CompactMap& map) {
  return encode_compact(map, nullptr);
}

std::string encode_map(const WarpMap& map, const MapProvenance& prov) {
  return encode_float(map, &prov);
}

std::string encode_map(const PackedMap& map, const MapProvenance& prov) {
  return encode_packed(map, &prov);
}

std::string encode_map(const CompactMap& map, const MapProvenance& prov) {
  return encode_compact(map, &prov);
}

CompactMap decode_compact_map(const std::string& bytes) {
  std::size_t off = open_envelope(bytes, 2).off;
  const auto w = get<std::int32_t>(bytes, off);
  const auto h = get<std::int32_t>(bytes, off);
  const auto stride = get<std::int32_t>(bytes, off);
  const auto frac = get<std::int32_t>(bytes, off);
  const auto src_w = get<std::int32_t>(bytes, off);
  const auto src_h = get<std::int32_t>(bytes, off);
  const auto max_error = get<float>(bytes, off);
  const auto mean_error = get<float>(bytes, off);
  check_dims(w, h);
  check_dims(src_w, src_h);
  if (stride < 1 || stride > 64 || (stride & (stride - 1)) != 0)
    throw IoError("map: bad compact stride");
  if (frac < 1 || frac > 16) throw IoError("map: bad frac_bits");
  CompactMap map;
  map.width = w;
  map.height = h;
  map.stride = stride;
  map.frac_bits = frac;
  map.src_width = src_w;
  map.src_height = src_h;
  map.max_error = max_error;
  map.mean_error = mean_error;
  map.grid_w = (w - 1) / stride + 2;
  map.grid_h = (h - 1) / stride + 2;
  const std::size_t n =
      static_cast<std::size_t>(map.grid_w) * static_cast<std::size_t>(map.grid_h);
  if (off + 2 * n * sizeof(std::int32_t) + 8 != bytes.size())
    throw IoError("map: size mismatch");
  map.gx.resize(n);
  map.gy.resize(n);
  std::memcpy(map.gx.data(), bytes.data() + off, n * sizeof(std::int32_t));
  off += n * sizeof(std::int32_t);
  std::memcpy(map.gy.data(), bytes.data() + off, n * sizeof(std::int32_t));
  return map;
}

WarpMap decode_map(const std::string& bytes) {
  std::size_t off = open_envelope(bytes, 0).off;
  const auto w = get<std::int32_t>(bytes, off);
  const auto h = get<std::int32_t>(bytes, off);
  check_dims(w, h);
  WarpMap map;
  map.width = w;
  map.height = h;
  const std::size_t n = map.pixel_count();
  if (off + 2 * n * sizeof(float) + 8 != bytes.size())
    throw IoError("map: size mismatch");
  map.src_x.resize(n);
  map.src_y.resize(n);
  std::memcpy(map.src_x.data(), bytes.data() + off, n * sizeof(float));
  off += n * sizeof(float);
  std::memcpy(map.src_y.data(), bytes.data() + off, n * sizeof(float));
  return map;
}

PackedMap decode_packed_map(const std::string& bytes) {
  std::size_t off = open_envelope(bytes, 1).off;
  const auto w = get<std::int32_t>(bytes, off);
  const auto h = get<std::int32_t>(bytes, off);
  const auto frac = get<std::int32_t>(bytes, off);
  check_dims(w, h);
  if (frac < 1 || frac > 22) throw IoError("map: bad frac_bits");
  PackedMap map;
  map.width = w;
  map.height = h;
  map.frac_bits = frac;
  const std::size_t n = static_cast<std::size_t>(w) * h;
  if (off + 2 * n * sizeof(std::int32_t) + 8 != bytes.size())
    throw IoError("map: size mismatch");
  map.fx.resize(n);
  map.fy.resize(n);
  std::memcpy(map.fx.data(), bytes.data() + off, n * sizeof(std::int32_t));
  off += n * sizeof(std::int32_t);
  std::memcpy(map.fy.data(), bytes.data() + off, n * sizeof(std::int32_t));
  return map;
}

WarpMap decode_map(const std::string& bytes, const MapProvenance& expected) {
  check_provenance(open_envelope(bytes, 0).prov, expected);
  return decode_map(bytes);
}

PackedMap decode_packed_map(const std::string& bytes,
                            const MapProvenance& expected) {
  check_provenance(open_envelope(bytes, 1).prov, expected);
  return decode_packed_map(bytes);
}

CompactMap decode_compact_map(const std::string& bytes,
                              const MapProvenance& expected) {
  check_provenance(open_envelope(bytes, 2).prov, expected);
  return decode_compact_map(bytes);
}

MapProvenance decode_provenance(const std::string& bytes) {
  if (bytes.size() < kMagicLen + 1 + 8 ||
      std::memcmp(bytes.data(), kMagic, kMagicLen) != 0)
    throw IoError("map: bad magic");
  std::size_t off = kMagicLen;
  const auto kind = get<std::uint8_t>(bytes, off);
  if (kind > 2 + kProvenanceKindOffset) throw IoError("map: wrong kind");
  const auto base = static_cast<std::uint8_t>(
      kind >= kProvenanceKindOffset ? kind - kProvenanceKindOffset : kind);
  return open_envelope(bytes, base).prov;
}

void save_map(const std::string& path, const WarpMap& map) {
  write_file(path, encode_map(map));
}

void save_map(const std::string& path, const PackedMap& map) {
  write_file(path, encode_map(map));
}

void save_map(const std::string& path, const CompactMap& map) {
  write_file(path, encode_map(map));
}

void save_map(const std::string& path, const WarpMap& map,
              const MapProvenance& prov) {
  write_file(path, encode_map(map, prov));
}

void save_map(const std::string& path, const PackedMap& map,
              const MapProvenance& prov) {
  write_file(path, encode_map(map, prov));
}

void save_map(const std::string& path, const CompactMap& map,
              const MapProvenance& prov) {
  write_file(path, encode_map(map, prov));
}

CompactMap load_compact_map(const std::string& path) {
  return decode_compact_map(read_file(path));
}

WarpMap load_map(const std::string& path) {
  return decode_map(read_file(path));
}

PackedMap load_packed_map(const std::string& path) {
  return decode_packed_map(read_file(path));
}

WarpMap load_map(const std::string& path, const MapProvenance& expected) {
  return decode_map(read_file(path), expected);
}

PackedMap load_packed_map(const std::string& path,
                          const MapProvenance& expected) {
  return decode_packed_map(read_file(path), expected);
}

CompactMap load_compact_map(const std::string& path,
                            const MapProvenance& expected) {
  return decode_compact_map(read_file(path), expected);
}

}  // namespace fisheye::core
