// The kernel catalogue: every (map representation × interpolation × border
// × layout × variant) point the library implements, and the ONLY runtime
// dispatch over MapMode/Interp. Backends resolve here once at plan time;
// adding a kernel variant is an entry in kCatalogue plus its function.
#include "core/kernel.hpp"

#include <cstddef>

#include "core/camera.hpp"
#include "core/execution_plan.hpp"
#include "core/projection.hpp"
#include "core/tile_order.hpp"
#include "simd/remap_gather.hpp"
#include "simd/remap_simd.hpp"
#include "util/cpu.hpp"
#include "util/error.hpp"

namespace fisheye::core {

namespace {

// --- scalar float-LUT kernels (windowed: offsets forwarded) -------------

void k_float_nearest(const KernelBinding& b, const TileArgs& a) {
  detail::remap_rect_nearest(a.src, a.dst, *b.map, a.rect, a.src_off_x,
                             a.src_off_y, b.opts);
}

void k_float_bilinear(const KernelBinding& b, const TileArgs& a) {
  detail::remap_rect_bilinear(a.src, a.dst, *b.map, a.rect, a.src_off_x,
                              a.src_off_y, b.opts);
}

void k_float_bicubic(const KernelBinding& b, const TileArgs& a) {
  detail::remap_rect_bicubic(a.src, a.dst, *b.map, a.rect, a.src_off_x,
                             a.src_off_y, b.opts);
}

void k_float_lanczos3(const KernelBinding& b, const TileArgs& a) {
  detail::remap_rect_lanczos3(a.src, a.dst, *b.map, a.rect, a.src_off_x,
                              a.src_off_y, b.opts);
}

// --- scalar fixed-point kernels (windowed; clamp vs full-frame dims) ----

void k_packed_bilinear(const KernelBinding& b, const TileArgs& a) {
  remap_packed_rect_offset(a.src, a.dst, *b.packed, a.rect, a.src_off_x,
                           a.src_off_y, b.src_width, b.src_height,
                           b.opts.fill);
}

void k_compact_bilinear(const KernelBinding& b, const TileArgs& a) {
  remap_compact_rect_offset(a.src, a.dst, *b.compact, a.rect, a.src_off_x,
                            a.src_off_y, b.opts.fill);
}

// --- scalar on-the-fly kernels (no LUT, hence no windowed form) ---------

void k_otf_nearest(const KernelBinding& b, const TileArgs& a) {
  detail::remap_otf_nearest(a.src, a.dst, *b.camera, *b.view, a.rect, b.opts,
                            b.fast_math);
}

void k_otf_bilinear(const KernelBinding& b, const TileArgs& a) {
  detail::remap_otf_bilinear(a.src, a.dst, *b.camera, *b.view, a.rect, b.opts,
                             b.fast_math);
}

void k_otf_bicubic(const KernelBinding& b, const TileArgs& a) {
  detail::remap_otf_bicubic(a.src, a.dst, *b.camera, *b.view, a.rect, b.opts,
                            b.fast_math);
}

void k_otf_lanczos3(const KernelBinding& b, const TileArgs& a) {
  detail::remap_otf_lanczos3(a.src, a.dst, *b.camera, *b.view, a.rect, b.opts,
                             b.fast_math);
}

// --- SoA SIMD kernels (constant border only) ----------------------------

void k_simd_float_bilinear(const KernelBinding& b, const TileArgs& a) {
  if (a.scratch != nullptr) {
    simd::remap_bilinear_soa(a.src, a.dst, *b.map, a.rect, b.opts.fill,
                             *a.scratch, b.soa_strip);
  } else {
    simd::SoaScratch scratch;
    simd::remap_bilinear_soa(a.src, a.dst, *b.map, a.rect, b.opts.fill,
                             scratch, b.soa_strip);
  }
}

void k_simd_compact_bilinear(const KernelBinding& b, const TileArgs& a) {
  if (a.scratch != nullptr) {
    simd::remap_compact_soa(a.src, a.dst, *b.compact, a.rect, b.opts.fill,
                            *a.scratch, b.soa_strip);
  } else {
    simd::SoaScratch scratch;
    simd::remap_compact_soa(a.src, a.dst, *b.compact, a.rect, b.opts.fill,
                            scratch, b.soa_strip);
  }
}

// --- AVX2 gather kernels (constant border only) -------------------------

void k_gather_float_bilinear(const KernelBinding& b, const TileArgs& a) {
  if (a.scratch != nullptr) {
    simd::remap_bilinear_gather(a.src, a.dst, *b.map, a.rect, b.opts.fill,
                                *a.scratch, b.soa_strip);
  } else {
    simd::SoaScratch scratch;
    simd::remap_bilinear_gather(a.src, a.dst, *b.map, a.rect, b.opts.fill,
                                scratch, b.soa_strip);
  }
}

void k_gather_packed_bilinear(const KernelBinding& b, const TileArgs& a) {
  if (a.scratch != nullptr) {
    simd::remap_packed_gather(a.src, a.dst, *b.packed, a.rect, b.opts.fill,
                              *a.scratch, b.soa_strip);
  } else {
    simd::SoaScratch scratch;
    simd::remap_packed_gather(a.src, a.dst, *b.packed, a.rect, b.opts.fill,
                              scratch, b.soa_strip);
  }
}

void k_gather_compact_bilinear(const KernelBinding& b, const TileArgs& a) {
  if (a.scratch != nullptr) {
    simd::remap_compact_gather(a.src, a.dst, *b.compact, a.rect, b.opts.fill,
                               *a.scratch, b.soa_strip);
  } else {
    simd::SoaScratch scratch;
    simd::remap_compact_gather(a.src, a.dst, *b.compact, a.rect, b.opts.fill,
                               scratch, b.soa_strip);
  }
}

// --- the catalogue ------------------------------------------------------

struct KernelEntry {
  MapMode mode;
  Interp interp;
  /// True: serves every border policy. False: Constant only (the
  /// fixed-point and SoA datapaths bake constant fill in).
  bool any_border;
  KernelVariant variant;
  bool windowed;
  TileKernelFn fn;
};

constexpr KernelVariant kScalar = KernelVariant::Scalar;
constexpr KernelVariant kSimd = KernelVariant::SimdSoa;
constexpr KernelVariant kGather = KernelVariant::SimdGather;

constexpr KernelEntry kCatalogue[] = {
    {MapMode::FloatLut, Interp::Nearest, true, kScalar, true,
     &k_float_nearest},
    {MapMode::FloatLut, Interp::Bilinear, true, kScalar, true,
     &k_float_bilinear},
    {MapMode::FloatLut, Interp::Bicubic, true, kScalar, true,
     &k_float_bicubic},
    {MapMode::FloatLut, Interp::Lanczos3, true, kScalar, true,
     &k_float_lanczos3},
    {MapMode::PackedLut, Interp::Bilinear, true, kScalar, true,
     &k_packed_bilinear},
    {MapMode::CompactLut, Interp::Bilinear, true, kScalar, true,
     &k_compact_bilinear},
    {MapMode::OnTheFly, Interp::Nearest, true, kScalar, false,
     &k_otf_nearest},
    {MapMode::OnTheFly, Interp::Bilinear, true, kScalar, false,
     &k_otf_bilinear},
    {MapMode::OnTheFly, Interp::Bicubic, true, kScalar, false,
     &k_otf_bicubic},
    {MapMode::OnTheFly, Interp::Lanczos3, true, kScalar, false,
     &k_otf_lanczos3},
    {MapMode::FloatLut, Interp::Bilinear, false, kSimd, false,
     &k_simd_float_bilinear},
    {MapMode::CompactLut, Interp::Bilinear, false, kSimd, false,
     &k_simd_compact_bilinear},
    {MapMode::FloatLut, Interp::Bilinear, false, kGather, false,
     &k_gather_float_bilinear},
    {MapMode::PackedLut, Interp::Bilinear, false, kGather, false,
     &k_gather_packed_bilinear},
    {MapMode::CompactLut, Interp::Bilinear, false, kGather, false,
     &k_gather_compact_bilinear},
};

const KernelEntry* find_entry(const KernelKey& key) noexcept {
  if (key.layout != PixelLayout::InterleavedU8) return nullptr;
  for (const KernelEntry& e : kCatalogue) {
    if (e.mode != key.mode || e.interp != key.interp ||
        e.variant != key.variant)
      continue;
    if (!e.any_border && key.border != img::BorderMode::Constant) continue;
    return &e;
  }
  return nullptr;
}

}  // namespace

void ResolvedKernel::run_windowed(img::ConstImageView<std::uint8_t> src,
                                  img::ImageView<std::uint8_t> dst,
                                  par::Rect rect, int src_off_x,
                                  int src_off_y) const {
  FE_EXPECTS(windowed_);
  fn_(binding_, TileArgs{src, dst, rect, src_off_x, src_off_y, nullptr});
}

bool kernel_supported(const KernelKey& key) noexcept {
  return find_entry(key) != nullptr;
}

std::string kernel_catalogue() {
  std::string out;
  for (const KernelEntry& e : kCatalogue) {
    out += "  ";
    out += map_mode_name(e.mode);
    out += " x ";
    out += interp_name(e.interp);
    out += e.any_border ? " x any-border" : " x constant-border";
    out += " x ";
    out += variant_name(e.variant);
    if (e.windowed) out += " (windowed)";
    out += '\n';
  }
  return out;
}

KernelVariant effective_variant(const ExecContext& ctx,
                                KernelVariant wanted) noexcept {
  if (wanted == KernelVariant::Scalar) return wanted;
  // Kill switch first: FISHEYE_FORCE_SCALAR grounds every SIMD variant.
  if (util::force_scalar()) return KernelVariant::Scalar;
  if (wanted == KernelVariant::SimdGather && !simd::gather_available()) {
    // Degrade along the datapath axis only: the SoA kernel at the SAME
    // lattice point, else scalar. A point the SoA family never covers
    // (e.g. bicubic) stays SimdGather so resolve_kernel throws loudly.
    const KernelKey soa{ctx.mode, ctx.opts.interp, ctx.opts.border,
                        PixelLayout::InterleavedU8, KernelVariant::SimdSoa};
    const KernelKey gather{ctx.mode, ctx.opts.interp, ctx.opts.border,
                           PixelLayout::InterleavedU8,
                           KernelVariant::SimdGather};
    if (find_entry(gather) == nullptr) return wanted;
    return find_entry(soa) != nullptr ? KernelVariant::SimdSoa
                                      : KernelVariant::Scalar;
  }
  return wanted;
}

ResolvedKernel resolve_kernel(const ExecContext& ctx, KernelVariant variant,
                              int soa_strip) {
  variant = effective_variant(ctx, variant);
  const KernelKey key{ctx.mode, ctx.opts.interp, ctx.opts.border,
                      PixelLayout::InterleavedU8, variant};
  const KernelEntry* entry = find_entry(key);
  if (entry == nullptr)
    throw InvalidArgument(
        std::string("no tile kernel registered for ") +
        map_mode_name(key.mode) + " x " + interp_name(key.interp) +
        " x border=" + img::border_name(key.border) + " x " +
        variant_name(key.variant) + "; the catalogue has:\n" +
        kernel_catalogue());

  // Bind the frame-invariant operands; the per-mode pointer contract is a
  // precondition (the public entry is Backend::plan, which validated ctx).
  KernelBinding b;
  b.opts = ctx.opts;
  b.fast_math = ctx.fast_math;
  b.src_width = ctx.src.width;
  b.src_height = ctx.src.height;
  b.soa_strip = soa_strip;
  if (ctx.mode == MapMode::FloatLut) {
    FE_EXPECTS(ctx.map != nullptr);
    b.map = ctx.map;
  } else if (ctx.mode == MapMode::PackedLut) {
    FE_EXPECTS(ctx.packed != nullptr);
    b.packed = ctx.packed;
  } else if (ctx.mode == MapMode::CompactLut) {
    FE_EXPECTS(ctx.compact != nullptr);
    FE_EXPECTS(ctx.compact->src_width == ctx.src.width &&
               ctx.compact->src_height == ctx.src.height);
    b.compact = ctx.compact;
  } else {
    FE_EXPECTS(ctx.camera != nullptr && ctx.view != nullptr);
    b.camera = ctx.camera;
    b.view = ctx.view;
  }
  return {key, entry->fn, b, entry->windowed};
}

MapIdentity map_identity(const ExecContext& ctx) noexcept {
  MapIdentity id;
  switch (ctx.mode) {
    case MapMode::FloatLut:
      if (ctx.map == nullptr) return id;
      id.table = ctx.map;
      id.generation = ctx.map->generation;
      id.width = ctx.map->width;
      id.height = ctx.map->height;
      break;
    case MapMode::PackedLut:
      if (ctx.packed == nullptr) return id;
      id.table = ctx.packed;
      id.generation = ctx.packed->generation;
      id.width = ctx.packed->width;
      id.height = ctx.packed->height;
      break;
    case MapMode::CompactLut:
      if (ctx.compact == nullptr) return id;
      id.table = ctx.compact;
      id.generation = ctx.compact->generation;
      id.width = ctx.compact->width;
      id.height = ctx.compact->height;
      id.stride = ctx.compact->stride;
      break;
    case MapMode::OnTheFly:
      id.camera = ctx.camera;
      id.view = ctx.view;
      if (ctx.camera != nullptr) id.camera_gen = ctx.camera->generation();
      if (ctx.view != nullptr) id.view_gen = ctx.view->generation();
      break;
  }
  id.present = true;
  return id;
}

// --- public remap entry points whose dispatch lives with the catalogue --

void remap_rect_offset(img::ConstImageView<std::uint8_t> src,
                       img::ImageView<std::uint8_t> dst, const WarpMap& map,
                       par::Rect rect, int src_off_x, int src_off_y,
                       const RemapOptions& opts) {
  switch (opts.interp) {
    case Interp::Nearest:
      detail::remap_rect_nearest(src, dst, map, rect, src_off_x, src_off_y,
                                 opts);
      return;
    case Interp::Bilinear:
      detail::remap_rect_bilinear(src, dst, map, rect, src_off_x, src_off_y,
                                  opts);
      return;
    case Interp::Bicubic:
      detail::remap_rect_bicubic(src, dst, map, rect, src_off_x, src_off_y,
                                 opts);
      return;
    case Interp::Lanczos3:
      detail::remap_rect_lanczos3(src, dst, map, rect, src_off_x, src_off_y,
                                  opts);
      return;
  }
  throw InvalidArgument("remap: unknown interpolation");
}

void remap_rect(img::ConstImageView<std::uint8_t> src,
                img::ImageView<std::uint8_t> dst, const WarpMap& map,
                par::Rect rect, const RemapOptions& opts) {
  remap_rect_offset(src, dst, map, rect, 0, 0, opts);
}

void remap_otf_rect(img::ConstImageView<std::uint8_t> src,
                    img::ImageView<std::uint8_t> dst,
                    const FisheyeCamera& camera, const ViewProjection& view,
                    par::Rect rect, const RemapOptions& opts, bool fast_math) {
  switch (opts.interp) {
    case Interp::Nearest:
      detail::remap_otf_nearest(src, dst, camera, view, rect, opts, fast_math);
      return;
    case Interp::Bilinear:
      detail::remap_otf_bilinear(src, dst, camera, view, rect, opts,
                                 fast_math);
      return;
    case Interp::Bicubic:
      detail::remap_otf_bicubic(src, dst, camera, view, rect, opts, fast_math);
      return;
    case Interp::Lanczos3:
      detail::remap_otf_lanczos3(src, dst, camera, view, rect, opts,
                                 fast_math);
      return;
  }
  throw InvalidArgument("remap: unknown interpolation");
}

SampleFn sample_kernel(Interp interp) {
  switch (interp) {
    case Interp::Nearest: return &sample_nearest;
    case Interp::Bilinear: return &sample_bilinear;
    case Interp::Bicubic: return &sample_bicubic;
    case Interp::Lanczos3: return &sample_lanczos3;
  }
  throw InvalidArgument("sample_kernel: unknown interpolation");
}

// --- per-mode plan bookkeeping kept beside the dispatch -----------------

std::size_t estimate_bytes_in(const ExecContext& ctx) noexcept {
  const std::size_t px = static_cast<std::size_t>(ctx.dst.width) *
                         static_cast<std::size_t>(ctx.dst.height);
  const std::size_t ch = static_cast<std::size_t>(ctx.src.channels);
  std::size_t lut = 0;
  switch (ctx.mode) {
    case MapMode::FloatLut: lut = px * 2 * sizeof(float); break;
    case MapMode::PackedLut: lut = px * 2 * sizeof(std::int32_t); break;
    case MapMode::CompactLut:
      // The whole grid is streamed once per frame, not 8 bytes per pixel —
      // the bandwidth win the compact representation exists for.
      lut = ctx.compact != nullptr ? ctx.compact->bytes() : 0;
      break;
    case MapMode::OnTheFly: lut = 0; break;
  }
  // Bilinear reads up to four taps per pixel per channel; nearest one.
  const std::size_t taps = ctx.opts.interp == Interp::Bilinear ? 4 : 1;
  return lut + px * ch * taps;
}

std::size_t estimate_bytes_out(const ExecContext& ctx) noexcept {
  return static_cast<std::size_t>(ctx.dst.width) *
         static_cast<std::size_t>(ctx.dst.height) *
         static_cast<std::size_t>(ctx.src.channels);
}

std::vector<par::Rect> source_locality_keys(
    const ExecContext& ctx, const std::vector<par::Rect>& tiles) {
  std::vector<par::Rect> keys;
  keys.reserve(tiles.size());
  switch (ctx.mode) {
    case MapMode::FloatLut:
      if (ctx.map != nullptr) {
        for (const par::Rect& t : tiles)
          keys.push_back(
              source_bbox(*ctx.map, t, ctx.src.width, ctx.src.height));
        return keys;
      }
      break;
    case MapMode::CompactLut:
      if (ctx.compact != nullptr) {
        for (const par::Rect& t : tiles)
          keys.push_back(source_bbox(*ctx.compact, t));
        return keys;
      }
      break;
    case MapMode::PackedLut:
    case MapMode::OnTheFly:
      break;
  }
  // No per-pixel source table to query: key on the output tiles. They are
  // never empty, so none get demoted to the fill tail.
  keys = tiles;
  return keys;
}

}  // namespace fisheye::core
