// String-spec backend factory.
//
// A backend spec is `kind[:option,option,...]` where each option is a bare
// flag (`dbuf`) or `key=value` (`threads=4`, `tile=128x32`). Examples:
//
//   serial
//   pool:dynamic,rows=16,threads=8
//   pool:guided,tiles,tile=128x64
//   simd:threads=4
//   openmp                      (when built with OpenMP)
//   cell:spes=4,sbuf            (linking fisheye_accel)
//   gpu:sms=16,clock=1.5
//   fpga:clock=100,cache=32x8x8x1
//   cluster:ranks=8,net=ib      (linking fisheye_cluster)
//
// Backend::name() returns the canonical spec of the instance, so any
// backend can be reconstructed with BackendRegistry::create(b.name()).
// Core CPU kinds are always registered; the accelerator and cluster kinds
// self-register from their libraries (every bench/example/test links them).
// Unknown kinds and unknown options fail with InvalidArgument
// diagnostics that list what is available.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/backend.hpp"

namespace fisheye::core {

/// Assembles a canonical `kind[:opt,opt,...]` spec string; backends use it
/// to implement name() so that create(name()) round-trips.
class SpecBuilder {
 public:
  explicit SpecBuilder(std::string kind) : spec_(std::move(kind)) {}

  SpecBuilder& opt(const std::string& option) {
    spec_ += first_ ? ':' : ',';
    spec_ += option;
    first_ = false;
    return *this;
  }

  template <class T>
  SpecBuilder& opt(const std::string& key, const T& value) {
    std::ostringstream os;
    os << key << '=' << value;
    return opt(os.str());
  }

  [[nodiscard]] const std::string& str() const noexcept { return spec_; }

 private:
  std::string spec_;
  bool first_ = true;
};

/// Parsed spec with consumption tracking: factories pull the options they
/// understand, then finish() rejects anything left over by name.
class BackendSpec {
 public:
  /// Splits `spec` into kind and options. Throws InvalidArgument on
  /// empty kinds, empty options, or malformed syntax.
  static BackendSpec parse(const std::string& spec);

  [[nodiscard]] const std::string& kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& text() const noexcept { return text_; }

  /// True when flag `name` appears (consumed).
  bool flag(const std::string& name);
  /// The value of `key=...` if present (consumed).
  std::optional<std::string> value(const std::string& key);
  /// `key=N` as int; `def` when absent. Throws on non-numeric values.
  int value_int(const std::string& key, int def);
  /// First unconsumed bare all-digit option as int (`shard:4`); `def` when
  /// absent. The shorthand form of a kind's primary count option.
  int bare_int(int def);
  /// `key=X` as double; `def` when absent.
  double value_double(const std::string& key, double def);
  /// `key=WxH` as a dimension pair; `{def_w, def_h}` when absent.
  std::pair<int, int> value_dims(const std::string& key, int def_w,
                                 int def_h);
  /// `key=AxBxCxD` as four ints; `def` when absent.
  std::vector<int> value_int_list(const std::string& key,
                                  std::vector<int> def);

  /// Throws InvalidArgument naming the first unconsumed option;
  /// `valid` describes the options this kind accepts.
  void finish(const std::string& valid) const;

 private:
  struct Option {
    std::string key;
    std::string val;
    bool has_value = false;
    bool used = false;
  };

  std::string text_;
  std::string kind_;
  std::vector<Option> options_;
};

/// Process-wide factory keyed by spec kind.
class BackendRegistry {
 public:
  /// The factory receives the parsed spec with the kind already consumed;
  /// it must consume its options and call finish().
  using Factory = std::function<std::unique_ptr<Backend>(BackendSpec&)>;

  static BackendRegistry& instance();

  /// Register `kind`; `summary` is a one-line option synopsis shown in
  /// diagnostics and help(). Re-registering a kind replaces it.
  void add(std::string kind, std::string summary, Factory factory);

  [[nodiscard]] bool has(const std::string& kind) const;
  /// Registered kinds, sorted.
  [[nodiscard]] std::vector<std::string> kinds() const;
  /// (kind, summary) pairs, sorted by kind — for CLI usage text.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> help() const;

  /// Parse `spec` and build the backend. Throws InvalidArgument for
  /// unknown kinds (listing registered ones) or bad options.
  static std::unique_ptr<Backend> create(const std::string& spec);

 private:
  BackendRegistry();

  struct Entry {
    std::string summary;
    Factory factory;
  };

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, Entry>> entries_;  ///< sorted by kind
};

/// Consume the spec's `map=` option (if present) into `backend`'s map
/// choice. Shared by every factory whose kind supports representation
/// conversion; throws InvalidArgument naming the offending token for
/// unknown map formats or bad strides.
void apply_map_option(BackendSpec& spec, Backend& backend);

/// Factory-level bounds check: throws InvalidArgument (user input, not a
/// contract violation) when `v` falls outside [lo, hi], naming the spec and
/// option. Every factory validates its numeric options with this so no
/// spec string can reach an internal FE_EXPECTS deeper in the stack.
void require_spec_range(const BackendSpec& spec, const std::string& key,
                        long long v, long long lo, long long hi);

/// Static-object helper for self-registering translation units.
struct BackendRegistrar {
  BackendRegistrar(std::string kind, std::string summary,
                   BackendRegistry::Factory factory) {
    BackendRegistry::instance().add(std::move(kind), std::move(summary),
                                    std::move(factory));
  }
};

}  // namespace fisheye::core
