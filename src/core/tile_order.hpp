// Plan-time tile ordering for locality-aware schedules.
//
// A tile's cost is paid in its *source* working set: the remap kernel
// gathers from the tile's source bounding box, so two tiles whose source
// boxes overlap share cache lines. Output-raster tile order ignores this —
// under a fisheye warp, horizontally adjacent output tiles near the frame
// edge pull source windows that are far apart. Sorting the plan's tiles by
// Morton (Z-order) code of their source-bbox centroid makes consecutive
// schedule positions source-adjacent, so a worker consuming a contiguous
// run of the schedule walks the source image coherently. This is the
// ordering the steal schedule pre-assigns as initial deque runs (see
// parallel/work_stealing.hpp); steals then only repair imbalance.
#pragma once

#include <cstdint>
#include <vector>

#include "core/execution_plan.hpp"
#include "parallel/partition.hpp"

namespace fisheye::core {

/// Per-tile source-space sort keys for `tiles` under ctx's map
/// representation: the source bounding box (FloatLut and CompactLut, which
/// carry per-pixel/per-grid source tables), or the output tile itself for
/// representations without a cheap source-extent query (PackedLut,
/// OnTheFly) — output-space Morton order is still spatially coherent, it
/// just cannot see the warp.
[[nodiscard]] std::vector<par::Rect> source_locality_keys(
    const ExecContext& ctx, const std::vector<par::Rect>& tiles);

/// `tiles` reordered by Morton code of their source_locality_keys
/// centroid; tiles whose source box is empty (pure fill) go last. Every
/// input tile appears exactly once — the partition coverage property is
/// permutation-invariant and pinned by tests.
[[nodiscard]] std::vector<par::Rect> order_tiles_by_source_locality(
    const ExecContext& ctx, std::vector<par::Rect> tiles);

}  // namespace fisheye::core
