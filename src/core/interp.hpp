// Interpolation kernels for source sampling.
//
// All kernels are header-inline: the remap executors instantiate them inside
// tight loops and the compiler must see through the tap logic. Accumulation
// is in float; results are rounded and clamped to 8 bits.
//
// Cost ladder (taps per sample): nearest 1, bilinear 4, bicubic 16,
// lanczos3 36 — the F4 experiment sweeps exactly this ladder.
#pragma once

#include <cmath>
#include <cstdint>

#include "image/border.hpp"
#include "image/image.hpp"
#include "util/mathx.hpp"

// GCC's -Wstringop-overflow mis-models the per-channel `out[c]` loops
// below: after vectorization it assumes a worst-case store width even
// though `channels` is bounded by the caller's buffer at every call site.
// Silence the false positive at the definition site so -Werror builds of
// including TUs stay clean.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#endif

namespace fisheye::core {

enum class Interp { Nearest, Bilinear, Bicubic, Lanczos3 };

[[nodiscard]] constexpr const char* interp_name(Interp i) noexcept {
  switch (i) {
    case Interp::Nearest: return "nearest";
    case Interp::Bilinear: return "bilinear";
    case Interp::Bicubic: return "bicubic";
    case Interp::Lanczos3: return "lanczos3";
  }
  return "?";
}

/// Taps per output sample along one axis.
[[nodiscard]] constexpr int interp_support(Interp i) noexcept {
  switch (i) {
    case Interp::Nearest: return 1;
    case Interp::Bilinear: return 2;
    case Interp::Bicubic: return 4;
    case Interp::Lanczos3: return 6;
  }
  return 0;
}

namespace detail {

inline std::uint8_t round_clamp_u8(float v) noexcept {
  const int r = static_cast<int>(v + 0.5f);
  return static_cast<std::uint8_t>(r < 0 ? 0 : (r > 255 ? 255 : r));
}

/// Fetch one sample honoring the border mode. `fill` only matters for
/// Constant. Channels indexed by `c`.
inline float fetch(img::ConstImageView<std::uint8_t> src, int x, int y, int c,
                   img::BorderMode mode, std::uint8_t fill) noexcept {
  if (x < 0 || y < 0 || x >= src.width || y >= src.height) {
    if (mode == img::BorderMode::Constant) return static_cast<float>(fill);
    x = img::border_index(x, src.width, mode);
    y = img::border_index(y, src.height, mode);
  }
  return static_cast<float>(src.at(x, y, c));
}

/// Catmull-Rom cubic weight, |t| in [0, 2).
inline float cubic_weight(float t) noexcept {
  t = t < 0.0f ? -t : t;
  const float t2 = t * t;
  if (t < 1.0f) return 1.5f * t2 * t - 2.5f * t2 + 1.0f;
  if (t < 2.0f) return -0.5f * t2 * t + 2.5f * t2 - 4.0f * t + 2.0f;
  return 0.0f;
}

/// Lanczos-3 weight, |t| in [0, 3).
inline float lanczos3_weight(float t) noexcept {
  t = t < 0.0f ? -t : t;
  if (t < 1e-6f) return 1.0f;
  if (t >= 3.0f) return 0.0f;
  const float pt = static_cast<float>(util::kPi) * t;
  return 3.0f * std::sin(pt) * std::sin(pt / 3.0f) / (pt * pt);
}

}  // namespace detail

/// Nearest-neighbour sample of all channels at (sx, sy) into out[0..ch).
inline void sample_nearest(img::ConstImageView<std::uint8_t> src, float sx,
                           float sy, img::BorderMode mode, std::uint8_t fill,
                           std::uint8_t* out) noexcept {
  const int x = static_cast<int>(std::lround(sx));
  const int y = static_cast<int>(std::lround(sy));
  for (int c = 0; c < src.channels; ++c)
    out[c] = detail::round_clamp_u8(detail::fetch(src, x, y, c, mode, fill));
}

/// Bilinear sample; the production kernel. A fully-interior fast path skips
/// all border logic (the overwhelmingly common case for real maps).
inline void sample_bilinear(img::ConstImageView<std::uint8_t> src, float sx,
                            float sy, img::BorderMode mode, std::uint8_t fill,
                            std::uint8_t* out) noexcept {
  const float fx = std::floor(sx);
  const float fy = std::floor(sy);
  const int x0 = static_cast<int>(fx);
  const int y0 = static_cast<int>(fy);
  const float ax = sx - fx;
  const float ay = sy - fy;
  const float w00 = (1.0f - ax) * (1.0f - ay);
  const float w10 = ax * (1.0f - ay);
  const float w01 = (1.0f - ax) * ay;
  const float w11 = ax * ay;

  if (x0 >= 0 && y0 >= 0 && x0 + 1 < src.width && y0 + 1 < src.height)
      [[likely]] {
    const std::uint8_t* r0 = src.row(y0) + static_cast<std::size_t>(x0) * src.channels;
    const std::uint8_t* r1 = src.row(y0 + 1) + static_cast<std::size_t>(x0) * src.channels;
    for (int c = 0; c < src.channels; ++c) {
      const float v = w00 * r0[c] + w10 * r0[src.channels + c] +
                      w01 * r1[c] + w11 * r1[src.channels + c];
      out[c] = detail::round_clamp_u8(v);
    }
    return;
  }
  for (int c = 0; c < src.channels; ++c) {
    const float v = w00 * detail::fetch(src, x0, y0, c, mode, fill) +
                    w10 * detail::fetch(src, x0 + 1, y0, c, mode, fill) +
                    w01 * detail::fetch(src, x0, y0 + 1, c, mode, fill) +
                    w11 * detail::fetch(src, x0 + 1, y0 + 1, c, mode, fill);
    out[c] = detail::round_clamp_u8(v);
  }
}

/// Catmull-Rom bicubic (4x4 taps).
inline void sample_bicubic(img::ConstImageView<std::uint8_t> src, float sx,
                           float sy, img::BorderMode mode, std::uint8_t fill,
                           std::uint8_t* out) noexcept {
  const float fx = std::floor(sx);
  const float fy = std::floor(sy);
  const int x0 = static_cast<int>(fx);
  const int y0 = static_cast<int>(fy);
  const float ax = sx - fx;
  const float ay = sy - fy;
  float wx[4], wy[4];
  for (int i = 0; i < 4; ++i) {
    wx[i] = detail::cubic_weight(static_cast<float>(i - 1) - ax);
    wy[i] = detail::cubic_weight(static_cast<float>(i - 1) - ay);
  }
  for (int c = 0; c < src.channels; ++c) {
    float acc = 0.0f;
    for (int j = 0; j < 4; ++j) {
      float row_acc = 0.0f;
      for (int i = 0; i < 4; ++i)
        row_acc += wx[i] * detail::fetch(src, x0 - 1 + i, y0 - 1 + j, c, mode,
                                         fill);
      acc += wy[j] * row_acc;
    }
    out[c] = detail::round_clamp_u8(acc);
  }
}

/// Lanczos-3 (6x6 taps, weights renormalized to unit sum).
inline void sample_lanczos3(img::ConstImageView<std::uint8_t> src, float sx,
                            float sy, img::BorderMode mode, std::uint8_t fill,
                            std::uint8_t* out) noexcept {
  const float fx = std::floor(sx);
  const float fy = std::floor(sy);
  const int x0 = static_cast<int>(fx);
  const int y0 = static_cast<int>(fy);
  const float ax = sx - fx;
  const float ay = sy - fy;
  float wx[6], wy[6];
  float sum_x = 0.0f, sum_y = 0.0f;
  for (int i = 0; i < 6; ++i) {
    wx[i] = detail::lanczos3_weight(static_cast<float>(i - 2) - ax);
    wy[i] = detail::lanczos3_weight(static_cast<float>(i - 2) - ay);
    sum_x += wx[i];
    sum_y += wy[i];
  }
  for (int i = 0; i < 6; ++i) {
    wx[i] /= sum_x;
    wy[i] /= sum_y;
  }
  for (int c = 0; c < src.channels; ++c) {
    float acc = 0.0f;
    for (int j = 0; j < 6; ++j) {
      float row_acc = 0.0f;
      for (int i = 0; i < 6; ++i)
        row_acc += wx[i] * detail::fetch(src, x0 - 2 + i, y0 - 2 + j, c, mode,
                                         fill);
      acc += wy[j] * row_acc;
    }
    out[c] = detail::round_clamp_u8(acc);
  }
}

// Runtime Interp dispatch lives in core/kernel.cpp (sample_kernel /
// resolve_kernel): resolve a function pointer once, outside pixel loops.

}  // namespace fisheye::core

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
