// Brown-Conrady polynomial distortion model — the classical baseline.
//
// The model expresses the distorted radius as a polynomial in the
// undistorted radius over normalized coordinates:
//
//   x_d = x_u (1 + k1 r^2 + k2 r^4 + k3 r^6) + tangential(p1, p2)
//
// Correction therefore needs the inverse, which has no closed form; we
// invert with Newton iterations. The T3 experiment measures how far this
// polynomial baseline drifts from the exact equidistant inversion as the
// field of view grows — the motivating accuracy comparison.
#pragma once

#include "util/matrix.hpp"

namespace fisheye::core {

class LensModel;

struct BrownConradyCoeffs {
  double k1 = 0.0;
  double k2 = 0.0;
  double k3 = 0.0;
  double p1 = 0.0;  ///< tangential
  double p2 = 0.0;
};

class BrownConrady {
 public:
  /// `focal_px` scales between pixels and the normalized coordinates the
  /// polynomial operates on.
  BrownConrady(BrownConradyCoeffs coeffs, double focal_px);

  [[nodiscard]] const BrownConradyCoeffs& coeffs() const noexcept {
    return coeffs_;
  }
  [[nodiscard]] double focal() const noexcept { return focal_; }

  /// Forward model: undistorted normalized point -> distorted normalized.
  [[nodiscard]] util::Vec2 distort_normalized(util::Vec2 undist) const;

  /// Inverse via Newton on the radial polynomial followed by a tangential
  /// fixed-point refinement; converges in < 10 iterations for any radius
  /// the fit below produces. Returns the undistorted normalized point.
  [[nodiscard]] util::Vec2 undistort_normalized(util::Vec2 dist,
                                                int max_iterations = 20) const;

  /// Pixel-space versions relative to a principal point.
  [[nodiscard]] util::Vec2 distort_pixel(util::Vec2 px, util::Vec2 centre) const;
  [[nodiscard]] util::Vec2 undistort_pixel(util::Vec2 px,
                                           util::Vec2 centre) const;

  /// Radial-only scalar forms used by the fitting and accuracy code.
  [[nodiscard]] double distort_radius(double r_undist) const;
  [[nodiscard]] double undistort_radius(double r_dist,
                                        int max_iterations = 20) const;

 private:
  BrownConradyCoeffs coeffs_;
  double focal_;
};

/// Least-squares fit of k1..k3 so that the Brown-Conrady forward model best
/// reproduces `lens` over rays up to `max_theta` (radians). This is how one
/// deploys the classical pipeline on a fisheye lens: approximate the exact
/// trigonometric mapping with the polynomial. Returns the fitted model with
/// the same focal length (the paper-era calibration toolchains did exactly
/// this, which is the source of the edge error T3 quantifies).
BrownConrady fit_brown_conrady(const LensModel& lens, double max_theta,
                               int samples = 256);

}  // namespace fisheye::core
