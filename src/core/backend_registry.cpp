#include "core/backend_registry.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "util/error.hpp"

namespace fisheye::core {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

int parse_int(const std::string& spec, const std::string& key,
              const std::string& val) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(val, &used);
    if (used != val.size()) throw std::invalid_argument(val);
    return v;
  } catch (const std::exception&) {
    throw InvalidArgument("backend spec '" + spec + "': option '" + key +
                          "' expects an integer, got '" + val + "'");
  }
}

double parse_double(const std::string& spec, const std::string& key,
                    const std::string& val) {
  try {
    std::size_t used = 0;
    const double v = std::stod(val, &used);
    if (used != val.size()) throw std::invalid_argument(val);
    return v;
  } catch (const std::exception&) {
    throw InvalidArgument("backend spec '" + spec + "': option '" + key +
                          "' expects a number, got '" + val + "'");
  }
}

std::vector<int> parse_x_list(const std::string& spec, const std::string& key,
                              const std::string& val) {
  std::vector<int> out;
  for (const std::string& part : split(val, 'x'))
    out.push_back(parse_int(spec, key, part));
  return out;
}

}  // namespace

void require_spec_range(const BackendSpec& spec, const std::string& key,
                        long long v, long long lo, long long hi) {
  if (v < lo || v > hi)
    throw InvalidArgument("backend spec '" + spec.text() + "': option '" +
                          key + "' must be in [" + std::to_string(lo) + ", " +
                          std::to_string(hi) + "], got " + std::to_string(v));
}

BackendSpec BackendSpec::parse(const std::string& spec) {
  BackendSpec s;
  s.text_ = spec;
  const std::size_t colon = spec.find(':');
  s.kind_ = spec.substr(0, colon);
  if (s.kind_.empty())
    throw InvalidArgument("backend spec '" + spec + "': empty kind");
  if (colon == std::string::npos) return s;
  for (const std::string& part : split(spec.substr(colon + 1), ',')) {
    if (part.empty())
      throw InvalidArgument("backend spec '" + spec + "': empty option");
    Option opt;
    const std::size_t eq = part.find('=');
    opt.key = part.substr(0, eq);
    if (opt.key.empty())
      throw InvalidArgument("backend spec '" + spec + "': option '" + part +
                            "' has no name");
    if (eq != std::string::npos) {
      opt.has_value = true;
      opt.val = part.substr(eq + 1);
    }
    s.options_.push_back(std::move(opt));
  }
  return s;
}

bool BackendSpec::flag(const std::string& name) {
  for (Option& o : options_)
    if (!o.has_value && o.key == name) {
      o.used = true;
      return true;
    }
  return false;
}

std::optional<std::string> BackendSpec::value(const std::string& key) {
  for (Option& o : options_)
    if (o.has_value && o.key == key) {
      o.used = true;
      return o.val;
    }
  return std::nullopt;
}

int BackendSpec::value_int(const std::string& key, int def) {
  const auto v = value(key);
  return v ? parse_int(text_, key, *v) : def;
}

int BackendSpec::bare_int(int def) {
  for (Option& o : options_) {
    if (o.has_value || o.used) continue;
    if (o.key.empty() ||
        o.key.find_first_not_of("0123456789") != std::string::npos)
      continue;
    o.used = true;
    return parse_int(text_, o.key, o.key);
  }
  return def;
}

double BackendSpec::value_double(const std::string& key, double def) {
  const auto v = value(key);
  return v ? parse_double(text_, key, *v) : def;
}

std::pair<int, int> BackendSpec::value_dims(const std::string& key, int def_w,
                                            int def_h) {
  const auto v = value(key);
  if (!v) return {def_w, def_h};
  const std::vector<int> dims = parse_x_list(text_, key, *v);
  if (dims.size() != 2)
    throw InvalidArgument("backend spec '" + text_ + "': option '" + key +
                          "' expects WxH, got '" + *v + "'");
  return {dims[0], dims[1]};
}

std::vector<int> BackendSpec::value_int_list(const std::string& key,
                                             std::vector<int> def) {
  const auto v = value(key);
  if (!v) return def;
  std::vector<int> list = parse_x_list(text_, key, *v);
  if (list.size() != def.size())
    throw InvalidArgument("backend spec '" + text_ + "': option '" + key +
                          "' expects " + std::to_string(def.size()) +
                          " x-separated integers, got '" + *v + "'");
  return list;
}

void BackendSpec::finish(const std::string& valid) const {
  for (const Option& o : options_) {
    if (o.used) continue;
    throw InvalidArgument("backend spec '" + text_ + "': unknown option '" +
                          o.key + "' for kind '" + kind_ + "' (valid: " +
                          valid + ")");
  }
}

// ---------------------------------------------------------------------------

void apply_map_option(BackendSpec& spec, Backend& backend) {
  const auto v = spec.value("map");
  if (!v) return;
  try {
    backend.set_map_choice(MapChoice::parse(*v));
  } catch (const InvalidArgument& e) {
    throw InvalidArgument("backend spec '" + spec.text() + "': " +
                          e.what());
  }
}

namespace {

/// Parse a spec's `schedule=` option through ScheduleChoice, prefixing
/// errors with the offending spec text. Returns `def` when absent.
par::Schedule schedule_option(BackendSpec& spec, par::Schedule def) {
  const auto v = spec.value("schedule");
  if (!v) return def;
  try {
    return ScheduleChoice::parse(*v);
  } catch (const InvalidArgument& e) {
    throw InvalidArgument("backend spec '" + spec.text() + "': " + e.what());
  }
}

/// Parse a spec's `tuned=` option through TunedChoice, prefixing errors
/// with the offending spec text. No-op when absent.
void apply_tuned_option(BackendSpec& spec, Backend& backend) {
  const auto v = spec.value("tuned");
  if (!v) return;
  try {
    backend.set_tuned(TunedChoice::parse(*v));
  } catch (const InvalidArgument& e) {
    throw InvalidArgument("backend spec '" + spec.text() + "': " + e.what());
  }
}

constexpr const char* kPoolOptions =
    "static|dynamic|guided|steal (or schedule=static|dynamic|guided|steal), "
    "rows[=N]|cyclic|tiles|cols[=N], chunks=N, "
    "tile=WxH, threads=N, map=float|packed|compact:<stride>, "
    "tuned=auto|<spec>";

std::unique_ptr<Backend> make_pool(BackendSpec& spec) {
  PoolBackend::Options o;
  if (spec.flag("dynamic")) o.schedule = par::Schedule::Dynamic;
  if (spec.flag("guided")) o.schedule = par::Schedule::Guided;
  if (spec.flag("steal")) o.schedule = par::Schedule::Steal;
  spec.flag("static");  // the default; accepted for symmetry
  o.schedule = schedule_option(spec, o.schedule);

  if (const auto rows = spec.value("rows")) {
    o.partition = par::PartitionKind::RowBlocks;
    o.chunks = parse_int(spec.text(), "rows", *rows);
  } else if (spec.flag("rows")) {
    o.partition = par::PartitionKind::RowBlocks;
  } else if (const auto cols = spec.value("cols")) {
    o.partition = par::PartitionKind::ColumnBlocks;
    o.chunks = parse_int(spec.text(), "cols", *cols);
  } else if (spec.flag("cols")) {
    o.partition = par::PartitionKind::ColumnBlocks;
  } else if (spec.flag("cyclic")) {
    o.partition = par::PartitionKind::RowCyclic;
  } else if (spec.flag("tiles")) {
    o.partition = par::PartitionKind::Tiles;
  }
  o.chunks = spec.value_int("chunks", o.chunks);
  std::tie(o.tile_w, o.tile_h) = spec.value_dims("tile", o.tile_w, o.tile_h);
  const int threads = spec.value_int("threads", 0);
  require_spec_range(spec, "threads", threads, 0, 1024);
  require_spec_range(spec, "chunks/rows/cols", o.chunks, 0, 1 << 20);
  require_spec_range(spec, "tile", o.tile_w, 1, 1 << 16);
  require_spec_range(spec, "tile", o.tile_h, 1, 1 << 16);
  auto backend = std::make_unique<PoolBackend>(o,
                                               static_cast<unsigned>(threads));
  apply_map_option(spec, *backend);
  apply_tuned_option(spec, *backend);
  spec.finish(kPoolOptions);
  return backend;
}

constexpr const char* kSimdOptions =
    "threads=N (1 = no pool), datapath=scalar|soa|gather, "
    "map=float|compact:<stride>, tuned=auto|<spec>";

std::unique_ptr<Backend> make_simd(BackendSpec& spec) {
  const std::optional<std::string> tv = spec.value("threads");
  const int threads = tv ? parse_int(spec.text(), "threads", *tv) : -1;
  if (tv) require_spec_range(spec, "threads", threads, 0, 1024);
  auto backend =
      threads < 0 ? std::make_unique<SimdBackend>(&par::default_pool())
                  : std::make_unique<SimdBackend>(
                        static_cast<unsigned>(threads));
  if (const auto dv = spec.value("datapath")) {
    try {
      backend->set_datapath(DatapathChoice::parse(*dv));
    } catch (const InvalidArgument& e) {
      throw InvalidArgument("backend spec '" + spec.text() + "': " +
                            e.what());
    }
  }
  apply_map_option(spec, *backend);
  apply_tuned_option(spec, *backend);
  spec.finish(kSimdOptions);
  return backend;
}

}  // namespace

BackendRegistry::BackendRegistry() {
  // Core CPU kinds are registered here rather than via static objects so
  // they exist the moment anyone reaches the registry.
  add("serial", "single-thread whole-frame; map=float|packed|compact:<stride>",
      [](BackendSpec& spec) -> std::unique_ptr<Backend> {
        auto backend = std::make_unique<SerialBackend>();
        apply_map_option(spec, *backend);
        spec.finish("map=float|packed|compact:<stride>");
        return backend;
      });
  add("pool", kPoolOptions, make_pool);
  add("simd", kSimdOptions, make_simd);
#ifdef _OPENMP
  add("openmp",
      "threads=N, schedule=static|dynamic|guided|steal, "
      "map=float|packed|compact:<stride>",
      [](BackendSpec& spec) -> std::unique_ptr<Backend> {
        const int threads = spec.value_int("threads", 0);
        require_spec_range(spec, "threads", threads, 0, 1024);
        const par::Schedule schedule =
            schedule_option(spec, par::Schedule::Static);
        auto backend = std::make_unique<OpenMpBackend>(threads, schedule);
        apply_map_option(spec, *backend);
        spec.finish("threads=N, schedule=static|dynamic|guided|steal, "
                    "map=float|packed|compact:<stride>");
        return backend;
      });
#endif
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::add(std::string kind, std::string summary,
                          Factory factory) {
  const std::scoped_lock lock(mu_);
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), kind,
      [](const auto& e, const std::string& k) { return e.first < k; });
  if (it != entries_.end() && it->first == kind) {
    it->second = Entry{std::move(summary), std::move(factory)};
    return;
  }
  entries_.insert(it, {std::move(kind),
                       Entry{std::move(summary), std::move(factory)}});
}

bool BackendRegistry::has(const std::string& kind) const {
  const std::scoped_lock lock(mu_);
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const auto& e) { return e.first == kind; });
}

std::vector<std::string> BackendRegistry::kinds() const {
  const std::scoped_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.first);
  return out;
}

std::vector<std::pair<std::string, std::string>> BackendRegistry::help()
    const {
  const std::scoped_lock lock(mu_);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.emplace_back(e.first, e.second.summary);
  return out;
}

std::unique_ptr<Backend> BackendRegistry::create(const std::string& spec) {
  BackendSpec parsed = BackendSpec::parse(spec);
  BackendRegistry& reg = instance();
  Factory factory;
  std::string summary;
  {
    const std::scoped_lock lock(reg.mu_);
    const auto it = std::find_if(
        reg.entries_.begin(), reg.entries_.end(),
        [&](const auto& e) { return e.first == parsed.kind(); });
    if (it == reg.entries_.end()) {
      std::ostringstream os;
      os << "unknown backend kind '" << parsed.kind() << "' in spec '"
         << spec << "'; registered kinds:";
      for (const auto& e : reg.entries_) os << ' ' << e.first;
      throw InvalidArgument(os.str());
    }
    factory = it->second.factory;
    summary = it->second.summary;
  }
  std::unique_ptr<Backend> backend = factory(parsed);
  // Registry-level backstop: even if a factory forgets its own finish(),
  // no spec with unconsumed (typo'd or unknown) options ever constructs a
  // backend silently — the leftover token is named in the error.
  parsed.finish(summary);
  return backend;
}

}  // namespace fisheye::core
