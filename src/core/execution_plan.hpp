// Plan/execute split for the execution layer.
//
// The study's axis of comparison is "same warp, different execution
// substrate", and every substrate pays a one-time setup cost — partitioning
// on the pool, map reorganization on the Cell, platform instantiation on
// the GPU/FPGA — that must not be paid per frame. An ExecutionPlan captures
// that setup once per (backend, geometry, map) and is then consumed by
// Backend::execute(plan, frame) in steady state.
//
// Plan identity is a PlanKey: output/source geometry, map identity
// (pointer AND generation AND dimensions — a pointer compare alone
// mis-hits when a rebuilt map lands at a freed map's address), sampling
// options, and the owning backend's canonical name. Anything in the key
// changing invalidates the plan.
//
// A plan owns three kinds of per-plan storage:
//  * a ResolvedKernel — the tile compute function, looked up in the kernel
//    catalogue (core/kernel.hpp) once at plan time;
//  * a Workspace arena — the tile vector plus every steady-state scratch
//    buffer (steal order/runs, resplit runs, SIMD SoA strips), sized at
//    plan time so execute() performs no heap allocation;
//  * per-tile instrumentation slots: every backend — serial, pooled, SIMD,
//    and the accelerator simulators — fills one seconds slot per tile each
//    frame (wall-clock on CPU, cycle-model on the simulators) plus byte
//    counters, summarized uniformly through rt::summarize_tiles.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/kernel.hpp"
#include "core/mapping.hpp"
#include "core/remap.hpp"
#include "image/image.hpp"
#include "parallel/partition.hpp"
#include "runtime/stats.hpp"

namespace fisheye::core {

class FisheyeCamera;
class ViewProjection;

/// Everything a backend needs to produce one output frame. Pointers are
/// non-owning and valid for the duration of execute(); which of map/packed/
/// compact/camera+view are non-null depends on `mode`. For planning, the
/// image views may carry null data pointers — only their geometry is read.
struct ExecContext {
  img::ConstImageView<std::uint8_t> src;
  img::ImageView<std::uint8_t> dst;
  const WarpMap* map = nullptr;
  const PackedMap* packed = nullptr;
  const CompactMap* compact = nullptr;
  const FisheyeCamera* camera = nullptr;
  const ViewProjection* view = nullptr;
  RemapOptions opts;
  MapMode mode = MapMode::FloatLut;
  bool fast_math = false;
};

/// Map representation selected by a backend spec's `map=` option, built
/// from the context's full-resolution WarpMap at plan time and carried by
/// the plan so steady-state frames execute against it. A ConvertedMap with
/// no storage (mode only) rewrites the context to an already-present
/// representation (e.g. map=float on a packed-mode corrector).
struct ConvertedMap {
  MapMode mode = MapMode::FloatLut;
  std::optional<PackedMap> packed;
  std::optional<CompactMap> compact;

  /// `ctx` with mode and map pointers rewritten to this representation.
  [[nodiscard]] ExecContext apply(ExecContext ctx) const noexcept;
};

/// Everything that, when changed, invalidates a plan.
struct PlanKey {
  std::string backend;  ///< canonical name() of the backend that planned
  int src_width = 0, src_height = 0, channels = 0;
  int dst_width = 0, dst_height = 0;
  MapMode mode = MapMode::FloatLut;
  Interp interp = Interp::Bilinear;
  img::BorderMode border = img::BorderMode::Constant;
  std::uint8_t fill = 0;
  bool fast_math = false;
  /// Identity of the coordinate source (core/kernel.hpp): table address +
  /// generation + dims per mode, or the camera/view pair (with their
  /// construction generations) for on-the-fly.
  MapIdentity map;
  /// Canonical lens/view model names of the planning context's camera and
  /// view (empty when the context carried none). Captured once at plan
  /// time for describe() and the autotune cache key; steady-state
  /// matches() compares the POD generations in `map` instead, so the hot
  /// path stays allocation-free.
  std::string lens;
  std::string view;
};

/// Build the key for `ctx` as planned by a backend named `backend_name`.
[[nodiscard]] PlanKey plan_key(const ExecContext& ctx,
                               std::string backend_name);

/// Analytic traffic estimate for one frame of `ctx`: LUT reads plus the
/// bilinear tap upper bound (in), destination writes (out). CPU backends
/// report these; the simulators report their modeled DMA/DDR counts.
/// (Defined in core/kernel.cpp with the rest of the per-mode logic.)
[[nodiscard]] std::size_t estimate_bytes_in(const ExecContext& ctx) noexcept;
[[nodiscard]] std::size_t estimate_bytes_out(const ExecContext& ctx) noexcept;

/// Mutable per-frame slots owned by a plan; written by execute(), read by
/// the harness. One seconds slot per plan tile.
struct PlanInstrumentation {
  std::vector<double> tile_seconds;
  std::size_t bytes_in = 0;
  std::size_t bytes_out = 0;
  /// True when tile_seconds come from a cycle model rather than this
  /// host's wall clock (the accelerator simulators).
  bool modeled = false;
  /// Work-stealing counters (schedule=steal backends; zero elsewhere):
  /// how many tiles ran from the worker's initial run vs after a steal,
  /// and how many steal operations the frame needed.
  std::size_t local_tiles = 0;
  std::size_t stolen_tiles = 0;
  std::size_t steals = 0;
  /// Process-sharding counters (backend=shard; zero elsewhere): shm bytes
  /// moved this frame, strips the supervisor computed locally, and
  /// cumulative worker respawns since the plan forked its fleet.
  std::size_t transport_bytes = 0;
  std::size_t fallback_strips = 0;
  std::size_t respawns = 0;

  /// Reset the slots for a frame of `tiles` tiles (reuses capacity).
  void begin_frame(std::size_t tiles) {
    tile_seconds.assign(tiles, 0.0);
    local_tiles = 0;
    stolen_tiles = 0;
    steals = 0;
    transport_bytes = 0;
    fallback_strips = 0;
    respawns = 0;
  }
};

/// Per-plan arena: every buffer the steady-state execute path touches,
/// sized at plan time so frames allocate nothing. The tile decomposition
/// lives here too — the plan IS its workspace, and backends annotate it
/// with whatever schedule state they need (steal order/runs, SoA scratch).
/// Like the instrumentation slots, the workspace is written by execution,
/// which is why a plan may execute at most one frame at a time. Within
/// that one frame, cooperating workers are fine — the pooled backends and
/// the multi-stream executor write disjoint per-tile slots concurrently —
/// but the frame-level counters and begin_frame() resets must stay
/// serialized against each other (the stream executor does this at frame
/// retire).
struct Workspace {
  Workspace();
  ~Workspace();
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// The plan's tile decomposition (schedule order for steal plans).
  std::vector<par::Rect> tiles;
  /// schedule=steal: tile indices in schedule order (identity permutation
  /// over `tiles`, which are stored pre-ordered) and the per-worker
  /// initial deque runs (see par::balanced_runs).
  std::vector<std::uint32_t> steal_order;
  std::vector<std::size_t> steal_runs;
  /// Re-balanced runs for frames whose worker count differs from the
  /// planned one (OpenMP teams can move); reused across frames.
  std::vector<std::size_t> resplit_runs;
  /// One SoA strip scratch per SIMD lane (simd/remap_simd.hpp).
  std::vector<simd::SoaScratch> soa;
  /// Analytic per-frame traffic, computed once at plan time.
  std::size_t bytes_in_estimate = 0;
  std::size_t bytes_out_estimate = 0;
};

/// One-time execution recipe: the tile decomposition and scratch arena
/// (Workspace), the resolved tile kernel, optional backend-private prepared
/// state (reorganized maps, platform instances), and the instrumentation
/// slots. Cheap to copy (shared state); a given plan may be *executed* by
/// at most one thread at a time because frames write its workspace and
/// instrumentation slots.
class ExecutionPlan {
 public:
  ExecutionPlan() = default;  ///< invalid; matches() nothing

  ExecutionPlan(PlanKey key, std::vector<par::Rect> tiles,
                std::shared_ptr<void> state = nullptr);

  [[nodiscard]] bool valid() const noexcept { return inst_ != nullptr; }

  /// True when this plan can execute `ctx` on a backend named
  /// `backend_name` without replanning. Field-wise compare; no allocation.
  [[nodiscard]] bool matches(const ExecContext& ctx,
                             std::string_view backend_name) const noexcept;

  [[nodiscard]] const PlanKey& key() const noexcept { return key_; }
  [[nodiscard]] const std::vector<par::Rect>& tiles() const noexcept;

  /// The plan-time resolved tile compute function (invalid on plans built
  /// by backends that execute outside the catalogue — none today).
  [[nodiscard]] const ResolvedKernel& kernel() const noexcept {
    return kernel_;
  }
  void set_kernel(ResolvedKernel k) noexcept { kernel_ = k; }

  /// Scratch arena; mutable through a const plan, like instrumentation()
  /// (execution fills scratch, it does not change what the plan *is*).
  [[nodiscard]] Workspace& workspace() const noexcept { return *ws_; }

  /// Backend-private prepared state (type known to the owning backend).
  template <class T>
  [[nodiscard]] T* state() const noexcept {
    return static_cast<T*>(state_.get());
  }

  /// Frame slots; mutable through a const plan (execution does not change
  /// what the plan *is*, only what it last measured).
  [[nodiscard]] PlanInstrumentation& instrumentation() const {
    return *inst_;
  }

  /// Uniform per-tile summary of the most recently executed frame.
  [[nodiscard]] rt::TileStats tile_stats() const;

  /// One-line human-readable summary: backend name, output geometry, tile
  /// count, resolved kernel (mode × interp × datapath variant) and the
  /// host ISA the plan resolved under — what actually runs, post
  /// effective_variant() degrade, not what was requested.
  [[nodiscard]] std::string describe() const;

  /// Spec-selected map representation (map= option), or null when the plan
  /// executes the context's own representation.
  [[nodiscard]] const ConvertedMap* converted() const noexcept {
    return converted_.get();
  }
  void set_converted(std::shared_ptr<const ConvertedMap> c) noexcept {
    converted_ = std::move(c);
  }

 private:
  PlanKey key_;
  ResolvedKernel kernel_;
  std::shared_ptr<Workspace> ws_;
  std::shared_ptr<void> state_;
  std::shared_ptr<const ConvertedMap> converted_;
  std::shared_ptr<PlanInstrumentation> inst_;
};

}  // namespace fisheye::core
