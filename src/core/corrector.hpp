// Corrector: the library's front door.
//
// Configure once (lens, field of view, output geometry, kernel options),
// then correct frames repeatedly. Construction does all the expensive work
// (map generation, packing); correct() is the steady-state per-frame cost —
// the quantity every bench reports.
//
//   auto corr = core::Corrector::builder(1280, 720)
//                   .fov_degrees(180.0)
//                   .output_size(1280, 720)
//                   .build();
//   core::SerialBackend serial;
//   corr.correct(fisheye_frame.view(), out.view(), serial);
#pragma once

#include <memory>
#include <optional>

#include "core/backend.hpp"
#include "core/model_spec.hpp"

namespace fisheye::core {

struct CorrectorConfig {
  // --- input geometry ---
  int src_width = 0;
  int src_height = 0;
  /// Lens model identity (kind + calibration parameters + field of view).
  /// Implicitly convertible from LensKind, so `config.lens = LensKind::X`
  /// keeps working.
  LensSpec lens = LensKind::Equidistant;
  /// Full field of view of the fisheye input; 0 = take it from the lens
  /// spec (whose default is 180 degrees). Non-zero overrides the spec.
  double fov_rad = 0.0;

  // --- output geometry ---
  int out_width = 0;    ///< 0 = same as input
  int out_height = 0;
  /// Output (perspective) focal length in pixels; 0 = match the lens focal,
  /// which preserves centre-of-image spatial resolution.
  double out_focal = 0.0;
  /// Output projection (perspective undistortion by default; cylindrical,
  /// equirect, and quadview panoramas via `view=` specs).
  ViewSpec view;

  // --- kernel options ---
  RemapOptions remap;
  MapMode map_mode = MapMode::FloatLut;
  int frac_bits = 14;       ///< PackedLut/CompactLut coordinate precision
  int compact_stride = 8;   ///< CompactLut grid pitch (power of two, <= 64)
  bool fast_math = false;   ///< OnTheFly: polynomial atan instead of libm
};

class Corrector {
 public:
  explicit Corrector(const CorrectorConfig& config);

  /// Correct one frame. `src` must be src_width x src_height, `dst` must be
  /// out_width x out_height, equal channel counts.
  ///
  /// Convenience path: plans through the backend's internal one-plan cache.
  /// Steady-state pipelines should prepare() once and use the two-argument
  /// correct() below, which never replans.
  void correct(img::ConstImageView<std::uint8_t> src,
               img::ImageView<std::uint8_t> dst, Backend& backend) const;

  /// A backend's plan for this corrector's geometry, built once and reused
  /// across frames. Valid until the backend or the corrector is destroyed;
  /// a prepared plan is pinned to the channel count it was built for.
  struct Prepared {
    Backend* backend = nullptr;
    ExecutionPlan plan;
    [[nodiscard]] bool valid() const noexcept {
      return backend != nullptr && plan.valid();
    }
  };

  /// Plan the backend's execution for frames of `channels` interleaved
  /// samples. Planning needs only the geometry, so no frame is required.
  [[nodiscard]] Prepared prepare(Backend& backend, int channels = 1) const;

  /// Steady-state frame correction: executes the prepared plan directly,
  /// skipping the plan-cache check entirely. Frame dimensions and channel
  /// count must match what prepare() was given.
  void correct(const Prepared& prepared, img::ConstImageView<std::uint8_t> src,
               img::ImageView<std::uint8_t> dst) const;

  /// Canonical backend name stamped into stream plans (PlanKey::backend).
  static constexpr const char* kStreamPlanName = "stream";

  /// Plan for multi-stream service (stream::StreamExecutor): a
  /// source-locality-ordered square-tile decomposition whose schedule
  /// permutation, instrumentation slots, and byte estimates are all sized
  /// here — per-frame service against the plan allocates nothing. One plan
  /// per stream: the plan's workspace and instrumentation are that
  /// stream's arena, written by whichever workers serve its frames but
  /// only for one frame at a time (the executor serializes frames within a
  /// stream).
  [[nodiscard]] ExecutionPlan prepare_stream(int channels = 1, int tile_w = 64,
                                             int tile_h = 64) const;

  /// The context correct() hands to the backend; exposed so benches and the
  /// accelerator simulators can drive backends directly.
  [[nodiscard]] ExecContext make_context(
      img::ConstImageView<std::uint8_t> src,
      img::ImageView<std::uint8_t> dst) const;

  [[nodiscard]] const CorrectorConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const FisheyeCamera& camera() const noexcept {
    return *camera_;
  }
  [[nodiscard]] const ViewProjection& view() const noexcept { return *view_; }
  /// Null unless map_mode needs it (FloatLut; also built for PackedLut as
  /// the packing source and kept for bbox analysis).
  [[nodiscard]] const WarpMap* map() const noexcept {
    return map_ ? &*map_ : nullptr;
  }
  [[nodiscard]] const PackedMap* packed() const noexcept {
    return packed_ ? &*packed_ : nullptr;
  }
  [[nodiscard]] const CompactMap* compact() const noexcept {
    return compact_ ? &*compact_ : nullptr;
  }

  /// Builder with the defaults spelled out.
  class Builder;
  static Builder builder(int src_width, int src_height);

 private:
  CorrectorConfig config_;
  std::unique_ptr<FisheyeCamera> camera_;
  std::unique_ptr<ViewProjection> view_;
  std::optional<WarpMap> map_;
  std::optional<PackedMap> packed_;
  std::optional<CompactMap> compact_;
};

class Corrector::Builder {
 public:
  Builder(int src_width, int src_height) {
    config_.src_width = src_width;
    config_.src_height = src_height;
    // fov_rad stays 0: resolved from the lens spec (default 180 degrees)
    // unless fov_degrees() overrides it.
  }
  /// Lens model; accepts a bare LensKind (the kind's default spec) or a
  /// parsed LensSpec carrying calibration parameters and field of view.
  Builder& lens(const LensSpec& spec) {
    config_.lens = spec;
    return *this;
  }
  /// Output projection spec (perspective undistortion when not called).
  Builder& view(const ViewSpec& spec) {
    config_.view = spec;
    return *this;
  }
  Builder& fov_degrees(double deg) {
    config_.fov_rad = deg * 3.14159265358979323846 / 180.0;
    return *this;
  }
  Builder& output_size(int w, int h) {
    config_.out_width = w;
    config_.out_height = h;
    return *this;
  }
  Builder& output_focal(double f) {
    config_.out_focal = f;
    return *this;
  }
  Builder& interp(Interp i) {
    config_.remap.interp = i;
    return *this;
  }
  Builder& border(img::BorderMode mode, std::uint8_t fill = 0) {
    config_.remap.border = mode;
    config_.remap.fill = fill;
    return *this;
  }
  Builder& map_mode(MapMode mode) {
    config_.map_mode = mode;
    return *this;
  }
  Builder& frac_bits(int bits) {
    config_.frac_bits = bits;
    return *this;
  }
  Builder& compact_stride(int stride) {
    config_.compact_stride = stride;
    return *this;
  }
  Builder& fast_math(bool on) {
    config_.fast_math = on;
    return *this;
  }
  [[nodiscard]] Corrector build() const { return Corrector(config_); }
  [[nodiscard]] CorrectorConfig config() const { return config_; }

 private:
  CorrectorConfig config_;
};

inline Corrector::Builder Corrector::builder(int src_width, int src_height) {
  return {src_width, src_height};
}

/// Build a service plan for `ctx` under PlanKey backend `plan_name`: a
/// source-locality-ordered square-tile decomposition whose schedule
/// permutation, instrumentation slots, and byte estimates are all sized
/// here, so per-frame execution against the plan allocates nothing. Tiles
/// cover [0,tile_region_w) x [0,tile_region_h) (0 = ctx.dst dims); the
/// serving layer passes a region smaller than ctx.dst when the output
/// carries compact-grid padding no client ever reads. Shared by
/// Corrector::prepare_stream and serve::PlanCache.
[[nodiscard]] ExecutionPlan build_service_plan(const ExecContext& ctx,
                                               int tile_w, int tile_h,
                                               std::string plan_name,
                                               int tile_region_w = 0,
                                               int tile_region_h = 0);

}  // namespace fisheye::core
