#include "core/aa_remap.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/mathx.hpp"

namespace fisheye::core {

namespace {

/// Bilinear fetch from one pyramid level in level-0 coordinates; constant
/// fill outside. Writes all channels to out[].
void fetch_level(const img::Image8& level, float sx0, float sy0, int lod,
                 std::uint8_t fill, float* out) {
  // Level-L texel grid: x_L = (x0 + 0.5) / 2^L - 0.5.
  const float scale = 1.0f / static_cast<float>(1 << lod);
  const float sx = (sx0 + 0.5f) * scale - 0.5f;
  const float sy = (sy0 + 0.5f) * scale - 0.5f;
  const float fx = std::floor(sx);
  const float fy = std::floor(sy);
  const int x0 = static_cast<int>(fx);
  const int y0 = static_cast<int>(fy);
  const float ax = sx - fx;
  const float ay = sy - fy;
  const int ch = level.channels();
  auto tap = [&](int xi, int yi, int c) -> float {
    if (xi < 0 || yi < 0 || xi >= level.width() || yi >= level.height())
      return static_cast<float>(fill);
    return static_cast<float>(level.at(xi, yi, c));
  };
  for (int c = 0; c < ch; ++c) {
    out[c] = (1.0f - ax) * (1.0f - ay) * tap(x0, y0, c) +
             ax * (1.0f - ay) * tap(x0 + 1, y0, c) +
             (1.0f - ax) * ay * tap(x0, y0 + 1, c) +
             ax * ay * tap(x0 + 1, y0 + 1, c);
  }
}

inline std::uint8_t round_u8(float v) noexcept {
  const int r = static_cast<int>(v + 0.5f);
  return static_cast<std::uint8_t>(r < 0 ? 0 : (r > 255 ? 255 : r));
}

}  // namespace

float map_lod(const WarpMap& map, int x, int y, float max_lod) noexcept {
  // Central differences where possible, one-sided at the frame edge.
  const int xm = x > 0 ? x - 1 : x;
  const int xp = x + 1 < map.width ? x + 1 : x;
  const int ym = y > 0 ? y - 1 : y;
  const int yp = y + 1 < map.height ? y + 1 : y;
  const float dx_den = static_cast<float>(xp - xm);
  const float dy_den = static_cast<float>(yp - ym);
  if (dx_den == 0.0f || dy_den == 0.0f) return 0.0f;

  const std::size_t ixm = map.index(xm, y), ixp = map.index(xp, y);
  const std::size_t iym = map.index(x, ym), iyp = map.index(x, yp);
  const float dsx_dx = (map.src_x[ixp] - map.src_x[ixm]) / dx_den;
  const float dsy_dx = (map.src_y[ixp] - map.src_y[ixm]) / dx_den;
  const float dsx_dy = (map.src_x[iyp] - map.src_x[iym]) / dy_den;
  const float dsy_dy = (map.src_y[iyp] - map.src_y[iym]) / dy_den;

  const float fx2 = dsx_dx * dsx_dx + dsy_dx * dsy_dx;
  const float fy2 = dsx_dy * dsx_dy + dsy_dy * dsy_dy;
  const float footprint2 = fx2 > fy2 ? fx2 : fy2;
  if (!(footprint2 > 1.0f)) return 0.0f;  // magnifying or NaN: full res
  const float lod = 0.5f * std::log2(footprint2);
  return lod > max_lod ? max_lod : lod;
}

void remap_aa_rect(const img::Pyramid& pyramid,
                   img::ImageView<std::uint8_t> dst, const WarpMap& map,
                   par::Rect rect, std::uint8_t fill) {
  FE_EXPECTS(pyramid.channels() == dst.channels);
  FE_EXPECTS(map.width == dst.width && map.height == dst.height);
  FE_EXPECTS(rect.x0 >= 0 && rect.y0 >= 0 && rect.x1 <= dst.width &&
             rect.y1 <= dst.height);

  const img::Image8& base = pyramid.level(0);
  const auto max_lod = static_cast<float>(pyramid.levels() - 1);
  const int ch = dst.channels;
  float lo[4], hi[4];

  for (int y = rect.y0; y < rect.y1; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * map.width;
    std::uint8_t* out_row = dst.row(y);
    for (int x = rect.x0; x < rect.x1; ++x) {
      const float sx = map.src_x[row + x];
      const float sy = map.src_y[row + x];
      std::uint8_t* out = out_row + static_cast<std::size_t>(x) * ch;
      if (sx <= -1.0f || sy <= -1.0f ||
          sx >= static_cast<float>(base.width()) ||
          sy >= static_cast<float>(base.height())) {
        for (int c = 0; c < ch; ++c) out[c] = fill;
        continue;
      }
      const float lod = map_lod(map, x, y, max_lod);
      const int l0 = static_cast<int>(lod);
      const float frac = lod - static_cast<float>(l0);
      fetch_level(pyramid.level(l0), sx, sy, l0, fill, lo);
      if (frac > 0.0f && l0 + 1 < pyramid.levels()) {
        fetch_level(pyramid.level(l0 + 1), sx, sy, l0 + 1, fill, hi);
        for (int c = 0; c < ch; ++c)
          out[c] = round_u8(lo[c] + frac * (hi[c] - lo[c]));
      } else {
        for (int c = 0; c < ch; ++c) out[c] = round_u8(lo[c]);
      }
    }
  }
}

}  // namespace fisheye::core
